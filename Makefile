GO ?= go

.PHONY: check build vet test race tier1 bench benchsmoke tracesmoke tools clean

# The full pre-merge gate: vet + build + race-enabled tests + tier-1 +
# a single-iteration pass over every benchmark so they can't rot + a
# trace-export smoke test.
check: vet build race tier1 benchsmoke tracesmoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Race-enabled run of the concurrency-sensitive packages (the runner
# engine and the exploration that fans out over it).
race:
	$(GO) test -race -count=1 ./internal/runner ./internal/dse

# Tier-1 suite (ROADMAP.md): everything must build and all tests pass.
tier1:
	$(GO) build ./... && $(GO) test ./...

test:
	$(GO) test ./...

# Run the tracked benchmarks and record them (with the frozen
# pre-optimization baselines) in BENCH_2.json.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkExocoreRun|BenchmarkDSESweep' \
		-benchmem -benchtime=3x . | tee bench.out
	awk -f scripts/bench2json.awk bench.out > BENCH_2.json
	@rm -f bench.out
	@cat BENCH_2.json

# One iteration of every benchmark: catches compile breaks and panics.
benchsmoke:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=1x . > /dev/null

# Trace-export smoke test: run one driver with -trace and validate the
# output as a well-formed, properly nested Chrome trace-event array.
tracesmoke:
	$(GO) run ./cmd/tdgsim -bench mm -trace /tmp/exocore-tracesmoke.json > /dev/null
	$(GO) run ./scripts/tracecheck /tmp/exocore-tracesmoke.json
	@rm -f /tmp/exocore-tracesmoke.json

# Build the seven drivers into ./bin.
tools:
	$(GO) build -o bin/ ./cmd/...

clean:
	rm -rf bin
