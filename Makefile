GO ?= go

.PHONY: check build vet test race tier1 tools clean

# The full pre-merge gate: vet + build + race-enabled tests + tier-1.
check: vet build race tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Race-enabled run of the concurrency-sensitive packages (the runner
# engine and the exploration that fans out over it).
race:
	$(GO) test -race -count=1 ./internal/runner ./internal/dse

# Tier-1 suite (ROADMAP.md): everything must build and all tests pass.
tier1:
	$(GO) build ./... && $(GO) test ./...

test:
	$(GO) test ./...

# Build the seven drivers into ./bin.
tools:
	$(GO) build -o bin/ ./cmd/...

clean:
	rm -rf bin
