GO ?= go

.PHONY: check build vet test race tier1 bench benchdiff benchsmoke tracesmoke servesmoke obssmoke graphsmoke memsmoke scalesmoke fabricsmoke tools clean

# The full pre-merge gate: vet + build + race-enabled tests + tier-1 +
# a single-iteration pass over every benchmark so they can't rot + a
# trace-export smoke test + the daemon end-to-end smoke test + the
# telemetry-plane smoke test (prom exposition, pprof, per-request trace
# fragments) + the graph-family sweep smoke test over the enlarged
# registry grid + the streaming-evaluation memory gate on a
# 10M-instruction trace + the paper-scale streaming gate (200M
# instructions, never materialized, inside the same budget).
check: vet build race tier1 benchsmoke tracesmoke servesmoke obssmoke graphsmoke memsmoke scalesmoke fabricsmoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Race-enabled run of the concurrency-sensitive packages (the runner
# engine, the exploration that fans out over it, the evaluation cache
# with its sharded outcome map and cross-core shared pool, the serving
# layer's singleflight/admission machinery, the fabric's shard
# dispatcher with its work-stealing workers, and the persistent store's
# locked LRU index).
race:
	$(GO) test -race -count=1 ./internal/runner ./internal/dse ./internal/exocore ./internal/serve ./internal/fabric ./internal/store

# Tier-1 suite (ROADMAP.md): everything must build and all tests pass.
tier1:
	$(GO) build ./... && $(GO) test ./...

test:
	$(GO) test ./...

# Run the tracked benchmarks and record them in BENCH_9.json.
# BENCH_7.json remains as the record of the previous optimization round;
# its "current" values carry over as this round's baselines (same
# machine). StreamedExocoreRun joins the tracked set: its frozen
# baseline is the materialized-path equivalent of the same work,
# measured at the commit that introduced streaming.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkExocoreRun|BenchmarkGraphExocoreRun|BenchmarkStreamedExocoreRun|BenchmarkDSESweep|BenchmarkContextConstruction|BenchmarkServeEvaluate' \
		-benchmem -benchtime=3x . | tee bench.out
	awk -f scripts/bench9json.awk bench.out > BENCH_9.json
	@rm -f bench.out
	@cat BENCH_9.json

# Regression gate: re-measure the tracked benchmarks and fail when any is
# slower than the value recorded in BENCH_9.json by more than the
# tolerance band.
benchdiff:
	$(GO) test -run '^$$' -bench 'BenchmarkExocoreRun|BenchmarkGraphExocoreRun|BenchmarkStreamedExocoreRun|BenchmarkDSESweep|BenchmarkContextConstruction|BenchmarkServeEvaluate' \
		-benchmem -benchtime=3x -count=4 . > bench.out
	awk -f scripts/benchdiff.awk BENCH_9.json bench.out
	@rm -f bench.out

# One iteration of every benchmark: catches compile breaks and panics.
benchsmoke:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=1x . > /dev/null

# Trace-export smoke test: run one driver with -trace and validate the
# output as a well-formed, properly nested Chrome trace-event array.
tracesmoke:
	$(GO) run ./cmd/tdgsim -bench mm -trace /tmp/exocore-tracesmoke.json > /dev/null
	$(GO) run ./scripts/tracecheck /tmp/exocore-tracesmoke.json
	@rm -f /tmp/exocore-tracesmoke.json

# Daemon end-to-end smoke test: boot a real exocored on an ephemeral
# port, require /v1/evaluate and /v1/sweep to byte-match tdgsim/dse
# -json output for the same inputs, and require SIGTERM to drain to a
# clean exit 0.
servesmoke:
	@rm -rf /tmp/exocore-servesmoke-bin
	$(GO) build -o /tmp/exocore-servesmoke-bin/ ./cmd/exocored ./cmd/tdgsim ./cmd/dse
	$(GO) run ./scripts/servesmoke /tmp/exocore-servesmoke-bin
	@rm -rf /tmp/exocore-servesmoke-bin

# Telemetry-plane smoke test: boot exocored with always-on ring tracing,
# the runtime sampler and pprof, require evaluation responses to stay
# byte-identical to tdgsim -json, the Prometheus exposition to carry the
# golden series (including go_* runtime metrics), pprof to serve a
# profile, and the per-request trace fragment to validate.
obssmoke:
	@rm -rf /tmp/exocore-obssmoke-bin
	$(GO) build -o /tmp/exocore-obssmoke-bin/ ./cmd/exocored ./cmd/tdgsim
	$(GO) run ./scripts/obssmoke /tmp/exocore-obssmoke-bin
	@rm -rf /tmp/exocore-obssmoke-bin

# Graph-family sweep smoke test: one graph benchmark through the full
# 4-core × 32-subset grid of the five-model registry, validating the
# grid size, the GS-DAE designs and the per-design benchmark rows.
graphsmoke:
	$(GO) run ./cmd/dse -bench bfs -maxdyn 8000 -json > /tmp/exocore-graphsmoke.json
	$(GO) run ./scripts/graphsmoke /tmp/exocore-graphsmoke.json
	@rm -f /tmp/exocore-graphsmoke.json

# Fabric end-to-end smoke test: a coordinator over two real replica
# daemons (one with a persistent -store) must answer sweeps
# byte-identically to a single daemon, survive a replica SIGKILLed
# mid-sweep, come back warm when the stored replica restarts (nonzero
# store occupancy and store.hits), and reject bad -role/-replicas/-store
# flags with helpful messages.
fabricsmoke:
	@rm -rf /tmp/exocore-fabricsmoke-bin
	$(GO) build -o /tmp/exocore-fabricsmoke-bin/ ./cmd/exocored
	$(GO) run ./scripts/fabricsmoke /tmp/exocore-fabricsmoke-bin
	@rm -rf /tmp/exocore-fabricsmoke-bin

# Streaming-evaluation memory gate: a 10M-instruction trace through the
# baseline engine must stay inside a fixed memory budget — the µDG is
# O(window), so only the trace itself scales with length. GOMEMLIMIT
# enforces the heap target for the whole run, not just at the final
# measurement.
memsmoke:
	GOMEMLIMIT=512MiB $(GO) run ./scripts/memsmoke

# Paper-scale streaming gate: 200M generator-driven instructions through
# the chunked source → pipelined annotation → streaming-TDG →
# windowed-µDG path, never materialized, inside the same 512 MiB budget
# memsmoke holds a 20× shorter materialized trace to. Also checks the
# streamed arm against the materialized arm for byte-identical results
# at an overlapping size before trusting the long run.
scalesmoke:
	GOMEMLIMIT=512MiB $(GO) run ./scripts/scalesmoke

# Build the drivers into ./bin.
tools:
	$(GO) build -o bin/ ./cmd/...

clean:
	rm -rf bin
