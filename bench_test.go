// Package bench holds the benchmark harness that regenerates every table
// and figure of the paper (at reduced trace lengths so `go test -bench`
// stays fast; the cmd/ binaries run the full-scale versions). Custom
// metrics carry each experiment's headline numbers, so a bench run doubles
// as a regression check on the reproduced results.
package bench

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"exocore/internal/bsa"
	"exocore/internal/cache"
	"exocore/internal/cores"
	"exocore/internal/dse"
	"exocore/internal/exocore"
	"exocore/internal/fusion"
	"exocore/internal/refsim"
	"exocore/internal/runner"
	"exocore/internal/sched"
	"exocore/internal/serve"
	"exocore/internal/stats"
	"exocore/internal/tdg"
	"exocore/internal/trace"
	"exocore/internal/validate"
	"exocore/internal/workloads"
)

const benchDyn = 15000

// stdEngine pins a benchmark engine to the paper's original four BSAs so
// benchdiff numbers stay comparable across the registry growing new
// models. Benchmarks of the enlarged grid live next to the graph
// workloads (BenchmarkGraphExocoreRun).
func stdEngine() *runner.Engine {
	return runner.New(runner.Options{MaxDyn: benchDyn, BSAs: bsa.Standard()})
}

func quickSet(b *testing.B) []*workloads.Workload {
	b.Helper()
	var ws []*workloads.Workload
	for _, name := range []string{"mm", "nbody", "cjpeg", "mcf", "gzip", "stencil"} {
		w, err := workloads.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		ws = append(ws, w)
	}
	return ws
}

// BenchmarkExocoreRun measures one full-trace engine evaluation under an
// Oracle assignment — the unit of work the DSE sweep repeats tens of
// thousands of times. Tracked in BENCH_7.json (ns/op, allocs/op).
func BenchmarkExocoreRun(b *testing.B) {
	w, err := workloads.ByName("cjpeg")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := w.Trace(benchDyn)
	if err != nil {
		b.Fatal(err)
	}
	td, err := tdg.Build(tr)
	if err != nil {
		b.Fatal(err)
	}
	bsas := bsa.Standard().New()
	ctx, err := sched.NewContext(td, cores.OOO2, bsas)
	if err != nil {
		b.Fatal(err)
	}
	assign := ctx.Oracle(bsa.Standard().Names())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exocore.Run(td, cores.OOO2, bsas, ctx.Plans, assign, exocore.RunOpts{}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(tr.Len()))
}

// BenchmarkGraphExocoreRun is BenchmarkExocoreRun for the graph family:
// one full-trace evaluation of bfs under the full five-model registry,
// where the Oracle hands the hot frontier loop to GS-DAE — so the
// decoupled access/compute stream transform is in the measured path.
// Run by `make bench`; tracked in BENCH_7.json.
func BenchmarkGraphExocoreRun(b *testing.B) {
	w, err := workloads.ByName("bfs")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := w.Trace(benchDyn)
	if err != nil {
		b.Fatal(err)
	}
	td, err := tdg.Build(tr)
	if err != nil {
		b.Fatal(err)
	}
	bsas := bsa.Default().New()
	ctx, err := sched.NewContext(td, cores.OOO2, bsas)
	if err != nil {
		b.Fatal(err)
	}
	assign := ctx.Oracle(bsa.Default().Names())
	gsdae := false
	for _, name := range assign {
		if name == "GS-DAE" {
			gsdae = true
		}
	}
	if !gsdae {
		b.Fatalf("oracle assignment %v does not exercise GS-DAE", assign)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exocore.Run(td, cores.OOO2, bsas, ctx.Plans, assign, exocore.RunOpts{}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(tr.Len()))
}

// BenchmarkStreamedExocoreRun measures the streaming baseline end to
// end: chunked generator source (functional simulation + cache/bpred
// annotation on a producer goroutine) pipelined into RunStream's
// windowed-µDG evaluation — the whole trace→eval path with the trace
// never materialized. Comparable work to trace synthesis + tdg.Build +
// the materialized baseline Run, which is the frozen baseline recorded
// in BENCH_9.json. Tracked in BENCH_9.json (ns/op, allocs/op).
func BenchmarkStreamedExocoreRun(b *testing.B) {
	w, err := workloads.ByName("cjpeg")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := trace.NewPipelined(
			w.Source(workloads.SourceConfig{MaxDyn: benchDyn, ChunkInsts: 1 << 12}), 2)
		res, err := exocore.RunStream(src, cores.OOO2, exocore.RunOpts{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Cycles <= 0 {
			b.Fatalf("implausible cycles %d", res.Cycles)
		}
	}
	b.SetBytes(benchDyn)
}

// BenchmarkDSESweep measures the paper's headline experiment end to end:
// the 64-design × quick-set sweep (§5, Figures 10-12) on a fresh engine,
// so every stage — trace, TDG, scheduling contexts, and all assignment
// evaluations — is paid inside the loop. This is the number the
// evaluation-cache work is judged by; tracked in BENCH_7.json.
func BenchmarkDSESweep(b *testing.B) {
	ws := quickSet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp, err := dse.Explore(dse.Options{Workloads: ws, Engine: stdEngine()})
		if err != nil {
			b.Fatal(err)
		}
		if len(exp.Designs) != 64 {
			b.Fatalf("expected 64 designs, got %d", len(exp.Designs))
		}
	}
}

// BenchmarkContextConstruction measures building one scheduling context —
// the baseline run plus every per-candidate solo measurement — which is
// where a fresh sweep spends most of its time. Exercises the delta
// composer, prefix publication and the cross-core shared pool on a cold
// cache each iteration. Tracked in BENCH_7.json.
func BenchmarkContextConstruction(b *testing.B) {
	w, err := workloads.ByName("cjpeg")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := w.Trace(benchDyn)
	if err != nil {
		b.Fatal(err)
	}
	td, err := tdg.Build(tr)
	if err != nil {
		b.Fatal(err)
	}
	bsas := bsa.Standard().New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.NewContext(td, cores.OOO2, bsas); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Validation regenerates Table 1 (and the underlying
// Figure 5 scatter data): model validation against the independent
// reference simulator and the published accelerator results.
func BenchmarkTable1Validation(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		reports, err := validate.Table1(benchDyn)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range reports {
			if e := r.PerfErr(); e > worst {
				worst = e
			}
		}
	}
	b.ReportMetric(100*worst, "worst-perf-err-%")
}

// BenchmarkFig10Frontier regenerates Figure 3/10: the overall
// energy-performance tradeoff across designs.
func BenchmarkFig10Frontier(b *testing.B) {
	ws := quickSet(b)
	var frontierLen int
	var fullExoPerf float64
	for i := 0; i < b.N; i++ {
		exp, err := dse.Explore(dse.Options{Workloads: ws, Engine: stdEngine()})
		if err != nil {
			b.Fatal(err)
		}
		frontierLen = len(exp.Frontier())
		perf, _, err := exp.RelativeTo("OOO2-SDNT", "OOO2")
		if err != nil {
			b.Fatal(err)
		}
		fullExoPerf = perf
	}
	b.ReportMetric(float64(frontierLen), "frontier-points")
	b.ReportMetric(fullExoPerf, "OOO2-exocore-speedup")
}

// BenchmarkFig11Categories regenerates Figure 11: accelerator benefit per
// workload category.
func BenchmarkFig11Categories(b *testing.B) {
	var ws []*workloads.Workload
	for _, name := range []string{"mm", "stencil", "cjpeg", "gsmencode", "mcf", "gzip"} {
		w, err := workloads.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		ws = append(ws, w)
	}
	var regularGain, irregularGain float64
	for i := 0; i < b.N; i++ {
		exp, err := dse.Explore(dse.Options{Workloads: ws, Engine: stdEngine()})
		if err != nil {
			b.Fatal(err)
		}
		regularGain, _ = exp.CategoryAggregate("OOO2-SDNT", workloads.Regular)
		irregularGain, _ = exp.CategoryAggregate("OOO2-SDNT", workloads.Irregular)
	}
	b.ReportMetric(regularGain, "regular-relperf")
	b.ReportMetric(irregularGain, "irregular-relperf")
}

// BenchmarkFig12Characterization regenerates Figure 12: all 64 designs'
// speedup / energy efficiency / area relative to IO2.
func BenchmarkFig12Characterization(b *testing.B) {
	ws := quickSet(b)
	var designs int
	for i := 0; i < b.N; i++ {
		exp, err := dse.Explore(dse.Options{Workloads: ws, Engine: stdEngine()})
		if err != nil {
			b.Fatal(err)
		}
		designs = len(exp.Designs)
	}
	b.ReportMetric(float64(designs), "designs")
}

// BenchmarkFig13Breakdown regenerates Figure 13: per-benchmark time and
// energy attribution across the models of an OOO2 ExoCore.
func BenchmarkFig13Breakdown(b *testing.B) {
	ws := quickSet(b)
	var unaccel float64
	for i := 0; i < b.N; i++ {
		var total float64
		for _, w := range ws {
			tr, err := w.Trace(benchDyn)
			if err != nil {
				b.Fatal(err)
			}
			td, err := tdg.Build(tr)
			if err != nil {
				b.Fatal(err)
			}
			bsas := bsa.Standard().New()
			ctx, err := sched.NewContext(td, cores.OOO2, bsas)
			if err != nil {
				b.Fatal(err)
			}
			assign := ctx.Oracle(bsa.Standard().Names())
			res, err := exocore.Run(td, cores.OOO2, bsas, ctx.Plans, assign, exocore.RunOpts{})
			if err != nil {
				b.Fatal(err)
			}
			total += res.UnacceleratedFraction()
		}
		unaccel = total / float64(len(ws))
	}
	b.ReportMetric(100*unaccel, "unaccelerated-%")
}

// BenchmarkFig14Switching regenerates Figure 14: the dynamic switching
// timeline of a full ExoCore.
func BenchmarkFig14Switching(b *testing.B) {
	w, err := workloads.ByName("djpeg")
	if err != nil {
		b.Fatal(err)
	}
	var switches int
	for i := 0; i < b.N; i++ {
		tr, err := w.Trace(benchDyn)
		if err != nil {
			b.Fatal(err)
		}
		td, err := tdg.Build(tr)
		if err != nil {
			b.Fatal(err)
		}
		bsas := bsa.Standard().New()
		ctx, err := sched.NewContext(td, cores.OOO2, bsas)
		if err != nil {
			b.Fatal(err)
		}
		assign := ctx.Oracle(bsa.Standard().Names())
		res, err := exocore.Run(td, cores.OOO2, bsas, ctx.Plans, assign,
			exocore.RunOpts{RecordSegments: true})
		if err != nil {
			b.Fatal(err)
		}
		switches = 0
		for k := 1; k < len(res.Segments); k++ {
			if res.Segments[k].BSA != res.Segments[k-1].BSA {
				switches++
			}
		}
	}
	b.ReportMetric(float64(switches), "model-switches")
}

// BenchmarkFig15Schedulers regenerates Figure 15: Oracle vs Amdahl-tree
// scheduling on multi-phase Mediabench workloads.
func BenchmarkFig15Schedulers(b *testing.B) {
	var names []string
	for _, w := range workloads.All() {
		if w.Suite == "Mediabench" {
			names = append(names, w.Name)
		}
	}
	names = names[:4]
	avail := bsa.Standard().Names()
	var ratio float64
	for i := 0; i < b.N; i++ {
		var ratios []float64
		for _, name := range names {
			w, _ := workloads.ByName(name)
			tr, err := w.Trace(benchDyn)
			if err != nil {
				b.Fatal(err)
			}
			td, err := tdg.Build(tr)
			if err != nil {
				b.Fatal(err)
			}
			ctx, err := sched.NewContext(td, cores.OOO2, bsa.Standard().New())
			if err != nil {
				b.Fatal(err)
			}
			oc, _, err := ctx.Evaluate(ctx.Oracle(avail))
			if err != nil {
				b.Fatal(err)
			}
			ac, _, err := ctx.Evaluate(ctx.AmdahlTree(avail))
			if err != nil {
				b.Fatal(err)
			}
			ratios = append(ratios, float64(oc)/float64(ac))
		}
		ratio = stats.Geomean(ratios)
	}
	b.ReportMetric(ratio, "amdahl/oracle-perf")
}

// BenchmarkAblationWindow sweeps the issue-window size of the OOO2 model
// (DESIGN.md §5: windowed graph solving sensitivity).
func BenchmarkAblationWindow(b *testing.B) {
	w, err := workloads.ByName("mm")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := w.Trace(benchDyn)
	if err != nil {
		b.Fatal(err)
	}
	for _, win := range []int{8, 16, 32, 64} {
		cfg := cores.OOO2
		cfg.Window = win
		b.Run(cfg.Name+"-w"+itoa(win), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				cycles, _ = cores.Evaluate(cfg, tr)
			}
			b.ReportMetric(float64(tr.Len())/float64(cycles), "ipc")
		})
	}
}

// BenchmarkAblationSchedulerMetric compares oracle selections under the
// energy-delay metric against a pure-performance oracle by disabling the
// energy term via the available-BSA sets (DESIGN.md §5).
func BenchmarkAblationSchedulerMetric(b *testing.B) {
	w, err := workloads.ByName("cjpeg")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := w.Trace(benchDyn)
	if err != nil {
		b.Fatal(err)
	}
	td, err := tdg.Build(tr)
	if err != nil {
		b.Fatal(err)
	}
	var edp, perfOnly float64
	for i := 0; i < b.N; i++ {
		ctx, err := sched.NewContext(td, cores.OOO2, bsa.Standard().New())
		if err != nil {
			b.Fatal(err)
		}
		cycles, energyNJ, err := ctx.Evaluate(ctx.Oracle(bsa.Standard().Names()))
		if err != nil {
			b.Fatal(err)
		}
		edp = float64(cycles) * energyNJ
		// "Perf-only": best single-BSA full assignment by cycles.
		best := int64(1 << 62)
		var bestE float64
		for _, one := range bsa.Standard().Names() {
			c, e, err := ctx.Evaluate(ctx.Oracle([]string{one}))
			if err != nil {
				b.Fatal(err)
			}
			if c < best {
				best, bestE = c, e
			}
		}
		perfOnly = float64(best) * bestE
	}
	b.ReportMetric(perfOnly/edp, "edp-gain-vs-single-bsa")
}

// BenchmarkAblationPrefetch compares stream workloads with and without
// the next-line prefetcher (a memory-system knob outside the paper's
// configuration, exercised via the TraceWith hook).
func BenchmarkAblationPrefetch(b *testing.B) {
	w, err := workloads.ByName("stencil")
	if err != nil {
		b.Fatal(err)
	}
	for _, pf := range []bool{false, true} {
		name := "off"
		if pf {
			name = "on"
		}
		b.Run("prefetch-"+name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				h := cache.DefaultHierarchy()
				h.NextLinePrefetch = pf
				tr, err := w.TraceWith(benchDyn, h)
				if err != nil {
					b.Fatal(err)
				}
				cycles, _ = cores.Evaluate(cores.OOO2, tr)
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkFusionRules measures the declarative transform DSL (the §5.5
// extension): the standard fusion rule set applied to a kernel.
func BenchmarkFusionRules(b *testing.B) {
	w, err := workloads.ByName("conv")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := w.Trace(benchDyn)
	if err != nil {
		b.Fatal(err)
	}
	td, err := tdg.Build(tr)
	if err != nil {
		b.Fatal(err)
	}
	base, _ := cores.Evaluate(cores.OOO2, tr)
	var speedup float64
	for i := 0; i < b.N; i++ {
		plan := fusion.Analyze(td, fusion.StandardRules)
		fused, _ := fusion.Evaluate(td, cores.OOO2, plan)
		speedup = float64(base) / float64(fused)
	}
	b.ReportMetric(speedup, "fusion-speedup")
}

// BenchmarkGraphConstruction measures raw µDG build+solve throughput —
// the framework's core operation.
func BenchmarkGraphConstruction(b *testing.B) {
	w, err := workloads.ByName("mm")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := w.Trace(50000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cores.Evaluate(cores.OOO4, tr)
	}
	b.SetBytes(int64(tr.Len())) // "bytes" = dynamic instructions
}

// BenchmarkReferenceSimulator measures the independent cycle-level
// simulator for comparison with the graph model's throughput.
func BenchmarkReferenceSimulator(b *testing.B) {
	w, err := workloads.ByName("mm")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := w.Trace(50000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refsim.Simulate(cores.OOO4, tr)
	}
	b.SetBytes(int64(tr.Len()))
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkServeEvaluate measures the daemon's warm serving path: one
// /v1/evaluate request against a hot engine, over real HTTP. After the
// first iteration pays for the pipeline, the steady state is request
// decode + singleflight + cache-hit evaluation + document render — the
// latency a client of a long-running exocored actually sees.
func BenchmarkServeEvaluate(b *testing.B) {
	eng := stdEngine()
	srv, err := serve.New(serve.Config{Engine: eng})
	if err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	const body = `{"bench":"mm","core":"OOO2","bsas":"all","sched":"oracle"}`
	post := func() {
		resp, err := http.Post(hs.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		n, _ := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		b.SetBytes(n)
	}
	post() // warm the engine outside the timed region
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post()
	}
}
