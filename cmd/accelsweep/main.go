// Command accelsweep explores the accelerator-parameter dimension the
// paper's §5.5 leaves open ("a much larger design space including varying
// core and accelerator parameters"): it sweeps the DP-CGRA fabric size,
// the NS-DF configuration budget and the Trace-P hot-trace threshold, and
// reports the geomean speedup and energy efficiency of each variant as a
// single-BSA design on the chosen core. Variants are evaluated over the
// engine's worker pool; -json emits one schema row per variant.
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"exocore/internal/bsa/dpcgra"
	"exocore/internal/bsa/gsdae"
	"exocore/internal/bsa/nsdf"
	"exocore/internal/bsa/tracep"
	"exocore/internal/bsa/xloops"
	"exocore/internal/cli"
	"exocore/internal/cores"
	"exocore/internal/exocore"
	"exocore/internal/obs"
	"exocore/internal/report"
	"exocore/internal/runner"
	"exocore/internal/stats"
	"exocore/internal/tdg"
)

func main() {
	app := cli.New("accelsweep", "mm,nbody,vr,cjpeg,spmv,stencil,gsmencode,hmmer")
	app.SetMaxDynDefault(40000)
	app.MustParse()
	defer app.Close()
	eng := app.Engine()
	core := app.CoreConfig()

	var tds []*tdg.TDG
	for _, w := range app.Workloads() {
		td, err := eng.TDG(w)
		if err != nil {
			app.Fail(err)
		}
		tds = append(tds, td)
	}

	type variant struct {
		sweep string
		label string
		model func() tdg.BSA
	}
	var variants []variant
	addSweep := func(name string, vs ...variant) {
		for _, v := range vs {
			v.sweep = name
			variants = append(variants, v)
		}
	}
	addSweep("DP-CGRA fabric size",
		variant{label: "16 FUs", model: func() tdg.BSA { return &dpcgra.Model{FUs: 16, RouteLatency: 1} }},
		variant{label: "32 FUs", model: func() tdg.BSA { return &dpcgra.Model{FUs: 32, RouteLatency: 1} }},
		variant{label: "64 FUs (paper)", model: func() tdg.BSA { return dpcgra.New() }},
		variant{label: "128 FUs", model: func() tdg.BSA { return &dpcgra.Model{FUs: 128, RouteLatency: 1} }},
	)
	addSweep("DP-CGRA routing latency",
		variant{label: "0 hops", model: func() tdg.BSA { return &dpcgra.Model{FUs: 64, RouteLatency: 0} }},
		variant{label: "1 hop (paper)", model: func() tdg.BSA { return dpcgra.New() }},
		variant{label: "3 hops", model: func() tdg.BSA { return &dpcgra.Model{FUs: 64, RouteLatency: 3} }},
	)
	addSweep("NS-DF configuration budget",
		variant{label: "64 insts", model: func() tdg.BSA { m := nsdf.New(); m.MaxStaticInsts = 64; return m }},
		variant{label: "128 insts", model: func() tdg.BSA { m := nsdf.New(); m.MaxStaticInsts = 128; return m }},
		variant{label: "256 insts (paper)", model: func() tdg.BSA { return nsdf.New() }},
		variant{label: "512 insts", model: func() tdg.BSA { m := nsdf.New(); m.MaxStaticInsts = 512; return m }},
	)
	addSweep("XLoops lane count (extension)",
		variant{label: "2 lanes", model: func() tdg.BSA { m := xloops.New(); m.Lanes = 2; return m }},
		variant{label: "4 lanes", model: func() tdg.BSA { return xloops.New() }},
		variant{label: "8 lanes", model: func() tdg.BSA { m := xloops.New(); m.Lanes = 8; return m }},
	)
	addSweep("GS-DAE prefetch queue depth",
		variant{label: "4 deep", model: func() tdg.BSA { m := gsdae.New(); m.QueueDepth = 4; return m }},
		variant{label: "16 deep (default)", model: func() tdg.BSA { return gsdae.New() }},
		variant{label: "64 deep", model: func() tdg.BSA { m := gsdae.New(); m.QueueDepth = 64; return m }},
	)
	addSweep("Trace-P hot-path threshold",
		variant{label: "0.40", model: func() tdg.BSA { m := tracep.New(); m.MinHotFrac = 0.40; return m }},
		variant{label: "0.55 (paper-ish)", model: func() tdg.BSA { return tracep.New() }},
		variant{label: "0.80", model: func() tdg.BSA { m := tracep.New(); m.MinHotFrac = 0.80; return m }},
	)

	type outcome struct {
		speedup, eneff, coverage float64
	}
	results, err := runner.Map(eng, len(variants), func(i int) (outcome, error) {
		span := app.Tracer().Begin("stage", "variant "+variants[i].label)
		defer span.End()
		sp, en, cov, err := evalVariant(tds, core, variants[i].model, span)
		return outcome{sp, en, cov}, err
	})
	if err != nil {
		app.Fail(err)
	}

	if app.JSON {
		doc := report.New("accelsweep")
		for i, v := range variants {
			doc.Add(report.Result{
				Design: core.Name, Core: core.Name,
				Params: map[string]string{"sweep": v.sweep, "variant": v.label},
				Extra: map[string]float64{
					"geomean_speedup":    results[i].speedup,
					"geomean_energy_eff": results[i].eneff,
					"coverage":           results[i].coverage,
				},
			})
		}
		app.Emit(doc)
		return
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "SWEEP\tVARIANT\tGEOMEAN SPEEDUP\tGEOMEAN EN-EFF\tCOVERAGE\n")
	for i, v := range variants {
		fmt.Fprintf(w, "%s\t%s\t%.2fx\t%.2fx\t%.0f%%\n",
			v.sweep, v.label, results[i].speedup, results[i].eneff, 100*results[i].coverage)
	}
	w.Flush()
	app.Finish()
}

// evalVariant runs every TDG with all of the variant's planned regions
// assigned (single-BSA solo), returning geomean speedup, geomean energy
// efficiency, and mean offload coverage. span, when active, receives
// the per-unit evaluation spans.
func evalVariant(tds []*tdg.TDG, core cores.Config, mk func() tdg.BSA, span obs.Span) (float64, float64, float64, error) {
	var sps, ens []float64
	var cov float64
	for _, td := range tds {
		model := mk()
		bsas := map[string]tdg.BSA{model.Name(): model}
		plans := map[string]*tdg.Plan{model.Name(): model.Analyze(td)}
		base, err := exocore.Run(td, core, bsas, plans, nil, exocore.RunOpts{Span: span})
		if err != nil {
			return 0, 0, 0, err
		}
		assign := exocore.Assignment{}
		for l := range plans[model.Name()].Regions {
			assign[l] = model.Name()
		}
		acc, err := exocore.Run(td, core, bsas, plans, assign, exocore.RunOpts{Span: span})
		if err != nil {
			return 0, 0, 0, err
		}
		sps = append(sps, float64(base.Cycles)/float64(acc.Cycles))
		baseE := exocore.EnergyOf(base, core, bsas).TotalNJ()
		accE := exocore.EnergyOf(acc, core, bsas).TotalNJ()
		ens = append(ens, baseE/accE)
		cov += 1 - acc.UnacceleratedFraction()
	}
	return stats.Geomean(sps), stats.Geomean(ens), cov / float64(len(tds)), nil
}
