// Command accelsweep explores the accelerator-parameter dimension the
// paper's §5.5 leaves open ("a much larger design space including varying
// core and accelerator parameters"): it sweeps the DP-CGRA fabric size,
// the NS-DF configuration budget and the Trace-P hot-trace threshold, and
// reports the geomean speedup and energy efficiency of each variant as a
// single-BSA design on the chosen core.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"exocore/internal/bsa/dpcgra"
	"exocore/internal/bsa/nsdf"
	"exocore/internal/bsa/tracep"
	"exocore/internal/bsa/xloops"
	"exocore/internal/cores"
	"exocore/internal/exocore"
	"exocore/internal/stats"
	"exocore/internal/tdg"
	"exocore/internal/workloads"
)

func main() {
	maxDyn := flag.Int("maxdyn", 40000, "dynamic instruction budget per benchmark")
	coreName := flag.String("core", "OOO2", "general core")
	benchList := flag.String("benches", "mm,nbody,vr,cjpeg,spmv,stencil,gsmencode,hmmer", "benchmarks")
	flag.Parse()

	core, ok := cores.ConfigByName(*coreName)
	if !ok {
		fmt.Fprintln(os.Stderr, "accelsweep: unknown core", *coreName)
		os.Exit(1)
	}

	var tds []*tdg.TDG
	for _, w := range workloads.All() {
		if !contains(*benchList, w.Name) {
			continue
		}
		tr, err := w.Trace(*maxDyn)
		if err != nil {
			fail(err)
		}
		td, err := tdg.Build(tr)
		if err != nil {
			fail(err)
		}
		tds = append(tds, td)
	}

	type variant struct {
		label string
		model func() tdg.BSA
	}
	sweeps := []struct {
		name     string
		variants []variant
	}{
		{"DP-CGRA fabric size", []variant{
			{"16 FUs", func() tdg.BSA { return &dpcgra.Model{FUs: 16, RouteLatency: 1} }},
			{"32 FUs", func() tdg.BSA { return &dpcgra.Model{FUs: 32, RouteLatency: 1} }},
			{"64 FUs (paper)", func() tdg.BSA { return dpcgra.New() }},
			{"128 FUs", func() tdg.BSA { return &dpcgra.Model{FUs: 128, RouteLatency: 1} }},
		}},
		{"DP-CGRA routing latency", []variant{
			{"0 hops", func() tdg.BSA { return &dpcgra.Model{FUs: 64, RouteLatency: 0} }},
			{"1 hop (paper)", func() tdg.BSA { return dpcgra.New() }},
			{"3 hops", func() tdg.BSA { return &dpcgra.Model{FUs: 64, RouteLatency: 3} }},
		}},
		{"NS-DF configuration budget", []variant{
			{"64 insts", func() tdg.BSA { m := nsdf.New(); m.MaxStaticInsts = 64; return m }},
			{"128 insts", func() tdg.BSA { m := nsdf.New(); m.MaxStaticInsts = 128; return m }},
			{"256 insts (paper)", func() tdg.BSA { return nsdf.New() }},
			{"512 insts", func() tdg.BSA { m := nsdf.New(); m.MaxStaticInsts = 512; return m }},
		}},
		{"XLoops lane count (extension)", []variant{
			{"2 lanes", func() tdg.BSA { m := xloops.New(); m.Lanes = 2; return m }},
			{"4 lanes", func() tdg.BSA { return xloops.New() }},
			{"8 lanes", func() tdg.BSA { m := xloops.New(); m.Lanes = 8; return m }},
		}},
		{"Trace-P hot-path threshold", []variant{
			{"0.40", func() tdg.BSA { m := tracep.New(); m.MinHotFrac = 0.40; return m }},
			{"0.55 (paper-ish)", func() tdg.BSA { return tracep.New() }},
			{"0.80", func() tdg.BSA { m := tracep.New(); m.MinHotFrac = 0.80; return m }},
		}},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "SWEEP\tVARIANT\tGEOMEAN SPEEDUP\tGEOMEAN EN-EFF\tCOVERAGE\n")
	for _, sweep := range sweeps {
		for _, v := range sweep.variants {
			sp, en, cov := evalVariant(tds, core, v.model)
			fmt.Fprintf(w, "%s\t%s\t%.2fx\t%.2fx\t%.0f%%\n", sweep.name, v.label, sp, en, 100*cov)
		}
	}
	w.Flush()
}

// evalVariant runs every TDG with all of the variant's planned regions
// assigned (single-BSA solo), returning geomean speedup, geomean energy
// efficiency, and mean offload coverage.
func evalVariant(tds []*tdg.TDG, core cores.Config, mk func() tdg.BSA) (float64, float64, float64) {
	var sps, ens []float64
	var cov float64
	for _, td := range tds {
		model := mk()
		bsas := map[string]tdg.BSA{model.Name(): model}
		plans := map[string]*tdg.Plan{model.Name(): model.Analyze(td)}
		base, err := exocore.Run(td, core, bsas, plans, nil, exocore.RunOpts{})
		if err != nil {
			fail(err)
		}
		assign := exocore.Assignment{}
		for l := range plans[model.Name()].Regions {
			assign[l] = model.Name()
		}
		acc, err := exocore.Run(td, core, bsas, plans, assign, exocore.RunOpts{})
		if err != nil {
			fail(err)
		}
		sps = append(sps, float64(base.Cycles)/float64(acc.Cycles))
		baseE := exocore.EnergyOf(base, core, bsas).TotalNJ()
		accE := exocore.EnergyOf(acc, core, bsas).TotalNJ()
		ens = append(ens, baseE/accE)
		cov += 1 - acc.UnacceleratedFraction()
	}
	return stats.Geomean(sps), stats.Geomean(ens), cov / float64(len(tds))
}

func contains(list, name string) bool {
	for len(list) > 0 {
		i := 0
		for i < len(list) && list[i] != ',' {
			i++
		}
		if list[:i] == name {
			return true
		}
		if i == len(list) {
			break
		}
		list = list[i+1:]
	}
	return false
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "accelsweep:", err)
	os.Exit(1)
}
