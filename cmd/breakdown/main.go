// Command breakdown reproduces Figure 13: for every benchmark on an
// OOO2-based full ExoCore, the fraction of execution time and energy
// attributable to the general core and to each BSA, relative to the
// plain OOO2.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"exocore/internal/cores"
	"exocore/internal/dse"
	"exocore/internal/energy"
	"exocore/internal/exocore"
	"exocore/internal/sched"
	"exocore/internal/tdg"
	"exocore/internal/workloads"
)

var bsaOrder = []string{"", "SIMD", "DP-CGRA", "NS-DF", "Trace-P"}

func main() {
	maxDyn := flag.Int("maxdyn", dse.DefaultMaxDyn, "dynamic instruction budget per benchmark")
	coreName := flag.String("core", "OOO2", "general core")
	csv := flag.Bool("csv", false, "emit CSV instead of a table")
	flag.Parse()

	core, ok := cores.ConfigByName(*coreName)
	if !ok {
		fmt.Fprintln(os.Stderr, "breakdown: unknown core", *coreName)
		os.Exit(1)
	}

	var w *tabwriter.Writer
	if *csv {
		fmt.Println("benchmark,model,time_frac,energy_frac,rel_time,rel_energy")
	} else {
		fmt.Printf("# Figure 13: per-benchmark execution time and energy of the %s ExoCore\n", *coreName)
		fmt.Printf("# (fractions of the plain %s; columns are per-model shares)\n", *coreName)
		w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "BENCH\tREL TIME\tREL ENERGY\tGPP\tSIMD\tDP-CGRA\tNS-DF\tTrace-P\tUNACCEL")
	}

	var totalUnaccel, count float64
	for _, wl := range workloads.All() {
		tr, err := wl.Trace(*maxDyn)
		if err != nil {
			fail(err)
		}
		td, err := tdg.Build(tr)
		if err != nil {
			fail(err)
		}
		bsas := dse.NewBSASet()
		ctx, err := sched.NewContext(td, core, bsas)
		if err != nil {
			fail(err)
		}
		assign := ctx.Oracle([]string{"SIMD", "DP-CGRA", "NS-DF", "Trace-P"})
		res, err := exocore.Run(td, core, bsas, ctx.Plans, assign, exocore.RunOpts{})
		if err != nil {
			fail(err)
		}
		e := exocore.EnergyOf(res, core, bsas)
		relTime := float64(res.Cycles) / float64(ctx.BaseCycles)
		relEnergy := e.TotalNJ() / ctx.BaseEnergyNJ
		totalUnaccel += res.UnacceleratedFraction()
		count++

		if *csv {
			for _, name := range bsaOrder {
				label := name
				if label == "" {
					label = "GPP"
				}
				tf := float64(res.PerBSACycles[name]) / float64(res.Cycles)
				ef := energyFrac(res, name)
				fmt.Printf("%s,%s,%.4f,%.4f,%.4f,%.4f\n", wl.Name, label, tf, ef, relTime, relEnergy)
			}
			continue
		}
		fmt.Fprintf(w, "%s\t%.2f\t%.2f", wl.Name, relTime, relEnergy)
		for _, name := range bsaOrder {
			fmt.Fprintf(w, "\t%.0f%%", 100*float64(res.PerBSACycles[name])/float64(res.Cycles))
		}
		fmt.Fprintf(w, "\t%.0f%%\n", 100*res.UnacceleratedFraction())
	}
	if w != nil {
		w.Flush()
		fmt.Printf("\naverage un-accelerated fraction: %.0f%% (paper §5: 16%% for the full OOO2 ExoCore)\n",
			100*totalUnaccel/count)
	}
}

func energyFrac(res *exocore.RunResult, name string) float64 {
	var total, part float64
	tmp := energy.CoreTable(energy.CoreParams{Width: 2, ROB: 64, Window: 32, AreaMM2: 3.2})
	for n, c := range res.PerBSACounts {
		e := tmp.Evaluate(c, 0).DynamicNJ
		total += e
		if n == name {
			part = e
		}
	}
	if total == 0 {
		return 0
	}
	return part / total
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "breakdown:", err)
	os.Exit(1)
}
