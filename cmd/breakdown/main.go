// Command breakdown reproduces Figure 13: for every benchmark on a full
// ExoCore (every registered BSA on the -core general core), the fraction
// of execution time and energy attributable to the general core and to
// each BSA, relative to the plain core. -json emits the shared result
// schema with per-model coverage.
package main

import (
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"exocore/internal/cli"
	"exocore/internal/energy"
	"exocore/internal/exocore"
	"exocore/internal/report"
)

func main() {
	app := cli.New("breakdown", "all")
	regions := app.Flags().Bool("regions", false, "print the per-region attribution table per benchmark")
	app.MustParse()
	defer app.Close()
	eng := app.Engine()
	core := app.CoreConfig()

	avail := app.Registry().Names()
	bsaOrder := append([]string{""}, avail...)
	design := app.Registry().DesignCode(core.Name, avail)

	doc := report.New("breakdown")
	var w *tabwriter.Writer
	if !app.JSON {
		fmt.Printf("# Figure 13: per-benchmark execution time and energy of the %s ExoCore\n", core.Name)
		fmt.Printf("# (fractions of the plain %s; columns are per-model shares)\n", core.Name)
		w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "BENCH\tREL TIME\tREL ENERGY\tGPP\t"+strings.Join(avail, "\t")+"\tUNACCEL")
	}

	var totalUnaccel, count float64
	type benchRegions struct {
		bench string
		rows  []exocore.RegionStat
	}
	var regionTables []benchRegions
	for _, wl := range app.Workloads() {
		td, err := eng.TDG(wl)
		if err != nil {
			app.Fail(err)
		}
		ctx, err := eng.Context(wl, core)
		if err != nil {
			app.Fail(err)
		}
		assign := ctx.Oracle(avail)
		// Reuse the context's models and unit cache; the scheduler already
		// evaluated most of these units.
		sp := app.Tracer().Begin("stage", "report "+wl.Name)
		res, err := exocore.Run(td, core, ctx.BSAs, ctx.Plans, assign, exocore.RunOpts{
			Cache: ctx.Cache, RecordRegions: *regions, Span: sp, Reg: eng.Registry(),
		})
		sp.End()
		if err != nil {
			app.Fail(err)
		}
		e := exocore.EnergyOf(res, core, ctx.BSAs)
		relTime := float64(res.Cycles) / float64(ctx.BaseCycles)
		relEnergy := e.TotalNJ() / ctx.BaseEnergyNJ
		totalUnaccel += res.UnacceleratedFraction()
		count++

		if app.JSON {
			coverage := make(map[string]float64, len(bsaOrder))
			energyCov := make(map[string]float64, len(bsaOrder))
			for _, name := range bsaOrder {
				label := name
				if label == "" {
					label = "GPP"
				}
				coverage[label] = float64(res.CyclesOf(name)) / float64(res.Cycles)
				energyCov["energy_frac_"+label] = energyFrac(res, name)
			}
			r := report.Result{
				Design: design, Core: core.Name, BSAs: avail,
				Bench: wl.Name, Category: string(wl.Category),
				Cycles: res.Cycles, EnergyNJ: e.TotalNJ(),
				Coverage: coverage,
				Extra: map[string]float64{
					"rel_time":           relTime,
					"rel_energy":         relEnergy,
					"unaccelerated_frac": res.UnacceleratedFraction(),
				},
			}
			for k, v := range energyCov {
				r.Extra[k] = v
			}
			doc.Add(r)
			if *regions {
				doc.Add(report.RegionResults(design, core.Name,
					wl.Name, res.Regions, core)...)
			}
			continue
		}
		if *regions {
			regionTables = append(regionTables, benchRegions{wl.Name, res.Regions})
		}
		fmt.Fprintf(w, "%s\t%.2f\t%.2f", wl.Name, relTime, relEnergy)
		for _, name := range bsaOrder {
			fmt.Fprintf(w, "\t%.0f%%", 100*float64(res.CyclesOf(name))/float64(res.Cycles))
		}
		fmt.Fprintf(w, "\t%.0f%%\n", 100*res.UnacceleratedFraction())
	}
	if app.JSON {
		app.Emit(doc)
		return
	}
	w.Flush()
	for _, bt := range regionTables {
		fmt.Printf("\nper-region attribution (%s):\n", bt.bench)
		report.WriteRegionTable(os.Stdout, bt.rows, core)
	}
	fmt.Printf("\naverage un-accelerated fraction: %.0f%% (paper §5: 16%% for the full OOO2 ExoCore)\n",
		100*totalUnaccel/count)
	app.Finish()
}

func energyFrac(res *exocore.RunResult, name string) float64 {
	var total, part float64
	tmp := energy.CoreTable(energy.CoreParams{Width: 2, ROB: 64, Window: 32, AreaMM2: 3.2})
	// res.Models is name-sorted, keeping the float sum bit-identical
	// across runs.
	for i := range res.Models {
		m := &res.Models[i]
		e := tmp.Evaluate(&m.Counts, 0).DynamicNJ
		total += e
		if m.Name == name {
			part = e
		}
	}
	if total == 0 {
		return 0
	}
	return part / total
}
