// Command dse runs the paper's §5 design-space exploration over
// 4 cores × every subset of the registered BSAs (64 designs for the
// paper's four models, 128 with GS-DAE registered; -bsas restricts the
// registry) and reports:
//
//	-frontier      Figure 3/10: per-design relative performance/energy
//	               (series per BSA subset, points per core) + the Pareto
//	               frontier
//	-characterize  Figure 12: speedup, energy efficiency and area of all
//	               64 designs relative to IO2, sorted by performance
//	-headline      the §1/§5 headline claims (OOO2-ExoCore vs OOO6 etc.)
//
// It accepts the unified flag set (-bench, -sched, -maxdyn, -workers,
// -json, -v); -json emits every design point in the shared result schema.
package main

import (
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"exocore/internal/cli"
	"exocore/internal/dse"
	"exocore/internal/exocore"
	"exocore/internal/report"
)

func main() {
	app := cli.New("dse", "all")
	frontier := app.Flags().Bool("frontier", false, "emit Figure 3/10 data")
	characterize := app.Flags().Bool("characterize", false, "emit Figure 12 data")
	headline := app.Flags().Bool("headline", false, "evaluate the headline claims")
	regionsFor := app.Flags().String("regions", "", "also report per-region attribution for one design code (eg. OOO2-SDNT)")
	app.MustParse()
	defer app.Close()

	if !*frontier && !*characterize && !*headline {
		*frontier, *characterize, *headline = true, true, true
	}

	exp, err := dse.Explore(dse.Options{
		Workloads: app.Workloads(),
		UseAmdahl: app.UseAmdahl(),
		Engine:    app.Engine(),
	})
	if err != nil {
		app.Fail(err)
	}

	if app.JSON {
		doc := report.New("dse")
		exp.AppendTo(doc)
		if *regionsFor != "" {
			if err := reportRegions(app, *regionsFor, doc); err != nil {
				app.Fail(err)
			}
		}
		app.Emit(doc)
		return
	}

	if *frontier {
		printFrontier(exp)
	}
	if *characterize {
		printCharacterization(exp)
	}
	if *headline {
		printHeadline(exp)
	}
	if *regionsFor != "" {
		if err := reportRegions(app, *regionsFor, nil); err != nil {
			app.Fail(err)
		}
	}
	app.Finish()
}

// reportRegions evaluates one design over every benchmark with
// per-region attribution on — served almost entirely from the unit
// outcomes the exploration already cached — and either prints the paper
// style breakdown tables (doc == nil) or appends schema rows.
func reportRegions(app *cli.App, code string, doc *report.Document) error {
	eng := app.Engine()
	core, mask, err := dse.ParseDesignCodeIn(eng.BSAs(), code)
	if err != nil {
		return err
	}
	avail := eng.BSAs().SubsetNames(mask)
	for _, wl := range app.Workloads() {
		sc, err := eng.Context(wl, core)
		if err != nil {
			return err
		}
		var assign exocore.Assignment
		if app.UseAmdahl() {
			assign = sc.AmdahlTree(avail)
		} else {
			assign = sc.Oracle(avail)
		}
		sp := app.Tracer().Begin("stage", "regions "+wl.Name)
		res, err := exocore.Run(sc.TDG, core, sc.BSAs, sc.Plans, assign, exocore.RunOpts{
			Cache: sc.Cache, RecordRegions: true, Span: sp, Reg: eng.Registry(),
		})
		sp.End()
		if err != nil {
			return err
		}
		if doc != nil {
			doc.Add(report.RegionResults(code, core.Name, wl.Name, res.Regions, core)...)
			continue
		}
		fmt.Printf("\n# per-region attribution of %s on %s\n", code, wl.Name)
		report.WriteRegionTable(os.Stdout, res.Regions, core)
	}
	return nil
}

// byPerf sorts designs by relative performance with a deterministic
// design-code tiebreak, so output is byte-stable across runs.
func byPerf(designs []dse.DesignResult, descending bool) []dse.DesignResult {
	sorted := append([]dse.DesignResult(nil), designs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].RelPerf != sorted[j].RelPerf {
			if descending {
				return sorted[i].RelPerf > sorted[j].RelPerf
			}
			return sorted[i].RelPerf < sorted[j].RelPerf
		}
		return sorted[i].Code < sorted[j].Code
	})
	return sorted
}

func printFrontier(exp *dse.Exploration) {
	fmt.Println("# Figure 10: relative performance and energy efficiency vs IO2")
	fmt.Println("design,relperf,releneff,area_mm2")
	for _, d := range byPerf(exp.Designs, false) {
		fmt.Printf("%s,%.3f,%.3f,%.2f\n", d.Code, d.RelPerf, d.RelEnergyEff, d.AreaMM2)
	}
	fmt.Println("\n# Pareto frontier (Figure 3):")
	for _, d := range exp.Frontier() {
		fmt.Printf("#   %-12s perf=%.2fx  eneff=%.2fx  area=%.1fmm²\n",
			d.Code, d.RelPerf, d.RelEnergyEff, d.AreaMM2)
	}
}

func printCharacterization(exp *dse.Exploration) {
	fmt.Println("\n# Figure 12: design-space characterization (relative to IO2)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "DESIGN\tSPEEDUP\tENERGY EFF\tAREA")
	for _, d := range byPerf(exp.Designs, true) {
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\n", d.Code, d.RelPerf, d.RelEnergyEff, d.RelArea)
	}
	w.Flush()
}

func printHeadline(exp *dse.Exploration) {
	fmt.Println("\n# Headline claims (§1, §5)")
	show := func(label, a, b string) {
		perf, eff, err := exp.RelativeTo(a, b)
		if err != nil {
			fmt.Println("  ", label, "error:", err)
			return
		}
		da, db := exp.Design(a), exp.Design(b)
		fmt.Printf("  %-34s perf %.2fx  energy-eff %.2fx  area %.0f%%\n",
			label, perf, eff, 100*da.AreaMM2/db.AreaMM2)
	}
	show("OOO2-SDNT vs OOO2:", "OOO2-SDNT", "OOO2")
	show("OOO6-SDNT vs OOO6:", "OOO6-SDNT", "OOO6")
	show("OOO2-SDN  vs OOO6-S (paper: ≈perf, 2.6x en, 60% area):", "OOO2-SDN", "OOO6-S")
	show("IO2-SDNT  vs OOO2-S:", "IO2-SDNT", "OOO2-S")

	fmt.Println("\n  designs matching OOO6-S performance with less area:")
	base := exp.Design("OOO6-S")
	for _, d := range exp.Designs {
		if d.Code == "OOO6-S" || d.AreaMM2 >= base.AreaMM2 {
			continue
		}
		perf, eff, _ := exp.RelativeTo(d.Code, "OOO6-S")
		if perf >= 1.0 {
			fmt.Printf("    %-12s perf %.2fx  en-eff %.2fx  area %.0f%%\n",
				d.Code, perf, eff, 100*d.AreaMM2/base.AreaMM2)
		}
	}
	fmt.Println()
}
