// Command dse runs the paper's §5 design-space exploration over
// 4 cores × 16 BSA subsets = 64 designs and reports:
//
//	-frontier      Figure 3/10: per-design relative performance/energy
//	               (series per BSA subset, points per core) + the Pareto
//	               frontier
//	-characterize  Figure 12: speedup, energy efficiency and area of all
//	               64 designs relative to IO2, sorted by performance
//	-headline      the §1/§5 headline claims (OOO2-ExoCore vs OOO6 etc.)
//
// All modes accept -maxdyn and -benchset to trade time for fidelity.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"exocore/internal/dse"
	"exocore/internal/workloads"
)

func main() {
	maxDyn := flag.Int("maxdyn", dse.DefaultMaxDyn, "dynamic instruction budget per benchmark")
	frontier := flag.Bool("frontier", false, "emit Figure 3/10 data")
	characterize := flag.Bool("characterize", false, "emit Figure 12 data")
	headline := flag.Bool("headline", false, "evaluate the headline claims")
	amdahl := flag.Bool("amdahl", false, "use Amdahl-tree scheduling")
	benchset := flag.String("benchset", "all", "all | quick (6-benchmark subset)")
	flag.Parse()

	if !*frontier && !*characterize && !*headline {
		*frontier, *characterize, *headline = true, true, true
	}

	opts := dse.Options{MaxDyn: *maxDyn, UseAmdahl: *amdahl}
	if *benchset == "quick" {
		for _, name := range []string{"mm", "nbody", "cjpeg", "mcf", "gzip", "stencil"} {
			w, err := workloads.ByName(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dse:", err)
				os.Exit(1)
			}
			opts.Workloads = append(opts.Workloads, w)
		}
	}

	exp, err := dse.Explore(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dse:", err)
		os.Exit(1)
	}

	if *frontier {
		printFrontier(exp)
	}
	if *characterize {
		printCharacterization(exp)
	}
	if *headline {
		printHeadline(exp)
	}
}

func printFrontier(exp *dse.Exploration) {
	fmt.Println("# Figure 10: relative performance and energy efficiency vs IO2")
	fmt.Println("design,relperf,releneff,area_mm2")
	sorted := append([]dse.DesignResult(nil), exp.Designs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].RelPerf < sorted[j].RelPerf })
	for _, d := range sorted {
		fmt.Printf("%s,%.3f,%.3f,%.2f\n", d.Code, d.RelPerf, d.RelEnergyEff, d.AreaMM2)
	}
	fmt.Println("\n# Pareto frontier (Figure 3):")
	for _, d := range exp.Frontier() {
		fmt.Printf("#   %-12s perf=%.2fx  eneff=%.2fx  area=%.1fmm²\n",
			d.Code, d.RelPerf, d.RelEnergyEff, d.AreaMM2)
	}
}

func printCharacterization(exp *dse.Exploration) {
	fmt.Println("\n# Figure 12: design-space characterization (relative to IO2)")
	sorted := append([]dse.DesignResult(nil), exp.Designs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].RelPerf > sorted[j].RelPerf })
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "DESIGN\tSPEEDUP\tENERGY EFF\tAREA")
	for _, d := range sorted {
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\n", d.Code, d.RelPerf, d.RelEnergyEff, d.RelArea)
	}
	w.Flush()
}

func printHeadline(exp *dse.Exploration) {
	fmt.Println("\n# Headline claims (§1, §5)")
	show := func(label, a, b string) {
		perf, eff, err := exp.RelativeTo(a, b)
		if err != nil {
			fmt.Println("  ", label, "error:", err)
			return
		}
		da, db := exp.Design(a), exp.Design(b)
		fmt.Printf("  %-34s perf %.2fx  energy-eff %.2fx  area %.0f%%\n",
			label, perf, eff, 100*da.AreaMM2/db.AreaMM2)
	}
	show("OOO2-SDNT vs OOO2:", "OOO2-SDNT", "OOO2")
	show("OOO6-SDNT vs OOO6:", "OOO6-SDNT", "OOO6")
	show("OOO2-SDN  vs OOO6-S (paper: ≈perf, 2.6x en, 60% area):", "OOO2-SDN", "OOO6-S")
	show("IO2-SDNT  vs OOO2-S:", "IO2-SDNT", "OOO2-S")

	fmt.Println("\n  designs matching OOO6-S performance with less area:")
	base := exp.Design("OOO6-S")
	for _, d := range exp.Designs {
		if d.Code == "OOO6-S" || d.AreaMM2 >= base.AreaMM2 {
			continue
		}
		perf, eff, _ := exp.RelativeTo(d.Code, "OOO6-S")
		if perf >= 1.0 {
			fmt.Printf("    %-12s perf %.2fx  en-eff %.2fx  area %.0f%%\n",
				d.Code, perf, eff, 100*d.AreaMM2/base.AreaMM2)
		}
	}

	// Unaccelerated fraction for the full OOO2 ExoCore (§5: ~16%).
	fmt.Println()
}
