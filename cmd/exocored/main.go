// Command exocored is the long-running evaluation daemon: it keeps one
// warm runner.Engine and serves evaluation and DSE-sweep queries over a
// JSON HTTP API (see internal/serve for the endpoints and semantics).
//
// Usage:
//
//	exocored -addr 127.0.0.1:8080
//	curl -s localhost:8080/healthz
//	curl -s -d '{"bench":"mm","core":"OOO2"}' localhost:8080/v1/evaluate
//	curl -s -d '{"designs":["IO2","OOO2-SDN"]}' localhost:8080/v1/sweep
//
// The engine-shaping flags are the unified set (-maxdyn, -workers, -v,
// -trace, ...); one daemon serves exactly one -maxdyn budget. SIGINT or
// SIGTERM drains in-flight work within -drain and exits 0.
//
// The telemetry plane is always on: a bounded flight-recorder ring
// tracer (-flight-spans) tags every span with its request ID and backs
// GET /debug/requests/{id}/trace, a runtime sampler (-obs-interval)
// feeds go.* instruments into /metricsz (scrapeable as Prometheus text
// via ?format=prom), and -pprof mounts net/http/pprof.
package main

import (
	"context"
	"errors"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"exocore/internal/cli"
	"exocore/internal/cores"
	"exocore/internal/obs"
	"exocore/internal/serve"
)

func main() {
	app := cli.New("exocored", "all")
	addr := app.Flags().String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks an ephemeral port)")
	portFile := app.Flags().String("portfile", "", "write the resolved listen address to this file once listening")
	concurrency := app.Flags().Int("concurrency", 0, "max concurrent evaluations (0 = the -workers bound)")
	queue := app.Flags().Int("queue", 0, "admission queue depth before 429 (0 = 4x concurrency)")
	timeout := app.Flags().Duration("timeout", 60*time.Second, "per-request evaluation deadline")
	drain := app.Flags().Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	warm := app.Flags().Bool("warm", false, "pre-warm scheduling contexts for -bench across every core in the background")
	flightSpans := app.Flags().Int("flight-spans", 4096, "flight-recorder span retention (ring capacity; 0 disables always-on tracing)")
	obsInterval := app.Flags().Duration("obs-interval", 5*time.Second, "runtime/metrics sampling interval for go.* instruments (0 disables)")
	pprofOn := app.Flags().Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	app.MustParse()
	defer app.Close()

	// Always-on tracing: a bounded ring unless -trace asked for a full
	// dump tracer, which then serves both roles.
	if *flightSpans > 0 {
		app.SetTracer(obs.NewRingTracer("exocored", *flightSpans))
	}

	eng := app.Engine()
	log := app.Log()
	if *obsInterval > 0 {
		sampler := obs.StartRuntimeSampler(eng.Registry(), *obsInterval)
		defer sampler.Stop()
	}
	srv, err := serve.New(serve.Config{
		Engine:         eng,
		Concurrency:    *concurrency,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		Tracer:         app.Tracer(),
		Log:            log,
		EnablePprof:    *pprofOn,
	})
	if err != nil {
		app.Fail(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		app.Fail(err)
	}
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			app.Fail(err)
		}
	}
	log.Info("exocored listening", "addr", ln.Addr().String(),
		"maxdyn", eng.MaxDyn(), "workers", eng.Workers())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *warm {
		go warmup(ctx, app)
	}

	hs := &http.Server{Handler: srv.Handler()}
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		stop()
		log.Info("draining", "budget", *drain)
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		err := hs.Shutdown(dctx)
		if derr := srv.Shutdown(dctx); err == nil {
			err = derr
		}
		shutdownErr <- err
	}()

	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		app.Fail(err)
	}
	if err := <-shutdownErr; err != nil {
		app.Fail(err)
	}
	log.Info("exocored stopped")
	app.Finish()
}

// warmup builds scheduling contexts for the configured benchmarks across
// every general core, so the first requests hit a hot engine. Best
// effort: a canceled warmup is not an error.
func warmup(ctx context.Context, app *cli.App) {
	eng := app.Engine()
	wls := app.Workloads()
	type pair struct {
		wl   int
		core cores.Config
	}
	var pairs []pair
	for i := range wls {
		for _, c := range cores.Configs {
			pairs = append(pairs, pair{i, c})
		}
	}
	start := time.Now()
	err := eng.ForEachCtx(ctx, len(pairs), func(i int) error {
		_, err := eng.ContextCtx(ctx, wls[pairs[i].wl], pairs[i].core)
		return err
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		app.Log().Warn("warmup failed", "err", err)
		return
	}
	app.Log().Info("warmup done", "contexts", len(pairs), "wall", time.Since(start))
}
