// Command exocored is the long-running evaluation daemon: it keeps one
// warm runner.Engine and serves evaluation and DSE-sweep queries over a
// JSON HTTP API (see internal/serve for the endpoints and semantics).
//
// Usage:
//
//	exocored -addr 127.0.0.1:8080
//	curl -s localhost:8080/healthz
//	curl -s -d '{"bench":"mm","core":"OOO2"}' localhost:8080/v1/evaluate
//	curl -s -d '{"designs":["IO2","OOO2-SDN"]}' localhost:8080/v1/sweep
//
// The engine-shaping flags are the unified set (-maxdyn, -workers, -v,
// -trace, ...); one daemon serves exactly one -maxdyn budget. SIGINT or
// SIGTERM drains in-flight work within -drain and exits 0.
//
// The telemetry plane is always on: a bounded flight-recorder ring
// tracer (-flight-spans) tags every span with its request ID and backs
// GET /debug/requests/{id}/trace, a runtime sampler (-obs-interval)
// feeds go.* instruments into /metricsz (scrapeable as Prometheus text
// via ?format=prom), and -pprof mounts net/http/pprof.
//
// Fabric roles (-role): "single" (the default) serves everything
// itself; "replica" is the same daemon acknowledging it sits behind a
// coordinator; "coordinator" evaluates nothing — it shards /v1/sweep
// across -replicas by consistent-hashing each (benchmark, core) cell,
// merges the partial results into bytes identical to a single daemon's
// answer, and proxies /v1/evaluate to the owning replica. Replicas
// (and single daemons) may add -store DIR for a persistent
// evaluation-unit store, so a restarted process comes up warm.
package main

import (
	"context"
	"errors"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"exocore/internal/cli"
	"exocore/internal/cores"
	"exocore/internal/fabric"
	"exocore/internal/obs"
	"exocore/internal/serve"
)

func main() {
	app := cli.New("exocored", "all")
	addr := app.Flags().String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks an ephemeral port)")
	portFile := app.Flags().String("portfile", "", "write the resolved listen address to this file once listening")
	concurrency := app.Flags().Int("concurrency", 0, "max concurrent evaluations (0 = the -workers bound)")
	queue := app.Flags().Int("queue", 0, "admission queue depth before 429 (0 = 4x concurrency)")
	timeout := app.Flags().Duration("timeout", 60*time.Second, "per-request evaluation deadline")
	drain := app.Flags().Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	warm := app.Flags().Bool("warm", false, "pre-warm scheduling contexts for -bench across every core in the background")
	flightSpans := app.Flags().Int("flight-spans", 4096, "flight-recorder span retention (ring capacity; 0 disables always-on tracing)")
	obsInterval := app.Flags().Duration("obs-interval", 5*time.Second, "runtime/metrics sampling interval for go.* instruments (0 disables)")
	pprofOn := app.Flags().Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	role := app.Flags().String("role", "single", "fabric role: single | replica | coordinator")
	replicas := app.Flags().String("replicas", "", "comma-separated replica base URLs (required with -role coordinator)")
	hedge := app.Flags().Duration("hedge", 10*time.Second, "coordinator: duplicate a straggling shard onto the next replica after this long (0 disables)")
	app.MustParse()
	defer app.Close()

	if err := cli.CheckEnum("-role", *role, "single", "replica", "coordinator"); err != nil {
		app.Fail(err)
	}
	if *role != "coordinator" && *replicas != "" {
		app.Fail(errors.New("-replicas is only meaningful with -role coordinator"))
	}
	if *role == "coordinator" {
		runCoordinator(app, *replicas, *addr, *portFile, *timeout, *drain, *hedge)
		return
	}

	// Always-on tracing: a bounded ring unless -trace asked for a full
	// dump tracer, which then serves both roles.
	if *flightSpans > 0 {
		app.SetTracer(obs.NewRingTracer("exocored", *flightSpans))
	}

	eng := app.Engine()
	log := app.Log()
	if *obsInterval > 0 {
		sampler := obs.StartRuntimeSampler(eng.Registry(), *obsInterval)
		defer sampler.Stop()
	}
	srv, err := serve.New(serve.Config{
		Engine:         eng,
		Concurrency:    *concurrency,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		Tracer:         app.Tracer(),
		Log:            log,
		EnablePprof:    *pprofOn,
		Role:           *role,
		Store:          app.Store(),
	})
	if err != nil {
		app.Fail(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		app.Fail(err)
	}
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			app.Fail(err)
		}
	}
	log.Info("exocored listening", "addr", ln.Addr().String(),
		"maxdyn", eng.MaxDyn(), "workers", eng.Workers())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *warm {
		go warmup(ctx, app)
	}

	hs := &http.Server{Handler: srv.Handler()}
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		stop()
		log.Info("draining", "budget", *drain)
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		err := hs.Shutdown(dctx)
		if derr := srv.Shutdown(dctx); err == nil {
			err = derr
		}
		shutdownErr <- err
	}()

	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		app.Fail(err)
	}
	if err := <-shutdownErr; err != nil {
		app.Fail(err)
	}
	log.Info("exocored stopped")
	app.Finish()
}

// runCoordinator serves the fabric coordinator: no engine, no store —
// just the ring, the shard dispatcher and the merge path over the
// replica set.
func runCoordinator(app *cli.App, replicaSpec, addr, portFile string, timeout, drain, hedge time.Duration) {
	if app.StoreDir != "" {
		app.Fail(errors.New("-store is for daemons that evaluate; the coordinator computes nothing (start the replicas with -store instead)"))
	}
	reps, err := fabric.ParseReplicas(replicaSpec)
	if err != nil {
		app.Fail(err)
	}
	log := app.Log()
	coord, err := fabric.New(fabric.Config{
		Replicas:       reps,
		RequestTimeout: timeout,
		HedgeAfter:     hedge,
		Reg:            obs.NewRegistry(),
		Log:            log,
	})
	if err != nil {
		app.Fail(err)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		app.Fail(err)
	}
	if portFile != "" {
		if err := os.WriteFile(portFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			app.Fail(err)
		}
	}
	log.Info("exocored coordinating", "addr", ln.Addr().String(), "replicas", len(reps))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{Handler: coord.Handler()}
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		stop()
		log.Info("draining", "budget", drain)
		dctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		shutdownErr <- hs.Shutdown(dctx)
	}()
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		app.Fail(err)
	}
	if err := <-shutdownErr; err != nil {
		app.Fail(err)
	}
	log.Info("exocored stopped")
	app.Finish()
}

// warmup builds scheduling contexts for the configured benchmarks across
// every general core, so the first requests hit a hot engine. Best
// effort: a canceled warmup is not an error.
func warmup(ctx context.Context, app *cli.App) {
	eng := app.Engine()
	wls := app.Workloads()
	type pair struct {
		wl   int
		core cores.Config
	}
	var pairs []pair
	for i := range wls {
		for _, c := range cores.Configs {
			pairs = append(pairs, pair{i, c})
		}
	}
	start := time.Now()
	err := eng.ForEachCtx(ctx, len(pairs), func(i int) error {
		_, err := eng.ContextCtx(ctx, wls[pairs[i].wl], pairs[i].core)
		return err
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		app.Log().Warn("warmup failed", "err", err)
		return
	}
	app.Log().Info("warmup done", "contexts", len(pairs), "wall", time.Since(start))
}
