// Command schedcmp reproduces Figure 15: the practicality comparison of
// the Oracle scheduler against the Amdahl-tree scheduler on the
// Mediabench workloads (the benchmarks that need multiple accelerators
// within one application). -json emits one schema row per benchmark plus
// a geomean aggregate row. The unified -trace/-v/-vv observability flags
// record engine spans and progress.
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"exocore/internal/cli"
	"exocore/internal/report"
	"exocore/internal/runner"
	"exocore/internal/stats"
	"exocore/internal/workloads"
)

func main() {
	app := cli.New("schedcmp", "all")
	suite := app.Flags().String("suite", "Mediabench", "suite to compare on (or 'all')")
	app.MustParse()
	defer app.Close()
	eng := app.Engine()
	core := app.CoreConfig()
	avail := app.Registry().Names()
	design := app.Registry().DesignCode(core.Name, avail)

	var wls []*workloads.Workload
	for _, wl := range app.Workloads() {
		if *suite != "all" && wl.Suite != *suite {
			continue
		}
		wls = append(wls, wl)
	}

	type row struct {
		bench  string
		oc, ac int64
		oe, ae float64
		baseC  int64
		baseE  float64
	}
	rows, err := runner.Map(eng, len(wls), func(i int) (row, error) {
		wl := wls[i]
		ctx, err := eng.Context(wl, core)
		if err != nil {
			return row{}, err
		}
		oc, oe, err := eng.Evaluate(wl, core, ctx.Oracle(avail))
		if err != nil {
			return row{}, err
		}
		ac, ae, err := eng.Evaluate(wl, core, ctx.AmdahlTree(avail))
		if err != nil {
			return row{}, err
		}
		return row{bench: wl.Name, oc: oc, ac: ac, oe: oe, ae: ae,
			baseC: ctx.BaseCycles, baseE: ctx.BaseEnergyNJ}, nil
	})
	if err != nil {
		app.Fail(err)
	}

	var perfRatio, energyRatio []float64
	for _, r := range rows {
		perfRatio = append(perfRatio, float64(r.oc)/float64(r.ac))
		energyRatio = append(energyRatio, r.oe/r.ae)
	}
	gmPerf, gmEnergy := stats.Geomean(perfRatio), stats.Geomean(energyRatio)

	if app.JSON {
		doc := report.New("schedcmp")
		for _, r := range rows {
			doc.Add(report.Result{
				Design: design, Core: core.Name, BSAs: avail,
				Bench:  r.bench,
				Params: map[string]string{"suite": *suite},
				Extra: map[string]float64{
					"oracle_cycles":     float64(r.oc),
					"amdahl_cycles":     float64(r.ac),
					"oracle_energy_nj":  r.oe,
					"amdahl_energy_nj":  r.ae,
					"oracle_rel_time":   float64(r.oc) / float64(r.baseC),
					"amdahl_rel_time":   float64(r.ac) / float64(r.baseC),
					"oracle_rel_energy": r.oe / r.baseE,
					"amdahl_rel_energy": r.ae / r.baseE,
				},
			})
		}
		doc.Add(report.Result{
			Design: design, Core: core.Name, BSAs: avail,
			Params: map[string]string{"suite": *suite, "aggregate": "geomean"},
			Extra: map[string]float64{
				"amdahl_vs_oracle_perf":       gmPerf,
				"amdahl_vs_oracle_energy_eff": gmEnergy,
			},
		})
		app.Emit(doc)
		return
	}

	fmt.Printf("# Figure 15: Oracle vs Amdahl-tree scheduler (%s ExoCore, relative to plain %s)\n",
		core.Name, core.Name)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "BENCH\tORACLE TIME\tAMDAHL TIME\tORACLE ENERGY\tAMDAHL ENERGY")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\t%.2f\n", r.bench,
			float64(r.oc)/float64(r.baseC), float64(r.ac)/float64(r.baseC),
			r.oe/r.baseE, r.ae/r.baseE)
	}
	w.Flush()
	fmt.Printf("\nAmdahl vs Oracle geomean: %.2fx performance, %.2fx energy efficiency\n",
		gmPerf, gmEnergy)
	fmt.Println("(paper §5.4: Amdahl gives 0.89x the Oracle's performance, 1.21x energy efficiency)")
	app.Finish()
}
