// Command schedcmp reproduces Figure 15: the practicality comparison of
// the Oracle scheduler against the Amdahl-tree scheduler on the
// Mediabench workloads (the benchmarks that need multiple accelerators
// within one application).
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"exocore/internal/cores"
	"exocore/internal/dse"
	"exocore/internal/sched"
	"exocore/internal/stats"
	"exocore/internal/tdg"
	"exocore/internal/workloads"
)

func main() {
	maxDyn := flag.Int("maxdyn", dse.DefaultMaxDyn, "dynamic instruction budget")
	coreName := flag.String("core", "OOO2", "general core")
	suite := flag.String("suite", "Mediabench", "suite to compare on (or 'all')")
	flag.Parse()

	core, ok := cores.ConfigByName(*coreName)
	if !ok {
		fmt.Fprintln(os.Stderr, "schedcmp: unknown core", *coreName)
		os.Exit(1)
	}
	avail := []string{"SIMD", "DP-CGRA", "NS-DF", "Trace-P"}

	fmt.Printf("# Figure 15: Oracle vs Amdahl-tree scheduler (%s ExoCore, relative to plain %s)\n",
		*coreName, *coreName)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "BENCH\tORACLE TIME\tAMDAHL TIME\tORACLE ENERGY\tAMDAHL ENERGY")

	var perfRatio, energyRatio []float64
	for _, wl := range workloads.All() {
		if *suite != "all" && wl.Suite != *suite {
			continue
		}
		tr, err := wl.Trace(*maxDyn)
		if err != nil {
			fail(err)
		}
		td, err := tdg.Build(tr)
		if err != nil {
			fail(err)
		}
		ctx, err := sched.NewContext(td, core, dse.NewBSASet())
		if err != nil {
			fail(err)
		}
		oc, oe, err := ctx.Evaluate(ctx.Oracle(avail))
		if err != nil {
			fail(err)
		}
		ac, ae, err := ctx.Evaluate(ctx.AmdahlTree(avail))
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\t%.2f\n", wl.Name,
			float64(oc)/float64(ctx.BaseCycles), float64(ac)/float64(ctx.BaseCycles),
			oe/ctx.BaseEnergyNJ, ae/ctx.BaseEnergyNJ)
		perfRatio = append(perfRatio, float64(oc)/float64(ac))
		energyRatio = append(energyRatio, oe/ae)
	}
	w.Flush()
	fmt.Printf("\nAmdahl vs Oracle geomean: %.2fx performance, %.2fx energy efficiency\n",
		stats.Geomean(perfRatio), stats.Geomean(energyRatio))
	fmt.Println("(paper §5.4: Amdahl gives 0.89x the Oracle's performance, 1.21x energy efficiency)")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "schedcmp:", err)
	os.Exit(1)
}
