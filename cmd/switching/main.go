// Command switching reproduces Figure 14: the dynamic accelerator-
// switching behavior of a full ExoCore over program execution. For each
// requested benchmark it emits the segment timeline — which model ran,
// from which cycle to which cycle, and the local speedup of that window
// over the plain core — demonstrating fine-grain affinity. -json emits
// one schema row per segment.
package main

import (
	"fmt"

	"exocore/internal/cli"
	"exocore/internal/exocore"
	"exocore/internal/report"
	"exocore/internal/workloads"
)

func main() {
	// The paper uses djpeg and 464.h264ref for Figure 14.
	app := cli.New("switching", "djpeg,h264ref")
	app.MustParse()
	defer app.Close()

	doc := report.New("switching")
	if !app.JSON {
		fmt.Println("benchmark,model,start_cycle,end_cycle,dyn_insts,local_speedup")
	}
	for _, wl := range app.Workloads() {
		if err := emit(app, doc, wl); err != nil {
			app.Fail(err)
		}
	}
	if app.JSON {
		app.Emit(doc)
		return
	}
	app.Finish()
}

func emit(app *cli.App, doc *report.Document, wl *workloads.Workload) error {
	eng := app.Engine()
	core := app.CoreConfig()
	td, err := eng.TDG(wl)
	if err != nil {
		return err
	}
	ctx, err := eng.Context(wl, core)
	if err != nil {
		return err
	}
	avail := app.Registry().Names()
	var assign exocore.Assignment
	if app.UseAmdahl() {
		assign = ctx.AmdahlTree(avail)
	} else {
		assign = ctx.Oracle(avail)
	}
	// Reuse the context's models and unit cache; the timeline composes
	// from the same memoized unit outcomes the scheduler measured.
	sp := app.Tracer().Begin("stage", "timeline "+wl.Name)
	res, err := exocore.Run(td, core, ctx.BSAs, ctx.Plans, assign,
		exocore.RunOpts{RecordSegments: true, Cache: ctx.Cache, Span: sp, Reg: eng.Registry()})
	sp.End()
	if err != nil {
		return err
	}

	// Baseline cycles-per-instruction, to express each segment's local
	// speedup over the plain core (Figure 14's y-axis).
	baseCPI := float64(ctx.BaseCycles) / float64(td.Trace.Len())
	for _, s := range res.Segments {
		model := s.BSA
		if model == "" {
			model = "Gen. Core"
		}
		dur := float64(s.EndCycle - s.StartCycle)
		if dur <= 0 {
			dur = 1
		}
		local := baseCPI * float64(s.Dyn) / dur
		if app.JSON {
			doc.Add(report.Result{
				Design: app.Registry().DesignCode(core.Name, avail), Core: core.Name, Bench: wl.Name,
				Params: map[string]string{"model": model},
				Extra: map[string]float64{
					"start_cycle":   float64(s.StartCycle),
					"end_cycle":     float64(s.EndCycle),
					"dyn_insts":     float64(s.Dyn),
					"local_speedup": local,
				},
			})
			continue
		}
		fmt.Printf("%s,%s,%d,%d,%d,%.2f\n", wl.Name, model, s.StartCycle, s.EndCycle, s.Dyn, local)
	}
	return nil
}
