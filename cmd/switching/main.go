// Command switching reproduces Figure 14: the dynamic accelerator-
// switching behavior of a full ExoCore over program execution. For each
// requested benchmark it emits the segment timeline — which model ran,
// from which cycle to which cycle, and the local speedup of that window
// over the plain core — demonstrating fine-grain affinity.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"exocore/internal/cores"
	"exocore/internal/dse"
	"exocore/internal/exocore"
	"exocore/internal/sched"
	"exocore/internal/tdg"
	"exocore/internal/workloads"
)

func main() {
	maxDyn := flag.Int("maxdyn", dse.DefaultMaxDyn, "dynamic instruction budget")
	benchList := flag.String("benches", "djpeg,h264ref", "comma-separated benchmarks (paper uses djpeg and 464.h264ref)")
	coreName := flag.String("core", "OOO2", "general core")
	flag.Parse()

	core, ok := cores.ConfigByName(*coreName)
	if !ok {
		fmt.Fprintln(os.Stderr, "switching: unknown core", *coreName)
		os.Exit(1)
	}

	fmt.Println("benchmark,model,start_cycle,end_cycle,dyn_insts,local_speedup")
	for _, name := range strings.Split(*benchList, ",") {
		name = strings.TrimSpace(name)
		if err := emit(name, core, *maxDyn); err != nil {
			fmt.Fprintln(os.Stderr, "switching:", err)
			os.Exit(1)
		}
	}
}

func emit(name string, core cores.Config, maxDyn int) error {
	wl, err := workloads.ByName(name)
	if err != nil {
		return err
	}
	tr, err := wl.Trace(maxDyn)
	if err != nil {
		return err
	}
	td, err := tdg.Build(tr)
	if err != nil {
		return err
	}
	bsas := dse.NewBSASet()
	ctx, err := sched.NewContext(td, core, bsas)
	if err != nil {
		return err
	}
	assign := ctx.Oracle([]string{"SIMD", "DP-CGRA", "NS-DF", "Trace-P"})
	res, err := exocore.Run(td, core, bsas, ctx.Plans, assign, exocore.RunOpts{RecordSegments: true})
	if err != nil {
		return err
	}

	// Baseline cycles-per-instruction, to express each segment's local
	// speedup over the plain core (Figure 14's y-axis).
	baseCPI := float64(ctx.BaseCycles) / float64(tr.Len())
	for _, s := range res.Segments {
		model := s.BSA
		if model == "" {
			model = "Gen. Core"
		}
		dur := float64(s.EndCycle - s.StartCycle)
		if dur <= 0 {
			dur = 1
		}
		local := baseCPI * float64(s.Dyn) / dur
		fmt.Printf("%s,%s,%d,%d,%d,%.2f\n", name, model, s.StartCycle, s.EndCycle, s.Dyn, local)
	}
	return nil
}
