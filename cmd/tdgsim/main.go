// Command tdgsim runs benchmarks on one design point through the TDG
// framework and reports cycles, energy, per-model attribution and the
// critical-path stall breakdown.
//
// Usage:
//
//	tdgsim -bench mm -core OOO2 -bsas SIMD,NS-DF
//	tdgsim -bench mm -json      # shared result schema
//	tdgsim -list        # Table 3: the benchmark suite
//	tdgsim -cores       # Table 4: the general-core configurations
package main

import (
	"context"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"exocore/internal/cli"
	"exocore/internal/cores"
	"exocore/internal/dg"
	"exocore/internal/exocore"
	"exocore/internal/fusion"
	"exocore/internal/report"
	"exocore/internal/serve"
	"exocore/internal/workloads"
)

func main() {
	app := cli.New("tdgsim", "mm")
	list := app.Flags().Bool("list", false, "list the benchmark suite (Table 3)")
	listCores := app.Flags().Bool("cores", false, "list core configurations (Table 4)")
	fuse := app.Flags().Bool("fuse", false, "also report the instruction-fusion DSL result (standard rules)")
	app.MustParse()
	defer app.Close()

	if *list {
		listBenchmarks()
		return
	}
	if *listCores {
		listCoreConfigs()
		return
	}

	if app.JSON {
		// The daemon's /v1/evaluate endpoint runs this same builder, which
		// is what keeps the two outputs byte-identical for equal inputs.
		doc, err := serve.EvaluateDocument(context.Background(), app.Engine(),
			"tdgsim", app.Workloads(), app.CoreConfig(), app.BSANames(),
			app.Sched, app.Tracer())
		if err != nil {
			app.Fail(err)
		}
		app.Emit(doc)
		return
	}
	for _, wl := range app.Workloads() {
		if err := run(app, wl, *fuse); err != nil {
			app.Fail(err)
		}
	}
	app.Finish()
}

func listBenchmarks() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "BENCHMARK\tSUITE\tCATEGORY")
	for _, wl := range workloads.All() {
		fmt.Fprintf(w, "%s\t%s\t%s\n", wl.Name, wl.Suite, wl.Category)
	}
	w.Flush()
}

func listCoreConfigs() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "CORE\tWIDTH\tROB\tWINDOW\tD$PORTS\tFUs(ALU,MUL,FP)\tAREA(mm²)")
	for _, c := range cores.Configs {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d,%d,%d\t%.1f\n",
			c.Name, c.Width, c.ROB, c.Window, c.DCachePorts,
			c.IntAlu, c.IntMulDiv, c.FpUnits, c.AreaMM2)
	}
	w.Flush()
}

func run(app *cli.App, wl *workloads.Workload, fuse bool) error {
	eng := app.Engine()
	core := app.CoreConfig()
	names := app.BSANames()

	td, err := eng.TDG(wl)
	if err != nil {
		return err
	}
	ctx, err := eng.Context(wl, core)
	if err != nil {
		return err
	}
	var assign exocore.Assignment
	if app.UseAmdahl() {
		assign = ctx.AmdahlTree(names)
	} else {
		assign = ctx.Oracle(names)
	}

	// Reuse the context's models and unit cache: the reporting run is
	// then served almost entirely from the outcomes the scheduler
	// already computed.
	sp := app.Tracer().Begin("stage", "report "+wl.Name)
	res, err := exocore.Run(td, core, ctx.BSAs, ctx.Plans, assign, exocore.RunOpts{
		Cache: ctx.Cache, RecordRegions: true, Span: sp, Reg: eng.Registry(),
	})
	sp.End()
	if err != nil {
		return err
	}
	e := exocore.EnergyOf(res, core, ctx.BSAs)

	tr := td.Trace
	fmt.Printf("benchmark %s on %s (trace: %d dynamic instructions)\n", wl.Name, core.Name, tr.Len())
	fmt.Printf("baseline:  %8d cycles  %10.1f nJ\n", ctx.BaseCycles, ctx.BaseEnergyNJ)
	fmt.Printf("exocore:   %8d cycles  %10.1f nJ   (speedup %.2fx, energy eff %.2fx)\n",
		res.Cycles, e.TotalNJ(),
		float64(ctx.BaseCycles)/float64(res.Cycles), ctx.BaseEnergyNJ/e.TotalNJ())
	fmt.Printf("avg power: %.2f W   unaccelerated: %.0f%%\n", e.AvgPowerW(), 100*res.UnacceleratedFraction())

	if len(assign) > 0 {
		fmt.Println("\nregion assignment:")
		var loops []int
		for l := range assign {
			loops = append(loops, l)
		}
		sort.Ints(loops)
		for _, l := range loops {
			fmt.Printf("  loop L%d (%.0f%% of execution) -> %s\n",
				l, 100*td.Prof.LoopShare(l), assign[l])
		}
	}

	fmt.Println("\nper-model attribution:")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  MODEL\tINSTS\tCYCLES")
	for i := range res.Models {
		m := &res.Models[i]
		name := m.Name
		if name == "" {
			name = "general core"
		}
		fmt.Fprintf(w, "  %s\t%d\t%d\n", name, m.Dyn, m.Cycles)
	}
	w.Flush()

	fmt.Println("\nper-region attribution:")
	report.WriteRegionTable(os.Stdout, res.Regions, core)

	if fuse {
		plan := fusion.Analyze(td, fusion.StandardRules)
		fc, _ := fusion.Evaluate(td, core, plan)
		fmt.Printf("\nfusion DSL (%s): %d cycles (%.2fx over baseline)\n",
			plan.Summary(), fc, float64(ctx.BaseCycles)/float64(fc))
	}

	// Baseline stall breakdown for reference.
	_, _, bd := cores.EvaluateWithBreakdown(core, tr)
	fmt.Println("\nbaseline critical-path breakdown:")
	for c := dg.EdgeClass(0); c < dg.NumEdgeClasses; c++ {
		if bd[c] > 0 {
			fmt.Printf("  %-14s %8d cycles (%4.1f%%)\n", c, bd[c],
				100*float64(bd[c])/float64(ctx.BaseCycles))
		}
	}
	return nil
}
