// Command tdgsim runs one benchmark on one design point through the TDG
// framework and reports cycles, energy, per-model attribution and the
// critical-path stall breakdown.
//
// Usage:
//
//	tdgsim -bench mm -core OOO2 -bsas SIMD,NS-DF
//	tdgsim -list        # Table 3: the benchmark suite
//	tdgsim -cores       # Table 4: the general-core configurations
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"exocore/internal/cores"
	"exocore/internal/dg"
	"exocore/internal/dse"
	"exocore/internal/exocore"
	"exocore/internal/fusion"
	"exocore/internal/sched"
	"exocore/internal/tdg"
	"exocore/internal/workloads"
)

func main() {
	bench := flag.String("bench", "mm", "benchmark name")
	core := flag.String("core", "OOO2", "general core: IO2, OOO2, OOO4, OOO6")
	bsas := flag.String("bsas", "SIMD,DP-CGRA,NS-DF,Trace-P", "comma-separated BSAs available (empty for none)")
	maxDyn := flag.Int("maxdyn", 100000, "dynamic instruction budget")
	list := flag.Bool("list", false, "list the benchmark suite (Table 3)")
	listCores := flag.Bool("cores", false, "list core configurations (Table 4)")
	amdahl := flag.Bool("amdahl", false, "use the Amdahl-tree scheduler instead of the oracle")
	fuse := flag.Bool("fuse", false, "also report the instruction-fusion DSL result (standard rules)")
	flag.Parse()

	if *list {
		listBenchmarks()
		return
	}
	if *listCores {
		listCoreConfigs()
		return
	}
	if err := run(*bench, *core, *bsas, *maxDyn, *amdahl, *fuse); err != nil {
		fmt.Fprintln(os.Stderr, "tdgsim:", err)
		os.Exit(1)
	}
}

func listBenchmarks() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "BENCHMARK\tSUITE\tCATEGORY")
	for _, wl := range workloads.All() {
		fmt.Fprintf(w, "%s\t%s\t%s\n", wl.Name, wl.Suite, wl.Category)
	}
	w.Flush()
}

func listCoreConfigs() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "CORE\tWIDTH\tROB\tWINDOW\tD$PORTS\tFUs(ALU,MUL,FP)\tAREA(mm²)")
	for _, c := range cores.Configs {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d,%d,%d\t%.1f\n",
			c.Name, c.Width, c.ROB, c.Window, c.DCachePorts,
			c.IntAlu, c.IntMulDiv, c.FpUnits, c.AreaMM2)
	}
	w.Flush()
}

func run(bench, coreName, bsaList string, maxDyn int, amdahl, fuse bool) error {
	wl, err := workloads.ByName(bench)
	if err != nil {
		return err
	}
	core, ok := cores.ConfigByName(coreName)
	if !ok {
		return fmt.Errorf("unknown core %q", coreName)
	}
	tr, err := wl.Trace(maxDyn)
	if err != nil {
		return err
	}
	td, err := tdg.Build(tr)
	if err != nil {
		return err
	}

	all := dse.NewBSASet()
	avail := map[string]tdg.BSA{}
	var names []string
	if bsaList != "" {
		for _, n := range strings.Split(bsaList, ",") {
			n = strings.TrimSpace(n)
			b, ok := all[n]
			if !ok {
				return fmt.Errorf("unknown BSA %q (have SIMD, DP-CGRA, NS-DF, Trace-P)", n)
			}
			avail[n] = b
			names = append(names, n)
		}
	}

	ctx, err := sched.NewContext(td, core, dse.NewBSASet())
	if err != nil {
		return err
	}
	var assign exocore.Assignment
	if amdahl {
		assign = ctx.AmdahlTree(names)
	} else {
		assign = ctx.Oracle(names)
	}

	res, err := exocore.Run(td, core, dse.NewBSASet(), ctx.Plans, assign, exocore.RunOpts{})
	if err != nil {
		return err
	}
	e := exocore.EnergyOf(res, core, dse.NewBSASet())

	fmt.Printf("benchmark %s on %s (trace: %d dynamic instructions)\n", bench, coreName, tr.Len())
	fmt.Printf("baseline:  %8d cycles  %10.1f nJ\n", ctx.BaseCycles, ctx.BaseEnergyNJ)
	fmt.Printf("exocore:   %8d cycles  %10.1f nJ   (speedup %.2fx, energy eff %.2fx)\n",
		res.Cycles, e.TotalNJ(),
		float64(ctx.BaseCycles)/float64(res.Cycles), ctx.BaseEnergyNJ/e.TotalNJ())
	fmt.Printf("avg power: %.2f W   unaccelerated: %.0f%%\n", e.AvgPowerW(), 100*res.UnacceleratedFraction())

	if len(assign) > 0 {
		fmt.Println("\nregion assignment:")
		var loops []int
		for l := range assign {
			loops = append(loops, l)
		}
		sort.Ints(loops)
		for _, l := range loops {
			fmt.Printf("  loop L%d (%.0f%% of execution) -> %s\n",
				l, 100*td.Prof.LoopShare(l), assign[l])
		}
	}

	fmt.Println("\nper-model attribution:")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  MODEL\tINSTS\tCYCLES")
	var keys []string
	for k := range res.PerBSADyn {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		name := k
		if name == "" {
			name = "general core"
		}
		fmt.Fprintf(w, "  %s\t%d\t%d\n", name, res.PerBSADyn[k], res.PerBSACycles[k])
	}
	w.Flush()

	if fuse {
		plan := fusion.Analyze(td, fusion.StandardRules)
		fc, _ := fusion.Evaluate(td, core, plan)
		fmt.Printf("\nfusion DSL (%s): %d cycles (%.2fx over baseline)\n",
			plan.Summary(), fc, float64(ctx.BaseCycles)/float64(fc))
	}

	// Baseline stall breakdown for reference.
	_, _, bd := cores.EvaluateWithBreakdown(core, tr)
	fmt.Println("\nbaseline critical-path breakdown:")
	for c := dg.EdgeClass(0); c < dg.NumEdgeClasses; c++ {
		if bd[c] > 0 {
			fmt.Printf("  %-14s %8d cycles (%4.1f%%)\n", c, bd[c],
				100*float64(bd[c])/float64(ctx.BaseCycles))
		}
	}
	return nil
}
