// Command validate reproduces the paper's §2.5 validation: Table 1 (the
// summary of model errors per accelerator) and, with -scatter, the
// underlying per-benchmark reference-vs-projected pairs of Figure 5 as
// CSV suitable for plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"exocore/internal/validate"
)

func main() {
	maxDyn := flag.Int("maxdyn", 100000, "dynamic instruction budget per benchmark")
	scatter := flag.Bool("scatter", false, "emit Figure 5 scatter data as CSV")
	flag.Parse()

	reports, err := validate.Table1(*maxDyn)
	if err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		os.Exit(1)
	}

	if *scatter {
		fmt.Println("accel,benchmark,metric,reference,projected")
		for _, r := range reports {
			for i := range r.Perf {
				fmt.Printf("%s,%s,perf,%.4f,%.4f\n",
					r.Accel, r.Perf[i].Bench, r.Perf[i].Reference, r.Perf[i].Projected)
				fmt.Printf("%s,%s,energy,%.4f,%.4f\n",
					r.Accel, r.Energy[i].Bench, r.Energy[i].Reference, r.Energy[i].Projected)
			}
		}
		return
	}

	fmt.Println("Table 1: Validation Results (P: Perf, E: Energy)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "ACCEL\tBASE\tP ERR\tP RANGE\tE ERR\tE RANGE")
	for _, r := range reports {
		pl, ph, el, eh := r.Ranges()
		fmt.Fprintf(w, "%s\t%s\t%.0f%%\t%.2f-%.2f\t%.0f%%\t%.2f-%.2f\n",
			r.Accel, r.Base, 100*r.PerfErr(), pl, ph, 100*r.EnergyErr(), el, eh)
	}
	w.Flush()
	fmt.Println("\n(OOO rows: reference = independent cycle-level simulator;")
	fmt.Println(" accelerator rows: reference = digitized published results — see EXPERIMENTS.md)")
}
