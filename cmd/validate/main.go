// Command validate reproduces the paper's §2.5 validation: Table 1 (the
// summary of model errors per accelerator) and, with -scatter, the
// underlying per-benchmark reference-vs-projected pairs of Figure 5 as
// CSV suitable for plotting. -json emits the shared result schema with
// one row per (accelerator, benchmark, metric) plus per-line summaries.
// The unified -trace/-v/-vv observability flags record engine spans and
// progress.
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"exocore/internal/cli"
	"exocore/internal/report"
	"exocore/internal/validate"
)

func main() {
	app := cli.New("validate", "all")
	scatter := app.Flags().Bool("scatter", false, "emit Figure 5 scatter data as CSV")
	app.MustParse()
	defer app.Close()

	reports, err := validate.Table1With(app.Engine())
	if err != nil {
		app.Fail(err)
	}

	if app.JSON {
		doc := report.New("validate")
		for _, r := range reports {
			for i := range r.Perf {
				doc.Add(report.Result{
					Design: r.Accel, Bench: r.Perf[i].Bench,
					Params: map[string]string{"accel": r.Accel, "base": r.Base, "metric": "perf"},
					Extra: map[string]float64{
						"reference": r.Perf[i].Reference,
						"projected": r.Perf[i].Projected,
						"rel_err":   r.Perf[i].Err(),
					},
				})
				doc.Add(report.Result{
					Design: r.Accel, Bench: r.Energy[i].Bench,
					Params: map[string]string{"accel": r.Accel, "base": r.Base, "metric": "energy"},
					Extra: map[string]float64{
						"reference": r.Energy[i].Reference,
						"projected": r.Energy[i].Projected,
						"rel_err":   r.Energy[i].Err(),
					},
				})
			}
			doc.Add(report.Result{
				Design: r.Accel,
				Params: map[string]string{"accel": r.Accel, "base": r.Base, "aggregate": "mean_abs_err"},
				Extra: map[string]float64{
					"perf_err":   r.PerfErr(),
					"energy_err": r.EnergyErr(),
				},
			})
		}
		app.Emit(doc)
		return
	}

	if *scatter {
		fmt.Println("accel,benchmark,metric,reference,projected")
		for _, r := range reports {
			for i := range r.Perf {
				fmt.Printf("%s,%s,perf,%.4f,%.4f\n",
					r.Accel, r.Perf[i].Bench, r.Perf[i].Reference, r.Perf[i].Projected)
				fmt.Printf("%s,%s,energy,%.4f,%.4f\n",
					r.Accel, r.Energy[i].Bench, r.Energy[i].Reference, r.Energy[i].Projected)
			}
		}
		return
	}

	fmt.Println("Table 1: Validation Results (P: Perf, E: Energy)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "ACCEL\tBASE\tP ERR\tP RANGE\tE ERR\tE RANGE")
	for _, r := range reports {
		pl, ph, el, eh := r.Ranges()
		fmt.Fprintf(w, "%s\t%s\t%.0f%%\t%.2f-%.2f\t%.0f%%\t%.2f-%.2f\n",
			r.Accel, r.Base, 100*r.PerfErr(), pl, ph, 100*r.EnergyErr(), el, eh)
	}
	w.Flush()
	fmt.Println("\n(OOO rows: reference = independent cycle-level simulator;")
	fmt.Println(" accelerator rows: reference = digitized published results — see EXPERIMENTS.md)")
	app.Finish()
}
