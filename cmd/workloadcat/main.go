// Command workloadcat reproduces Figure 11: the interaction between
// accelerators, general cores and workload categories. For each category
// (regular / semi-regular / irregular) it prints the relative
// performance and energy of every single-BSA design and the full ExoCore,
// one series per BSA combination with one point per core.
package main

import (
	"flag"
	"fmt"
	"os"

	"exocore/internal/cores"
	"exocore/internal/dse"
	"exocore/internal/workloads"
)

func main() {
	maxDyn := flag.Int("maxdyn", dse.DefaultMaxDyn, "dynamic instruction budget per benchmark")
	flag.Parse()

	exp, err := dse.Explore(dse.Options{MaxDyn: *maxDyn})
	if err != nil {
		fmt.Fprintln(os.Stderr, "workloadcat:", err)
		os.Exit(1)
	}

	// The Figure 11 series: plain core, each single BSA, full ExoCore.
	series := []struct {
		label string
		mask  int
	}{
		{"Gen. Core Only", 0},
		{"SIMD", 1},
		{"DP-CGRA", 2},
		{"NS-DF", 4},
		{"TRACE-P", 8},
		{"ExoCore", 15},
	}
	coresOrder := []string{"IO2", "OOO2", "OOO4", "OOO6"}

	fmt.Println("# Figure 11: category,series,core,relperf,releneff (relative to IO2 overall)")
	for _, cat := range []workloads.Category{workloads.Regular, workloads.SemiRegular, workloads.Irregular} {
		for _, s := range series {
			for _, core := range coresOrder {
				code := dse.DesignCode(mustCore(core), s.mask)
				perf, eff := exp.CategoryAggregate(code, cat)
				fmt.Printf("%s,%s,%s,%.3f,%.3f\n", cat, s.label, core, perf, eff)
			}
		}
	}
}

func mustCore(name string) cores.Config {
	cc, ok := cores.ConfigByName(name)
	if !ok {
		fmt.Fprintln(os.Stderr, "workloadcat: unknown core", name)
		os.Exit(1)
	}
	return cc
}
