// Command workloadcat reproduces Figure 11: the interaction between
// accelerators, general cores and workload categories. For each category
// (regular / semi-regular / irregular / graph) it prints the relative
// performance and energy of every single-BSA design and the full ExoCore,
// one series per BSA combination with one point per core. The series
// follow the tool's BSA registry, so `-bsas SIMD,DP-CGRA,NS-DF,Trace-P`
// reproduces the paper's exact figure while the default registry adds a
// GS-DAE series and folds it into the ExoCore point. -json emits the
// shared result schema with one row per (category, design). The unified
// -trace/-v/-vv observability flags record engine spans and progress.
package main

import (
	"fmt"

	"exocore/internal/cli"
	"exocore/internal/cores"
	"exocore/internal/dse"
	"exocore/internal/report"
	"exocore/internal/workloads"
)

func main() {
	app := cli.New("workloadcat", "all")
	app.MustParse()
	defer app.Close()

	exp, err := dse.Explore(dse.Options{
		Workloads: app.Workloads(),
		UseAmdahl: app.UseAmdahl(),
		Engine:    app.Engine(),
	})
	if err != nil {
		app.Fail(err)
	}

	// The Figure 11 series: plain core, each single BSA, full ExoCore —
	// derived from the registry so registered models grow the figure.
	reg := app.Registry()
	type serie struct {
		label string
		mask  int
	}
	series := []serie{{"Gen. Core Only", 0}}
	for i, name := range reg.Names() {
		series = append(series, serie{name, 1 << i})
	}
	series = append(series, serie{"ExoCore", 1<<reg.Len() - 1})
	coresOrder := []string{"IO2", "OOO2", "OOO4", "OOO6"}
	cats := workloads.Categories

	doc := report.New("workloadcat")
	if !app.JSON {
		fmt.Println("# Figure 11: category,series,core,relperf,releneff (relative to IO2 overall)")
	}
	for _, cat := range cats {
		for _, s := range series {
			for _, coreName := range coresOrder {
				core, ok := cores.ConfigByName(coreName)
				if !ok {
					app.Fail(fmt.Errorf("unknown core %q", coreName))
				}
				code := dse.DesignCodeIn(reg, core, s.mask)
				perf, eff := exp.CategoryAggregate(code, cat)
				if app.JSON {
					doc.Add(report.Result{
						Design: code, Core: coreName, BSAs: reg.SubsetNames(s.mask),
						Category: string(cat),
						RelPerf:  perf, RelEnergyEff: eff,
						Params: map[string]string{"series": s.label},
					})
					continue
				}
				fmt.Printf("%s,%s,%s,%.3f,%.3f\n", cat, s.label, coreName, perf, eff)
			}
		}
	}
	if app.JSON {
		app.Emit(doc)
		return
	}
	app.Finish()
}
