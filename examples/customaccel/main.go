// Customaccel: define a brand-new BSA model against the framework API —
// the paper's primary use case ("The TDG can be used to study new BSAs",
// §2.6, with the steps of Appendix A: analysis, transformation,
// scheduling). The accelerator here is a "reduction engine": a tree of
// adders that retires an entire reduction loop iteration per cycle,
// targeting loops that are pure reductions over contiguous data.
//
// Run with: go run ./examples/customaccel
package main

import (
	"fmt"
	"log"

	"exocore/internal/bsa/bsautil"
	"exocore/internal/cores"
	"exocore/internal/dg"
	"exocore/internal/energy"
	"exocore/internal/exocore"
	"exocore/internal/runner"
	"exocore/internal/tdg"
	"exocore/internal/workloads"
)

// ReduceEngine is a (deliberately simple) new BSA: it claims inner loops
// whose body is dominated by a reduction over contiguous loads, and
// models them as a wide load unit feeding an adder tree, one iteration
// per cycle after a fill latency.
type ReduceEngine struct{}

// Name implements tdg.BSA.
func (m *ReduceEngine) Name() string { return "Reduce" }

// AreaMM2 implements tdg.BSA.
func (m *ReduceEngine) AreaMM2() float64 { return 0.4 }

// OffloadsCore implements tdg.BSA.
func (m *ReduceEngine) OffloadsCore() bool { return true }

// Analyze implements tdg.BSA — the "analysis" step of Appendix A: find
// legal (pure contiguous reduction) and profitable (enough iterations)
// loops, and attach the plan.
func (m *ReduceEngine) Analyze(t *tdg.TDG) *tdg.Plan {
	plan := &tdg.Plan{BSA: m.Name(), Regions: make(map[int]*tdg.Region)}
	for l := range t.Nest.Loops {
		loop := &t.Nest.Loops[l]
		lp := &t.Prof.Loops[l]
		if !loop.Inner() || lp.AvgTrip < 8 || lp.CarriedMemDep {
			continue
		}
		ld := t.Dataflow(l)
		if len(ld.Reductions) == 0 || len(ld.CarriedRegDep) > 0 {
			continue
		}
		// Every memory access must be a contiguous stream.
		ok := true
		for _, b := range loop.Blocks {
			blk := &t.CFG.Blocks[b]
			for si := blk.Start; si < blk.End; si++ {
				if t.CFG.Prog.At(si).Op.IsMem() && !t.Prof.Strides[si].Contiguous() {
					ok = false
				}
			}
		}
		if !ok {
			continue
		}
		est := float64(lp.DynInsts) / float64(lp.Iterations) // ~1 iter/cycle
		plan.Regions[l] = &tdg.Region{LoopID: l, EstSpeedup: est}
	}
	return plan
}

// TransformRegion implements tdg.BSA — the "transformation" step: rewrite
// the region's µDG into a pipelined stream: one node per iteration,
// II = 1, memory latency from the trace, plus entry/exit transfers.
func (m *ReduceEngine) TransformRegion(ctx *tdg.Ctx, r *tdg.Region, start, end int) dg.NodeID {
	g := ctx.G
	gpp := ctx.GPP
	ld := ctx.TDG.Dataflow(r.LoopID)

	entry := g.NewNode(dg.KindAccel, int32(start))
	g.AddEdge(gpp.LastCommit(), entry, bsautil.TransferLatency(len(ld.LiveIns)), dg.EdgeAccelComm)
	for _, reg := range ld.LiveIns {
		g.AddEdge(gpp.RegDef(reg), entry, 2, dg.EdgeAccelComm)
	}

	iters := bsautil.SplitIterations(ctx.TDG, r.LoopID, start, end)
	prevStart, lastDone := entry, entry
	tr := ctx.TDG.Trace
	for _, it := range iters {
		node := g.NewNode(dg.KindAccel, int32(it.Start))
		// Pipelined: each iteration *starts* one cycle after the previous
		// one started (II = 1); completions overlap.
		g.AddEdge(prevStart, node, 1, dg.EdgeAccelPipe)
		prevStart = node
		// The iteration completes after its slowest memory access.
		var maxLat int64 = 1
		for i := it.Start; i < it.End; i++ {
			d := &tr.Insts[i]
			if tr.Prog.Insts[d.SI].Op.IsMem() && int64(d.MemLat) > maxLat {
				maxLat = int64(d.MemLat)
			}
			ctx.Counts.Add(energy.EvCFUOp, 1) // adder-tree op energy
		}
		done := g.NewNode(dg.KindAccel, int32(it.Start))
		g.AddEdge(node, done, maxLat, dg.EdgeAccelCompute)
		lastDone = done
	}

	// Exit: the reduction value and induction registers return to the core.
	exit := g.NewNode(dg.KindAccel, int32(end-1))
	g.AddEdge(lastDone, exit, bsautil.TransferLatency(len(ld.LiveOuts)), dg.EdgeAccelComm)
	writtenRegs(ctx, r, start, end, exit)
	gpp.Barrier(exit, dg.EdgeAccelComm)
	return exit
}

func writtenRegs(ctx *tdg.Ctx, r *tdg.Region, start, end int, node dg.NodeID) {
	seen := map[int32]bool{}
	tr := ctx.TDG.Trace
	for i := start; i < end; i++ {
		si := tr.Insts[i].SI
		if seen[si] {
			continue
		}
		seen[si] = true
		in := &tr.Prog.Insts[si]
		if in.HasDst() {
			ctx.GPP.SetRegDef(in.Dst, node)
		}
	}
}

func main() {
	wl, err := workloads.ByName("nnw") // dot-product heavy: ideal target
	if err != nil {
		log.Fatal(err)
	}
	// Trace + TDG through the shared evaluation engine: a custom-BSA
	// study that also sweeps cores or parameters would reuse them free.
	eng := runner.New(runner.Options{MaxDyn: 60000})
	td, err := eng.TDG(wl)
	if err != nil {
		log.Fatal(err)
	}
	tr := td.Trace

	model := &ReduceEngine{}
	bsas := map[string]tdg.BSA{model.Name(): model}
	plans := map[string]*tdg.Plan{model.Name(): model.Analyze(td)}
	fmt.Printf("ReduceEngine plans %d region(s) on %s\n", len(plans[model.Name()].Regions), wl.Name)

	base, _ := cores.Evaluate(cores.OOO2, tr)
	assign := exocore.Assignment{}
	for l := range plans[model.Name()].Regions {
		assign[l] = model.Name()
	}
	res, err := exocore.Run(td, cores.OOO2, bsas, plans, assign, exocore.RunOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OOO2 baseline: %d cycles\n", base)
	fmt.Printf("OOO2+Reduce:   %d cycles (%.2fx, %.0f%% of instructions offloaded)\n",
		res.Cycles, float64(base)/float64(res.Cycles), 100*(1-res.UnacceleratedFraction()))
}
