// Designspace: a miniature version of the paper's §5 exploration — a few
// benchmarks, all 64 core × BSA-subset designs, printing the Pareto
// frontier and the headline comparison. The full exploration lives in
// cmd/dse; this example shows the library API for custom studies.
//
// Run with: go run ./examples/designspace
package main

import (
	"fmt"
	"log"
	"sort"

	"exocore/internal/dse"
	"exocore/internal/runner"
	"exocore/internal/workloads"
)

func main() {
	var ws []*workloads.Workload
	for _, name := range []string{"mm", "nbody", "vr", "cjpeg", "mcf", "hmmer"} {
		w, err := workloads.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		ws = append(ws, w)
	}

	// An explicit engine makes the artifact caches visible: repeated
	// explorations (or other tools in the same process) reuse them.
	eng := runner.New(runner.Options{MaxDyn: 30000})
	exp, err := dse.Explore(dse.Options{Workloads: ws, Engine: eng})
	if err != nil {
		log.Fatal(err)
	}
	m := eng.Metrics()
	fmt.Printf("explored %d designs over %d benchmarks\n", len(exp.Designs), len(ws))
	fmt.Printf("engine: %d sched contexts built, %d evals (%d served from cache)\n\n",
		m.Stage(runner.StageSched).Misses,
		m.Stage(runner.StageEval).Calls, m.Stage(runner.StageEval).Hits)

	fmt.Println("Pareto frontier (performance vs energy efficiency, relative to IO2):")
	for _, d := range exp.Frontier() {
		fmt.Printf("  %-12s perf %.2fx  energy-eff %.2fx  area %.1f mm²\n",
			d.Code, d.RelPerf, d.RelEnergyEff, d.AreaMM2)
	}

	fmt.Println("\ntop-5 by energy-delay:")
	sorted := append([]dse.DesignResult(nil), exp.Designs...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].RelPerf*sorted[i].RelEnergyEff > sorted[j].RelPerf*sorted[j].RelEnergyEff
	})
	for _, d := range sorted[:5] {
		fmt.Printf("  %-12s perf %.2fx  energy-eff %.2fx\n", d.Code, d.RelPerf, d.RelEnergyEff)
	}

	perf, eff, err := exp.RelativeTo("OOO2-SDNT", "OOO2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull OOO2 ExoCore vs plain OOO2: %.2fx performance, %.2fx energy efficiency\n", perf, eff)
}
