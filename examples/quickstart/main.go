// Quickstart: build a small program with the assembler DSL, execute it to
// get an annotated trace, construct the Transformable Dependence Graph,
// and model it on a plain OOO2 core versus an OOO2 with SIMD — including
// the paper's Figure 4 fused-multiply-add example.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"exocore/internal/bpred"
	"exocore/internal/bsa"
	"exocore/internal/cache"
	"exocore/internal/cores"
	"exocore/internal/energy"
	"exocore/internal/exocore"
	"exocore/internal/isa"
	"exocore/internal/prog"
	"exocore/internal/runner"
	"exocore/internal/sim"
	"exocore/internal/tdg"
)

func main() {
	// 1. Author a kernel: y[i] += a[i] * b[i] over 512 elements — the
	//    dot-product-ish loop of the paper's Figure 4, at scale.
	b := prog.NewBuilder("axpy")
	i, pA, pB, pY := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
	n := isa.R(10)
	b.MovI(pA, 0x10000)
	b.MovI(pB, 0x20000)
	b.MovI(pY, 0x30000)
	b.MovI(i, 0)
	b.Label("loop")
	b.LdF(isa.F(1), pA, 0)
	b.LdF(isa.F(2), pB, 0)
	b.FMul(isa.F(3), isa.F(1), isa.F(2)) // fmul feeding a single-use ...
	b.FAdd(isa.F(4), isa.F(4), isa.F(3)) // ... accumulating fadd: fma!
	b.AddI(pA, pA, 8)
	b.AddI(pB, pB, 8)
	b.AddI(i, i, 1)
	b.Blt(i, n, "loop")
	p := b.MustBuild()

	// 2. Functionally execute it (the gem5 role) and annotate the trace
	//    with cache latencies and branch-prediction outcomes.
	st := sim.NewState()
	st.SetInt(n, 512)
	for k := 0; k < 520; k++ {
		st.Mem.StoreFloat(0x10000+uint64(k)*8, float64(k)*0.5)
		st.Mem.StoreFloat(0x20000+uint64(k)*8, 2.0)
	}
	tr, err := sim.Run(p, st, sim.Config{MaxDyn: 50000})
	if err != nil {
		log.Fatal(err)
	}
	cache.DefaultHierarchy().Annotate(tr)
	bpred.New(bpred.DefaultConfig()).Annotate(tr)
	fmt.Printf("trace: %d dynamic instructions\n", tr.Len())

	// 3. Build the TDG (IR reconstruction + profiling) through the shared
	//    evaluation engine — ad-hoc traces get a keyed cache slot, and the
	//    engine's stage metrics time the construction.
	eng := runner.New(runner.Options{})
	td, err := eng.TDGFor("axpy", tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TDG build: %.1fms (engine stage %q)\n",
		float64(eng.Metrics().Stage(runner.StageTDG).WallNS)/1e6, runner.StageTDG)
	fmt.Printf("TDG: %d basic blocks, %d loops (hot loop covers %.0f%%)\n",
		len(td.CFG.Blocks), len(td.Nest.Loops),
		100*td.Prof.LoopShare(td.Prof.SortedLoopsByShare()[0]))

	// 4. Model the plain OOO2 (TDG_OOO2,∅).
	baseCycles, baseCounts := cores.Evaluate(cores.OOO2, tr)
	tbl := energy.CoreTable(cores.OOO2.EnergyParams())
	baseE := tbl.Evaluate(&baseCounts, baseCycles)
	fmt.Printf("\nOOO2 baseline:  %6d cycles  %8.1f nJ  (IPC %.2f)\n",
		baseCycles, baseE.TotalNJ(), float64(tr.Len())/float64(baseCycles))

	// 5. The Figure 4 example: transparently fuse fmul+fadd (TDG_OOO2,fma).
	plan := tdg.AnalyzeFMA(td)
	fmaCycles, fmaCounts := tdg.EvaluateFMA(td, cores.OOO2)
	fmaE := tbl.Evaluate(&fmaCounts, fmaCycles)
	fmt.Printf("OOO2 + fma:     %6d cycles  %8.1f nJ  (%d pairs fused, %.2fx speedup)\n",
		fmaCycles, fmaE.TotalNJ(), len(plan.MulToAdd),
		float64(baseCycles)/float64(fmaCycles))

	// 6. A real BSA: auto-vectorizing SIMD (TDG_OOO2,SIMD), instantiated
	//    through the registry — the same lookup every tool and the daemon
	//    use, so a model registered in internal/bsa is available here too.
	model, err := bsa.Default().NewOne("SIMD")
	if err != nil {
		log.Fatal(err)
	}
	bsas := map[string]tdg.BSA{model.Name(): model}
	plans := map[string]*tdg.Plan{model.Name(): model.Analyze(td)}
	assign := exocore.Assignment{}
	var planned []int
	for l := range plans[model.Name()].Regions {
		planned = append(planned, l)
	}
	sort.Ints(planned)
	for _, l := range planned {
		assign[l] = model.Name()
		fmt.Printf("\nSIMD analyzer: loop L%d is vectorizable (estimated %.1fx)\n",
			l, plans[model.Name()].Regions[l].EstSpeedup)
	}
	res, err := exocore.Run(td, cores.OOO2, bsas, plans, assign, exocore.RunOpts{})
	if err != nil {
		log.Fatal(err)
	}
	e := exocore.EnergyOf(res, cores.OOO2, bsas)
	fmt.Printf("OOO2 + SIMD:    %6d cycles  %8.1f nJ  (%.2fx speedup, %.2fx energy eff)\n",
		res.Cycles, e.TotalNJ(),
		float64(baseCycles)/float64(res.Cycles), baseE.TotalNJ()/e.TotalNJ())
}
