// Scheduling: the Figure 9 scenario — a multi-loop application where the
// BSA choice is hierarchical (accelerate the whole nest with one BSA, or
// each inner loop with its own?). Compares the measured Oracle against
// the estimate-driven Amdahl-tree scheduler.
//
// Run with: go run ./examples/scheduling
package main

import (
	"fmt"
	"log"
	"sort"

	"exocore/internal/cores"
	"exocore/internal/runner"
	"exocore/internal/workloads"
)

func main() {
	wl, err := workloads.ByName("cjpeg") // three phases with different affinities
	if err != nil {
		log.Fatal(err)
	}
	// The engine builds trace → TDG → scheduling context in one cached
	// call; a second Context lookup would be free.
	eng := runner.New(runner.Options{MaxDyn: 60000})
	ctx, err := eng.Context(wl, cores.OOO2)
	if err != nil {
		log.Fatal(err)
	}
	td := ctx.TDG

	// The Amdahl tree's inputs: per-loop estimated speedups per BSA.
	fmt.Println("loop tree with per-BSA speedup estimates (Figure 9):")
	var loops []int
	for l := range td.Nest.Loops {
		loops = append(loops, l)
	}
	sort.Ints(loops)
	for _, l := range loops {
		indent := ""
		for d := 1; d < td.Nest.Loops[l].Depth; d++ {
			indent += "  "
		}
		fmt.Printf("  %sL%d (%.0f%% of execution):", indent, l, 100*td.Prof.LoopShare(l))
		for _, name := range []string{"SIMD", "DP-CGRA", "NS-DF", "Trace-P"} {
			if r := ctx.Plans[name].Region(l); r != nil {
				fmt.Printf("  %s %.1fx", name, r.EstSpeedup)
			}
		}
		fmt.Println()
	}

	avail := []string{"SIMD", "DP-CGRA", "NS-DF", "Trace-P"}
	for _, s := range []struct {
		name   string
		assign map[int]string
	}{
		{"Oracle", ctx.Oracle(avail)},
		{"Amdahl tree", ctx.AmdahlTree(avail)},
	} {
		cycles, energyNJ, err := ctx.Evaluate(s.assign)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s scheduler:\n", s.name)
		var ls []int
		for l := range s.assign {
			ls = append(ls, l)
		}
		sort.Ints(ls)
		for _, l := range ls {
			fmt.Printf("  L%d -> %s\n", l, s.assign[l])
		}
		fmt.Printf("  %d cycles (%.2fx), %.0f nJ (%.2fx energy eff)\n",
			cycles, float64(ctx.BaseCycles)/float64(cycles),
			energyNJ, ctx.BaseEnergyNJ/energyNJ)
	}
}
