module exocore

go 1.22
