// Package area computes design-point silicon area: core areas come from
// McPAT-calibrated 22nm-class ballparks (stored on the core configs), and
// BSA areas from the respective publications as the paper does (§4 "we
// use area estimates from relevant publications [17, 18, 36]").
package area

import (
	"exocore/internal/cores"
	"exocore/internal/tdg"
)

// Total returns the area in mm² of a core plus a set of BSAs.
func Total(core cores.Config, bsas []tdg.BSA) float64 {
	a := core.AreaMM2
	for _, b := range bsas {
		a += b.AreaMM2()
	}
	return a
}

// Relative returns the design's area relative to a reference design.
func Relative(core cores.Config, bsas []tdg.BSA, refCore cores.Config, refBSAs []tdg.BSA) float64 {
	return Total(core, bsas) / Total(refCore, refBSAs)
}
