package area

import (
	"testing"

	"exocore/internal/bsa"
	"exocore/internal/cores"
	"exocore/internal/tdg"
)

// twoModels instantiates SIMD and NS-DF through the registry.
func twoModels(t *testing.T) (tdg.BSA, tdg.BSA) {
	t.Helper()
	s, err := bsa.Default().NewOne("SIMD")
	if err != nil {
		t.Fatal(err)
	}
	n, err := bsa.Default().NewOne("NS-DF")
	if err != nil {
		t.Fatal(err)
	}
	return s, n
}

func TestTotalSumsComponents(t *testing.T) {
	s, n := twoModels(t)
	got := Total(cores.OOO2, []tdg.BSA{s, n})
	want := cores.OOO2.AreaMM2 + s.AreaMM2() + n.AreaMM2()
	if got != want {
		t.Errorf("Total = %v, want %v", got, want)
	}
	if Total(cores.IO2, nil) != cores.IO2.AreaMM2 {
		t.Error("bare core area wrong")
	}
}

func TestRelative(t *testing.T) {
	r := Relative(cores.OOO6, nil, cores.OOO6, nil)
	if r != 1 {
		t.Errorf("self-relative = %v", r)
	}
	if Relative(cores.OOO6, nil, cores.IO2, nil) <= 1 {
		t.Error("OOO6 must be bigger than IO2")
	}
}

func TestCoreAreaOrdering(t *testing.T) {
	// The paper's area story requires strictly increasing core areas.
	prev := 0.0
	for _, c := range cores.Configs {
		if c.AreaMM2 <= prev {
			t.Errorf("%s area %v not greater than previous %v", c.Name, c.AreaMM2, prev)
		}
		prev = c.AreaMM2
	}
	// And the headline: OOO2 + three BSAs must be well under OOO6+SIMD.
	s, n := twoModels(t)
	small := Total(cores.OOO2, []tdg.BSA{s, n})
	big := Total(cores.OOO6, []tdg.BSA{s})
	if small/big > 0.65 {
		t.Errorf("OOO2-ExoCore area fraction %.2f, want well under OOO6-S", small/big)
	}
}
