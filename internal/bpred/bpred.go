// Package bpred models the branch predictor that annotates a dynamic trace
// with misprediction flags. The µDG turns each misprediction into a
// serialization edge from the branch's execute node to the fetch of the
// following instruction (pipeline refill). We model a tournament of a
// gshare and a bimodal table with a chooser, similar in spirit to the
// Alpha-21264-class predictor the paper's validation benchmarks target.
package bpred

import (
	"exocore/internal/prog"
	"exocore/internal/trace"
)

// Config sizes the predictor tables (entries must be powers of two).
type Config struct {
	GshareEntries  int
	BimodalEntries int
	ChooserEntries int
	HistoryBits    int
}

// DefaultConfig is a 4K-entry tournament predictor with 12 history bits.
func DefaultConfig() Config {
	return Config{GshareEntries: 4096, BimodalEntries: 4096, ChooserEntries: 4096, HistoryBits: 12}
}

// Predictor is a tournament (gshare + bimodal) direction predictor.
// Unconditional jumps are always predicted correctly (perfect BTB).
type Predictor struct {
	cfg     Config
	gshare  []uint8 // 2-bit saturating counters
	bimodal []uint8
	chooser []uint8 // 2-bit: >=2 favors gshare
	history uint64

	lookups uint64
	misses  uint64
}

// New returns a predictor with all counters weakly taken.
func New(cfg Config) *Predictor {
	p := &Predictor{
		cfg:     cfg,
		gshare:  make([]uint8, cfg.GshareEntries),
		bimodal: make([]uint8, cfg.BimodalEntries),
		chooser: make([]uint8, cfg.ChooserEntries),
	}
	for i := range p.gshare {
		p.gshare[i] = 2
	}
	for i := range p.bimodal {
		p.bimodal[i] = 2
	}
	for i := range p.chooser {
		p.chooser[i] = 2
	}
	return p
}

func taken2(c uint8) bool { return c >= 2 }

func bump(c uint8, up bool) uint8 {
	if up {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Predict runs one conditional branch (identified by its static index)
// through the predictor, updates state with the actual outcome, and
// reports whether the prediction was correct.
func (p *Predictor) Predict(pc int, actual bool) bool {
	p.lookups++
	hmask := uint64(1)<<uint(p.cfg.HistoryBits) - 1
	gi := (uint64(pc) ^ (p.history & hmask)) % uint64(len(p.gshare))
	bi := uint64(pc) % uint64(len(p.bimodal))
	ci := uint64(pc) % uint64(len(p.chooser))

	gp := taken2(p.gshare[gi])
	bp := taken2(p.bimodal[bi])
	pred := bp
	if taken2(p.chooser[ci]) {
		pred = gp
	}

	// Chooser trains toward whichever component was right.
	if gp != bp {
		p.chooser[ci] = bump(p.chooser[ci], gp == actual)
	}
	p.gshare[gi] = bump(p.gshare[gi], actual)
	p.bimodal[bi] = bump(p.bimodal[bi], actual)
	p.history = (p.history << 1) | b2u(actual)

	correct := pred == actual
	if !correct {
		p.misses++
	}
	return correct
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Stats returns (lookups, mispredictions).
func (p *Predictor) Stats() (uint64, uint64) { return p.lookups, p.misses }

// MissRate returns the fraction of mispredicted conditional branches.
func (p *Predictor) MissRate() float64 {
	if p.lookups == 0 {
		return 0
	}
	return float64(p.misses) / float64(p.lookups)
}

// Annotate replays all conditional branches in t through the predictor,
// setting the misprediction flag on each dynamic branch.
func (p *Predictor) Annotate(t *trace.Trace) {
	p.AnnotateInsts(t.Prog, t.Insts)
}

// AnnotateInsts is Annotate over one chunk of a dynamic trace. Predictor
// state (tables, global history) carries across calls, so chunked
// annotation is byte-identical to the whole-trace scan at any chunk size.
func (p *Predictor) AnnotateInsts(pr *prog.Program, insts []trace.DynInst) {
	for i := range insts {
		d := &insts[i]
		op := pr.Insts[d.SI].Op
		if !op.IsBranch() {
			continue
		}
		if !p.Predict(int(d.SI), d.Taken()) {
			d.Flags |= trace.FlagMispred
		}
	}
}
