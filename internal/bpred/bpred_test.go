package bpred

import (
	"testing"

	"exocore/internal/isa"
	"exocore/internal/prog"
	"exocore/internal/trace"
)

func TestAlwaysTakenLearned(t *testing.T) {
	p := New(DefaultConfig())
	misses := 0
	for i := 0; i < 1000; i++ {
		if !p.Predict(10, true) {
			misses++
		}
	}
	if misses > 2 {
		t.Errorf("always-taken branch mispredicted %d times", misses)
	}
}

func TestAlternatingLearnedByGshare(t *testing.T) {
	p := New(DefaultConfig())
	misses := 0
	for i := 0; i < 2000; i++ {
		if !p.Predict(20, i%2 == 0) {
			misses++
		}
	}
	// Gshare should lock onto the pattern after warmup.
	if rate := float64(misses) / 2000; rate > 0.1 {
		t.Errorf("alternating pattern miss rate = %.2f, want < 0.1", rate)
	}
}

func TestRandomishBranchMissRate(t *testing.T) {
	p := New(DefaultConfig())
	// Deterministic LCG as a stand-in for data-dependent branches.
	x := uint64(12345)
	misses := 0
	const n = 5000
	for i := 0; i < n; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		if !p.Predict(30, x>>63 == 1) {
			misses++
		}
	}
	rate := float64(misses) / n
	if rate < 0.2 {
		t.Errorf("pseudo-random branch miss rate = %.2f, implausibly low", rate)
	}
}

func TestStatsAccumulate(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 100; i++ {
		p.Predict(1, true)
	}
	lookups, _ := p.Stats()
	if lookups != 100 {
		t.Errorf("lookups = %d, want 100", lookups)
	}
	if p.MissRate() < 0 || p.MissRate() > 1 {
		t.Errorf("miss rate out of range: %v", p.MissRate())
	}
}

func TestAnnotateMarksMispredictions(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Label("loop")
	b.SubI(isa.R(1), isa.R(1), 1)
	b.Bne(isa.R(1), isa.RZ, "loop")
	p := b.MustBuild()

	// 10 taken iterations then a not-taken exit: the exit should be the
	// (likely) mispredicted one once warmed up.
	var insts []trace.DynInst
	for i := 0; i < 10; i++ {
		insts = append(insts, trace.DynInst{SI: 0}, trace.DynInst{SI: 1, Flags: trace.FlagTaken})
	}
	insts = append(insts, trace.DynInst{SI: 0}, trace.DynInst{SI: 1}) // not taken
	tr := &trace.Trace{Prog: p, Insts: insts}
	New(DefaultConfig()).Annotate(tr)

	last := &tr.Insts[len(tr.Insts)-1]
	if !last.Mispredicted() {
		t.Error("loop-exit branch should be mispredicted")
	}
	mid := &tr.Insts[9]
	if mid.Mispredicted() {
		t.Error("steady-state taken branch should be predicted")
	}
}

func TestBump(t *testing.T) {
	if bump(3, true) != 3 || bump(0, false) != 0 {
		t.Error("bump must saturate")
	}
	if bump(1, true) != 2 || bump(2, false) != 1 {
		t.Error("bump must move counters")
	}
}
