// Package bsa is the registry of behavior-specialized accelerator
// models: the one place a BSA is given its canonical name, its
// single-letter design code (the paper's Figure 12 "S/D/N/T" letters)
// and its constructor. Every tool, the runner engine and the
// design-space exploration resolve BSA sets through a Registry instead
// of hard-coding the model list, so adding a sixth model is a one-line
// Register call — the sweep grid, flag validation, design codes and the
// daemon's capability listing all follow the registry size.
package bsa

import (
	"fmt"
	"sort"
	"strings"

	"exocore/internal/bsa/dpcgra"
	"exocore/internal/bsa/gsdae"
	"exocore/internal/bsa/nsdf"
	"exocore/internal/bsa/simd"
	"exocore/internal/bsa/tracep"
	"exocore/internal/tdg"
)

// Entry describes one registered BSA model.
type Entry struct {
	// Name is the canonical model name (eg. "SIMD", "GS-DAE"), the key
	// used in assignments, flags and request bodies.
	Name string
	// Letter is the single-letter design code used in design names like
	// "OOO2-SDN".
	Letter byte
	// New constructs a fresh model instance with default parameters.
	New func() tdg.BSA
}

// Registry is an ordered set of BSA entries. The registration order is
// canonical: it fixes letter order in design codes, bit positions in
// subset masks and the enumeration order of sweep grids. Registries are
// immutable after construction; Subset derives restricted views.
type Registry struct {
	entries []Entry
	byName  map[string]int
}

// NewRegistry builds a registry from entries, rejecting duplicate names
// or letters.
func NewRegistry(entries ...Entry) (*Registry, error) {
	r := &Registry{byName: make(map[string]int, len(entries))}
	letters := make(map[byte]string, len(entries))
	for _, e := range entries {
		if e.Name == "" || e.New == nil {
			return nil, fmt.Errorf("bsa: entry %+v missing name or constructor", e)
		}
		if _, dup := r.byName[e.Name]; dup {
			return nil, fmt.Errorf("bsa: duplicate BSA name %q", e.Name)
		}
		if prev, dup := letters[e.Letter]; dup {
			return nil, fmt.Errorf("bsa: letter %q of %q already used by %q", string(e.Letter), e.Name, prev)
		}
		r.byName[e.Name] = len(r.entries)
		letters[e.Letter] = e.Name
		r.entries = append(r.entries, e)
	}
	return r, nil
}

// defaultRegistry holds every built-in model in canonical order: the
// paper's four (S, D, N, T) followed by the graph-analytics
// gather-scatter engine (G).
var defaultRegistry = func() *Registry {
	r, err := NewRegistry(
		Entry{Name: "SIMD", Letter: 'S', New: func() tdg.BSA { return simd.New() }},
		Entry{Name: "DP-CGRA", Letter: 'D', New: func() tdg.BSA { return dpcgra.New() }},
		Entry{Name: "NS-DF", Letter: 'N', New: func() tdg.BSA { return nsdf.New() }},
		Entry{Name: "Trace-P", Letter: 'T', New: func() tdg.BSA { return tracep.New() }},
		Entry{Name: "GS-DAE", Letter: 'G', New: func() tdg.BSA { return gsdae.New() }},
	)
	if err != nil {
		panic(err)
	}
	return r
}()

// Default returns the registry of all built-in models.
func Default() *Registry { return defaultRegistry }

// Standard returns the registry restricted to the paper's original four
// BSAs (SIMD, DP-CGRA, NS-DF, Trace-P) — the subset every pre-existing
// golden, benchmark baseline and figure reproduction is defined over.
func Standard() *Registry {
	r, err := defaultRegistry.Subset([]string{"SIMD", "DP-CGRA", "NS-DF", "Trace-P"})
	if err != nil {
		panic(err)
	}
	return r
}

// Len returns the number of registered models.
func (r *Registry) Len() int { return len(r.entries) }

// Entries returns the entries in canonical order (a copy).
func (r *Registry) Entries() []Entry { return append([]Entry(nil), r.entries...) }

// Names returns the model names in canonical order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.Name
	}
	return out
}

// Has reports whether a name is registered.
func (r *Registry) Has(name string) bool {
	_, ok := r.byName[name]
	return ok
}

// Check returns nil if name is registered, else the did-you-mean error
// listing the allowed names.
func (r *Registry) Check(name string) error {
	if r.Has(name) {
		return nil
	}
	return r.unknown(name)
}

// New instantiates a fresh model for every entry.
func (r *Registry) New() map[string]tdg.BSA {
	out := make(map[string]tdg.BSA, len(r.entries))
	for _, e := range r.entries {
		out[e.Name] = e.New()
	}
	return out
}

// NewOne instantiates the named model.
func (r *Registry) NewOne(name string) (tdg.BSA, error) {
	i, ok := r.byName[name]
	if !ok {
		return nil, r.unknown(name)
	}
	return r.entries[i].New(), nil
}

// Subset returns the registry restricted to the given names (canonical
// order is preserved regardless of the argument order). Unknown names
// error with the allowed list.
func (r *Registry) Subset(names []string) (*Registry, error) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		if !r.Has(n) {
			return nil, r.unknown(n)
		}
		want[n] = true
	}
	sub := &Registry{byName: make(map[string]int, len(want))}
	for _, e := range r.entries {
		if want[e.Name] {
			sub.byName[e.Name] = len(sub.entries)
			sub.entries = append(sub.entries, e)
		}
	}
	return sub, nil
}

// Canonical reorders names into canonical registry order, validating
// each (duplicates collapse).
func (r *Registry) Canonical(names []string) ([]string, error) {
	sub, err := r.Subset(names)
	if err != nil {
		return nil, err
	}
	return sub.Names(), nil
}

// unknown builds the did-you-mean error for an unregistered name.
func (r *Registry) unknown(name string) error {
	msg := fmt.Sprintf("bsa: unknown BSA %q (have %s)", name, strings.Join(r.Names(), ", "))
	if near := nearest(name, r.Names()); near != "" {
		msg += fmt.Sprintf(" — did you mean %q?", near)
	}
	return fmt.Errorf("%s", msg)
}

// SubsetName renders a bitmask (bit i = entry i) as the letter code,
// eg. "SDN"; the empty subset renders as "".
func (r *Registry) SubsetName(mask int) string {
	var sb strings.Builder
	for i, e := range r.entries {
		if mask&(1<<i) != 0 {
			sb.WriteByte(e.Letter)
		}
	}
	return sb.String()
}

// SubsetNames returns the model names selected by a bitmask.
func (r *Registry) SubsetNames(mask int) []string {
	var out []string
	for i, e := range r.entries {
		if mask&(1<<i) != 0 {
			out = append(out, e.Name)
		}
	}
	return out
}

// DesignCode renders (core name, BSA name list) as the canonical design
// code, eg. "OOO2-SDN" — letters in registry order regardless of the
// argument order; a bare core name for the empty set. Unregistered names
// are ignored.
func (r *Registry) DesignCode(core string, names []string) string {
	var suffix []byte
	for _, e := range r.entries {
		for _, have := range names {
			if have == e.Name {
				suffix = append(suffix, e.Letter)
				break
			}
		}
	}
	if len(suffix) == 0 {
		return core
	}
	return core + "-" + string(suffix)
}

// Mask returns the bitmask selecting the given names.
func (r *Registry) Mask(names []string) (int, error) {
	mask := 0
	for _, n := range names {
		i, ok := r.byName[n]
		if !ok {
			return 0, r.unknown(n)
		}
		mask |= 1 << i
	}
	return mask, nil
}

// ParseLetters inverts SubsetName: "SDN" → mask. Unknown letters error.
func (r *Registry) ParseLetters(letters string) (int, error) {
	mask := 0
	for i := 0; i < len(letters); i++ {
		found := false
		for bi, e := range r.entries {
			if e.Letter == letters[i] {
				mask |= 1 << bi
				found = true
			}
		}
		if !found {
			return 0, fmt.Errorf("bsa: unknown BSA letter %q (have %s)", string(letters[i]), r.lettersString())
		}
	}
	return mask, nil
}

func (r *Registry) lettersString() string {
	var sb strings.Builder
	for _, e := range r.entries {
		sb.WriteByte(e.Letter)
	}
	return sb.String()
}

// Nearest returns the candidate closest to name by case-insensitive
// edit distance, or "" when nothing is plausibly close. Exported so
// other flag surfaces (eg. internal/cli's enum validation) produce the
// same did-you-mean hints this registry does.
func Nearest(name string, candidates []string) string {
	return nearest(name, candidates)
}

// nearest returns the candidate with the smallest edit distance to name
// under a conservative threshold, or "" — the shared did-you-mean
// helper (case-insensitive, so "simd" suggests "SIMD").
func nearest(name string, candidates []string) string {
	sorted := append([]string(nil), candidates...)
	sort.Strings(sorted)
	best, bestDist := "", 3 // suggest only within edit distance 2
	for _, c := range sorted {
		if d := editDistance(strings.ToLower(name), strings.ToLower(c)); d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between two strings.
func editDistance(a, b string) int {
	if len(a) == 0 {
		return len(b)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
