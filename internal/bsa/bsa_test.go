package bsa

import (
	"strings"
	"testing"

	"exocore/internal/tdg"
)

func TestDefaultRegistryOrder(t *testing.T) {
	want := []string{"SIMD", "DP-CGRA", "NS-DF", "Trace-P", "GS-DAE"}
	got := Default().Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	// The first four entries keep the paper's letters and bit positions,
	// so pre-registry design codes parse and render unchanged.
	if Default().SubsetName(15) != "SDNT" {
		t.Errorf("SubsetName(15) = %q, want SDNT", Default().SubsetName(15))
	}
	if Default().SubsetName(31) != "SDNTG" {
		t.Errorf("SubsetName(31) = %q, want SDNTG", Default().SubsetName(31))
	}
}

func TestStandardIsPaperSubset(t *testing.T) {
	std := Standard()
	if std.Len() != 4 || std.Has("GS-DAE") {
		t.Fatalf("Standard() = %v", std.Names())
	}
	if std.SubsetName(15) != "SDNT" {
		t.Errorf("Standard SubsetName(15) = %q", std.SubsetName(15))
	}
}

func TestNewInstantiatesEveryEntry(t *testing.T) {
	models := Default().New()
	if len(models) != Default().Len() {
		t.Fatalf("New() made %d models, want %d", len(models), Default().Len())
	}
	for name, m := range models {
		if m == nil || m.Name() != name {
			t.Errorf("model under key %q reports Name() = %q", name, m.Name())
		}
		if m.AreaMM2() <= 0 {
			t.Errorf("%s: non-positive area", name)
		}
	}
	// Fresh instances every call — models hold per-analysis state.
	again := Default().New()
	for name := range models {
		if models[name] == again[name] {
			t.Errorf("%s: New() returned a shared instance", name)
		}
	}
}

func TestSubsetCanonicalOrder(t *testing.T) {
	sub, err := Default().Subset([]string{"NS-DF", "SIMD"})
	if err != nil {
		t.Fatal(err)
	}
	got := sub.Names()
	if len(got) != 2 || got[0] != "SIMD" || got[1] != "NS-DF" {
		t.Errorf("Subset order = %v, want [SIMD NS-DF]", got)
	}
	if _, err := Default().Subset([]string{"SIMD", "GPU"}); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestCheckDidYouMean(t *testing.T) {
	err := Default().Check("simd")
	if err == nil {
		t.Fatal("lowercase name accepted")
	}
	if !strings.Contains(err.Error(), `did you mean "SIMD"`) {
		t.Errorf("no suggestion for near-miss: %v", err)
	}
	err = Default().Check("GPU")
	if err == nil || strings.Contains(err.Error(), "did you mean") {
		t.Errorf("far-off name should list options without a suggestion: %v", err)
	}
	if !strings.Contains(err.Error(), "GS-DAE") {
		t.Errorf("allowed list missing registered name: %v", err)
	}
}

func TestDesignCodeAndMaskRoundTrip(t *testing.T) {
	reg := Default()
	if got := reg.DesignCode("OOO2", []string{"NS-DF", "SIMD", "GS-DAE"}); got != "OOO2-SNG" {
		t.Errorf("DesignCode = %q, want OOO2-SNG", got)
	}
	if got := reg.DesignCode("IO2", nil); got != "IO2" {
		t.Errorf("empty-set DesignCode = %q, want IO2", got)
	}
	mask, err := reg.Mask([]string{"SIMD", "GS-DAE"})
	if err != nil {
		t.Fatal(err)
	}
	if mask != 1|16 {
		t.Errorf("Mask = %d, want %d", mask, 1|16)
	}
	parsed, err := reg.ParseLetters(reg.SubsetName(mask))
	if err != nil || parsed != mask {
		t.Errorf("ParseLetters round trip = %d, %v; want %d", parsed, err, mask)
	}
	if _, err := reg.ParseLetters("SX"); err == nil {
		t.Error("unknown letter accepted")
	}
}

func TestNewRegistryRejectsDuplicates(t *testing.T) {
	mk := func() tdg.BSA { return nil }
	if _, err := NewRegistry(
		Entry{Name: "A", Letter: 'A', New: mk},
		Entry{Name: "A", Letter: 'B', New: mk},
	); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := NewRegistry(
		Entry{Name: "A", Letter: 'A', New: mk},
		Entry{Name: "B", Letter: 'A', New: mk},
	); err == nil {
		t.Error("duplicate letter accepted")
	}
}
