// Package bsautil holds machinery shared by the BSA transform models:
// splitting a region occurrence into loop iterations, and a configurable
// dataflow executor used by both the non-speculative dataflow (NS-DF) and
// trace-speculative (Trace-P) models, which differ mainly in control
// handling and structure sizes (paper §3.1, Table 2).
package bsautil

import (
	"sort"
	"sync"

	"exocore/internal/dg"
	"exocore/internal/energy"
	"exocore/internal/isa"
	"exocore/internal/tdg"
	"exocore/internal/trace"
)

// Iteration is a half-open dynamic-index range covering one loop
// iteration within a region occurrence.
type Iteration struct {
	Start, End int
}

// SplitIterations splits trace[start:end) into iterations of the given
// loop, detecting iteration boundaries at header-block entry. Any prefix
// before the first header entry is folded into the first iteration.
func SplitIterations(t *tdg.TDG, loopID, start, end int) []Iteration {
	if end <= start {
		return nil
	}
	// The TDG memoizes every loop's header-entry positions, so locating
	// this occurrence's boundaries is a binary search, not a trace scan.
	entries := t.HeaderEntries(loopID)
	lo := sort.Search(len(entries), func(k int) bool { return int(entries[k]) >= start })
	hi := lo + sort.Search(len(entries)-lo, func(k int) bool { return int(entries[lo+k]) >= end })
	bounds := entries[lo:hi]
	if len(bounds) > 0 {
		// The first header entry never splits: any prefix before it folds
		// into the first iteration.
		bounds = bounds[1:]
	}
	iters := make([]Iteration, 0, len(bounds)+1)
	cur := start
	for _, b := range bounds {
		iters = append(iters, Iteration{Start: cur, End: int(b)})
		cur = int(b)
	}
	return append(iters, Iteration{Start: cur, End: end})
}

// BlocksOf returns the distinct basic-block entry sequence of a dynamic
// range (the iteration's path).
func BlocksOf(t *tdg.TDG, start, end int) []int {
	return BlocksOfInto(nil, t, start, end)
}

// BlocksOfInto is BlocksOf building into buf (overwritten), so per-
// iteration callers can reuse one allocation.
func BlocksOfInto(buf []int, t *tdg.TDG, start, end int) []int {
	blocks := buf[:0]
	prev := -1
	prevSI := -1
	for i := start; i < end; i++ {
		si := int(t.Trace.Insts[i].SI)
		b := t.CFG.BlockOf[si]
		if b != prev || si <= prevSI {
			blocks = append(blocks, b)
			prev = b
		}
		prevSI = si
	}
	return blocks
}

// DataflowConfig parameterizes the dataflow executor.
type DataflowConfig struct {
	// IssueBandwidth is ops the CFU array can begin per cycle.
	IssueBandwidth int
	// BusBandwidth is result transfers per cycle on the writeback bus.
	BusBandwidth int
	// BusEvery books the bus for one of every N produced values: only
	// values consumed by a *different* compound unit traverse the bus,
	// approximated as a fixed fraction of results.
	BusEvery int
	// MemPorts is the accelerator's own cache interface width.
	MemPorts int
	// SerializeControl makes every op additionally depend on the last
	// resolved branch (non-speculative dataflow). When false the executor
	// runs the trace's resolved path speculatively (Trace-P).
	SerializeControl bool
	// ChainOps issues operations strictly in order (each op waits for the
	// previous op's issue): the serialized compound-FU execution style of
	// BERET and C-Cores, trading parallelism for energy.
	ChainOps bool
	// OpsPerCompound is the average compound-FU grouping, amortizing
	// dispatch energy.
	OpsPerCompound int
	// DispatchEvent/OpEvent/StorageEvent configure energy accounting.
	DispatchEvent energy.Event
	OpEvent       energy.Event
	StorageEvent  energy.Event
	MemEvent      energy.Event // charged per memory op (SB or LSQ analog)
}

// Dataflow models dataflow execution of dynamic instructions on an
// offload accelerator sharing the cache hierarchy. It tracks register and
// memory dependences locally and exposes entry/exit state for region
// handoff.
type Dataflow struct {
	Cfg    DataflowConfig
	G      *dg.Graph
	Counts *energy.Counts

	regNode  [isa.NumRegs]dg.NodeID
	ctrlNode dg.NodeID
	stores   dfStoreTab

	issueRT *dg.ResourceTable
	busRT   *dg.ResourceTable
	memRT   *dg.ResourceTable

	lastNode dg.NodeID
	lastExec dg.NodeID
	ops      int64
	values   int64
	// written flags registers written during execution; a fixed array
	// instead of a map keeps the per-op write branchless, and iteration
	// (WrittenRegs, ExitNode) deterministic in ascending register order —
	// map iteration could pick either predecessor on exit-edge time ties.
	written [isa.NumRegs]bool
	wrList  [isa.NumRegs]isa.Reg // WrittenRegs scratch
}

// dfPool recycles Dataflow executors (and their store table) across
// regions; every offload model creates one per region occurrence.
var dfPool = sync.Pool{New: func() any {
	return &Dataflow{}
}}

// dfStoreTab is an open-addressed address → completion-node table for
// store-to-load forwarding, replacing a Go map on the per-op hot path.
// Keys are word-aligned addresses tagged with bit 0 (addresses have the
// low three bits clear) so the zero key can mean "empty slot".
type dfStoreTab struct {
	keys  []uint64
	nodes []dg.NodeID
	used  int
}

const dfStoreTabInitSize = 1024

func (t *dfStoreTab) clear() {
	if t.keys == nil {
		t.keys = make([]uint64, dfStoreTabInitSize)
		t.nodes = make([]dg.NodeID, dfStoreTabInitSize)
	} else {
		clear(t.keys)
	}
	t.used = 0
}

func (t *dfStoreTab) get(addr uint64) (dg.NodeID, bool) {
	k := addr | 1
	mask := uint64(len(t.keys) - 1)
	for i := (k * 0x9E3779B97F4A7C15) >> 17 & mask; ; i = (i + 1) & mask {
		switch t.keys[i] {
		case k:
			return t.nodes[i], true
		case 0:
			return dg.None, false
		}
	}
}

func (t *dfStoreTab) set(addr uint64, n dg.NodeID) {
	if 2*(t.used+1) > len(t.keys) {
		t.grow()
	}
	k := addr | 1
	mask := uint64(len(t.keys) - 1)
	for i := (k * 0x9E3779B97F4A7C15) >> 17 & mask; ; i = (i + 1) & mask {
		switch t.keys[i] {
		case k:
			t.nodes[i] = n
			return
		case 0:
			t.keys[i], t.nodes[i] = k, n
			t.used++
			return
		}
	}
}

func (t *dfStoreTab) grow() {
	oldKeys, oldNodes := t.keys, t.nodes
	t.keys = make([]uint64, 2*len(oldKeys))
	t.nodes = make([]dg.NodeID, 2*len(oldNodes))
	t.used = 0
	for i, k := range oldKeys {
		if k != 0 {
			t.set(k&^1, oldNodes[i])
		}
	}
}

func (t *dfStoreTab) forEach(f func(addr uint64, n dg.NodeID)) {
	for i, k := range t.keys {
		if k != 0 {
			f(k&^1, t.nodes[i])
		}
	}
}

// NewDataflow returns an executor whose inputs become available at the
// entry node (live-in transfer complete). The executor is pooled: pair
// with Release.
func NewDataflow(cfg DataflowConfig, g *dg.Graph, counts *energy.Counts, entry dg.NodeID) *Dataflow {
	d := dfPool.Get().(*Dataflow)
	d.Cfg, d.G, d.Counts = cfg, g, counts
	d.stores.clear()
	clear(d.written[:])
	d.issueRT = g.BorrowRT(cfg.IssueBandwidth)
	d.busRT = g.BorrowRT(cfg.BusBandwidth)
	d.memRT = g.BorrowRT(cfg.MemPorts)
	for i := range d.regNode {
		d.regNode[i] = entry
	}
	d.ctrlNode = entry
	d.lastNode = entry
	d.lastExec = dg.None
	d.ops, d.values = 0, 0
	return d
}

// Release recycles the dataflow's resource tables into the graph's pool
// and the executor itself into the package pool. Call (usually defer)
// once the Dataflow is no longer used; it must not be touched afterwards.
func (d *Dataflow) Release() {
	d.G.ReturnRT(d.issueRT, d.busRT, d.memRT)
	d.issueRT, d.busRT, d.memRT = nil, nil, nil
	d.G, d.Counts = nil, nil
	dfPool.Put(d)
}

// Exec models one dynamic instruction on the accelerator and returns its
// completion node.
func (d *Dataflow) Exec(in *isa.Inst, dyn *trace.DynInst, dynIdx int32) dg.NodeID {
	g := d.G
	e := g.NewNode(dg.KindAccel, dynIdx)

	if g.Lean() {
		// Lean fast path: accumulate the dependence join in a register
		// and store it once — identical times, no per-edge relax calls
		// (a None source contributes nothing, mirroring AddEdge).
		var te int64
		if in.Src1.Valid() && in.Src1 != isa.RZ {
			if n := d.regNode[in.Src1]; n != dg.None {
				if t := g.Time(n); t > te {
					te = t
				}
			}
		}
		if in.Src2.Valid() && in.Src2 != isa.RZ {
			if n := d.regNode[in.Src2]; n != dg.None {
				if t := g.Time(n); t > te {
					te = t
				}
			}
		}
		if in.Op == isa.FMA && in.Dst.Valid() {
			if n := d.regNode[in.Dst]; n != dg.None {
				if t := g.Time(n); t > te {
					te = t
				}
			}
		}
		if d.Cfg.SerializeControl && d.ctrlNode != dg.None {
			if t := g.Time(d.ctrlNode) + 1; t > te {
				te = t
			}
		}
		if d.Cfg.ChainOps && d.lastExec != dg.None {
			if t := g.Time(d.lastExec); t > te {
				te = t
			}
		}
		if in.Op.IsLoad() {
			if dep, ok := d.stores.get(dyn.Addr &^ 7); ok {
				if t := g.Time(dep) + 1; t > te {
					te = t
				}
			}
		}
		g.SetTime(e, te)
	} else {
		// Data dependences.
		if in.Src1.Valid() && in.Src1 != isa.RZ {
			g.AddEdge(d.regNode[in.Src1], e, 0, dg.EdgeData)
		}
		if in.Src2.Valid() && in.Src2 != isa.RZ {
			g.AddEdge(d.regNode[in.Src2], e, 0, dg.EdgeData)
		}
		if in.Op == isa.FMA && in.Dst.Valid() {
			g.AddEdge(d.regNode[in.Dst], e, 0, dg.EdgeData)
		}
		// Non-speculative control: wait for the branch that admitted
		// this op.
		if d.Cfg.SerializeControl {
			g.AddEdge(d.ctrlNode, e, 1, dg.EdgeAccelCompute)
		}
		// Serialized compound execution: in-order issue.
		if d.Cfg.ChainOps && d.lastExec != dg.None {
			g.AddEdge(d.lastExec, e, 0, dg.EdgeInOrder)
		}
		// Memory dependence through the (store buffer / cache) interface.
		if in.Op.IsLoad() {
			if dep, ok := d.stores.get(dyn.Addr &^ 7); ok {
				g.AddEdge(dep, e, 1, dg.EdgeMemDep)
			}
		}
	}

	// Resources.
	g.PushTime(e, d.issueRT.Book(g.Time(e)), dg.EdgeFU)
	if in.Op.IsMem() {
		g.PushTime(e, d.memRT.Book(g.Time(e)), dg.EdgeCachePort)
	}

	// Completion.
	p := g.NewNode(dg.KindAccel, dynIdx)
	lat := int64(in.Op.Latency())
	if in.Op.IsMem() {
		lat = int64(dyn.MemLat)
		if in.Op.IsStore() {
			lat = 1
		}
	}
	if lat < 1 {
		lat = 1
	}
	if g.Lean() {
		g.SetTime(p, g.Time(e)+lat) // e's only outgoing edge; times ≥ 0
	} else {
		g.AddEdge(e, p, lat, dg.EdgeExec)
	}
	if in.HasDst() {
		d.values++
		// Cross-CFU results traverse the writeback bus (a fixed fraction
		// of values stay local to their compound unit).
		if d.Cfg.BusEvery <= 1 || d.values%int64(d.Cfg.BusEvery) == 0 {
			g.PushTime(p, d.busRT.Book(g.Time(p)), dg.EdgeFU)
			d.Counts.Add(energy.EvDFBus, 1)
		}
		d.regNode[in.Dst] = p
		d.written[in.Dst] = true
		d.Counts.Add(d.Cfg.StorageEvent, 1)
	}
	if in.Op.IsStore() {
		d.stores.set(dyn.Addr&^7, p)
		if d.stores.used > 8192 {
			d.stores.clear()
			d.stores.set(dyn.Addr&^7, p)
		}
	}
	if in.Op.IsCtrl() {
		d.ctrlNode = p
	}

	// Energy: compound-amortized dispatch + per-op firing + memory.
	d.ops++
	if d.Cfg.OpsPerCompound > 0 && d.ops%int64(d.Cfg.OpsPerCompound) == 0 {
		d.Counts.Add(d.Cfg.DispatchEvent, 1)
	}
	d.Counts.Add(d.Cfg.OpEvent, 1)
	if in.Op.IsMem() {
		d.Counts.Add(d.Cfg.MemEvent, 1)
		d.Counts.Add(energy.EvL1Access, 1)
		switch dyn.Level {
		case trace.LevelL2:
			d.Counts.Add(energy.EvL2Access, 1)
		case trace.LevelMem:
			d.Counts.Add(energy.EvL2Access, 1)
			d.Counts.Add(energy.EvMemAccess, 1)
		}
	}

	d.lastNode = p
	d.lastExec = e
	return p
}

// RegNode returns the node currently producing register r.
func (d *Dataflow) RegNode(r isa.Reg) dg.NodeID { return d.regNode[r] }

// CtrlNode returns the last resolved-control node.
func (d *Dataflow) CtrlNode() dg.NodeID { return d.ctrlNode }

// LastNode returns the most recent completion node.
func (d *Dataflow) LastNode() dg.NodeID { return d.lastNode }

// Ops returns the number of executed operations.
func (d *Dataflow) Ops() int64 { return d.ops }

// WrittenRegs returns the registers written during execution, in
// ascending order. The slice is scratch owned by the executor — iterate
// it immediately, don't retain it across Exec or Release.
func (d *Dataflow) WrittenRegs() []isa.Reg {
	out := d.wrList[:0]
	for r := 0; r < isa.NumRegs; r++ {
		if d.written[r] {
			out = append(out, isa.Reg(r))
		}
	}
	return out
}

// ForEachStore visits every (address, completion node) pair of performed
// stores, for forwarding into the core's dependence state at region exit.
// Addresses are unique, so visit order does not matter to consumers.
func (d *Dataflow) ForEachStore(f func(addr uint64, node dg.NodeID)) {
	d.stores.forEach(f)
}

// StoreNode returns the completion node of the last store to addr's word,
// if any.
func (d *Dataflow) StoreNode(addr uint64) (dg.NodeID, bool) {
	return d.stores.get(addr &^ 7)
}

// ResetControl re-anchors the control chain (lane-local control: each
// loop iteration resolves its own branches independently, as in
// XLOOPS-style lane execution).
func (d *Dataflow) ResetControl(node dg.NodeID) { d.ctrlNode = node }

// RegSource lets Resume read the core's architectural dependence state
// without importing the cores package.
type RegSource interface {
	RegDef(r isa.Reg) dg.NodeID
}

// Resume re-synchronizes the executor after a misspeculation replay on
// the host core: every register's producer becomes the core's current
// producer (at earliest the resume node), and control restarts at resume.
func (d *Dataflow) Resume(resume dg.NodeID, regs RegSource) {
	rt := d.G.Time(resume)
	for r := range d.regNode {
		n := regs.RegDef(isa.Reg(r))
		// Take whichever producer is later: the replay's register writer
		// or the resume handshake itself.
		if n == dg.None || d.G.Time(n) < rt {
			n = resume
		}
		d.regNode[r] = n
	}
	d.ctrlNode = resume
	d.lastNode = resume
	d.lastExec = resume
}

// ExitNode builds a join node at which all written registers and the last
// control decision are available (region completion).
func (d *Dataflow) ExitNode(extraLat int64) dg.NodeID {
	g := d.G
	exit := g.NewNode(dg.KindAccel, -1)
	g.AddEdge(d.ctrlNode, exit, extraLat, dg.EdgeAccelComm)
	g.AddEdge(d.lastNode, exit, extraLat, dg.EdgeAccelComm)
	for r := 0; r < isa.NumRegs; r++ {
		if d.written[r] {
			g.AddEdge(d.regNode[r], exit, extraLat, dg.EdgeAccelComm)
		}
	}
	return exit
}

// TransferLatency models live-value transfer time between core and
// accelerator: a fixed handshake plus bus-width-limited register moves.
func TransferLatency(nregs int) int64 {
	lat := int64(2 + (nregs+1)/2)
	return lat
}

// ConfigCache is a small LRU of accelerator configurations keyed by loop
// ID; a miss costs a configuration load (paper §3.2, DP-CGRA keeps "a
// small configuration cache"; NS-DF and Trace-P behave likewise).
type ConfigCache struct {
	cap   int
	order []int
}

// NewConfigCache returns an LRU config cache with the given capacity.
func NewConfigCache(capacity int) *ConfigCache {
	return &ConfigCache{cap: capacity}
}

// Lookup touches loopID, returning true on hit; on miss the entry is
// installed (evicting LRU).
func (c *ConfigCache) Lookup(loopID int) bool {
	for i, id := range c.order {
		if id == loopID {
			// Move to MRU position in place.
			copy(c.order[i:], c.order[i+1:])
			c.order[len(c.order)-1] = loopID
			return true
		}
	}
	if len(c.order) < c.cap {
		c.order = append(c.order, loopID)
	} else {
		copy(c.order, c.order[1:])
		c.order[len(c.order)-1] = loopID
	}
	return false
}
