package bsautil

import (
	"testing"

	"exocore/internal/bpred"
	"exocore/internal/cache"
	"exocore/internal/dg"
	"exocore/internal/energy"
	"exocore/internal/isa"
	"exocore/internal/prog"
	"exocore/internal/sim"
	"exocore/internal/tdg"
	"exocore/internal/trace"
)

func buildTDG(t *testing.T, p *prog.Program, prep func(*sim.State)) *tdg.TDG {
	t.Helper()
	st := sim.NewState()
	if prep != nil {
		prep(st)
	}
	tr, err := sim.Run(p, st, sim.Config{MaxDyn: 20000})
	if err != nil {
		t.Fatal(err)
	}
	cache.DefaultHierarchy().Annotate(tr)
	bpred.New(bpred.DefaultConfig()).Annotate(tr)
	td, err := tdg.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	return td
}

func countLoop(n int64) *prog.Program {
	b := prog.NewBuilder("count")
	b.MovI(isa.R(1), n)
	b.Label("loop")
	b.AddI(isa.R(2), isa.R(2), 1)
	b.SubI(isa.R(1), isa.R(1), 1)
	b.Bne(isa.R(1), isa.RZ, "loop")
	return b.MustBuild()
}

func TestSplitIterations(t *testing.T) {
	td := buildTDG(t, countLoop(10), nil)
	// Trace: movi + 10*(addi,subi,bne). The loop occupies [1, 31).
	iters := SplitIterations(td, 0, 1, 31)
	if len(iters) != 10 {
		t.Fatalf("iterations = %d, want 10", len(iters))
	}
	for i, it := range iters {
		if it.End-it.Start != 3 {
			t.Errorf("iteration %d has %d insts, want 3", i, it.End-it.Start)
		}
	}
	if iters[0].Start != 1 || iters[9].End != 31 {
		t.Errorf("coverage wrong: %+v", iters)
	}
}

func TestSplitIterationsWithPrefix(t *testing.T) {
	td := buildTDG(t, countLoop(5), nil)
	// Include the prologue movi in the range: folds into iteration 1.
	iters := SplitIterations(td, 0, 0, 16)
	total := 0
	for _, it := range iters {
		total += it.End - it.Start
	}
	if total != 16 {
		t.Errorf("iterations cover %d insts, want 16", total)
	}
}

func TestBlocksOf(t *testing.T) {
	td := buildTDG(t, countLoop(3), nil)
	blocks := BlocksOf(td, 1, 4) // one iteration: single block
	if len(blocks) != 1 {
		t.Errorf("blocks = %v, want single block", blocks)
	}
	// Two iterations of the same single-block loop: re-entry counts.
	blocks = BlocksOf(td, 1, 7)
	if len(blocks) != 2 {
		t.Errorf("blocks over 2 iterations = %v, want re-entry", blocks)
	}
}

func TestConfigCacheLRU(t *testing.T) {
	c := NewConfigCache(2)
	if c.Lookup(1) {
		t.Error("cold lookup hit")
	}
	if !c.Lookup(1) {
		t.Error("warm lookup missed")
	}
	c.Lookup(2)
	c.Lookup(3) // evicts 1
	if c.Lookup(1) {
		t.Error("evicted entry hit")
	}
	if !c.Lookup(3) {
		t.Error("MRU entry missed")
	}
}

func TestTransferLatency(t *testing.T) {
	if TransferLatency(0) != 2 || TransferLatency(4) != 4 {
		t.Errorf("TransferLatency: %d %d", TransferLatency(0), TransferLatency(4))
	}
	if TransferLatency(5) <= TransferLatency(1) {
		t.Error("latency must grow with register count")
	}
}

var testCfg = DataflowConfig{
	IssueBandwidth: 4, BusBandwidth: 2, MemPorts: 1,
	SerializeControl: true, OpsPerCompound: 2,
	DispatchEvent: energy.EvDFDispatch, OpEvent: energy.EvCFUOp,
	StorageEvent: energy.EvDFOpStorage, MemEvent: energy.EvLSQ,
}

func TestDataflowDataDependence(t *testing.T) {
	g := dg.NewGraph()
	var counts energy.Counts
	entry := g.NewNode(dg.KindAccel, -1)
	df := NewDataflow(testCfg, g, &counts, entry)

	add := isa.Inst{Op: isa.Add, Dst: isa.R(1), Src1: isa.R(2), Src2: isa.R(3)}
	mul := isa.Inst{Op: isa.Mul, Dst: isa.R(4), Src1: isa.R(1), Src2: isa.R(1)}
	d := trace.DynInst{}
	p1 := df.Exec(&add, &d, 0)
	p2 := df.Exec(&mul, &d, 1)
	if g.Time(p2) < g.Time(p1)+int64(isa.Mul.Latency()) {
		t.Errorf("dependent mul at %d, producer at %d", g.Time(p2), g.Time(p1))
	}
	if df.Ops() != 2 {
		t.Errorf("ops = %d", df.Ops())
	}
	if got := df.WrittenRegs(); len(got) != 2 || got[0] != isa.R(1) || got[1] != isa.R(4) {
		t.Errorf("WrittenRegs = %v, want [R1 R4] in ascending order", got)
	}
}

func TestDataflowControlSerialization(t *testing.T) {
	runWith := func(serialize bool) int64 {
		g := dg.NewGraph()
		var counts energy.Counts
		cfg := testCfg
		cfg.SerializeControl = serialize
		df := NewDataflow(cfg, g, &counts, g.Origin())
		br := isa.Inst{Op: isa.Bne, Src1: isa.R(1), Src2: isa.RZ, Dst: isa.NoReg}
		op := isa.Inst{Op: isa.Add, Dst: isa.R(2), Src1: isa.R(3), Src2: isa.R(3)}
		d := trace.DynInst{}
		var last dg.NodeID
		for i := 0; i < 20; i++ {
			df.Exec(&br, &d, int32(2*i))
			last = df.Exec(&op, &d, int32(2*i+1))
		}
		return g.Time(last)
	}
	serial, spec := runWith(true), runWith(false)
	if serial <= spec {
		t.Errorf("control serialization should cost cycles: %d vs %d", serial, spec)
	}
}

func TestDataflowChainOps(t *testing.T) {
	runWith := func(chain bool) int64 {
		g := dg.NewGraph()
		var counts energy.Counts
		cfg := testCfg
		cfg.SerializeControl = false
		cfg.ChainOps = chain
		df := NewDataflow(cfg, g, &counts, g.Origin())
		d := trace.DynInst{}
		var last dg.NodeID
		for i := 0; i < 32; i++ {
			// Independent ops: only chaining can serialize them.
			in := isa.Inst{Op: isa.Add, Dst: isa.R(1 + i%8), Src1: isa.RZ, Src2: isa.RZ}
			last = df.Exec(&in, &d, int32(i))
		}
		return g.Time(last)
	}
	chained, free := runWith(true), runWith(false)
	if chained < free {
		t.Errorf("chained execution faster than dataflow: %d vs %d", chained, free)
	}
}

func TestDataflowMemoryDependence(t *testing.T) {
	g := dg.NewGraph()
	var counts energy.Counts
	df := NewDataflow(testCfg, g, &counts, g.Origin())
	st := isa.Inst{Op: isa.St, Src1: isa.R(1), Src2: isa.R(2), Dst: isa.NoReg}
	ld := isa.Inst{Op: isa.Ld, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.NoReg}
	ds := trace.DynInst{Addr: 0x1000, MemLat: 4}
	pSt := df.Exec(&st, &ds, 0)
	pLd := df.Exec(&ld, &ds, 1)
	if g.Time(pLd) <= g.Time(pSt) {
		t.Error("load did not wait for the store to the same address")
	}
	if n, ok := df.StoreNode(0x1000); !ok || n != pSt {
		t.Error("store table wrong")
	}
}

func TestDataflowExitNode(t *testing.T) {
	g := dg.NewGraph()
	var counts energy.Counts
	df := NewDataflow(testCfg, g, &counts, g.Origin())
	in := isa.Inst{Op: isa.Mul, Dst: isa.R(1), Src1: isa.R(2), Src2: isa.R(2)}
	d := trace.DynInst{}
	p := df.Exec(&in, &d, 0)
	exit := df.ExitNode(3)
	if g.Time(exit) < g.Time(p)+3 {
		t.Errorf("exit at %d, want >= producer+3 (%d)", g.Time(exit), g.Time(p)+3)
	}
}

func TestDataflowResume(t *testing.T) {
	g := dg.NewGraph()
	var counts energy.Counts
	df := NewDataflow(testCfg, g, &counts, g.Origin())
	in := isa.Inst{Op: isa.Add, Dst: isa.R(1), Src1: isa.RZ, Src2: isa.RZ}
	d := trace.DynInst{}
	df.Exec(&in, &d, 0)

	resume := g.NewNode(dg.KindAccel, -1)
	g.AddEdge(g.Origin(), resume, 500, dg.EdgeAccelReplay)
	df.Resume(resume, nilRegs{})
	// Post-resume ops cannot start before the resume point.
	p := df.Exec(&in, &d, 1)
	if g.Time(p) < 500 {
		t.Errorf("post-resume op at %d, want >= 500", g.Time(p))
	}
}

type nilRegs struct{}

func (nilRegs) RegDef(isa.Reg) dg.NodeID { return dg.None }

// TestDataflowLeanTimesIdentical pins the lean fast path in
// Dataflow.Exec to the attribution path: the same op stream through
// both graph modes must yield bit-identical completion times, for both
// the NS-DF (serialized control) and Trace-P (speculative, chained)
// configurations.
func TestDataflowLeanTimesIdentical(t *testing.T) {
	ops := []struct {
		in  isa.Inst
		dyn trace.DynInst
	}{
		{isa.Inst{Op: isa.Add, Dst: isa.R(1), Src1: isa.R(2), Src2: isa.R(3)}, trace.DynInst{}},
		{isa.Inst{Op: isa.Ld, Dst: isa.R(2), Src1: isa.R(1), Src2: isa.NoReg}, trace.DynInst{Addr: 0x1000, MemLat: 12}},
		{isa.Inst{Op: isa.Mul, Dst: isa.R(3), Src1: isa.R(2), Src2: isa.R(2)}, trace.DynInst{}},
		{isa.Inst{Op: isa.St, Src1: isa.R(1), Src2: isa.R(3), Dst: isa.NoReg}, trace.DynInst{Addr: 0x1000, MemLat: 4}},
		{isa.Inst{Op: isa.Ld, Dst: isa.R(4), Src1: isa.R(1), Src2: isa.NoReg}, trace.DynInst{Addr: 0x1000, MemLat: 2}},
		{isa.Inst{Op: isa.Bne, Src1: isa.R(4), Src2: isa.RZ, Dst: isa.NoReg}, trace.DynInst{Flags: trace.FlagTaken}},
		{isa.Inst{Op: isa.FMA, Dst: isa.R(5), Src1: isa.R(3), Src2: isa.R(4)}, trace.DynInst{}},
		{isa.Inst{Op: isa.Div, Dst: isa.R(6), Src1: isa.R(5), Src2: isa.R(3)}, trace.DynInst{}},
	}
	for _, chain := range []bool{false, true} {
		for _, serialize := range []bool{false, true} {
			cfg := testCfg
			cfg.SerializeControl = serialize
			cfg.ChainOps = chain
			cfg.BusEvery = 2
			ga := dg.NewGraph()
			gl := dg.NewGraph()
			gl.ResetMode(true)
			var ca, cl energy.Counts
			da := NewDataflow(cfg, ga, &ca, ga.Origin())
			dl := NewDataflow(cfg, gl, &cl, gl.Origin())
			for i := range ops {
				for rep := 0; rep < 3; rep++ {
					pa := da.Exec(&ops[i].in, &ops[i].dyn, int32(i))
					pl := dl.Exec(&ops[i].in, &ops[i].dyn, int32(i))
					if ga.Time(pa) != gl.Time(pl) {
						t.Fatalf("chain=%v serialize=%v op %d rep %d: attrib %d != lean %d",
							chain, serialize, i, rep, ga.Time(pa), gl.Time(pl))
					}
				}
			}
			ea := da.ExitNode(3)
			el := dl.ExitNode(3)
			if ga.Time(ea) != gl.Time(el) {
				t.Fatalf("chain=%v serialize=%v: exit %d != %d", chain, serialize, ga.Time(ea), gl.Time(el))
			}
			if ca != cl {
				t.Fatalf("chain=%v serialize=%v: energy counts diverge", chain, serialize)
			}
			da.Release()
			dl.Release()
		}
	}
}
