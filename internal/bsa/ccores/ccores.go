// Package ccores models Conservation Cores: automatically generated,
// simple hardware implementations of application code meant as offload
// engines for in-order cores (Venkatesh et al., ASPLOS 2010; validated by
// the paper in §2.5). Each targeted region becomes hardwired datapath
// logic — no fetch, decode or configuration cost, modest parallelism
// (block-level dataflow over a narrow issue), large energy savings. The
// model exists chiefly for the Table 1 / Figure 5 validation experiment,
// where its host is the IO2 core, but it is a full tdg.BSA and can be
// composed into ExoCores like any other.
package ccores

import (
	"exocore/internal/bsa/bsautil"
	"exocore/internal/dg"
	"exocore/internal/energy"
	"exocore/internal/tdg"
)

// Model is the Conservation-Cores BSA.
type Model struct {
	// MaxStaticInsts bounds the synthesized region size.
	MaxStaticInsts int
}

// New returns the C-Cores model.
func New() *Model { return &Model{MaxStaticInsts: 512} }

// Name implements tdg.BSA.
func (m *Model) Name() string { return "C-Cores" }

// AreaMM2 implements tdg.BSA: synthesized datapaths for the hot regions.
func (m *Model) AreaMM2() float64 { return 1.2 }

// OffloadsCore implements tdg.BSA: the host core sleeps during regions.
func (m *Model) OffloadsCore() bool { return true }

var dfConfig = bsautil.DataflowConfig{
	IssueBandwidth:   2,
	BusBandwidth:     2,
	BusEvery:         1,
	MemPorts:         1,
	SerializeControl: true, // simple hardware follows the control flow
	ChainOps:         true, // sequential datapath, not dataflow
	OpsPerCompound:   2,    // fused datapath operators
	DispatchEvent:    energy.EvDFDispatch,
	OpEvent:          energy.EvCFUOp,
	StorageEvent:     energy.EvDFOpStorage,
	MemEvent:         energy.EvLSQ,
}

// Analyze implements tdg.BSA: any loop that fits the synthesis budget is
// a candidate (c-cores are generated from profiling the hot code).
func (m *Model) Analyze(t *tdg.TDG) *tdg.Plan {
	plan := &tdg.Plan{BSA: m.Name(), Regions: make(map[int]*tdg.Region)}
	for l := range t.Nest.Loops {
		if t.Prof.Loops[l].Iterations == 0 || t.Nest.InstsOf(l) > m.MaxStaticInsts {
			continue
		}
		plan.Regions[l] = &tdg.Region{LoopID: l, EstSpeedup: 1.1}
	}
	return plan
}

// TransformRegion implements tdg.BSA: block-serialized dataflow on the
// synthesized datapath — no fetch/decode/rename events, no configuration
// load (the hardware is fixed-function).
func (m *Model) TransformRegion(ctx *tdg.Ctx, r *tdg.Region, start, end int) dg.NodeID {
	g := ctx.G
	gpp := ctx.GPP
	ld := ctx.TDG.Dataflow(r.LoopID)

	entry := g.NewNode(dg.KindAccel, int32(start))
	inLat := bsautil.TransferLatency(len(ld.LiveIns))
	g.AddEdge(gpp.LastCommit(), entry, inLat, dg.EdgeAccelComm)
	for _, reg := range ld.LiveIns {
		g.AddEdge(gpp.RegDef(reg), entry, inLat, dg.EdgeAccelComm)
	}

	df := bsautil.NewDataflow(dfConfig, g, ctx.Counts, entry)
	defer df.Release()
	tr := ctx.TDG.Trace
	for i := start; i < end; i++ {
		d := &tr.Insts[i]
		df.Exec(&tr.Prog.Insts[d.SI], d, int32(i))
	}

	exit := df.ExitNode(bsautil.TransferLatency(len(ld.LiveOuts)))
	for _, reg := range df.WrittenRegs() {
		gpp.SetRegDef(reg, exit)
	}
	df.ForEachStore(gpp.NoteStore)
	gpp.Barrier(exit, dg.EdgeAccelComm)
	return exit
}
