package ccores

import (
	"testing"

	"exocore/internal/cores"
	"exocore/internal/testutil"
)

func TestEnergyFirstOffload(t *testing.T) {
	// C-Cores' published profile: roughly core-neutral performance with
	// substantial energy reduction, on an in-order host.
	for _, bench := range []string{"cjpeg2", "vpr", "bzip2"} {
		td := testutil.TDGFor(t, bench, 25000)
		base, accel, baseE, accelE := testutil.SoloRun(t, td, cores.IO2, New())
		sp := float64(base) / float64(accel)
		en := baseE / accelE
		t.Logf("%s: %.2fx perf, %.2fx energy", bench, sp, en)
		if sp < 0.7 || sp > 1.6 {
			t.Errorf("%s: c-cores performance %.2fx outside the plausible band", bench, sp)
		}
		if en < 1.1 {
			t.Errorf("%s: energy win %.2fx < 1.1x", bench, en)
		}
	}
}

func TestBudgetEnforced(t *testing.T) {
	td := testutil.TDGFor(t, "cjpeg2", 20000)
	m := New()
	m.MaxStaticInsts = 1
	if plan := m.Analyze(td); len(plan.Regions) != 0 {
		t.Error("budget not enforced")
	}
}

func TestMetadata(t *testing.T) {
	m := New()
	if m.Name() != "C-Cores" || !m.OffloadsCore() || m.AreaMM2() <= 0 {
		t.Error("metadata wrong")
	}
}
