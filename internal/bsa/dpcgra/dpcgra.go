// Package dpcgra models a data-parallel coarse-grain reconfigurable array
// in the style of DySER/Morphosys (paper §3.1/3.2 "Data-Parallel CGRA"):
// the loop's computation subgraph is sliced out of the core and mapped
// onto a 64-FU CGRA pipelined at one loop instance per cycle, while the
// core runs the access slice and communicates live values through a
// flexible vector interface. Vectorizable loops clone the computation
// across lanes (the SIMD transform composes first, per the paper). Loops
// with more communication than offloaded computation are disregarded.
package dpcgra

import (
	"sort"
	"sync"

	"exocore/internal/bsa/bsautil"
	"exocore/internal/cores"
	"exocore/internal/dg"
	"exocore/internal/energy"
	"exocore/internal/ir"
	"exocore/internal/isa"
	"exocore/internal/tdg"
	"exocore/internal/trace"
)

// Model is the DP-CGRA BSA.
type Model struct {
	// FUs is the fabric size (paper: 64 functional units).
	FUs int
	// RouteLatency is the estimated per-hop switch latency — the paper
	// notes the spatial scheduler is abstracted and inter-FU latency
	// estimated (§2.7).
	RouteLatency int
}

// New returns the DP-CGRA model at the paper's design point.
func New() *Model { return &Model{FUs: 64, RouteLatency: 1} }

// Name implements tdg.BSA.
func (m *Model) Name() string { return "DP-CGRA" }

// AreaMM2 implements tdg.BSA (DySER-class 64-FU fabric + interface).
func (m *Model) AreaMM2() float64 { return 1.0 }

// OffloadsCore implements tdg.BSA: access-execute — the core keeps
// running the access slice, so no frontend power gating.
func (m *Model) OffloadsCore() bool { return false }

// ConfigLatency is the configuration-load cost on a config-cache miss.
const ConfigLatency = 64

type loopPlan struct {
	computeSIs map[int]bool // offloaded static instructions
	// computeSet mirrors computeSIs as an SI-indexed slice for the
	// per-dynamic-instruction membership test in instance pass 1.
	computeSet []bool
	inputs     []isa.Reg // regs sent core → CGRA each instance
	outputs    []isa.Reg // regs received CGRA → core each instance
	depth      int64     // compute-subgraph critical path in cycles
	ii         int64     // initiation interval between instances
	vectorize  bool      // clone computation across lanes
	lanes      int       // clone count (1 = scalar instances)
	inductions map[int]bool
	memKinds   map[int]byte // 0 contig, 1 scalar, 2 strided (access slice)
	latchSIs   map[int]bool
	computeN   int
	// Emission orders for the induction/latch map entries: op emission
	// books FU slots, so it must not follow Go's randomized map order.
	inductionOrder []int
	latchOrder     []int
}

// Analyze implements tdg.BSA: the plan is the set of legal and profitable
// loops with their computation subgraphs, borrowing vectorization
// analysis from SIMD and using a slicing algorithm to separate core and
// CGRA instructions (paper §3.2).
func (m *Model) Analyze(t *tdg.TDG) *tdg.Plan {
	plan := &tdg.Plan{BSA: m.Name(), Regions: make(map[int]*tdg.Region)}
	for l := range t.Nest.Loops {
		if r := m.analyzeLoop(t, l); r != nil {
			plan.Regions[l] = r
		}
	}
	return plan
}

func (m *Model) analyzeLoop(t *tdg.TDG, l int) *tdg.Region {
	loop := &t.Nest.Loops[l]
	lp := &t.Prof.Loops[l]
	if !loop.Inner() || lp.Iterations == 0 || lp.AvgTrip < 2 {
		return nil
	}
	ld := t.Dataflow(l)
	p := m.buildPlan(t, l, ld)
	if p == nil {
		return nil
	}
	// Vectorization legality borrowed from SIMD (§3.2). The computation
	// is "cloned until its size fills the available resources, or until
	// the maximum vector length is reached" — partial cloning when the
	// fabric cannot hold VecLanes copies.
	p.lanes = 1
	if !lp.CarriedMemDep && len(ld.CarriedRegDep) == 0 && lp.AvgTrip >= isa.VecLanes*0.95 {
		maxClones := m.FUs / p.computeN
		if maxClones > isa.VecLanes {
			maxClones = isa.VecLanes
		}
		if maxClones >= 2 {
			p.lanes = maxClones
			p.vectorize = true
		}
	}
	// Profitability: communication must not dominate computation. The
	// vector interface amortizes communication across lanes (one wide
	// transfer per input per instance).
	comm := float64(len(p.inputs)+len(p.outputs)) / float64(p.lanes)
	if comm >= float64(p.computeN) {
		return nil
	}
	origPerIter := float64(lp.DynInsts) / float64(lp.Iterations)
	est := origPerIter / m.corePerIter(p)
	if est <= 1.05 {
		return nil
	}
	return &tdg.Region{LoopID: l, EstSpeedup: est, Config: p}
}

// corePerIter estimates remaining core uops per original iteration.
func (m *Model) corePerIter(p *loopPlan) float64 {
	vl := float64(p.lanes)
	access := 0.0
	for si := range p.memKinds {
		switch p.memKinds[si] {
		case 0:
			access += 1 / vl
		case 1:
			access += 2 / vl
		default:
			access += 1 + 1/vl
		}
	}
	// Non-offloaded non-mem access-slice work + inductions + latch.
	access += float64(len(p.inductions)+len(p.latchSIs)) / vl
	comm := float64(len(p.inputs)+len(p.outputs)) / vl
	per := access + comm
	if floor := float64(p.ii) / vl; per < floor {
		per = floor // fabric throughput bound
	}
	if per < 1/vl {
		per = 1 / vl
	}
	return per
}

func (m *Model) buildPlan(t *tdg.TDG, l int, ld *ir.LoopDataflow) *loopPlan {
	loop := &t.Nest.Loops[l]
	prog := t.CFG.Prog
	p := &loopPlan{
		computeSIs: make(map[int]bool),
		inductions: make(map[int]bool),
		memKinds:   make(map[int]byte),
		latchSIs:   make(map[int]bool),
	}
	for si := range ld.Inductions {
		p.inductions[si] = true
	}
	header := loop.Header

	var bodySIs []int
	for _, b := range loop.Blocks {
		blk := &t.CFG.Blocks[b]
		for si := blk.Start; si < blk.End; si++ {
			bodySIs = append(bodySIs, si)
		}
	}
	for _, si := range bodySIs {
		in := prog.At(si)
		switch {
		case in.Op.IsCtrl():
			if tb := int(in.Imm); tb >= 0 && tb < len(t.CFG.BlockOf) && t.CFG.BlockOf[tb] == header {
				p.latchSIs[si] = true
			}
		case in.Op.IsMem():
			info := t.Prof.Strides[si]
			switch {
			case info.Contiguous():
				p.memKinds[si] = 0
			case info.Scalar():
				p.memKinds[si] = 1
			default:
				p.memKinds[si] = 2
			}
		case !ld.AddrSlice[si] && !p.inductions[si]:
			// Predicate computation may live in the fabric; only memory
			// addressing stays on the core (paper: control instructions
			// without forward memory dependences are offloaded).
			p.computeSIs[si] = true
		}
	}
	p.computeN = len(p.computeSIs)
	if p.computeN == 0 || p.computeN > m.FUs {
		return nil
	}
	p.computeSet = make([]bool, len(prog.Insts))
	for si := range p.computeSIs {
		p.computeSet[si] = true
	}

	// Interface registers: inputs are compute-slice reads produced
	// outside the compute slice; outputs are compute-slice writes read
	// outside it.
	computeReads := make(map[isa.Reg]bool)
	computeWrites := make(map[isa.Reg]bool)
	var srcs []isa.Reg
	for si := range p.computeSIs {
		in := prog.At(si)
		srcs = srcs[:0]
		for _, r := range in.Srcs(srcs) {
			computeReads[r] = true
		}
		if in.HasDst() {
			computeWrites[r0(in.Dst)] = true
		}
	}
	p.inputs = make([]isa.Reg, 0, len(computeReads))
	for r := range computeReads {
		if !computeWrites[r] {
			p.inputs = append(p.inputs, r)
		}
	}
	outsideReads := make(map[isa.Reg]bool)
	for _, si := range bodySIs {
		if p.computeSIs[si] {
			continue
		}
		in := prog.At(si)
		srcs = srcs[:0]
		for _, r := range in.Srcs(srcs) {
			outsideReads[r] = true
		}
	}
	for _, r := range ld.LiveOuts {
		outsideReads[r] = true
	}
	p.outputs = make([]isa.Reg, 0, len(computeWrites))
	for r := range computeWrites {
		if outsideReads[r] {
			p.outputs = append(p.outputs, r)
		}
	}
	ir.SortRegs(p.inputs)
	ir.SortRegs(p.outputs)

	// Compute-subgraph critical path: longest dependence chain through
	// the offloaded ops, each paying FU latency plus routing.
	depth := make(map[isa.Reg]int64)
	var maxDepth int64
	for _, si := range bodySIs {
		if !p.computeSIs[si] {
			continue
		}
		in := prog.At(si)
		var d int64
		srcs = srcs[:0]
		for _, r := range in.Srcs(srcs) {
			if depth[r] > d {
				d = depth[r]
			}
		}
		d += int64(in.Op.Latency() + m.RouteLatency)
		if in.HasDst() {
			depth[r0(in.Dst)] = d
		}
		if d > maxDepth {
			maxDepth = d
		}
	}
	p.depth = maxDepth
	// Initiation interval: the fabric's simple FUs are unpipelined for
	// long-latency operations, so back-to-back instances reusing a
	// divider wait out its occupancy.
	p.ii = 1
	for si := range p.computeSIs {
		op := prog.At(si).Op
		if c := op.ClassOf(); c == isa.ClassIntDiv || c == isa.ClassFpDiv {
			if l := int64(op.Latency()); l > p.ii {
				p.ii = l
			}
		}
	}
	for si := range p.inductions {
		p.inductionOrder = append(p.inductionOrder, si)
	}
	sort.Ints(p.inductionOrder)
	for si := range p.latchSIs {
		p.latchOrder = append(p.latchOrder, si)
	}
	sort.Ints(p.latchOrder)
	return p
}

func r0(r isa.Reg) isa.Reg { return r }

// TransformRegion implements tdg.BSA: per (possibly vectorized) loop
// instance, the core executes the access slice, sends inputs through the
// vector interface, the CGRA computes the subgraph pipelined across
// instances, and outputs return to core registers (paper §3.2, with the
// two extra pipelining edges — instance pipelining and in-order
// completion — modeled via the instance chain).
func (m *Model) TransformRegion(ctx *tdg.Ctx, r *tdg.Region, start, end int) dg.NodeID {
	p := r.Config.(*loopPlan)
	g := ctx.G
	gpp := ctx.GPP

	if !ctx.ConfigResident {
		cfgNode := g.NewNode(dg.KindAccel, int32(start))
		g.AddEdge(gpp.LastCommit(), cfgNode, ConfigLatency, dg.EdgeAccelConfig)
		gpp.Barrier(cfgNode, dg.EdgeAccelConfig)
		ctx.Counts.Add(energy.EvCGRAConfig, 1)
	}

	iters := bsautil.SplitIterations(ctx.TDG, r.LoopID, start, end)
	groupSize := p.lanes
	scratch := scratchPool.Get().(*instScratch)
	defer scratchPool.Put(scratch)
	var instances, scalarIters int64
	var prevStart dg.NodeID = dg.None
	for gi := 0; gi < len(iters); gi += groupSize {
		hi := gi + groupSize
		if hi > len(iters) {
			hi = len(iters)
		}
		group := iters[gi:hi]
		if len(group) < groupSize {
			// Remainder below the vector length: scalar on the core.
			scalarIters += int64(len(group))
			for _, it := range group {
				m.scalar(ctx, it.Start, it.End)
			}
			continue
		}
		instances++
		prevStart = m.instance(ctx, p, group, prevStart, scratch)
	}
	if ctx.Span.Active() {
		ctx.Span.ArgInt("iterations", int64(len(iters))).
			ArgInt("instances", instances).
			ArgInt("scalar_iters", scalarIters).
			ArgInt("lanes", int64(groupSize))
	}
	return dg.None // completion flows through core receives
}

func (m *Model) scalar(ctx *tdg.Ctx, start, end int) {
	uops := ctx.TDG.UOps()
	for i := start; i < end; i++ {
		ctx.GPP.Exec(uops[i], int32(i))
	}
}

// scratchPool recycles instScratch records across regions (TransformRegion
// runs concurrently from independent evaluation workers).
var scratchPool = sync.Pool{New: func() any {
	return &instScratch{}
}}

// instScratch recycles per-instance aggregation state across the
// invocations of one region: the SI-indexed lookup slice, its memInfo
// records and the sorted-key slice are reused instead of reallocated per
// instance. byS entries are non-nil only while one instance call runs —
// every call clears the entries it touched before returning, so the
// slice comes back empty regardless of which TDG the pooled scratch
// served last.
type instScratch struct {
	byS   []*memInfo
	arena []memInfo
	used  int
	order []int
}

func (s *instScratch) get() *memInfo {
	if s.used == len(s.arena) {
		// Records already in the map keep pointing into the old chunk; a
		// fresh chunk serves subsequent records.
		n := len(s.arena) * 2
		if n < 32 {
			n = 32
		}
		s.arena = make([]memInfo, n)
		s.used = 0
	}
	mi := &s.arena[s.used]
	s.used++
	return mi
}

// instance models one CGRA invocation covering a group of iterations.
func (m *Model) instance(ctx *tdg.Ctx, p *loopPlan, group []bsautil.Iteration, prev dg.NodeID, scratch *instScratch) dg.NodeID {
	g := ctx.G
	gpp := ctx.GPP
	tr := ctx.TDG.Trace
	lanes := len(group)

	// Pass 1: aggregate per-SI memory behavior across the group, and
	// count offloaded dynamic ops for energy.
	if len(scratch.byS) < len(tr.Prog.Insts) {
		scratch.byS = make([]*memInfo, len(tr.Prog.Insts))
	}
	mems := scratch.byS
	bodyOrder := scratch.order[:0]
	var offloadedOps int64
	firstDyn := int32(group[0].Start)
	for _, it := range group {
		for i := it.Start; i < it.End; i++ {
			d := &tr.Insts[i]
			si := int(d.SI)
			in := &tr.Prog.Insts[si]
			if p.computeSet[si] {
				offloadedOps++
				continue
			}
			if in.Op.IsMem() {
				mi := mems[si]
				if mi == nil {
					mi = scratch.get()
					*mi = memInfo{addr: d.Addr, firstDyn: int32(i),
						isStore: in.Op.IsStore(), valueReg: in.Src2,
						baseReg: in.Src1, dstReg: in.Dst, op: in.Op}
					mems[si] = mi
					bodyOrder = append(bodyOrder, si)
				}
				mi.count++
				if d.MemLat > mi.maxLat {
					mi.maxLat = d.MemLat
					mi.level = d.Level
				}
			}
		}
	}

	// Pass 2: loads + induction updates on the core.
	sort.Ints(bodyOrder)
	scratch.order = bodyOrder
	for _, si := range bodyOrder {
		mi := mems[si]
		if mi.isStore {
			continue
		}
		m.emitMem(ctx, p, si, mi.op, mi.dstReg, mi.baseReg, mi.valueReg, mi.maxLat, mi.level, mi.addr, mi.firstDyn, lanes)
	}
	for _, si := range p.inductionOrder {
		in := tr.Prog.At(si)
		gpp.Exec(cores.UOp{Op: in.Op, Dst: in.Dst, Src1: in.Src1, Src2: in.Src2}, firstDyn)
	}

	// Pass 3: sends core → CGRA.
	instance := g.NewNode(dg.KindAccel, firstDyn)
	for _, reg := range p.inputs {
		info := gpp.Exec(cores.UOp{Op: sendOpFor(reg), Src1: reg, Dst: isa.NoReg}, firstDyn)
		g.AddEdge(info.Complete, instance, 1, dg.EdgeAccelComm)
		ctx.Counts.Add(energy.EvCGRAInput, 1)
	}
	// Pipelining: an instance may *start* II cycles after the previous
	// one started; it need not wait for completion. II exceeds 1 only
	// when the subgraph holds an unpipelined long-latency unit.
	g.AddEdge(prev, instance, p.ii, dg.EdgeAccelPipe)

	done := g.NewNode(dg.KindAccel, firstDyn)
	g.AddEdge(instance, done, p.depth, dg.EdgeAccelCompute)
	ctx.Counts.Add(energy.EvCGRAOp, offloadedOps)
	ctx.Counts.Add(energy.EvCGRARoute, offloadedOps*int64(m.RouteLatency+1))

	// Pass 4: receives CGRA → core.
	for _, reg := range p.outputs {
		info := gpp.Exec(cores.UOp{Op: sendOpFor(reg), Dst: reg, Src1: isa.NoReg, Elide: true}, firstDyn)
		join := g.NewNode(dg.KindAccel, firstDyn)
		g.AddEdge(info.Complete, join, 0, dg.EdgeAccelComm)
		g.AddEdge(done, join, 1, dg.EdgeAccelComm)
		gpp.SetRegDef(reg, join)
		ctx.Counts.Add(energy.EvCGRAOutput, 1)
	}

	// Pass 5: stores and the group's loop-back branch on the core.
	for _, si := range bodyOrder {
		mi := mems[si]
		if !mi.isStore {
			continue
		}
		m.emitMem(ctx, p, si, mi.op, mi.dstReg, mi.baseReg, mi.valueReg, mi.maxLat, mi.level, mi.addr, mi.firstDyn, lanes)
	}
	for _, si := range p.latchOrder {
		in := tr.Prog.At(si)
		lastIdx := group[len(group)-1].End - 1
		mispred := lastIdx >= 0 && tr.Insts[lastIdx].Mispredicted()
		gpp.Exec(cores.UOp{Op: in.Op, Src1: in.Src1, Src2: in.Src2,
			Dst: isa.NoReg, Mispred: mispred, Taken: true}, firstDyn)
	}
	// Restore the instance-call invariant: byS holds no stale entries.
	for _, si := range bodyOrder {
		mems[si] = nil
	}
	return instance // pipelining chains on instance *start*
}

// emitMem issues one access-slice memory reference, vectorized when the
// group is a vector instance (contiguous → one wide op; strided →
// per-lane scalar ops + shuffle through the flexible interface).
func (m *Model) emitMem(ctx *tdg.Ctx, p *loopPlan, si int, op isa.Op,
	dst, base, val isa.Reg, lat uint16, lvl trace.MemLevel, addr uint64, dynIdx int32, lanes int) {
	gpp := ctx.GPP
	u := cores.UOp{Op: op, Dst: dst, Src1: base, Src2: val,
		Addr: addr, MemLat: lat, Level: lvl}
	if lanes == 1 {
		gpp.Exec(u, dynIdx)
		return
	}
	switch p.memKinds[si] {
	case 0: // contiguous → single vector access
		if op.IsLoad() {
			u.Op = isa.VLd
		} else {
			u.Op = isa.VSt
		}
		gpp.Exec(u, dynIdx)
	case 1: // loop-invariant → scalar access (interface broadcasts)
		gpp.Exec(u, dynIdx)
	default: // strided/irregular → per-lane scalars + interface shuffle
		for i := 0; i < lanes; i++ {
			gpp.Exec(u, dynIdx)
		}
		gpp.Exec(cores.UOp{Op: isa.VPack, Dst: dst, Src1: dst}, dynIdx)
	}
}

func sendOpFor(r isa.Reg) isa.Op {
	if r.IsFp() {
		return isa.FMov
	}
	return isa.Mov
}

// memInfo aggregates one access-slice memory instruction over the lanes
// of a vector instance.
type memInfo struct {
	maxLat   uint16
	level    trace.MemLevel
	addr     uint64
	firstDyn int32
	count    int
	isStore  bool
	valueReg isa.Reg
	baseReg  isa.Reg
	dstReg   isa.Reg
	op       isa.Op
}
