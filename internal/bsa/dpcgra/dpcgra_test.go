package dpcgra

import (
	"testing"

	"exocore/internal/cores"
	"exocore/internal/testutil"
)

func TestAnalyzerRequiresSeparability(t *testing.T) {
	// nbody: ~19 compute ops per 3 loads — separable, must plan.
	td := testutil.TDGFor(t, "nbody", 25000)
	plan := New().Analyze(td)
	if len(plan.Regions) == 0 {
		t.Fatal("nbody not planned")
	}
	for _, r := range plan.Regions {
		p := r.Config.(*loopPlan)
		if p.computeN == 0 {
			t.Error("empty compute slice")
		}
		if p.computeN > New().FUs {
			t.Error("compute slice exceeds fabric")
		}
	}

	// merge: almost no offloadable compute — must not claim the hot loop.
	tdM := testutil.TDGFor(t, "merge", 25000)
	planM := New().Analyze(tdM)
	hot := tdM.Prof.SortedLoopsByShare()[0]
	if planM.Region(hot) != nil {
		t.Error("merge's comm-dominated loop planned for the CGRA")
	}
}

func TestVectorizationBoundedByFabric(t *testing.T) {
	td := testutil.TDGFor(t, "nbody", 25000)
	small := &Model{FUs: 20, RouteLatency: 1} // ~17 compute ops: no cloning
	plan := small.Analyze(td)
	for _, r := range plan.Regions {
		if p := r.Config.(*loopPlan); p.lanes != 1 {
			t.Errorf("cloned ×%d on a 20-FU fabric", p.lanes)
		}
	}
	big := New() // 64 FUs: partial cloning (×3 for ~17 ops)
	plan = big.Analyze(td)
	sawClone := false
	for _, r := range plan.Regions {
		p := r.Config.(*loopPlan)
		if p.lanes > 1 {
			sawClone = true
			if p.lanes*p.computeN > big.FUs {
				t.Errorf("clones ×%d × %d ops exceed %d FUs", p.lanes, p.computeN, big.FUs)
			}
		}
	}
	if !sawClone {
		t.Error("64-FU fabric should partially clone nbody")
	}
}

func TestComputeHeavyLoopsWin(t *testing.T) {
	td := testutil.TDGFor(t, "nbody", 25000)
	base, accel, baseE, accelE := testutil.SoloRun(t, td, cores.OOO2, New())
	sp := float64(base) / float64(accel)
	t.Logf("nbody: %.2fx perf, %.2fx energy", sp, baseE/accelE)
	if sp < 2 {
		t.Errorf("DP-CGRA speedup %.2f < 2 on its best-case behavior", sp)
	}
	if accelE >= baseE {
		t.Error("no energy saving")
	}
}

func TestRouteLatencyMatters(t *testing.T) {
	td := testutil.TDGFor(t, "nbody", 25000)
	fast := &Model{FUs: 64, RouteLatency: 0}
	slow := &Model{FUs: 64, RouteLatency: 6}
	_, aFast, _, _ := testutil.SoloRun(t, td, cores.OOO2, fast)
	_, aSlow, _, _ := testutil.SoloRun(t, td, cores.OOO2, slow)
	if aSlow < aFast {
		t.Errorf("higher routing latency got faster: %d vs %d", aSlow, aFast)
	}
}

func TestConfigCacheCharged(t *testing.T) {
	// The first region entry must charge a configuration load; repeated
	// entries of the same loop must not (config cache). We check via the
	// planned multi-loop benchmark cjpeg, which alternates regions.
	td := testutil.TDGFor(t, "nbody", 25000)
	m := New()
	base, accel, _, _ := testutil.SoloRun(t, td, cores.OOO2, m)
	if accel >= base {
		t.Skip("no acceleration to inspect")
	}
}

func TestModelMetadata(t *testing.T) {
	m := New()
	if m.Name() != "DP-CGRA" || m.OffloadsCore() || m.FUs != 64 {
		t.Error("metadata wrong")
	}
}
