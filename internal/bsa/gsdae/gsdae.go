// Package gsdae models a decoupled gather-scatter / prefetch-ahead
// engine (GS-DAE) for irregular index-chasing regions: the A[B[i]]
// access patterns of graph analytics (CSR traversals, edge-centric
// gathers) that defeat the paper's four BSAs. The analyzer finds loops
// whose static body contains dependent-load pairs — a load whose address
// derives from another load's value — and splits the body into an
// *access stream* (address computation, index loads, gathers, scatters)
// and a *compute stream* (everything else, including control).
//
// The transform runs the access stream on a decoupled address-generator
// array: access-slice ops fire dataflow-style as their inputs arrive,
// not serialized behind the compute stream's control, so index loads for
// future iterations issue while earlier gathers are still in flight —
// the memory-level parallelism a speculative core can only reach within
// its issue window. Run-ahead is bounded by a prefetch queue of
// QueueDepth in-flight loads (the decoupling FIFO) and the generator's
// issue ports. The compute stream executes non-speculatively, each op
// waiting for the branch that admitted its block — cheap control, but
// serialized: on regular dense regions the engine has no gathers to hide
// and loses to SIMD/DP-CGRA, which is the behavior-specialization
// tradeoff that earns it a seat in the registry.
package gsdae

import (
	"exocore/internal/bsa/bsautil"
	"exocore/internal/dg"
	"exocore/internal/energy"
	"exocore/internal/isa"
	"exocore/internal/tdg"
	"exocore/internal/trace"
)

// Model is the GS-DAE BSA.
type Model struct {
	// MaxStaticInsts is the configuration budget (descriptor slots).
	MaxStaticInsts int
	// QueueDepth bounds in-flight decoupled loads (the prefetch FIFO).
	QueueDepth int
}

// New returns the GS-DAE model with default structure sizes.
func New() *Model { return &Model{MaxStaticInsts: 192, QueueDepth: 16} }

// Name implements tdg.BSA.
func (m *Model) Name() string { return "GS-DAE" }

// AreaMM2 implements tdg.BSA: an address-generator array, the prefetch
// FIFO and a small non-speculative compute array — between C-Cores and
// NS-DF in size.
func (m *Model) AreaMM2() float64 { return 0.9 }

// OffloadsCore implements tdg.BSA: the host pipeline is power-gated
// while a region runs.
func (m *Model) OffloadsCore() bool { return true }

// ConfigLatency is the cycles to load the stream descriptors and the
// compute configuration on a config-cache miss.
const ConfigLatency = 24

// Stream structure sizes.
const (
	accessIssueBW  = 2 // address-generator ops begun per cycle
	accessMemPorts = 2 // decoupled cache ports
	computeIssueBW = 4
	computeMemPort = 1 // residual compute-side memory ops
)

// regionPlan is the analyzer's per-loop classification, carried in
// Region.Config: which static instructions belong to the access stream,
// and which loads are gathers (dependent loads).
type regionPlan struct {
	access  map[int32]bool
	gather  map[int32]bool
	nInsts  int
	nMem    int
	nGather int
}

// Analyze implements tdg.BSA: plan every profiled loop that fits the
// descriptor budget and contains at least one dependent-load pair.
// Loops without index-chasing are not planned at all — GS-DAE abstains
// on regular regions rather than modeling a transform it cannot win.
func (m *Model) Analyze(t *tdg.TDG) *tdg.Plan {
	plan := &tdg.Plan{BSA: m.Name(), Regions: make(map[int]*tdg.Region)}
	for l := range t.Nest.Loops {
		if t.Prof.Loops[l].Iterations == 0 {
			continue
		}
		if t.Nest.InstsOf(l) > m.MaxStaticInsts {
			continue
		}
		rp := m.classify(t, l)
		if rp.nGather == 0 {
			continue
		}
		plan.Regions[l] = &tdg.Region{
			LoopID:     l,
			EstSpeedup: m.estimate(t, l, rp),
			Config:     rp,
		}
	}
	return plan
}

// loopInsts returns the static instruction indices of a loop's blocks in
// ascending order.
func loopInsts(t *tdg.TDG, l int) []int {
	var sis []int
	for _, b := range t.Nest.Loops[l].Blocks {
		blk := &t.CFG.Blocks[b]
		for si := blk.Start; si < blk.End; si++ {
			sis = append(sis, si)
		}
	}
	// Loop blocks are discovered in CFG order but keep the slice sorted
	// so classification passes are deterministic.
	for i := 1; i < len(sis); i++ {
		for j := i; j > 0 && sis[j] < sis[j-1]; j-- {
			sis[j], sis[j-1] = sis[j-1], sis[j]
		}
	}
	return sis
}

// classify splits a loop body into access and compute streams. Two
// forward passes mark load-derived registers (the second catches
// loop-carried derivations) and flag gathers: loads whose address
// register holds a load-derived value. Two backward passes then collect
// the address slice — every op whose result feeds a memory op's address
// — which joins the loads and scatters on the access stream.
func (m *Model) classify(t *tdg.TDG, l int) *regionPlan {
	sis := loopInsts(t, l)
	rp := &regionPlan{
		access: make(map[int32]bool),
		gather: make(map[int32]bool),
		nInsts: len(sis),
	}

	var derived [isa.NumRegs]bool
	for pass := 0; pass < 2; pass++ {
		for _, si := range sis {
			in := t.CFG.Prog.At(si)
			switch {
			case in.Op.IsLoad():
				if in.Src1.Valid() && in.Src1 != isa.RZ && derived[in.Src1] {
					rp.gather[int32(si)] = true
				}
				if in.HasDst() {
					derived[in.Dst] = true
				}
			case in.Op.IsStore() || in.Op.IsCtrl():
				// No register result.
			case in.HasDst():
				d := false
				if in.Src1.Valid() && in.Src1 != isa.RZ && derived[in.Src1] {
					d = true
				}
				if in.Src2.Valid() && in.Src2 != isa.RZ && derived[in.Src2] {
					d = true
				}
				derived[in.Dst] = d
			}
		}
	}

	// Address slice: registers consumed as memory-op address bases.
	var addr [isa.NumRegs]bool
	for _, si := range sis {
		in := t.CFG.Prog.At(si)
		if in.Op.IsMem() && in.Src1.Valid() && in.Src1 != isa.RZ {
			addr[in.Src1] = true
		}
	}
	for pass := 0; pass < 2; pass++ {
		for i := len(sis) - 1; i >= 0; i-- {
			si := sis[i]
			in := t.CFG.Prog.At(si)
			if in.Op.IsMem() {
				rp.access[int32(si)] = true
				continue
			}
			if in.HasDst() && addr[in.Dst] && !in.Op.IsCtrl() {
				rp.access[int32(si)] = true
				if in.Src1.Valid() && in.Src1 != isa.RZ {
					addr[in.Src1] = true
				}
				if in.Src2.Valid() && in.Src2 != isa.RZ {
					addr[in.Src2] = true
				}
			}
		}
	}

	for _, si := range sis {
		if t.CFG.Prog.At(si).Op.IsMem() {
			rp.nMem++
		}
	}
	rp.nGather = len(rp.gather)
	return rp
}

// estimate is the profile-based speedup heuristic for the Amdahl-tree
// scheduler: decoupling pays in proportion to how much of the loop is
// gather-style memory work, and loses it back when control is dense but
// gathers are sparse (the serialized compute stream dominates).
func (m *Model) estimate(t *tdg.TDG, l int, rp *regionPlan) float64 {
	if rp.nInsts == 0 {
		return 1
	}
	var branches int
	for _, b := range t.Nest.Loops[l].Blocks {
		blk := &t.CFG.Blocks[b]
		for si := blk.Start; si < blk.End; si++ {
			if t.CFG.Prog.At(si).Op.IsCtrl() {
				branches++
			}
		}
	}
	memFrac := float64(rp.nMem) / float64(rp.nInsts)
	gatherFrac := float64(rp.nGather) / float64(rp.nMem)
	ctrlFrac := float64(branches) / float64(rp.nInsts)
	est := 1.0 + 4.5*memFrac*gatherFrac - 1.8*ctrlFrac*(1-gatherFrac)
	if est < 0.5 {
		est = 0.5
	}
	if est > 2.6 {
		est = 2.6
	}
	return est
}

// TransformRegion implements tdg.BSA: the access stream issues in order
// on its own ports, bounded by the prefetch queue; the compute stream
// executes non-speculatively, consuming gathered values through the
// decoupling FIFO. Both streams share one register scoreboard, so a
// compute-produced address honestly blocks run-ahead.
func (m *Model) TransformRegion(ctx *tdg.Ctx, r *tdg.Region, start, end int) dg.NodeID {
	g := ctx.G
	gpp := ctx.GPP
	rp := r.Config.(*regionPlan)
	ld := ctx.TDG.Dataflow(r.LoopID)
	if ctx.Span.Active() {
		ctx.Span.ArgInt("gathers", int64(rp.nGather)).
			ArgInt("access_insts", int64(len(rp.access))).
			ArgInt("insts", int64(end-start))
	}

	// Region entry: wait for in-flight core work, transfer live-ins, and
	// load the stream descriptors on a configuration miss.
	entry := g.NewNode(dg.KindAccel, int32(start))
	inLat := bsautil.TransferLatency(len(ld.LiveIns))
	g.AddEdge(gpp.LastCommit(), entry, inLat, dg.EdgeAccelComm)
	for _, reg := range ld.LiveIns {
		g.AddEdge(gpp.RegDef(reg), entry, inLat, dg.EdgeAccelComm)
	}
	if !ctx.ConfigResident {
		cfgNode := g.NewNode(dg.KindAccel, int32(start))
		g.AddEdge(entry, cfgNode, ConfigLatency, dg.EdgeAccelConfig)
		entry = cfgNode
		ctx.Counts.Add(energy.EvCGRAConfig, 1)
	}

	st := newStreams(m, g, entry)
	defer st.release(g)
	tr := ctx.TDG.Trace
	for i := start; i < end; i++ {
		d := &tr.Insts[i]
		st.exec(ctx.Counts, &tr.Prog.Insts[d.SI], d, int32(i), rp.access[d.SI])
	}

	// Region exit: live-outs and store state hand back to the core.
	exit := st.exitNode(bsautil.TransferLatency(len(ld.LiveOuts)))
	for reg := range st.written {
		gpp.SetRegDef(reg, exit)
	}
	for addr, n := range st.stores {
		gpp.NoteStore(addr, n)
	}
	gpp.Barrier(exit, dg.EdgeAccelComm)
	return exit
}

// streams is the two-stream executor state for one region occurrence.
type streams struct {
	model *Model
	g     *dg.Graph

	regNode  [isa.NumRegs]dg.NodeID
	ctrlNode dg.NodeID // compute-stream control chain
	lastAcc  dg.NodeID // last access-stream completion (exit join)
	lastNode dg.NodeID

	queue []dg.NodeID // decoupling FIFO of in-flight load completions
	qi    int

	accIssueRT *dg.ResourceTable
	accMemRT   *dg.ResourceTable
	cmpIssueRT *dg.ResourceTable
	cmpMemRT   *dg.ResourceTable

	ops     int64
	written map[isa.Reg]bool
	stores  map[uint64]dg.NodeID
}

func newStreams(m *Model, g *dg.Graph, entry dg.NodeID) *streams {
	s := &streams{
		model:      m,
		g:          g,
		ctrlNode:   entry,
		lastAcc:    dg.None,
		lastNode:   entry,
		queue:      make([]dg.NodeID, m.QueueDepth),
		accIssueRT: g.BorrowRT(accessIssueBW),
		accMemRT:   g.BorrowRT(accessMemPorts),
		cmpIssueRT: g.BorrowRT(computeIssueBW),
		cmpMemRT:   g.BorrowRT(computeMemPort),
		written:    make(map[isa.Reg]bool),
		stores:     make(map[uint64]dg.NodeID),
	}
	for i := range s.regNode {
		s.regNode[i] = entry
	}
	for i := range s.queue {
		s.queue[i] = dg.None
	}
	return s
}

func (s *streams) release(g *dg.Graph) {
	g.ReturnRT(s.accIssueRT, s.accMemRT, s.cmpIssueRT, s.cmpMemRT)
}

// exec models one dynamic instruction on its stream.
func (s *streams) exec(counts *energy.Counts, in *isa.Inst, dyn *trace.DynInst, dynIdx int32, access bool) dg.NodeID {
	g := s.g
	e := g.NewNode(dg.KindAccel, dynIdx)

	// Data dependences through the shared scoreboard.
	if in.Src1.Valid() && in.Src1 != isa.RZ {
		g.AddEdge(s.regNode[in.Src1], e, 0, dg.EdgeData)
	}
	if in.Src2.Valid() && in.Src2 != isa.RZ {
		g.AddEdge(s.regNode[in.Src2], e, 0, dg.EdgeData)
	}
	if in.Op == isa.FMA && in.Dst.Valid() {
		g.AddEdge(s.regNode[in.Dst], e, 0, dg.EdgeData)
	}

	if access {
		// Decoupled address generator: dataflow issue, run-ahead bounded
		// by the prefetch FIFO — a load waits for the load QueueDepth
		// positions earlier to complete before its slot frees.
		if in.Op.IsLoad() {
			if slot := s.queue[s.qi%len(s.queue)]; slot != dg.None {
				g.AddEdge(slot, e, 0, dg.EdgeAccelPipe)
			}
		}
		g.PushTime(e, s.accIssueRT.Book(g.Time(e)), dg.EdgeFU)
		if in.Op.IsMem() {
			g.PushTime(e, s.accMemRT.Book(g.Time(e)), dg.EdgeCachePort)
		}
	} else {
		// Non-speculative compute: wait for the admitting branch.
		g.AddEdge(s.ctrlNode, e, 1, dg.EdgeAccelCompute)
		g.PushTime(e, s.cmpIssueRT.Book(g.Time(e)), dg.EdgeFU)
		if in.Op.IsMem() {
			g.PushTime(e, s.cmpMemRT.Book(g.Time(e)), dg.EdgeCachePort)
		}
	}

	// Store-to-load forwarding through the decoupling buffer.
	if in.Op.IsLoad() {
		if dep, ok := s.stores[dyn.Addr&^7]; ok {
			g.AddEdge(dep, e, 1, dg.EdgeMemDep)
		}
	}

	// Completion.
	p := g.NewNode(dg.KindAccel, dynIdx)
	lat := int64(in.Op.Latency())
	if in.Op.IsMem() {
		lat = int64(dyn.MemLat)
		if in.Op.IsStore() {
			lat = 1
		}
	}
	if lat < 1 {
		lat = 1
	}
	g.AddEdge(e, p, lat, dg.EdgeExec)

	if access {
		s.lastAcc = p
		if in.Op.IsLoad() {
			s.queue[s.qi%len(s.queue)] = p
			s.qi++
		}
	}
	if in.HasDst() {
		s.regNode[in.Dst] = p
		s.written[in.Dst] = true
		counts.Add(energy.EvDFOpStorage, 1)
	}
	if in.Op.IsStore() {
		s.stores[dyn.Addr&^7] = p
	}
	if in.Op.IsCtrl() && !access {
		s.ctrlNode = p
	}

	// Energy: descriptor-amortized dispatch + per-op firing + memory.
	s.ops++
	if s.ops%4 == 0 {
		counts.Add(energy.EvDFDispatch, 1)
	}
	counts.Add(energy.EvCFUOp, 1)
	if in.Op.IsMem() {
		counts.Add(energy.EvLSQ, 1)
		counts.Add(energy.EvL1Access, 1)
		switch dyn.Level {
		case trace.LevelL2:
			counts.Add(energy.EvL2Access, 1)
		case trace.LevelMem:
			counts.Add(energy.EvL2Access, 1)
			counts.Add(energy.EvMemAccess, 1)
		}
	}

	s.lastNode = p
	return p
}

// exitNode joins both streams: all written registers, the last control
// decision and the last access-stream op are available.
func (s *streams) exitNode(extraLat int64) dg.NodeID {
	g := s.g
	exit := g.NewNode(dg.KindAccel, -1)
	g.AddEdge(s.ctrlNode, exit, extraLat, dg.EdgeAccelComm)
	g.AddEdge(s.lastNode, exit, extraLat, dg.EdgeAccelComm)
	if s.lastAcc != dg.None {
		g.AddEdge(s.lastAcc, exit, extraLat, dg.EdgeAccelComm)
	}
	for r := range s.written {
		g.AddEdge(s.regNode[r], exit, extraLat, dg.EdgeAccelComm)
	}
	return exit
}
