// Package nsdf models a non-speculative dataflow offload engine in the
// style of SEED (paper §3.1/3.2 "Non-speculative Dataflow"): distributed
// dataflow units over a writeback bus, compound functional units, its own
// cache interface, targeting fully-inlinable (nested) loops that fit a
// 256-compound-instruction budget. Control is converted to dataflow: every
// operation waits for the branch that admitted its basic block — cheap
// issue width and a large effective window, at the cost of serialized
// control (Table 2: effective when control is off the critical path).
// While a region runs, the host core's frontend is power-gated.
package nsdf

import (
	"exocore/internal/bsa/bsautil"
	"exocore/internal/dg"
	"exocore/internal/energy"
	"exocore/internal/tdg"
)

// Model is the NS-DF BSA.
type Model struct {
	// MaxStaticInsts is the configuration budget (compound instructions).
	MaxStaticInsts int
}

// New returns the NS-DF model with the paper's 256-instruction budget.
func New() *Model { return &Model{MaxStaticInsts: 256} }

// Name implements tdg.BSA.
func (m *Model) Name() string { return "NS-DF" }

// AreaMM2 implements tdg.BSA (SEED-class dataflow array + operand storage).
func (m *Model) AreaMM2() float64 { return 1.7 }

// OffloadsCore implements tdg.BSA: the core pipeline idles during regions.
func (m *Model) OffloadsCore() bool { return true }

var dfConfig = bsautil.DataflowConfig{
	IssueBandwidth:   8,
	BusBandwidth:     2,
	BusEvery:         2, // ~half the values stay inside their CFU
	MemPorts:         2,
	SerializeControl: true,
	OpsPerCompound:   3,
	DispatchEvent:    energy.EvDFDispatch,
	OpEvent:          energy.EvCFUOp,
	StorageEvent:     energy.EvDFOpStorage,
	MemEvent:         energy.EvLSQ,
}

// ConfigLatency is the cycles to load a dataflow configuration on a
// config-cache miss.
const ConfigLatency = 32

// Analyze implements tdg.BSA: every loop (at any nesting depth) whose
// static body fits the hardware budget is eligible; the scheduler decides
// the granularity (paper §3.3: "target an entire loop nest, or just the
// inner loop?").
func (m *Model) Analyze(t *tdg.TDG) *tdg.Plan {
	plan := &tdg.Plan{BSA: m.Name(), Regions: make(map[int]*tdg.Region)}
	for l := range t.Nest.Loops {
		if t.Prof.Loops[l].Iterations == 0 {
			continue
		}
		size := t.Nest.InstsOf(l)
		if size > m.MaxStaticInsts {
			continue
		}
		plan.Regions[l] = &tdg.Region{LoopID: l, EstSpeedup: m.estimate(t, l)}
	}
	return plan
}

// estimate is the profile-based speedup heuristic the Amdahl-tree
// scheduler consumes: dataflow wins when control is sparse (its
// serialization stays off the critical path) and parallelism is high;
// dense control drags it below the core.
func (m *Model) estimate(t *tdg.TDG, l int) float64 {
	loop := &t.Nest.Loops[l]
	var insts, branches, mem int
	for _, b := range loop.Blocks {
		blk := &t.CFG.Blocks[b]
		for si := blk.Start; si < blk.End; si++ {
			insts++
			op := t.CFG.Prog.At(si).Op
			if op.IsCtrl() {
				branches++
			}
			if op.IsMem() {
				mem++
			}
		}
	}
	if insts == 0 {
		return 1
	}
	ctrlFrac := float64(branches) / float64(insts)
	est := 2.1 - 3.5*ctrlFrac + 0.5*float64(mem)/float64(insts)
	if est < 0.6 {
		est = 0.6
	}
	if est > 2.4 {
		est = 2.4
	}
	return est
}

// TransformRegion implements tdg.BSA: control dependences become dataflow
// edges (each op waits for the branch admitting its block), compound-FU
// and writeback-bus bandwidth is enforced, and live values transfer at
// region boundaries (paper §3.2 NS-DF transform).
func (m *Model) TransformRegion(ctx *tdg.Ctx, r *tdg.Region, start, end int) dg.NodeID {
	g := ctx.G
	gpp := ctx.GPP
	ld := ctx.TDG.Dataflow(r.LoopID)
	if ctx.Span.Active() {
		ctx.Span.ArgInt("live_ins", int64(len(ld.LiveIns))).
			ArgInt("live_outs", int64(len(ld.LiveOuts))).
			ArgInt("insts", int64(end-start))
	}

	// Region entry: wait for in-flight core work, transfer live-ins, and
	// load the configuration on a miss.
	entry := g.NewNode(dg.KindAccel, int32(start))
	inLat := bsautil.TransferLatency(len(ld.LiveIns))
	g.AddEdge(gpp.LastCommit(), entry, inLat, dg.EdgeAccelComm)
	for _, reg := range ld.LiveIns {
		g.AddEdge(gpp.RegDef(reg), entry, inLat, dg.EdgeAccelComm)
	}
	if !ctx.ConfigResident {
		cfgNode := g.NewNode(dg.KindAccel, int32(start))
		g.AddEdge(entry, cfgNode, ConfigLatency, dg.EdgeAccelConfig)
		entry = cfgNode
		ctx.Counts.Add(energy.EvCGRAConfig, 1)
	}

	df := bsautil.NewDataflow(dfConfig, g, ctx.Counts, entry)
	defer df.Release()
	tr := ctx.TDG.Trace
	for i := start; i < end; i++ {
		d := &tr.Insts[i]
		df.Exec(&tr.Prog.Insts[d.SI], d, int32(i))
	}

	// Region exit: live-outs and store state hand back to the core.
	exit := df.ExitNode(bsautil.TransferLatency(len(ld.LiveOuts)))
	for _, reg := range df.WrittenRegs() {
		gpp.SetRegDef(reg, exit)
	}
	df.ForEachStore(gpp.NoteStore)
	gpp.Barrier(exit, dg.EdgeAccelComm)
	return exit
}
