package nsdf

import (
	"testing"

	"exocore/internal/cores"
	"exocore/internal/testutil"
)

func TestAnalyzerEligibility(t *testing.T) {
	td := testutil.TDGFor(t, "mm", 25000)
	plan := New().Analyze(td)
	// mm's whole nest fits 256 static instructions: every loop level is
	// eligible (the scheduler picks the granularity, §3.3).
	if len(plan.Regions) != len(td.Nest.Loops) {
		t.Errorf("regions = %d, want all %d loops", len(plan.Regions), len(td.Nest.Loops))
	}
}

func TestAnalyzerRespectsBudget(t *testing.T) {
	td := testutil.TDGFor(t, "mm", 25000)
	m := New()
	m.MaxStaticInsts = 2 // nothing fits
	if plan := m.Analyze(td); len(plan.Regions) != 0 {
		t.Errorf("regions = %d with a 2-instruction budget", len(plan.Regions))
	}
}

func TestEstimatePenalizesControl(t *testing.T) {
	// Dense mm should carry a higher estimate than branchy gobmk.
	tdMM := testutil.TDGFor(t, "mm", 20000)
	tdGo := testutil.TDGFor(t, "gobmk", 20000)
	m := New()
	pm := m.Analyze(tdMM)
	pg := m.Analyze(tdGo)
	hotMM := tdMM.Prof.SortedLoopsByShare()[0]
	hotGo := tdGo.Prof.SortedLoopsByShare()[0]
	rm, rg := pm.Region(hotMM), pg.Region(hotGo)
	if rm == nil || rg == nil {
		t.Skip("plans missing for hottest loops")
	}
	if rm.EstSpeedup <= rg.EstSpeedup {
		t.Errorf("control-heavy gobmk estimate %.2f >= dense mm %.2f",
			rg.EstSpeedup, rm.EstSpeedup)
	}
}

func TestOffloadImprovesEnergyAcrossBehaviors(t *testing.T) {
	// NS-DF's defining property (Table 2): large energy wins broadly, with
	// performance between "wins" (non-DP, high-ILP) and "modest losses"
	// (control-critical).
	for _, bench := range []string{"mm", "spmv", "needle", "sjeng"} {
		td := testutil.TDGFor(t, bench, 25000)
		base, accel, baseE, accelE := testutil.SoloRun(t, td, cores.OOO2, New())
		sp := float64(base) / float64(accel)
		en := baseE / accelE
		t.Logf("%s: %.2fx perf, %.2fx energy", bench, sp, en)
		if en < 1.1 {
			t.Errorf("%s: NS-DF energy win %.2fx < 1.1x", bench, en)
		}
		if sp < 0.5 {
			t.Errorf("%s: NS-DF slowdown %.2fx catastrophic", bench, sp)
		}
	}
}

func TestControlCriticalCodeSlowsDown(t *testing.T) {
	// treesearch: control on the critical path — NS-DF should NOT be
	// faster than the OOO core (Table 2's drawback column).
	td := testutil.TDGFor(t, "treesearch", 25000)
	base, accel, _, _ := testutil.SoloRun(t, td, cores.OOO4, New())
	if accel < base {
		t.Errorf("NS-DF beat OOO4 on control-critical treesearch: %d vs %d", accel, base)
	}
}

func TestModelMetadata(t *testing.T) {
	m := New()
	if m.Name() != "NS-DF" || !m.OffloadsCore() || m.AreaMM2() <= 0 {
		t.Error("metadata wrong")
	}
	if m.MaxStaticInsts != 256 {
		t.Errorf("budget = %d, want the paper's 256", m.MaxStaticInsts)
	}
}
