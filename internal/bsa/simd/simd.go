// Package simd models short-vector SIMD as a transparent BSA via TDG
// transformation (paper §3.2 "SIMD (Loop Auto-vectorization) TDG"). The
// analyzer finds inner loops with vectorizable memory and register
// dependences (optimistically, from observed addresses — §2.7); the
// transform buffers VecLanes loop iterations, if-converts the body
// (branches become predicate-setting ops, merge points get masks),
// vectorizes contiguous memory accesses, and inserts pack/unpack for
// non-contiguous ones. Alignment is assumed handled by unaligned memory
// ops, and scatter/gather hardware is absent, matching the paper.
package simd

import (
	"sort"
	"sync"

	"exocore/internal/cores"
	"exocore/internal/dg"
	"exocore/internal/ir"
	"exocore/internal/isa"
	"exocore/internal/tdg"
	"exocore/internal/trace"

	"exocore/internal/bsa/bsautil"
)

type memKind uint8

const (
	memContig memKind = iota
	memScalar
	memStrided
)

type loopPlan struct {
	bodySIs    []int
	siIndex    map[int]int
	memKinds   map[int]memKind
	inductions map[int]bool
	reductions map[int]bool
	latchSIs   map[int]bool // loop-back branches kept scalar
	// SI-indexed mirrors of memKinds/inductions/latchSIs for the
	// per-dynamic-instruction tests in vectorGroup (the zero memKind is
	// memContig, matching a missing map entry).
	memKindOf    []memKind
	inductionSet []bool
	latchSet     []bool
	maskBlocks   int
	costPerIt    float64
}

// Model is the SIMD BSA.
type Model struct {
	// MaxBloat rejects loops whose if-converted body exceeds this factor
	// of the average executed path (paper: 2×).
	MaxBloat float64
	// MinAvgTrip rejects loops iterating fewer than this on average.
	MinAvgTrip float64
}

// New returns the SIMD model with the paper's thresholds. MinAvgTrip is
// slightly under the vector length so exact-trip loops (whose average
// lands just below VecLanes from the final partial occurrence) qualify.
func New() *Model { return &Model{MaxBloat: 2.0, MinAvgTrip: isa.VecLanes * 0.95} }

// Name implements tdg.BSA.
func (m *Model) Name() string { return "SIMD" }

// AreaMM2 implements tdg.BSA: a 256-bit vector datapath extension.
func (m *Model) AreaMM2() float64 { return 0.6 }

// OffloadsCore implements tdg.BSA: SIMD executes in the core pipeline.
func (m *Model) OffloadsCore() bool { return false }

// Analyze implements tdg.BSA.
func (m *Model) Analyze(t *tdg.TDG) *tdg.Plan {
	plan := &tdg.Plan{BSA: m.Name(), Regions: make(map[int]*tdg.Region)}
	for l := range t.Nest.Loops {
		if r := m.analyzeLoop(t, l); r != nil {
			plan.Regions[l] = r
		}
	}
	return plan
}

func (m *Model) analyzeLoop(t *tdg.TDG, l int) *tdg.Region {
	loop := &t.Nest.Loops[l]
	lp := &t.Prof.Loops[l]
	if !loop.Inner() || lp.Iterations == 0 || lp.AvgTrip < m.MinAvgTrip {
		return nil
	}
	if lp.CarriedMemDep {
		return nil // observed inter-iteration memory dependence
	}
	ld := t.Dataflow(l)
	if len(ld.CarriedRegDep) > 0 {
		return nil // non-induction, non-reduction recurrence
	}

	p := buildLoopPlan(t, l, ld)
	origPerIter := float64(lp.DynInsts) / float64(lp.Iterations)
	ifConverted := float64(len(p.bodySIs) + p.maskBlocks)
	if origPerIter == 0 || ifConverted > m.MaxBloat*origPerIter {
		return nil
	}
	if p.costPerIt <= 0 {
		return nil
	}
	est := origPerIter / p.costPerIt
	if est <= 1.05 {
		return nil // not profitable
	}
	return &tdg.Region{LoopID: l, EstSpeedup: est, Config: p}
}

func buildLoopPlan(t *tdg.TDG, l int, ld *ir.LoopDataflow) *loopPlan {
	loop := &t.Nest.Loops[l]
	p := &loopPlan{
		siIndex:    make(map[int]int),
		memKinds:   make(map[int]memKind),
		inductions: make(map[int]bool),
		reductions: make(map[int]bool),
		latchSIs:   make(map[int]bool),
	}
	// Body SIs in reverse-post (≈ static block) order: if-conversion
	// arranges blocks in reverse post-order (paper §3.2).
	rpo := t.CFG.ReversePostOrder()
	for _, b := range rpo {
		if !loop.Contains(b) {
			continue
		}
		blk := &t.CFG.Blocks[b]
		if len(blk.Preds) > 1 && b != loop.Header {
			p.maskBlocks++ // merge point needs masking
		}
		for si := blk.Start; si < blk.End; si++ {
			p.siIndex[si] = len(p.bodySIs)
			p.bodySIs = append(p.bodySIs, si)
		}
	}
	for si := range ld.Inductions {
		p.inductions[si] = true
	}
	for si := range ld.Reductions {
		p.reductions[si] = true
	}
	// Loop-back branch stays a scalar branch per vectorized group.
	header := loop.Header
	for _, si := range p.bodySIs {
		in := t.CFG.Prog.At(si)
		if in.Op.IsCtrl() {
			if tb := int(in.Imm); tb >= 0 && tb < len(t.CFG.BlockOf) && t.CFG.BlockOf[tb] == header {
				p.latchSIs[si] = true
			}
		}
	}
	// Memory classification from observed strides.
	for _, si := range p.bodySIs {
		in := t.CFG.Prog.At(si)
		if !in.Op.IsMem() {
			continue
		}
		info := t.Prof.Strides[si]
		switch {
		case info.Contiguous():
			p.memKinds[si] = memContig
		case info.Scalar():
			p.memKinds[si] = memScalar
		default:
			p.memKinds[si] = memStrided
		}
	}
	n := t.CFG.Prog.Len()
	p.memKindOf = make([]memKind, n)
	p.inductionSet = make([]bool, n)
	p.latchSet = make([]bool, n)
	for si, k := range p.memKinds {
		p.memKindOf[si] = k
	}
	for si := range p.inductions {
		p.inductionSet[si] = true
	}
	for si := range p.latchSIs {
		p.latchSet[si] = true
	}
	p.costPerIt = p.vectorCostPerIteration()
	return p
}

// vectorCostPerIteration estimates uops per *original* iteration after
// vectorization by VecLanes.
func (p *loopPlan) vectorCostPerIteration() float64 {
	vl := float64(isa.VecLanes)
	cost := 0.0
	for _, si := range p.bodySIs {
		kind, isMem := p.memKinds[si]
		switch {
		case p.latchSIs[si], p.inductions[si]:
			cost += 1 / vl // one scalar op per group
		case isMem && kind == memStrided:
			cost += 1 + 1/vl // VL scalar accesses + pack
		case isMem && kind == memScalar:
			cost += 2 / vl // scalar access + broadcast
		default:
			cost += 1 / vl
		}
	}
	cost += float64(p.maskBlocks) / vl
	return cost
}

// laneInfo aggregates one static instruction's execution across the lanes
// of a vector group.
type laneInfo struct {
	execCount int
	maxLat    uint16
	level     trace.MemLevel
	addr      uint64
	firstDyn  int32
	lats      []uint16 // per-lane latencies for strided accesses
	mispred   bool
}

// groupScratch bundles the per-region vector-group state so one pooled
// allocation serves a whole region (TransformRegion runs concurrently
// from independent evaluation workers). lanes is SI-indexed; entries are
// non-nil only while one vectorGroup call runs — every call clears the
// entries it touched before returning, so the slice comes back empty
// regardless of which TDG the pooled scratch served last.
type groupScratch struct {
	lanes   []*laneInfo
	touched []int
	group   []bsautil.Iteration
	arena   laneArena
}

var scratchPool = sync.Pool{New: func() any {
	return &groupScratch{}
}}

// laneArena recycles laneInfo records across vector groups: each group
// needs one record per static instruction it touches, and allocating them
// individually dominated transform cost on long traces.
type laneArena struct {
	buf  []laneInfo
	used int
}

func (a *laneArena) reset() { a.used = 0 }

func (a *laneArena) get() *laneInfo {
	if a.used == len(a.buf) {
		// Records already handed out stay valid (the lanes map holds
		// pointers into the old chunk); a fresh chunk serves the rest.
		n := len(a.buf) * 2
		if n < 32 {
			n = 32
		}
		a.buf = make([]laneInfo, n)
		a.used = 0
	}
	li := &a.buf[a.used]
	a.used++
	lats := li.lats[:0]
	*li = laneInfo{}
	li.lats = lats
	return li
}

// TransformRegion implements tdg.BSA (TDG_GPP,∅ → TDG_GPP,SIMD): µDG nodes
// from VecLanes iterations are buffered, the first becomes the vectorized
// version with predicates/masks inserted and memory latencies re-mapped,
// and the rest are elided. Remainders below the vector length run scalar.
func (m *Model) TransformRegion(ctx *tdg.Ctx, r *tdg.Region, start, end int) dg.NodeID {
	p := r.Config.(*loopPlan)
	iters := bsautil.SplitIterations(ctx.TDG, r.LoopID, start, end)

	scratch := scratchPool.Get().(*groupScratch)
	defer scratchPool.Put(scratch)
	if n := ctx.TDG.Trace.Prog.Len(); len(scratch.lanes) < n {
		scratch.lanes = make([]*laneInfo, n)
	}
	var vecGroups, scalarIters int64
	flushGroup := func(group []bsautil.Iteration) {
		if len(group) == 0 {
			return
		}
		if len(group) < isa.VecLanes {
			// Remainder: scalar replay on the core.
			scalarIters += int64(len(group))
			for _, it := range group {
				m.scalar(ctx, it.Start, it.End)
			}
			return
		}
		vecGroups++
		m.vectorGroup(ctx, p, group, scratch)
	}

	if scratch.group == nil {
		scratch.group = make([]bsautil.Iteration, 0, isa.VecLanes)
	}
	group := scratch.group[:0]
	for _, it := range iters {
		group = append(group, it)
		if len(group) == isa.VecLanes {
			flushGroup(group)
			group = group[:0]
		}
	}
	flushGroup(group)
	scratch.group = group[:0]

	// Reduction epilogue: one horizontal reduce per reduction register.
	// Emission order books FU slots, so it must not follow map order.
	redSIs := make([]int, 0, len(p.reductions))
	for si := range p.reductions {
		redSIs = append(redSIs, si)
	}
	sort.Ints(redSIs)
	for _, si := range redSIs {
		in := ctx.TDG.CFG.Prog.At(si)
		ctx.GPP.Exec(cores.UOp{Op: isa.VReduce, Dst: in.Dst, Src1: in.Dst}, -1)
	}
	if ctx.Span.Active() {
		ctx.Span.ArgInt("iterations", int64(len(iters))).
			ArgInt("vector_groups", vecGroups).
			ArgInt("scalar_iters", scalarIters).
			ArgInt("reductions", int64(len(redSIs)))
	}
	return dg.None // everything flowed through the core pipeline
}

func (m *Model) scalar(ctx *tdg.Ctx, start, end int) {
	uops := ctx.TDG.UOps()
	for i := start; i < end; i++ {
		ctx.GPP.Exec(uops[i], int32(i))
	}
}

func (m *Model) vectorGroup(ctx *tdg.Ctx, p *loopPlan, group []bsautil.Iteration, scratch *groupScratch) {
	tr := ctx.TDG.Trace
	lanes, arena := scratch.lanes, &scratch.arena
	touched := scratch.touched[:0]
	arena.reset()
	groupSize := len(group)
	lastLaneEnd := group[len(group)-1].End

	for _, it := range group {
		for i := it.Start; i < it.End; i++ {
			d := &tr.Insts[i]
			si := int(d.SI)
			li := lanes[si]
			if li == nil {
				li = arena.get()
				li.firstDyn = int32(i)
				li.addr = d.Addr
				lanes[si] = li
				touched = append(touched, si)
			}
			li.execCount++
			if d.MemLat > li.maxLat {
				li.maxLat = d.MemLat
				li.level = d.Level
			}
			if p.memKindOf[si] == memStrided {
				li.lats = append(li.lats, d.MemLat)
			}
			// The group's loop-back branch outcome comes from the last lane.
			if p.latchSet[si] && i == lastLaneEnd-1 {
				li.mispred = d.Mispredicted()
			}
		}
	}

	gpp := ctx.GPP
	prog := tr.Prog
	for _, si := range p.bodySIs {
		li := lanes[si]
		if li == nil {
			// If-conversion executes the whole body: instructions no lane
			// took still issue (masked off), costing their slot.
			li = &laneInfo{firstDyn: -1, maxLat: 4, level: trace.LevelL1}
		}
		in := prog.At(si)
		u := cores.UOp{Op: in.Op, Dst: in.Dst, Src1: in.Src1, Src2: in.Src2}
		switch {
		case p.latchSet[si]:
			u.Mispred = li.mispred
			u.Taken = true // loop-back per vector group
			gpp.Exec(u, li.firstDyn)
		case p.inductionSet[si]:
			gpp.Exec(u, li.firstDyn) // one scalar step per group
		case in.Op.IsCtrl():
			u.Op = isa.VPred // if-converted: predicate-setting vector op
			u.Dst = isa.NoReg
			gpp.Exec(u, li.firstDyn)
		case in.Op.IsMem():
			m.vectorMem(ctx, p, si, in, li)
		default:
			u.Op = vecOpFor(in.Op)
			gpp.Exec(u, li.firstDyn)
		}
		if li.execCount < groupSize && !p.latchSet[si] && !p.inductionSet[si] {
			// Divergent lanes: blend each produced value under its mask.
			gpp.Exec(cores.UOp{Op: isa.VMask, Dst: in.Dst, Src1: in.Dst}, li.firstDyn)
			if in.HasDst() {
				gpp.Exec(cores.UOp{Op: isa.VMask, Dst: in.Dst, Src1: in.Dst}, li.firstDyn)
			}
		}
	}

	// Restore the vectorGroup-call invariant: lanes holds no stale entries.
	for _, si := range touched {
		lanes[si] = nil
	}
	scratch.touched = touched
}

func (m *Model) vectorMem(ctx *tdg.Ctx, p *loopPlan, si int, in *isa.Inst, li *laneInfo) {
	gpp := ctx.GPP
	u := cores.UOp{Op: in.Op, Dst: in.Dst, Src1: in.Src1, Src2: in.Src2,
		Addr: li.addr, MemLat: li.maxLat, Level: li.level}
	switch p.memKindOf[si] {
	case memContig:
		if in.Op.IsLoad() {
			u.Op = isa.VLd
		} else {
			u.Op = isa.VSt
		}
		gpp.Exec(u, li.firstDyn)
	case memScalar:
		gpp.Exec(u, li.firstDyn) // scalar access
		gpp.Exec(cores.UOp{Op: isa.VPack, Dst: in.Dst, Src1: in.Dst}, li.firstDyn)
	default: // strided / irregular: one scalar access per lane + pack
		for _, lat := range li.lats {
			lu := u
			lu.MemLat = lat
			gpp.Exec(lu, li.firstDyn)
		}
		if len(li.lats) == 0 {
			gpp.Exec(u, li.firstDyn)
		}
		gpp.Exec(cores.UOp{Op: isa.VPack, Dst: in.Dst, Src1: in.Dst}, li.firstDyn)
	}
}

// vecOpFor maps a scalar opcode to its vector counterpart.
func vecOpFor(op isa.Op) isa.Op {
	switch op.ClassOf() {
	case isa.ClassIntAlu:
		return isa.VAdd
	case isa.ClassIntMul, isa.ClassIntDiv:
		return isa.VMul
	case isa.ClassFpAdd:
		return isa.VFAdd
	case isa.ClassFpMul:
		return isa.VFMul
	case isa.ClassFpDiv:
		return isa.VFDiv
	}
	return isa.VAdd
}
