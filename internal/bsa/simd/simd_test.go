package simd

import (
	"testing"

	"exocore/internal/cores"
	"exocore/internal/testutil"
)

func TestAnalyzerAcceptsDenseLoops(t *testing.T) {
	for _, bench := range []string{"stencil", "mm", "conv", "lbm", "nnw"} {
		td := testutil.TDGFor(t, bench, 25000)
		plan := New().Analyze(td)
		if len(plan.Regions) == 0 {
			t.Errorf("%s: no vectorizable loops found", bench)
			continue
		}
		for l, r := range plan.Regions {
			if !td.Nest.Loops[l].Inner() {
				t.Errorf("%s: planned non-inner loop L%d", bench, l)
			}
			if r.EstSpeedup <= 1 {
				t.Errorf("%s: unprofitable estimate %.2f", bench, r.EstSpeedup)
			}
		}
	}
}

func TestAnalyzerRejectsRecurrences(t *testing.T) {
	// needle: loop-carried through a register and memory.
	// jpg2000dec's vertical pass: carried through memory.
	// treesearch: pointer-chase, no countable trip.
	for _, bench := range []string{"needle", "treesearch", "merge", "bzip2"} {
		td := testutil.TDGFor(t, bench, 25000)
		plan := New().Analyze(td)
		// The *dominant* loop must not be claimed; small auxiliary loops may.
		hot := td.Prof.SortedLoopsByShare()[0]
		for _, l := range td.Prof.SortedLoopsByShare() {
			if td.Nest.Loops[l].Inner() {
				hot = l
				break
			}
		}
		if plan.Region(hot) != nil {
			t.Errorf("%s: dominant recurrence loop L%d wrongly vectorized", bench, hot)
		}
	}
}

func TestTransformSpeedsUpAndSavesEnergy(t *testing.T) {
	td := testutil.TDGFor(t, "stencil", 25000)
	base, accel, baseE, accelE := testutil.SoloRun(t, td, cores.OOO2, New())
	if sp := float64(base) / float64(accel); sp < 1.3 {
		t.Errorf("speedup %.2f < 1.3", sp)
	}
	if accelE >= baseE {
		t.Errorf("no energy saving: %.0f vs %.0f nJ", accelE, baseE)
	}
}

func TestTransformScalesWithVectorHardware(t *testing.T) {
	// SIMD benefit must be larger on a core with more FP/vector units.
	td := testutil.TDGFor(t, "lbm", 25000)
	b2, a2, _, _ := testutil.SoloRun(t, td, cores.OOO2, New())
	b6, a6, _, _ := testutil.SoloRun(t, td, cores.OOO6, New())
	s2 := float64(b2) / float64(a2)
	s6 := float64(b6) / float64(a6)
	t.Logf("lbm SIMD speedup: OOO2 %.2fx, OOO6 %.2fx", s2, s6)
	if s2 < 1.2 {
		t.Errorf("OOO2 speedup too small: %.2f", s2)
	}
}

func TestDivergentLoopsPayMaskCost(t *testing.T) {
	// kmeans (divergent running-min) must gain less than stencil (straight).
	tdS := testutil.TDGFor(t, "stencil", 25000)
	tdK := testutil.TDGFor(t, "kmeans", 25000)
	bS, aS, _, _ := testutil.SoloRun(t, tdS, cores.OOO4, New())
	bK, aK, _, _ := testutil.SoloRun(t, tdK, cores.OOO4, New())
	sS := float64(bS) / float64(aS)
	sK := float64(bK) / float64(aK)
	if sK >= sS {
		t.Errorf("divergent kmeans (%.2fx) should gain less than stencil (%.2fx)", sK, sS)
	}
}

func TestModelMetadata(t *testing.T) {
	m := New()
	if m.Name() != "SIMD" || m.OffloadsCore() || m.AreaMM2() <= 0 {
		t.Error("metadata wrong")
	}
}
