// Package tracep models a trace-speculative offload processor in the
// style of BERET, extended with dataflow execution as in the paper
// (§3.1 "Trace-Speculative Core"): hot loop traces found by path
// profiling execute speculatively on compound functional units that may
// cross control boundaries, with an iteration-versioned store buffer
// holding speculative state. Iterations that diverge from the hot trace
// are squashed and re-executed on the host core (misspeculation replay).
package tracep

import (
	"exocore/internal/bsa/bsautil"
	"exocore/internal/cores"
	"exocore/internal/dg"
	"exocore/internal/energy"
	"exocore/internal/tdg"
)

// Model is the Trace-P BSA. The default (New) adds dataflow execution to
// the BERET concept as the paper does (§3.1); NewBERET reproduces the
// original serialized-compound-FU BERET for the §2.5 validation.
type Model struct {
	// MinBackProb is the loop-back probability threshold for eligibility
	// (paper: 80%).
	MinBackProb float64
	// MinHotFrac is the minimum fraction of iterations following the hot
	// path for the trace to be profitable.
	MinHotFrac float64
	// MaxStaticInsts bounds the hot trace's configuration size. Trace-P
	// has half the operand storage of NS-DF but larger CFUs (§3.1).
	MaxStaticInsts int

	name string
	df   bsautil.DataflowConfig
}

var dfDefault = bsautil.DataflowConfig{
	IssueBandwidth:   8,
	BusBandwidth:     2,
	BusEvery:         3, // larger CFUs keep more values internal (§3.1)
	MemPorts:         2,
	SerializeControl: false, // speculative: control is assumed, then checked
	OpsPerCompound:   4,     // compound insts cross control boundaries
	DispatchEvent:    energy.EvTraceFetch,
	OpEvent:          energy.EvCFUOp,
	StorageEvent:     energy.EvDFOpStorage,
	MemEvent:         energy.EvSBAccess, // iteration-versioned store buffer
}

// New returns the Trace-P model with the paper's thresholds.
func New() *Model {
	return &Model{
		MinBackProb: 0.8, MinHotFrac: 0.55, MaxStaticInsts: 128,
		name: "Trace-P", df: dfDefault,
	}
}

// NewBERET returns the original BERET design point: serialized execution
// of compound functional units instead of dataflow (used to validate the
// framework against BERET's published results, §2.5).
func NewBERET() *Model {
	m := New()
	m.name = "BERET"
	m.df.ChainOps = true
	m.df.IssueBandwidth = 2
	m.df.BusEvery = 2
	m.df.OpsPerCompound = 3
	// BERET tolerates lower trace bias than the dataflow Trace-P: its
	// energy win survives more replays, matching its published use on
	// SPECint (§2.5).
	m.MinBackProb = 0.7
	m.MinHotFrac = 0.35
	return m
}

// Name implements tdg.BSA.
func (m *Model) Name() string { return m.name }

// AreaMM2 implements tdg.BSA (BERET-class CFUs + versioned store buffer).
func (m *Model) AreaMM2() float64 { return 0.9 }

// OffloadsCore implements tdg.BSA.
func (m *Model) OffloadsCore() bool { return true }

// Latency constants.
const (
	// ConfigLatency is the trace-configuration load cost on a miss.
	ConfigLatency = 24
	// ReplayPenalty is the squash/flush latency before a misspeculated
	// iteration restarts on the host core.
	ReplayPenalty = 8
)

type tracePlan struct {
	hotPath []int // block IDs of the speculated trace
}

// Analyze implements tdg.BSA: eligible loops have hot traces (loop-back
// probability > MinBackProb, found via path profiling — Ball-Larus [4]),
// a dominant iteration path, and a configuration that fits.
func (m *Model) Analyze(t *tdg.TDG) *tdg.Plan {
	plan := &tdg.Plan{BSA: m.Name(), Regions: make(map[int]*tdg.Region)}
	for l := range t.Nest.Loops {
		loop := &t.Nest.Loops[l]
		lp := &t.Prof.Loops[l]
		if !loop.Inner() || lp.Iterations == 0 {
			continue
		}
		if lp.BackProb < m.MinBackProb || lp.HotPathFrac < m.MinHotFrac || len(lp.HotPath) == 0 {
			continue
		}
		// Configuration size: static instructions on the hot path only.
		size := 0
		for _, b := range lp.HotPath {
			size += t.CFG.Blocks[b].Len()
		}
		if size > m.MaxStaticInsts {
			continue
		}
		// Speedup estimate: dataflow with no control serialization, paid
		// back by replays of diverging iterations.
		est := 2.0*lp.HotPathFrac - 0.9*(1-lp.HotPathFrac)*2
		if est < 0.5 {
			est = 0.5
		}
		plan.Regions[l] = &tdg.Region{
			LoopID: l, EstSpeedup: est,
			Config: &tracePlan{hotPath: lp.HotPath},
		}
	}
	return plan
}

// TransformRegion implements tdg.BSA. Iterations matching the hot path
// execute as speculative dataflow (control dependences dropped); a
// diverging iteration charges the partially executed trace, pays the
// squash penalty, and replays entirely on the host core
// (TDG_GPP-Orig,∅ → TDG_GPP-New,∅ per §3.2).
func (m *Model) TransformRegion(ctx *tdg.Ctx, r *tdg.Region, start, end int) dg.NodeID {
	plan := r.Config.(*tracePlan)
	g := ctx.G
	gpp := ctx.GPP
	tr := ctx.TDG.Trace
	ld := ctx.TDG.Dataflow(r.LoopID)

	entry := g.NewNode(dg.KindAccel, int32(start))
	inLat := bsautil.TransferLatency(len(ld.LiveIns))
	g.AddEdge(gpp.LastCommit(), entry, inLat, dg.EdgeAccelComm)
	for _, reg := range ld.LiveIns {
		g.AddEdge(gpp.RegDef(reg), entry, inLat, dg.EdgeAccelComm)
	}
	if !ctx.ConfigResident {
		cfgNode := g.NewNode(dg.KindAccel, int32(start))
		g.AddEdge(entry, cfgNode, ConfigLatency, dg.EdgeAccelConfig)
		entry = cfgNode
		ctx.Counts.Add(energy.EvCGRAConfig, 1)
	}

	df := bsautil.NewDataflow(m.df, g, ctx.Counts, entry)
	defer df.Release()
	iters := bsautil.SplitIterations(ctx.TDG, r.LoopID, start, end)
	for _, it := range iters {
		matched, shared := matchHotPath(ctx.TDG, it.Start, it.End, plan.hotPath)
		if matched {
			for i := it.Start; i < it.End; i++ {
				d := &tr.Insts[i]
				df.Exec(&tr.Prog.Insts[d.SI], d, int32(i))
			}
			continue
		}
		// Misspeculation: the trace engine ran the iteration up to the
		// diverging block before detecting the wrong path; that partial
		// work is wasted (charged), then the whole iteration replays on
		// the host core.
		m.chargeWastedWork(ctx, plan, shared)
		squash := g.NewNode(dg.KindAccel, int32(it.Start))
		g.AddEdge(df.LastNode(), squash, ReplayPenalty, dg.EdgeAccelReplay)
		// Hand current speculative state to the core for the replay.
		for _, reg := range df.WrittenRegs() {
			gpp.SetRegDef(reg, squash)
		}
		gpp.Barrier(squash, dg.EdgeAccelReplay)
		var lastInfo cores.ExecInfo
		uops := ctx.TDG.UOps()
		for i := it.Start; i < it.End; i++ {
			lastInfo = gpp.Exec(uops[i], int32(i))
		}
		// Resume the trace engine with the core's architectural state.
		resume := g.NewNode(dg.KindAccel, int32(it.End-1))
		g.AddEdge(lastInfo.Complete, resume, 2, dg.EdgeAccelComm)
		df.Resume(resume, gpp)
	}

	exit := df.ExitNode(bsautil.TransferLatency(len(ld.LiveOuts)))
	for _, reg := range df.WrittenRegs() {
		gpp.SetRegDef(reg, exit)
	}
	df.ForEachStore(gpp.NoteStore)
	gpp.Barrier(exit, dg.EdgeAccelComm)
	return exit
}

// chargeWastedWork accounts the energy of trace operations executed
// before divergence was detected: the first sharedBlocks blocks of the
// hot path ran speculatively before the wrong-path check fired.
func (m *Model) chargeWastedWork(ctx *tdg.Ctx, plan *tracePlan, sharedBlocks int) {
	shared := 0
	for _, b := range plan.hotPath[:sharedBlocks] {
		shared += ctx.TDG.CFG.Blocks[b].Len()
	}
	ctx.Counts.Add(energy.EvCFUOp, int64(shared))
	ctx.Counts.Add(energy.EvReplay, 1)
}

// matchHotPath compares one iteration's dynamic block-entry sequence
// against the planned hot path without materializing it, returning
// whether the whole path matched and how many leading blocks did (the
// shared speculative prefix charged on divergence).
func matchHotPath(t *tdg.TDG, start, end int, hot []int) (bool, int) {
	k := 0
	prev, prevSI := -1, -1
	for i := start; i < end; i++ {
		si := int(t.Trace.Insts[i].SI)
		b := t.CFG.BlockOf[si]
		if b != prev || si <= prevSI {
			if k >= len(hot) || hot[k] != b {
				return false, k
			}
			k++
			prev = b
		}
		prevSI = si
	}
	return k == len(hot), k
}
