package tracep

import (
	"testing"

	"exocore/internal/bsa/bsautil"
	"exocore/internal/cores"
	"exocore/internal/testutil"
)

func TestAnalyzerRequiresHotTraces(t *testing.T) {
	// vr: biased early-exit — eligible. merge: 50/50 path split — not.
	tdVR := testutil.TDGFor(t, "vr", 25000)
	if plan := New().Analyze(tdVR); len(plan.Regions) == 0 {
		t.Error("vr has a hot trace but no Trace-P plan")
	}
	tdMerge := testutil.TDGFor(t, "merge", 25000)
	plan := New().Analyze(tdMerge)
	hot := tdMerge.Prof.SortedLoopsByShare()[0]
	if plan.Region(hot) != nil {
		t.Error("merge's 50/50 loop must not be trace-speculated")
	}
}

func TestAnalyzerThresholds(t *testing.T) {
	td := testutil.TDGFor(t, "vr", 25000)
	m := New()
	m.MinHotFrac = 1.01 // impossible
	if plan := m.Analyze(td); len(plan.Regions) != 0 {
		t.Error("MinHotFrac not enforced")
	}
	m = New()
	m.MaxStaticInsts = 1
	if plan := m.Analyze(td); len(plan.Regions) != 0 {
		t.Error("MaxStaticInsts not enforced")
	}
}

func TestSpeculationWinsOnBiasedControl(t *testing.T) {
	td := testutil.TDGFor(t, "vr", 25000)
	base, accel, baseE, accelE := testutil.SoloRun(t, td, cores.OOO2, New())
	sp := float64(base) / float64(accel)
	t.Logf("vr: %.2fx perf, %.2fx energy", sp, baseE/accelE)
	if sp < 1.2 {
		t.Errorf("Trace-P speedup %.2f < 1.2 on its target behavior", sp)
	}
	if accelE >= baseE {
		t.Error("no energy saving")
	}
}

func TestReplaysCostPerformance(t *testing.T) {
	// gsm's filter loop has occasional saturation divergences: Trace-P
	// still wins, but the replay machinery must be exercised (the model
	// records EvReplay counts via wasted work accounting).
	td := testutil.TDGFor(t, "gsmencode", 25000)
	base, accel, _, _ := testutil.SoloRun(t, td, cores.OOO2, New())
	if accel <= 0 || base <= 0 {
		t.Fatal("bad cycles")
	}
	t.Logf("gsmencode: %.2fx", float64(base)/float64(accel))
}

func TestBERETPresetIsSlowerButStillEfficient(t *testing.T) {
	// The serialized BERET preset must not beat the dataflow Trace-P on
	// performance for the same region set.
	td := testutil.TDGFor(t, "vr", 25000)
	_, tp, _, _ := testutil.SoloRun(t, td, cores.IO2, New())
	_, beret, _, beretE := testutil.SoloRun(t, td, cores.IO2, NewBERET())
	if beret < tp {
		t.Errorf("serialized BERET (%d) faster than dataflow Trace-P (%d)", beret, tp)
	}
	if beretE <= 0 {
		t.Error("missing energy")
	}
}

func TestModelMetadata(t *testing.T) {
	m := New()
	if m.Name() != "Trace-P" || !m.OffloadsCore() {
		t.Error("metadata wrong")
	}
	b := NewBERET()
	if b.Name() != "BERET" || b.MinBackProb >= m.MinBackProb {
		t.Error("BERET preset wrong")
	}
}

func TestMatchHotPathAgainstBlocksOf(t *testing.T) {
	// Differential: the fused matcher must agree with materializing the
	// block path and comparing it, on every iteration of a real region.
	td := testutil.TDGFor(t, "vr", 25000)
	plan := New().Analyze(td)
	if len(plan.Regions) == 0 {
		t.Fatal("no Trace-P region on vr")
	}
	checked := 0
	for _, r := range plan.Regions {
		tp := r.Config.(*tracePlan)
		iters := bsautil.SplitIterations(td, r.LoopID, 0, td.Trace.Len())
		for _, it := range iters {
			path := bsautil.BlocksOf(td, it.Start, it.End)
			wantShared := 0
			for wantShared < len(path) && wantShared < len(tp.hotPath) &&
				path[wantShared] == tp.hotPath[wantShared] {
				wantShared++
			}
			wantMatch := len(path) == len(tp.hotPath) && wantShared == len(path)
			gotMatch, gotShared := matchHotPath(td, it.Start, it.End, tp.hotPath)
			if gotMatch != wantMatch || gotShared != wantShared {
				t.Fatalf("iteration [%d,%d): match=%v shared=%d, want match=%v shared=%d",
					it.Start, it.End, gotMatch, gotShared, wantMatch, wantShared)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no iterations checked")
	}
}
