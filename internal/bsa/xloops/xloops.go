// Package xloops models a loop-dependence-pattern accelerator in the
// style of XLOOPS (Srinath et al., MICRO 2014 — reference [49] of the
// paper): an array of simple lanes executes consecutive loop iterations
// concurrently, with cross-iteration (ordered) register dependences
// forwarded lane-to-lane through queues. Control inside an iteration is
// resolved by its own lane, so — unlike NS-DF — branches do not serialize
// across iterations; throughput is instead bounded by the loop's carried
// dependence chain (the initiation interval) and the lane count.
//
// XLOOPS is not part of the paper's four-BSA ExoCore design space; it is
// provided as the "other proposed accelerators" extension §5.5 invites,
// and it deliberately complements the others: it targets exactly the
// carried-recurrence loops SIMD and DP-CGRA must reject.
package xloops

import (
	"exocore/internal/bsa/bsautil"
	"exocore/internal/dg"
	"exocore/internal/energy"
	"exocore/internal/isa"
	"exocore/internal/tdg"
)

// Model is the XLOOPS-style BSA.
type Model struct {
	// Lanes is the number of iteration-executing lanes.
	Lanes int
	// MaxStaticInsts bounds the loop body size.
	MaxStaticInsts int
	// MinAvgTrip rejects loops with too few iterations to fill the lanes.
	MinAvgTrip float64
}

// New returns the model at the XLOOPS-like design point.
func New() *Model { return &Model{Lanes: 4, MaxStaticInsts: 128, MinAvgTrip: 8} }

// Name implements tdg.BSA.
func (m *Model) Name() string { return "XLoops" }

// AreaMM2 implements tdg.BSA (four simple lanes + forwarding queues).
func (m *Model) AreaMM2() float64 { return 1.4 }

// OffloadsCore implements tdg.BSA.
func (m *Model) OffloadsCore() bool { return true }

var dfConfig = bsautil.DataflowConfig{
	IssueBandwidth:   8, // 2 per lane
	BusBandwidth:     2, // inter-lane forwarding queues
	BusEvery:         3, // only carried values cross lanes
	MemPorts:         2,
	SerializeControl: true, // per-iteration; reset at each lane dispatch
	OpsPerCompound:   2,
	DispatchEvent:    energy.EvDFDispatch,
	OpEvent:          energy.EvCFUOp,
	StorageEvent:     energy.EvDFOpStorage,
	MemEvent:         energy.EvLSQ,
}

// ConfigLatency is the loop-configuration load cost on a miss.
const ConfigLatency = 24

type loopPlan struct {
	ii int64 // estimated carried-dependence chain per iteration
}

// Analyze implements tdg.BSA: inner loops that fit the lanes, with a
// per-iteration speedup estimate of min(lanes, body/II) — the classic
// ordered-loop pipelining bound.
func (m *Model) Analyze(t *tdg.TDG) *tdg.Plan {
	plan := &tdg.Plan{BSA: m.Name(), Regions: make(map[int]*tdg.Region)}
	for l := range t.Nest.Loops {
		loop := &t.Nest.Loops[l]
		lp := &t.Prof.Loops[l]
		if !loop.Inner() || lp.Iterations == 0 || lp.AvgTrip < m.MinAvgTrip {
			continue
		}
		if t.Nest.InstsOf(l) > m.MaxStaticInsts {
			continue
		}
		ii := m.carriedChain(t, l)
		body := float64(lp.DynInsts) / float64(lp.Iterations)
		perIterOnCore := body / 1.5 // rough core IPC on loop bodies
		est := perIterOnCore / float64(ii)
		if est > float64(m.Lanes) {
			est = float64(m.Lanes)
		}
		if est <= 1.05 {
			continue
		}
		plan.Regions[l] = &tdg.Region{
			LoopID: l, EstSpeedup: est, Config: &loopPlan{ii: ii},
		}
	}
	return plan
}

// carriedChain estimates the initiation interval: the longest latency
// chain from a loop-carried value's use to its next-iteration definition.
func (m *Model) carriedChain(t *tdg.TDG, l int) int64 {
	ld := t.Dataflow(l)
	loop := &t.Nest.Loops[l]
	carried := make(map[isa.Reg]bool)
	for _, r := range ld.CarriedRegDep {
		carried[r] = true
	}
	for si := range ld.Reductions {
		if in := t.CFG.Prog.At(si); in.HasDst() {
			carried[in.Dst] = true
		}
	}
	for _, iv := range ld.Inductions {
		carried[iv.Reg] = true
	}

	depth := make(map[isa.Reg]int64)
	var ii int64 = 1
	var srcs []isa.Reg
	for _, b := range loop.Blocks {
		blk := &t.CFG.Blocks[b]
		for si := blk.Start; si < blk.End; si++ {
			in := t.CFG.Prog.At(si)
			var d int64
			srcs = srcs[:0]
			for _, r := range in.Srcs(srcs) {
				if depth[r] > d {
					d = depth[r]
				}
			}
			d += int64(in.Op.Latency())
			if in.HasDst() {
				depth[in.Dst] = d
				if carried[in.Dst] && d > ii {
					ii = d
				}
			}
		}
	}
	return ii
}

// TransformRegion implements tdg.BSA: iterations dispatch round-robin to
// lanes (an iteration waits for its lane's previous occupant), carried
// register values flow through the shared dataflow state, and each
// iteration's control anchors to its own dispatch — cross-iteration
// control independence.
func (m *Model) TransformRegion(ctx *tdg.Ctx, r *tdg.Region, start, end int) dg.NodeID {
	g := ctx.G
	gpp := ctx.GPP
	tr := ctx.TDG.Trace
	ld := ctx.TDG.Dataflow(r.LoopID)

	entry := g.NewNode(dg.KindAccel, int32(start))
	inLat := bsautil.TransferLatency(len(ld.LiveIns))
	g.AddEdge(gpp.LastCommit(), entry, inLat, dg.EdgeAccelComm)
	for _, reg := range ld.LiveIns {
		g.AddEdge(gpp.RegDef(reg), entry, inLat, dg.EdgeAccelComm)
	}
	if !ctx.ConfigResident {
		cfgNode := g.NewNode(dg.KindAccel, int32(start))
		g.AddEdge(entry, cfgNode, ConfigLatency, dg.EdgeAccelConfig)
		entry = cfgNode
		ctx.Counts.Add(energy.EvCGRAConfig, 1)
	}

	df := bsautil.NewDataflow(dfConfig, g, ctx.Counts, entry)
	defer df.Release()
	iters := bsautil.SplitIterations(ctx.TDG, r.LoopID, start, end)
	laneEnd := make([]dg.NodeID, m.Lanes)
	for i := range laneEnd {
		laneEnd[i] = entry
	}
	for k, it := range iters {
		lane := k % m.Lanes
		dispatch := g.NewNode(dg.KindAccel, int32(it.Start))
		g.AddEdge(laneEnd[lane], dispatch, 1, dg.EdgeAccelPipe) // lane reuse
		g.AddEdge(entry, dispatch, 0, dg.EdgeProgram)
		df.ResetControl(dispatch) // lane-local control
		for i := it.Start; i < it.End; i++ {
			d := &tr.Insts[i]
			df.Exec(&tr.Prog.Insts[d.SI], d, int32(i))
		}
		laneEnd[lane] = df.CtrlNode() // the iteration's final branch
	}

	exit := df.ExitNode(bsautil.TransferLatency(len(ld.LiveOuts)))
	for _, reg := range df.WrittenRegs() {
		gpp.SetRegDef(reg, exit)
	}
	df.ForEachStore(gpp.NoteStore)
	gpp.Barrier(exit, dg.EdgeAccelComm)
	return exit
}
