package xloops

import (
	"testing"

	"exocore/internal/cores"
	"exocore/internal/testutil"
)

func TestTargetsCarriedRecurrences(t *testing.T) {
	// needle (wavefront DP) and hmmer (Viterbi) carry dependences SIMD
	// rejects; XLOOPS claims them and must at least win on energy —
	// performance depends on how tight the carried chain is (needle's
	// register chain pipelines; hmmer's memory-carried row chain binds
	// the accelerator exactly as it binds the core).
	cases := []struct {
		bench          string
		minSp, minEner float64
	}{
		{"needle", 1.1, 1.4},
		{"hmmer", 0.8, 1.4},
	}
	for _, c := range cases {
		td := testutil.TDGFor(t, c.bench, 25000)
		plan := New().Analyze(td)
		if len(plan.Regions) == 0 {
			t.Errorf("%s: no XLoops plan", c.bench)
			continue
		}
		base, accel, baseE, accelE := testutil.SoloRun(t, td, cores.OOO2, New())
		sp := float64(base) / float64(accel)
		en := baseE / accelE
		t.Logf("%s: %.2fx perf, %.2fx energy", c.bench, sp, en)
		if sp < c.minSp {
			t.Errorf("%s: speedup %.2f < %.2f", c.bench, sp, c.minSp)
		}
		if en < c.minEner {
			t.Errorf("%s: energy win %.2f < %.2f", c.bench, en, c.minEner)
		}
	}
}

func TestIIBoundsEstimate(t *testing.T) {
	td := testutil.TDGFor(t, "needle", 25000)
	m := New()
	plan := m.Analyze(td)
	for _, r := range plan.Regions {
		p := r.Config.(*loopPlan)
		if p.ii < 1 {
			t.Errorf("ii = %d", p.ii)
		}
		if r.EstSpeedup > float64(m.Lanes) {
			t.Errorf("estimate %.2f exceeds lane count", r.EstSpeedup)
		}
	}
}

func TestLaneCountMatters(t *testing.T) {
	td := testutil.TDGFor(t, "hmmer", 25000)
	two := &Model{Lanes: 2, MaxStaticInsts: 128, MinAvgTrip: 8}
	eight := &Model{Lanes: 8, MaxStaticInsts: 128, MinAvgTrip: 8}
	_, a2, _, _ := testutil.SoloRun(t, td, cores.OOO2, two)
	_, a8, _, _ := testutil.SoloRun(t, td, cores.OOO2, eight)
	if a8 > a2 {
		t.Errorf("more lanes slower: %d vs %d", a8, a2)
	}
}

func TestRejectsHugeOrShortLoops(t *testing.T) {
	td := testutil.TDGFor(t, "needle", 25000)
	m := New()
	m.MaxStaticInsts = 2
	if plan := m.Analyze(td); len(plan.Regions) != 0 {
		t.Error("size budget not enforced")
	}
	m = New()
	m.MinAvgTrip = 1e9
	if plan := m.Analyze(td); len(plan.Regions) != 0 {
		t.Error("trip threshold not enforced")
	}
}

func TestMetadata(t *testing.T) {
	m := New()
	if m.Name() != "XLoops" || !m.OffloadsCore() || m.Lanes != 4 {
		t.Error("metadata wrong")
	}
}
