// Package cache models a set-associative write-allocate cache hierarchy
// with LRU replacement. The hierarchy annotates each memory operation in a
// dynamic trace with the latency and level that served it; those
// annotations become the execute→complete edge weights in the µDG. The
// default geometry matches the paper's common configuration (§4): 2-way
// 32KiB I$, 64KiB L1D$ (4-cycle), 8-way 2MB L2$ (22-cycle hit).
package cache

import (
	"exocore/internal/prog"
	"exocore/internal/trace"
)

// Config describes one cache level.
type Config struct {
	SizeBytes int
	Ways      int
	LineBytes int
	Latency   int // access (hit) latency in cycles
}

// Cache is one set-associative LRU cache level.
type Cache struct {
	cfg      Config
	sets     int
	lineBits uint
	// Way state is stored flat (set*Ways+way): three allocations per
	// cache regardless of set count. lru holds a per-set use counter.
	tags   []uint64
	valid  []bool
	lru    []uint64
	useClk uint64
	hits   uint64
	misses uint64
}

// New returns a cache with the given geometry. SizeBytes must be a
// multiple of Ways*LineBytes.
func New(cfg Config) *Cache {
	if cfg.LineBytes <= 0 {
		cfg.LineBytes = 64
	}
	sets := cfg.SizeBytes / (cfg.Ways * cfg.LineBytes)
	if sets < 1 {
		sets = 1
	}
	c := &Cache{cfg: cfg, sets: sets}
	for b := cfg.LineBytes; b > 1; b >>= 1 {
		c.lineBits++
	}
	n := sets * cfg.Ways
	c.tags = make([]uint64, n)
	c.valid = make([]bool, n)
	c.lru = make([]uint64, n)
	return c
}

// Access looks up addr, filling on miss, and reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.lineBits
	set := int(line % uint64(c.sets))
	tag := line / uint64(c.sets)
	c.useClk++
	base := set * c.cfg.Ways
	ways := c.tags[base : base+c.cfg.Ways]
	for w := range ways {
		if c.valid[base+w] && ways[w] == tag {
			c.lru[base+w] = c.useClk
			c.hits++
			return true
		}
	}
	c.misses++
	// Fill: choose invalid way or LRU victim.
	victim := 0
	var oldest uint64 = ^uint64(0)
	for w := range ways {
		if !c.valid[base+w] {
			victim = w
			oldest = 0
			break
		}
		if c.lru[base+w] < oldest {
			oldest = c.lru[base+w]
			victim = w
		}
	}
	c.valid[base+victim] = true
	c.tags[base+victim] = tag
	c.lru[base+victim] = c.useClk
	return false
}

// Stats returns (hits, misses).
func (c *Cache) Stats() (uint64, uint64) { return c.hits, c.misses }

// Latency returns the configured hit latency.
func (c *Cache) Latency() int { return c.cfg.Latency }

// Hierarchy is an L1D + L2 + DRAM hierarchy shared by the general core and
// all BSAs (the paper's ExoCores share the cache hierarchy and virtual
// memory so execution can migrate without copying state).
type Hierarchy struct {
	L1D    *Cache
	L2     *Cache
	MemLat int
	// NextLinePrefetch installs the successor line into L1 on every L1
	// miss (a simple stream prefetcher; off by default to match the
	// paper's configuration — used by the prefetch ablation).
	NextLinePrefetch bool

	prefetches uint64
}

// DefaultHierarchy returns the paper's §4 configuration.
func DefaultHierarchy() *Hierarchy {
	return &Hierarchy{
		L1D:    New(Config{SizeBytes: 64 << 10, Ways: 2, LineBytes: 64, Latency: 4}),
		L2:     New(Config{SizeBytes: 2 << 20, Ways: 8, LineBytes: 64, Latency: 22}),
		MemLat: 110,
	}
}

// Access runs one access through the hierarchy and returns the total
// latency and the level that served it.
func (h *Hierarchy) Access(addr uint64) (int, trace.MemLevel) {
	if h.L1D.Access(addr) {
		return h.L1D.Latency(), trace.LevelL1
	}
	if h.NextLinePrefetch {
		// Pull the successor line toward the core alongside the demand
		// fill (latency of the prefetch itself is hidden).
		next := addr + uint64(h.L1D.cfg.LineBytes)
		h.L1D.Access(next)
		h.L2.Access(next)
		h.prefetches++
	}
	if h.L2.Access(addr) {
		return h.L2.Latency(), trace.LevelL2
	}
	return h.MemLat, trace.LevelMem
}

// Prefetches returns the number of prefetch fills issued.
func (h *Hierarchy) Prefetches() uint64 { return h.prefetches }

// Annotate replays every memory operation in t through a fresh copy of the
// hierarchy configuration, setting MemLat and Level on each. Non-memory
// instructions are untouched.
func (h *Hierarchy) Annotate(t *trace.Trace) {
	h.AnnotateInsts(t.Prog, t.Insts)
}

// AnnotateInsts is Annotate over one chunk of a dynamic trace. Cache
// state (tags, LRU clocks, hit/miss counters) lives in the hierarchy and
// carries across calls, so annotating a trace chunk-by-chunk produces
// exactly the bytes the whole-trace scan does, at any chunk size.
func (h *Hierarchy) AnnotateInsts(p *prog.Program, insts []trace.DynInst) {
	for i := range insts {
		d := &insts[i]
		op := p.Insts[d.SI].Op
		if !op.IsMem() {
			continue
		}
		lat, lvl := h.Access(d.Addr)
		d.MemLat = uint16(lat)
		d.Level = lvl
	}
}
