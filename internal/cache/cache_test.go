package cache

import (
	"testing"
	"testing/quick"

	"exocore/internal/isa"
	"exocore/internal/prog"
	"exocore/internal/trace"
)

func TestDirectReuseHits(t *testing.T) {
	c := New(Config{SizeBytes: 1024, Ways: 2, LineBytes: 64, Latency: 1})
	if c.Access(0) {
		t.Error("cold access should miss")
	}
	if !c.Access(0) {
		t.Error("repeat access should hit")
	}
	if !c.Access(8) {
		t.Error("same-line access should hit")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 2/1", hits, misses)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2 ways, 1 set of 2 lines: size = 2*64.
	c := New(Config{SizeBytes: 128, Ways: 2, LineBytes: 64, Latency: 1})
	c.Access(0)       // miss, fill
	c.Access(64)      // miss, fill (set is the same: only 1 set)
	c.Access(0)       // hit, 0 is MRU
	c.Access(128)     // miss, evicts 64
	if !c.Access(0) { // still resident
		t.Error("LRU evicted the MRU line")
	}
	if c.Access(64) {
		t.Error("64 should have been evicted")
	}
}

func TestWorkingSetFits(t *testing.T) {
	c := New(Config{SizeBytes: 4096, Ways: 4, LineBytes: 64, Latency: 1})
	// Touch 4KB twice: second pass must be all hits.
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 4096; a += 64 {
			c.Access(a)
		}
	}
	hits, misses := c.Stats()
	if misses != 64 || hits != 64 {
		t.Errorf("hits=%d misses=%d, want 64/64", hits, misses)
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := DefaultHierarchy()
	lat, lvl := h.Access(0)
	if lvl != trace.LevelMem || lat != h.MemLat {
		t.Errorf("cold access: lat=%d lvl=%v, want mem", lat, lvl)
	}
	lat, lvl = h.Access(0)
	if lvl != trace.LevelL1 || lat != 4 {
		t.Errorf("warm access: lat=%d lvl=%v, want L1/4", lat, lvl)
	}
	// Evict from L1 (64KiB, 2-way) but not L2: stream 128KiB then re-touch 0.
	for a := uint64(64); a < 128<<10; a += 64 {
		h.Access(a)
	}
	lat, lvl = h.Access(0)
	if lvl != trace.LevelL2 || lat != 22 {
		t.Errorf("L1-evicted access: lat=%d lvl=%v, want L2/22", lat, lvl)
	}
}

func TestAnnotateSetsLatencies(t *testing.T) {
	b := prog.NewBuilder("t")
	b.MovI(isa.R(1), 0)
	b.Ld(isa.R(2), isa.R(1), 0)
	b.Ld(isa.R(3), isa.R(1), 0)
	p := b.MustBuild()
	tr := &trace.Trace{Prog: p, Insts: []trace.DynInst{
		{SI: 0}, {SI: 1, Addr: 0}, {SI: 2, Addr: 0},
	}}
	DefaultHierarchy().Annotate(tr)
	if tr.Insts[0].MemLat != 0 || tr.Insts[0].Level != trace.LevelNone {
		t.Error("non-mem inst annotated")
	}
	if tr.Insts[1].Level != trace.LevelMem {
		t.Errorf("first load level = %v, want mem", tr.Insts[1].Level)
	}
	if tr.Insts[2].Level != trace.LevelL1 || tr.Insts[2].MemLat != 4 {
		t.Errorf("second load = %v/%d, want L1/4", tr.Insts[2].Level, tr.Insts[2].MemLat)
	}
}

func TestNextLinePrefetchHelpsStreams(t *testing.T) {
	miss := func(prefetch bool) int {
		h := DefaultHierarchy()
		h.NextLinePrefetch = prefetch
		misses := 0
		for a := uint64(0); a < 256<<10; a += 8 {
			if _, lvl := h.Access(a); lvl != trace.LevelL1 {
				misses++
			}
		}
		return misses
	}
	without, with := miss(false), miss(true)
	if with >= without {
		t.Errorf("prefetcher did not reduce stream misses: %d vs %d", with, without)
	}
	h := DefaultHierarchy()
	h.NextLinePrefetch = true
	h.Access(0)
	if h.Prefetches() == 0 {
		t.Error("prefetch counter not incremented")
	}
}

func TestAccessAlwaysHitsAfterFill(t *testing.T) {
	c := New(Config{SizeBytes: 8192, Ways: 2, LineBytes: 64, Latency: 1})
	f := func(addr uint64) bool {
		c.Access(addr)
		return c.Access(addr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
