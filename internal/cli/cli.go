// Package cli is the one flag surface shared by every cmd/ tool: a
// unified flag set (-bench, -core, -bsas, -sched, -json, -v/-vv,
// -maxdyn, -workers, -trace) with consistent parsing and validation, a
// lazily-constructed shared evaluation engine wired to structured
// progress logging and span tracing, and the common -json emission path
// producing the versioned report schema.
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"exocore/internal/bsa"
	"exocore/internal/cores"
	"exocore/internal/exocore"
	"exocore/internal/obs"
	"exocore/internal/report"
	"exocore/internal/runner"
	"exocore/internal/store"
	"exocore/internal/trace"
	"exocore/internal/workloads"
)

// QuickSet is the 6-benchmark subset used by -bench quick: two benchmarks
// per workload category, for fast iteration.
var QuickSet = []string{"mm", "nbody", "cjpeg", "mcf", "gzip", "stencil"}

// App holds the unified flag values for one tool invocation.
type App struct {
	// Tool is the binary name, used in error messages and the JSON
	// document header.
	Tool string

	// Unified flags.
	Bench   string // "all" | "quick" | comma-separated benchmark names
	Core    string // general-core name (Table 4)
	BSAs    string // "all" | "none" | comma-separated BSA names
	Sched   string // "oracle" | "amdahl"
	JSON    bool   // emit the versioned JSON schema instead of text
	Verbose bool   // progress + engine metrics on stderr
	VV      bool   // debug-level logging (implies -v)
	MaxDyn  int    // dynamic-instruction budget per benchmark
	Workers int    // worker-pool bound (0 = GOMAXPROCS)

	// ChunkInsts is the -chunk-insts value: dynamic instructions per
	// streaming chunk for trace synthesis (0 = materialize the whole
	// trace in one pass, the legacy path).
	ChunkInsts int

	// StoreDir is the -store value: a directory for the persistent
	// content-addressed evaluation-unit store ("" = no durable tier).
	// Opened and validated during Parse, so an unwritable or
	// format-mismatched directory fails fast with a clear error.
	StoreDir string

	// Profiling and measurement flags.
	CPUProfile string // write a CPU profile to this file
	MemProfile string // write an allocation profile to this file on Close
	Trace      string // write a Chrome trace-event JSON file on Close
	NoSegCache bool   // disable the evaluation-unit cache (A/B baseline)
	NoDelta    bool   // disable delta evaluation, keep the unit cache

	// Stderr receives progress logging and Fail output; Stdout receives
	// Emit's JSON document. Both default to the os streams and are
	// overridable for tests.
	Stderr io.Writer
	Stdout io.Writer

	fs       *flag.FlagSet
	engine   *runner.Engine
	log      *obs.Logger
	tracer   *obs.Tracer
	cpuProfF *os.File // open while CPU profiling is active
	store    *store.Store
	obsReg   *obs.Registry // shared engine/store registry when -store is set

	// Resolved during Parse.
	core cores.Config
	wls  []*workloads.Workload
	bsas []string
	reg  *bsa.Registry
}

// New creates an App and registers the unified flag set on its own
// FlagSet. benchDefault customizes -bench's default ("all" for sweep
// tools, a single benchmark for point tools).
func New(tool, benchDefault string) *App {
	a := &App{
		Tool:   tool,
		Stderr: os.Stderr,
		Stdout: os.Stdout,
		fs:     flag.NewFlagSet(tool, flag.ExitOnError),
	}
	a.fs.StringVar(&a.Bench, "bench", benchDefault, "benchmarks: all | quick | comma-separated names")
	a.fs.StringVar(&a.Core, "core", "OOO2", "general core: IO2, OOO2, OOO4, OOO6")
	a.fs.StringVar(&a.BSAs, "bsas", "all", "BSAs available: all | none | comma-separated of "+strings.Join(bsa.Default().Names(), ","))
	a.fs.StringVar(&a.Sched, "sched", "oracle", "scheduler: oracle | amdahl")
	a.fs.BoolVar(&a.JSON, "json", false, "emit the versioned JSON result schema ("+report.Schema+")")
	a.fs.BoolVar(&a.Verbose, "v", false, "progress and engine metrics on stderr")
	a.fs.BoolVar(&a.VV, "vv", false, "debug-level logging on stderr (implies -v)")
	a.fs.IntVar(&a.MaxDyn, "maxdyn", runner.DefaultMaxDyn, "dynamic instruction budget per benchmark")
	a.fs.IntVar(&a.Workers, "workers", 0, "worker pool size (0 = GOMAXPROCS)")
	a.fs.IntVar(&a.ChunkInsts, "chunk-insts", trace.DefaultChunkInsts,
		"dynamic instructions per streaming trace chunk (0 = materialize whole trace)")
	a.fs.StringVar(&a.StoreDir, "store", "",
		"persistent evaluation-unit store directory (created if missing; a restarted process comes up warm)")
	a.fs.StringVar(&a.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	a.fs.StringVar(&a.MemProfile, "memprofile", "", "write an allocation profile to this file at exit")
	a.fs.StringVar(&a.Trace, "trace", "", "write a Chrome trace-event JSON file (load in Perfetto) at exit")
	a.fs.BoolVar(&a.NoSegCache, "nosegcache", false, "disable the evaluation-unit cache (A/B baseline)")
	a.fs.BoolVar(&a.NoDelta, "nodelta", false, "disable incremental delta evaluation, keep the unit cache (A/B baseline)")
	return a
}

// Verbosity maps the -v/-vv flags to a logging level: 0 (warnings
// only), 1 (-v: info) or 2 (-vv: debug).
func (a *App) Verbosity() int {
	switch {
	case a.VV:
		return 2
	case a.Verbose:
		return 1
	}
	return 0
}

// Log returns the tool's structured logger (constructing it on first
// use), which serializes records into whole lines so concurrent workers
// cannot interleave mid-line.
func (a *App) Log() *obs.Logger {
	if a.log == nil {
		a.log = obs.NewLogger(a.Stderr, a.Tool, a.Verbosity())
	}
	return a.log
}

// Flags exposes the flag set so tools can register tool-specific flags
// before Parse.
func (a *App) Flags() *flag.FlagSet { return a.fs }

// SetMaxDynDefault overrides -maxdyn's default before Parse (tools with
// a cheaper customary budget). An explicit -maxdyn still wins.
func (a *App) SetMaxDynDefault(n int) {
	a.MaxDyn = n
	a.fs.Lookup("maxdyn").DefValue = fmt.Sprint(n)
}

// Parse parses args and validates every unified flag, resolving the core
// config, workload list and BSA names.
func (a *App) Parse(args []string) error {
	if err := a.fs.Parse(args); err != nil {
		return err
	}
	core, ok := cores.ConfigByName(a.Core)
	if !ok {
		return fmt.Errorf("unknown core %q (have IO2, OOO2, OOO4, OOO6)", a.Core)
	}
	a.core = core

	wls, err := ResolveBenchSpec(a.Bench)
	if err != nil {
		return err
	}
	a.wls = wls

	bsas, err := ResolveBSASpec(a.BSAs)
	if err != nil {
		return err
	}
	a.bsas = bsas
	// -bsas restricts the tool's whole model registry, not just the
	// scheduler's available set: the engine builds plans, sweep tools
	// enumerate subsets and area accounting follows a.reg, so
	// "-bsas SIMD,DP-CGRA,NS-DF,Trace-P" reproduces the original
	// four-BSA design space exactly.
	a.reg, err = bsa.Default().Subset(bsas)
	if err != nil {
		return err
	}

	switch a.Sched {
	case "oracle", "amdahl":
	default:
		return fmt.Errorf("unknown scheduler %q (have oracle, amdahl)", a.Sched)
	}
	if a.MaxDyn <= 0 {
		a.MaxDyn = runner.DefaultMaxDyn
	}
	if err := checkChunkInsts(a.ChunkInsts); err != nil {
		return err
	}
	if a.VV {
		a.Verbose = true
	}
	a.log = obs.NewLogger(a.Stderr, a.Tool, a.Verbosity())
	if a.Trace != "" {
		a.tracer = obs.NewTracer(a.Tool)
	}
	if a.StoreDir != "" {
		// The store shares one metrics registry with the engine, so
		// store.* instruments ride every metrics snapshot (-v, result
		// JSON, the daemon's /metricsz).
		a.obsReg = obs.NewRegistry()
		st, err := store.Open(a.StoreDir, store.Options{Reg: a.obsReg})
		if err != nil {
			return fmt.Errorf("-store: %w", err)
		}
		a.store = st
	}
	if a.CPUProfile != "" {
		f, err := os.Create(a.CPUProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		a.cpuProfF = f
	}
	return nil
}

// Close stops the CPU profile, writes the allocation profile and the
// span trace, if the respective flags were given, and returns the first
// failure so callers can surface it in the exit status. Idempotent;
// called from Emit, Finish and Fail, and safe to defer from main as a
// catch-all.
func (a *App) Close() error {
	var firstErr error
	keep := func(err error) {
		if firstErr == nil && err != nil {
			firstErr = err
		}
	}
	if a.cpuProfF != nil {
		pprof.StopCPUProfile()
		if err := a.cpuProfF.Close(); err != nil {
			keep(fmt.Errorf("-cpuprofile: %w", err))
		}
		a.cpuProfF = nil
	}
	if a.MemProfile != "" {
		path := a.MemProfile
		a.MemProfile = ""
		if err := writeMemProfile(path); err != nil {
			keep(fmt.Errorf("-memprofile: %w", err))
		}
	}
	if a.tracer != nil && a.Trace != "" {
		t := a.tracer
		a.tracer = nil
		if err := writeTrace(a.Trace, t); err != nil {
			keep(fmt.Errorf("-trace: %w", err))
		}
	}
	return firstErr
}

func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC() // materialize up-to-date allocation statistics
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeTrace(path string, t *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// MustParse parses os.Args[1:] and exits with a tool-prefixed message on
// invalid flags.
func (a *App) MustParse() {
	if err := a.Parse(os.Args[1:]); err != nil {
		a.Fail(err)
	}
}

// ResolveBenchSpec expands a -bench value ("all", "quick" or a comma
// list) into workloads.
func ResolveBenchSpec(spec string) ([]*workloads.Workload, error) {
	switch spec {
	case "", "all":
		return workloads.All(), nil
	case "quick":
		spec = strings.Join(QuickSet, ",")
	}
	var out []*workloads.Workload
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		w, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty benchmark list %q", spec)
	}
	return out, nil
}

// ResolveBSASpec expands a -bsas value ("all", "none"/"" or a comma
// list) into validated BSA names against the default registry, in
// canonical order for "all".
func ResolveBSASpec(spec string) ([]string, error) {
	return ResolveBSASpecWith(bsa.Default(), spec)
}

// ResolveBSASpecWith is ResolveBSASpec against an explicit registry
// (eg. a daemon engine's restricted registry). Unknown names error with
// the registry's allowed list and a did-you-mean suggestion.
func ResolveBSASpecWith(reg *bsa.Registry, spec string) ([]string, error) {
	switch spec {
	case "all":
		return reg.Names(), nil
	case "", "none":
		return nil, nil
	}
	var out []string
	for _, n := range strings.Split(spec, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if err := reg.Check(n); err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

// checkChunkInsts validates a -chunk-insts value with did-you-mean
// guidance: 0 is the materialized whole-trace path, everything else must
// land in [trace.MinChunkInsts, trace.MaxChunkInsts].
func checkChunkInsts(n int) error {
	switch {
	case n < 0:
		return fmt.Errorf("-chunk-insts %d is negative; did you mean 0 (materialize the whole trace)?", n)
	case n > 0 && n < trace.MinChunkInsts:
		return fmt.Errorf("-chunk-insts %d is below the minimum %d; did you mean %d, or 0 to materialize the whole trace?",
			n, trace.MinChunkInsts, trace.MinChunkInsts)
	case n > trace.MaxChunkInsts:
		return fmt.Errorf("-chunk-insts %d exceeds the maximum %d; did you mean the default %d?",
			n, trace.MaxChunkInsts, trace.DefaultChunkInsts)
	}
	return nil
}

// EngineChunkInsts maps the validated -chunk-insts flag to the runner
// option encoding (flag 0 = materialized = negative option value).
func (a *App) EngineChunkInsts() int {
	if a.ChunkInsts == 0 {
		return -1
	}
	return a.ChunkInsts
}

// CoreConfig returns the validated -core config.
func (a *App) CoreConfig() cores.Config { return a.core }

// Workloads returns the validated -bench workload list.
func (a *App) Workloads() []*workloads.Workload { return a.wls }

// BSANames returns the validated -bsas list.
func (a *App) BSANames() []string { return a.bsas }

// Registry returns the model registry restricted to the -bsas list (the
// registry the tool's engine is built with).
func (a *App) Registry() *bsa.Registry { return a.reg }

// UseAmdahl reports whether -sched amdahl was selected.
func (a *App) UseAmdahl() bool { return a.Sched == "amdahl" }

// Engine returns the tool's shared evaluation engine, constructing it on
// first use. With -v, cache misses are narrated through the structured
// logger; with -trace, stage/segment/transform spans are recorded.
func (a *App) Engine() *runner.Engine {
	if a.engine == nil {
		opts := runner.Options{MaxDyn: a.MaxDyn, Workers: a.Workers,
			BSAs:           a.Registry(),
			ChunkInsts:     a.EngineChunkInsts(),
			NoSegmentCache: a.NoSegCache, NoDelta: a.NoDelta,
			Tracer: a.tracer, Log: a.Log(),
			Persist: a.persist(), Reg: a.obsReg}
		if a.Verbose {
			log := a.Log()
			opts.Progress = func(ev runner.Event) {
				if !ev.CacheHit {
					log.Info(fmt.Sprintf("%-5s %-28s %8.1fms",
						ev.Stage, ev.Key, float64(ev.Wall.Microseconds())/1000))
				}
			}
		}
		a.engine = runner.New(opts)
	}
	return a.engine
}

// Store returns the opened -store directory, or nil when no durable
// tier was requested.
func (a *App) Store() *store.Store { return a.store }

// persist adapts the optional store to the engine's Persist interface,
// keeping the interface value truly nil (not a typed nil) when -store
// is unset.
func (a *App) persist() exocore.Persist {
	if a.store == nil {
		return nil
	}
	return a.store
}

// CheckEnum validates a flag value against its allowed set, with the
// same did-you-mean guidance the BSA registry gives for -bsas. The
// flag name is included verbatim in the error.
func CheckEnum(flagName, val string, allowed ...string) error {
	for _, ok := range allowed {
		if val == ok {
			return nil
		}
	}
	msg := fmt.Sprintf("%s: unknown value %q (have %s)", flagName, val, strings.Join(allowed, ", "))
	if near := bsa.Nearest(val, allowed); near != "" {
		msg += fmt.Sprintf(" — did you mean %q?", near)
	}
	return fmt.Errorf("%s", msg)
}

// Tracer returns the -trace span tracer, or nil when tracing is off.
// Tools pass it to code paths that run outside the shared engine.
func (a *App) Tracer() *obs.Tracer { return a.tracer }

// SetTracer installs a tracer for tools that construct their own — the
// daemon's always-on flight-recorder ring, for example. An explicit
// -trace tracer wins (its spans still ride the same recorder machinery);
// call before the first Engine() use so stage spans land on it. Returns
// the active tracer.
func (a *App) SetTracer(t *obs.Tracer) *obs.Tracer {
	if a.tracer == nil {
		a.tracer = t
	}
	return a.tracer
}

// Emit writes the document to Stdout as indented JSON, attaching the
// engine metrics snapshot first (if an engine was used), and closes any
// active profiles, failing the tool if finalization errors.
func (a *App) Emit(doc *report.Document) {
	if a.engine != nil {
		m := a.engine.Metrics()
		doc.Metrics = &m
	}
	if err := a.Close(); err != nil {
		a.Fail(err)
	}
	if err := doc.Write(a.Stdout); err != nil {
		a.Fail(err)
	}
}

// Finish prints the engine metrics to stderr when -v is set and closes
// any active profiles, failing the tool if finalization errors.
// Text-mode tools call it after their report; JSON mode embeds metrics
// instead.
func (a *App) Finish() {
	closeErr := a.Close()
	if a.Verbose && a.engine != nil {
		log := a.Log()
		m := a.engine.Metrics()
		log.Info("engine metrics:")
		for _, s := range m.Stages {
			log.Info(fmt.Sprintf("  %-5s calls=%-4d hits=%-4d misses=%-4d wall=%8.1fms insts=%d",
				s.Stage, s.Calls, s.Hits, s.Misses, float64(s.WallNS)/1e6, s.Insts))
		}
		if c := m.EvalCache; c != nil {
			log.Info(fmt.Sprintf("  eval-cache hits=%-4d misses=%-4d entries=%-4d prefixes=%-4d sigs=%-4d shared=%-4d arena-reuse=%.1fMB",
				c.Hits, c.Misses, c.Entries, c.PrefixEntries, c.InternedSigs, c.SharedHits, float64(c.BytesReused)/(1<<20)))
		}
		printHistogramQuantiles(log, m.Points)
	}
	if closeErr != nil {
		a.Fail(closeErr)
	}
}

// printHistogramQuantiles renders each populated histogram instrument as
// one row of bucket-interpolated p50/p95/p99 estimates. Nanosecond
// histograms (the *_ns convention) print in milliseconds; others print
// the raw interpolated value.
func printHistogramQuantiles(log *obs.Logger, points []obs.MetricPoint) {
	for _, p := range points {
		if p.Kind != "histogram" || p.Count == 0 {
			continue
		}
		p50, p95, p99 := p.Quantile(0.50), p.Quantile(0.95), p.Quantile(0.99)
		if strings.HasSuffix(p.Name, "_ns") {
			log.Info(fmt.Sprintf("  %-26s n=%-6d p50=%9.3fms p95=%9.3fms p99=%9.3fms",
				p.Name, p.Count, p50/1e6, p95/1e6, p99/1e6))
		} else {
			log.Info(fmt.Sprintf("  %-26s n=%-6d p50=%9.0f p95=%9.0f p99=%9.0f",
				p.Name, p.Count, p50, p95, p99))
		}
	}
}

// Fail prints a tool-prefixed error and exits 1 (closing profiles first,
// since os.Exit skips deferred calls).
func (a *App) Fail(err error) {
	if cerr := a.Close(); cerr != nil {
		a.Log().Error(cerr.Error())
	}
	a.Log().Error(err.Error())
	os.Exit(1)
}
