package cli

import (
	"strings"
	"testing"

	"exocore/internal/bsa"
	"exocore/internal/runner"
	"exocore/internal/trace"
	"exocore/internal/workloads"
)

func TestParseDefaults(t *testing.T) {
	a := New("tool", "all")
	if err := a.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if a.CoreConfig().Name != "OOO2" {
		t.Errorf("default core = %s", a.CoreConfig().Name)
	}
	if got, want := len(a.Workloads()), len(workloads.All()); got != want {
		t.Errorf("default workloads = %d, want %d", got, want)
	}
	if got := a.BSANames(); len(got) != bsa.Default().Len() || got[0] != "SIMD" {
		t.Errorf("default BSAs = %v", got)
	}
	if a.UseAmdahl() {
		t.Error("default scheduler should be oracle")
	}
	if a.MaxDyn != runner.DefaultMaxDyn {
		t.Errorf("default maxdyn = %d", a.MaxDyn)
	}
}

func TestParseUnifiedFlags(t *testing.T) {
	a := New("tool", "all")
	err := a.Parse([]string{
		"-bench", "mm,cjpeg", "-core", "IO2", "-bsas", "SIMD,NS-DF",
		"-sched", "amdahl", "-json", "-v", "-maxdyn", "5000", "-workers", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Workloads()) != 2 || a.Workloads()[0].Name != "mm" {
		t.Errorf("workloads = %v", a.Workloads())
	}
	if a.CoreConfig().Name != "IO2" {
		t.Errorf("core = %s", a.CoreConfig().Name)
	}
	if got := a.BSANames(); len(got) != 2 || got[0] != "SIMD" || got[1] != "NS-DF" {
		t.Errorf("bsas = %v", got)
	}
	if !a.UseAmdahl() || !a.JSON || !a.Verbose {
		t.Error("amdahl/json/v flags not picked up")
	}
	if a.Engine().MaxDyn() != 5000 || a.Engine().Workers() != 3 {
		t.Errorf("engine budget/workers = %d/%d", a.Engine().MaxDyn(), a.Engine().Workers())
	}
}

func TestParseQuickSet(t *testing.T) {
	a := New("tool", "all")
	if err := a.Parse([]string{"-bench", "quick"}); err != nil {
		t.Fatal(err)
	}
	if got, want := len(a.Workloads()), len(QuickSet); got != want {
		t.Errorf("quick set = %d workloads, want %d", got, want)
	}
}

func TestParseRejectsInvalid(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-core", "Pentium"}, "unknown core"},
		{[]string{"-bench", "nosuchbench"}, "unknown workload"},
		{[]string{"-bsas", "GPU"}, "unknown BSA"},
		{[]string{"-sched", "magic"}, "unknown scheduler"},
		{[]string{"-chunk-insts", "-5"}, "did you mean 0 (materialize"},
		{[]string{"-chunk-insts", "100"}, "below the minimum 4096"},
		{[]string{"-chunk-insts", "536870913"}, "exceeds the maximum"},
	}
	for _, c := range cases {
		a := New("tool", "all")
		err := a.Parse(c.args)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%v) err = %v, want %q", c.args, err, c.want)
		}
	}
}

func TestResolveBSASpecNone(t *testing.T) {
	for _, spec := range []string{"", "none"} {
		got, err := ResolveBSASpec(spec)
		if err != nil || got != nil {
			t.Errorf("ResolveBSASpec(%q) = %v, %v", spec, got, err)
		}
	}
}

func TestSetMaxDynDefault(t *testing.T) {
	a := New("tool", "all")
	a.SetMaxDynDefault(40000)
	if err := a.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if a.MaxDyn != 40000 {
		t.Errorf("maxdyn = %d, want overridden default 40000", a.MaxDyn)
	}
	b := New("tool", "all")
	b.SetMaxDynDefault(40000)
	if err := b.Parse([]string{"-maxdyn", "123"}); err != nil {
		t.Fatal(err)
	}
	if b.MaxDyn != 123 {
		t.Errorf("maxdyn = %d, explicit flag must win", b.MaxDyn)
	}
}

func TestChunkInstsFlag(t *testing.T) {
	// Default: chunked streaming at trace.DefaultChunkInsts.
	a := New("tool", "all")
	if err := a.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if a.ChunkInsts != trace.DefaultChunkInsts {
		t.Errorf("default chunk-insts = %d, want %d", a.ChunkInsts, trace.DefaultChunkInsts)
	}
	if a.EngineChunkInsts() != trace.DefaultChunkInsts {
		t.Errorf("engine chunk-insts = %d, want default passthrough", a.EngineChunkInsts())
	}

	// 0 selects the materialized path (negative runner option encoding).
	b := New("tool", "all")
	if err := b.Parse([]string{"-chunk-insts", "0"}); err != nil {
		t.Fatal(err)
	}
	if b.EngineChunkInsts() >= 0 {
		t.Errorf("engine chunk-insts for flag 0 = %d, want negative (materialized)", b.EngineChunkInsts())
	}

	// Explicit in-range values pass through.
	c := New("tool", "all")
	if err := c.Parse([]string{"-chunk-insts", "8192"}); err != nil {
		t.Fatal(err)
	}
	if c.EngineChunkInsts() != 8192 {
		t.Errorf("engine chunk-insts = %d, want 8192", c.EngineChunkInsts())
	}
}

func TestEngineIsShared(t *testing.T) {
	a := New("tool", "all")
	if err := a.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if a.Engine() != a.Engine() {
		t.Error("Engine() must return the same instance")
	}
}
