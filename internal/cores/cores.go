// Package cores builds the general-purpose-processor portion of the µDG:
// the TDG_GPP,∅ constructor of the paper (Figure 4b). It models in-order
// and out-of-order pipelines of configurable width with ROB/window
// occupancy, register and memory dependences, functional-unit and cache-
// port contention, and branch-misprediction refill. The four
// configurations of Table 4 (IO2, OOO2, OOO4, OOO6) are predefined.
package cores

import (
	"exocore/internal/dg"
	"exocore/internal/energy"
	"exocore/internal/isa"
	"exocore/internal/trace"
)

// Config is a general-purpose core configuration (paper Table 4).
type Config struct {
	Name  string
	Width int // fetch/dispatch/issue/writeback width
	// ROB and Window are zero for in-order cores.
	ROB         int
	Window      int
	DCachePorts int
	IntAlu      int
	IntMulDiv   int
	FpUnits     int
	InOrder     bool
	// InFlight bounds outstanding instructions on in-order cores (the
	// scoreboard/MSHR limit); OOO cores use ROB instead.
	InFlight int
	// FrontendDepth is the pipeline refill penalty on a branch
	// misprediction, and the fetch→dispatch depth contribution.
	FrontendDepth int
	// AreaMM2 is the core area (22nm-class, McPAT-calibrated ballpark).
	AreaMM2 float64
}

// The paper's four general-core configurations (Table 4).
var (
	IO2 = Config{
		Name: "IO2", Width: 2, ROB: 0, Window: 0, DCachePorts: 1,
		IntAlu: 2, IntMulDiv: 1, FpUnits: 1, InOrder: true, InFlight: 16,
		FrontendDepth: 7, AreaMM2: 1.6,
	}
	OOO2 = Config{
		Name: "OOO2", Width: 2, ROB: 64, Window: 32, DCachePorts: 1,
		IntAlu: 2, IntMulDiv: 1, FpUnits: 1,
		FrontendDepth: 10, AreaMM2: 3.2,
	}
	OOO4 = Config{
		Name: "OOO4", Width: 4, ROB: 168, Window: 48, DCachePorts: 2,
		IntAlu: 3, IntMulDiv: 2, FpUnits: 2,
		FrontendDepth: 12, AreaMM2: 7.8,
	}
	OOO6 = Config{
		Name: "OOO6", Width: 6, ROB: 192, Window: 52, DCachePorts: 3,
		IntAlu: 4, IntMulDiv: 2, FpUnits: 3,
		FrontendDepth: 14, AreaMM2: 12.4,
	}
)

// Configs lists the four general cores in the order used by the paper.
var Configs = []Config{IO2, OOO2, OOO4, OOO6}

// ConfigByName returns the named predefined configuration.
func ConfigByName(name string) (Config, bool) {
	for _, c := range Configs {
		if c.Name == name {
			return c, true
		}
	}
	return Config{}, false
}

// EnergyParams returns the core's energy-scaling parameters.
func (c Config) EnergyParams() energy.CoreParams {
	return energy.CoreParams{
		Width: c.Width, ROB: c.ROB, Window: c.Window,
		InOrder: c.InOrder, AreaMM2: c.AreaMM2,
	}
}

// Custom returns a copy of cfg with a new name, for DSE variants.
func (c Config) Custom(name string) Config {
	c.Name = name
	return c
}

// UOp is the micro-operation unit the GPP graph constructor consumes.
// Trace instructions convert 1:1; transforms (eg. SIMD vectorization)
// synthesize new UOps that never appeared in the original trace.
type UOp struct {
	Op     isa.Op
	Dst    isa.Reg
	Src1   isa.Reg
	Src2   isa.Reg
	Addr   uint64
	MemLat uint16
	Level  trace.MemLevel
	// Mispred marks a mispredicted branch (refill penalty applies).
	Mispred bool
	// Taken marks a taken control transfer: the fetch group ends at it
	// (the target is fetched the following cycle).
	Taken bool
	// Elide suppresses regfile-write energy (used for transformed ops
	// whose result stays inside an accelerator structure).
	Elide bool
}

// FromDyn fills a UOp from a dynamic trace instruction.
func FromDyn(p *isa.Inst, d *trace.DynInst) UOp {
	return UOp{
		Op: p.Op, Dst: p.Dst, Src1: p.Src1, Src2: p.Src2,
		Addr: d.Addr, MemLat: d.MemLat, Level: d.Level,
		Mispred: d.Mispredicted(), Taken: d.Taken(),
	}
}

const histSize = 256 // power of two ≥ max ROB

// storeRec is one store-forwarding entry: the execute node of the last
// store to a word, the retire index it was recorded at, and the GPP
// generation it belongs to (entries from earlier generations are stale).
type storeRec struct {
	node dg.NodeID
	age  int32
	gen  uint32
}

// GPP incrementally constructs the core µDG over a stream of UOps. It
// persists architectural dependence state (register writers, recent store
// addresses) across accelerated regions so that core↔accelerator
// interaction edges are modeled, as the paper requires (§2.1 item 1).
type GPP struct {
	Cfg    Config
	G      *dg.Graph
	Counts *energy.Counts

	fetch    [histSize]dg.NodeID
	dispatch [histSize]dg.NodeID
	execute  [histSize]dg.NodeID
	commit   [histSize]dg.NodeID
	n        int // uops retired so far

	regDef [isa.NumRegs]dg.NodeID // complete node of last writer
	// stores maps word address → last store. Entries are tagged with a
	// generation number so Reset invalidates the whole table in O(1) (a
	// pooled GPP resets once per unit evaluation; clearing thousands of
	// buckets each time dominated Reset).
	stores storeTab
	gen    uint32

	issueRT *dg.ResourceTable
	aluRT   *dg.ResourceTable
	mulRT   *dg.ResourceTable
	fpRT    *dg.ResourceTable
	portRT  *dg.ResourceTable

	// winBuf holds the Window largest issue times so far, sorted
	// ascending in a circular buffer starting at winHead (filled
	// non-circularly until winLen reaches Window). An instruction may
	// dispatch only when fewer than Window older instructions are still
	// waiting to issue, i.e. no earlier than the Window-th largest issue
	// time seen so far — the buffer's head. Issue times are nearly
	// monotonic, so replacing the minimum is O(1) here (new maxima drop
	// straight into the freed head slot as the new tail) where the
	// min-heap this replaces paid a full sift-down per uop.
	winBuf  []int64
	winHead int
	winLen  int

	pendingRefill dg.NodeID // execute node of last mispredicted branch
	redirectF     dg.NodeID // fetch node of last taken branch (group break)
	barrier       dg.NodeID // node all subsequent fetches must follow
	// barrierSeen records whether any fetch has been ordered after the
	// current barrier yet. Only the first fetch needs the explicit edge:
	// it acquires time ≥ barrier, and every later fetch follows it
	// through the program edge (added first, so it also wins time ties
	// exactly as the redundant barrier edge would have lost them).
	barrierSeen bool
}

// NewGPP returns a constructor appending onto g, charging events to counts.
//
// The initial architectural state is the drained-pipeline boundary: every
// register reads as produced by the graph origin (time 0), so entry
// dependences of a first-segment accelerator region resolve against the
// boundary rather than vanishing.
func NewGPP(cfg Config, g *dg.Graph, counts *energy.Counts) *GPP {
	m := &GPP{
		Cfg: cfg, G: g, Counts: counts,
		gen:     1,
		issueRT: dg.NewResourceTable(cfg.Width),
		aluRT:   dg.NewResourceTable(cfg.IntAlu),
		mulRT:   dg.NewResourceTable(cfg.IntMulDiv),
		fpRT:    dg.NewResourceTable(cfg.FpUnits),
		portRT:  dg.NewResourceTable(cfg.DCachePorts),
		barrier: g.Origin(),
	}
	m.stores.init()
	if !cfg.InOrder && cfg.Window > 0 {
		m.winBuf = make([]int64, cfg.Window)
	}
	for i := range m.regDef {
		m.regDef[i] = g.Origin()
	}
	m.pendingRefill = dg.None
	// Execution begins with a redirect to the entry PC: the first fetch
	// group starts one cycle after the boundary.
	m.redirectF = g.Origin()
	return m
}

// Reset returns the GPP to its initial (drained-boundary) state on a new
// graph and energy accumulator, reusing the resource-table rings and map
// storage. The configuration is unchanged — pool GPPs per core config.
func (m *GPP) Reset(g *dg.Graph, counts *energy.Counts) {
	m.G = g
	m.Counts = counts
	m.n = 0
	m.gen++
	if m.gen == 0 { // wrapped: stale tags could collide, really clear
		m.stores.clear()
		m.gen = 1
	}
	m.issueRT.Reset()
	m.aluRT.Reset()
	m.mulRT.Reset()
	m.fpRT.Reset()
	m.portRT.Reset()
	m.winHead, m.winLen = 0, 0
	m.barrier = g.Origin()
	m.barrierSeen = false
	for i := range m.regDef {
		m.regDef[i] = g.Origin()
	}
	m.pendingRefill = dg.None
	m.redirectF = g.Origin()
}

// MemBytes reports the memory a pooled GPP lets its next user skip
// allocating: the five resource-table rings (the ~288 KB arrays the
// engine used to rebuild per evaluation).
func (m *GPP) MemBytes() int64 {
	return m.issueRT.MemBytes() + m.aluRT.MemBytes() + m.mulRT.MemBytes() +
		m.fpRT.MemBytes() + m.portRT.MemBytes()
}

func (m *GPP) hist(arr *[histSize]dg.NodeID, back int) dg.NodeID {
	if back > m.n {
		return dg.None
	}
	return arr[(m.n-back)&(histSize-1)]
}

// Retired returns the number of UOps run through the core so far.
func (m *GPP) Retired() int { return m.n }

// LastCommit returns the most recent commit node; before anything has
// committed it returns the current barrier (the drained entry boundary),
// so edges hung off it — accelerator entry transfers, configuration
// loads — anchor at the boundary instead of disappearing.
func (m *GPP) LastCommit() dg.NodeID {
	if m.n == 0 {
		return m.barrier
	}
	return m.hist(&m.commit, 1)
}

// EndTime returns the completion time of the last committed uop, or the
// barrier time if nothing has run yet.
func (m *GPP) EndTime() int64 {
	if c := m.LastCommit(); c != dg.None {
		return m.G.Time(c)
	}
	return m.G.Time(m.barrier)
}

// Barrier forces all subsequent fetches to wait for node (region handoff:
// returning from an offload accelerator, or loading a configuration).
func (m *GPP) Barrier(node dg.NodeID, class dg.EdgeClass) {
	if node == dg.None {
		return
	}
	// Model via a synthetic node so the edge class is preserved.
	b := m.G.NewNode(dg.KindAccel, -1)
	m.G.AddEdge(node, b, 0, class)
	m.G.AddEdge(m.barrier, b, 0, dg.EdgeProgram)
	m.barrier = b
	m.barrierSeen = false
}

// RegDef returns the node producing register r's current value.
func (m *GPP) RegDef(r isa.Reg) dg.NodeID {
	if !r.Valid() {
		return dg.None
	}
	return m.regDef[r]
}

// SetRegDef overrides r's producing node (accelerator live-outs).
func (m *GPP) SetRegDef(r isa.Reg, node dg.NodeID) {
	if r.Valid() && r != isa.RZ {
		m.regDef[r] = node
	}
}

// NoteStore records an accelerator-performed store so later core loads
// observe the memory dependence.
func (m *GPP) NoteStore(addr uint64, node dg.NodeID) {
	m.stores.set(addr&^7, storeRec{node: node, age: int32(m.n), gen: m.gen})
}

// LastStoreTo returns the node of the last store to addr, or None.
func (m *GPP) LastStoreTo(addr uint64) dg.NodeID {
	if rec, ok := m.stores.get(addr &^ 7); ok && rec.gen == m.gen {
		return rec.node
	}
	return dg.None
}

const storeWindow = 4096 // uops a store-forwarding entry stays visible

// CompactWindow bounds the resident µDG during long core-resident
// streams: when more than window nodes are live, everything the core can
// still reference is either inside the trailing uop history (protected
// by the live floor — the fetch node of the oldest remembered uop) or an
// architectural anchor (barrier, register definitions, store-forwarding
// entries), which are re-anchored onto fresh time-preserving pin nodes;
// all nodes below the floor are then retired via dg.Graph.Retire. Node
// times are unchanged by construction — a pin copies its target's final
// time over a zero-latency edge — so windowed evaluation is
// byte-identical to whole-trace evaluation; only peak memory changes,
// from O(trace) to O(window).
//
// Must be called only between uops of a core-resident segment, never
// while an accelerator transform holding node references is in flight
// (the exocore engine calls it on chunk boundaries of its GPP streaming
// loop).
func (m *GPP) CompactWindow(window int) {
	g := m.G
	if g.Resident() <= window {
		return
	}
	floor := dg.NodeID(g.Len()) // next id: nothing kept by the history
	back := m.n
	if back > histSize {
		back = histSize
	}
	if back > 0 {
		if f := m.hist(&m.fetch, back); f != dg.None && f < floor {
			floor = f
		}
	}
	if m.pendingRefill != dg.None && m.pendingRefill < floor {
		floor = m.pendingRefill
	}
	if m.redirectF != dg.None && m.redirectF < floor {
		floor = m.redirectF
	}
	if floor <= g.Base() {
		return
	}
	// Re-anchor architectural state below the floor. Pins allocate
	// upward from the current end of the graph, so they survive the
	// retirement they enable.
	if m.barrier < floor {
		m.barrier = m.pin(m.barrier)
	}
	lastOld, lastPin := dg.None, dg.None // most regDef entries repeat (eg. origin)
	for r := range m.regDef {
		if old := m.regDef[r]; old != dg.None && old < floor {
			if old != lastOld {
				lastOld, lastPin = old, m.pin(old)
			}
			m.regDef[r] = lastPin
		}
	}
	m.stores.repin(m.gen, floor, m.pin)
	g.Retire(floor)
}

// pin allocates a zero-latency anchor carrying old's (final) time, so
// old itself can be retired without losing the dependence time.
func (m *GPP) pin(old dg.NodeID) dg.NodeID {
	p := m.G.NewNode(dg.KindAccel, -1)
	m.G.AddEdge(old, p, 0, dg.EdgeProgram)
	return p
}

// ExecInfo exposes the key nodes of an executed UOp so accelerator
// transforms can attach interaction edges.
type ExecInfo struct {
	Exec     dg.NodeID
	Complete dg.NodeID
	Commit   dg.NodeID
}

// Exec runs one UOp through the pipeline model, creating its nodes and
// edges, booking resources and charging energy events. dynIdx tags the
// nodes for debugging (-1 for synthetic uops).
func (m *GPP) Exec(u UOp, dynIdx int32) ExecInfo {
	if m.G.Lean() {
		// Lean graphs carry no attribution state, so each stage node's
		// time is just the maximum over its incoming edges: execLean
		// computes that in registers and stores it once per node,
		// replacing roughly a dozen relax calls per uop on the hottest
		// loop in the system. Times are identical by construction; the
		// differential test pins the two paths together.
		return m.execLean(&u, dynIdx)
	}
	g := m.G
	cfg := &m.Cfg

	// All five stage nodes are allocated up front in one batched append;
	// the edge sequence below is unchanged, and since AddEdge finalizes
	// times in edge order, every node's time is still final before it is
	// first read as a predecessor.
	f := g.NewPipelineNodes(dynIdx)
	d, e, p, c := f+1, f+2, f+3, f+4

	cls := u.Op.ClassOf()

	// --- Fetch ---
	g.AddEdge(m.hist(&m.fetch, 1), f, 0, dg.EdgeProgram)
	g.AddEdge(m.hist(&m.fetch, cfg.Width), f, 1, dg.EdgeWidth)
	if !m.barrierSeen {
		g.AddEdge(m.barrier, f, 0, dg.EdgeProgram)
		m.barrierSeen = true
	}
	if m.pendingRefill != dg.None {
		g.AddEdge(m.pendingRefill, f, int64(cfg.FrontendDepth), dg.EdgeMispredict)
		m.pendingRefill = dg.None
	}
	if m.redirectF != dg.None {
		// Fetch groups cannot span a taken branch: the target comes from
		// the next fetch cycle even when correctly predicted.
		g.AddEdge(m.redirectF, f, 1, dg.EdgeWidth)
		m.redirectF = dg.None
	}

	// --- Dispatch ---
	g.AddEdge(f, d, 2, dg.EdgePipe) // decode (+rename) depth
	g.AddEdge(m.hist(&m.dispatch, 1), d, 0, dg.EdgeProgram)
	g.AddEdge(m.hist(&m.dispatch, cfg.Width), d, 1, dg.EdgeWidth)
	if !cfg.InOrder && cfg.ROB > 0 {
		g.AddEdge(m.hist(&m.commit, cfg.ROB), d, 1, dg.EdgeROB)
	}
	if cfg.InOrder && cfg.InFlight > 0 {
		g.AddEdge(m.hist(&m.commit, cfg.InFlight), d, 1, dg.EdgeROB)
	}
	if !cfg.InOrder && cfg.Window > 0 && m.winLen >= cfg.Window {
		// Issue-window occupancy: a slot frees when the oldest of the
		// Window latest-issuing instructions issues.
		g.PushTime(d, m.winBuf[m.winHead], dg.EdgeWindow)
	}

	// --- Execute ---
	g.AddEdge(d, e, 1, dg.EdgePipe)
	if cfg.InOrder {
		g.AddEdge(m.hist(&m.execute, 1), e, 0, dg.EdgeInOrder)
	}
	// Register data dependences.
	if u.Src1.Valid() && u.Src1 != isa.RZ {
		g.AddEdge(m.regDef[u.Src1], e, 0, dg.EdgeData)
	}
	if u.Src2.Valid() && u.Src2 != isa.RZ {
		g.AddEdge(m.regDef[u.Src2], e, 0, dg.EdgeData)
	}
	// FMA reads its accumulator (dst) too.
	if u.Op == isa.FMA && u.Dst.Valid() {
		g.AddEdge(m.regDef[u.Dst], e, 0, dg.EdgeData)
	}
	// Memory dependence: load after store to the same word.
	if u.Op.IsLoad() {
		if rec, ok := m.stores.get(u.Addr &^ 7); ok && rec.gen == m.gen && m.n-int(rec.age) < storeWindow {
			g.AddEdge(rec.node, e, 2, dg.EdgeMemDep) // store-to-load forward
		}
	}

	// Resource booking (in instruction order — paper §2.7).
	ready := g.Time(e)
	issued := m.issueRT.Book(ready)
	g.PushTime(e, issued, dg.EdgeWidth)
	var rt *dg.ResourceTable
	switch cls {
	case isa.ClassIntAlu:
		rt = m.aluRT
	case isa.ClassIntMul, isa.ClassIntDiv:
		rt = m.mulRT
	case isa.ClassFpAdd, isa.ClassFpMul, isa.ClassFpDiv:
		rt = m.fpRT
	case isa.ClassVecAlu, isa.ClassVecMul:
		rt = m.fpRT // vector ops share the FP/SIMD datapath
	case isa.ClassLoad, isa.ClassStore, isa.ClassVecMem:
		rt = m.portRT
	}
	if rt != nil {
		var when int64
		switch {
		case cls == isa.ClassIntDiv || cls == isa.ClassFpDiv:
			when = rt.BookFor(g.Time(e), int64(u.Op.Latency())) // unpipelined divide
		case u.Op.IsVec() && !u.Op.IsMem():
			// A 256-bit vector op occupies the FP/SIMD datapath for two
			// slots (issue-port pressure of wide operations).
			when = rt.BookFor(g.Time(e), 2)
		default:
			when = rt.Book(g.Time(e))
		}
		cls := dg.EdgeFU
		if u.Op.IsMem() {
			cls = dg.EdgeCachePort
		}
		g.PushTime(e, when, cls)
	}

	// --- Complete ---
	lat := int64(u.Op.Latency())
	if u.Op.IsMem() {
		lat = int64(u.MemLat)
		if u.Op.IsStore() {
			lat = 1 // stores complete into the store queue
		}
	}
	if lat < 1 {
		lat = 1
	}
	g.AddEdge(e, p, lat, dg.EdgeExec)

	// --- Commit ---
	g.AddEdge(p, c, 1, dg.EdgeCommit)
	g.AddEdge(m.hist(&m.commit, 1), c, 0, dg.EdgeProgram)
	g.AddEdge(m.hist(&m.commit, cfg.Width), c, 1, dg.EdgeWidth)

	return m.finish(&u, cls, f, d, e, p, c)
}

// execLean is Exec for lean graphs: identical edge set and booking
// order, but each stage time is accumulated in a register and written
// once. A None source contributes nothing (mirroring AddEdge's guard).
func (m *GPP) execLean(u *UOp, dynIdx int32) ExecInfo {
	g := m.G
	cfg := &m.Cfg

	f := g.NewPipelineNodes(dynIdx)
	d, e, p, c := f+1, f+2, f+3, f+4

	cls := u.Op.ClassOf()

	// --- Fetch ---
	var tf int64
	if n := m.hist(&m.fetch, 1); n != dg.None {
		tf = g.Time(n)
	}
	if n := m.hist(&m.fetch, cfg.Width); n != dg.None {
		if t := g.Time(n) + 1; t > tf {
			tf = t
		}
	}
	if !m.barrierSeen {
		if m.barrier != dg.None {
			if t := g.Time(m.barrier); t > tf {
				tf = t
			}
		}
		m.barrierSeen = true
	}
	if m.pendingRefill != dg.None {
		if t := g.Time(m.pendingRefill) + int64(cfg.FrontendDepth); t > tf {
			tf = t
		}
		m.pendingRefill = dg.None
	}
	if m.redirectF != dg.None {
		if t := g.Time(m.redirectF) + 1; t > tf {
			tf = t
		}
		m.redirectF = dg.None
	}
	g.SetTime(f, tf)

	// --- Dispatch ---
	td := tf + 2
	if n := m.hist(&m.dispatch, 1); n != dg.None {
		if t := g.Time(n); t > td {
			td = t
		}
	}
	if n := m.hist(&m.dispatch, cfg.Width); n != dg.None {
		if t := g.Time(n) + 1; t > td {
			td = t
		}
	}
	if !cfg.InOrder && cfg.ROB > 0 {
		if n := m.hist(&m.commit, cfg.ROB); n != dg.None {
			if t := g.Time(n) + 1; t > td {
				td = t
			}
		}
	}
	if cfg.InOrder && cfg.InFlight > 0 {
		if n := m.hist(&m.commit, cfg.InFlight); n != dg.None {
			if t := g.Time(n) + 1; t > td {
				td = t
			}
		}
	}
	if !cfg.InOrder && cfg.Window > 0 && m.winLen >= cfg.Window {
		if t := m.winBuf[m.winHead]; t > td {
			td = t
		}
	}
	g.SetTime(d, td)

	// --- Execute ---
	te := td + 1
	if cfg.InOrder {
		if n := m.hist(&m.execute, 1); n != dg.None {
			if t := g.Time(n); t > te {
				te = t
			}
		}
	}
	if u.Src1.Valid() && u.Src1 != isa.RZ {
		if n := m.regDef[u.Src1]; n != dg.None {
			if t := g.Time(n); t > te {
				te = t
			}
		}
	}
	if u.Src2.Valid() && u.Src2 != isa.RZ {
		if n := m.regDef[u.Src2]; n != dg.None {
			if t := g.Time(n); t > te {
				te = t
			}
		}
	}
	if u.Op == isa.FMA && u.Dst.Valid() {
		if n := m.regDef[u.Dst]; n != dg.None {
			if t := g.Time(n); t > te {
				te = t
			}
		}
	}
	if u.Op.IsLoad() {
		if rec, ok := m.stores.get(u.Addr &^ 7); ok && rec.gen == m.gen && m.n-int(rec.age) < storeWindow {
			if t := g.Time(rec.node) + 2; t > te {
				te = t
			}
		}
	}
	if t := m.issueRT.Book(te); t > te {
		te = t
	}
	var rt *dg.ResourceTable
	switch cls {
	case isa.ClassIntAlu:
		rt = m.aluRT
	case isa.ClassIntMul, isa.ClassIntDiv:
		rt = m.mulRT
	case isa.ClassFpAdd, isa.ClassFpMul, isa.ClassFpDiv:
		rt = m.fpRT
	case isa.ClassVecAlu, isa.ClassVecMul:
		rt = m.fpRT
	case isa.ClassLoad, isa.ClassStore, isa.ClassVecMem:
		rt = m.portRT
	}
	if rt != nil {
		var when int64
		switch {
		case cls == isa.ClassIntDiv || cls == isa.ClassFpDiv:
			when = rt.BookFor(te, int64(u.Op.Latency()))
		case u.Op.IsVec() && !u.Op.IsMem():
			when = rt.BookFor(te, 2)
		default:
			when = rt.Book(te)
		}
		if when > te {
			te = when
		}
	}
	g.SetTime(e, te)

	// --- Complete ---
	lat := int64(u.Op.Latency())
	if u.Op.IsMem() {
		lat = int64(u.MemLat)
		if u.Op.IsStore() {
			lat = 1
		}
	}
	if lat < 1 {
		lat = 1
	}
	tp := te + lat
	g.SetTime(p, tp)

	// --- Commit ---
	tc := tp + 1
	if n := m.hist(&m.commit, 1); n != dg.None {
		if t := g.Time(n); t > tc {
			tc = t
		}
	}
	if n := m.hist(&m.commit, cfg.Width); n != dg.None {
		if t := g.Time(n) + 1; t > tc {
			tc = t
		}
	}
	g.SetTime(c, tc)

	return m.finish(u, cls, f, d, e, p, c)
}

// finish applies the mode-independent tail of one Exec: architectural
// state updates, window bookkeeping, energy and history advance.
func (m *GPP) finish(u *UOp, cls isa.Class, f, d, e, p, c dg.NodeID) ExecInfo {
	g := m.G
	cfg := &m.Cfg

	// Architectural state updates.
	if u.Dst.Valid() && u.Dst != isa.RZ {
		m.regDef[u.Dst] = p
	}
	if u.Op.IsStore() {
		m.stores.set(u.Addr&^7, storeRec{node: e, age: int32(m.n), gen: m.gen})
		if m.stores.used > 2*storeWindow {
			m.pruneStores()
		}
	}
	if u.Op.IsBranch() && u.Mispred {
		m.pendingRefill = e
	}
	if u.Op.IsCtrl() && u.Taken {
		m.redirectF = f
	}

	// Window bookkeeping: keep the Window largest issue times.
	if !cfg.InOrder && cfg.Window > 0 {
		et := g.Time(e)
		if m.winLen < cfg.Window {
			m.winGrow(et)
		} else if et > m.winBuf[m.winHead] {
			m.winReplaceMin(et)
		}
	}

	// Energy accounting.
	m.charge(u, cls)

	// Advance history.
	idx := m.n & (histSize - 1)
	m.fetch[idx] = f
	m.dispatch[idx] = d
	m.execute[idx] = e
	m.commit[idx] = c
	m.n++
	return ExecInfo{Exec: e, Complete: p, Commit: c}
}

// winGrow inserts v into the not-yet-full buffer, kept sorted ascending
// at winBuf[0:winLen] (winHead is 0 during the fill phase).
func (m *GPP) winGrow(v int64) {
	b := m.winBuf
	i := m.winLen
	for i > 0 && b[i-1] > v {
		b[i] = b[i-1]
		i--
	}
	b[i] = v
	m.winLen++
}

// winReplaceMin evicts the buffer's minimum (the head slot) and inserts
// v > min, scanning backward from the tail: the common near-monotonic
// case (v is a new maximum) writes v straight into the freed head slot
// as the new tail with zero data movement.
func (m *GPP) winReplaceMin(v int64) {
	b := m.winBuf
	n := len(b)
	dst := m.winHead // freed slot becomes the new tail slot
	m.winHead++
	if m.winHead == n {
		m.winHead = 0
	}
	src := dst - 1 // current tail
	if src < 0 {
		src = n - 1
	}
	for k := 1; k < n && b[src] > v; k++ {
		b[dst] = b[src]
		dst = src
		src--
		if src < 0 {
			src = n - 1
		}
	}
	b[dst] = v
}

func (m *GPP) pruneStores() {
	m.stores.prune(m.gen, m.n)
}

// storeTab is an open-addressed, linear-probe map from word address to
// storeRec, replacing the built-in map on the Exec hot path (hashing and
// bucket probing there was a top-five cost of a DSE sweep). Occupied
// slots key on addr|1 — word addresses have their low three bits clear,
// so 0 safely marks an empty slot whatever the address.
type storeTab struct {
	keys []uint64
	recs []storeRec
	used int // occupied slots, including generation-stale entries
	mask uint64
}

const storeTabInitSize = 1024 // power of two; grows to keep load < 1/2

func (t *storeTab) init() {
	t.keys = make([]uint64, storeTabInitSize)
	t.recs = make([]storeRec, storeTabInitSize)
	t.mask = storeTabInitSize - 1
	t.used = 0
}

func (t *storeTab) clear() {
	clear(t.keys)
	t.used = 0
}

func (t *storeTab) slotOf(addr uint64) uint64 {
	return (addr * 0x9E3779B97F4A7C15) >> 17 & t.mask
}

func (t *storeTab) get(addr uint64) (storeRec, bool) {
	k := addr | 1
	for i := t.slotOf(addr); ; i = (i + 1) & t.mask {
		switch t.keys[i] {
		case k:
			return t.recs[i], true
		case 0:
			return storeRec{}, false
		}
	}
}

func (t *storeTab) set(addr uint64, rec storeRec) {
	if 2*(t.used+1) > len(t.keys) {
		t.grow()
	}
	k := addr | 1
	for i := t.slotOf(addr); ; i = (i + 1) & t.mask {
		switch t.keys[i] {
		case k:
			t.recs[i] = rec
			return
		case 0:
			t.keys[i] = k
			t.recs[i] = rec
			t.used++
			return
		}
	}
}

// grow doubles the table, rehashing every entry.
func (t *storeTab) grow() {
	ok, or := t.keys, t.recs
	n := 2 * len(ok)
	t.keys = make([]uint64, n)
	t.recs = make([]storeRec, n)
	t.mask = uint64(n - 1)
	for i, k := range ok {
		if k != 0 {
			for j := t.slotOf(k &^ 1); ; j = (j + 1) & t.mask {
				if t.keys[j] == 0 {
					t.keys[j], t.recs[j] = k, or[i]
					break
				}
			}
		}
	}
}

// prune rebuilds the table keeping only live entries: current
// generation and within the store-forwarding age window.
func (t *storeTab) prune(gen uint32, n int) {
	ok, or := t.keys, t.recs
	t.keys = make([]uint64, len(ok))
	t.recs = make([]storeRec, len(or))
	t.used = 0
	for i, k := range ok {
		if k == 0 {
			continue
		}
		rec := or[i]
		if rec.gen != gen || n-int(rec.age) >= storeWindow {
			continue
		}
		for j := t.slotOf(k &^ 1); ; j = (j + 1) & t.mask {
			if t.keys[j] == 0 {
				t.keys[j], t.recs[j] = k, rec
				t.used++
				break
			}
		}
	}
}

func (m *GPP) charge(u *UOp, cls isa.Class) {
	c := m.Counts
	c.Add(energy.EvFetch, 1)
	c.Add(energy.EvDecode, 1)
	c.Add(energy.EvCommit, 1)
	if !m.Cfg.InOrder {
		c.Add(energy.EvRename, 1)
		c.Add(energy.EvIssueWakeup, 1)
		c.Add(energy.EvROB, 1)
	} else {
		c.Add(energy.EvIssueWakeup, 1)
	}
	if u.Src1.Valid() {
		c.Add(energy.EvRegRead, 1)
	}
	if u.Src2.Valid() {
		c.Add(energy.EvRegRead, 1)
	}
	if u.Dst.Valid() && !u.Elide {
		c.Add(energy.EvRegWrite, 1)
	}
	switch cls {
	case isa.ClassIntAlu:
		c.Add(energy.EvIntAluOp, 1)
	case isa.ClassIntMul:
		c.Add(energy.EvIntMulOp, 1)
	case isa.ClassIntDiv:
		c.Add(energy.EvIntDivOp, 1)
	case isa.ClassFpAdd:
		c.Add(energy.EvFpAddOp, 1)
	case isa.ClassFpMul:
		c.Add(energy.EvFpMulOp, 1)
	case isa.ClassFpDiv:
		c.Add(energy.EvFpDivOp, 1)
	case isa.ClassBranch, isa.ClassJump:
		c.Add(energy.EvIntAluOp, 1)
		c.Add(energy.EvBpred, 1)
	case isa.ClassVecAlu, isa.ClassVecMul:
		c.Add(energy.EvVecOp, 1)
	}
	if u.Op.IsMem() {
		c.Add(energy.EvLSQ, 1)
		if u.Op.IsVec() {
			c.Add(energy.EvVecMemOp, 1)
		} else {
			c.Add(energy.EvL1Access, 1)
		}
		switch u.Level {
		case trace.LevelL2:
			c.Add(energy.EvL2Access, 1)
		case trace.LevelMem:
			c.Add(energy.EvL2Access, 1)
			c.Add(energy.EvMemAccess, 1)
		}
	}
}

// repin redirects every live (current-generation) entry whose node falls
// below the compaction floor onto a time-preserving pin node, so
// CompactWindow can retire the original while LastStoreTo and the
// store-forwarding lookup keep returning the exact same times.
func (t *storeTab) repin(gen uint32, floor dg.NodeID, pin func(dg.NodeID) dg.NodeID) {
	for i, k := range t.keys {
		if k == 0 {
			continue
		}
		rec := &t.recs[i]
		if rec.gen == gen && rec.node != dg.None && rec.node < floor {
			rec.node = pin(rec.node)
		}
	}
}
