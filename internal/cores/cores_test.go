package cores

import (
	"exocore/internal/dg"
	"exocore/internal/energy"
	"testing"

	"exocore/internal/bpred"
	"exocore/internal/cache"
	"exocore/internal/isa"
	"exocore/internal/prog"
	"exocore/internal/sim"
	"exocore/internal/trace"
)

// buildTrace assembles, runs and annotates a kernel.
func buildTrace(t *testing.T, p *prog.Program, prep func(*sim.State)) *trace.Trace {
	t.Helper()
	st := sim.NewState()
	if prep != nil {
		prep(st)
	}
	tr, err := sim.Run(p, st, sim.Config{MaxDyn: 50000})
	if err != nil {
		t.Fatal(err)
	}
	cache.DefaultHierarchy().Annotate(tr)
	bpred.New(bpred.DefaultConfig()).Annotate(tr)
	return tr
}

// serialChain: long dependent chain — no ILP.
func serialChain(n int64) *prog.Program {
	b := prog.NewBuilder("serial")
	b.MovI(isa.R(1), n)
	b.Label("loop")
	b.Mul(isa.R(2), isa.R(2), isa.R(2)) // self-dependent
	b.Mul(isa.R(2), isa.R(2), isa.R(2))
	b.SubI(isa.R(1), isa.R(1), 1)
	b.Bne(isa.R(1), isa.RZ, "loop")
	return b.MustBuild()
}

// parallelOps: independent operations — lots of ILP.
func parallelOps(n int64) *prog.Program {
	b := prog.NewBuilder("parallel")
	b.MovI(isa.R(1), n)
	b.Label("loop")
	for i := 2; i < 10; i++ {
		b.AddI(isa.R(i), isa.R(i), 1)
	}
	b.SubI(isa.R(1), isa.R(1), 1)
	b.Bne(isa.R(1), isa.RZ, "loop")
	return b.MustBuild()
}

func TestConfigsTable4(t *testing.T) {
	if len(Configs) != 4 {
		t.Fatalf("want 4 core configs")
	}
	if IO2.Width != 2 || !IO2.InOrder || IO2.ROB != 0 {
		t.Error("IO2 config wrong")
	}
	if OOO2.ROB != 64 || OOO2.Window != 32 || OOO2.DCachePorts != 1 {
		t.Error("OOO2 config wrong")
	}
	if OOO4.ROB != 168 || OOO4.Window != 48 || OOO4.DCachePorts != 2 {
		t.Error("OOO4 config wrong")
	}
	if OOO6.ROB != 192 || OOO6.Window != 52 || OOO6.DCachePorts != 3 {
		t.Error("OOO6 config wrong")
	}
	if c, ok := ConfigByName("OOO4"); !ok || c.Name != "OOO4" {
		t.Error("ConfigByName failed")
	}
	if _, ok := ConfigByName("bogus"); ok {
		t.Error("bogus config found")
	}
}

func TestWiderCoreFasterOnILP(t *testing.T) {
	tr := buildTrace(t, parallelOps(2000), nil)
	c2, _ := Evaluate(OOO2, tr)
	c6, _ := Evaluate(OOO6, tr)
	if c6 >= c2 {
		t.Errorf("OOO6 (%d cyc) should beat OOO2 (%d cyc) on parallel code", c6, c2)
	}
	speedup := float64(c2) / float64(c6)
	if speedup < 1.5 {
		t.Errorf("speedup = %.2f, want >= 1.5 on highly parallel code", speedup)
	}
}

func TestSerialCodeInsensitiveToWidth(t *testing.T) {
	tr := buildTrace(t, serialChain(2000), nil)
	c2, _ := Evaluate(OOO2, tr)
	c6, _ := Evaluate(OOO6, tr)
	ratio := float64(c2) / float64(c6)
	if ratio > 1.25 {
		t.Errorf("width speedup on serial chain = %.2f, want ~1 (chain-bound)", ratio)
	}
}

func TestOOOBeatsInOrder(t *testing.T) {
	// Loads with long latency hide under OOO, stall in-order.
	b := prog.NewBuilder("memlat")
	b.MovI(isa.R(1), 500)
	b.MovI(isa.R(2), 0x10000)
	b.Label("loop")
	b.Ld(isa.R(3), isa.R(2), 0)
	b.AddI(isa.R(4), isa.R(4), 1)
	b.AddI(isa.R(5), isa.R(5), 1)
	b.AddI(isa.R(2), isa.R(2), 512) // new line + L1-set pressure
	b.SubI(isa.R(1), isa.R(1), 1)
	b.Bne(isa.R(1), isa.RZ, "loop")
	tr := buildTrace(t, b.MustBuild(), nil)
	cIO, _ := Evaluate(IO2, tr)
	cOOO, _ := Evaluate(OOO2, tr)
	if cOOO >= cIO {
		t.Errorf("OOO2 (%d) should beat IO2 (%d) with long-latency loads", cOOO, cIO)
	}
}

func TestIPCBounds(t *testing.T) {
	tr := buildTrace(t, parallelOps(2000), nil)
	for _, cfg := range Configs {
		cycles, _ := Evaluate(cfg, tr)
		ipc := float64(tr.Len()) / float64(cycles)
		if ipc <= 0 || ipc > float64(cfg.Width) {
			t.Errorf("%s: IPC = %.2f out of (0, width=%d]", cfg.Name, ipc, cfg.Width)
		}
	}
}

func TestMispredictsSlowExecution(t *testing.T) {
	tr := buildTrace(t, parallelOps(2000), nil)
	// Artificially mark every 10th branch mispredicted.
	trBad := &trace.Trace{Prog: tr.Prog, Insts: append([]trace.DynInst(nil), tr.Insts...)}
	nb := 0
	for i := range trBad.Insts {
		if trBad.Prog.Insts[trBad.Insts[i].SI].Op.IsBranch() {
			nb++
			if nb%10 == 0 {
				trBad.Insts[i].Flags |= trace.FlagMispred
			}
		}
	}
	cGood, _ := Evaluate(OOO4, tr)
	cBad, _ := Evaluate(OOO4, trBad)
	if cBad <= cGood {
		t.Errorf("mispredictions must slow execution: %d vs %d", cBad, cGood)
	}
}

func TestMemLatencyMatters(t *testing.T) {
	p := parallelOps(10)
	tr := buildTrace(t, p, nil)
	slow := &trace.Trace{Prog: tr.Prog, Insts: append([]trace.DynInst(nil), tr.Insts...)}
	// No memory ops in this kernel; instead check store→load dependence.
	_ = slow

	b := prog.NewBuilder("st-ld")
	b.MovI(isa.R(1), 0x1000)
	b.MovI(isa.R(2), 7)
	b.St(isa.R(2), isa.R(1), 0)
	b.Ld(isa.R(3), isa.R(1), 0)
	b.Add(isa.R(4), isa.R(3), isa.R(2))
	tr2 := buildTrace(t, b.MustBuild(), nil)
	cycles, _ := Evaluate(OOO2, tr2)
	if cycles < 5 {
		t.Errorf("store→load chain finished implausibly fast: %d cycles", cycles)
	}
}

func TestEnergyCountsPlausible(t *testing.T) {
	tr := buildTrace(t, parallelOps(1000), nil)
	_, counts := Evaluate(OOO2, tr)
	n := int64(tr.Len())
	if counts.Total() == 0 {
		t.Fatal("no energy events recorded")
	}
	// Every instruction fetches, decodes, commits.
	for _, e := range []struct {
		name string
		got  int64
	}{{"fetch", counts[0]}, {"decode", counts[1]}} {
		if e.got != n {
			t.Errorf("%s events = %d, want %d", e.name, e.got, n)
		}
	}
}

func TestInOrderNoRenameEnergy(t *testing.T) {
	tr := buildTrace(t, parallelOps(100), nil)
	_, counts := Evaluate(IO2, tr)
	if counts[2] != 0 { // EvRename
		t.Errorf("in-order core recorded %d rename events", counts[2])
	}
}

func TestBarrierDelaysFetch(t *testing.T) {
	tr := buildTrace(t, parallelOps(100), nil)
	// Baseline.
	c0, _ := Evaluate(OOO2, tr)

	// Same but with a big barrier inserted at the start.
	gBase := newEvalGraph()
	var counts2 [1]int // placeholder to keep structure clear
	_ = counts2
	_ = gBase
	g := newEvalGraph()
	m := NewGPP(OOO2, g.g, g.counts)
	far := g.g.NewNode(0, -1)
	g.g.AddEdge(g.g.Origin(), far, 10000, 0)
	m.Barrier(far, 0)
	for i := range tr.Insts {
		d := &tr.Insts[i]
		m.Exec(FromDyn(&tr.Prog.Insts[d.SI], d), int32(i))
	}
	if m.EndTime() < 10000+c0/2 {
		t.Errorf("barrier ignored: end=%d base=%d", m.EndTime(), c0)
	}
}

func TestRegDefHandoff(t *testing.T) {
	g := newEvalGraph()
	m := NewGPP(OOO2, g.g, g.counts)
	// Accelerator produced r5 at t=500.
	prod := g.g.NewNode(0, -1)
	g.g.AddEdge(g.g.Origin(), prod, 500, 0)
	m.SetRegDef(isa.R(5), prod)
	if m.RegDef(isa.R(5)) != prod {
		t.Fatal("SetRegDef/RegDef roundtrip failed")
	}
	// A uop consuming r5 cannot execute before 500.
	m.Exec(UOp{Op: isa.Add, Dst: isa.R(6), Src1: isa.R(5), Src2: isa.R(5)}, 0)
	if m.EndTime() < 500 {
		t.Errorf("consumer committed at %d, before producer at 500", m.EndTime())
	}
}

func TestNoteStoreCreatesDependence(t *testing.T) {
	g := newEvalGraph()
	m := NewGPP(OOO2, g.g, g.counts)
	st := g.g.NewNode(0, -1)
	g.g.AddEdge(g.g.Origin(), st, 700, 0)
	m.NoteStore(0x2000, st)
	if m.LastStoreTo(0x2000) != st {
		t.Fatal("LastStoreTo lost the store")
	}
	m.Exec(UOp{Op: isa.Ld, Dst: isa.R(1), Src1: isa.RZ, Addr: 0x2000, MemLat: 4}, 0)
	if m.EndTime() < 700 {
		t.Errorf("load committed at %d, before store at 700", m.EndTime())
	}
}

// evalGraph bundles a graph and counts for tests.
type evalGraph struct {
	g      *dg.Graph
	counts *energy.Counts
}

func newEvalGraph() evalGraph {
	return evalGraph{g: dg.NewGraph(), counts: &energy.Counts{}}
}

func TestTakenBranchBreaksFetchGroup(t *testing.T) {
	// A tight taken-branch loop cannot sustain more than
	// (body length)/(ceil(body/width)+...) IPC on a wide core: compare a
	// 4-instruction loop on OOO6 with and without the Taken flag.
	g1 := newEvalGraph()
	m1 := NewGPP(OOO6, g1.g, g1.counts)
	g2 := newEvalGraph()
	m2 := NewGPP(OOO6, g2.g, g2.counts)
	for i := 0; i < 400; i++ {
		for k := 0; k < 3; k++ {
			// Independent work: only the frontend limits throughput.
			u := UOp{Op: isa.AddI, Dst: isa.R(2 + k), Src1: isa.RZ}
			m1.Exec(u, int32(i))
			m2.Exec(u, int32(i))
		}
		br := UOp{Op: isa.Bne, Src1: isa.R(2), Src2: isa.RZ, Dst: isa.NoReg}
		brTaken := br
		brTaken.Taken = true
		m1.Exec(brTaken, int32(i))
		m2.Exec(br, int32(i))
	}
	if m1.EndTime() <= m2.EndTime() {
		t.Errorf("taken-branch group break had no cost: %d vs %d",
			m1.EndTime(), m2.EndTime())
	}
}

func TestWindowOccupancyBound(t *testing.T) {
	// One very long latency op followed by many independent ops: the
	// window must NOT serialize on the laggard (the old E_{i-W} bug), but
	// a tiny window must still throttle.
	run := func(window int, dependent bool) int64 {
		g := newEvalGraph()
		cfg := OOO4
		cfg.Window = window
		m := NewGPP(cfg, g.g, g.counts)
		// Laggard: load with a huge latency.
		m.Exec(UOp{Op: isa.Ld, Dst: isa.R(1), Src1: isa.RZ, Addr: 64, MemLat: 400}, 0)
		for i := 0; i < 200; i++ {
			src := isa.RZ
			if dependent {
				src = isa.R(1) // every op waits on the load in the window
			}
			m.Exec(UOp{Op: isa.AddI, Dst: isa.R(2 + i%8), Src1: src}, int32(i+1))
		}
		return m.EndTime()
	}
	// Independent work behind one laggard: the window must NOT serialize
	// on it (the E_{i-W} approximation this model replaced would give
	// hundreds of extra cycles).
	if got := run(48, false); got > 700 {
		t.Errorf("window serialized on a single laggard: %d cycles", got)
	}
	// Dependent work fills the window: a tiny window must dispatch-stall
	// at least as much as a big one.
	if small, big := run(2, true), run(48, true); small < big {
		t.Errorf("tiny window outperformed big window: %d vs %d", small, big)
	}
}

func TestInFlightLimitsInOrderMLP(t *testing.T) {
	run := func(inflight int) int64 {
		g := newEvalGraph()
		cfg := IO2
		cfg.InFlight = inflight
		m := NewGPP(cfg, g.g, g.counts)
		for i := 0; i < 64; i++ {
			m.Exec(UOp{Op: isa.Ld, Dst: isa.R(1 + i%4), Src1: isa.RZ,
				Addr: uint64(i * 64), MemLat: 100}, int32(i))
		}
		return m.EndTime()
	}
	if run(4) <= run(32) {
		t.Error("smaller in-flight limit should reduce memory parallelism")
	}
}

// memMix: loads, stores, branches and long-latency ops with enough
// register pressure to exercise every edge source in Exec.
func memMix(n int64) *prog.Program {
	b := prog.NewBuilder("memmix")
	b.MovI(isa.R(1), n)
	b.MovI(isa.R(9), 0x1000)
	b.Label("loop")
	b.Ld(isa.R(2), isa.R(9), 0)
	b.Mul(isa.R(3), isa.R(2), isa.R(2))
	b.Div(isa.R(4), isa.R(3), isa.R(2))
	b.St(isa.R(9), isa.R(4), 8)
	b.AddI(isa.R(9), isa.R(9), 16)
	b.SubI(isa.R(1), isa.R(1), 1)
	b.Bne(isa.R(1), isa.RZ, "loop")
	return b.MustBuild()
}

// TestLeanExecTimesIdentical pins the lean fast path in Exec to the
// attribution (AddEdge) path: the same uop stream through both graph
// modes must produce bit-identical stage times for every instruction,
// on every core config.
func TestLeanExecTimesIdentical(t *testing.T) {
	for _, prg := range []*prog.Program{serialChain(300), parallelOps(300), memMix(300)} {
		tr := buildTrace(t, prg, nil)
		for _, cfg := range Configs {
			ga := dg.NewGraph()
			gl := dg.NewGraph()
			gl.ResetMode(true)
			var ca, cl energy.Counts
			ma := NewGPP(cfg, ga, &ca)
			ml := NewGPP(cfg, gl, &cl)
			for i := range tr.Insts {
				d := &tr.Insts[i]
				u := FromDyn(&tr.Prog.Insts[d.SI], d)
				ia := ma.Exec(u, int32(i))
				il := ml.Exec(u, int32(i))
				if ga.Time(ia.Exec) != gl.Time(il.Exec) ||
					ga.Time(ia.Complete) != gl.Time(il.Complete) ||
					ga.Time(ia.Commit) != gl.Time(il.Commit) {
					t.Fatalf("%s/%s uop %d: attrib times (%d,%d,%d) != lean (%d,%d,%d)",
						prg.Name, cfg.Name, i,
						ga.Time(ia.Exec), ga.Time(ia.Complete), ga.Time(ia.Commit),
						gl.Time(il.Exec), gl.Time(il.Complete), gl.Time(il.Commit))
				}
			}
			if ma.EndTime() != ml.EndTime() {
				t.Fatalf("%s/%s: end time %d != %d", prg.Name, cfg.Name, ma.EndTime(), ml.EndTime())
			}
			if ca != cl {
				t.Fatalf("%s/%s: energy counts diverge", prg.Name, cfg.Name)
			}
		}
	}
}
