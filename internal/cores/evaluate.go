package cores

import (
	"exocore/internal/dg"
	"exocore/internal/energy"
	"exocore/internal/trace"
)

// graphHint pre-sizes a µDG for a trace: five pipeline-event nodes per
// dynamic instruction plus origin and synthetic-node slack.
func graphHint(insts int) int { return 5*insts + 64 }

// Evaluate runs an entire trace through the GPP graph constructor with no
// accelerators (TDG_GPP,∅) and returns cycles and energy event counts.
// This is the baseline evaluation every speedup in the paper is relative
// to.
func Evaluate(cfg Config, tr *trace.Trace) (int64, energy.Counts) {
	g := dg.NewGraphN(graphHint(len(tr.Insts)))
	var counts energy.Counts
	m := NewGPP(cfg, g, &counts)
	for i := range tr.Insts {
		d := &tr.Insts[i]
		m.Exec(FromDyn(&tr.Prog.Insts[d.SI], d), int32(i))
	}
	return m.EndTime(), counts
}

// EvaluateWithBreakdown additionally returns the critical-path stall
// breakdown by edge class, the paper's recommended validation aid.
func EvaluateWithBreakdown(cfg Config, tr *trace.Trace) (int64, energy.Counts, [dg.NumEdgeClasses]int64) {
	g := dg.NewGraphN(graphHint(len(tr.Insts)))
	var counts energy.Counts
	m := NewGPP(cfg, g, &counts)
	for i := range tr.Insts {
		d := &tr.Insts[i]
		m.Exec(FromDyn(&tr.Prog.Insts[d.SI], d), int32(i))
	}
	var bd [dg.NumEdgeClasses]int64
	if c := m.LastCommit(); c != dg.None {
		bd = g.CriticalPathBreakdown(c)
	}
	return m.EndTime(), counts, bd
}
