// Package dg implements the microarchitectural dependence graph (µDG) at
// the heart of the Transformable Dependence Graph methodology (paper §2).
// Nodes are microarchitectural events of dynamic instructions (fetch,
// dispatch, execute, complete, commit — Figure 4); edges are dependences
// that enforce architectural constraints (pipeline widths, ROB and window
// occupancy, data and memory dependences, functional-unit and cache-port
// contention, branch-misprediction refill). Node times are finalized
// incrementally in construction order, so the final node's time is the
// critical-path length — the execution time in cycles.
//
// Transforms (BSA models) build alternative node/edge structures for
// accelerated regions; everything composes in one graph per execution.
//
// # Storage layout
//
// The graph is a struct of arrays over flat slices, not an array of node
// structs: times in one int64 stream, attribution (critical predecessor,
// step latency, packed edge-class|kind, dynamic index) in parallel
// int32/uint8 streams. The relaxation hot path (AddEdge/PushTime) touches
// only the streams it needs, and the critical-path walk is a backward
// sweep over the flat predecessor slice. Two modes share the layout:
//
//   - attribution mode (the default) maintains every stream, supporting
//     WalkCriticalPath/CriticalPathBreakdown and per-region attribution;
//   - lean mode maintains only the time stream. Edge relaxation reduces
//     to a pure max — final node times are bit-identical to attribution
//     mode (attribution only changes which predecessor is *recorded* on
//     ties, never the computed maximum) at a third of the write traffic.
//     Scheduling sweeps, which never walk paths, run lean.
//
// # Windowed (streaming) construction
//
// Node times are final once all in-edges are added, so a constructor that
// no longer references old nodes does not need them resident. Retire
// drops every node below a caller-proven live floor by compacting the
// flat slices; node IDs keep their meaning (indices are rebased), and
// peak memory becomes O(window) instead of O(trace). See
// cores.GPP.CompactWindow for the live-floor computation and the
// pin-node re-anchoring of long-lived architectural references.
package dg

import (
	"fmt"
	"unsafe"
)

// Kind classifies a node by pipeline event.
type Kind uint8

// Node kinds. Accelerator transforms reuse Execute/Complete and add
// synthetic boundary nodes.
const (
	KindFetch Kind = iota
	KindDispatch
	KindExecute
	KindComplete
	KindCommit
	KindAccel // accelerator-internal event
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindFetch:
		return "F"
	case KindDispatch:
		return "D"
	case KindExecute:
		return "E"
	case KindComplete:
		return "P"
	case KindCommit:
		return "C"
	case KindAccel:
		return "A"
	}
	return "?"
}

// EdgeClass labels the architectural constraint an edge models, enabling
// critical-path (stall) breakdowns — the paper's recommended way to sanity
// check new BSA models (Appendix A).
type EdgeClass uint8

// Edge classes.
const (
	EdgeProgram      EdgeClass = iota // program order within a pipeline stage
	EdgeWidth                         // fetch/dispatch/commit width
	EdgePipe                          // pipeline depth between stages
	EdgeROB                           // ROB occupancy
	EdgeWindow                        // issue-window occupancy
	EdgeData                          // register data dependence
	EdgeMemDep                        // memory (store→load) dependence
	EdgeExec                          // execute→complete latency (FU or memory)
	EdgeFU                            // functional-unit contention
	EdgeCachePort                     // data-cache port contention
	EdgeMispredict                    // branch misprediction refill
	EdgeInOrder                       // in-order issue/commit constraint
	EdgeCommit                        // complete→commit
	EdgeAccelConfig                   // accelerator configuration load
	EdgeAccelComm                     // core↔accelerator live-value transfer
	EdgeAccelPipe                     // accelerator pipelining constraint
	EdgeAccelCompute                  // accelerator compute latency
	EdgeAccelReplay                   // trace misspeculation replay
	NumEdgeClasses
)

var edgeClassNames = [NumEdgeClasses]string{
	"program", "width", "pipe", "rob", "window", "data", "memdep", "exec",
	"fu", "cacheport", "mispredict", "inorder", "commit",
	"accel-config", "accel-comm", "accel-pipe", "accel-compute", "accel-replay",
}

// String implements fmt.Stringer.
func (c EdgeClass) String() string {
	if c < NumEdgeClasses {
		return edgeClassNames[c]
	}
	return fmt.Sprintf("edge(%d)", uint8(c))
}

// NodeID indexes a node within a Graph. The zero NodeID is the graph's
// origin node (time 0); use None for "no node".
type NodeID int32

// None is the absent node.
const None NodeID = -1

// Per-node stream widths, for memory accounting: the time stream alone
// (lean mode) and the four attribution streams (critPred int32 + critLat
// int32 + class|kind uint8 + dynIdx int32).
const (
	leanNodeBytes   = 8
	attribNodeBytes = 13
)

// Graph is a µDG being constructed and solved incrementally. Nodes must be
// created after all their predecessors; AddEdge relaxes the target's time
// immediately, so Time(id) of any already-constructed node is final.
//
// Storage is struct-of-arrays (see the package comment): time is always
// maintained; pred/lat/ck/dyn only in attribution mode. All streams are
// indexed by id − base, where base is the first resident node after any
// Retire calls (0 for whole-trace graphs).
type Graph struct {
	time []int64 // node times; always maintained
	pred []int32 // critical predecessor (attribution mode)
	lat  []int32 // latency attributed to the step into the node
	ck   []uint8 // EdgeClass<<3 | Kind
	dyn  []int32 // dynamic-instruction index (-1 synthetic)

	base NodeID // first resident node id; lower ids are retired
	n    int    // total nodes created (next id); resident count is len(time)
	lean bool

	hwNodes int   // high-water resident node count
	hwBytes int64 // high-water resident stream bytes

	// rtFree recycles ResourceTables for transient users (accelerator
	// dataflow engines create three per region); the rings are ~300KB
	// each, so re-allocating them per region dominated evaluation cost.
	rtFree []*ResourceTable
}

// NewGraph returns a graph containing only the origin node at time 0.
func NewGraph() *Graph { return NewGraphN(0) }

// NewGraphN returns a graph pre-sized for about hint nodes, so callers
// that know the trace length (~5 µDG nodes per dynamic instruction) avoid
// the append-doubling copies of incremental growth. hint <= 0 falls back
// to the default capacity. The graph starts in attribution mode; see
// ResetMode.
func NewGraphN(hint int) *Graph {
	if hint < 4096 {
		hint = 4096
	}
	g := &Graph{
		time: make([]int64, 0, hint),
		pred: make([]int32, 0, hint),
		lat:  make([]int32, 0, hint),
		ck:   make([]uint8, 0, hint),
		dyn:  make([]int32, 0, hint),
	}
	g.origin()
	return g
}

// origin (re)creates node 0 on empty streams.
func (g *Graph) origin() {
	g.time = append(g.time, 0)
	if !g.lean {
		g.pred = append(g.pred, int32(None))
		g.lat = append(g.lat, 0)
		g.ck = append(g.ck, uint8(KindFetch))
		g.dyn = append(g.dyn, -1)
	}
	g.n = 1
	g.base = 0
}

// Reset clears the graph for reuse, keeping capacity and mode.
func (g *Graph) Reset() { g.ResetMode(g.lean) }

// ResetMode clears the graph for reuse in the given mode: lean graphs
// maintain only node times (byte-identical to attribution mode, see the
// package comment) and support Retire-based windowing; attribution
// graphs additionally record the critical-path structure that
// WalkCriticalPath and DynIdx/KindOf read.
func (g *Graph) ResetMode(lean bool) {
	g.noteHighWater()
	g.lean = lean
	g.time = g.time[:0]
	g.pred = g.pred[:0]
	g.lat = g.lat[:0]
	g.ck = g.ck[:0]
	g.dyn = g.dyn[:0]
	g.origin()
}

// Lean reports whether the graph is in lean (time-only) mode.
func (g *Graph) Lean() bool { return g.lean }

// Origin returns the time-0 origin node.
func (g *Graph) Origin() NodeID { return 0 }

// NewNode creates a node for dynamic-instruction index dynIdx (or -1 for
// synthetic nodes) with no predecessors yet (time 0).
func (g *Graph) NewNode(k Kind, dynIdx int32) NodeID {
	id := NodeID(g.n)
	g.n++
	g.time = append(g.time, 0)
	if !g.lean {
		g.pred = append(g.pred, int32(None))
		g.lat = append(g.lat, 0)
		g.ck = append(g.ck, uint8(k))
		g.dyn = append(g.dyn, dynIdx)
	}
	return id
}

// NewPipelineNodes appends the five pipeline-stage nodes of one dynamic
// instruction — fetch, dispatch, execute, complete, commit, in that
// order — in a single grow per stream and returns the fetch node's ID;
// the others follow at consecutive IDs. One batched append per stream
// replaces five NewNode calls on the hottest allocation path in the
// system (every GPP uop).
func (g *Graph) NewPipelineNodes(dynIdx int32) NodeID {
	id := NodeID(g.n)
	g.n += 5
	g.time = append(g.time, 0, 0, 0, 0, 0)
	if !g.lean {
		np := int32(None)
		g.pred = append(g.pred, np, np, np, np, np)
		g.lat = append(g.lat, 0, 0, 0, 0, 0)
		g.ck = append(g.ck, uint8(KindFetch), uint8(KindDispatch),
			uint8(KindExecute), uint8(KindComplete), uint8(KindCommit))
		g.dyn = append(g.dyn, dynIdx, dynIdx, dynIdx, dynIdx, dynIdx)
	}
	return id
}

// AddEdge adds a dependence from → to with the given latency and class,
// relaxing to's time. from must be an existing node; to must not yet be
// used as a predecessor itself (incremental construction).
func (g *Graph) AddEdge(from, to NodeID, lat int64, class EdgeClass) {
	if from == None || to == None {
		return
	}
	t := g.time[from-g.base] + lat
	i := to - g.base
	if g.lean {
		// Pure max-relaxation: identical final times (the attribution
		// branch below only differs in what it records on a first edge
		// that ties the zero-initialized time). Kept small enough to
		// inline at call sites — this is the hottest function in the
		// system; the attribution path lives out of line.
		if t > g.time[i] {
			g.time[i] = t
		}
		return
	}
	g.relaxAttrib(i, t, from, lat, class)
}

func (g *Graph) relaxAttrib(i NodeID, t int64, from NodeID, lat int64, class EdgeClass) {
	if t > g.time[i] || g.pred[i] == int32(None) {
		g.time[i] = t
		g.pred[i] = int32(from)
		g.lat[i] = int32(lat)
		g.ck[i] = uint8(class)<<3 | g.ck[i]&7
	}
}

// PushTime moves a node's time forward to at least t (resource booking).
// The structural critical predecessor is preserved so path backtracking
// stays connected; the added wait is attributed to the given class.
func (g *Graph) PushTime(id NodeID, t int64, class EdgeClass) {
	i := id - g.base
	if t <= g.time[i] {
		return
	}
	if !g.lean {
		if g.pred[i] == int32(None) {
			g.pred[i] = 0
		}
		g.lat[i] += int32(t - g.time[i])
		g.ck[i] = uint8(class)<<3 | g.ck[i]&7
	}
	g.time[i] = t
}

// SetTime writes a node's final time directly. Lean-mode fast paths
// compute a node's incoming maximum in a register and store it once,
// instead of one relax call per edge; the caller must be on a lean graph
// (there is no attribution state to update) and must not have relaxed
// any edge into the node already.
func (g *Graph) SetTime(id NodeID, t int64) {
	g.time[id-g.base] = t
}

// Time returns a node's (final, once constructed) time.
func (g *Graph) Time(id NodeID) int64 {
	if id == None {
		return 0
	}
	return g.time[id-g.base]
}

// KindOf returns a node's kind (attribution mode only).
func (g *Graph) KindOf(id NodeID) Kind { return Kind(g.ck[id-g.base] & 7) }

// DynIdx returns the dynamic-instruction index a node belongs to (-1 for
// synthetic nodes; attribution mode only).
func (g *Graph) DynIdx(id NodeID) int32 { return g.dyn[id-g.base] }

// Len returns the number of nodes ever created, including the origin and
// any retired by Retire.
func (g *Graph) Len() int { return g.n }

// Resident returns the number of nodes currently held in memory.
func (g *Graph) Resident() int { return len(g.time) }

// Base returns the first resident node ID (0 unless Retire has run).
func (g *Graph) Base() NodeID { return g.base }

// Retire drops every node below minLive from the resident streams,
// compacting the live suffix to the front. The caller must guarantee no
// retired node is ever referenced again (their times are already final
// and propagated). Only meaningful in lean mode — attribution walks need
// the whole graph resident.
func (g *Graph) Retire(minLive NodeID) {
	if minLive <= g.base {
		return
	}
	g.noteHighWater()
	off := minLive - g.base
	g.time = g.time[:copy(g.time, g.time[off:])]
	if !g.lean {
		g.pred = g.pred[:copy(g.pred, g.pred[off:])]
		g.lat = g.lat[:copy(g.lat, g.lat[off:])]
		g.ck = g.ck[:copy(g.ck, g.ck[off:])]
		g.dyn = g.dyn[:copy(g.dyn, g.dyn[off:])]
	}
	g.base = minLive
}

// noteHighWater records the current resident footprint into the
// high-water marks. Resident size only shrinks at Reset/Retire, so
// sampling there (plus at read time) observes every peak exactly.
func (g *Graph) noteHighWater() {
	r := len(g.time)
	b := int64(r) * leanNodeBytes
	if !g.lean {
		b += int64(r) * attribNodeBytes
	}
	if r > g.hwNodes {
		g.hwNodes = r
	}
	if b > g.hwBytes {
		g.hwBytes = b
	}
}

// HighWaterNodes returns the maximum resident node count the graph has
// reached over its lifetime (across Resets — pooled graphs report their
// worst unit).
func (g *Graph) HighWaterNodes() int {
	g.noteHighWater()
	return g.hwNodes
}

// HighWaterBytes returns the maximum resident stream footprint in bytes —
// the observable form of the O(window) streaming-evaluation claim.
func (g *Graph) HighWaterBytes() int64 {
	g.noteHighWater()
	return g.hwBytes
}

// MemBytes reports the stream arenas' allocated size plus the recycled
// resource tables — the memory a pooled graph lets its next user skip
// allocating.
func (g *Graph) MemBytes() int64 {
	b := int64(cap(g.time))*8 + int64(cap(g.pred))*4 + int64(cap(g.lat))*4 +
		int64(cap(g.ck)) + int64(cap(g.dyn))*4
	for _, rt := range g.rtFree {
		b += rt.MemBytes()
	}
	return b
}

// BorrowRT hands out a recycled ResourceTable retargeted to n units (or a
// fresh one when the free list is empty). Pair with ReturnRT when the
// borrower is done; an unreturned table is simply garbage-collected.
func (g *Graph) BorrowRT(n int) *ResourceTable {
	if l := len(g.rtFree); l > 0 {
		rt := g.rtFree[l-1]
		g.rtFree = g.rtFree[:l-1]
		rt.Retarget(n)
		return rt
	}
	return NewResourceTable(n)
}

// ReturnRT recycles tables handed out by BorrowRT.
func (g *Graph) ReturnRT(rts ...*ResourceTable) {
	g.rtFree = append(g.rtFree, rts...)
}

// CriticalPathBreakdown walks the critical path backwards from the given
// node and accumulates the latency attributed to each edge class. The
// result explains where cycles went (compute vs memory vs width vs ...).
func (g *Graph) CriticalPathBreakdown(from NodeID) [NumEdgeClasses]int64 {
	var out [NumEdgeClasses]int64
	g.WalkCriticalPath(from, func(_ NodeID, class EdgeClass, lat int64) {
		out[class] += lat
	})
	return out
}

// WalkCriticalPath walks the critical path backwards from the given node
// towards the origin, calling fn for every step with the step's target
// node, the edge class that set its time, and the latency attributed to
// that step. Visiting every step lets callers attribute path latency at
// finer granularity than the aggregate CriticalPathBreakdown — eg. per
// region via DynIdx.
//
// Incremental construction guarantees pred[id] < id, so path IDs
// strictly decrease: the walk is a single monotone backward sweep over
// the flat pred/lat/ck streams (no node structs, no pointer chasing),
// visiting exactly the path's entries of each stream in storage order.
// Requires attribution mode.
func (g *Graph) WalkCriticalPath(from NodeID, fn func(id NodeID, class EdgeClass, lat int64)) {
	pred, lat, ck := g.pred, g.lat, g.ck
	base := g.base
	for id := from; id > 0; {
		i := id - base
		fn(id, EdgeClass(ck[i]>>3), int64(lat[i]))
		id = NodeID(pred[i])
	}
}

// CriticalPathNodes returns the node IDs on the critical path ending at
// from, in reverse (from → origin) order. Used by tests and debugging.
func (g *Graph) CriticalPathNodes(from NodeID) []NodeID {
	var out []NodeID
	for id := from; id != None; id = NodeID(g.pred[id-g.base]) {
		out = append(out, id)
		if id == 0 {
			break
		}
	}
	return out
}

// resourceWindow is the cycle span the table remembers. In-flight
// instructions span at most ROB-size × memory-latency cycles, far below
// this; colliding slots past the window are simply reclaimed (the
// windowed-resource approximation of §2.7).
const resourceWindow = 1 << 15

// ResourceTable books fully-pipelined units via a cycle-indexed
// occupancy ring: a booking occupies one of n units for one cycle, and
// later (program-order) requests may back-fill earlier cycles — only
// same-cycle conflicts are resolved in instruction order, the paper's
// "resources preferentially given in instruction order" approximation.
type ResourceTable struct {
	units uint8
	// offset is the epoch base added to requested cycles before they key
	// the ring. Reset advances it past every key issued so far, making all
	// stale slots mismatch — an O(1) reset instead of clearing the ring
	// (~128KB; per-segment evaluation resets constantly).
	offset int64
	maxKey int64
	// fullBelow is a monotone probe floor: every cycle below it is known
	// to be booked to capacity. Occupancy only grows between Resets, so
	// once a Book probe walks a full prefix the fact is permanent, and
	// later probes skip it instead of re-scanning — on saturated tables
	// (a width-2 issue ring at IPC ≈ 2) the linear probe otherwise
	// re-walks the same full cycles on every booking.
	fullBelow int64
	// ring packs each slot's epoch tag and occupancy count as
	// (key>>15)<<8 | count — one 4-byte load per probe, and half the
	// cache footprint of 8-byte entries on a structure the booking loops
	// stream through. The tag is unambiguous: keys sharing a slot differ
	// by a multiple of resourceWindow (1<<15), so key>>15 identifies the
	// key exactly. Counts stay below 256 (units caps at 255); tags stay
	// below 2^24 because Reset re-epochs the table before offset can
	// reach 2^38.
	ring [resourceWindow]uint32
}

// NewResourceTable returns a table with n units. The zero-valued rings
// are directly usable: a zeroed slot can only alias key 0 on a fresh
// table, where its zero count is exactly the initialized state.
func NewResourceTable(n int) *ResourceTable {
	rt := &ResourceTable{}
	rt.Retarget(n)
	return rt
}

// Retarget reconfigures a (possibly recycled) table to n units with no
// bookings, in O(1).
func (r *ResourceTable) Retarget(n int) {
	if n < 1 {
		n = 1
	}
	if n > 255 {
		n = 255
	}
	r.units = uint8(n)
	r.Reset()
}

// peek returns the occupancy of cycle c (stale slots read as empty).
func (r *ResourceTable) peek(c int64) uint8 {
	key := c + r.offset
	v := r.ring[key&(resourceWindow-1)]
	if v>>8 != uint32(key>>15) {
		return 0
	}
	return uint8(v)
}

// incr books one unit at cycle c, reclaiming the slot if stale.
func (r *ResourceTable) incr(c int64) {
	key := c + r.offset
	if key > r.maxKey {
		r.maxKey = key
	}
	slot := key & (resourceWindow - 1)
	tag := uint32(key>>15) << 8
	v := r.ring[slot]
	if v&^0xFF != tag {
		v = tag
	}
	r.ring[slot] = v + 1
}

// Book finds the earliest cycle ≥ ready with a free unit, books it, and
// returns the granted cycle. Grants are independent of the fullBelow
// floor (cycles under it have no free unit by definition); the floor
// only shortens the probe. The uncontended first probe is kept small
// enough to inline at Exec call sites; contended probes continue in
// bookSlow.
func (r *ResourceTable) Book(ready int64) int64 {
	c := ready
	if c < r.fullBelow {
		c = r.fullBelow
	}
	key := c + r.offset
	tag := uint32(key>>15) << 8
	v := r.ring[key&(resourceWindow-1)]
	if v&^0xFF != tag {
		v = tag
	}
	if v&0xFF < uint32(r.units) {
		r.commit(key, c, v, c == r.fullBelow)
		return c
	}
	return r.bookSlow(c+1, c == r.fullBelow)
}

// commit records a granted booking: occupancy, high-water key, and —
// when the probe began at the floor, so [floor, c) is proven full — the
// floor advance (past the grant cycle when this booking saturated it).
func (r *ResourceTable) commit(key, c int64, v uint32, fromFloor bool) {
	if key > r.maxKey {
		r.maxKey = key
	}
	v++
	r.ring[key&(resourceWindow-1)] = v
	if fromFloor {
		r.fullBelow = c
		if v&0xFF >= uint32(r.units) {
			r.fullBelow = c + 1
		}
	}
}

// bookSlow continues a probe whose first candidate cycle was full.
func (r *ResourceTable) bookSlow(start int64, fromFloor bool) int64 {
	units := uint32(r.units)
	for c := start; ; c++ {
		key := c + r.offset
		slot := key & (resourceWindow - 1)
		tag := uint32(key>>15) << 8
		v := r.ring[slot]
		if v&^0xFF != tag {
			v = tag
		}
		if v&0xFF < units {
			r.commit(key, c, v, fromFloor)
			return c
		}
	}
}

// BookFor books one unit for `busy` consecutive cycles (unpipelined units
// such as dividers or accelerator CFUs).
func (r *ResourceTable) BookFor(ready, busy int64) int64 {
	if busy < 1 {
		busy = 1
	}
	if ready < r.fullBelow {
		ready = r.fullBelow
	}
search:
	for c := ready; ; c++ {
		for k := int64(0); k < busy; k++ {
			if r.peek(c+k) >= r.units {
				c += k
				continue search
			}
		}
		for k := int64(0); k < busy; k++ {
			r.incr(c + k)
		}
		return c
	}
}

// Reset clears all bookings in O(1) by advancing the epoch offset past
// every key issued so far; stale ring slots are reclaimed lazily. When
// the accumulated offset nears the 24-bit tag limit (once per ~2^38
// booked cycles) the ring is cleared wholesale and the epoch restarts
// from zero, restoring the fresh-table invariant that zeroed slots read
// as empty.
func (r *ResourceTable) Reset() {
	r.fullBelow = 0
	r.offset = r.maxKey + 1
	if r.offset >= 1<<38 {
		clear(r.ring[:])
		r.offset = 0
		r.maxKey = 0
	}
}

// MemBytes reports the table's fixed ring footprint — the allocation a
// pooled table saves its next user.
func (r *ResourceTable) MemBytes() int64 { return int64(unsafe.Sizeof(*r)) }
