// Package dg implements the microarchitectural dependence graph (µDG) at
// the heart of the Transformable Dependence Graph methodology (paper §2).
// Nodes are microarchitectural events of dynamic instructions (fetch,
// dispatch, execute, complete, commit — Figure 4); edges are dependences
// that enforce architectural constraints (pipeline widths, ROB and window
// occupancy, data and memory dependences, functional-unit and cache-port
// contention, branch-misprediction refill). Node times are finalized
// incrementally in construction order, so the final node's time is the
// critical-path length — the execution time in cycles.
//
// Transforms (BSA models) build alternative node/edge structures for
// accelerated regions; everything composes in one graph per execution.
package dg

import (
	"fmt"
	"unsafe"
)

// Kind classifies a node by pipeline event.
type Kind uint8

// Node kinds. Accelerator transforms reuse Execute/Complete and add
// synthetic boundary nodes.
const (
	KindFetch Kind = iota
	KindDispatch
	KindExecute
	KindComplete
	KindCommit
	KindAccel // accelerator-internal event
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindFetch:
		return "F"
	case KindDispatch:
		return "D"
	case KindExecute:
		return "E"
	case KindComplete:
		return "P"
	case KindCommit:
		return "C"
	case KindAccel:
		return "A"
	}
	return "?"
}

// EdgeClass labels the architectural constraint an edge models, enabling
// critical-path (stall) breakdowns — the paper's recommended way to sanity
// check new BSA models (Appendix A).
type EdgeClass uint8

// Edge classes.
const (
	EdgeProgram      EdgeClass = iota // program order within a pipeline stage
	EdgeWidth                         // fetch/dispatch/commit width
	EdgePipe                          // pipeline depth between stages
	EdgeROB                           // ROB occupancy
	EdgeWindow                        // issue-window occupancy
	EdgeData                          // register data dependence
	EdgeMemDep                        // memory (store→load) dependence
	EdgeExec                          // execute→complete latency (FU or memory)
	EdgeFU                            // functional-unit contention
	EdgeCachePort                     // data-cache port contention
	EdgeMispredict                    // branch misprediction refill
	EdgeInOrder                       // in-order issue/commit constraint
	EdgeCommit                        // complete→commit
	EdgeAccelConfig                   // accelerator configuration load
	EdgeAccelComm                     // core↔accelerator live-value transfer
	EdgeAccelPipe                     // accelerator pipelining constraint
	EdgeAccelCompute                  // accelerator compute latency
	EdgeAccelReplay                   // trace misspeculation replay
	NumEdgeClasses
)

var edgeClassNames = [NumEdgeClasses]string{
	"program", "width", "pipe", "rob", "window", "data", "memdep", "exec",
	"fu", "cacheport", "mispredict", "inorder", "commit",
	"accel-config", "accel-comm", "accel-pipe", "accel-compute", "accel-replay",
}

// String implements fmt.Stringer.
func (c EdgeClass) String() string {
	if c < NumEdgeClasses {
		return edgeClassNames[c]
	}
	return fmt.Sprintf("edge(%d)", uint8(c))
}

// NodeID indexes a node within a Graph. The zero NodeID is the graph's
// origin node (time 0); use None for "no node".
type NodeID int32

// None is the absent node.
const None NodeID = -1

type node struct {
	time     int64
	critPred NodeID
	critLat  int32
	class    EdgeClass
	kind     Kind
	dynIdx   int32
}

// Graph is a µDG being constructed and solved incrementally. Nodes must be
// created after all their predecessors; AddEdge relaxes the target's time
// immediately, so Time(id) of any already-constructed node is final.
type Graph struct {
	nodes []node
	// rtFree recycles ResourceTables for transient users (accelerator
	// dataflow engines create three per region); the rings are ~300KB
	// each, so re-allocating them per region dominated evaluation cost.
	rtFree []*ResourceTable
}

// NewGraph returns a graph containing only the origin node at time 0.
func NewGraph() *Graph { return NewGraphN(0) }

// NewGraphN returns a graph pre-sized for about hint nodes, so callers
// that know the trace length (~5 µDG nodes per dynamic instruction) avoid
// the append-doubling copies of incremental growth. hint <= 0 falls back
// to the default capacity.
func NewGraphN(hint int) *Graph {
	if hint < 4096 {
		hint = 4096
	}
	g := &Graph{nodes: make([]node, 1, hint)}
	g.nodes[0] = node{critPred: None, kind: KindFetch, dynIdx: -1}
	return g
}

// Reset clears the graph for reuse, keeping capacity.
func (g *Graph) Reset() {
	g.nodes = g.nodes[:1]
	g.nodes[0] = node{critPred: None, kind: KindFetch, dynIdx: -1}
}

// Origin returns the time-0 origin node.
func (g *Graph) Origin() NodeID { return 0 }

// NewNode creates a node for dynamic-instruction index dynIdx (or -1 for
// synthetic nodes) with no predecessors yet (time 0).
func (g *Graph) NewNode(k Kind, dynIdx int32) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, node{critPred: None, kind: k, dynIdx: dynIdx})
	return id
}

// NewPipelineNodes appends the five pipeline-stage nodes of one dynamic
// instruction — fetch, dispatch, execute, complete, commit, in that
// order — in a single grow and returns the fetch node's ID; the others
// follow at consecutive IDs. One batched append replaces five NewNode
// calls on the hottest allocation path in the system (every GPP uop).
func (g *Graph) NewPipelineNodes(dynIdx int32) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes,
		node{critPred: None, kind: KindFetch, dynIdx: dynIdx},
		node{critPred: None, kind: KindDispatch, dynIdx: dynIdx},
		node{critPred: None, kind: KindExecute, dynIdx: dynIdx},
		node{critPred: None, kind: KindComplete, dynIdx: dynIdx},
		node{critPred: None, kind: KindCommit, dynIdx: dynIdx})
	return id
}

// AddEdge adds a dependence from → to with the given latency and class,
// relaxing to's time. from must be an existing node; to must not yet be
// used as a predecessor itself (incremental construction).
func (g *Graph) AddEdge(from, to NodeID, lat int64, class EdgeClass) {
	if from == None || to == None {
		return
	}
	t := g.nodes[from].time + lat
	n := &g.nodes[to]
	if t > n.time || n.critPred == None {
		n.time = t
		n.critPred = from
		n.critLat = int32(lat)
		n.class = class
	}
}

// PushTime moves a node's time forward to at least t (resource booking).
// The structural critical predecessor is preserved so path backtracking
// stays connected; the added wait is attributed to the given class.
func (g *Graph) PushTime(id NodeID, t int64, class EdgeClass) {
	n := &g.nodes[id]
	if t > n.time {
		if n.critPred == None {
			n.critPred = 0
		}
		n.critLat += int32(t - n.time)
		n.time = t
		n.class = class
	}
}

// Time returns a node's (final, once constructed) time.
func (g *Graph) Time(id NodeID) int64 {
	if id == None {
		return 0
	}
	return g.nodes[id].time
}

// Kind returns a node's kind.
func (g *Graph) KindOf(id NodeID) Kind { return g.nodes[id].kind }

// DynIdx returns the dynamic-instruction index a node belongs to (-1 for
// synthetic nodes).
func (g *Graph) DynIdx(id NodeID) int32 { return g.nodes[id].dynIdx }

// Len returns the number of nodes including the origin.
func (g *Graph) Len() int { return len(g.nodes) }

// MemBytes reports the node arena's allocated size plus the recycled
// resource tables — the memory a pooled graph lets its next user skip
// allocating.
func (g *Graph) MemBytes() int64 {
	b := int64(cap(g.nodes)) * int64(unsafe.Sizeof(node{}))
	for _, rt := range g.rtFree {
		b += rt.MemBytes()
	}
	return b
}

// BorrowRT hands out a recycled ResourceTable retargeted to n units (or a
// fresh one when the free list is empty). Pair with ReturnRT when the
// borrower is done; an unreturned table is simply garbage-collected.
func (g *Graph) BorrowRT(n int) *ResourceTable {
	if l := len(g.rtFree); l > 0 {
		rt := g.rtFree[l-1]
		g.rtFree = g.rtFree[:l-1]
		rt.Retarget(n)
		return rt
	}
	return NewResourceTable(n)
}

// ReturnRT recycles tables handed out by BorrowRT.
func (g *Graph) ReturnRT(rts ...*ResourceTable) {
	g.rtFree = append(g.rtFree, rts...)
}

// CriticalPathBreakdown walks the critical path backwards from the given
// node and accumulates the latency attributed to each edge class. The
// result explains where cycles went (compute vs memory vs width vs ...).
func (g *Graph) CriticalPathBreakdown(from NodeID) [NumEdgeClasses]int64 {
	var out [NumEdgeClasses]int64
	g.WalkCriticalPath(from, func(_ NodeID, class EdgeClass, lat int64) {
		out[class] += lat
	})
	return out
}

// WalkCriticalPath walks the critical path backwards from the given node
// towards the origin, calling fn for every step with the step's target
// node, the edge class that set its time, and the latency attributed to
// that step. Visiting every step lets callers attribute path latency at
// finer granularity than the aggregate CriticalPathBreakdown — eg. per
// region via DynIdx.
func (g *Graph) WalkCriticalPath(from NodeID, fn func(id NodeID, class EdgeClass, lat int64)) {
	for id := from; id != None && id != 0; {
		n := &g.nodes[id]
		fn(id, n.class, int64(n.critLat))
		id = n.critPred
	}
}

// CriticalPathNodes returns the node IDs on the critical path ending at
// from, in reverse (from → origin) order. Used by tests and debugging.
func (g *Graph) CriticalPathNodes(from NodeID) []NodeID {
	var out []NodeID
	for id := from; id != None; id = g.nodes[id].critPred {
		out = append(out, id)
		if id == 0 {
			break
		}
	}
	return out
}

// resourceWindow is the cycle span the table remembers. In-flight
// instructions span at most ROB-size × memory-latency cycles, far below
// this; colliding slots past the window are simply reclaimed (the
// windowed-resource approximation of §2.7).
const resourceWindow = 1 << 15

// ResourceTable books fully-pipelined units via a cycle-indexed
// occupancy ring: a booking occupies one of n units for one cycle, and
// later (program-order) requests may back-fill earlier cycles — only
// same-cycle conflicts are resolved in instruction order, the paper's
// "resources preferentially given in instruction order" approximation.
type ResourceTable struct {
	units uint8
	// offset is the epoch base added to requested cycles before they key
	// the ring. Reset advances it past every key issued so far, making all
	// stale slots mismatch — an O(1) reset instead of clearing the ring
	// (~128KB; per-segment evaluation resets constantly).
	offset int64
	maxKey int64
	// ring packs each slot's epoch tag and occupancy count as
	// (key>>15)<<8 | count — one 4-byte load per probe, and half the
	// cache footprint of 8-byte entries on a structure the booking loops
	// stream through. The tag is unambiguous: keys sharing a slot differ
	// by a multiple of resourceWindow (1<<15), so key>>15 identifies the
	// key exactly. Counts stay below 256 (units caps at 255); tags stay
	// below 2^24 because Reset re-epochs the table before offset can
	// reach 2^38.
	ring [resourceWindow]uint32
}

// NewResourceTable returns a table with n units. The zero-valued rings
// are directly usable: a zeroed slot can only alias key 0 on a fresh
// table, where its zero count is exactly the initialized state.
func NewResourceTable(n int) *ResourceTable {
	rt := &ResourceTable{}
	rt.Retarget(n)
	return rt
}

// Retarget reconfigures a (possibly recycled) table to n units with no
// bookings, in O(1).
func (r *ResourceTable) Retarget(n int) {
	if n < 1 {
		n = 1
	}
	if n > 255 {
		n = 255
	}
	r.units = uint8(n)
	r.Reset()
}

// peek returns the occupancy of cycle c (stale slots read as empty).
func (r *ResourceTable) peek(c int64) uint8 {
	key := c + r.offset
	v := r.ring[key&(resourceWindow-1)]
	if v>>8 != uint32(key>>15) {
		return 0
	}
	return uint8(v)
}

// incr books one unit at cycle c, reclaiming the slot if stale.
func (r *ResourceTable) incr(c int64) {
	key := c + r.offset
	if key > r.maxKey {
		r.maxKey = key
	}
	slot := key & (resourceWindow - 1)
	tag := uint32(key>>15) << 8
	v := r.ring[slot]
	if v&^0xFF != tag {
		v = tag
	}
	r.ring[slot] = v + 1
}

// Book finds the earliest cycle ≥ ready with a free unit, books it, and
// returns the granted cycle.
func (r *ResourceTable) Book(ready int64) int64 {
	units := uint32(r.units)
	for c := ready; ; c++ {
		key := c + r.offset
		slot := key & (resourceWindow - 1)
		tag := uint32(key>>15) << 8
		v := r.ring[slot]
		if v&^0xFF != tag {
			v = tag
		}
		if v&0xFF < units {
			if key > r.maxKey {
				r.maxKey = key
			}
			r.ring[slot] = v + 1
			return c
		}
	}
}

// BookFor books one unit for `busy` consecutive cycles (unpipelined units
// such as dividers or accelerator CFUs).
func (r *ResourceTable) BookFor(ready, busy int64) int64 {
	if busy < 1 {
		busy = 1
	}
search:
	for c := ready; ; c++ {
		for k := int64(0); k < busy; k++ {
			if r.peek(c+k) >= r.units {
				c += k
				continue search
			}
		}
		for k := int64(0); k < busy; k++ {
			r.incr(c + k)
		}
		return c
	}
}

// Reset clears all bookings in O(1) by advancing the epoch offset past
// every key issued so far; stale ring slots are reclaimed lazily. When
// the accumulated offset nears the 24-bit tag limit (once per ~2^38
// booked cycles) the ring is cleared wholesale and the epoch restarts
// from zero, restoring the fresh-table invariant that zeroed slots read
// as empty.
func (r *ResourceTable) Reset() {
	r.offset = r.maxKey + 1
	if r.offset >= 1<<38 {
		clear(r.ring[:])
		r.offset = 0
		r.maxKey = 0
	}
}

// MemBytes reports the table's fixed ring footprint — the allocation a
// pooled table saves its next user.
func (r *ResourceTable) MemBytes() int64 { return int64(unsafe.Sizeof(*r)) }
