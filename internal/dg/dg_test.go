package dg

import (
	"testing"
	"testing/quick"
)

func TestLongestPathRelaxation(t *testing.T) {
	g := NewGraph()
	a := g.NewNode(KindExecute, 0)
	g.AddEdge(g.Origin(), a, 3, EdgeExec)
	b := g.NewNode(KindExecute, 1)
	g.AddEdge(g.Origin(), b, 1, EdgeExec)
	c := g.NewNode(KindComplete, 2)
	g.AddEdge(a, c, 2, EdgeData)
	g.AddEdge(b, c, 10, EdgeMemDep)
	if got := g.Time(c); got != 11 {
		t.Errorf("Time(c) = %d, want 11 (max path)", got)
	}
}

func TestCriticalPathBreakdown(t *testing.T) {
	g := NewGraph()
	a := g.NewNode(KindExecute, 0)
	g.AddEdge(g.Origin(), a, 5, EdgeExec)
	b := g.NewNode(KindComplete, 0)
	g.AddEdge(a, b, 7, EdgeMemDep)
	bd := g.CriticalPathBreakdown(b)
	if bd[EdgeExec] != 5 || bd[EdgeMemDep] != 7 {
		t.Errorf("breakdown = %v", bd)
	}
	nodes := g.CriticalPathNodes(b)
	if len(nodes) != 3 { // b, a, origin
		t.Errorf("critical path nodes = %v", nodes)
	}
}

func TestPushTime(t *testing.T) {
	g := NewGraph()
	a := g.NewNode(KindExecute, 0)
	g.AddEdge(g.Origin(), a, 2, EdgeExec)
	g.PushTime(a, 9, EdgeFU)
	if g.Time(a) != 9 {
		t.Errorf("Time = %d, want 9", g.Time(a))
	}
	g.PushTime(a, 4, EdgeFU) // must not move backwards
	if g.Time(a) != 9 {
		t.Errorf("PushTime moved node backwards to %d", g.Time(a))
	}
	// The node's whole arrival (2 structural + 7 resource wait) is now
	// attributed to the resource class, and the path stays connected.
	bd := g.CriticalPathBreakdown(a)
	if bd[EdgeFU] != 9 {
		t.Errorf("resource wait not attributed to FU: %v", bd)
	}
	if nodes := g.CriticalPathNodes(a); len(nodes) != 2 {
		t.Errorf("path disconnected: %v", nodes)
	}
}

func TestEdgeToNoneIgnored(t *testing.T) {
	g := NewGraph()
	a := g.NewNode(KindExecute, 0)
	g.AddEdge(None, a, 100, EdgeData)
	if g.Time(a) != 0 {
		t.Errorf("edge from None changed time to %d", g.Time(a))
	}
	g.AddEdge(a, None, 100, EdgeData) // must not panic
}

func TestReset(t *testing.T) {
	g := NewGraph()
	g.NewNode(KindFetch, 0)
	g.Reset()
	if g.Len() != 1 {
		t.Errorf("Len after reset = %d, want 1", g.Len())
	}
	if g.Time(g.Origin()) != 0 {
		t.Error("origin time must be 0 after reset")
	}
}

func TestResourceTableSingleUnit(t *testing.T) {
	rt := NewResourceTable(1)
	if got := rt.Book(0); got != 0 {
		t.Errorf("first booking = %d, want 0", got)
	}
	if got := rt.Book(0); got != 1 {
		t.Errorf("second booking = %d, want 1 (contention)", got)
	}
	if got := rt.Book(10); got != 10 {
		t.Errorf("late booking = %d, want 10", got)
	}
}

func TestResourceTableMultiUnit(t *testing.T) {
	rt := NewResourceTable(2)
	a := rt.Book(0)
	b := rt.Book(0)
	c := rt.Book(0)
	if a != 0 || b != 0 {
		t.Errorf("two units should both grant cycle 0: %d %d", a, b)
	}
	if c != 1 {
		t.Errorf("third booking = %d, want 1", c)
	}
}

func TestResourceTableBookFor(t *testing.T) {
	rt := NewResourceTable(1)
	if got := rt.BookFor(0, 10); got != 0 {
		t.Errorf("BookFor start = %d, want 0", got)
	}
	if got := rt.Book(0); got != 10 {
		t.Errorf("booking after busy period = %d, want 10", got)
	}
}

func TestResourceTableReset(t *testing.T) {
	rt := NewResourceTable(1)
	rt.Book(5)
	rt.Reset()
	if got := rt.Book(0); got != 0 {
		t.Errorf("after reset booking = %d, want 0", got)
	}
}

func TestResourceNeverGrantsBeforeReady(t *testing.T) {
	rt := NewResourceTable(3)
	f := func(readies []uint16) bool {
		for _, r := range readies {
			ready := int64(r % 1000)
			if rt.Book(ready) < ready {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTimesMonotoneAlongEdges(t *testing.T) {
	// Property: a node's time is >= every predecessor's time + latency,
	// exercised with a chain built from random latencies.
	f := func(lats []uint8) bool {
		g := NewGraph()
		prev := g.Origin()
		total := int64(0)
		for _, l := range lats {
			n := g.NewNode(KindExecute, -1)
			g.AddEdge(prev, n, int64(l), EdgeExec)
			total += int64(l)
			if g.Time(n) != total {
				return false
			}
			prev = n
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEdgeClassStrings(t *testing.T) {
	for c := EdgeClass(0); c < NumEdgeClasses; c++ {
		if c.String() == "" {
			t.Errorf("edge class %d has no name", c)
		}
	}
	for _, k := range []Kind{KindFetch, KindDispatch, KindExecute, KindComplete, KindCommit, KindAccel} {
		if k.String() == "?" {
			t.Errorf("kind %d has no name", k)
		}
	}
}
