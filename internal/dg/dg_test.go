package dg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLongestPathRelaxation(t *testing.T) {
	g := NewGraph()
	a := g.NewNode(KindExecute, 0)
	g.AddEdge(g.Origin(), a, 3, EdgeExec)
	b := g.NewNode(KindExecute, 1)
	g.AddEdge(g.Origin(), b, 1, EdgeExec)
	c := g.NewNode(KindComplete, 2)
	g.AddEdge(a, c, 2, EdgeData)
	g.AddEdge(b, c, 10, EdgeMemDep)
	if got := g.Time(c); got != 11 {
		t.Errorf("Time(c) = %d, want 11 (max path)", got)
	}
}

func TestCriticalPathBreakdown(t *testing.T) {
	g := NewGraph()
	a := g.NewNode(KindExecute, 0)
	g.AddEdge(g.Origin(), a, 5, EdgeExec)
	b := g.NewNode(KindComplete, 0)
	g.AddEdge(a, b, 7, EdgeMemDep)
	bd := g.CriticalPathBreakdown(b)
	if bd[EdgeExec] != 5 || bd[EdgeMemDep] != 7 {
		t.Errorf("breakdown = %v", bd)
	}
	nodes := g.CriticalPathNodes(b)
	if len(nodes) != 3 { // b, a, origin
		t.Errorf("critical path nodes = %v", nodes)
	}
}

func TestPushTime(t *testing.T) {
	g := NewGraph()
	a := g.NewNode(KindExecute, 0)
	g.AddEdge(g.Origin(), a, 2, EdgeExec)
	g.PushTime(a, 9, EdgeFU)
	if g.Time(a) != 9 {
		t.Errorf("Time = %d, want 9", g.Time(a))
	}
	g.PushTime(a, 4, EdgeFU) // must not move backwards
	if g.Time(a) != 9 {
		t.Errorf("PushTime moved node backwards to %d", g.Time(a))
	}
	// The node's whole arrival (2 structural + 7 resource wait) is now
	// attributed to the resource class, and the path stays connected.
	bd := g.CriticalPathBreakdown(a)
	if bd[EdgeFU] != 9 {
		t.Errorf("resource wait not attributed to FU: %v", bd)
	}
	if nodes := g.CriticalPathNodes(a); len(nodes) != 2 {
		t.Errorf("path disconnected: %v", nodes)
	}
}

func TestEdgeToNoneIgnored(t *testing.T) {
	g := NewGraph()
	a := g.NewNode(KindExecute, 0)
	g.AddEdge(None, a, 100, EdgeData)
	if g.Time(a) != 0 {
		t.Errorf("edge from None changed time to %d", g.Time(a))
	}
	g.AddEdge(a, None, 100, EdgeData) // must not panic
}

func TestReset(t *testing.T) {
	g := NewGraph()
	g.NewNode(KindFetch, 0)
	g.Reset()
	if g.Len() != 1 {
		t.Errorf("Len after reset = %d, want 1", g.Len())
	}
	if g.Time(g.Origin()) != 0 {
		t.Error("origin time must be 0 after reset")
	}
}

func TestResourceTableSingleUnit(t *testing.T) {
	rt := NewResourceTable(1)
	if got := rt.Book(0); got != 0 {
		t.Errorf("first booking = %d, want 0", got)
	}
	if got := rt.Book(0); got != 1 {
		t.Errorf("second booking = %d, want 1 (contention)", got)
	}
	if got := rt.Book(10); got != 10 {
		t.Errorf("late booking = %d, want 10", got)
	}
}

func TestResourceTableMultiUnit(t *testing.T) {
	rt := NewResourceTable(2)
	a := rt.Book(0)
	b := rt.Book(0)
	c := rt.Book(0)
	if a != 0 || b != 0 {
		t.Errorf("two units should both grant cycle 0: %d %d", a, b)
	}
	if c != 1 {
		t.Errorf("third booking = %d, want 1", c)
	}
}

func TestResourceTableBookFor(t *testing.T) {
	rt := NewResourceTable(1)
	if got := rt.BookFor(0, 10); got != 0 {
		t.Errorf("BookFor start = %d, want 0", got)
	}
	if got := rt.Book(0); got != 10 {
		t.Errorf("booking after busy period = %d, want 10", got)
	}
}

func TestResourceTableReset(t *testing.T) {
	rt := NewResourceTable(1)
	rt.Book(5)
	rt.Reset()
	if got := rt.Book(0); got != 0 {
		t.Errorf("after reset booking = %d, want 0", got)
	}
}

func TestResourceNeverGrantsBeforeReady(t *testing.T) {
	rt := NewResourceTable(3)
	f := func(readies []uint16) bool {
		for _, r := range readies {
			ready := int64(r % 1000)
			if rt.Book(ready) < ready {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTimesMonotoneAlongEdges(t *testing.T) {
	// Property: a node's time is >= every predecessor's time + latency,
	// exercised with a chain built from random latencies.
	f := func(lats []uint8) bool {
		g := NewGraph()
		prev := g.Origin()
		total := int64(0)
		for _, l := range lats {
			n := g.NewNode(KindExecute, -1)
			g.AddEdge(prev, n, int64(l), EdgeExec)
			total += int64(l)
			if g.Time(n) != total {
				return false
			}
			prev = n
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEdgeClassStrings(t *testing.T) {
	for c := EdgeClass(0); c < NumEdgeClasses; c++ {
		if c.String() == "" {
			t.Errorf("edge class %d has no name", c)
		}
	}
	for _, k := range []Kind{KindFetch, KindDispatch, KindExecute, KindComplete, KindCommit, KindAccel} {
		if k.String() == "?" {
			t.Errorf("kind %d has no name", k)
		}
	}
}

// legacyNode mirrors the pre-SoA array-of-structs node, and legacyRelax
// the pointer-walked relaxation it used: a reference implementation the
// flat-slice wavefront walk must agree with exactly, including the
// first-edge and tie-breaking rules that pick which predecessor is
// recorded when times are equal.
type legacyNode struct {
	time     int64
	critPred NodeID
	critLat  int64
	class    EdgeClass
}

func legacyRelax(nodes []legacyNode, from, to NodeID, lat int64, class EdgeClass) {
	if from == None || to == None {
		return
	}
	t := nodes[from].time + lat
	n := &nodes[to]
	if t > n.time || n.critPred == None {
		n.time = t
		n.critPred = from
		n.critLat = lat
		n.class = class
	}
}

func legacyPush(nodes []legacyNode, id NodeID, t int64, class EdgeClass) {
	n := &nodes[id]
	if t <= n.time {
		return
	}
	if n.critPred == None {
		n.critPred = 0
	}
	n.critLat += t - n.time
	n.class = class
	n.time = t
}

// TestWalkCriticalPathMatchesLegacy builds randomized layered DAGs
// through the Graph API while mirroring every operation into the legacy
// node-struct reference, then checks node times and the full critical
// path (ids, classes, step latencies) agree on every node.
func TestWalkCriticalPathMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		g := NewGraphN(64)
		ref := []legacyNode{{critPred: None}}
		nNodes := 2 + rng.Intn(120)
		for i := 0; i < nNodes; i++ {
			id := g.NewNode(Kind(rng.Intn(6)), int32(i))
			ref = append(ref, legacyNode{critPred: None})
			// Edges only from already-constructed nodes (incremental
			// construction invariant), with occasional ties (lat 0 from
			// same-time sources) to exercise tie-breaking.
			nEdges := 1 + rng.Intn(4)
			for e := 0; e < nEdges; e++ {
				from := NodeID(rng.Intn(int(id)))
				lat := int64(rng.Intn(8))
				class := EdgeClass(rng.Intn(int(NumEdgeClasses)))
				g.AddEdge(from, id, lat, class)
				legacyRelax(ref, from, id, lat, class)
			}
			if rng.Intn(4) == 0 {
				push := ref[id].time + int64(rng.Intn(5)-1)
				class := EdgeClass(rng.Intn(int(NumEdgeClasses)))
				g.PushTime(id, push, class)
				legacyPush(ref, id, push, class)
			}
		}
		for id := NodeID(0); int(id) <= nNodes; id++ {
			if g.Time(id) != ref[id].time {
				t.Fatalf("trial %d node %d: time %d, legacy %d", trial, id, g.Time(id), ref[id].time)
			}
			type step struct {
				id    NodeID
				class EdgeClass
				lat   int64
			}
			var got []step
			g.WalkCriticalPath(id, func(n NodeID, c EdgeClass, l int64) {
				got = append(got, step{n, c, l})
			})
			var want []step
			for n := id; n != None && n != 0; n = ref[n].critPred {
				want = append(want, step{n, ref[n].class, ref[n].critLat})
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d node %d: walk length %d, legacy %d", trial, id, len(got), len(want))
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("trial %d node %d step %d: %+v, legacy %+v", trial, id, k, got[k], want[k])
				}
			}
		}
	}
}

// TestLeanModeTimesIdentical checks the package-comment claim that lean
// (time-only) relaxation computes bit-identical node times to
// attribution mode on the same construction sequence.
func TestLeanModeTimesIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type op struct {
		push     bool
		from, to NodeID
		lat      int64
		class    EdgeClass
	}
	for trial := 0; trial < 30; trial++ {
		nNodes := 2 + rng.Intn(200)
		var ops []op
		for i := 1; i <= nNodes; i++ {
			for e, n := 0, 1+rng.Intn(4); e < n; e++ {
				ops = append(ops, op{
					from:  NodeID(rng.Intn(i)),
					to:    NodeID(i),
					lat:   int64(rng.Intn(8)),
					class: EdgeClass(rng.Intn(int(NumEdgeClasses))),
				})
			}
			if rng.Intn(4) == 0 {
				ops = append(ops, op{push: true, to: NodeID(i), lat: int64(rng.Intn(30))})
			}
		}
		run := func(lean bool) []int64 {
			g := NewGraphN(64)
			g.ResetMode(lean)
			for i := 0; i < nNodes; i++ {
				g.NewNode(KindExecute, int32(i))
			}
			for _, o := range ops {
				if o.push {
					g.PushTime(o.to, o.lat, o.class)
				} else {
					g.AddEdge(o.from, o.to, o.lat, o.class)
				}
			}
			times := make([]int64, nNodes+1)
			for id := range times {
				times[id] = g.Time(NodeID(id))
			}
			return times
		}
		attrib, lean := run(false), run(true)
		for id := range attrib {
			if attrib[id] != lean[id] {
				t.Fatalf("trial %d node %d: attrib time %d, lean time %d", trial, id, attrib[id], lean[id])
			}
		}
	}
}

// TestRetireRebasesIndexing checks that Retire drops retired nodes while
// keeping live node IDs meaningful, that times keep relaxing correctly
// across the rebased window, and that the high-water marks record the
// pre-retirement peak.
func TestRetireRebasesIndexing(t *testing.T) {
	g := NewGraph()
	g.ResetMode(true)
	prev := g.Origin()
	ids := []NodeID{prev}
	for i := 0; i < 100; i++ {
		id := g.NewNode(KindExecute, int32(i))
		g.AddEdge(prev, id, 3, EdgeExec)
		prev = id
		ids = append(ids, id)
	}
	if got := g.Resident(); got != 101 {
		t.Fatalf("Resident = %d, want 101", got)
	}
	g.Retire(ids[60])
	if got := g.Resident(); got != 41 {
		t.Fatalf("Resident after Retire = %d, want 41", got)
	}
	if got := g.Base(); got != ids[60] {
		t.Fatalf("Base = %d, want %d", got, ids[60])
	}
	if got := g.Time(ids[60]); got != 180 {
		t.Fatalf("Time(first live) = %d, want 180", got)
	}
	if got := g.Time(prev); got != 300 {
		t.Fatalf("Time(last) = %d, want 300", got)
	}
	id := g.NewNode(KindExecute, -1)
	g.AddEdge(prev, id, 5, EdgeExec)
	if got := g.Time(id); got != 305 {
		t.Fatalf("Time(post-retire node) = %d, want 305", got)
	}
	if got := g.Len(); got != 102 {
		t.Fatalf("Len = %d, want 102 (retired nodes still counted)", got)
	}
	if hw := g.HighWaterNodes(); hw != 101 {
		t.Fatalf("HighWaterNodes = %d, want 101", hw)
	}
	if hw := g.HighWaterBytes(); hw != 101*8 {
		t.Fatalf("HighWaterBytes = %d, want %d", hw, 101*8)
	}
}
