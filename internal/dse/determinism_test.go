package dse

import (
	"bytes"
	"encoding/json"
	"testing"

	"exocore/internal/cli"
	"exocore/internal/cores"
	"exocore/internal/report"
	"exocore/internal/runner"
	"exocore/internal/workloads"
)

func detWorkloads(t *testing.T) []*workloads.Workload {
	t.Helper()
	var ws []*workloads.Workload
	for _, name := range []string{"mm", "cjpeg", "mcf"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	return ws
}

// marshal renders an exploration to canonical bytes (the same designs
// slice cmd/dse prints), for byte-identity comparison.
func marshal(t *testing.T, exp *Exploration) []byte {
	t.Helper()
	b, err := json.MarshalIndent(exp.Designs, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSerialParallelByteIdentical asserts the exploration output is
// byte-identical between workers=1 and a heavily parallel run, so worker
// count and completion order can never leak into results.
func TestSerialParallelByteIdentical(t *testing.T) {
	ws := detWorkloads(t)
	cs := []cores.Config{cores.IO2, cores.OOO2}

	serial, err := Explore(Options{
		Workloads: ws, Cores: cs,
		Engine: runner.New(runner.Options{MaxDyn: 10_000, Workers: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Explore(Options{
		Workloads: ws, Cores: cs,
		Engine: runner.New(runner.Options{MaxDyn: 10_000, Workers: 16}),
	})
	if err != nil {
		t.Fatal(err)
	}

	sb, pb := marshal(t, serial), marshal(t, parallel)
	if !bytes.Equal(sb, pb) {
		for i := range sb {
			if i >= len(pb) || sb[i] != pb[i] {
				lo := i - 80
				if lo < 0 {
					lo = 0
				}
				t.Fatalf("serial and parallel output diverge at byte %d:\nserial:   ...%s\nparallel: ...%s",
					i, sb[lo:min(i+80, len(sb))], pb[lo:min(i+80, len(pb))])
			}
		}
		t.Fatalf("serial (%d bytes) is a prefix of parallel (%d bytes)", len(sb), len(pb))
	}
}

// reportDoc renders an exploration as the exocore-result/v1 document
// cmd/dse emits with -json, without the Metrics block (cache counters
// legitimately differ between cached and uncached engines).
func reportDoc(t *testing.T, exp *Exploration) []byte {
	t.Helper()
	doc := report.New("dse")
	for _, d := range exp.Designs {
		doc.Add(report.Result{
			Design: d.Code, Core: d.Core.Name, BSAs: SubsetBSAs(d.Mask),
			AreaMM2: d.AreaMM2,
			RelPerf: d.RelPerf, RelEnergyEff: d.RelEnergyEff, RelArea: d.RelArea,
		})
		for _, b := range d.PerBench {
			doc.Add(report.Result{
				Design: d.Code, Core: d.Core.Name, Bench: b.Bench,
				Category: string(b.Category),
				Cycles:   b.Cycles, EnergyNJ: b.EnergyNJ,
			})
		}
	}
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCachedSweepByteIdentical is the end-to-end correctness gate for the
// evaluation-unit cache: over the quick-set workloads and all 16 BSA
// subsets, a sweep with unit-outcome memoization must produce a
// byte-identical exocore-result/v1 document to a sweep that rebuilds
// every unit from scratch.
func TestCachedSweepByteIdentical(t *testing.T) {
	var ws []*workloads.Workload
	for _, name := range cli.QuickSet {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	cs := []cores.Config{cores.OOO2}

	cached, err := Explore(Options{
		Workloads: ws, Cores: cs,
		Engine: runner.New(runner.Options{MaxDyn: 10_000}),
	})
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := Explore(Options{
		Workloads: ws, Cores: cs,
		Engine: runner.New(runner.Options{MaxDyn: 10_000, NoSegmentCache: true}),
	})
	if err != nil {
		t.Fatal(err)
	}

	cb, ub := reportDoc(t, cached), reportDoc(t, uncached)
	if !bytes.Equal(cb, ub) {
		for i := range cb {
			if i >= len(ub) || cb[i] != ub[i] {
				lo := i - 80
				if lo < 0 {
					lo = 0
				}
				t.Fatalf("cached and uncached sweeps diverge at byte %d:\ncached:   ...%s\nuncached: ...%s",
					i, cb[lo:min(i+80, len(cb))], ub[lo:min(i+80, len(ub))])
			}
		}
		t.Fatalf("cached doc (%d bytes) is a prefix of uncached doc (%d bytes)", len(cb), len(ub))
	}
}

// TestDeltaMatchesFullRun is the end-to-end correctness gate for the
// incremental delta-evaluation path (baseline-relative segmentation,
// prefix reuse, the cross-core shared pool): over the quick-set
// workloads and all 16 BSA subsets, a sweep on the default delta engine
// must produce a byte-identical exocore-result/v1 document to a sweep on
// an engine with delta evaluation disabled (the -nodelta escape hatch).
func TestDeltaMatchesFullRun(t *testing.T) {
	var ws []*workloads.Workload
	for _, name := range cli.QuickSet {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	cs := []cores.Config{cores.IO2, cores.OOO2}

	delta, err := Explore(Options{
		Workloads: ws, Cores: cs,
		Engine: runner.New(runner.Options{MaxDyn: 10_000}),
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Explore(Options{
		Workloads: ws, Cores: cs,
		Engine: runner.New(runner.Options{MaxDyn: 10_000, NoDelta: true}),
	})
	if err != nil {
		t.Fatal(err)
	}

	db, fb := reportDoc(t, delta), reportDoc(t, full)
	if !bytes.Equal(db, fb) {
		for i := range db {
			if i >= len(fb) || db[i] != fb[i] {
				lo := i - 80
				if lo < 0 {
					lo = 0
				}
				t.Fatalf("delta and full sweeps diverge at byte %d:\ndelta: ...%s\nfull:  ...%s",
					i, db[lo:min(i+80, len(db))], fb[lo:min(i+80, len(fb))])
			}
		}
		t.Fatalf("delta doc (%d bytes) is a prefix of full doc (%d bytes)", len(db), len(fb))
	}
}

// TestExploreReusesCache asserts the engine does strictly less redundant
// work than the naive per-design loop: across the 16 subsets per core,
// scheduling contexts are built exactly once per (bench, core) and
// repeated assignments are served from the eval cache.
func TestExploreReusesCache(t *testing.T) {
	ws := detWorkloads(t)
	cs := []cores.Config{cores.IO2, cores.OOO2}
	eng := runner.New(runner.Options{MaxDyn: 10_000})
	if _, err := Explore(Options{Workloads: ws, Cores: cs, Engine: eng}); err != nil {
		t.Fatal(err)
	}
	m := eng.Metrics()

	if got, want := m.Stage(runner.StageSched).Misses, int64(len(ws)*len(cs)); got != want {
		t.Errorf("sched contexts built = %d, want exactly %d (one per bench×core)", got, want)
	}
	ev := m.Stage(runner.StageEval)
	// 2^N subsets × benches × cores evaluations requested, but distinct
	// assignments are far fewer: the hit counter must be positive.
	if got, want := ev.Calls, int64((1<<eng.BSAs().Len())*len(ws)*len(cs)); got != want {
		t.Errorf("eval calls = %d, want %d", got, want)
	}
	if ev.Hits == 0 {
		t.Error("eval cache hits = 0: the 16 subsets did not share any work")
	}
	if ev.Misses >= ev.Calls {
		t.Error("every evaluation missed: memoization is not effective")
	}
	t.Logf("eval: %d calls, %d served from cache (%.0f%%)",
		ev.Calls, ev.Hits, 100*float64(ev.Hits)/float64(ev.Calls))
}

// TestSharedEngineAcrossExplorations asserts a second exploration on the
// same engine is served almost entirely from cache.
func TestSharedEngineAcrossExplorations(t *testing.T) {
	ws := detWorkloads(t)
	cs := []cores.Config{cores.IO2}
	eng := runner.New(runner.Options{MaxDyn: 10_000})
	first, err := Explore(Options{Workloads: ws, Cores: cs, Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	missesAfterFirst := eng.Metrics().Stage(runner.StageEval).Misses

	second, err := Explore(Options{Workloads: ws, Cores: cs, Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Metrics().Stage(runner.StageEval).Misses; got != missesAfterFirst {
		t.Errorf("second exploration recomputed %d evaluations", got-missesAfterFirst)
	}
	if !bytes.Equal(marshal(t, first), marshal(t, second)) {
		t.Error("cached re-exploration produced different results")
	}
}
