// Package dse drives the paper's design-space exploration (§5): all
// combinations of the four general cores and the 16 subsets of the four
// BSAs (64 designs), evaluated over the full workload suite with the
// Oracle scheduler (one result set uses the Amdahl-tree scheduler for the
// §5.4 comparison). Per-(benchmark, core) scheduling contexts are built
// once and shared across the 16 subsets; identical assignments are
// memoized.
package dse

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"exocore/internal/area"
	"exocore/internal/bsa/dpcgra"
	"exocore/internal/bsa/nsdf"
	"exocore/internal/bsa/simd"
	"exocore/internal/bsa/tracep"
	"exocore/internal/cores"
	"exocore/internal/exocore"
	"exocore/internal/sched"
	"exocore/internal/stats"
	"exocore/internal/tdg"
	"exocore/internal/workloads"
)

// BSA letter codes as used in the paper's Figure 12.
var bsaLetters = []struct {
	Letter byte
	Name   string
}{
	{'S', "SIMD"},
	{'D', "DP-CGRA"},
	{'N', "NS-DF"},
	{'T', "Trace-P"},
}

// NewBSASet instantiates fresh models for all four BSAs.
func NewBSASet() map[string]tdg.BSA {
	return map[string]tdg.BSA{
		"SIMD":    simd.New(),
		"DP-CGRA": dpcgra.New(),
		"NS-DF":   nsdf.New(),
		"Trace-P": tracep.New(),
	}
}

// SubsetName renders a BSA bitmask (bit i = bsaLetters[i]) as the paper's
// letter code, eg. "SDN"; the empty subset renders as "".
func SubsetName(mask int) string {
	var sb strings.Builder
	for i, bl := range bsaLetters {
		if mask&(1<<i) != 0 {
			sb.WriteByte(bl.Letter)
		}
	}
	return sb.String()
}

// SubsetBSAs returns the BSA names in a bitmask.
func SubsetBSAs(mask int) []string {
	var out []string
	for i, bl := range bsaLetters {
		if mask&(1<<i) != 0 {
			out = append(out, bl.Name)
		}
	}
	return out
}

// DesignCode names a design point: "OOO2-SDN", or just "IO2" for no BSAs.
func DesignCode(core cores.Config, mask int) string {
	s := SubsetName(mask)
	if s == "" {
		return core.Name
	}
	return core.Name + "-" + s
}

// BenchResult is one benchmark's outcome on one design point.
type BenchResult struct {
	Bench    string
	Category workloads.Category
	Cycles   int64
	EnergyNJ float64
}

// DesignResult aggregates one design point.
type DesignResult struct {
	Core     cores.Config
	Mask     int
	Code     string
	AreaMM2  float64
	PerBench []BenchResult

	// Aggregates relative to the reference design (set by Explore).
	RelPerf      float64
	RelEnergyEff float64
	RelArea      float64
}

// Options configures an exploration.
type Options struct {
	// MaxDyn is the per-benchmark dynamic-instruction budget (0 =
	// DefaultMaxDyn).
	MaxDyn int
	// Workloads restricts the benchmark set (nil = all).
	Workloads []*workloads.Workload
	// Cores restricts the core set (nil = all four).
	Cores []cores.Config
	// UseAmdahl selects the Amdahl-tree scheduler instead of the Oracle.
	UseAmdahl bool
	// Parallelism bounds worker goroutines (0 = NumCPU).
	Parallelism int
}

// DefaultMaxDyn is the exploration trace budget per benchmark.
const DefaultMaxDyn = 100_000

// Exploration is the full design-space result.
type Exploration struct {
	Designs []DesignResult
	// Reference is the design all Rel* metrics are normalized to (IO2
	// with no BSAs, as in Figure 12).
	Reference string
}

// benchCtx is the per-(benchmark, core) scheduling context plus memoized
// assignment evaluations.
type benchCtx struct {
	w   *workloads.Workload
	ctx *sched.Context

	mu   sync.Mutex
	memo map[string][2]float64 // assignment signature -> cycles, energy
}

func assignmentKey(a exocore.Assignment) string {
	keys := make([]int, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%d=%s;", k, a[k])
	}
	return sb.String()
}

func (bc *benchCtx) eval(assign exocore.Assignment) (int64, float64, error) {
	key := assignmentKey(assign)
	bc.mu.Lock()
	if v, ok := bc.memo[key]; ok {
		bc.mu.Unlock()
		return int64(v[0]), v[1], nil
	}
	bc.mu.Unlock()
	cycles, energy, err := bc.ctx.Evaluate(assign)
	if err != nil {
		return 0, 0, err
	}
	bc.mu.Lock()
	bc.memo[key] = [2]float64{float64(cycles), energy}
	bc.mu.Unlock()
	return cycles, energy, nil
}

// Explore runs the full exploration.
func Explore(opts Options) (*Exploration, error) {
	ws := opts.Workloads
	if ws == nil {
		ws = workloads.All()
	}
	cs := opts.Cores
	if cs == nil {
		cs = cores.Configs
	}
	maxDyn := opts.MaxDyn
	if maxDyn <= 0 {
		maxDyn = DefaultMaxDyn
	}
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.NumCPU()
	}

	// Phase 1: build scheduling contexts for every (bench, core).
	type ctxKey struct {
		bench string
		core  string
	}
	ctxs := make(map[ctxKey]*benchCtx)
	var mu sync.Mutex
	var firstErr error
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for _, w := range ws {
		for _, core := range cs {
			w, core := w, core
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				tr, err := w.Trace(maxDyn)
				if err == nil {
					var td *tdg.TDG
					td, err = tdg.Build(tr)
					if err == nil {
						var sc *sched.Context
						sc, err = sched.NewContext(td, core, NewBSASet())
						if err == nil {
							mu.Lock()
							ctxs[ctxKey{w.Name, core.Name}] = &benchCtx{
								w: w, ctx: sc, memo: make(map[string][2]float64),
							}
							mu.Unlock()
							return
						}
					}
				}
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("dse: %s on %s: %w", w.Name, core.Name, err)
				}
				mu.Unlock()
			}()
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Phase 2: evaluate all 16 subsets per (bench, core).
	exp := &Exploration{Reference: "IO2"}
	designs := make([]DesignResult, 0, len(cs)*16)
	for _, core := range cs {
		for mask := 0; mask < 16; mask++ {
			bsaNames := SubsetBSAs(mask)
			var bsaModels []tdg.BSA
			set := NewBSASet()
			for _, n := range bsaNames {
				bsaModels = append(bsaModels, set[n])
			}
			dr := DesignResult{
				Core: core, Mask: mask,
				Code:    DesignCode(core, mask),
				AreaMM2: area.Total(core, bsaModels),
			}
			designs = append(designs, dr)
		}
	}

	var dmu sync.Mutex
	for di := range designs {
		di := di
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			d := &designs[di]
			avail := SubsetBSAs(d.Mask)
			for _, w := range ws {
				bc := ctxs[ctxKey{w.Name, d.Core.Name}]
				var assign exocore.Assignment
				if opts.UseAmdahl {
					assign = bc.ctx.AmdahlTree(avail)
				} else {
					assign = bc.ctx.Oracle(avail)
				}
				cycles, energy, err := bc.eval(assign)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				dmu.Lock()
				d.PerBench = append(d.PerBench, BenchResult{
					Bench: w.Name, Category: w.Category,
					Cycles: cycles, EnergyNJ: energy,
				})
				dmu.Unlock()
			}
			dmu.Lock()
			sort.Slice(d.PerBench, func(a, b int) bool { return d.PerBench[a].Bench < d.PerBench[b].Bench })
			dmu.Unlock()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	exp.Designs = designs
	exp.normalize()
	return exp, nil
}

// normalize computes Rel* aggregates against the reference design.
func (e *Exploration) normalize() {
	ref := e.Design(e.Reference)
	if ref == nil {
		return
	}
	refBench := make(map[string]BenchResult, len(ref.PerBench))
	for _, b := range ref.PerBench {
		refBench[b.Bench] = b
	}
	for i := range e.Designs {
		d := &e.Designs[i]
		var perf, eff []float64
		for _, b := range d.PerBench {
			r := refBench[b.Bench]
			perf = append(perf, float64(r.Cycles)/float64(b.Cycles))
			eff = append(eff, r.EnergyNJ/b.EnergyNJ)
		}
		d.RelPerf = stats.Geomean(perf)
		d.RelEnergyEff = stats.Geomean(eff)
		d.RelArea = d.AreaMM2 / ref.AreaMM2
	}
}

// Design returns the named design point, or nil.
func (e *Exploration) Design(code string) *DesignResult {
	for i := range e.Designs {
		if e.Designs[i].Code == code {
			return &e.Designs[i]
		}
	}
	return nil
}

// RelativeTo recomputes (perf, energy-eff) of design `code` against an
// arbitrary baseline design, per-benchmark geomean — used for headline
// claims like "OOO2-SDN vs OOO6-S".
func (e *Exploration) RelativeTo(code, baseline string) (float64, float64, error) {
	d := e.Design(code)
	b := e.Design(baseline)
	if d == nil || b == nil {
		return 0, 0, fmt.Errorf("dse: unknown design %q or %q", code, baseline)
	}
	baseBench := make(map[string]BenchResult, len(b.PerBench))
	for _, r := range b.PerBench {
		baseBench[r.Bench] = r
	}
	var perf, eff []float64
	for _, r := range d.PerBench {
		base := baseBench[r.Bench]
		perf = append(perf, float64(base.Cycles)/float64(r.Cycles))
		eff = append(eff, base.EnergyNJ/r.EnergyNJ)
	}
	return stats.Geomean(perf), stats.Geomean(eff), nil
}

// CategoryAggregate returns (relPerf, relEff) of a design over one
// workload category, normalized to the reference design (Figure 11).
func (e *Exploration) CategoryAggregate(code string, cat workloads.Category) (float64, float64) {
	d := e.Design(code)
	ref := e.Design(e.Reference)
	if d == nil || ref == nil {
		return 0, 0
	}
	refBench := make(map[string]BenchResult, len(ref.PerBench))
	for _, b := range ref.PerBench {
		refBench[b.Bench] = b
	}
	var perf, eff []float64
	for _, b := range d.PerBench {
		if b.Category != cat {
			continue
		}
		r := refBench[b.Bench]
		perf = append(perf, float64(r.Cycles)/float64(b.Cycles))
		eff = append(eff, r.EnergyNJ/b.EnergyNJ)
	}
	if len(perf) == 0 {
		return 0, 0
	}
	return stats.Geomean(perf), stats.Geomean(eff)
}

// Frontier returns the Pareto-optimal designs by (RelPerf ↑,
// RelEnergyEff ↑), sorted by performance — the Figure 3/10 frontier.
func (e *Exploration) Frontier() []DesignResult {
	sorted := append([]DesignResult(nil), e.Designs...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].RelPerf > sorted[b].RelPerf })
	var out []DesignResult
	bestEff := 0.0
	for _, d := range sorted {
		if d.RelEnergyEff > bestEff {
			out = append(out, d)
			bestEff = d.RelEnergyEff
		}
	}
	// Return in ascending performance order.
	for l, r := 0, len(out)-1; l < r; l, r = l+1, r-1 {
		out[l], out[r] = out[r], out[l]
	}
	return out
}
