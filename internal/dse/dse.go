// Package dse drives the paper's design-space exploration (§5): all
// combinations of the four general cores and every subset of the
// registered BSAs (4 cores × 2^N subsets; 64 designs for the paper's
// original four models, 128 with GS-DAE registered), evaluated over the
// full workload suite with the Oracle scheduler (one result set uses the
// Amdahl-tree scheduler for the §5.4 comparison). The grid follows the
// engine's bsa.Registry, so registering a model grows the sweep without
// touching this package. All pipeline stages — trace, TDG, scheduling
// context, assignment evaluation — run through the shared runner.Engine,
// so per-(benchmark, core) artifacts are built once and identical
// assignments across subsets are evaluated once.
package dse

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"exocore/internal/area"
	"exocore/internal/bsa"
	"exocore/internal/cores"
	"exocore/internal/report"
	"exocore/internal/runner"
	"exocore/internal/stats"
	"exocore/internal/tdg"
	"exocore/internal/workloads"
)

// SubsetName renders a BSA bitmask (bit i = registry entry i) as the
// paper's letter code against the default registry, eg. "SDN"; the empty
// subset renders as "".
func SubsetName(mask int) string { return bsa.Default().SubsetName(mask) }

// SubsetBSAs returns the BSA names in a bitmask (default registry).
func SubsetBSAs(mask int) []string { return bsa.Default().SubsetNames(mask) }

// DesignCode names a design point: "OOO2-SDN", or just "IO2" for no BSAs.
func DesignCode(core cores.Config, mask int) string {
	return designCode(bsa.Default(), core, mask)
}

func designCode(reg *bsa.Registry, core cores.Config, mask int) string {
	s := reg.SubsetName(mask)
	if s == "" {
		return core.Name
	}
	return core.Name + "-" + s
}

// ParseDesignCode inverts DesignCode against the default registry:
// "OOO2-SDN" → (OOO2 config, mask for SIMD+DP-CGRA+NS-DF). A bare core
// name parses as the empty subset.
func ParseDesignCode(code string) (cores.Config, int, error) {
	return parseDesignCode(bsa.Default(), code)
}

// ParseDesignCodeIn is ParseDesignCode against an explicit registry —
// the daemon validates request design codes against its engine's
// (possibly restricted) registry, so a letter outside that registry is
// a client error, not a silent full-registry fallback.
func ParseDesignCodeIn(reg *bsa.Registry, code string) (cores.Config, int, error) {
	return parseDesignCode(reg, code)
}

// DesignCodeIn is DesignCode against an explicit registry.
func DesignCodeIn(reg *bsa.Registry, core cores.Config, mask int) string {
	return designCode(reg, core, mask)
}

func parseDesignCode(reg *bsa.Registry, code string) (cores.Config, int, error) {
	name, letters, _ := strings.Cut(code, "-")
	core, ok := cores.ConfigByName(name)
	if !ok {
		return cores.Config{}, 0, fmt.Errorf("dse: unknown core %q in design %q", name, code)
	}
	mask, err := reg.ParseLetters(letters)
	if err != nil {
		return cores.Config{}, 0, fmt.Errorf("dse: design %q: %w", code, err)
	}
	return core, mask, nil
}

// BenchResult is one benchmark's outcome on one design point.
type BenchResult struct {
	Bench    string
	Category workloads.Category
	Cycles   int64
	EnergyNJ float64
}

// DesignResult aggregates one design point.
type DesignResult struct {
	Core cores.Config
	// Mask selects BSAs by bit position in the exploration's registry
	// (the engine's, which may be a restricted subset of the default).
	Mask int
	// BSAs is the resolved model-name list the mask selects.
	BSAs     []string
	Code     string
	AreaMM2  float64
	PerBench []BenchResult

	// Aggregates relative to the reference design (set by Explore).
	RelPerf      float64
	RelEnergyEff float64
	RelArea      float64
}

// Options configures an exploration.
type Options struct {
	// MaxDyn is the per-benchmark dynamic-instruction budget (0 =
	// DefaultMaxDyn). Ignored when Engine is supplied.
	MaxDyn int
	// Workloads restricts the benchmark set (nil = all).
	Workloads []*workloads.Workload
	// Cores restricts the core set (nil = all four).
	Cores []cores.Config
	// UseAmdahl selects the Amdahl-tree scheduler instead of the Oracle.
	UseAmdahl bool
	// Parallelism bounds worker goroutines (0 = GOMAXPROCS). Ignored
	// when Engine is supplied.
	Parallelism int
	// Engine, if non-nil, is the shared evaluation engine to use —
	// repeated explorations (or other tools in the same process) then
	// reuse its artifact caches.
	Engine *runner.Engine
	// Designs, if non-empty, restricts the sweep to these design codes
	// (eg. "OOO2-SDN"), evaluated in the given order with duplicates
	// collapsed, instead of the full cores × 16-subset grid. Rel*
	// aggregates are normalized against the reference design only when
	// the list contains it; otherwise they stay zero.
	Designs []string
}

// DefaultMaxDyn is the exploration trace budget per benchmark.
const DefaultMaxDyn = runner.DefaultMaxDyn

// Exploration is the full design-space result.
type Exploration struct {
	Designs []DesignResult
	// Reference is the design all Rel* metrics are normalized to (IO2
	// with no BSAs, as in Figure 12).
	Reference string
}

// Explore runs the full exploration.
func Explore(opts Options) (*Exploration, error) {
	return ExploreCtx(context.Background(), opts)
}

// ExploreCtx is Explore with cancellation: a done ctx stops workers from
// claiming new (bench, core) warm-ups or design evaluations and the
// exploration returns the ctx error. The evaluation daemon threads each
// request's ctx through here so disconnected sweep clients stop burning
// workers.
func ExploreCtx(ctx context.Context, opts Options) (*Exploration, error) {
	ws := opts.Workloads
	if ws == nil {
		ws = workloads.All()
	}
	eng := opts.Engine
	if eng == nil {
		eng = runner.New(runner.Options{MaxDyn: opts.MaxDyn, Workers: opts.Parallelism})
	}
	reg := eng.BSAs()

	// Resolve the design grid: the full cores × 2^N-subset cross product
	// over the engine's registry, or an explicit design-code list.
	protos, cs, err := designGrid(reg, opts.Designs, opts.Cores)
	if err != nil {
		return nil, err
	}

	// Phase 1: warm the per-(bench, core) scheduling contexts in
	// parallel. The engine computes each exactly once.
	type pair struct {
		w    *workloads.Workload
		core cores.Config
	}
	var pairs []pair
	for _, w := range ws {
		for _, core := range cs {
			pairs = append(pairs, pair{w, core})
		}
	}
	if err := eng.ForEachCtx(ctx, len(pairs), func(i int) error {
		_, err := eng.ContextCtx(ctx, pairs[i].w, pairs[i].core)
		return err
	}); err != nil {
		return nil, err
	}

	// Phase 2: evaluate every design point. Designs are laid out in a
	// fixed order and filled by index, so the result is identical
	// regardless of worker count or completion order; the engine's eval
	// cache deduplicates identical assignments across subsets.
	designs, err := runner.MapCtx(ctx, eng, len(protos), func(di int) (DesignResult, error) {
		d := protos[di]
		avail := d.BSAs
		for _, w := range ws {
			sc, err := eng.ContextCtx(ctx, w, d.Core)
			if err != nil {
				return d, err
			}
			var assign map[int]string
			if opts.UseAmdahl {
				assign = sc.AmdahlTree(avail)
			} else {
				assign = sc.Oracle(avail)
			}
			cycles, energy, err := eng.EvaluateCtx(ctx, w, d.Core, assign)
			if err != nil {
				return d, err
			}
			d.PerBench = append(d.PerBench, BenchResult{
				Bench: w.Name, Category: w.Category,
				Cycles: cycles, EnergyNJ: energy,
			})
		}
		sort.Slice(d.PerBench, func(a, b int) bool { return d.PerBench[a].Bench < d.PerBench[b].Bench })
		return d, nil
	})
	if err != nil {
		return nil, err
	}

	exp := &Exploration{Designs: designs, Reference: "IO2"}
	exp.Normalize()
	return exp, nil
}

// designGrid resolves a design list into evaluation-ready prototypes
// (code, BSA names, area — everything but the measurements) plus the
// distinct cores involved. An explicit code list is kept in order with
// canonical duplicates collapsed; an empty list expands to the full
// cs × 2^N-subset cross product (cs nil = all four cores). This is the
// single grid-resolution path, shared by ExploreCtx and by the fabric
// coordinator's shell (NewShell), so both agree on design identity,
// order and area to the last bit.
func designGrid(reg *bsa.Registry, designs []string, cs []cores.Config) ([]DesignResult, []cores.Config, error) {
	if cs == nil {
		cs = cores.Configs
	}
	type point struct {
		core cores.Config
		mask int
	}
	var points []point
	if len(designs) > 0 {
		seen := make(map[string]bool, len(designs))
		csSeen := make(map[string]bool)
		cs = nil
		for _, code := range designs {
			core, mask, err := parseDesignCode(reg, code)
			if err != nil {
				return nil, nil, err
			}
			if canon := designCode(reg, core, mask); seen[canon] {
				continue
			} else {
				seen[canon] = true
			}
			points = append(points, point{core, mask})
			if !csSeen[core.Name] {
				csSeen[core.Name] = true
				cs = append(cs, core)
			}
		}
	} else {
		for _, core := range cs {
			for mask := 0; mask < 1<<reg.Len(); mask++ {
				points = append(points, point{core, mask})
			}
		}
	}

	// Area accounting is stateless, so one BSA set and one model slice
	// per mask serve every core instead of being rebuilt per design.
	set := reg.New()
	maskModels := make([][]tdg.BSA, 1<<reg.Len())
	for mask := 1; mask < len(maskModels); mask++ {
		for _, n := range reg.SubsetNames(mask) {
			maskModels[mask] = append(maskModels[mask], set[n])
		}
	}
	protos := make([]DesignResult, 0, len(points))
	for _, p := range points {
		protos = append(protos, DesignResult{
			Core: p.core, Mask: p.mask,
			BSAs:    reg.SubsetNames(p.mask),
			Code:    designCode(reg, p.core, p.mask),
			AreaMM2: area.Total(p.core, maskModels[p.mask]),
		})
	}
	return protos, cs, nil
}

// GridCodes enumerates the design codes a sweep would evaluate: the
// explicit list canonicalized with duplicates collapsed, or (for an
// empty list) the full cores × subsets grid over reg. The fabric
// coordinator uses it to shard exactly the grid a single daemon would
// sweep.
func GridCodes(reg *bsa.Registry, designs []string, cs []cores.Config) ([]string, error) {
	protos, _, err := designGrid(reg, designs, cs)
	if err != nil {
		return nil, err
	}
	codes := make([]string, len(protos))
	for i := range protos {
		codes[i] = protos[i].Code
	}
	return codes, nil
}

// NewShell builds an Exploration over the given design codes with
// every measurement still missing: the grid-derived identity (codes,
// BSA lists, areas) is filled in, PerBench is empty. The fabric
// coordinator reassembles sharded sweep results into a shell via
// AddBench + Normalize, reproducing ExploreCtx's aggregates bit for
// bit without re-evaluating anything.
func NewShell(reg *bsa.Registry, designs []string, cs []cores.Config) (*Exploration, error) {
	protos, _, err := designGrid(reg, designs, cs)
	if err != nil {
		return nil, err
	}
	return &Exploration{Designs: protos, Reference: "IO2"}, nil
}

// AddBench appends one benchmark observation to the named design
// (call Normalize once all observations are in).
func (e *Exploration) AddBench(code string, b BenchResult) error {
	d := e.Design(code)
	if d == nil {
		return fmt.Errorf("dse: AddBench: unknown design %q", code)
	}
	for _, have := range d.PerBench {
		if have.Bench == b.Bench {
			return fmt.Errorf("dse: AddBench: design %q already has bench %q", code, b.Bench)
		}
	}
	d.PerBench = append(d.PerBench, b)
	return nil
}

// Normalize sorts each design's per-benchmark results by benchmark
// name and computes the Rel* aggregates against the reference design
// (zero when the reference is absent). Exported because the fabric
// coordinator must reproduce a single daemon's aggregates over
// reassembled shards: the bench-name sort fixes the geomean's operand
// order, so coordinator and single-daemon floats agree bit for bit.
func (e *Exploration) Normalize() {
	for i := range e.Designs {
		d := &e.Designs[i]
		sort.Slice(d.PerBench, func(a, b int) bool { return d.PerBench[a].Bench < d.PerBench[b].Bench })
	}
	ref := e.Design(e.Reference)
	if ref == nil {
		return
	}
	refBench := make(map[string]BenchResult, len(ref.PerBench))
	for _, b := range ref.PerBench {
		refBench[b.Bench] = b
	}
	for i := range e.Designs {
		d := &e.Designs[i]
		var perf, eff []float64
		for _, b := range d.PerBench {
			r := refBench[b.Bench]
			perf = append(perf, float64(r.Cycles)/float64(b.Cycles))
			eff = append(eff, r.EnergyNJ/b.EnergyNJ)
		}
		d.RelPerf = stats.Geomean(perf)
		d.RelEnergyEff = stats.Geomean(eff)
		d.RelArea = d.AreaMM2 / ref.AreaMM2
	}
}

// Design returns the named design point, or nil.
func (e *Exploration) Design(code string) *DesignResult {
	for i := range e.Designs {
		if e.Designs[i].Code == code {
			return &e.Designs[i]
		}
	}
	return nil
}

// RelativeTo recomputes (perf, energy-eff) of design `code` against an
// arbitrary baseline design, per-benchmark geomean — used for headline
// claims like "OOO2-SDN vs OOO6-S".
func (e *Exploration) RelativeTo(code, baseline string) (float64, float64, error) {
	d := e.Design(code)
	b := e.Design(baseline)
	if d == nil || b == nil {
		return 0, 0, fmt.Errorf("dse: unknown design %q or %q", code, baseline)
	}
	baseBench := make(map[string]BenchResult, len(b.PerBench))
	for _, r := range b.PerBench {
		baseBench[r.Bench] = r
	}
	var perf, eff []float64
	for _, r := range d.PerBench {
		base := baseBench[r.Bench]
		perf = append(perf, float64(base.Cycles)/float64(r.Cycles))
		eff = append(eff, base.EnergyNJ/r.EnergyNJ)
	}
	return stats.Geomean(perf), stats.Geomean(eff), nil
}

// CategoryAggregate returns (relPerf, relEff) of a design over one
// workload category, normalized to the reference design (Figure 11).
func (e *Exploration) CategoryAggregate(code string, cat workloads.Category) (float64, float64) {
	d := e.Design(code)
	ref := e.Design(e.Reference)
	if d == nil || ref == nil {
		return 0, 0
	}
	refBench := make(map[string]BenchResult, len(ref.PerBench))
	for _, b := range ref.PerBench {
		refBench[b.Bench] = b
	}
	var perf, eff []float64
	for _, b := range d.PerBench {
		if b.Category != cat {
			continue
		}
		r := refBench[b.Bench]
		perf = append(perf, float64(r.Cycles)/float64(b.Cycles))
		eff = append(eff, r.EnergyNJ/b.EnergyNJ)
	}
	if len(perf) == 0 {
		return 0, 0
	}
	return stats.Geomean(perf), stats.Geomean(eff)
}

// AppendTo appends the exploration to a report document in the shared
// schema: one aggregate row per design (area + Rel* normalized to the
// reference) and one row per (design, benchmark) observation. This is
// the single serialization used by cmd/dse's -json mode and the
// evaluation daemon's /v1/sweep endpoint, so their documents are
// byte-identical for the same inputs. It is exactly AppendAggregates +
// AppendPerBench: the document's stable sort makes the interleaving
// immaterial, which is what lets report.Merge reassemble a sharded
// sweep (per-bench rows from replicas, aggregates from the
// coordinator's shell) into the same bytes.
func (e *Exploration) AppendTo(doc *report.Document) {
	e.AppendAggregates(doc)
	e.AppendPerBench(doc)
}

// AppendAggregates appends the per-design aggregate rows (empty Bench:
// area plus the Rel* metrics Normalize computed).
func (e *Exploration) AppendAggregates(doc *report.Document) {
	for _, d := range e.Designs {
		doc.Add(report.Result{
			Design: d.Code, Core: d.Core.Name, BSAs: d.BSAs,
			AreaMM2: d.AreaMM2,
			RelPerf: d.RelPerf, RelEnergyEff: d.RelEnergyEff, RelArea: d.RelArea,
		})
	}
}

// AppendPerBench appends the per-(design, benchmark) observation rows
// — the shard-local content of a partial sweep, which carries no
// normalization and therefore needs no view of other shards.
func (e *Exploration) AppendPerBench(doc *report.Document) {
	for _, d := range e.Designs {
		for _, b := range d.PerBench {
			doc.Add(report.Result{
				Design: d.Code, Core: d.Core.Name, Bench: b.Bench,
				Category: string(b.Category),
				Cycles:   b.Cycles, EnergyNJ: b.EnergyNJ,
			})
		}
	}
}

// Frontier returns the Pareto-optimal designs by (RelPerf ↑,
// RelEnergyEff ↑), sorted by performance — the Figure 3/10 frontier.
func (e *Exploration) Frontier() []DesignResult {
	sorted := append([]DesignResult(nil), e.Designs...)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].RelPerf != sorted[b].RelPerf {
			return sorted[a].RelPerf > sorted[b].RelPerf
		}
		return sorted[a].Code < sorted[b].Code
	})
	var out []DesignResult
	bestEff := 0.0
	for _, d := range sorted {
		if d.RelEnergyEff > bestEff {
			out = append(out, d)
			bestEff = d.RelEnergyEff
		}
	}
	// Return in ascending performance order.
	for l, r := 0, len(out)-1; l < r; l, r = l+1, r-1 {
		out[l], out[r] = out[r], out[l]
	}
	return out
}
