package dse

import (
	"testing"

	"exocore/internal/bsa"
	"exocore/internal/cores"
	"exocore/internal/runner"
	"exocore/internal/workloads"
)

// stdEngine pins an exploration engine to the paper's original four BSAs,
// keeping the 64-design figures of the paper intact regardless of what
// else is registered. The full-registry grid has its own test below.
func stdEngine(maxDyn int) *runner.Engine {
	return runner.New(runner.Options{MaxDyn: maxDyn, BSAs: bsa.Standard()})
}

func miniExploration(t *testing.T) *Exploration {
	t.Helper()
	var ws []*workloads.Workload
	for _, name := range []string{"mm", "nbody", "cjpeg", "mcf", "gzip", "stencil"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	exp, err := Explore(Options{Workloads: ws, Engine: stdEngine(25000)})
	if err != nil {
		t.Fatal(err)
	}
	return exp
}

// TestExploreGridFollowsRegistry asserts the sweep grid is 2^N subsets
// for an N-model registry: the default five-model registry yields a
// 32-subset-per-core grid with GS-DAE's letter in the full design code.
func TestExploreGridFollowsRegistry(t *testing.T) {
	w, err := workloads.ByName("mm")
	if err != nil {
		t.Fatal(err)
	}
	exp, err := Explore(Options{
		Workloads: []*workloads.Workload{w},
		Cores:     []cores.Config{cores.OOO2},
		Engine:    runner.New(runner.Options{MaxDyn: 10_000}),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 << bsa.Default().Len()
	if len(exp.Designs) != want {
		t.Fatalf("designs = %d, want %d (2^%d subsets)", len(exp.Designs), want, bsa.Default().Len())
	}
	full := exp.Design("OOO2-SDNTG")
	if full == nil {
		t.Fatal("no OOO2-SDNTG design in full-registry grid")
	}
	if len(full.BSAs) != bsa.Default().Len() {
		t.Errorf("full design BSAs = %v", full.BSAs)
	}
}

func TestSubsetNaming(t *testing.T) {
	cases := map[int]string{0: "", 1: "S", 2: "D", 3: "SD", 15: "SDNT", 5: "SN"}
	for mask, want := range cases {
		if got := SubsetName(mask); got != want {
			t.Errorf("SubsetName(%d) = %q, want %q", mask, got, want)
		}
	}
	if DesignCode(cores.OOO2, 0) != "OOO2" || DesignCode(cores.IO2, 7) != "IO2-SDN" {
		t.Error("DesignCode wrong")
	}
}

func TestExploreProduces64Designs(t *testing.T) {
	exp := miniExploration(t)
	if len(exp.Designs) != 64 {
		t.Fatalf("designs = %d, want 64", len(exp.Designs))
	}
	seen := map[string]bool{}
	for _, d := range exp.Designs {
		if seen[d.Code] {
			t.Errorf("duplicate design %s", d.Code)
		}
		seen[d.Code] = true
		if len(d.PerBench) != 6 {
			t.Errorf("%s: %d bench results, want 6", d.Code, len(d.PerBench))
		}
		if d.RelPerf <= 0 || d.RelEnergyEff <= 0 || d.AreaMM2 <= 0 {
			t.Errorf("%s: bad aggregates %+v", d.Code, d)
		}
	}
}

func TestReferenceNormalization(t *testing.T) {
	exp := miniExploration(t)
	ref := exp.Design("IO2")
	if ref == nil {
		t.Fatal("no reference design")
	}
	if ref.RelPerf != 1 || ref.RelEnergyEff != 1 || ref.RelArea != 1 {
		t.Errorf("reference not normalized to 1: %+v", ref)
	}
}

func TestPaperShapeHolds(t *testing.T) {
	exp := miniExploration(t)

	// Wider cores are faster.
	io2 := exp.Design("IO2")
	ooo6 := exp.Design("OOO6")
	if ooo6.RelPerf <= io2.RelPerf {
		t.Error("OOO6 not faster than IO2")
	}
	// Full ExoCore beats its plain core on perf and energy, per core.
	for _, core := range []string{"IO2", "OOO2", "OOO4", "OOO6"} {
		plain := exp.Design(core)
		full := exp.Design(core + "-SDNT")
		if full.RelPerf <= plain.RelPerf {
			t.Errorf("%s-SDNT (%.2f) not faster than %s (%.2f)",
				core, full.RelPerf, core, plain.RelPerf)
		}
		if full.RelEnergyEff <= plain.RelEnergyEff {
			t.Errorf("%s-SDNT (%.2f) not more efficient than %s (%.2f)",
				core, full.RelEnergyEff, core, plain.RelEnergyEff)
		}
	}
	// Area ordering: more BSAs = more area.
	if exp.Design("OOO2-SDNT").AreaMM2 <= exp.Design("OOO2").AreaMM2 {
		t.Error("BSA area not accounted")
	}
}

func TestFrontierIsPareto(t *testing.T) {
	exp := miniExploration(t)
	frontier := exp.Frontier()
	if len(frontier) == 0 {
		t.Fatal("empty frontier")
	}
	for i := 1; i < len(frontier); i++ {
		if frontier[i].RelPerf <= frontier[i-1].RelPerf {
			t.Error("frontier not ascending in performance")
		}
		if frontier[i].RelEnergyEff >= frontier[i-1].RelEnergyEff {
			t.Error("frontier must trade energy for performance")
		}
	}
	// No design dominates a frontier point.
	for _, f := range frontier {
		for _, d := range exp.Designs {
			if d.RelPerf > f.RelPerf && d.RelEnergyEff > f.RelEnergyEff {
				t.Errorf("%s dominated by %s", f.Code, d.Code)
			}
		}
	}
}

func TestRelativeTo(t *testing.T) {
	exp := miniExploration(t)
	perf, eff, err := exp.RelativeTo("OOO2-SDNT", "OOO2")
	if err != nil {
		t.Fatal(err)
	}
	if perf <= 1 || eff <= 1 {
		t.Errorf("full OOO2 ExoCore vs OOO2: perf=%.2f eff=%.2f, want > 1", perf, eff)
	}
	if _, _, err := exp.RelativeTo("nope", "OOO2"); err == nil {
		t.Error("unknown design accepted")
	}
}

func TestCategoryAggregate(t *testing.T) {
	exp := miniExploration(t)
	perfReg, _ := exp.CategoryAggregate("OOO2-SDNT", workloads.Regular)
	perfIrr, _ := exp.CategoryAggregate("OOO2-SDNT", workloads.Irregular)
	if perfReg == 0 || perfIrr == 0 {
		t.Fatal("category aggregates missing")
	}
	if perfReg <= perfIrr {
		t.Errorf("regular workloads should benefit more: reg=%.2f irr=%.2f", perfReg, perfIrr)
	}
}

func TestExploreDesignsRestriction(t *testing.T) {
	w, err := workloads.ByName("mm")
	if err != nil {
		t.Fatal(err)
	}
	ws := []*workloads.Workload{w}

	// Duplicates (including non-canonical spellings) collapse; order is
	// the request order; only the named cores are warmed/evaluated.
	exp, err := Explore(Options{Workloads: ws, Engine: stdEngine(25000),
		Designs: []string{"OOO2-SD", "IO2", "OOO2-DS", "OOO2"}})
	if err != nil {
		t.Fatal(err)
	}
	var codes []string
	for _, d := range exp.Designs {
		codes = append(codes, d.Code)
	}
	want := []string{"OOO2-SD", "IO2", "OOO2"}
	if len(codes) != len(want) {
		t.Fatalf("designs = %v, want %v", codes, want)
	}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("designs = %v, want %v", codes, want)
		}
	}

	// IO2 is in the list, so Rel* normalize against it and the restricted
	// results match the full grid's values for the same design points.
	full, err := Explore(Options{Workloads: ws, Engine: stdEngine(25000)})
	if err != nil {
		t.Fatal(err)
	}
	for _, code := range want {
		got, ref := exp.Design(code), full.Design(code)
		if got.RelPerf != ref.RelPerf || got.RelEnergyEff != ref.RelEnergyEff || got.AreaMM2 != ref.AreaMM2 {
			t.Errorf("%s: restricted (%v %v %v) != full grid (%v %v %v)", code,
				got.RelPerf, got.RelEnergyEff, got.AreaMM2, ref.RelPerf, ref.RelEnergyEff, ref.AreaMM2)
		}
	}

	// Without the reference design the Rel* aggregates stay zero.
	noref, err := Explore(Options{Workloads: ws, Engine: stdEngine(25000), Designs: []string{"OOO2-S"}})
	if err != nil {
		t.Fatal(err)
	}
	if d := noref.Design("OOO2-S"); d.RelPerf != 0 || d.RelEnergyEff != 0 {
		t.Errorf("Rel* computed without the reference design: %+v", d)
	}

	if _, err := Explore(Options{Workloads: ws, Designs: []string{"OOO9-S"}}); err == nil {
		t.Error("unknown design code accepted")
	}
}
