package dse

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"exocore/internal/bsa"
	"exocore/internal/cli"
	"exocore/internal/cores"
	"exocore/internal/report"
	"exocore/internal/runner"
	"exocore/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "rewrite the pre-registry sweep golden")

// TestStandardRegistrySweepMatchesGolden is the compatibility contract
// of the registry redesign: an engine restricted to the paper's four
// BSAs must render the exact bytes the hard-coded four-model sweep
// produced before the registry (and GS-DAE) existed. The golden was
// generated from the pre-registry code; regenerating it (-update) is
// only legitimate when the evaluation model itself changes.
func TestStandardRegistrySweepMatchesGolden(t *testing.T) {
	var ws []*workloads.Workload
	for _, name := range cli.QuickSet {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	eng := runner.New(runner.Options{MaxDyn: 10_000, BSAs: bsa.Standard()})
	exp, err := Explore(Options{
		Workloads: ws,
		Cores:     []cores.Config{cores.IO2, cores.OOO2},
		Engine:    eng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(exp.Designs), 2*16; got != want {
		t.Fatalf("restricted sweep has %d designs, want %d", got, want)
	}

	doc := report.New("dse")
	exp.AppendTo(doc)
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", "sweep_quick_4bsa.golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, want) {
		return
	}
	for i := range got {
		if i >= len(want) || got[i] != want[i] {
			lo := i - 80
			if lo < 0 {
				lo = 0
			}
			t.Fatalf("sweep diverges from pre-registry golden at byte %d:\ngot:    ...%s\ngolden: ...%s",
				i, got[lo:min(i+80, len(got))], want[lo:min(i+80, len(want))])
		}
	}
	t.Fatalf("sweep output (%d bytes) is a prefix of the golden (%d bytes)", len(got), len(want))
}
