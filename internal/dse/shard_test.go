package dse

import (
	"bytes"
	"testing"

	"exocore/internal/bsa"
	"exocore/internal/report"
	"exocore/internal/runner"
	"exocore/internal/workloads"
)

func renderDoc(t *testing.T, doc *report.Document) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShellReassemblyBytesMatchSweep is the in-process version of the
// fabric coordinator's merge path: run a sweep once, then rebuild the
// same document from (a) a shell normalized over per-bench data alone
// and (b) report.Merge of the aggregate and per-bench halves. Both
// must be byte-identical to the direct AppendTo document — this is the
// property that lets shards carry only per-bench rows.
func TestShellReassemblyBytesMatchSweep(t *testing.T) {
	ws := pick(t, "mm", "gzip", "mcf")
	eng := runner.New(runner.Options{MaxDyn: 15000})
	codes := []string{"IO2", "OOO2-S", "OOO2-SD", "OOO4-N", "OOO2-S"} // dup collapses
	exp, err := ExploreCtx(t.Context(), Options{Workloads: ws, Engine: eng, Designs: codes})
	if err != nil {
		t.Fatal(err)
	}
	whole := report.New("dse")
	exp.AppendTo(whole)
	want := renderDoc(t, whole)

	// (a) Shell reconstruction: identity from the grid, measurements
	// fed back one (design, bench) cell at a time, in scrambled order.
	shell, err := NewShell(eng.BSAs(), codes, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range exp.Designs {
		for i := len(d.PerBench) - 1; i >= 0; i-- {
			if err := shell.AddBench(d.Code, d.PerBench[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	shell.Normalize()
	rebuilt := report.New("dse")
	shell.AppendTo(rebuilt)
	if got := renderDoc(t, rebuilt); !bytes.Equal(got, want) {
		t.Errorf("shell-reassembled document diverges from the sweep\nwant:\n%s\ngot:\n%s", want, got)
	}

	// (b) Merge of the two halves, as the coordinator performs it.
	aggDoc := report.New("dse")
	shell.AppendAggregates(aggDoc)
	pbDoc := report.New("dse")
	exp.AppendPerBench(pbDoc)
	got, err := report.Merge(renderDoc(t, pbDoc), renderDoc(t, aggDoc))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("merged halves diverge from the sweep document")
	}

	// AddBench rejects unknown designs and duplicate cells.
	if err := shell.AddBench("OOO6-T", BenchResult{Bench: "mm"}); err == nil {
		t.Error("AddBench accepted an unknown design")
	}
	if err := shell.AddBench("IO2", BenchResult{Bench: "mm"}); err == nil {
		t.Error("AddBench accepted a duplicate (design, bench) cell")
	}
}

// TestGridCodesMatchesExplore checks GridCodes enumerates exactly the
// designs a full sweep evaluates, in the same order.
func TestGridCodesMatchesExplore(t *testing.T) {
	reg := bsa.Default()
	codes, err := GridCodes(reg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ws := pick(t, "mm")
	exp, err := Explore(Options{Workloads: ws, MaxDyn: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if len(codes) != len(exp.Designs) {
		t.Fatalf("GridCodes found %d designs, Explore %d", len(codes), len(exp.Designs))
	}
	for i, c := range codes {
		if exp.Designs[i].Code != c {
			t.Fatalf("design %d: GridCodes %q, Explore %q", i, c, exp.Designs[i].Code)
		}
	}
}

func pick(t *testing.T, names ...string) []*workloads.Workload {
	t.Helper()
	var ws []*workloads.Workload
	for _, n := range names {
		w, err := workloads.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	return ws
}
