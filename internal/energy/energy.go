// Package energy is the event-based power/energy model standing in for
// McPAT + CACTI in the paper's toolchain (§2.4). Graph construction emits
// per-structure events (fetch, rename, issue wakeup, register file, FUs,
// caches, accelerator structures); the model converts event counts plus
// cycle counts into dynamic + static energy. Coefficients are calibrated
// to 22nm-class published values; as in the paper, only *relative*
// energy between design points is meaningful.
package energy

import "fmt"

// Event enumerates every energy event the models emit.
type Event int

// Energy events. Core-pipeline events first, then memory, then
// accelerator-specific events.
const (
	EvFetch Event = iota
	EvDecode
	EvRename
	EvIssueWakeup // instruction window insert + wakeup + select
	EvRegRead
	EvRegWrite
	EvROB
	EvCommit
	EvBpred

	EvIntAluOp
	EvIntMulOp
	EvIntDivOp
	EvFpAddOp
	EvFpMulOp
	EvFpDivOp

	EvLSQ // load/store queue insert+search
	EvL1Access
	EvL2Access
	EvMemAccess

	// SIMD: a vector op costs more than scalar but replaces VecLanes ops.
	EvVecOp
	EvVecMemOp

	// DP-CGRA (DySER-like).
	EvCGRAOp     // one functional unit firing in the fabric
	EvCGRARoute  // switch traversal
	EvCGRAInput  // vector interface in
	EvCGRAOutput // vector interface out
	EvCGRAConfig // configuration load

	// NS-DF (SEED-like).
	EvCFUOp       // compound functional unit firing
	EvDFDispatch  // dataflow tag match + dispatch
	EvDFOpStorage // operand storage read/write
	EvDFBus       // writeback bus transfer

	// Trace-P (BERET-like).
	EvSBAccess   // iteration-versioned store buffer
	EvTraceFetch // trace sequencing
	EvReplay     // misspeculated iteration replayed on the core

	NumEvents
)

var eventNames = [NumEvents]string{
	"fetch", "decode", "rename", "issue", "regread", "regwrite", "rob",
	"commit", "bpred",
	"intalu", "intmul", "intdiv", "fpadd", "fpmul", "fpdiv",
	"lsq", "l1", "l2", "mem",
	"vecop", "vecmem",
	"cgraop", "cgraroute", "cgrain", "cgraout", "cgraconfig",
	"cfuop", "dfdispatch", "dfopstore", "dfbus",
	"sbaccess", "tracefetch", "replay",
}

// String implements fmt.Stringer.
func (e Event) String() string {
	if e >= 0 && e < NumEvents {
		return eventNames[e]
	}
	return fmt.Sprintf("event(%d)", int(e))
}

// Counts accumulates event occurrences during graph construction.
type Counts [NumEvents]int64

// Add records n occurrences of event e.
func (c *Counts) Add(e Event, n int64) { c[e] += n }

// AddCounts merges other into c.
func (c *Counts) AddCounts(other *Counts) {
	for i := range c {
		c[i] += other[i]
	}
}

// Total returns the total event count (for tests).
func (c *Counts) Total() int64 {
	var t int64
	for _, v := range c {
		t += v
	}
	return t
}

// Table holds per-event dynamic energy in picojoules plus static power in
// watts for one hardware configuration.
type Table struct {
	PerEvent [NumEvents]float64 // pJ per event
	StaticW  float64            // leakage + clock power while active, watts
}

// FrequencyGHz is the modeled clock. All designs run at the same clock, as
// in the paper's comparisons.
const FrequencyGHz = 2.0

// Result is the energy outcome of one evaluated execution.
type Result struct {
	DynamicNJ float64
	StaticNJ  float64
	Cycles    int64
}

// TotalNJ returns total energy in nanojoules.
func (r Result) TotalNJ() float64 { return r.DynamicNJ + r.StaticNJ }

// Seconds returns wall-clock time at the modeled frequency.
func (r Result) Seconds() float64 { return float64(r.Cycles) / (FrequencyGHz * 1e9) }

// AvgPowerW returns average power in watts.
func (r Result) AvgPowerW() float64 {
	s := r.Seconds()
	if s == 0 {
		return 0
	}
	return r.TotalNJ() * 1e-9 / s
}

// Evaluate converts counts + cycles into energy under this table.
func (t *Table) Evaluate(c *Counts, cycles int64) Result {
	var dynPJ float64
	for e := Event(0); e < NumEvents; e++ {
		dynPJ += float64(c[e]) * t.PerEvent[e]
	}
	staticNJ := t.StaticW * float64(cycles) / (FrequencyGHz * 1e9) * 1e9
	return Result{DynamicNJ: dynPJ / 1000, StaticNJ: staticNJ, Cycles: cycles}
}

// baseEvents is the 22nm-class per-event energy (pJ) for a 2-wide OOO
// reference pipeline; structure-dependent events are scaled per config.
var baseEvents = [NumEvents]float64{
	EvFetch:       8.0, // I$ read + predecode per instruction
	EvDecode:      3.0,
	EvRename:      6.0,
	EvIssueWakeup: 10.0,
	EvRegRead:     2.5,
	EvRegWrite:    3.5,
	EvROB:         4.0,
	EvCommit:      2.0,
	EvBpred:       2.0,

	EvIntAluOp: 2.0,
	EvIntMulOp: 8.0,
	EvIntDivOp: 20.0,
	EvFpAddOp:  6.0,
	EvFpMulOp:  10.0,
	EvFpDivOp:  30.0,

	EvLSQ:       6.0,
	EvL1Access:  15.0,
	EvL2Access:  80.0,
	EvMemAccess: 600.0,

	EvVecOp:    10.0, // 4 lanes in one op: ~1.25x scalar FU energy total
	EvVecMemOp: 22.0,

	EvCGRAOp:     1.2, // no fetch/decode/rename: near-FU-only cost
	EvCGRARoute:  0.6,
	EvCGRAInput:  4.0,
	EvCGRAOutput: 4.0,
	EvCGRAConfig: 800.0,

	EvCFUOp:       3.0, // compound op amortizes dispatch over sub-ops
	EvDFDispatch:  2.5,
	EvDFOpStorage: 2.0,
	EvDFBus:       1.5,

	EvSBAccess:   3.0,
	EvTraceFetch: 1.5,
	EvReplay:     0.0, // replay energy comes from re-executed core events
}

// CoreParams describes the structure sizes that scale core energy.
type CoreParams struct {
	Width   int
	ROB     int // 0 for in-order
	Window  int // 0 for in-order
	InOrder bool
	AreaMM2 float64
}

// CoreTable builds the per-event energy table for a general-purpose core.
// Scaling rules (documented so ablations are interpretable):
//   - rename/issue/ROB events scale with width and window/ROB size
//     (superlinear wakeup cost, the classic OOO energy tax);
//   - in-order cores pay no rename/issue/ROB energy at all;
//   - static power scales with area.
func CoreTable(p CoreParams) Table {
	t := Table{PerEvent: baseEvents}
	w := float64(p.Width) / 2.0
	if p.InOrder {
		t.PerEvent[EvRename] = 0
		t.PerEvent[EvIssueWakeup] = 1.0 // scoreboard check only
		t.PerEvent[EvROB] = 0
		t.PerEvent[EvFetch] *= 0.9
	} else {
		t.PerEvent[EvRename] *= w * w
		t.PerEvent[EvIssueWakeup] *= (float64(p.Window) / 32.0) * w
		t.PerEvent[EvROB] *= float64(p.ROB) / 64.0
		t.PerEvent[EvRegRead] *= w
		t.PerEvent[EvRegWrite] *= w
	}
	t.StaticW = 0.09 * p.AreaMM2
	return t
}

// AccelParams describes an accelerator's static power contribution while
// it is powered on.
type AccelParams struct {
	AreaMM2 float64
}

// AccelStaticW returns an accelerator's static power in watts.
func AccelStaticW(p AccelParams) float64 { return 0.06 * p.AreaMM2 }
