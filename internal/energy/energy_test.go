package energy

import (
	"testing"
	"testing/quick"
)

func TestCountsAddAndMerge(t *testing.T) {
	var a, b Counts
	a.Add(EvFetch, 10)
	b.Add(EvFetch, 5)
	b.Add(EvL1Access, 3)
	a.AddCounts(&b)
	if a[EvFetch] != 15 || a[EvL1Access] != 3 {
		t.Errorf("merge wrong: %v %v", a[EvFetch], a[EvL1Access])
	}
	if a.Total() != 18 {
		t.Errorf("total = %d, want 18", a.Total())
	}
}

func TestEvaluateDynamicAndStatic(t *testing.T) {
	tbl := Table{StaticW: 1.0}
	tbl.PerEvent[EvFetch] = 1000 // 1000 pJ = 1 nJ per fetch
	var c Counts
	c.Add(EvFetch, 5)
	r := tbl.Evaluate(&c, 2_000_000_000) // 1 second at 2GHz
	if r.DynamicNJ != 5 {
		t.Errorf("dynamic = %v nJ, want 5", r.DynamicNJ)
	}
	if r.StaticNJ < 0.99e9 || r.StaticNJ > 1.01e9 { // 1W for 1s = 1e9 nJ
		t.Errorf("static = %v nJ, want ~1e9", r.StaticNJ)
	}
	if r.Seconds() != 1.0 {
		t.Errorf("seconds = %v, want 1", r.Seconds())
	}
	if p := r.AvgPowerW(); p < 1.0 || p > 1.1 {
		t.Errorf("power = %v W, want ~1", p)
	}
}

func TestCoreTableInOrderCheaper(t *testing.T) {
	io := CoreTable(CoreParams{Width: 2, InOrder: true, AreaMM2: 1.6})
	ooo := CoreTable(CoreParams{Width: 2, ROB: 64, Window: 32, AreaMM2: 3.2})
	if io.PerEvent[EvRename] != 0 || io.PerEvent[EvROB] != 0 {
		t.Error("in-order core must not pay rename/ROB energy")
	}
	if io.PerEvent[EvIssueWakeup] >= ooo.PerEvent[EvIssueWakeup] {
		t.Error("in-order issue must be cheaper than OOO wakeup")
	}
	if io.StaticW >= ooo.StaticW {
		t.Error("smaller core must have lower static power")
	}
}

func TestCoreTableScalesWithWidth(t *testing.T) {
	ooo2 := CoreTable(CoreParams{Width: 2, ROB: 64, Window: 32, AreaMM2: 3.2})
	ooo6 := CoreTable(CoreParams{Width: 6, ROB: 192, Window: 52, AreaMM2: 12.4})
	for _, e := range []Event{EvRename, EvIssueWakeup, EvROB, EvRegRead} {
		if ooo6.PerEvent[e] <= ooo2.PerEvent[e] {
			t.Errorf("%v: OOO6 (%v pJ) should cost more than OOO2 (%v pJ)",
				e, ooo6.PerEvent[e], ooo2.PerEvent[e])
		}
	}
}

func TestAcceleratorEventsCheaperThanPipeline(t *testing.T) {
	tbl := CoreTable(CoreParams{Width: 2, ROB: 64, Window: 32, AreaMM2: 3.2})
	perInstPipeline := tbl.PerEvent[EvFetch] + tbl.PerEvent[EvDecode] +
		tbl.PerEvent[EvRename] + tbl.PerEvent[EvIssueWakeup] + tbl.PerEvent[EvROB]
	if tbl.PerEvent[EvCGRAOp]+tbl.PerEvent[EvCGRARoute] >= perInstPipeline {
		t.Error("CGRA op must be far cheaper than full pipeline traversal")
	}
	if tbl.PerEvent[EvCFUOp]+tbl.PerEvent[EvDFDispatch] >= perInstPipeline {
		t.Error("CFU op must be far cheaper than full pipeline traversal")
	}
}

func TestEventNamesComplete(t *testing.T) {
	for e := Event(0); e < NumEvents; e++ {
		if e.String() == "" {
			t.Errorf("event %d has no name", int(e))
		}
	}
	if Event(NumEvents).String() == "" {
		t.Error("out-of-range event should still render")
	}
}

func TestEvaluateNonNegativeProperty(t *testing.T) {
	tbl := CoreTable(CoreParams{Width: 4, ROB: 168, Window: 48, AreaMM2: 7.8})
	f := func(fetch, l1, cycles uint32) bool {
		var c Counts
		c.Add(EvFetch, int64(fetch))
		c.Add(EvL1Access, int64(l1))
		r := tbl.Evaluate(&c, int64(cycles))
		return r.DynamicNJ >= 0 && r.StaticNJ >= 0 && r.TotalNJ() >= r.DynamicNJ
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccelStatic(t *testing.T) {
	if AccelStaticW(AccelParams{AreaMM2: 1.0}) <= 0 {
		t.Error("accelerator static power must be positive")
	}
	if AccelStaticW(AccelParams{AreaMM2: 2}) <= AccelStaticW(AccelParams{AreaMM2: 1}) {
		t.Error("static power must scale with area")
	}
}
