package exocore

import (
	"strconv"
	"sync"

	"exocore/internal/cores"
	"exocore/internal/dg"
	"exocore/internal/energy"
	"exocore/internal/obs"
	"exocore/internal/tdg"
)

// ConfigCacheWays is the capacity of the engine-simulated per-BSA
// configuration LRU (paper §3.2: DP-CGRA keeps "a small configuration
// cache"; NS-DF and Trace-P behave likewise). The engine tracks residency
// centrally — see Run — so unit outcomes stay a pure function of their
// key.
const ConfigCacheWays = 8

// unitKey identifies one evaluation-unit outcome under the
// drained-boundary model: the dynamic span plus the unit's internal
// model signature (per-segment model names and configuration-residency
// bits — see unitSig). The core and BSA set are fixed per Cache, so they
// are not part of the key.
type unitKey struct {
	start, end int32
	sig        string
}

// unitOutcome is the memoized result of evaluating one unit from a
// drained boundary, entirely at per-segment granularity: durations,
// energy-event deltas, and critical-path latency by µDG edge class. The
// unit's per-model attribution is re-derived at composition time from
// these plus the unit's segment→model mapping, so one cached outcome
// serves plain totals, the Figure 14 timeline, and the per-region
// attribution table alike. Composition is pure summation, so a cached
// outcome is position-independent.
//
// segClasses is nil unless the unit was evaluated with class
// attribution (RunOpts.RecordRegions): the critical-path walk is pure
// overhead for scheduling sweeps, so it is computed on demand and the
// cached entry upgraded in place.
type unitOutcome struct {
	segDurs    []int64
	segCounts  []energy.Counts
	segClasses [][dg.NumEdgeClasses]int64
}

// CacheStats is a point-in-time snapshot of a Cache's counters.
type CacheStats struct {
	// Hits and Misses count unit-outcome lookups.
	Hits   int64 `json:"segment_hits"`
	Misses int64 `json:"segment_misses"`
	// BytesReused accumulates the arena bytes (graph nodes + resource-table
	// rings) served from the worker pool instead of freshly allocated.
	BytesReused int64 `json:"bytes_reused"`
	// Entries counts distinct memoized unit outcomes.
	Entries int64 `json:"entries"`
}

// Cache memoizes evaluation-unit outcomes for one evaluation context — a
// fixed (benchmark TDG, core config, BSA set, plans) tuple, the
// granularity at which sched.Context creates it — and pools the graph/GPP
// arenas unit evaluation consumes. Safe for concurrent Run calls.
//
// Correctness rests on the drained-boundary model (see the package
// comment): a unit's outcome depends only on its unitKey, never on its
// position in the composition. BSA models must therefore be pure
// functions of (core config, region plan, span, Ctx.ConfigResident);
// models carrying other cross-unit state through Ctx.State must not be
// cached.
type Cache struct {
	core cores.Config
	hint int // graph pre-size, in nodes

	outcomes sync.Map // unitKey → *unitOutcome
	workers  sync.Pool

	// Counters are obs instruments so a cache slots into the shared
	// metrics registry; standalone (unregistered) instances keep the
	// cache usable without one.
	hits, misses, reused, entries *obs.Counter
}

// NewCache creates a unit-outcome cache for one core config and a
// benchmark of traceLen dynamic instructions (pre-sizes pooled graphs at
// ~5 µDG nodes per instruction).
func NewCache(core cores.Config, traceLen int) *Cache {
	return &Cache{
		core: core, hint: 5*traceLen + 64,
		hits: obs.NewCounter(), misses: obs.NewCounter(),
		reused: obs.NewCounter(), entries: obs.NewCounter(),
	}
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:        c.hits.Value(),
		Misses:      c.misses.Value(),
		BytesReused: c.reused.Value(),
		Entries:     c.entries.Value(),
	}
}

// lookup returns the memoized outcome for a key, or nil on miss.
func (c *Cache) lookup(k unitKey) *unitOutcome {
	if v, ok := c.outcomes.Load(k); ok {
		c.hits.Add(1)
		return v.(*unitOutcome)
	}
	c.misses.Add(1)
	return nil
}

// store memoizes an outcome, returning the winning entry if another
// goroutine computed the same key concurrently (outcomes are
// deterministic, so either copy is correct).
func (c *Cache) store(k unitKey, o *unitOutcome) *unitOutcome {
	if v, raced := c.outcomes.LoadOrStore(k, o); raced {
		return v.(*unitOutcome)
	}
	c.entries.Add(1)
	return o
}

// upgrade replaces a memoized outcome with a richer recomputation of
// the same key (adding class attribution). Outcomes are deterministic,
// so concurrent readers may see either version without harm.
func (c *Cache) upgrade(k unitKey, o *unitOutcome) *unitOutcome {
	c.outcomes.Store(k, o)
	return o
}

// getWorker returns a pooled evaluation worker, accounting reused arena
// bytes, or builds a fresh one.
func (c *Cache) getWorker() *segWorker {
	if v := c.workers.Get(); v != nil {
		w := v.(*segWorker)
		c.reused.Add(w.memBytes())
		return w
	}
	return newSegWorker(c.core, c.hint)
}

// putWorker returns a worker to the pool.
func (c *Cache) putWorker(w *segWorker) { c.workers.Put(w) }

// segWorker bundles the reusable arenas one unit evaluation needs: a µDG
// node arena and a GPP constructor (whose five resource-table rings
// dominated the old per-Run allocation cost), plus the per-unit scratch
// state map. Reset between units, pooled between runs.
type segWorker struct {
	g      *dg.Graph
	gpp    *cores.GPP
	counts energy.Counts
	state  map[string]any
	ctx    tdg.Ctx // reused per transformed segment; models keep no reference
}

func newSegWorker(core cores.Config, hint int) *segWorker {
	g := dg.NewGraphN(hint)
	w := &segWorker{g: g, state: make(map[string]any)}
	w.gpp = cores.NewGPP(core, g, &w.counts)
	return w
}

// reset prepares the worker for one unit evaluation from a drained
// boundary, keeping all allocations.
func (w *segWorker) reset() {
	w.g.Reset()
	w.counts = energy.Counts{}
	clear(w.state)
	w.gpp.Reset(w.g, &w.counts)
}

// memBytes is the arena memory reusing this worker saves.
func (w *segWorker) memBytes() int64 { return w.g.MemBytes() + w.gpp.MemBytes() }

// evalUnit evaluates one unit in isolation, starting from a drained
// pipeline at relative cycle 0, and returns its per-segment durations,
// energy deltas and critical-path class attribution. Inside the unit,
// segments share the worker's graph and GPP exactly as the original
// monolithic engine did, preserving frontend/window overlap across
// core-resident joints. This is the single evaluation path for both
// cached and uncached runs, so they agree bit-for-bit by construction.
// sp, when active, receives one child span per model transform.
// classes enables the critical-path class attribution (segClasses);
// durations and energy deltas are identical either way.
func evalUnit(w *segWorker, t *tdg.TDG, bsas map[string]tdg.BSA,
	plans map[string]*tdg.Plan, u unit, sp obs.Span, classes bool) unitOutcome {

	w.reset()
	out := unitOutcome{
		segDurs:   make([]int64, len(u.segs)),
		segCounts: make([]energy.Counts, len(u.segs)),
	}
	if classes {
		out.segClasses = make([][dg.NumEdgeClasses]int64, len(u.segs))
	}
	var lastEnd int64
	var snapshot energy.Counts
	// walkFrom tracks the node carrying the unit's critical end time,
	// for the per-class path attribution below.
	walkFrom := dg.None
	var walkTime int64 = -1
	for i, seg := range u.segs {
		name := u.names[i]
		var endNode dg.NodeID = dg.None
		if name != "" {
			tsp := obs.Span{}
			if sp.Active() {
				tsp = sp.Child("transform", name+"@L"+strconv.Itoa(seg.LoopID)).
					ArgInt("start", int64(seg.Start)).
					ArgInt("end", int64(seg.End)).
					Arg("config_resident", strconv.FormatBool(u.cfgRes[i]))
			}
			w.ctx = tdg.Ctx{
				TDG: t, G: w.g, GPP: w.gpp, Counts: &w.counts,
				State: w.state, ConfigResident: u.cfgRes[i], Span: tsp,
			}
			endNode = bsas[name].TransformRegion(&w.ctx, plans[name].Region(seg.LoopID), seg.Start, seg.End)
			tsp.End()
		} else {
			tr := t.Trace
			for j := seg.Start; j < seg.End; j++ {
				d := &tr.Insts[j]
				w.gpp.Exec(cores.FromDyn(&tr.Prog.Insts[d.SI], d), int32(j))
			}
		}
		end := w.gpp.EndTime()
		if endNode != dg.None && w.g.Time(endNode) > end {
			end = w.g.Time(endNode)
		}
		if endNode != dg.None && w.g.Time(endNode) > walkTime {
			walkFrom, walkTime = endNode, w.g.Time(endNode)
		}
		if end < lastEnd {
			end = lastEnd
		}
		dur := end - lastEnd
		out.segDurs[i] = dur
		out.segCounts[i] = diffCounts(&w.counts, &snapshot)
		snapshot = w.counts

		lastEnd = end
	}
	if classes {
		if c := w.gpp.LastCommit(); c != dg.None && w.g.Time(c) >= walkTime {
			walkFrom = c
		}
		out.attributePath(w.g, u.segs, walkFrom)
	}
	return out
}

// attributePath walks the unit's critical path once and buckets each
// step's latency by (segment of the step's target node, edge class) —
// the µDG-grounded "where did this unit's cycles go" attribution behind
// the per-region table. Synthetic nodes (dynIdx -1, eg. accelerator
// boundary events) attribute to the segment of the nearest following
// node on the path.
func (o *unitOutcome) attributePath(g *dg.Graph, segs []Segment, from dg.NodeID) {
	if from == dg.None || len(segs) == 0 {
		return
	}
	cur := len(segs) - 1
	g.WalkCriticalPath(from, func(id dg.NodeID, class dg.EdgeClass, lat int64) {
		if dyn := g.DynIdx(id); dyn >= 0 {
			cur = segOfDyn(segs, int(dyn), cur)
		}
		o.segClasses[cur][class] += lat
	})
}

// segOfDyn locates the segment containing dynamic index dyn. hint is the
// previous answer — the path walk is nearly monotonic, so the hit rate
// is high; misses fall back to binary search over the (sorted, adjacent)
// segments.
func segOfDyn(segs []Segment, dyn, hint int) int {
	if dyn >= segs[hint].Start && dyn < segs[hint].End {
		return hint
	}
	lo, hi := 0, len(segs)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if dyn >= segs[mid].End {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func diffCounts(now, before *energy.Counts) energy.Counts {
	var d energy.Counts
	for i := range now {
		d[i] = now[i] - before[i]
	}
	return d
}
