package exocore

import (
	"strconv"
	"sync"

	"exocore/internal/cores"
	"exocore/internal/dg"
	"exocore/internal/energy"
	"exocore/internal/obs"
	"exocore/internal/tdg"
)

// ConfigCacheWays is the capacity of the engine-simulated per-BSA
// configuration LRU (paper §3.2: DP-CGRA keeps "a small configuration
// cache"; NS-DF and Trace-P behave likewise). The engine tracks residency
// centrally — see Run — so unit outcomes stay a pure function of their
// key.
const ConfigCacheWays = 8

// unitKey identifies one evaluation-unit outcome under the
// drained-boundary model: the dynamic span plus an interned structural
// signature covering the unit's internal segmentation — each segment's
// start offset, model and configuration residency (see Cache.sigOf). The
// core and BSA set are fixed per Cache, so they are not part of the key.
type unitKey struct {
	start, end int32
	sig        uint64
}

// Segment descriptors pack one segment's identity into a uint64 for key
// interning: offset<<20 | (loop+1)<<6 | nameIdx<<1 | cfgResident. A
// general-core segment at offset 0 is descriptor 0, so the single-segment
// pure-GPP unit — the overwhelmingly common case — gets sig 0 without
// touching the intern table.
const (
	descOffsetShift = 20
	descLoopShift   = 6
	descNameShift   = 1
	// sigMulti tags signatures produced by the intern trie, keeping them
	// disjoint from raw single-segment descriptors (whose offset is 0 and
	// which therefore fit in the low 20 bits).
	sigMulti = uint64(1) << 63
)

// unitOutcome is the memoized result of evaluating one unit from a
// drained boundary, entirely at per-segment granularity: durations,
// energy-event deltas, and critical-path latency by µDG edge class. The
// unit's per-model attribution is re-derived at composition time from
// these plus the unit's segment→model mapping, so one cached outcome
// serves plain totals, the Figure 14 timeline, and the per-region
// attribution table alike. Composition is pure summation, so a cached
// outcome is position-independent.
//
// segClasses is nil unless the unit was evaluated with class
// attribution (RunOpts.RecordRegions): the critical-path walk is pure
// overhead for scheduling sweeps, so it is computed on demand and the
// cached entry upgraded in place.
type unitOutcome struct {
	segDurs    []int64
	segCounts  []energy.Counts
	segClasses [][dg.NumEdgeClasses]int64

	// Published prefix outcomes avoid copying: segDurs/segCounts alias
	// the publishing evaluation's arrays for all but the final (possibly
	// truncated) segment, whose values sit inline below. Those parent
	// elements are final when the prefix is published (evaluation writes
	// each segment's slot exactly once, in order), so the alias is
	// immutable. nsegs is len(segDurs)+1 for a prefix, 0 otherwise;
	// consumers go through n/dur/counts instead of the raw slices.
	nsegs      int
	lastDur    int64
	lastCounts energy.Counts
}

// n returns the outcome's segment count.
func (o *unitOutcome) n() int {
	if o.nsegs != 0 {
		return o.nsegs
	}
	return len(o.segDurs)
}

// dur returns segment i's duration.
func (o *unitOutcome) dur(i int) int64 {
	if o.nsegs != 0 && i == o.nsegs-1 {
		return o.lastDur
	}
	return o.segDurs[i]
}

// counts returns segment i's energy-event deltas.
func (o *unitOutcome) counts(i int) *energy.Counts {
	if o.nsegs != 0 && i == o.nsegs-1 {
		return &o.lastCounts
	}
	return &o.segCounts[i]
}

// CacheStats is a point-in-time snapshot of a Cache's counters.
type CacheStats struct {
	// Hits and Misses count unit-outcome lookups.
	Hits   int64 `json:"segment_hits"`
	Misses int64 `json:"segment_misses"`
	// BytesReused accumulates the arena bytes (graph nodes + resource-table
	// rings) served from the worker pool instead of freshly allocated.
	BytesReused int64 `json:"bytes_reused"`
	// Entries counts distinct unit outcomes memoized on demand (misses
	// evaluated and stored).
	Entries int64 `json:"entries"`
	// PrefixEntries counts outcomes published speculatively at cut
	// boundaries while evaluating a longer unit — the delta-evaluation
	// mechanism that lets later assignments reuse baseline work.
	PrefixEntries int64 `json:"prefix_entries"`
	// InternedSigs counts distinct multi-segment signatures in the
	// intern table (single-segment units encode inline and never intern).
	InternedSigs int64 `json:"interned_sigs"`
	// SharedHits counts unit outcomes served from the cross-core shared
	// pool: offload solo units whose evaluation retired no core µops are
	// core-independent, so one core's evaluation serves all four.
	SharedHits int64 `json:"shared_hits"`
}

// cacheShards bounds lock contention on the outcome map; a typed sharded
// map also avoids sync.Map's per-Load key boxing on struct keys.
const cacheShards = 16

type outcomeShard struct {
	mu sync.RWMutex
	m  map[unitKey]*unitOutcome
}

// Cache memoizes evaluation-unit outcomes for one evaluation context — a
// fixed (benchmark TDG, core config, BSA set, plans) tuple, the
// granularity at which sched.Context creates it — and pools the graph/GPP
// arenas unit evaluation consumes. Safe for concurrent Run calls.
//
// Correctness rests on the drained-boundary model (see the package
// comment): a unit's outcome depends only on its unitKey, never on its
// position in the composition. BSA models must therefore be pure
// functions of (core config, region plan, span, Ctx.ConfigResident);
// models carrying other cross-unit state through Ctx.State must not be
// cached.
type Cache struct {
	core cores.Config
	hint int // graph pre-size, in nodes

	shards [cacheShards]outcomeShard

	// Name interning: BSA name → small index for descriptor packing.
	// Lazily grown; only consistency within this Cache matters.
	nameMu  sync.RWMutex
	nameIdx map[string]uint64

	// Signature interning: a trie over segment descriptors. A unit's
	// multi-segment signature is the trie node reached by walking its
	// descriptors from the root — exact (no hashing), and prefix
	// signatures are the walk's intermediate nodes, which the publisher
	// gets for free.
	sigMu  sync.RWMutex
	sigs   map[sigEdge]uint32
	sigSeq uint32

	// compOnce guards lazy construction of the delta composer for this
	// cache's (TDG, bsas, plans) tuple.
	compOnce sync.Once
	comp     *composer

	// shared is the cross-core outcome pool for this cache's TDG,
	// attached alongside the composer (so -nodelta runs never consult
	// it); nil until composerFor runs.
	shared *sharedPool

	// persist is the optional durable tier under this cache (see
	// AttachPersist): misses consult it before evaluating and fresh
	// outcomes are written through, so a restarted process re-reads
	// instead of re-deriving. persistNS scopes its keys to this cache's
	// (trace, core, BSA set) tuple.
	persist   Persist
	persistNS string

	// Counters are obs instruments so a cache slots into the shared
	// metrics registry; standalone (unregistered) instances keep the
	// cache usable without one.
	hits, misses, reused, entries, prefixes, sharedHits *obs.Counter
}

// sigEdge is one trie edge: (parent node, segment descriptor).
type sigEdge struct {
	parent uint32
	desc   uint64
}

// NewCache creates a unit-outcome cache for one core config and a
// benchmark of traceLen dynamic instructions (pre-sizes pooled graphs at
// ~5 µDG nodes per instruction).
func NewCache(core cores.Config, traceLen int) *Cache {
	c := &Cache{
		core: core, hint: graphHintFor(traceLen),
		nameIdx: make(map[string]uint64, 4),
		sigs:    make(map[sigEdge]uint32),
		hits:    obs.NewCounter(), misses: obs.NewCounter(),
		reused: obs.NewCounter(), entries: obs.NewCounter(),
		prefixes: obs.NewCounter(), sharedHits: obs.NewCounter(),
	}
	for i := range c.shards {
		c.shards[i].m = make(map[unitKey]*unitOutcome)
	}
	return c
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.sigMu.RLock()
	interned := int64(c.sigSeq)
	c.sigMu.RUnlock()
	return CacheStats{
		Hits:          c.hits.Value(),
		Misses:        c.misses.Value(),
		BytesReused:   c.reused.Value(),
		Entries:       c.entries.Value(),
		PrefixEntries: c.prefixes.Value(),
		InternedSigs:  interned,
		SharedHits:    c.sharedHits.Value(),
	}
}

// composerFor returns the cache's delta composer, building it on first
// use. The cache is documented to serve exactly one (TDG, bsas, plans)
// tuple, so the first caller's arguments define it.
func (c *Cache) composerFor(t *tdg.TDG, bsas map[string]tdg.BSA, plans map[string]*tdg.Plan) *composer {
	c.compOnce.Do(func() {
		c.comp = newComposer(t, bsas, plans)
		c.shared = sharedPoolFor(t)
	})
	return c.comp
}

// nameIndexOf interns a BSA name to a small descriptor index (1-based;
// 0 is the general core).
func (c *Cache) nameIndexOf(name string) uint64 {
	c.nameMu.RLock()
	id, ok := c.nameIdx[name]
	c.nameMu.RUnlock()
	if ok {
		return id
	}
	c.nameMu.Lock()
	defer c.nameMu.Unlock()
	if id, ok = c.nameIdx[name]; ok {
		return id
	}
	id = uint64(len(c.nameIdx)) + 1
	c.nameIdx[name] = id
	return id
}

// descOf packs one segment of a unit into its interning descriptor.
func (c *Cache) descOf(u *unit, i int, unitStart int) uint64 {
	var d uint64
	if name := u.names[i]; name != "" {
		d = uint64(u.segs[i].LoopID+1)<<descLoopShift | c.nameIndexOf(name)<<descNameShift
		if u.cfgRes[i] {
			d |= 1
		}
	}
	return d | uint64(u.segs[i].Start-unitStart)<<descOffsetShift
}

// sigNode returns (interning if new) the trie node for edge (parent,
// desc).
func (c *Cache) sigNode(parent uint32, desc uint64) uint32 {
	e := sigEdge{parent, desc}
	c.sigMu.RLock()
	id, ok := c.sigs[e]
	c.sigMu.RUnlock()
	if ok {
		return id
	}
	c.sigMu.Lock()
	defer c.sigMu.Unlock()
	if id, ok = c.sigs[e]; ok {
		return id
	}
	c.sigSeq++
	id = c.sigSeq
	c.sigs[e] = id
	return id
}

// sigOfDescs folds a descriptor sequence into a signature: the raw
// descriptor for single-segment units (no interning, no locks — the
// common case), a tagged trie node otherwise.
func (c *Cache) sigOfDescs(descs []uint64) uint64 {
	if len(descs) == 1 {
		return descs[0]
	}
	node := uint32(0)
	for _, d := range descs {
		node = c.sigNode(node, d)
	}
	return sigMulti | uint64(node)
}

// keyOf computes the interned cache key of a unit, appending the unit's
// segment descriptors to descScratch (returned for reuse).
func (c *Cache) keyOf(u *unit, descScratch []uint64) (unitKey, []uint64) {
	start := u.segs[0].Start
	end := u.segs[len(u.segs)-1].End
	descs := descScratch[:0]
	for i := range u.segs {
		descs = append(descs, c.descOf(u, i, start))
	}
	return unitKey{int32(start), int32(end), c.sigOfDescs(descs)}, descs
}

func (c *Cache) shardOf(k unitKey) *outcomeShard {
	h := uint64(uint32(k.start))*0x9E3779B1 ^ uint64(uint32(k.end))*0x85EBCA77 ^ k.sig*0xC2B2AE3D
	h ^= h >> 29
	return &c.shards[h&(cacheShards-1)]
}

// lookup returns the memoized outcome for a key, or nil on miss.
func (c *Cache) lookup(k unitKey) *unitOutcome {
	s := c.shardOf(k)
	s.mu.RLock()
	o := s.m[k]
	s.mu.RUnlock()
	if o != nil {
		c.hits.Add(1)
		return o
	}
	c.misses.Add(1)
	return nil
}

// store memoizes an outcome, returning the winning entry if another
// goroutine computed the same key concurrently (outcomes are
// deterministic, so either copy is correct).
func (c *Cache) store(k unitKey, o *unitOutcome) *unitOutcome {
	s := c.shardOf(k)
	s.mu.Lock()
	if prev := s.m[k]; prev != nil {
		s.mu.Unlock()
		return prev
	}
	s.m[k] = o
	s.mu.Unlock()
	c.entries.Add(1)
	return o
}

// storePrefix memoizes a published prefix outcome; existing entries win
// (they are identical by construction).
func (c *Cache) storePrefix(k unitKey, o *unitOutcome) {
	s := c.shardOf(k)
	s.mu.Lock()
	if s.m[k] != nil {
		s.mu.Unlock()
		return
	}
	s.m[k] = o
	s.mu.Unlock()
	c.prefixes.Add(1)
}

// upgrade replaces a memoized outcome with a richer recomputation of
// the same key (adding class attribution). Outcomes are deterministic,
// so concurrent readers may see either version without harm.
func (c *Cache) upgrade(k unitKey, o *unitOutcome) *unitOutcome {
	s := c.shardOf(k)
	s.mu.Lock()
	s.m[k] = o
	s.mu.Unlock()
	return o
}

// sharedKey identifies one offload solo unit across per-core caches: the
// dynamic span, assigned loop, model and configuration residency. The
// core config is deliberately absent — entries are published only when
// the evaluation proved itself core-independent (see Run's purity gate).
type sharedKey struct {
	start, end int32
	loop       int32
	cfgRes     bool
	name       string
}

// sharedPool is a cross-core pool of core-independent unit outcomes for
// one TDG. Offload models (NS-DF, Trace-P) evaluate solo units, and
// usually never touch the host pipeline — NS-DF builds a pure dataflow
// schedule; Trace-P replays on the core only after a misspeculation.
// When an evaluation retires zero core µops, its outcome is a pure
// function of (span, loop, model, residency): the GPP starts every unit
// from the same drained state on every core config, so the result is
// byte-identical across the four cores and one evaluation can serve all
// of them. Units that DID execute core µops are never published, so a
// hit is always exact.
type sharedPool struct {
	mu sync.RWMutex
	m  map[sharedKey]*unitOutcome
}

func (p *sharedPool) lookup(k sharedKey) *unitOutcome {
	p.mu.RLock()
	o := p.m[k]
	p.mu.RUnlock()
	return o
}

// store publishes an outcome; existing entries win (they are identical
// by the purity argument above).
func (p *sharedPool) store(k sharedKey, o *unitOutcome) {
	p.mu.Lock()
	if p.m[k] == nil {
		p.m[k] = o
	}
	p.mu.Unlock()
}

// sharedPools maps each live TDG to its cross-core pool. Keying by TDG
// pointer scopes entries to one benchmark trace; the registry is cleared
// wholesale if it ever exceeds maxSharedPools distinct TDGs, bounding
// memory for long-lived processes that churn traces.
var (
	sharedPoolsMu sync.Mutex
	sharedPools   = map[*tdg.TDG]*sharedPool{}
)

const maxSharedPools = 32

func sharedPoolFor(t *tdg.TDG) *sharedPool {
	sharedPoolsMu.Lock()
	defer sharedPoolsMu.Unlock()
	p := sharedPools[t]
	if p == nil {
		if len(sharedPools) >= maxSharedPools {
			clear(sharedPools)
		}
		p = &sharedPool{m: make(map[sharedKey]*unitOutcome)}
		sharedPools[t] = p
	}
	return p
}

// workerPool is a process-wide free list of evaluation workers, one per
// core config. Unlike a sync.Pool — whose contents are evicted on every
// GC cycle, which re-allocated the ~3 MB graph arena and resource-table
// rings dozens of times per sweep — the free list keeps arenas alive for
// the process lifetime, bounded by maxPooledWorkers per config.
type workerPool struct {
	mu   sync.Mutex
	free []*segWorker
}

const maxPooledWorkers = 8

var (
	workerPoolsMu sync.Mutex
	workerPools   = map[cores.Config]*workerPool{}
)

func poolFor(core cores.Config) *workerPool {
	workerPoolsMu.Lock()
	defer workerPoolsMu.Unlock()
	p := workerPools[core]
	if p == nil {
		p = &workerPool{}
		workerPools[core] = p
	}
	return p
}

// acquireWorker returns a pooled worker for the core config (reporting
// the arena bytes reuse saved via reused, which may be nil), or builds a
// fresh one with at least hint graph capacity.
func acquireWorker(core cores.Config, hint int, reused *obs.Counter) *segWorker {
	p := poolFor(core)
	p.mu.Lock()
	var w *segWorker
	if n := len(p.free); n > 0 {
		w = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
	}
	p.mu.Unlock()
	if w != nil {
		if reused != nil {
			reused.Add(w.memBytes())
		}
		return w
	}
	return newSegWorker(core, hint)
}

// releaseWorker returns a worker to its config's free list (dropping it
// if the list is full).
func releaseWorker(core cores.Config, w *segWorker) {
	p := poolFor(core)
	p.mu.Lock()
	if len(p.free) < maxPooledWorkers {
		p.free = append(p.free, w)
	}
	p.mu.Unlock()
}

// getWorker returns a pooled evaluation worker, accounting reused arena
// bytes, or builds a fresh one.
func (c *Cache) getWorker() *segWorker {
	return acquireWorker(c.core, c.hint, c.reused)
}

// putWorker returns a worker to the pool.
func (c *Cache) putWorker(w *segWorker) { releaseWorker(c.core, w) }

// segWorker bundles the reusable arenas one unit evaluation needs: a µDG
// node arena and a GPP constructor (whose five resource-table rings
// dominated the old per-Run allocation cost), plus the per-unit scratch
// state map. Reset between units, pooled between runs.
type segWorker struct {
	g      *dg.Graph
	gpp    *cores.GPP
	counts energy.Counts
	state  map[string]any
	ctx    tdg.Ctx // reused per transformed segment; models keep no reference
}

func newSegWorker(core cores.Config, hint int) *segWorker {
	g := dg.NewGraphN(hint)
	w := &segWorker{g: g, state: make(map[string]any)}
	w.gpp = cores.NewGPP(core, g, &w.counts)
	return w
}

// reset prepares the worker for one unit evaluation from a drained
// boundary, keeping all allocations. classes selects the graph mode:
// attribution when the evaluation will walk critical paths, lean
// (time-only, windowing-capable) otherwise — sweeps never walk, so they
// skip two thirds of the per-node write traffic.
func (w *segWorker) reset(classes bool) {
	w.g.ResetMode(!classes)
	w.counts = energy.Counts{}
	clear(w.state)
	w.gpp.Reset(w.g, &w.counts)
}

// memBytes is the arena memory reusing this worker saves.
func (w *segWorker) memBytes() int64 { return w.g.MemBytes() + w.gpp.MemBytes() }

// publisher makes one unit evaluation publish outcomes for every
// boundary-aligned prefix of itself — the heart of delta evaluation.
//
// Correctness rests on prefix stability: unit evaluation is
// instruction-ordered with no retroactive effects, so the (EndTime,
// energy counts) snapshot after executing [start, b) inside a longer
// evaluation is byte-identical to a fresh evaluation of the unit
// [start, b) with the same segment structure. Cut boundaries — precomputed
// by the composer — are the only indices where a core-resident unit can
// end under any assignment, so publishing exactly there makes the
// baseline lane (one unit spanning the whole trace) serve every
// candidate's leading span, and solo-candidate lanes serve the
// between-occurrence spans of multi-region designs.
type publisher struct {
	cache *Cache
	descs []uint64 // the unit's per-segment descriptors
	start int32    // unit start (dynamic index)
	cuts  []int32  // cut boundaries strictly inside the unit, ascending
	next  int      // cursor into cuts

	// nodes[i] is the intern-trie node after descriptors 0..i, built
	// lazily as prefixes are published.
	nodes []uint32

	// slab backs every published prefix outcome in one allocation. Each
	// publish advances the cut cursor, so the remaining cut count bounds
	// the number of publishes and the slab never reallocates (stored
	// pointers stay stable).
	slab []unitOutcome
}

// sigOfPrefix returns the signature of the unit's first nsegs segments.
// The truncated final segment shares the full segment's descriptor
// (descriptors encode only start offsets), so prefix signatures are
// exactly the signatures fresh evaluation would compute.
func (p *publisher) sigOfPrefix(nsegs int) uint64 {
	if nsegs == 1 {
		return p.descs[0]
	}
	for len(p.nodes) < nsegs {
		parent := uint32(0)
		if n := len(p.nodes); n > 0 {
			parent = p.nodes[n-1]
		}
		p.nodes = append(p.nodes, p.cache.sigNode(parent, p.descs[len(p.nodes)]))
	}
	return sigMulti | uint64(p.nodes[nsegs-1])
}

// publish stores the outcome of the unit's prefix covering segments
// 0..nsegs-1 and ending at dynamic index end, with the final segment's
// (possibly truncated) duration and counts supplied by the caller.
func (p *publisher) publish(out *unitOutcome, nsegs int, end int32, lastDur int64, lastCounts energy.Counts) {
	if p.slab == nil {
		p.slab = make([]unitOutcome, 0, len(p.cuts)-p.next)
	}
	p.slab = append(p.slab, unitOutcome{
		segDurs:    out.segDurs[: nsegs-1 : nsegs-1],
		segCounts:  out.segCounts[: nsegs-1 : nsegs-1],
		nsegs:      nsegs,
		lastDur:    lastDur,
		lastCounts: lastCounts,
	})
	o := &p.slab[len(p.slab)-1]
	p.cache.storePrefix(unitKey{p.start, end, p.sigOfPrefix(nsegs)}, o)
}

// evalUnit evaluates one unit in isolation, starting from a drained
// pipeline at relative cycle 0, and returns its per-segment durations,
// energy deltas and critical-path class attribution. Inside the unit,
// segments share the worker's graph and GPP exactly as the original
// monolithic engine did, preserving frontend/window overlap across
// core-resident joints. This is the single evaluation path for both
// cached and uncached runs, so they agree bit-for-bit by construction.
// sp, when active, receives one child span per model transform.
// classes enables the critical-path class attribution (segClasses);
// durations and energy deltas are identical either way.
// pub, when non-nil, publishes prefix outcomes at cut boundaries as the
// evaluation passes them (prefix entries never carry classes; a later
// class-attributed run re-evaluates and upgrades them).
// window, when positive, bounds the resident µDG during the core-resident
// instruction stream (see RunOpts.WindowNodes); it must be 0 when classes
// is set.
func evalUnit(w *segWorker, t *tdg.TDG, bsas map[string]tdg.BSA,
	plans map[string]*tdg.Plan, u unit, sp obs.Span, classes bool, window int, pub *publisher) unitOutcome {

	w.reset(classes)
	out := unitOutcome{
		segDurs:   make([]int64, len(u.segs)),
		segCounts: make([]energy.Counts, len(u.segs)),
	}
	if classes {
		out.segClasses = make([][dg.NumEdgeClasses]int64, len(u.segs))
	}
	var lastEnd int64
	var snapshot energy.Counts
	// walkFrom tracks the node carrying the unit's critical end time,
	// for the per-class path attribution below.
	walkFrom := dg.None
	var walkTime int64 = -1
	for i, seg := range u.segs {
		name := u.names[i]
		var endNode dg.NodeID = dg.None
		if name != "" {
			tsp := obs.Span{}
			if sp.Active() {
				tsp = sp.Child("transform", name+"@L"+strconv.Itoa(seg.LoopID)).
					ArgInt("start", int64(seg.Start)).
					ArgInt("end", int64(seg.End)).
					Arg("config_resident", strconv.FormatBool(u.cfgRes[i]))
			}
			w.ctx = tdg.Ctx{
				TDG: t, G: w.g, GPP: w.gpp, Counts: &w.counts,
				State: w.state, ConfigResident: u.cfgRes[i], Span: tsp,
			}
			endNode = bsas[name].TransformRegion(&w.ctx, plans[name].Region(seg.LoopID), seg.Start, seg.End)
			tsp.End()
			// Cuts cannot fall strictly inside a model segment for any
			// signature-matching unit (an offload occurrence starting
			// inside would be nested under the segment's loop and thus
			// shadowed); skip any defensively rather than publish a
			// malformed prefix.
			if pub != nil {
				for pub.next < len(pub.cuts) && int(pub.cuts[pub.next]) < seg.End {
					pub.next++
				}
			}
		} else {
			uops := t.UOps()
			for j := seg.Start; j < seg.End; {
				// Bound the run at the next publish cut so the hot
				// instruction loop carries no per-uop cut test.
				stop := seg.End
				if pub != nil && pub.next < len(pub.cuts) {
					if c := int(pub.cuts[pub.next]); c > j && c < stop {
						stop = c
					}
				}
				for j < stop {
					lim := stop
					if window > 0 {
						if l := j + compactStride; l < lim {
							lim = l
						}
					}
					for ; j < lim; j++ {
						w.gpp.Exec(uops[j], int32(j))
					}
					// Between chunks no transform holds node references,
					// so stale nodes can be retired; times are unchanged
					// (CompactWindow pins the architectural anchors).
					if window > 0 {
						w.gpp.CompactWindow(window)
					}
				}
				if j == seg.End {
					break
				}
				// j is the next cut, strictly inside the segment: publish
				// the prefix ending here. The truncated general-core
				// segment's duration and counts come from the current
				// pipeline state (prefix stability).
				end := w.gpp.EndTime()
				if end < lastEnd {
					end = lastEnd
				}
				pub.publish(&out, i+1, int32(j), end-lastEnd, diffCounts(&w.counts, &snapshot))
				pub.next++
			}
		}
		end := w.gpp.EndTime()
		if endNode != dg.None && w.g.Time(endNode) > end {
			end = w.g.Time(endNode)
		}
		if endNode != dg.None && w.g.Time(endNode) > walkTime {
			walkFrom, walkTime = endNode, w.g.Time(endNode)
		}
		if end < lastEnd {
			end = lastEnd
		}
		dur := end - lastEnd
		out.segDurs[i] = dur
		out.segCounts[i] = diffCounts(&w.counts, &snapshot)
		snapshot = w.counts

		lastEnd = end

		// Prefix ending exactly at this segment's boundary (not the
		// unit's own end — that entry is stored by the caller).
		if pub != nil && i < len(u.segs)-1 &&
			pub.next < len(pub.cuts) && int(pub.cuts[pub.next]) == seg.End {
			pub.publish(&out, i+1, int32(seg.End), dur, out.segCounts[i])
			pub.next++
		}
	}
	if classes {
		if c := w.gpp.LastCommit(); c != dg.None && w.g.Time(c) >= walkTime {
			walkFrom = c
		}
		out.attributePath(w.g, u.segs, walkFrom)
	}
	return out
}

// attributePath walks the unit's critical path once and buckets each
// step's latency by (segment of the step's target node, edge class) —
// the µDG-grounded "where did this unit's cycles go" attribution behind
// the per-region table. Synthetic nodes (dynIdx -1, eg. accelerator
// boundary events) attribute to the segment of the nearest following
// node on the path.
func (o *unitOutcome) attributePath(g *dg.Graph, segs []Segment, from dg.NodeID) {
	if from == dg.None || len(segs) == 0 {
		return
	}
	cur := len(segs) - 1
	g.WalkCriticalPath(from, func(id dg.NodeID, class dg.EdgeClass, lat int64) {
		if dyn := g.DynIdx(id); dyn >= 0 {
			cur = segOfDyn(segs, int(dyn), cur)
		}
		o.segClasses[cur][class] += lat
	})
}

// segOfDyn locates the segment containing dynamic index dyn. hint is the
// previous answer — the path walk is nearly monotonic, so the hit rate
// is high; misses fall back to binary search over the (sorted, adjacent)
// segments.
func segOfDyn(segs []Segment, dyn, hint int) int {
	if dyn >= segs[hint].Start && dyn < segs[hint].End {
		return hint
	}
	lo, hi := 0, len(segs)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if dyn >= segs[mid].End {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func diffCounts(now, before *energy.Counts) energy.Counts {
	var d energy.Counts
	for i := range now {
		d[i] = now[i] - before[i]
	}
	return d
}
