package exocore

import (
	"reflect"
	"sort"
	"testing"

	"exocore/internal/cores"
)

// TestCachedRunMatchesUncached is the correctness gate for the
// evaluation-unit cache: for every assignment, a cache-backed Run must be
// deeply identical — cycles, energy counts, per-model attribution,
// offload cycles and segment timeline — to the cache-disabled Run, and a
// second cache-backed Run (served from memoized outcomes) must reproduce
// the first.
func TestCachedRunMatchesUncached(t *testing.T) {
	for _, bench := range []string{"mm", "cjpeg", "gzip"} {
		td := buildTDG(t, bench, 15000)
		bsas := allBSAs()
		plans := analyzeAll(td, bsas)
		cache := NewCache(cores.OOO2, td.Trace.Len())

		assigns := []Assignment{nil, {}}
		var names []string
		for name := range bsas {
			names = append(names, name)
		}
		sort.Strings(names)
		mixed := Assignment{}
		for k, name := range names {
			full := Assignment{}
			var loops []int
			for l := range plans[name].Regions {
				loops = append(loops, l)
			}
			sort.Ints(loops)
			for n, l := range loops {
				full[l] = name
				if (n+k)%len(names) == 0 {
					mixed[l] = name
				}
			}
			if len(full) > 0 {
				assigns = append(assigns, full)
			}
		}
		if len(mixed) > 0 {
			assigns = append(assigns, mixed)
		}

		for n, assign := range assigns {
			opts := RunOpts{RecordSegments: true}
			want, err := Run(td, cores.OOO2, bsas, plans, assign, opts)
			if err != nil {
				t.Fatalf("%s assign %d uncached: %v", bench, n, err)
			}
			opts.Cache = cache
			got, err := Run(td, cores.OOO2, bsas, plans, assign, opts)
			if err != nil {
				t.Fatalf("%s assign %d cached: %v", bench, n, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s assign %d (%v): cached result diverges\nuncached: %+v\ncached:   %+v",
					bench, n, assign, want, got)
			}
			again, err := Run(td, cores.OOO2, bsas, plans, assign, opts)
			if err != nil {
				t.Fatalf("%s assign %d cached rerun: %v", bench, n, err)
			}
			if !reflect.DeepEqual(got, again) {
				t.Errorf("%s assign %d: memoized rerun diverges from first cached run", bench, n)
			}
		}

		s := cache.Stats()
		if s.Hits == 0 {
			t.Errorf("%s: no cache hits across %d assignments", bench, len(assigns))
		}
		if s.Entries == 0 || s.Entries > s.Misses {
			t.Errorf("%s: implausible cache stats %+v", bench, s)
		}
		if s.BytesReused == 0 {
			t.Errorf("%s: worker pool never reused an arena", bench)
		}
		t.Logf("%s: %d assignments, cache stats %+v", bench, len(assigns), s)
	}
}

// TestCacheConcurrentRuns drives one Cache from concurrent goroutines (as
// dse.Explore does through a shared sched.Context) and checks results
// stay identical to a serial uncached reference.
func TestCacheConcurrentRuns(t *testing.T) {
	td := buildTDG(t, "mm", 15000)
	bsas := allBSAs()
	plans := analyzeAll(td, bsas)

	assign := Assignment{}
	for l := range plans["SIMD"].Regions {
		assign[l] = "SIMD"
	}
	ref, err := Run(td, cores.OOO2, bsas, plans, assign, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}

	cache := NewCache(cores.OOO2, td.Trace.Len())
	const goroutines = 8
	results := make([]*RunResult, goroutines)
	errs := make([]error, goroutines)
	done := make(chan int)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			results[g], errs[g] = Run(td, cores.OOO2, bsas, plans, assign, RunOpts{Cache: cache})
			done <- g
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		<-done
	}
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if !reflect.DeepEqual(ref, results[g]) {
			t.Errorf("goroutine %d diverged from the serial uncached reference", g)
		}
	}
}
