// Delta composer: the assignment-independent trace structure behind
// incremental evaluation. Built once per Cache (ie. once per
// (benchmark, core) scheduling context), it lets every subsequent Run
// segmentize in O(atoms) instead of O(trace × nest depth), and tells the
// evaluator where future assignments may legally cut the trace so unit
// evaluations can publish prefix outcomes (see publisher in cache.go).
//
// An *atom* is a maximal run of dynamic instructions whose static
// instructions share the same assignable-loop chain — the finest
// granularity at which any legal assignment can change segmentation.
// Since Run validates assignments against the BSA plans, only loops
// planned by at least one BSA ("assignable") can ever appear in an
// assignment, so chains are restricted to those without changing the
// result. For any assignment, every instruction of an atom resolves to
// the same region, so segmentizing reduces to resolving each distinct
// chain once and merging adjacent atoms — byte-identical to Segmentize
// by construction (gated by TestComposerSegmentizeMatches and the
// delta-vs-full equivalence tests).
package exocore

import (
	"sort"

	"exocore/internal/tdg"
)

// atom is a maximal dynamic-instruction run with one assignable-loop
// chain. chain indexes composer.chains; -1 means no assignable loop
// encloses the run (it is always general-core).
type atom struct {
	start, end int32
	chain      int32
}

// composer holds the precomputed structure. Immutable after build; safe
// for concurrent segmentize calls.
type composer struct {
	atoms []atom
	// chains lists the distinct assignable-loop chains, outermost first
	// (so the first assigned loop found is the outermost — the same
	// winner Segmentize's innermost-to-root walk keeps).
	chains [][]int32
	// cuts are the dynamic indices where a core-resident unit may end
	// under some assignment: the start boundaries of occurrences of
	// offload-plannable loops. Sorted ascending. Unit evaluations publish
	// prefix outcomes exactly at these boundaries.
	cuts []int32
}

// newComposer builds the composer for one (TDG, BSA set, plans) tuple.
func newComposer(t *tdg.TDG, bsas map[string]tdg.BSA, plans map[string]*tdg.Plan) *composer {
	c := &composer{}

	// Assignable loops: union of all plan regions. Offloadable loops:
	// those plannable by an offload BSA (unit boundaries can only form
	// at their occurrence starts).
	assignable := map[int]bool{}
	offloadable := map[int]bool{}
	for name, plan := range plans {
		if plan == nil {
			continue
		}
		off := bsas[name].OffloadsCore()
		for l := range plan.Regions {
			assignable[l] = true
			if off {
				offloadable[l] = true
			}
		}
	}

	// Chain per static instruction, interned. Chains are tiny (nest
	// depth), static instruction counts are small, so a byte-key map is
	// plenty.
	nest := t.Nest
	nStatic := len(t.Trace.Prog.Insts)
	chainOfSI := make([]int32, nStatic)
	interned := map[string]int32{}
	var scratch []int32
	var keyBuf []byte
	for si := 0; si < nStatic; si++ {
		scratch = scratch[:0]
		for l := nest.InnermostOfInst(si); l != -1; l = nest.Loops[l].Parent {
			if assignable[l] {
				scratch = append(scratch, int32(l))
			}
		}
		if len(scratch) == 0 {
			chainOfSI[si] = -1
			continue
		}
		// scratch is innermost-first; reverse to outermost-first.
		for i, j := 0, len(scratch)-1; i < j; i, j = i+1, j-1 {
			scratch[i], scratch[j] = scratch[j], scratch[i]
		}
		keyBuf = keyBuf[:0]
		for _, l := range scratch {
			keyBuf = append(keyBuf, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
		}
		id, ok := interned[string(keyBuf)]
		if !ok {
			id = int32(len(c.chains))
			c.chains = append(c.chains, append([]int32(nil), scratch...))
			interned[string(keyBuf)] = id
		}
		chainOfSI[si] = id
	}

	// Partition the trace into atoms.
	insts := t.Trace.Insts
	cur := atom{chain: -2}
	for i := range insts {
		ch := chainOfSI[insts[i].SI]
		if ch != cur.chain {
			if cur.chain != -2 {
				c.atoms = append(c.atoms, cur)
			}
			cur = atom{start: int32(i), end: int32(i + 1), chain: ch}
		} else {
			cur.end = int32(i + 1)
		}
	}
	if cur.chain != -2 {
		c.atoms = append(c.atoms, cur)
	}

	// Cut set: for each offloadable loop, the start of every maximal
	// atom run whose chain contains it. Under any assignment, an offload
	// segment for loop L starts exactly where L first enters the
	// outermost-assigned role — an atom boundary where L's chain
	// membership begins — so these are the only indices where a
	// core-resident unit can end (besides the trace end).
	cutSet := map[int32]bool{}
	for l := range offloadable {
		l32 := int32(l)
		in := false
		for _, a := range c.atoms {
			has := a.chain >= 0 && chainContains(c.chains[a.chain], l32)
			if has && !in {
				cutSet[a.start] = true
			}
			in = has
		}
	}
	for cut := range cutSet {
		c.cuts = append(c.cuts, cut)
	}
	sort.Slice(c.cuts, func(i, j int) bool { return c.cuts[i] < c.cuts[j] })
	return c
}

func chainContains(chain []int32, l int32) bool {
	for _, x := range chain {
		if x == l {
			return true
		}
	}
	return false
}

// segmentize splits the trace under an assignment by resolving each
// distinct chain once and merging adjacent atoms — the O(atoms)
// equivalent of Segmentize.
func (c *composer) segmentize(assign Assignment) []Segment {
	resolved := make([]int32, len(c.chains))
	for i, ch := range c.chains {
		r := int32(-1)
		for _, l := range ch {
			if _, ok := assign[int(l)]; ok {
				r = l // outermost-first: first assigned wins
				break
			}
		}
		resolved[i] = r
	}
	segs := make([]Segment, 0, 16)
	cur := Segment{LoopID: -2}
	for _, a := range c.atoms {
		region := -1
		if a.chain >= 0 {
			region = int(resolved[a.chain])
		}
		if region != cur.LoopID {
			if cur.LoopID != -2 {
				segs = append(segs, cur)
			}
			cur = Segment{LoopID: region, Start: int(a.start), End: int(a.end)}
		} else {
			cur.End = int(a.end)
		}
	}
	if cur.LoopID != -2 {
		segs = append(segs, cur)
	}
	return segs
}

// cutsIn returns the cut boundaries strictly inside (start, end) — the
// indices at which a unit spanning [start, end) should publish prefix
// outcomes.
func (c *composer) cutsIn(start, end int) []int32 {
	lo := sort.Search(len(c.cuts), func(i int) bool { return int(c.cuts[i]) > start })
	hi := sort.Search(len(c.cuts), func(i int) bool { return int(c.cuts[i]) >= end })
	if lo >= hi {
		return nil
	}
	return c.cuts[lo:hi]
}
