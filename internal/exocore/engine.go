// Package exocore composes a general-purpose core with a set of
// behavior-specialized accelerator models over a single µDG, implementing
// the ExoCore organization of the paper (§3). Execution migrates between
// the core and accelerators at loop boundaries according to a per-region
// assignment; the shared graph captures the handoff edges, and energy is
// accounted per component including frontend power-gating during offload
// (§5.3).
package exocore

import (
	"fmt"
	"sort"

	"exocore/internal/cores"
	"exocore/internal/dg"
	"exocore/internal/energy"
	"exocore/internal/tdg"
)

// Assignment maps loop IDs to the name of the BSA chosen for them. Loops
// not present run on the general core. Assigned loops must not be nested
// inside one another; if they are, the outermost assignment wins.
type Assignment map[int]string

// Segment is a maximal run of dynamic instructions executing under one
// model: LoopID == -1 means the general core.
type Segment struct {
	LoopID int
	Start  int // dynamic index, inclusive
	End    int // exclusive
}

// SegmentRecord captures one executed segment for affinity analysis
// (Figure 13/14).
type SegmentRecord struct {
	LoopID     int
	BSA        string // "" for the general core
	StartCycle int64
	EndCycle   int64
	Dyn        int // original dynamic instructions covered
}

// RunOpts controls optional engine outputs.
type RunOpts struct {
	// RecordSegments retains the per-segment timeline (Figure 14).
	RecordSegments bool
}

// RunResult is the outcome of executing one benchmark on one design point.
type RunResult struct {
	Cycles int64
	Counts energy.Counts
	// PerBSADyn counts original dynamic instructions covered by each
	// model ("" = general core) — the paper's "% of cycles un-accelerated"
	// analysis (§5).
	PerBSADyn map[string]int64
	// PerBSACycles attributes execution cycles to each model.
	PerBSACycles map[string]int64
	// PerBSACounts attributes energy events to each model.
	PerBSACounts map[string]*energy.Counts
	// OffloadCycles counts cycles during which an offload BSA (NS-DF,
	// Trace-P) ran and the core frontend could be power-gated.
	OffloadCycles int64
	// ActiveCycles counts cycles each accelerator was powered.
	ActiveCycles map[string]int64
	Segments     []SegmentRecord
}

// Segmentize splits the trace into GPP and region segments under an
// assignment. A dynamic instruction belongs to the outermost assigned
// loop in its loop chain.
func Segmentize(t *tdg.TDG, assign Assignment) []Segment {
	var segs []Segment
	cur := Segment{LoopID: -2}
	nest := t.Nest
	for i := range t.Trace.Insts {
		si := int(t.Trace.Insts[i].SI)
		region := -1
		for l := nest.InnermostOfInst(si); l != -1; l = nest.Loops[l].Parent {
			if _, ok := assign[l]; ok {
				region = l // keep walking: outermost assigned wins
			}
		}
		if region != cur.LoopID {
			if cur.LoopID != -2 {
				segs = append(segs, cur)
			}
			cur = Segment{LoopID: region, Start: i, End: i + 1}
		} else {
			cur.End = i + 1
		}
	}
	if cur.LoopID != -2 {
		segs = append(segs, cur)
	}
	return segs
}

// Run executes the benchmark under the given core and assignment,
// returning cycles, energy events and attribution. bsas maps BSA name to
// model; plans maps BSA name to its analysis plan (so TransformRegion
// receives its region config).
func Run(t *tdg.TDG, core cores.Config, bsas map[string]tdg.BSA,
	plans map[string]*tdg.Plan, assign Assignment, opts RunOpts) (*RunResult, error) {

	// Validate the assignment before doing any work.
	for loopID, name := range assign {
		if loopID < 0 || loopID >= len(t.Nest.Loops) {
			return nil, fmt.Errorf("exocore: assignment names unknown loop %d", loopID)
		}
		if _, ok := bsas[name]; !ok {
			return nil, fmt.Errorf("exocore: assignment names unknown BSA %q", name)
		}
		if plans[name].Region(loopID) == nil {
			return nil, fmt.Errorf("exocore: BSA %q has no plan for loop %d", name, loopID)
		}
	}

	g := dg.NewGraph()
	res := &RunResult{
		PerBSADyn:    make(map[string]int64),
		PerBSACycles: make(map[string]int64),
		PerBSACounts: make(map[string]*energy.Counts),
		ActiveCycles: make(map[string]int64),
	}
	gpp := cores.NewGPP(core, g, &res.Counts)
	ctx := &tdg.Ctx{TDG: t, G: g, GPP: gpp, Counts: &res.Counts, State: make(map[string]any)}

	segs := Segmentize(t, assign)
	var lastEnd int64
	snapshot := res.Counts
	for _, seg := range segs {
		name := ""
		var endNode dg.NodeID = dg.None
		if seg.LoopID >= 0 {
			name = assign[seg.LoopID]
			r := plans[name].Region(seg.LoopID)
			endNode = bsas[name].TransformRegion(ctx, r, seg.Start, seg.End)
		} else {
			for i := seg.Start; i < seg.End; i++ {
				d := &t.Trace.Insts[i]
				gpp.Exec(cores.FromDyn(&t.Trace.Prog.Insts[d.SI], d), int32(i))
			}
		}
		end := gpp.EndTime()
		if endNode != dg.None && g.Time(endNode) > end {
			end = g.Time(endNode)
		}
		if end < lastEnd {
			end = lastEnd
		}
		dur := end - lastEnd

		res.PerBSADyn[name] += int64(seg.End - seg.Start)
		res.PerBSACycles[name] += dur
		delta := diffCounts(&res.Counts, &snapshot)
		if res.PerBSACounts[name] == nil {
			res.PerBSACounts[name] = &energy.Counts{}
		}
		res.PerBSACounts[name].AddCounts(&delta)
		snapshot = res.Counts

		if name != "" {
			res.ActiveCycles[name] += dur
			if bsas[name].OffloadsCore() {
				res.OffloadCycles += dur
			}
		}
		if opts.RecordSegments {
			res.Segments = append(res.Segments, SegmentRecord{
				LoopID: seg.LoopID, BSA: name,
				StartCycle: lastEnd, EndCycle: end,
				Dyn: seg.End - seg.Start,
			})
		}
		lastEnd = end
	}
	res.Cycles = lastEnd
	return res, nil
}

func diffCounts(now, before *energy.Counts) energy.Counts {
	var d energy.Counts
	for i := range now {
		d[i] = now[i] - before[i]
	}
	return d
}

// GatedCoreStaticFraction is the fraction of core static power still paid
// while an offload BSA runs (frontend, window and FUs power-gated; caches
// and MMU stay on, shared with the accelerator).
const GatedCoreStaticFraction = 0.35

// EnergyOf converts a run result into total energy for a design point:
// core dynamic + core static (gated during offload) + accelerator static
// while active. Idle accelerators are assumed fully power-gated (the
// dark-silicon premise of §1).
func EnergyOf(res *RunResult, core cores.Config, bsas map[string]tdg.BSA) energy.Result {
	tbl := energy.CoreTable(core.EnergyParams())
	dyn := tbl.Evaluate(&res.Counts, 0).DynamicNJ

	cyclesToSec := 1.0 / (energy.FrequencyGHz * 1e9)
	onCycles := float64(res.Cycles - res.OffloadCycles)
	gated := float64(res.OffloadCycles)
	staticNJ := tbl.StaticW * (onCycles + GatedCoreStaticFraction*gated) * cyclesToSec * 1e9
	// Sum in sorted-name order: float accumulation over randomized map
	// iteration order would make energy differ in the last ULP between
	// otherwise identical runs.
	names := make([]string, 0, len(res.ActiveCycles))
	for name := range res.ActiveCycles {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w := energy.AccelStaticW(energy.AccelParams{AreaMM2: bsas[name].AreaMM2()})
		staticNJ += w * float64(res.ActiveCycles[name]) * cyclesToSec * 1e9
	}
	return energy.Result{DynamicNJ: dyn, StaticNJ: staticNJ, Cycles: res.Cycles}
}

// UnacceleratedFraction returns the fraction of original dynamic
// instructions that stayed on the general core.
func (r *RunResult) UnacceleratedFraction() float64 {
	var total int64
	for _, n := range r.PerBSADyn {
		total += n
	}
	if total == 0 {
		return 1
	}
	return float64(r.PerBSADyn[""]) / float64(total)
}

// BSAsUsed lists the models that actually covered instructions, sorted.
func (r *RunResult) BSAsUsed() []string {
	var out []string
	for name, n := range r.PerBSADyn {
		if name != "" && n > 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
