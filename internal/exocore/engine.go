// Package exocore composes a general-purpose core with a set of
// behavior-specialized accelerator models, implementing the ExoCore
// organization of the paper (§3). Execution migrates between the core and
// accelerators at loop boundaries according to a per-region assignment;
// energy is accounted per component including frontend power-gating
// during offload (§5.3).
//
// # Segment evaluation model
//
// Run splits the trace into segments (maximal spans under one model) and
// groups them into evaluation units: every offload-BSA segment stands
// alone, while each maximal run of core-resident segments (general core
// plus coupled BSAs such as SIMD and DP-CGRA) forms one unit. Each unit
// is evaluated independently on a fresh µDG from a drained pipeline
// boundary — relative cycle 0, empty window/ROB, all registers available
// at the origin — and total cycles and energy compose by summation.
// Inside a unit, segments share one pipeline exactly as the original
// monolithic engine did, so frontend and window overlap across coupled
// joints is preserved.
//
// This drained-pipeline-handoff boundary state is an explicit
// approximation, applied only where it is accurate: offload entry/exit
// already serializes on live-value transfer (the model joins its inputs
// at an entry handshake anchored at the core's last commit and hands back
// through an exit barrier), so essentially no ILP crosses an offload
// boundary. Core-resident joints, where a shared window keeps substantial
// ILP in flight, never see a drained boundary — they stay inside a unit.
// What the approximation buys is compositionality: a unit's outcome is a
// pure function of (core, span, model sequence, config residency), which
// makes outcomes cacheable across the 2^n-assignment design sweeps of §5
// — a 16-mask sweep evaluates each distinct unit once. The cached and
// uncached paths share the single evalUnit implementation, so their
// results agree bit-for-bit by construction (gated by the equivalence
// tests in this package and internal/dse).
//
// Cross-unit accelerator state — configuration residency — is simulated
// by the engine itself in composition order (per-BSA LRU of
// ConfigCacheWays entries) and passed into models via Ctx.ConfigResident,
// keeping it out of the per-unit state.
package exocore

import (
	"fmt"
	"slices"
	"strconv"
	"strings"

	"exocore/internal/bsa/bsautil"
	"exocore/internal/cores"
	"exocore/internal/dg"
	"exocore/internal/energy"
	"exocore/internal/obs"
	"exocore/internal/tdg"
)

// Assignment maps loop IDs to the name of the BSA chosen for them. Loops
// not present run on the general core. Assigned loops must not be nested
// inside one another; if they are, the outermost assignment wins.
type Assignment map[int]string

// Segment is a maximal run of dynamic instructions executing under one
// model: LoopID == -1 means the general core.
type Segment struct {
	LoopID int
	Start  int // dynamic index, inclusive
	End    int // exclusive
}

// SegmentRecord captures one executed segment for affinity analysis
// (Figure 13/14).
type SegmentRecord struct {
	LoopID     int
	BSA        string // "" for the general core
	StartCycle int64
	EndCycle   int64
	Dyn        int // original dynamic instructions covered
}

// RunOpts controls optional engine inputs and outputs.
type RunOpts struct {
	// RecordSegments retains the per-segment timeline (Figure 14).
	RecordSegments bool
	// RecordRegions builds the per-region attribution table
	// (RunResult.Regions): dynamic instructions, cycles, energy events and
	// critical-path class histogram per (loop, model).
	RecordRegions bool
	// Cache, when non-nil, memoizes segment outcomes and pools evaluation
	// arenas across Runs. It must have been created for the same core
	// config and be used with a fixed (TDG, bsas, plans) tuple.
	Cache *Cache
	// NoDelta disables the incremental-evaluation machinery (atom-based
	// segmentation and prefix-outcome publication) while keeping the unit
	// cache itself — the A/B escape hatch behind the -nodelta flag. Full
	// and delta evaluation are byte-identical (see TestDeltaMatchesFullRun);
	// this exists to measure the difference and to bisect regressions.
	NoDelta bool
	// Span, when active, receives one child span per evaluation unit
	// (annotated with cache hit/miss) with nested transform spans. The
	// zero Span disables tracing at nil-check cost.
	Span obs.Span
	// Reg, when non-nil, receives engine-level instruments: the
	// "eval.segment_len" histogram, per-BSA
	// "eval.offload_segments.<name>" counters, and the
	// "dg.graph_high_water_bytes" gauge (peak resident µDG footprint).
	Reg *obs.Registry
	// WindowNodes bounds the resident µDG during core-resident streaming:
	// when the live graph exceeds the bound, nodes behind every
	// architectural reference are retired (their times are already final
	// — see cores.GPP.CompactWindow), making peak memory O(window)
	// instead of O(trace) with byte-identical results. 0 selects
	// DefaultWindowNodes; negative disables windowing (whole-trace
	// graphs). Windowing is forced off when RecordRegions is set —
	// critical-path attribution walks the whole unit graph.
	WindowNodes int
}

const (
	// DefaultWindowNodes is the resident-node bound streaming evaluation
	// uses when RunOpts.WindowNodes is 0: ~2 MiB of time stream, far
	// beyond any architectural horizon (the pipeline can reference at
	// most the trailing 256-uop history plus pinned anchors), and large
	// enough that sub-50K-instruction traces never trigger compaction.
	DefaultWindowNodes = 1 << 18
	// compactStride is how many core-resident instructions stream
	// between window-compaction checks.
	compactStride = 4096
	// maxGraphHint caps the pre-sized graph arena: traces beyond this
	// evaluate through the streaming window, so pre-allocating the full
	// ~5-nodes-per-instruction arena would defeat the O(window) bound.
	maxGraphHint = 2 * DefaultWindowNodes
)

// graphHintFor sizes a pooled evaluation graph for a trace: ~5 µDG nodes
// per dynamic instruction, capped at the streaming-window scale.
func graphHintFor(traceLen int) int {
	h := 5*traceLen + 64
	if h > maxGraphHint {
		h = maxGraphHint
	}
	return h
}

// ModelStat attributes one model's share of a run ("" = general core).
type ModelStat struct {
	Name string
	// Dyn counts original dynamic instructions covered by the model — the
	// paper's "% of cycles un-accelerated" analysis (§5).
	Dyn int64
	// Cycles attributes execution cycles to the model.
	Cycles int64
	// ActiveCycles counts cycles the accelerator was powered (0 for the
	// general core).
	ActiveCycles int64
	// Counts attributes energy events to the model.
	Counts energy.Counts
}

// RunResult is the outcome of executing one benchmark on one design point.
type RunResult struct {
	Cycles int64
	Counts energy.Counts
	// Models holds per-model attribution, sorted by name (the "" general
	// core row first). A small fixed slice instead of per-call maps: a DSE
	// sweep builds millions of RunResults.
	Models []ModelStat
	// OffloadCycles counts cycles during which an offload BSA (NS-DF,
	// Trace-P) ran and the core frontend could be power-gated.
	OffloadCycles int64
	Segments      []SegmentRecord
	// Regions is the per-region attribution table (only when
	// RunOpts.RecordRegions), sorted by (LoopID, BSA) with the
	// general-core row (-1, "") first.
	Regions []RegionStat
}

// RegionStat attributes one region's share of a run: the paper-style
// breakdown row answering "where did this design's cycles and energy go,
// and why" (§5's Figure 13 analysis, grounded in the µDG critical path).
type RegionStat struct {
	// LoopID is the assigned loop (-1 for execution left on the general
	// core outside any assigned region).
	LoopID int
	// BSA is the model that ran the region ("" for the general core).
	BSA string
	// Dyn counts original dynamic instructions covered by the region.
	Dyn int64
	// Cycles is the execution time attributed to the region.
	Cycles int64
	// Counts holds the region's energy events.
	Counts energy.Counts
	// Classes is the critical-path latency attributed to the region's
	// segments, by µDG edge class — the "critical-path event class
	// histogram" explaining what the region's cycles waited on.
	Classes [dg.NumEdgeClasses]int64
}

// DynamicEnergyNJ evaluates the region's energy events under the core's
// energy table (dynamic energy only; static energy is a whole-run
// quantity, see EnergyOf).
func (rs *RegionStat) DynamicEnergyNJ(core cores.Config) float64 {
	tbl := energy.CoreTable(core.EnergyParams())
	return tbl.Evaluate(&rs.Counts, 0).DynamicNJ
}

// Region returns the run's attribution row for (loop, bsa), or nil.
func (r *RunResult) Region(loopID int, bsa string) *RegionStat {
	for i := range r.Regions {
		if r.Regions[i].LoopID == loopID && r.Regions[i].BSA == bsa {
			return &r.Regions[i]
		}
	}
	return nil
}

// stat returns the model's attribution row, appending one if absent. The
// slice stays tiny (GPP + assigned BSAs), so linear scan beats a map.
func (r *RunResult) stat(name string) *ModelStat {
	for i := range r.Models {
		if r.Models[i].Name == name {
			return &r.Models[i]
		}
	}
	r.Models = append(r.Models, ModelStat{Name: name})
	return &r.Models[len(r.Models)-1]
}

// Model returns the named model's attribution row ("" = general core), or
// nil if the model covered nothing.
func (r *RunResult) Model(name string) *ModelStat {
	for i := range r.Models {
		if r.Models[i].Name == name {
			return &r.Models[i]
		}
	}
	return nil
}

// DynOf returns the dynamic instructions the named model covered.
func (r *RunResult) DynOf(name string) int64 {
	if m := r.Model(name); m != nil {
		return m.Dyn
	}
	return 0
}

// CyclesOf returns the cycles attributed to the named model.
func (r *RunResult) CyclesOf(name string) int64 {
	if m := r.Model(name); m != nil {
		return m.Cycles
	}
	return 0
}

// Segmentize splits the trace into GPP and region segments under an
// assignment. A dynamic instruction belongs to the outermost assigned
// loop in its loop chain.
//
// The instruction's region depends only on its innermost loop, so the
// split runs over the TDG's memoized innermost-loop atoms: one region
// resolution per distinct loop (memoized in a nest-indexed scratch
// slice), one merge pass over the atoms — O(atoms + loops × depth)
// instead of the per-instruction nest walk this replaces, which was the
// single largest cost of uncached evaluation.
func Segmentize(t *tdg.TDG, assign Assignment) []Segment {
	return segmentizeAtoms(t, assign, nil, nil)
}

// segmentizeAtoms is Segmentize with caller-owned scratch: segs becomes
// the result's backing array and resolved the per-loop region memo
// (grown as needed). Pass nil for fresh allocations.
func segmentizeAtoms(t *tdg.TDG, assign Assignment, segs []Segment, resolved []int32) []Segment {
	nest := t.Nest
	atoms := t.LoopAtoms()
	if cap(resolved) < len(nest.Loops)+1 {
		resolved = make([]int32, len(nest.Loops)+1)
	}
	resolved = resolved[:len(nest.Loops)+1]
	for i := range resolved {
		resolved[i] = -2 // not yet resolved; -1 means "general core"
	}
	segs = segs[:0]
	cur := Segment{LoopID: -2}
	for _, a := range atoms {
		region := resolved[a.Loop+1]
		if region == -2 {
			region = -1
			for l := int(a.Loop); l != -1; l = nest.Loops[l].Parent {
				if _, ok := assign[l]; ok {
					region = int32(l) // keep walking: outermost assigned wins
				}
			}
			resolved[a.Loop+1] = region
		}
		if int(region) != cur.LoopID {
			if cur.LoopID != -2 {
				segs = append(segs, cur)
			}
			cur = Segment{LoopID: int(region), Start: int(a.Start), End: int(a.End)}
		} else {
			cur.End = int(a.End)
		}
	}
	if cur.LoopID != -2 {
		segs = append(segs, cur)
	}
	return segs
}

// Run executes the benchmark under the given core and assignment,
// returning cycles, energy events and attribution. bsas maps BSA name to
// model; plans maps BSA name to its analysis plan (so TransformRegion
// receives its region config). See the package comment for the segment
// evaluation model and its boundary-state approximation.
func Run(t *tdg.TDG, core cores.Config, bsas map[string]tdg.BSA,
	plans map[string]*tdg.Plan, assign Assignment, opts RunOpts) (*RunResult, error) {

	// Validate the assignment before doing any work.
	for loopID, name := range assign {
		if loopID < 0 || loopID >= len(t.Nest.Loops) {
			return nil, fmt.Errorf("exocore: assignment names unknown loop %d", loopID)
		}
		if _, ok := bsas[name]; !ok {
			return nil, fmt.Errorf("exocore: assignment names unknown BSA %q", name)
		}
		if plans[name].Region(loopID) == nil {
			return nil, fmt.Errorf("exocore: BSA %q has no plan for loop %d", name, loopID)
		}
	}

	// Delta path: the composer's precomputed atoms segmentize in
	// O(atoms) and its cut set drives prefix-outcome publication.
	var comp *composer
	var segs []Segment
	if opts.Cache != nil && !opts.NoDelta {
		comp = opts.Cache.composerFor(t, bsas, plans)
		segs = comp.segmentize(assign)
	} else {
		segs = Segmentize(t, assign)
	}
	units := unitize(t, segs, assign, bsas)
	res := &RunResult{Models: make([]ModelStat, 0, len(assign)+1)}

	// One worker (graph + GPP arenas) serves every unit of this run,
	// drawn from — and returned to — the per-config arena pool.
	var w *segWorker
	if opts.Cache != nil {
		w = opts.Cache.getWorker()
		defer opts.Cache.putWorker(w)
	} else {
		w = acquireWorker(core, graphHintFor(len(t.Trace.Insts)), nil)
		defer releaseWorker(core, w)
	}

	// Resolve the streaming window (0 = off from here on).
	window := opts.WindowNodes
	if window == 0 {
		window = DefaultWindowNodes
	}
	if window < 0 || opts.RecordRegions {
		window = 0
	}
	if opts.Reg != nil {
		// Peak resident µDG footprint across this run's units (the
		// worker samples its own peaks at reset/retire), folded into the
		// engine-wide gauge with max semantics.
		defer func() {
			opts.Reg.Gauge("dg.graph_high_water_bytes").SetMax(w.g.HighWaterBytes())
		}()
	}

	var segLen *obs.Histogram
	var offloadCtr map[string]*obs.Counter
	if opts.Reg != nil {
		segLen = opts.Reg.Histogram("eval.segment_len", obs.DefaultSizeBounds)
	}

	var lastEnd int64
	var descScratch []uint64
	var pkeyScratch, pvalScratch []byte
	for _, u := range units {
		usp := obs.Span{}
		if opts.Span.Active() {
			usp = opts.Span.Child("segment",
				"unit["+strconv.Itoa(u.segs[0].Start)+","+strconv.Itoa(u.segs[len(u.segs)-1].End)+")").
				ArgInt("segments", int64(len(u.segs)))
		}
		var out *unitOutcome
		if opts.Cache != nil {
			var key unitKey
			key, descScratch = opts.Cache.keyOf(&u, descScratch)
			out = opts.Cache.lookup(key)
			if usp.Active() {
				usp.Arg("cache", map[bool]string{true: "hit", false: "miss"}[out != nil])
			}
			switch {
			case out == nil:
				// Offload solo units are usually core-independent (the model
				// never touches the host pipeline), so before evaluating,
				// consult the cross-core shared pool populated by sibling
				// caches for the same TDG.
				var shared *sharedPool
				var shKey sharedKey
				if comp != nil && len(u.segs) == 1 && u.names[0] != "" &&
					bsas[u.names[0]].OffloadsCore() {
					shared = opts.Cache.shared
					seg := u.segs[0]
					shKey = sharedKey{
						start: int32(seg.Start), end: int32(seg.End),
						loop: int32(seg.LoopID), cfgRes: u.cfgRes[0],
						name: u.names[0],
					}
					if so := shared.lookup(shKey); so != nil &&
						(!opts.RecordRegions || so.segClasses != nil) {
						out = opts.Cache.store(key, so)
						opts.Cache.sharedHits.Add(1)
						// Write shared hits through too: the sibling core's
						// evaluation persisted under its own namespace, so
						// without this a restart of this core goes cold.
						if opts.Cache.persist != nil && !opts.RecordRegions {
							pkeyScratch = opts.Cache.persistKey(&u, pkeyScratch)
							pvalScratch = encodeOutcome(out, pvalScratch)
							opts.Cache.persist.Put(pkeyScratch, pvalScratch)
						}
						break
					}
				}
				// Durable tier: a restarted daemon re-reads outcomes its
				// predecessor (or a sibling replica sharing the directory)
				// already derived. Class-attributed runs bypass it — classes
				// are never persisted, and storing a classless outcome here
				// would only be upgraded away again.
				persist := opts.Cache.persist
				if persist != nil && opts.RecordRegions {
					persist = nil
				}
				if persist != nil {
					pkeyScratch = opts.Cache.persistKey(&u, pkeyScratch)
					if raw, ok := persist.Get(pkeyScratch); ok {
						if po := decodeOutcome(raw); po != nil && po.n() == len(u.segs) {
							out = opts.Cache.store(key, po)
							break
						}
					}
				}
				// On the delta path, evaluating this unit also publishes
				// outcomes for every cut-aligned prefix of it, so later
				// assignments that cut the trace here pay only their delta.
				var pub *publisher
				if comp != nil {
					if cuts := comp.cutsIn(u.segs[0].Start, u.segs[len(u.segs)-1].End); len(cuts) > 0 {
						pub = &publisher{
							cache: opts.Cache,
							descs: descScratch,
							start: key.start,
							cuts:  cuts,
						}
					}
				}
				o := evalUnit(w, t, bsas, plans, u, usp, opts.RecordRegions, window, pub)
				out = opts.Cache.store(key, &o)
				if persist != nil {
					pvalScratch = encodeOutcome(out, pvalScratch)
					persist.Put(pkeyScratch, pvalScratch)
				}
				// Publish to the shared pool only when the evaluation proved
				// itself core-independent: zero retired core µops means the
				// transform never consulted the host pipeline.
				if shared != nil && w.gpp.Retired() == 0 {
					shared.store(shKey, out)
				}
			case opts.RecordRegions && out.segClasses == nil:
				// Cached by a sweep without class attribution; re-evaluate
				// once with it and upgrade the entry.
				o := evalUnit(w, t, bsas, plans, u, usp, true, 0, nil)
				out = opts.Cache.upgrade(key, &o)
			}
		} else {
			o := evalUnit(w, t, bsas, plans, u, usp, opts.RecordRegions, window, nil)
			out = &o
		}

		for i, seg := range u.segs {
			name := u.names[i]
			dyn := int64(seg.End - seg.Start)
			dur := out.dur(i)
			st := res.stat(name)
			st.Dyn += dyn
			st.Cycles += dur
			st.Counts.AddCounts(out.counts(i))
			res.Counts.AddCounts(out.counts(i))
			segLen.Observe(dyn)
			if name != "" {
				st.ActiveCycles += dur
				if bsas[name].OffloadsCore() {
					res.OffloadCycles += dur
					if opts.Reg != nil {
						c := offloadCtr[name]
						if c == nil {
							if offloadCtr == nil {
								offloadCtr = make(map[string]*obs.Counter, 2)
							}
							c = opts.Reg.Counter("eval.offload_segments." + name)
							offloadCtr[name] = c
						}
						c.Add(1)
					}
				}
			}
			if opts.RecordRegions {
				rs := res.regionStat(seg.LoopID, name)
				rs.Dyn += dyn
				rs.Cycles += dur
				rs.Counts.AddCounts(out.counts(i))
				for cl, v := range out.segClasses[i] {
					rs.Classes[cl] += v
				}
			}
			if opts.RecordSegments {
				res.Segments = append(res.Segments, SegmentRecord{
					LoopID: seg.LoopID, BSA: name,
					StartCycle: lastEnd, EndCycle: lastEnd + dur,
					Dyn: seg.End - seg.Start,
				})
			}
			lastEnd += dur
		}
		usp.End()
	}
	res.Cycles = lastEnd
	slices.SortFunc(res.Models, func(a, b ModelStat) int { return strings.Compare(a.Name, b.Name) })
	slices.SortFunc(res.Regions, func(a, b RegionStat) int {
		if a.LoopID != b.LoopID {
			return a.LoopID - b.LoopID
		}
		return strings.Compare(a.BSA, b.BSA)
	})
	return res, nil
}

// regionStat returns the attribution row for (loop, bsa), appending one
// if absent; like stat, the table stays tiny so linear scan wins.
func (r *RunResult) regionStat(loopID int, bsa string) *RegionStat {
	for i := range r.Regions {
		if r.Regions[i].LoopID == loopID && r.Regions[i].BSA == bsa {
			return &r.Regions[i]
		}
	}
	r.Regions = append(r.Regions, RegionStat{LoopID: loopID, BSA: bsa})
	return &r.Regions[len(r.Regions)-1]
}

// unit is one evaluation unit: either a single offload-BSA segment, or a
// maximal run of core-resident segments (general core + coupled BSAs)
// sharing one pipeline. names and cfgRes parallel segs.
type unit struct {
	segs   []Segment
	names  []string
	cfgRes []bool
}

// unitize groups segments into evaluation units and runs the
// configuration-residency simulation (in composition order, so residency
// is identical whether or not unit outcomes later come from a cache).
// Units hold subslices of segs and of two shared backing arrays, so the
// partition costs a fixed three allocations however many units form.
func unitize(t *tdg.TDG, segs []Segment, assign Assignment, bsas map[string]tdg.BSA) []unit {
	if len(segs) == 0 {
		return nil
	}
	names := make([]string, len(segs))
	cfgRes := make([]bool, len(segs))
	units := make([]unit, 0, len(segs))
	runStart := 0
	flush := func(end int) {
		if end > runStart {
			units = append(units, unit{
				segs: segs[runStart:end], names: names[runStart:end], cfgRes: cfgRes[runStart:end],
			})
			runStart = end
		}
	}
	var cfgCaches map[string]*bsautil.ConfigCache
	for i, seg := range segs {
		offload := false
		if seg.LoopID >= 0 {
			name := assign[seg.LoopID]
			offload = bsas[name].OffloadsCore()
			if cfgCaches == nil {
				cfgCaches = make(map[string]*bsautil.ConfigCache, len(bsas))
			}
			cc := cfgCaches[name]
			if cc == nil {
				cc = bsautil.NewConfigCache(ConfigCacheWays)
				cfgCaches[name] = cc
			}
			names[i] = name
			cfgRes[i] = cc.Lookup(seg.LoopID)
		}
		if offload {
			flush(i)     // close any open core-resident run
			flush(i + 1) // the offload segment is its own unit
		}
	}
	flush(len(segs))
	return units
}

// GatedCoreStaticFraction is the fraction of core static power still paid
// while an offload BSA runs (frontend, window and FUs power-gated; caches
// and MMU stay on, shared with the accelerator).
const GatedCoreStaticFraction = 0.35

// EnergyOf converts a run result into total energy for a design point:
// core dynamic + core static (gated during offload) + accelerator static
// while active. Idle accelerators are assumed fully power-gated (the
// dark-silicon premise of §1).
func EnergyOf(res *RunResult, core cores.Config, bsas map[string]tdg.BSA) energy.Result {
	tbl := energy.CoreTable(core.EnergyParams())
	dyn := tbl.Evaluate(&res.Counts, 0).DynamicNJ

	cyclesToSec := 1.0 / (energy.FrequencyGHz * 1e9)
	onCycles := float64(res.Cycles - res.OffloadCycles)
	gated := float64(res.OffloadCycles)
	staticNJ := tbl.StaticW * (onCycles + GatedCoreStaticFraction*gated) * cyclesToSec * 1e9
	// Models is name-sorted, so this float accumulation is order-stable
	// between otherwise identical runs.
	for i := range res.Models {
		m := &res.Models[i]
		if m.Name == "" || m.ActiveCycles == 0 {
			continue
		}
		w := energy.AccelStaticW(energy.AccelParams{AreaMM2: bsas[m.Name].AreaMM2()})
		staticNJ += w * float64(m.ActiveCycles) * cyclesToSec * 1e9
	}
	return energy.Result{DynamicNJ: dyn, StaticNJ: staticNJ, Cycles: res.Cycles}
}

// UnacceleratedFraction returns the fraction of original dynamic
// instructions that stayed on the general core.
func (r *RunResult) UnacceleratedFraction() float64 {
	var total int64
	for i := range r.Models {
		total += r.Models[i].Dyn
	}
	if total == 0 {
		return 1
	}
	return float64(r.DynOf("")) / float64(total)
}

// BSAsUsed lists the models that actually covered instructions, sorted.
func (r *RunResult) BSAsUsed() []string {
	var out []string
	for i := range r.Models {
		if m := &r.Models[i]; m.Name != "" && m.Dyn > 0 {
			out = append(out, m.Name)
		}
	}
	slices.Sort(out)
	return out
}
