package exocore

import (
	"testing"

	"exocore/internal/bsa"
	"exocore/internal/cores"
	"exocore/internal/tdg"
	"exocore/internal/workloads"
)

func buildTDG(t *testing.T, name string, maxDyn int) *tdg.TDG {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := w.Trace(maxDyn)
	if err != nil {
		t.Fatal(err)
	}
	td, err := tdg.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	return td
}

func allBSAs() map[string]tdg.BSA {
	return bsa.Standard().New()
}

func analyzeAll(t *tdg.TDG, bsas map[string]tdg.BSA) map[string]*tdg.Plan {
	plans := make(map[string]*tdg.Plan, len(bsas))
	for name, b := range bsas {
		plans[name] = b.Analyze(t)
	}
	return plans
}

func TestBaselineRunMatchesEvaluate(t *testing.T) {
	td := buildTDG(t, "mm", 30000)
	res, err := Run(td, cores.OOO2, allBSAs(), analyzeAll(td, allBSAs()), nil, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := cores.Evaluate(cores.OOO2, td.Trace)
	if res.Cycles != ref {
		t.Errorf("engine baseline = %d cycles, direct evaluate = %d", res.Cycles, ref)
	}
	if res.UnacceleratedFraction() != 1 {
		t.Errorf("no assignment but unaccelerated = %v", res.UnacceleratedFraction())
	}
}

func TestSegmentizeCoversTrace(t *testing.T) {
	td := buildTDG(t, "mm", 30000)
	bsas := allBSAs()
	plans := analyzeAll(td, bsas)
	// Assign every SIMD-plannable loop.
	assign := Assignment{}
	for l := range plans["SIMD"].Regions {
		assign[l] = "SIMD"
	}
	if len(assign) == 0 {
		t.Fatal("SIMD found no vectorizable loop in mm")
	}
	segs := Segmentize(td, assign)
	covered := 0
	last := 0
	for _, s := range segs {
		if s.Start != last {
			t.Fatalf("segment gap at %d", s.Start)
		}
		covered += s.End - s.Start
		last = s.End
	}
	if covered != td.Trace.Len() {
		t.Errorf("segments cover %d of %d insts", covered, td.Trace.Len())
	}
}

func TestEachBSASpeedsUpItsAffineWorkload(t *testing.T) {
	cases := []struct {
		workload string
		bsa      string
		core     cores.Config
		minGain  float64 // required speedup over the plain core
	}{
		{"mm", "SIMD", cores.OOO2, 1.3},
		{"mm", "NS-DF", cores.OOO2, 1.2},
		{"stencil", "SIMD", cores.OOO2, 1.3},
		{"spmv", "NS-DF", cores.OOO2, 1.0},
		{"nbody", "DP-CGRA", cores.OOO2, 1.3},
		{"nbody", "SIMD", cores.OOO2, 1.3},
		{"vr", "Trace-P", cores.OOO2, 1.0},
	}
	for _, c := range cases {
		t.Run(c.workload+"/"+c.bsa, func(t *testing.T) {
			td := buildTDG(t, c.workload, 30000)
			bsas := allBSAs()
			plans := analyzeAll(td, bsas)
			base, _ := cores.Evaluate(c.core, td.Trace)

			assign := Assignment{}
			for l := range plans[c.bsa].Regions {
				// Only assign outermost eligible loops for offload BSAs.
				assign[l] = c.bsa
			}
			if len(assign) == 0 {
				t.Fatalf("%s has no plan for %s", c.bsa, c.workload)
			}
			res, err := Run(td, c.core, bsas, plans, assign, RunOpts{})
			if err != nil {
				t.Fatal(err)
			}
			speedup := float64(base) / float64(res.Cycles)
			t.Logf("%s on %s: base=%d accel=%d speedup=%.2f offloaded=%.0f%%",
				c.bsa, c.workload, base, res.Cycles, speedup,
				100*(1-res.UnacceleratedFraction()))
			if speedup < c.minGain {
				t.Errorf("speedup %.2f < required %.2f", speedup, c.minGain)
			}
		})
	}
}

func TestEnergyOfAccountsStatics(t *testing.T) {
	td := buildTDG(t, "mm", 20000)
	bsas := allBSAs()
	plans := analyzeAll(td, bsas)
	res, err := Run(td, cores.OOO2, bsas, plans, nil, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	e := EnergyOf(res, cores.OOO2, bsas)
	if e.DynamicNJ <= 0 || e.StaticNJ <= 0 {
		t.Errorf("energy components must be positive: %+v", e)
	}

	// NS-DF offload must gate the core and be more energy-efficient than
	// the plain core on this kernel.
	assign := Assignment{}
	for l := range plans["NS-DF"].Regions {
		if td.Nest.Loops[l].Depth == 1 {
			assign[l] = "NS-DF"
		}
	}
	res2, err := Run(td, cores.OOO2, bsas, plans, assign, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.OffloadCycles == 0 {
		t.Error("NS-DF run recorded no offload cycles")
	}
	e2 := EnergyOf(res2, cores.OOO2, bsas)
	if e2.TotalNJ() >= e.TotalNJ() {
		t.Errorf("NS-DF offload should save energy on mm: %.1f vs %.1f nJ",
			e2.TotalNJ(), e.TotalNJ())
	}
}

func TestRunRejectsBadAssignments(t *testing.T) {
	td := buildTDG(t, "mm", 5000)
	bsas := allBSAs()
	plans := analyzeAll(td, bsas)
	if _, err := Run(td, cores.OOO2, bsas, plans, Assignment{999: "SIMD"}, RunOpts{}); err == nil {
		t.Error("unknown loop accepted")
	}
	if _, err := Run(td, cores.OOO2, bsas, plans, Assignment{0: "BOGUS"}, RunOpts{}); err == nil {
		t.Error("unknown BSA accepted")
	}
}

func TestRecordSegments(t *testing.T) {
	td := buildTDG(t, "mm", 20000)
	bsas := allBSAs()
	plans := analyzeAll(td, bsas)
	assign := Assignment{}
	for l := range plans["SIMD"].Regions {
		assign[l] = "SIMD"
	}
	res, err := Run(td, cores.OOO2, bsas, plans, assign, RunOpts{RecordSegments: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) == 0 {
		t.Fatal("no segments recorded")
	}
	var prevEnd int64
	sawBSA := false
	for _, s := range res.Segments {
		if s.StartCycle < prevEnd {
			t.Errorf("segment starts before previous ended: %+v", s)
		}
		if s.BSA == "SIMD" {
			sawBSA = true
		}
		prevEnd = s.EndCycle
	}
	if !sawBSA {
		t.Error("no SIMD segment in timeline")
	}
}
