package exocore

import (
	"bytes"
	"reflect"
	"testing"

	"exocore/internal/cores"
	"exocore/internal/energy"
	"exocore/internal/obs"
)

// TestObservationDoesNotPerturbResults is the "off path is free" gate:
// a fully-instrumented run (span + registry + region recording + cache)
// must produce exactly the same result as a bare one.
func TestObservationDoesNotPerturbResults(t *testing.T) {
	td := buildTDG(t, "cjpeg", 30000)
	bsas := allBSAs()
	plans := analyzeAll(td, bsas)
	assign := Assignment{}
	for name, p := range plans {
		for l := range p.Regions {
			assign[l] = name
			break
		}
	}

	bare, err := Run(td, cores.OOO2, bsas, plans, assign, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}

	tr := obs.NewTracer("test")
	sp := tr.Begin("stage", "eval cjpeg")
	obsRun, err := Run(td, cores.OOO2, bsas, plans, assign, RunOpts{
		Cache:         NewCache(cores.OOO2, td.Trace.Len()),
		Span:          sp,
		Reg:           obs.NewRegistry(),
		RecordRegions: true,
	})
	sp.End()
	if err != nil {
		t.Fatal(err)
	}

	if bare.Cycles != obsRun.Cycles {
		t.Errorf("cycles: bare %d, observed %d", bare.Cycles, obsRun.Cycles)
	}
	if bare.OffloadCycles != obsRun.OffloadCycles {
		t.Errorf("offload cycles: bare %d, observed %d", bare.OffloadCycles, obsRun.OffloadCycles)
	}
	if bare.Counts != obsRun.Counts {
		t.Errorf("energy counts: bare %+v, observed %+v", bare.Counts, obsRun.Counts)
	}
	if !reflect.DeepEqual(bare.Models, obsRun.Models) {
		t.Errorf("model stats: bare %+v, observed %+v", bare.Models, obsRun.Models)
	}

	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateTrace(buf.Bytes()); err != nil {
		t.Errorf("emitted trace invalid: %v", err)
	}

	// The flight-recorder shape is just as free: a small ring that must
	// wrap during the run still yields identical results and a valid
	// (windowed) trace.
	ring := obs.NewRingTracer("test", 2)
	rsp := ring.Begin("stage", "eval cjpeg")
	ringRun, err := Run(td, cores.OOO2, bsas, plans, assign, RunOpts{
		Cache:         NewCache(cores.OOO2, td.Trace.Len()),
		Span:          rsp,
		Reg:           obs.NewRegistry(),
		RecordRegions: true,
	})
	rsp.End()
	if err != nil {
		t.Fatal(err)
	}
	if bare.Cycles != ringRun.Cycles || bare.Counts != ringRun.Counts {
		t.Errorf("ring tracer perturbed the run: bare %d cycles, ring %d", bare.Cycles, ringRun.Cycles)
	}
	if !reflect.DeepEqual(bare.Models, ringRun.Models) {
		t.Errorf("ring tracer perturbed model stats")
	}
	if ring.Dropped() == 0 {
		t.Errorf("cap-2 ring never wrapped (retained %d): test not exercising eviction", ring.Len())
	}
	buf.Reset()
	if err := ring.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateTrace(buf.Bytes()); err != nil {
		t.Errorf("ring trace after wraparound invalid: %v", err)
	}
}

// TestRegionAttributionSumsToTotals checks the per-region table is a
// partition of the run: dynamic instructions, cycles and energy events
// each sum back to the whole-run figures.
func TestRegionAttributionSumsToTotals(t *testing.T) {
	td := buildTDG(t, "mm", 30000)
	bsas := allBSAs()
	plans := analyzeAll(td, bsas)
	assign := Assignment{}
	for name, p := range plans {
		for l := range p.Regions {
			assign[l] = name
			break
		}
	}

	res, err := Run(td, cores.OOO2, bsas, plans, assign, RunOpts{RecordRegions: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regions) < 2 {
		t.Fatalf("regions = %d, want the general-core row plus accelerated rows", len(res.Regions))
	}

	var dyn, cycles, classes int64
	var counts energy.Counts
	for i := range res.Regions {
		rs := &res.Regions[i]
		dyn += rs.Dyn
		cycles += rs.Cycles
		counts.AddCounts(&rs.Counts)
		for _, v := range rs.Classes {
			classes += v
		}
	}
	if dyn != int64(td.Trace.Len()) {
		t.Errorf("region dyn sums to %d, trace has %d", dyn, td.Trace.Len())
	}
	if cycles != res.Cycles {
		t.Errorf("region cycles sum to %d, run took %d", cycles, res.Cycles)
	}
	if counts != res.Counts {
		t.Errorf("region energy counts do not sum to run counts:\nregions: %v\nrun:     %v", counts, res.Counts)
	}
	if classes == 0 {
		t.Error("no critical-path class latency attributed to any region")
	}

	// Every accelerated row reflects the assignment we made (nested
	// assigned loops may never execute — outermost wins — so iterate the
	// rows, not the assignment), and Region() finds each row.
	accelerated := 0
	for i := range res.Regions {
		rs := &res.Regions[i]
		if rs.BSA != "" {
			accelerated++
			if assign[rs.LoopID] != rs.BSA {
				t.Errorf("region (%d, %s) not in assignment %v", rs.LoopID, rs.BSA, assign)
			}
		}
		if got := res.Region(rs.LoopID, rs.BSA); got != rs {
			t.Errorf("Region(%d, %q) = %p, want row %d (%p)", rs.LoopID, rs.BSA, got, i, rs)
		}
	}
	if accelerated == 0 {
		t.Error("no accelerated region rows")
	}
	if rs := res.Region(-1, ""); rs == nil {
		t.Error("no general-core (-1) region row")
	}
}
