package exocore

import (
	"encoding/binary"

	"exocore/internal/energy"
)

// Persist is a durable unit-outcome store attached to a Cache (see
// AttachPersist): Get returns the value last Put under key, or
// ok=false. Both sides are best-effort — a persist layer may drop
// writes (eviction, I/O errors) at the cost of re-computation, never
// correctness. Implementations must be safe for concurrent use and
// must not retain key or val after the call returns (the engine reuses
// scratch buffers); internal/store satisfies this interface.
type Persist interface {
	Get(key []byte) ([]byte, bool)
	Put(key, val []byte)
}

// AttachPersist connects a durable store to the cache, namespaced by
// ns. The in-memory unitKey cannot cross processes — its signature is
// an intern-trie node ID whose value depends on insertion order — so
// persisted entries are keyed by the canonical serialization of the
// unit's structure (appendUnitSig) under ns, which must uniquely
// identify the cache's (benchmark trace, core config, BSA set) tuple
// across daemon restarts (internal/runner derives it from the workload
// name, core name and -maxdyn). Attach before the cache's first Run;
// the field is read without synchronization afterwards.
func (c *Cache) AttachPersist(p Persist, ns string) {
	c.persist = p
	c.persistNS = ns
}

// persistKey serializes a unit's identity for the durable store:
// namespace, dynamic span, and per segment the start offset, assigned
// loop, model name and configuration residency — the same information
// unitKey interns, in a process-independent encoding.
//
//	ns | uvarint(start) uvarint(end) uvarint(nsegs)
//	   | per segment: uvarint(offset) uvarint(loop+1)
//	                  uvarint(len(name)) name cfgRes
//
// General-core segments write loop 0 / empty name / residency 0,
// mirroring descOf (their loop ID does not affect the outcome).
func (c *Cache) persistKey(u *unit, scratch []byte) []byte {
	start := u.segs[0].Start
	b := append(scratch[:0], c.persistNS...)
	b = binary.AppendUvarint(b, uint64(start))
	b = binary.AppendUvarint(b, uint64(u.segs[len(u.segs)-1].End))
	b = binary.AppendUvarint(b, uint64(len(u.segs)))
	for i, seg := range u.segs {
		b = binary.AppendUvarint(b, uint64(seg.Start-start))
		name := u.names[i]
		if name == "" {
			b = append(b, 0, 0, 0)
			continue
		}
		b = binary.AppendUvarint(b, uint64(seg.LoopID+1))
		b = binary.AppendUvarint(b, uint64(len(name)))
		b = append(b, name...)
		if u.cfgRes[i] {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

// outcomeVersion stamps persisted outcome values; a decoder seeing any
// other version treats the entry as a miss (forward compatibility
// across format changes without a store wipe).
const outcomeVersion = 1

// encodeOutcome serializes an outcome's per-segment durations and
// energy-event deltas. Class attribution is never persisted — the
// engine skips the persist path entirely for RecordRegions runs — and
// prefix aliasing is flattened through the n/dur/counts accessors.
func encodeOutcome(o *unitOutcome, scratch []byte) []byte {
	n := o.n()
	b := append(scratch[:0], outcomeVersion)
	b = binary.AppendUvarint(b, uint64(energy.NumEvents))
	b = binary.AppendUvarint(b, uint64(n))
	for i := 0; i < n; i++ {
		b = binary.AppendUvarint(b, uint64(o.dur(i)))
		for _, v := range o.counts(i) {
			b = binary.AppendVarint(b, v)
		}
	}
	return b
}

// decodeOutcome is the inverse of encodeOutcome; nil means the value
// is from another format version or malformed (treated as a miss).
func decodeOutcome(raw []byte) *unitOutcome {
	if len(raw) < 1 || raw[0] != outcomeVersion {
		return nil
	}
	p := raw[1:]
	ev, k := binary.Uvarint(p)
	if k <= 0 || ev != uint64(energy.NumEvents) {
		return nil
	}
	p = p[k:]
	n, k := binary.Uvarint(p)
	if k <= 0 || n == 0 || n > 1<<24 {
		return nil
	}
	p = p[k:]
	o := &unitOutcome{
		segDurs:   make([]int64, n),
		segCounts: make([]energy.Counts, n),
	}
	for i := range o.segDurs {
		d, k := binary.Uvarint(p)
		if k <= 0 {
			return nil
		}
		o.segDurs[i] = int64(d)
		p = p[k:]
		for j := range o.segCounts[i] {
			v, k := binary.Varint(p)
			if k <= 0 {
				return nil
			}
			o.segCounts[i][j] = v
			p = p[k:]
		}
	}
	if len(p) != 0 {
		return nil
	}
	return o
}
