package exocore

import (
	"reflect"
	"sort"
	"sync"
	"testing"

	"exocore/internal/cores"
	"exocore/internal/energy"
)

// mapPersist is an in-memory Persist for tests, copying keys and
// values (the engine reuses its scratch buffers between calls).
type mapPersist struct {
	mu   sync.Mutex
	m    map[string][]byte
	gets int
	hits int
	puts int
}

func newMapPersist() *mapPersist { return &mapPersist{m: make(map[string][]byte)} }

func (p *mapPersist) Get(key []byte) ([]byte, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.gets++
	v, ok := p.m[string(key)]
	if ok {
		p.hits++
	}
	return append([]byte(nil), v...), ok
}

func (p *mapPersist) Put(key, val []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.puts++
	p.m[string(key)] = append([]byte(nil), val...)
}

// TestPersistWarmRestartMatchesCold is the correctness gate for the
// durable tier: a fresh Cache attached to a Persist populated by a
// previous Cache (simulating a daemon restart) must produce results
// deeply identical to a cold run, while actually serving outcomes from
// the persist layer.
func TestPersistWarmRestartMatchesCold(t *testing.T) {
	td := buildTDG(t, "cjpeg", 15000)
	bsas := allBSAs()
	plans := analyzeAll(td, bsas)

	var assigns []Assignment
	assigns = append(assigns, nil)
	var names []string
	for name := range bsas {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		full := Assignment{}
		for l := range plans[name].Regions {
			full[l] = name
		}
		if len(full) > 0 {
			assigns = append(assigns, full)
		}
	}

	run := func(c *Cache, assign Assignment) *RunResult {
		t.Helper()
		res, err := Run(td, cores.OOO2, bsas, plans, assign, RunOpts{Cache: c})
		if err != nil {
			t.Fatalf("run %v: %v", assign, err)
		}
		return res
	}

	// Cold process: populate the persist layer.
	p := newMapPersist()
	c1 := NewCache(cores.OOO2, td.Trace.Len())
	c1.AttachPersist(p, "u1|cjpeg/OOO2/15000|")
	var want []*RunResult
	for _, a := range assigns {
		want = append(want, run(c1, a))
	}
	if p.puts == 0 {
		t.Fatal("cold run persisted nothing")
	}

	// Restarted process: fresh cache, same store and namespace.
	p.gets, p.hits = 0, 0
	c2 := NewCache(cores.OOO2, td.Trace.Len())
	c2.AttachPersist(p, "u1|cjpeg/OOO2/15000|")
	for i, a := range assigns {
		got := run(c2, a)
		if !reflect.DeepEqual(want[i], got) {
			t.Errorf("assign %d: warm-restart result diverges\ncold: %+v\nwarm: %+v", i, want[i], got)
		}
	}
	if p.hits == 0 {
		t.Error("warm restart never hit the persist layer")
	}
	t.Logf("warm restart: %d/%d persist hits, %d entries", p.hits, p.gets, len(p.m))

	// A different namespace must not cross-contaminate.
	c3 := NewCache(cores.OOO2, td.Trace.Len())
	c3.AttachPersist(p, "u1|cjpeg/OOO4/15000|")
	before := p.hits
	run(c3, nil)
	if p.hits != before {
		t.Error("foreign namespace served a hit")
	}
}

// TestPersistSkipsClassAttribution checks that class-attributed runs
// bypass the persist layer in both directions: nothing persisted, and
// a classless persisted outcome never satisfies a RecordRegions run.
func TestPersistSkipsClassAttribution(t *testing.T) {
	td := buildTDG(t, "mm", 15000)
	bsas := allBSAs()
	plans := analyzeAll(td, bsas)

	ref, err := Run(td, cores.OOO2, bsas, plans, nil, RunOpts{RecordRegions: true})
	if err != nil {
		t.Fatal(err)
	}

	p := newMapPersist()
	c1 := NewCache(cores.OOO2, td.Trace.Len())
	c1.AttachPersist(p, "ns|")
	if _, err := Run(td, cores.OOO2, bsas, plans, nil, RunOpts{Cache: c1, RecordRegions: true}); err != nil {
		t.Fatal(err)
	}
	if p.puts != 0 || p.gets != 0 {
		t.Fatalf("RecordRegions run touched the persist layer (%d gets, %d puts)", p.gets, p.puts)
	}

	// Populate classlessly (a fresh cache, so misses actually reach the
	// persist layer), then demand classes from yet another fresh cache:
	// the classless entries must be bypassed and the result must carry
	// regions.
	c1b := NewCache(cores.OOO2, td.Trace.Len())
	c1b.AttachPersist(p, "ns|")
	if _, err := Run(td, cores.OOO2, bsas, plans, nil, RunOpts{Cache: c1b}); err != nil {
		t.Fatal(err)
	}
	if p.puts == 0 {
		t.Fatal("classless run persisted nothing")
	}
	c2 := NewCache(cores.OOO2, td.Trace.Len())
	c2.AttachPersist(p, "ns|")
	got, err := Run(td, cores.OOO2, bsas, plans, nil, RunOpts{Cache: c2, RecordRegions: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.Regions, got.Regions) {
		t.Error("RecordRegions through a warm persist layer diverges from the uncached reference")
	}
}

// TestOutcomeCodecRoundTrip exercises the value encoding directly,
// including the prefix-aliased form and malformed input.
func TestOutcomeCodecRoundTrip(t *testing.T) {
	o := &unitOutcome{
		segDurs:   []int64{10, 0, 1 << 40},
		segCounts: make([]energy.Counts, 3),
	}
	o.segCounts[0][0] = 7
	o.segCounts[2][1] = -3 // deltas are non-negative in practice; codec must not care
	raw := encodeOutcome(o, nil)
	got := decodeOutcome(raw)
	if got == nil {
		t.Fatal("decode failed")
	}
	if got.n() != 3 || got.dur(2) != 1<<40 || got.counts(0)[0] != 7 || got.counts(2)[1] != -3 {
		t.Fatalf("round trip mismatch: %+v", got)
	}

	// Prefix-aliased outcome flattens through the accessors.
	pre := &unitOutcome{
		segDurs:    o.segDurs[:2:2],
		segCounts:  o.segCounts[:2:2],
		nsegs:      3,
		lastDur:    99,
		lastCounts: energy.Counts{5},
	}
	got = decodeOutcome(encodeOutcome(pre, nil))
	if got == nil || got.n() != 3 || got.dur(2) != 99 || got.counts(2)[0] != 5 {
		t.Fatalf("prefix round trip mismatch: %+v", got)
	}

	for _, bad := range [][]byte{nil, {}, {2}, raw[:len(raw)-1], append(append([]byte{}, raw...), 0)} {
		if decodeOutcome(bad) != nil {
			t.Errorf("decode accepted malformed input %v", bad)
		}
	}
}
