package exocore

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"exocore/internal/cores"
)

// TestArbitraryAssignmentsAreSane fuzzes the engine with random legal
// assignments drawn from the plans and checks global invariants: segments
// partition the trace, cycles are positive and bounded, energy events are
// non-negative, and per-model instruction attribution sums to the trace
// length.
func TestArbitraryAssignmentsAreSane(t *testing.T) {
	benches := []string{"cjpeg", "mm", "vr", "mcf", "h264ref"}
	rng := rand.New(rand.NewSource(7))
	for _, bench := range benches {
		td := buildTDG(t, bench, 20000)
		bsas := allBSAs()
		plans := analyzeAll(td, bsas)

		// Collect all legal (loop, bsa) pairs.
		type cand struct {
			loop int
			bsa  string
		}
		var cands []cand
		for name, plan := range plans {
			for l := range plan.Regions {
				cands = append(cands, cand{l, name})
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].loop != cands[j].loop {
				return cands[i].loop < cands[j].loop
			}
			return cands[i].bsa < cands[j].bsa
		})
		if len(cands) == 0 {
			continue
		}

		for trial := 0; trial < 8; trial++ {
			assign := Assignment{}
			for _, c := range cands {
				if rng.Intn(3) == 0 {
					assign[c.loop] = c.bsa // later entries may overwrite: fine
				}
			}
			res, err := Run(td, cores.OOO2, bsas, plans, assign, RunOpts{RecordSegments: true})
			if err != nil {
				t.Fatalf("%s trial %d (%v): %v", bench, trial, assign, err)
			}
			if res.Cycles <= 0 || res.Cycles > int64(td.Trace.Len())*300 {
				t.Errorf("%s: implausible cycles %d for %d insts", bench, res.Cycles, td.Trace.Len())
			}
			var dyn int64
			for i := range res.Models {
				dyn += res.Models[i].Dyn
			}
			if dyn != int64(td.Trace.Len()) {
				t.Errorf("%s: attribution covers %d of %d insts", bench, dyn, td.Trace.Len())
			}
			covered := 0
			var prevEnd int64
			for _, s := range res.Segments {
				covered += s.Dyn
				if s.StartCycle < prevEnd {
					t.Errorf("%s: segment timeline not monotone", bench)
				}
				prevEnd = s.EndCycle
			}
			if covered != td.Trace.Len() {
				t.Errorf("%s: segments cover %d of %d insts", bench, covered, td.Trace.Len())
			}
			for i, v := range res.Counts {
				if v < 0 {
					t.Errorf("%s: negative energy event %d", bench, i)
				}
			}
			e := EnergyOf(res, cores.OOO2, bsas)
			if e.TotalNJ() <= 0 {
				t.Errorf("%s: non-positive energy", bench)
			}
		}
	}
}

// TestRandomizedAssignmentsDeltaEqualsFull is the property-level gate for
// the incremental delta-evaluation path: over a seeded corpus of random
// assignments, a Run through the delta machinery (shared cache, atom
// segmentation, prefix publication, cross-core shared pool) must agree
// exactly — cycles, energy counts, model attribution, offload cycles and
// per-region stats — with a from-scratch full Run on the same assignment.
// The cache is shared across the whole corpus so later assignments
// exercise prefix reuse against outcomes published by earlier ones, and
// both cores draw from the same process-wide shared-pool registry the way
// a DSE sweep does.
func TestRandomizedAssignmentsDeltaEqualsFull(t *testing.T) {
	const (
		maxDyn      = 8000
		assignments = 12
	)
	rng := rand.New(rand.NewSource(7))
	bsas := allBSAs()
	names := make([]string, 0, len(bsas))
	for n := range bsas {
		names = append(names, n)
	}
	sort.Strings(names)

	for _, bench := range []string{"mm", "cjpeg"} {
		td := buildTDG(t, bench, maxDyn)
		plans := analyzeAll(td, bsas)

		// Assignable loops with their candidate BSAs, in loop order so the
		// rng consumption (and thus the corpus) is deterministic.
		var loops []int
		cands := make(map[int][]string)
		for l := range td.Nest.Loops {
			for _, n := range names {
				if plans[n].Region(l) != nil {
					cands[l] = append(cands[l], n)
				}
			}
			if len(cands[l]) > 0 {
				loops = append(loops, l)
			}
		}
		sort.Ints(loops)
		if len(loops) == 0 {
			t.Fatalf("%s: no assignable loops", bench)
		}

		for _, core := range []cores.Config{cores.IO2, cores.OOO4} {
			cache := NewCache(core, td.Trace.Len())
			for i := 0; i < assignments; i++ {
				assign := Assignment{}
				for _, l := range loops {
					if rng.Intn(2) == 0 {
						continue
					}
					cs := cands[l]
					assign[l] = cs[rng.Intn(len(cs))]
				}
				regions := i%2 == 0

				delta, err := Run(td, core, bsas, plans, assign,
					RunOpts{Cache: cache, RecordRegions: regions})
				if err != nil {
					t.Fatal(err)
				}
				full, err := Run(td, core, bsas, plans, assign,
					RunOpts{NoDelta: true, RecordRegions: regions})
				if err != nil {
					t.Fatal(err)
				}

				if delta.Cycles != full.Cycles {
					t.Errorf("%s/%s #%d %v: delta cycles %d != full %d",
						bench, core.Name, i, assign, delta.Cycles, full.Cycles)
				}
				if delta.Counts != full.Counts {
					t.Errorf("%s/%s #%d %v: energy counts diverge", bench, core.Name, i, assign)
				}
				if delta.OffloadCycles != full.OffloadCycles {
					t.Errorf("%s/%s #%d %v: offload cycles %d != %d",
						bench, core.Name, i, assign, delta.OffloadCycles, full.OffloadCycles)
				}
				if !reflect.DeepEqual(delta.Models, full.Models) {
					t.Errorf("%s/%s #%d %v: model attribution diverges:\ndelta: %+v\nfull:  %+v",
						bench, core.Name, i, assign, delta.Models, full.Models)
				}
				if !reflect.DeepEqual(delta.Regions, full.Regions) {
					t.Errorf("%s/%s #%d %v: region stats diverge:\ndelta: %+v\nfull:  %+v",
						bench, core.Name, i, assign, delta.Regions, full.Regions)
				}
			}
		}
	}
}

// TestMoreBSAsNeverWorseUnderOracle checks monotonicity of the oracle
// composition: adding an accelerator to the available set can only keep
// or improve the chosen design's energy-delay (the oracle may always
// ignore the newcomer).
func TestMoreBSAsNeverWorseUnderOracle(t *testing.T) {
	// This is an engine+scheduler integration property, checked through
	// the measured candidates in sched — here we verify the engine side:
	// the empty assignment always reproduces the baseline exactly.
	for _, bench := range []string{"mm", "gzip"} {
		td := buildTDG(t, bench, 15000)
		bsas := allBSAs()
		plans := analyzeAll(td, bsas)
		a, err := Run(td, cores.OOO4, bsas, plans, nil, RunOpts{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(td, cores.OOO4, bsas, plans, Assignment{}, RunOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Cycles != b.Cycles {
			t.Errorf("%s: nil vs empty assignment differ: %d vs %d", bench, a.Cycles, b.Cycles)
		}
		ref, _ := cores.Evaluate(cores.OOO4, td.Trace)
		if a.Cycles != ref {
			t.Errorf("%s: engine baseline %d != direct evaluation %d", bench, a.Cycles, ref)
		}
	}
}

// TestDeterminism: identical runs must produce identical results.
func TestDeterminism(t *testing.T) {
	td := buildTDG(t, "cjpeg", 20000)
	bsas := allBSAs()
	plans := analyzeAll(td, bsas)
	assign := Assignment{}
	for l := range plans["NS-DF"].Regions {
		assign[l] = "NS-DF"
	}
	a, err := Run(td, cores.OOO2, bsas, plans, assign, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(td, cores.OOO2, allBSAs(), plans, assign, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Counts != b.Counts {
		t.Error("engine runs are not deterministic")
	}
}
