package exocore

import (
	"testing"

	"exocore/internal/bpred"
	"exocore/internal/cache"
	"exocore/internal/isa"
	"exocore/internal/prog"
	"exocore/internal/sim"
	"exocore/internal/tdg"
	"exocore/internal/trace"
)

// synthTDG executes an authored program and builds its TDG, mirroring the
// quickstart pipeline (simulate, annotate caches and branch prediction,
// reconstruct).
func synthTDG(t *testing.T, p *prog.Program, init func(*sim.State)) *tdg.TDG {
	t.Helper()
	st := sim.NewState()
	if init != nil {
		init(st)
	}
	tr, err := sim.Run(p, st, sim.Config{MaxDyn: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	cache.DefaultHierarchy().Annotate(tr)
	bpred.New(bpred.DefaultConfig()).Annotate(tr)
	td, err := tdg.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	return td
}

// checkCoverage asserts the segments exactly partition [0, trace length).
func checkCoverage(t *testing.T, td *tdg.TDG, segs []Segment) {
	t.Helper()
	last := 0
	for _, s := range segs {
		if s.Start != last {
			t.Fatalf("segment gap/overlap: segment starts at %d, previous ended at %d", s.Start, last)
		}
		if s.End <= s.Start {
			t.Fatalf("empty or inverted segment %+v", s)
		}
		last = s.End
	}
	if last != td.Trace.Len() {
		t.Fatalf("segments cover [0,%d) of a %d-instruction trace", last, td.Trace.Len())
	}
}

// TestSegmentizeEmptyTrace: a trace with no dynamic instructions yields no
// segments (and no phantom GPP segment).
func TestSegmentizeEmptyTrace(t *testing.T) {
	td := buildTDG(t, "mm", 5000)
	empty := &trace.Trace{Prog: td.Trace.Prog, Insts: []trace.DynInst{}}
	tdEmpty := &tdg.TDG{Trace: empty, CFG: td.CFG, Nest: td.Nest, Prof: td.Prof}
	if segs := Segmentize(tdEmpty, Assignment{0: "SIMD"}); len(segs) != 0 {
		t.Errorf("empty trace produced %d segments: %+v", len(segs), segs)
	}
}

// TestSegmentizeOutermostWins: when both loops of a nest are assigned, every
// instruction of the nest belongs to the outermost assignment — the inner
// loop never surfaces as its own segment.
func TestSegmentizeOutermostWins(t *testing.T) {
	b := prog.NewBuilder("nest")
	i, j, s, ni, nj := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5)
	b.MovI(i, 0)
	b.Label("outer")
	b.MovI(j, 0)
	b.Label("inner")
	b.AddI(s, s, 1)
	b.AddI(j, j, 1)
	b.Blt(j, nj, "inner")
	b.AddI(i, i, 1)
	b.Blt(i, ni, "outer")
	td := synthTDG(t, b.MustBuild(), func(st *sim.State) {
		st.SetInt(ni, 10)
		st.SetInt(nj, 20)
	})

	if len(td.Nest.Loops) != 2 {
		t.Fatalf("expected a 2-deep nest, got %d loops", len(td.Nest.Loops))
	}
	outer, inner := -1, -1
	for l := range td.Nest.Loops {
		if td.Nest.Loops[l].Parent == -1 {
			outer = l
		} else {
			inner = l
		}
	}
	if outer == -1 || inner == -1 || td.Nest.Loops[inner].Parent != outer {
		t.Fatalf("nest not recognized: outer=%d inner=%d", outer, inner)
	}

	segs := Segmentize(td, Assignment{outer: "NS-DF", inner: "SIMD"})
	checkCoverage(t, td, segs)
	for _, seg := range segs {
		if seg.LoopID == inner {
			t.Errorf("inner loop %d surfaced as its own segment despite outer assignment: %+v", inner, seg)
		}
	}
	// The whole nest (everything after the single init instruction) must be
	// one outer-loop segment.
	if len(segs) != 2 || segs[0].LoopID != -1 || segs[1].LoopID != outer {
		t.Fatalf("want [GPP init, outer nest], got %+v", segs)
	}
}

// TestSegmentizeWholeTraceRegion: a program whose every instruction is
// statically inside one assigned loop yields exactly one region segment —
// no leading or trailing GPP sliver.
func TestSegmentizeWholeTraceRegion(t *testing.T) {
	b := prog.NewBuilder("wholeloop")
	i, s, n := isa.R(1), isa.R(2), isa.R(3)
	b.Label("loop")
	b.AddI(s, s, 1)
	b.AddI(i, i, 1)
	b.Blt(i, n, "loop")
	td := synthTDG(t, b.MustBuild(), func(st *sim.State) { st.SetInt(n, 50) })

	if len(td.Nest.Loops) != 1 {
		t.Fatalf("expected 1 loop, got %d", len(td.Nest.Loops))
	}
	segs := Segmentize(td, Assignment{0: "SIMD"})
	checkCoverage(t, td, segs)
	if len(segs) != 1 || segs[0].LoopID != 0 {
		t.Fatalf("want a single whole-trace region segment, got %+v", segs)
	}
	if segs[0].Start != 0 || segs[0].End != td.Trace.Len() {
		t.Fatalf("segment %+v does not span the whole %d-instruction trace", segs[0], td.Trace.Len())
	}
}

// TestSegmentizeBackToBackRegions: two assigned loops executing with no
// instructions between them produce adjacent region segments with no
// zero-length GPP segment at the joint.
func TestSegmentizeBackToBackRegions(t *testing.T) {
	b := prog.NewBuilder("backtoback")
	i, j, s, u, n1, n2 := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5), isa.R(6)
	b.Label("l1")
	b.AddI(s, s, 1)
	b.AddI(i, i, 1)
	b.Blt(i, n1, "l1")
	b.Label("l2")
	b.AddI(u, u, 2)
	b.AddI(j, j, 1)
	b.Blt(j, n2, "l2")
	td := synthTDG(t, b.MustBuild(), func(st *sim.State) {
		st.SetInt(n1, 30)
		st.SetInt(n2, 40)
	})

	if len(td.Nest.Loops) != 2 {
		t.Fatalf("expected 2 sibling loops, got %d", len(td.Nest.Loops))
	}
	first := td.Nest.InnermostOfInst(int(td.Trace.Insts[0].SI))
	second := 1 - first
	segs := Segmentize(td, Assignment{first: "NS-DF", second: "Trace-P"})
	checkCoverage(t, td, segs)
	if len(segs) != 2 {
		t.Fatalf("want exactly 2 back-to-back region segments, got %+v", segs)
	}
	if segs[0].LoopID != first || segs[1].LoopID != second {
		t.Errorf("segment order %+v does not follow execution order (L%d then L%d)", segs, first, second)
	}
	if segs[0].End != segs[1].Start {
		t.Errorf("regions not adjacent: %+v", segs)
	}
}
