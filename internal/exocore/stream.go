package exocore

import (
	"exocore/internal/cores"
	"exocore/internal/obs"
	"exocore/internal/trace"
)

// RunStream evaluates a chunked trace source on the general core — the
// streaming arm of Run for the baseline (empty assignment) design point.
// It consumes the source chunk by chunk, decoding and executing each
// dynamic instruction through the same GPP constructor and
// window-compaction protocol as evalUnit's general-core arm, so on the
// same instruction stream the result is byte-identical to
// Run(td, core, nil, nil, nil, opts) at every chunk size: chunk
// boundaries only change when CompactWindow runs, and compaction never
// changes node times (see cores.GPP.CompactWindow). Peak memory is
// O(chunk + window) — the whole point: a 200M-instruction trace
// evaluates without ever existing as an array.
//
// Only the baseline streams: BSA analyzers and transforms take random
// access to the materialized trace, so assigned design points go
// through Run. opts.Cache, RecordSegments, RecordRegions and NoDelta do
// not apply; Span and Reg are honored (the "dg.graph_high_water_bytes"
// and "trace.chunk_high_water_bytes" gauges, and the
// "eval.segment_len" histogram).
func RunStream(src trace.Source, core cores.Config, opts RunOpts) (*RunResult, error) {
	w := acquireWorker(core, maxGraphHint, nil)
	defer releaseWorker(core, w)

	window := opts.WindowNodes
	if window == 0 {
		window = DefaultWindowNodes
	}
	if window < 0 {
		window = 0
	}
	if opts.Reg != nil {
		defer func() {
			opts.Reg.Gauge("dg.graph_high_water_bytes").SetMax(w.g.HighWaterBytes())
			if acc, ok := src.(trace.ChunkAccounting); ok {
				opts.Reg.Gauge("trace.chunk_high_water_bytes").SetMax(acc.ChunkHighWaterBytes())
			}
		}()
	}

	w.reset(false)
	p := src.Prog()
	total := 0
	for {
		c, ok := src.Next()
		if !ok {
			break
		}
		insts := c.Insts
		base := c.Base
		for j := 0; j < len(insts); {
			lim := len(insts)
			if window > 0 {
				if l := j + compactStride; l < lim {
					lim = l
				}
			}
			for ; j < lim; j++ {
				d := &insts[j]
				w.gpp.Exec(cores.FromDyn(&p.Insts[d.SI], d), int32(base+j))
			}
			if window > 0 {
				w.gpp.CompactWindow(window)
			}
		}
		total += len(insts)
		c.Release()
	}
	if err := src.Err(); err != nil {
		return nil, err
	}

	res := &RunResult{Models: make([]ModelStat, 0, 1)}
	if total > 0 {
		end := w.gpp.EndTime()
		st := res.stat("")
		st.Dyn = int64(total)
		st.Cycles = end
		st.Counts = w.counts
		res.Counts = w.counts
		res.Cycles = end
		if opts.Reg != nil {
			opts.Reg.Histogram("eval.segment_len", obs.DefaultSizeBounds).Observe(int64(total))
		}
	}
	return res, nil
}
