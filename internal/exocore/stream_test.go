package exocore

import (
	"reflect"
	"testing"

	"exocore/internal/cores"
	"exocore/internal/trace"
	"exocore/internal/workloads"
)

// TestRunStreamMatchesRun is the end-to-end identity gate for streaming
// evaluation: RunStream over a chunked source must agree exactly —
// cycles, energy counts, model attribution — with the materialized
// baseline Run, for every (bench, core, chunk size, window) combination,
// including chunk sizes far from the compaction stride so CompactWindow
// fires at different global offsets than the materialized path.
func TestRunStreamMatchesRun(t *testing.T) {
	for _, bench := range []string{"cjpeg", "mm", "gzip"} {
		td := buildTDG(t, bench, 20_000)
		for _, core := range []cores.Config{cores.IO2, cores.OOO2, cores.OOO6} {
			whole, err := Run(td, core, nil, nil, nil, RunOpts{})
			if err != nil {
				t.Fatal(err)
			}
			for _, chunk := range []int{257, 4096, 65_536} {
				for _, window := range []int{0, 1 << 12} {
					got, err := RunStream(trace.NewSliceSource(td.Trace, chunk), core,
						RunOpts{WindowNodes: window})
					if err != nil {
						t.Fatal(err)
					}
					if got.Cycles != whole.Cycles {
						t.Errorf("%s/%s chunk %d window %d: cycles %d != %d",
							bench, core.Name, chunk, window, got.Cycles, whole.Cycles)
					}
					if got.Counts != whole.Counts {
						t.Errorf("%s/%s chunk %d window %d: energy counts diverge",
							bench, core.Name, chunk, window)
					}
					if !reflect.DeepEqual(got.Models, whole.Models) {
						t.Errorf("%s/%s chunk %d window %d: model attribution diverges",
							bench, core.Name, chunk, window)
					}
				}
			}
		}
	}
}

// TestRunStreamFromGenerator closes the loop trace-side: a
// generator-driven workload source (chunks synthesized on demand, never
// a whole trace) evaluated by RunStream — pipelined behind a producer
// goroutine — must match the fully materialized Run.
func TestRunStreamFromGenerator(t *testing.T) {
	const maxDyn = 20_000
	for _, bench := range []string{"cjpeg", "bfs"} {
		td := buildTDG(t, bench, maxDyn)
		w, err := workloads.ByName(bench)
		if err != nil {
			t.Fatal(err)
		}
		for _, core := range []cores.Config{cores.IO2, cores.OOO6} {
			whole, err := Run(td, core, nil, nil, nil, RunOpts{})
			if err != nil {
				t.Fatal(err)
			}
			src := trace.NewPipelined(
				w.Source(workloads.SourceConfig{MaxDyn: maxDyn, ChunkInsts: 1 << 12}), 2)
			got, err := RunStream(src, core, RunOpts{})
			if err != nil {
				t.Fatal(err)
			}
			if got.Cycles != whole.Cycles || got.Counts != whole.Counts ||
				!reflect.DeepEqual(got.Models, whole.Models) {
				t.Errorf("%s/%s: generator-driven stream diverges from materialized run",
					bench, core.Name)
			}
		}
	}
}
