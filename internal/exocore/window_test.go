package exocore

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"exocore/internal/cores"
)

// TestWindowedRunMatchesWholeTrace is the property-level gate for the
// O(window) streaming evaluation path: over a randomized corpus of
// (benchmark, core, assignment) triples, a Run that compacts the µDG
// down to a small bounded window between chunks must agree exactly —
// cycles, energy counts, model attribution, offload cycles — with a Run
// holding the whole trace's graph in memory. Window sizes are chosen
// well below the traces' node counts so CompactWindow actually fires
// many times per segment.
func TestWindowedRunMatchesWholeTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	bsas := allBSAs()
	names := make([]string, 0, len(bsas))
	for n := range bsas {
		names = append(names, n)
	}
	sort.Strings(names)

	for _, bench := range []string{"cjpeg", "mm", "vr"} {
		td := buildTDG(t, bench, 20000)
		plans := analyzeAll(td, bsas)

		var loops []int
		cands := make(map[int][]string)
		for l := range td.Nest.Loops {
			for _, n := range names {
				if plans[n].Region(l) != nil {
					cands[l] = append(cands[l], n)
				}
			}
			if len(cands[l]) > 0 {
				loops = append(loops, l)
			}
		}
		sort.Ints(loops)

		for _, core := range []cores.Config{cores.IO2, cores.OOO2, cores.OOO6} {
			for trial := 0; trial < 4; trial++ {
				assign := Assignment{}
				for _, l := range loops {
					if rng.Intn(2) == 0 {
						continue
					}
					cs := cands[l]
					assign[l] = cs[rng.Intn(len(cs))]
				}
				window := []int{1 << 10, 1 << 12, 1 << 14}[rng.Intn(3)]

				whole, err := Run(td, core, bsas, plans, assign,
					RunOpts{WindowNodes: -1})
				if err != nil {
					t.Fatal(err)
				}
				windowed, err := Run(td, core, bsas, plans, assign,
					RunOpts{WindowNodes: window})
				if err != nil {
					t.Fatal(err)
				}

				if windowed.Cycles != whole.Cycles {
					t.Errorf("%s/%s trial %d window %d %v: cycles %d != %d",
						bench, core.Name, trial, window, assign, windowed.Cycles, whole.Cycles)
				}
				if windowed.Counts != whole.Counts {
					t.Errorf("%s/%s trial %d window %d %v: energy counts diverge",
						bench, core.Name, trial, window, assign)
				}
				if windowed.OffloadCycles != whole.OffloadCycles {
					t.Errorf("%s/%s trial %d window %d %v: offload cycles %d != %d",
						bench, core.Name, trial, window, assign, windowed.OffloadCycles, whole.OffloadCycles)
				}
				if !reflect.DeepEqual(windowed.Models, whole.Models) {
					t.Errorf("%s/%s trial %d window %d %v: model attribution diverges",
						bench, core.Name, trial, window, assign)
				}
			}
		}
	}
}
