// The coordinator: plans a sweep into (benchmark, core) shards, drives
// them across the replica set, and reassembles the partial documents
// into the exact bytes a single daemon would have produced.
package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"exocore/internal/bsa"
	"exocore/internal/cli"
	"exocore/internal/dse"
	"exocore/internal/obs"
	"exocore/internal/report"
	"exocore/internal/serve"
	"exocore/internal/workloads"
)

// Config configures a Coordinator.
type Config struct {
	// Replicas is the replica daemon base-URL set (required; validate
	// flag input with ParseReplicas first).
	Replicas []string
	// Vnodes is the ring's virtual-node count per replica (0 = DefaultVnodes).
	Vnodes int
	// Client issues the replica HTTP requests (nil = http.DefaultClient).
	Client *http.Client
	// Tool is the merged document's tool name (empty = "exocored",
	// matching what replicas stamp on their shards).
	Tool string
	// RequestTimeout bounds one coordinated sweep (0 = 10min); requests
	// may lower it via deadline_ms, never raise it.
	RequestTimeout time.Duration
	// HedgeAfter duplicates a shard onto the next replica in ring order
	// when its first dispatch has not answered after this long, taking
	// whichever finishes first (0 disables hedging).
	HedgeAfter time.Duration
	// Attempts bounds dispatch attempts per shard across the replica
	// set before the sweep fails (0 = 3 × replicas).
	Attempts int
	// Reg receives the fabric.* instruments (nil = a private registry).
	Reg *obs.Registry
	// Log, if non-nil, receives shard-level dispatch records.
	Log *obs.Logger
}

// Coordinator shards sweeps over a replica set. Create with New; safe
// for concurrent use.
type Coordinator struct {
	ring       *Ring
	client     *http.Client
	tool       string
	reqTimeout time.Duration
	hedgeAfter time.Duration
	attempts   int
	reg        *obs.Registry
	log        *obs.Logger
	start      time.Time

	mSweeps, mShards, mSteals, mRetries, mHedges, mErrors *obs.Counter
	gReplicas                                             *obs.Gauge
}

// New creates a Coordinator over a replica set.
func New(cfg Config) (*Coordinator, error) {
	ring, err := NewRing(cfg.Replicas, cfg.Vnodes)
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	tool := cfg.Tool
	if tool == "" {
		tool = "exocored"
	}
	timeout := cfg.RequestTimeout
	if timeout <= 0 {
		timeout = 10 * time.Minute
	}
	attempts := cfg.Attempts
	if attempts <= 0 {
		attempts = 3 * len(cfg.Replicas)
	}
	reg := cfg.Reg
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := &Coordinator{
		ring:       ring,
		client:     client,
		tool:       tool,
		reqTimeout: timeout,
		hedgeAfter: cfg.HedgeAfter,
		attempts:   attempts,
		reg:        reg,
		log:        cfg.Log,
		start:      time.Now(),

		mSweeps:   reg.Counter("fabric.sweeps"),
		mShards:   reg.Counter("fabric.shards"),
		mSteals:   reg.Counter("fabric.steals"),
		mRetries:  reg.Counter("fabric.retries"),
		mHedges:   reg.Counter("fabric.hedges"),
		mErrors:   reg.Counter("fabric.errors"),
		gReplicas: reg.Gauge("fabric.replicas"),
	}
	c.gReplicas.Set(int64(len(ring.Replicas())))
	return c, nil
}

// Ring returns the coordinator's placement ring.
func (c *Coordinator) Ring() *Ring { return c.ring }

// shard is one dispatch unit: every design of one core, on one
// benchmark. The key is the ring placement key — the same (bench, core)
// always hashes to the same replica, so that replica's trace/TDG/context
// memos and persistent store stay specialized to it.
type shard struct {
	idx   int
	bench string
	core  string
	key   string
	body  []byte // marshaled partial SweepRequest, shared by every attempt
}

// plan is a validated, sharded sweep.
type plan struct {
	shards []*shard
	shell  *dse.Exploration
}

// planSweep validates the request exactly as a single daemon would and
// splits it into (bench, core) shards. Errors are client errors (400s).
func (c *Coordinator) planSweep(req serve.SweepRequest) (*plan, error) {
	if req.Async {
		return nil, fmt.Errorf("fabric: async sweeps are not supported in coordinator mode (poll the replicas' /resultz directly)")
	}
	if req.Partial {
		return nil, fmt.Errorf("fabric: partial sweeps are shard payloads; request them from a replica, not the coordinator")
	}
	switch req.Sched {
	case "", "oracle", "amdahl":
	default:
		return nil, fmt.Errorf("unknown scheduler %q (have oracle, amdahl)", req.Sched)
	}
	spec := req.Bench
	if spec == "" {
		spec = "all"
	}
	wls, err := cli.ResolveBenchSpec(spec)
	if err != nil {
		return nil, err
	}
	// The default registry is the fabric's design vocabulary; replicas
	// running a restricted -bsas set reject codes they cannot evaluate
	// and the shard error propagates.
	reg := bsa.Default()
	codes, err := dse.GridCodes(reg, req.Designs, nil)
	if err != nil {
		return nil, err
	}
	shell, err := dse.NewShell(reg, req.Designs, nil)
	if err != nil {
		return nil, err
	}
	// Group the grid's codes by core, preserving grid order within each
	// group, then cut one shard per (bench, core group).
	var coreOrder []string
	byCore := make(map[string][]string)
	for _, code := range codes {
		core, _, err := dse.ParseDesignCodeIn(reg, code)
		if err != nil {
			return nil, err
		}
		if _, ok := byCore[core.Name]; !ok {
			coreOrder = append(coreOrder, core.Name)
		}
		byCore[core.Name] = append(byCore[core.Name], code)
	}
	p := &plan{shell: shell}
	for _, wl := range wls {
		for _, core := range coreOrder {
			body, err := json.Marshal(serve.SweepRequest{
				Bench:      wl.Name,
				Sched:      req.Sched,
				Designs:    byCore[core],
				MaxDyn:     req.MaxDyn,
				DeadlineMS: req.DeadlineMS,
				Partial:    true,
			})
			if err != nil {
				return nil, err
			}
			p.shards = append(p.shards, &shard{
				idx:   len(p.shards),
				bench: wl.Name,
				core:  core,
				key:   wl.Name + "|" + core,
				body:  body,
			})
		}
	}
	return p, nil
}

// Sweep coordinates one sweep: plan, dispatch every shard across the
// replicas, reassemble. The result is byte-identical to POSTing the
// same request at a single daemon (scripts/fabricsmoke gates this).
func (c *Coordinator) Sweep(ctx context.Context, req serve.SweepRequest) ([]byte, error) {
	p, err := c.planSweep(req)
	if err != nil {
		return nil, err
	}
	return c.run(ctx, p)
}

// run dispatches a plan's shards and merges the partial documents.
func (c *Coordinator) run(ctx context.Context, p *plan) ([]byte, error) {
	c.mSweeps.Add(1)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	d := newDispatcher(c.ring, p.shards)
	parts := make([][]byte, len(p.shards))
	var (
		mu       sync.Mutex // guards shell feeding and firstErr
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel() // one lost shard fails the sweep; stop the rest early
		}
		mu.Unlock()
	}
	// One worker per replica: each drains its own queue first, then
	// steals pending shards from stragglers, so a slow or dead replica
	// never strands work that a healthy one could run.
	for _, rep := range c.ring.Replicas() {
		wg.Add(1)
		go func(rep string) {
			defer wg.Done()
			for {
				sh, stolen := d.take(rep)
				if sh == nil || ctx.Err() != nil {
					return
				}
				if stolen {
					c.mSteals.Add(1)
				}
				c.mShards.Add(1)
				body, err := c.runShardHedged(ctx, sh, rep)
				if err != nil {
					c.mErrors.Add(1)
					fail(fmt.Errorf("fabric: shard %s: %w", sh.key, err))
					return
				}
				mu.Lock()
				err = absorb(p.shell, body)
				mu.Unlock()
				if err != nil {
					fail(fmt.Errorf("fabric: shard %s: %w", sh.key, err))
					return
				}
				parts[sh.idx] = body
			}
		}(rep)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Reassembly: normalization runs over the complete grid through the
	// same code path a single daemon uses, so the aggregate floats agree
	// bit for bit; the merge is a strict ordered union of the shards'
	// per-bench rows and the recomputed aggregates.
	p.shell.Normalize()
	agg := report.New(c.tool)
	p.shell.AppendAggregates(agg)
	var buf bytes.Buffer
	if err := agg.Write(&buf); err != nil {
		return nil, err
	}
	return report.Merge(append(parts, buf.Bytes())...)
}

// absorb feeds one shard's per-bench rows into the shell.
func absorb(shell *dse.Exploration, body []byte) error {
	doc, err := report.Decode(bytes.NewReader(body))
	if err != nil {
		return err
	}
	for _, r := range doc.Results {
		if r.Bench == "" {
			return fmt.Errorf("shard returned an aggregate row for design %q; want per-bench rows only", r.Design)
		}
		err := shell.AddBench(r.Design, dse.BenchResult{
			Bench: r.Bench, Category: workloads.Category(r.Category),
			Cycles: r.Cycles, EnergyNJ: r.EnergyNJ,
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// dispatcher is the work-stealing shard pool: one FIFO queue per owner
// replica, planned by ring placement.
type dispatcher struct {
	mu     sync.Mutex
	queues map[string][]*shard
	order  []string
}

func newDispatcher(ring *Ring, shards []*shard) *dispatcher {
	d := &dispatcher{queues: make(map[string][]*shard), order: ring.Replicas()}
	for _, sh := range shards {
		owner := ring.Owner(sh.key)
		d.queues[owner] = append(d.queues[owner], sh)
	}
	return d
}

// take pops the next shard for a replica: its own queue first (FIFO),
// else a steal from the back of the longest other queue — the work its
// owner is least likely to reach soon. Returns nil when no work is
// pending anywhere.
func (d *dispatcher) take(rep string) (sh *shard, stolen bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if q := d.queues[rep]; len(q) > 0 {
		sh, d.queues[rep] = q[0], q[1:]
		return sh, false
	}
	victim := ""
	for _, other := range d.order {
		if other != rep && len(d.queues[other]) > len(d.queues[victim]) {
			victim = other
		}
	}
	if victim == "" {
		return nil, false
	}
	q := d.queues[victim]
	sh, d.queues[victim] = q[len(q)-1], q[:len(q)-1]
	return sh, true
}

// runShardHedged runs one shard, duplicating it onto the next replica
// in ring order if the first dispatch is still unanswered after the
// hedge delay; the first success wins and cancels the loser.
func (c *Coordinator) runShardHedged(ctx context.Context, sh *shard, first string) ([]byte, error) {
	if c.hedgeAfter <= 0 {
		return c.runShard(ctx, sh, first, 0)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		body []byte
		err  error
	}
	ch := make(chan result, 2)
	launch := func(offset int) {
		go func() {
			body, err := c.runShard(hctx, sh, first, offset)
			ch <- result{body, err}
		}()
	}
	launch(0)
	inflight, hedged := 1, false
	timer := time.NewTimer(c.hedgeAfter)
	defer timer.Stop()
	var lastErr error
	for {
		select {
		case r := <-ch:
			inflight--
			if r.err == nil {
				return r.body, nil
			}
			lastErr = r.err
			if inflight == 0 {
				return nil, lastErr
			}
		case <-timer.C:
			if !hedged {
				hedged = true
				c.mHedges.Add(1)
				c.log.Info("hedging shard", "shard", sh.key, "after", c.hedgeAfter)
				inflight++
				launch(1) // start one replica further along the failover order
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// runShard posts a shard to replicas in failover order — the ring order
// from its key, rotated so the executing worker's replica goes first —
// retrying transport errors, 5xx and 429 (honoring Retry-After) until
// the attempt budget runs out. 4xx responses are permanent: the request
// itself is wrong and no replica will answer differently.
func (c *Coordinator) runShard(ctx context.Context, sh *shard, first string, offset int) ([]byte, error) {
	seq := rotateTo(c.ring.Ordered(sh.key), first)
	var lastErr error
	for attempt := 0; attempt < c.attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last attempt: %v)", err, lastErr)
			}
			return nil, err
		}
		rep := seq[(offset+attempt)%len(seq)]
		body, status, retryAfter, err := c.post(ctx, rep, "/v1/sweep", sh.body)
		switch {
		case err == nil && status == http.StatusOK:
			return body, nil
		case err == nil && status == http.StatusTooManyRequests:
			lastErr = fmt.Errorf("%s: busy (429)", rep)
			sleepCtx(ctx, retryAfter)
		case err == nil && status >= 400 && status < 500:
			return nil, fmt.Errorf("%s: %s", rep, errorBody(status, body))
		case err == nil:
			lastErr = fmt.Errorf("%s: %s", rep, errorBody(status, body))
		default:
			lastErr = fmt.Errorf("%s: %w", rep, err)
		}
		c.mRetries.Add(1)
		c.log.Info("shard retry", "shard", sh.key, "replica", rep, "err", lastErr)
	}
	return nil, fmt.Errorf("gave up after %d attempts: %w", c.attempts, lastErr)
}

// post issues one replica request; the Retry-After hint (capped at 2s
// so a busy replica cannot stall the whole sweep) rides back with 429s.
func (c *Coordinator) post(ctx context.Context, rep, path string, body []byte) ([]byte, int, time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep+path, bytes.NewReader(body))
	if err != nil {
		return nil, 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, 0, 0, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, 0, err
	}
	retryAfter := 100 * time.Millisecond
	if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
		retryAfter = min(time.Duration(s)*time.Second, 2*time.Second)
	}
	return out, resp.StatusCode, retryAfter, nil
}

// errorBody extracts a replica's {"error": ...} payload for messages.
func errorBody(status int, body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Sprintf("%d: %s", status, e.Error)
	}
	return fmt.Sprintf("unexpected status %d", status)
}

// rotateTo rotates seq so that first leads, preserving cyclic order.
func rotateTo(seq []string, first string) []string {
	for i, s := range seq {
		if s == first {
			return append(append([]string(nil), seq[i:]...), seq[:i]...)
		}
	}
	return seq
}

func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

var errNoReplica = errors.New("fabric: no live replica")
