package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"exocore/internal/cli"
	"exocore/internal/obs"
	"exocore/internal/runner"
	"exocore/internal/serve"
)

// testMaxDyn keeps evaluations fast; all caches still exercise for real.
const testMaxDyn = 10_000

// newReplica spins up a real evaluation daemon (engine + serve layer)
// on an httptest listener, optionally wrapped in middleware.
func newReplica(t *testing.T, wrap func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	eng := runner.New(runner.Options{MaxDyn: testMaxDyn})
	s, err := serve.New(serve.Config{Engine: eng, Role: "replica"})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	if wrap != nil {
		h = wrap(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts
}

// singleDaemonBytes renders the same sweep through one fresh daemon —
// the byte-identity reference for every coordinator test.
func singleDaemonBytes(t *testing.T, bench string, designs []string, sched string) []byte {
	t.Helper()
	eng := runner.New(runner.Options{MaxDyn: testMaxDyn})
	wls, err := cli.ResolveBenchSpec(bench)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := serve.SweepDocument(context.Background(), eng, "exocored", wls, designs, sched, false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

var testSweep = serve.SweepRequest{
	Bench:   "mm,fft",
	Designs: []string{"IO2", "OOO2-S", "OOO2-SD", "OOO4-N"},
	Sched:   "oracle",
}

// TestSweepMatchesSingleDaemon is the fabric's core contract: a sweep
// sharded over two replicas merges into exactly the bytes one daemon
// would have produced.
func TestSweepMatchesSingleDaemon(t *testing.T) {
	r1, r2 := newReplica(t, nil), newReplica(t, nil)
	reg := obs.NewRegistry()
	c, err := New(Config{Replicas: []string{r1.URL, r2.URL}, Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Sweep(context.Background(), testSweep)
	if err != nil {
		t.Fatal(err)
	}
	want := singleDaemonBytes(t, testSweep.Bench, testSweep.Designs, testSweep.Sched)
	if !bytes.Equal(got, want) {
		t.Errorf("coordinated sweep diverges from single daemon\nwant:\n%s\ngot:\n%s", want, got)
	}
	// 2 benches × 3 distinct cores = 6 shards, none lost.
	if n := reg.Counter("fabric.shards").Value(); n != 6 {
		t.Errorf("fabric.shards = %d, want 6", n)
	}
	if n := reg.Counter("fabric.errors").Value(); n != 0 {
		t.Errorf("fabric.errors = %d, want 0", n)
	}
}

// TestSweepSurvivesReplicaKilledMidSweep: one replica serves exactly
// one shard and then drops every connection — the coordinator must
// retry its lost work onto the survivor and still produce identical
// bytes.
func TestSweepSurvivesReplicaKilledMidSweep(t *testing.T) {
	var served atomic.Int32
	dying := newReplica(t, func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/sweep" && served.Add(1) > 1 {
				panic(http.ErrAbortHandler) // connection torn down, like a killed process
			}
			h.ServeHTTP(w, r)
		})
	})
	healthy := newReplica(t, nil)
	reg := obs.NewRegistry()
	c, err := New(Config{Replicas: []string{dying.URL, healthy.URL}, Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Sweep(context.Background(), testSweep)
	if err != nil {
		t.Fatal(err)
	}
	want := singleDaemonBytes(t, testSweep.Bench, testSweep.Designs, testSweep.Sched)
	if !bytes.Equal(got, want) {
		t.Error("sweep after mid-sweep replica loss diverges from single daemon")
	}
	if served.Load() < 2 {
		t.Fatalf("replica died before the sweep touched it (%d requests)", served.Load())
	}
	if n := reg.Counter("fabric.retries").Value(); n == 0 {
		t.Error("fabric.retries = 0; the dead replica's shards were never retried")
	}
}

// TestSweepRetriesBusyReplica: a 429 with Retry-After is not a failure;
// the shard is retried and the sweep completes identically.
func TestSweepRetriesBusyReplica(t *testing.T) {
	var rejected atomic.Int32
	busy := newReplica(t, func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/sweep" && rejected.Add(1) == 1 {
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(http.StatusTooManyRequests)
				json.NewEncoder(w).Encode(map[string]string{"error": "admission queue full"})
				return
			}
			h.ServeHTTP(w, r)
		})
	})
	other := newReplica(t, nil)
	reg := obs.NewRegistry()
	c, err := New(Config{Replicas: []string{busy.URL, other.URL}, Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Sweep(context.Background(), testSweep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, singleDaemonBytes(t, testSweep.Bench, testSweep.Designs, testSweep.Sched)) {
		t.Error("sweep through a briefly-busy replica diverges from single daemon")
	}
	if reg.Counter("fabric.retries").Value() == 0 {
		t.Error("fabric.retries = 0 after a 429")
	}
}

// TestSweepHedgesStragglers: a replica that stalls gets its shards
// speculatively duplicated onto the next replica; the sweep finishes
// fast and correct.
func TestSweepHedgesStragglers(t *testing.T) {
	slow := newReplica(t, func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/sweep" {
				time.Sleep(400 * time.Millisecond)
			}
			h.ServeHTTP(w, r)
		})
	})
	fast := newReplica(t, nil)
	reg := obs.NewRegistry()
	c, err := New(Config{
		Replicas:   []string{slow.URL, fast.URL},
		HedgeAfter: 30 * time.Millisecond,
		Reg:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Sweep(context.Background(), testSweep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, singleDaemonBytes(t, testSweep.Bench, testSweep.Designs, testSweep.Sched)) {
		t.Error("hedged sweep diverges from single daemon")
	}
	if reg.Counter("fabric.hedges").Value() == 0 {
		t.Error("fabric.hedges = 0; the straggler was never hedged")
	}
}

// TestPlanRejections: requests a single daemon would 400 are rejected
// before any shard is dispatched, plus the coordinator-only rules.
func TestPlanRejections(t *testing.T) {
	c, err := New(Config{Replicas: []string{"http://unused:1"}})
	if err != nil {
		t.Fatal(err)
	}
	for name, req := range map[string]serve.SweepRequest{
		"async":      {Async: true},
		"partial":    {Partial: true},
		"bad sched":  {Sched: "rand"},
		"bad design": {Designs: []string{"OOO2-Z$"}},
		"bad bench":  {Bench: "nonesuch"},
		"bad core":   {Designs: []string{"XYZ-S"}},
	} {
		if _, err := c.planSweep(req); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := c.planSweep(serve.SweepRequest{Bench: "mm"}); err != nil {
		t.Errorf("plain full-grid sweep rejected: %v", err)
	}
}

// TestHandlerEndpoints drives the coordinator over HTTP: sweep parity,
// the evaluate proxy, topology-aware healthz/capabilities, metricsz.
func TestHandlerEndpoints(t *testing.T) {
	r1, r2 := newReplica(t, nil), newReplica(t, nil)
	reg := obs.NewRegistry()
	c, err := New(Config{Replicas: []string{r1.URL, r2.URL}, Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	cs := httptest.NewServer(c.Handler())
	defer cs.Close()

	post := func(path, body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(cs.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, b
	}
	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(cs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d, body %s", path, resp.StatusCode, b)
		}
		return b
	}

	// Sweep over HTTP matches the single daemon.
	resp, body := post("/v1/sweep", `{"bench":"mm","designs":["IO2","OOO2-S"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, body)
	}
	if want := singleDaemonBytes(t, "mm", []string{"IO2", "OOO2-S"}, ""); !bytes.Equal(body, want) {
		t.Error("HTTP sweep diverges from single daemon")
	}

	// Async is a coordinator-side 400, not a replica error.
	if resp, body = post("/v1/sweep", `{"bench":"mm","async":true}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("async sweep: status %d, body %s", resp.StatusCode, body)
	}

	// The evaluate proxy answers with the owning replica's exact bytes.
	evalBody := `{"bench":"mm","core":"OOO2","bsas":"SIMD","sched":"oracle"}`
	resp, body = post("/v1/evaluate", evalBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate status %d: %s", resp.StatusCode, body)
	}
	owner := c.Ring().Owner("mm|OOO2")
	direct, err := http.Post(owner+"/v1/evaluate", "application/json", strings.NewReader(evalBody))
	if err != nil {
		t.Fatal(err)
	}
	want, err := io.ReadAll(direct.Body)
	direct.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Error("proxied evaluation diverges from the owner replica")
	}
	// Replica 400s pass through (the owner's answer is the answer).
	if resp, _ = post("/v1/evaluate", `{"bench":"nonesuch"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad evaluate: status %d, want 400", resp.StatusCode)
	}

	// healthz: coordinator role, both replicas alive.
	var hz struct {
		Status   string          `json:"status"`
		Role     string          `json:"role"`
		Replicas []replicaHealth `json:"replicas"`
	}
	if err := json.Unmarshal(get("/healthz"), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Role != "coordinator" || len(hz.Replicas) != 2 {
		t.Errorf("healthz = %+v", hz)
	}
	for _, rh := range hz.Replicas {
		if !rh.Alive {
			t.Errorf("replica %s reported dead", rh.URL)
		}
	}

	// capabilities: replica capabilities plus the fabric topology.
	var caps map[string]any
	if err := json.Unmarshal(get("/v1/capabilities"), &caps); err != nil {
		t.Fatal(err)
	}
	fab, _ := caps["fabric"].(map[string]any)
	if fab == nil || fab["role"] != "coordinator" {
		t.Errorf("capabilities fabric section = %v", caps["fabric"])
	}
	if _, ok := caps["maxdyn"]; !ok {
		t.Error("capabilities lost the replica's maxdyn")
	}

	// metricsz carries the fabric instruments.
	if m := string(get("/metricsz")); !strings.Contains(m, "fabric.shards") {
		t.Errorf("metricsz lacks fabric.shards:\n%s", m)
	}

	// Kill a replica: healthz degrades but reports the survivor alive.
	r2.Close()
	if err := json.Unmarshal(get("/healthz"), &hz); err != nil {
		t.Fatal(err)
	}
	alive := 0
	for _, rh := range hz.Replicas {
		if rh.Alive {
			alive++
		}
	}
	if hz.Status != "degraded" || alive != 1 {
		t.Errorf("healthz after replica loss = %+v", hz)
	}
}
