// The coordinator's HTTP surface: the same /v1/sweep contract as a
// single daemon (minus async), /v1/evaluate proxied to the owning
// replica, and topology-aware /healthz, /v1/capabilities and /metricsz.
package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"exocore/internal/obs"
	"exocore/internal/serve"
)

// probeTimeout bounds one replica liveness probe.
const probeTimeout = 2 * time.Second

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweep", c.handleSweep)
	mux.HandleFunc("POST /v1/evaluate", c.handleEvaluate)
	mux.HandleFunc("GET /v1/capabilities", c.handleCapabilities)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /metricsz", c.handleMetricsz)
	return mux
}

func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req serve.SweepRequest
	if err := decodeJSON(r, &req); err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	p, err := c.planSweep(req)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	timeout := c.reqTimeout
	if d := time.Duration(req.DeadlineMS) * time.Millisecond; req.DeadlineMS > 0 && d < timeout {
		timeout = d
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	body, err := c.run(ctx, p)
	switch {
	case err == nil:
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	case errors.Is(err, context.DeadlineExceeded):
		jsonError(w, http.StatusGatewayTimeout, "sweep deadline exceeded")
	default:
		// A shard the whole replica set could not serve: the fabric is the
		// failing gateway, not the request.
		jsonError(w, http.StatusBadGateway, err.Error())
	}
}

// handleEvaluate proxies a point evaluation to the replica owning its
// (bench, core) cell, failing over in ring order, so interactive
// queries land on the replica whose caches (and store) are already
// specialized to that cell by the sweep sharding.
func (c *Coordinator) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req serve.EvalRequest
	if err := decodeJSON(r, &req); err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	core := req.Core
	if core == "" {
		core = "OOO2"
	}
	body, err := json.Marshal(req)
	if err != nil {
		jsonError(w, http.StatusInternalServerError, err.Error())
		return
	}
	var lastErr error = errNoReplica
	for _, rep := range c.ring.Ordered(req.Bench + "|" + core) {
		out, status, _, err := c.post(r.Context(), rep, "/v1/evaluate", body)
		if err != nil {
			c.mRetries.Add(1)
			lastErr = fmt.Errorf("%s: %w", rep, err)
			continue
		}
		if status >= 500 {
			c.mRetries.Add(1)
			lastErr = fmt.Errorf("%s: %s", rep, errorBody(status, out))
			continue
		}
		// 2xx and 4xx pass through: the owner's answer is the answer.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write(out)
		return
	}
	jsonError(w, http.StatusBadGateway, lastErr.Error())
}

// replicaHealth is one replica's probed liveness.
type replicaHealth struct {
	URL    string `json:"url"`
	Alive  bool   `json:"alive"`
	Status string `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
}

// probeReplicas checks every replica's /healthz concurrently.
func (c *Coordinator) probeReplicas(ctx context.Context) []replicaHealth {
	reps := c.ring.Replicas()
	out := make([]replicaHealth, len(reps))
	var wg sync.WaitGroup
	for i, rep := range reps {
		wg.Add(1)
		go func(i int, rep string) {
			defer wg.Done()
			out[i] = c.probeOne(ctx, rep)
		}(i, rep)
	}
	wg.Wait()
	sort.Slice(out, func(a, b int) bool { return out[a].URL < out[b].URL })
	return out
}

func (c *Coordinator) probeOne(ctx context.Context, rep string) replicaHealth {
	h := replicaHealth{URL: rep}
	ctx, cancel := context.WithTimeout(ctx, probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep+"/healthz", nil)
	if err != nil {
		h.Error = err.Error()
		return h
	}
	resp, err := c.client.Do(req)
	if err != nil {
		h.Error = err.Error()
		return h
	}
	defer resp.Body.Close()
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || resp.StatusCode != http.StatusOK {
		h.Error = fmt.Sprintf("unexpected /healthz response (status %d)", resp.StatusCode)
		return h
	}
	h.Alive = true
	h.Status = body.Status
	return h
}

// handleHealthz reports the coordinator's own liveness plus a probe of
// the whole replica set: "ok" with every replica answering, "degraded"
// while the fabric can still make progress on the survivors, "down"
// when no replica answers.
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	replicas := c.probeReplicas(r.Context())
	alive := 0
	for _, rh := range replicas {
		if rh.Alive {
			alive++
		}
	}
	status := "ok"
	switch {
	case alive == 0:
		status = "down"
	case alive < len(replicas):
		status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":    status,
		"role":      "coordinator",
		"uptime_ms": time.Since(c.start).Milliseconds(),
		"replicas":  replicas,
	})
}

// handleCapabilities serves the evaluable space — fetched from the
// first live replica, since the coordinator evaluates nothing itself —
// with the fabric topology (role, replica set, per-replica liveness)
// grafted on.
func (c *Coordinator) handleCapabilities(w http.ResponseWriter, r *http.Request) {
	replicas := c.probeReplicas(r.Context())
	var caps map[string]any
	var lastErr error = errNoReplica
	for _, rh := range replicas {
		if !rh.Alive {
			continue
		}
		caps, lastErr = c.fetchCapabilities(r.Context(), rh.URL)
		if lastErr == nil {
			break
		}
	}
	if caps == nil {
		jsonError(w, http.StatusBadGateway, lastErr.Error())
		return
	}
	caps["fabric"] = map[string]any{
		"role":     "coordinator",
		"replicas": replicas,
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(caps)
}

func (c *Coordinator) fetchCapabilities(ctx context.Context, rep string) (map[string]any, error) {
	ctx, cancel := context.WithTimeout(ctx, probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep+"/v1/capabilities", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", rep, errorBody(resp.StatusCode, body))
	}
	var caps map[string]any
	if err := json.Unmarshal(body, &caps); err != nil {
		return nil, fmt.Errorf("%s: %w", rep, err)
	}
	return caps, nil
}

func (c *Coordinator) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	points := c.reg.Snapshot()
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", obs.PromContentType)
		obs.WriteProm(w, points)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{"points": points})
}

// decodeJSON mirrors the replica daemons' strict request decoding.
func decodeJSON(r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	if dec.More() {
		return errors.New("bad request body: trailing data")
	}
	return nil
}

func jsonError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
