// Package fabric is the sharded sweep fabric: a coordinator-mode
// exocored that splits a DSE sweep across a set of replica daemons and
// reassembles their partial results into a document byte-identical to
// a single daemon's answer.
//
// Placement is a consistent-hash ring over the replica base URLs. The
// sharding unit is the (benchmark, core) cell — the granularity of the
// engine's expensive pipeline artifacts (trace, TDG, scheduling
// context) — so every design sharing a cell lands on the same replica
// and its stage memos specialize. Consistent hashing keeps that
// affinity stable across fabric reconfigurations: adding or removing
// one replica moves only the cells it gains or loses, so the other
// replicas' warm caches (and their persistent stores) stay hot.
package fabric

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
)

// DefaultVnodes is the virtual-node count per replica: enough points
// that load spreads near-uniformly over a handful of replicas without
// making ring construction or lookup measurable.
const DefaultVnodes = 64

// Ring is an immutable consistent-hash ring over replica base URLs.
// Safe for concurrent use.
type Ring struct {
	replicas []string
	points   []ringPoint
}

type ringPoint struct {
	hash    uint64
	replica int // index into replicas
}

// NewRing builds a ring with vnodes virtual points per replica
// (0 = DefaultVnodes). Replicas must be non-empty and unique.
func NewRing(replicas []string, vnodes int) (*Ring, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("fabric: ring needs at least one replica")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[string]bool, len(replicas))
	r := &Ring{
		replicas: append([]string(nil), replicas...),
		points:   make([]ringPoint, 0, len(replicas)*vnodes),
	}
	for i, rep := range r.replicas {
		if rep == "" {
			return nil, fmt.Errorf("fabric: empty replica address")
		}
		if seen[rep] {
			return nil, fmt.Errorf("fabric: duplicate replica %q", rep)
		}
		seen[rep] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash64(rep + "#" + strconv.Itoa(v)), i})
		}
	}
	// Ties between points are broken by replica URL so the ring is a pure
	// function of the replica set, independent of its input order.
	sort.Slice(r.points, func(a, b int) bool {
		pa, pb := r.points[a], r.points[b]
		if pa.hash != pb.hash {
			return pa.hash < pb.hash
		}
		return r.replicas[pa.replica] < r.replicas[pb.replica]
	})
	return r, nil
}

// hash64 is FNV-64a: fast, dependency-free, and stable across processes
// and platforms — owners computed by different coordinator builds agree.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Replicas returns the replica set (not a copy; do not mutate).
func (r *Ring) Replicas() []string { return r.replicas }

// Owner returns the replica owning a key: the first ring point at or
// after the key's hash, wrapping.
func (r *Ring) Owner(key string) string {
	return r.replicas[r.points[r.search(key)].replica]
}

// Ordered returns every replica in ring order starting at the key's
// owner — the failover sequence when the owner is unreachable. Each
// replica appears once.
func (r *Ring) Ordered(key string) []string {
	out := make([]string, 0, len(r.replicas))
	seen := make(map[int]bool, len(r.replicas))
	for i, start := 0, r.search(key); len(out) < len(r.replicas); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, r.replicas[p.replica])
		}
	}
	return out
}

func (r *Ring) search(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// ParseReplicas validates a comma-separated replica list (the -replicas
// flag): entries must be non-empty http:// or https:// base URLs with
// no duplicates. Whitespace around entries is tolerated; a trailing
// slash is stripped so "http://h:1/" and "http://h:1" are the same
// replica.
func ParseReplicas(spec string) ([]string, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("fabric: empty replica list")
	}
	var out []string
	seen := make(map[string]bool)
	for _, raw := range strings.Split(spec, ",") {
		rep := strings.TrimRight(strings.TrimSpace(raw), "/")
		if rep == "" {
			return nil, fmt.Errorf("fabric: empty replica entry in %q", spec)
		}
		if !strings.HasPrefix(rep, "http://") && !strings.HasPrefix(rep, "https://") {
			return nil, fmt.Errorf("fabric: replica %q is not an http:// or https:// base URL", rep)
		}
		if seen[rep] {
			return nil, fmt.Errorf("fabric: duplicate replica %q", rep)
		}
		seen[rep] = true
		out = append(out, rep)
	}
	return out, nil
}
