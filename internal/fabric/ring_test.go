package fabric

import (
	"fmt"
	"strings"
	"testing"
)

func ringKeys() []string {
	benches := []string{"mm", "fft", "gzip", "mcf", "cjpeg", "djpeg", "gsm", "susan"}
	cs := []string{"IO2", "OOO2", "OOO4", "OOO6"}
	var keys []string
	for _, b := range benches {
		for _, c := range cs {
			keys = append(keys, b+"|"+c)
		}
	}
	// Pad with synthetic keys so the reshuffle statistics are meaningful.
	for i := 0; i < 500; i++ {
		keys = append(keys, fmt.Sprintf("bench%d|core%d", i, i%7))
	}
	return keys
}

func replicaSet(n int) []string {
	reps := make([]string, n)
	for i := range reps {
		reps[i] = fmt.Sprintf("http://replica-%d:808%d", i, i)
	}
	return reps
}

// TestRingDeterministic: placement is a pure function of the replica
// SET — input order, separate constructions, and repeated lookups all
// agree. The coordinator relies on this to route a cell to the same
// warm replica across sweeps and restarts.
func TestRingDeterministic(t *testing.T) {
	reps := replicaSet(4)
	r1, err := NewRing(reps, 0)
	if err != nil {
		t.Fatal(err)
	}
	reversed := []string{reps[3], reps[1], reps[0], reps[2]}
	r2, err := NewRing(reversed, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ringKeys() {
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("owner of %q depends on replica input order: %q vs %q", k, r1.Owner(k), r2.Owner(k))
		}
		if r1.Owner(k) != r1.Owner(k) {
			t.Fatalf("owner of %q is not stable across lookups", k)
		}
	}
}

// TestRingMinimalReshuffle is the consistent-hashing contract: growing
// the set by one replica only moves keys ONTO the newcomer, and
// shrinking by one only moves the departed replica's keys. Everything
// else stays put, which is what keeps surviving replicas' caches warm
// through fabric reconfiguration.
func TestRingMinimalReshuffle(t *testing.T) {
	reps := replicaSet(4)
	newcomer := "http://replica-new:9090"
	small, err := NewRing(reps, 0)
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewRing(append(append([]string(nil), reps...), newcomer), 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := ringKeys()
	moved := 0
	for _, k := range keys {
		before, after := small.Owner(k), big.Owner(k)
		if before != after {
			moved++
			if after != newcomer {
				t.Fatalf("adding %q moved key %q from %q to %q (not the newcomer)", newcomer, k, before, after)
			}
		}
	}
	if moved == 0 {
		t.Error("adding a replica moved no keys at all")
	}
	if moved == len(keys) {
		t.Error("adding a replica moved every key")
	}

	// Removal: keys not owned by the departed replica keep their owner.
	departed := reps[2]
	var survivors []string
	for _, r := range reps {
		if r != departed {
			survivors = append(survivors, r)
		}
	}
	shrunk, err := NewRing(survivors, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if before := small.Owner(k); before != departed && shrunk.Owner(k) != before {
			t.Fatalf("removing %q moved key %q from %q to %q", departed, k, before, shrunk.Owner(k))
		}
	}
}

// TestRingOrdered: the failover order starts at the owner and visits
// every replica exactly once.
func TestRingOrdered(t *testing.T) {
	r, err := NewRing(replicaSet(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ringKeys()[:32] {
		seq := r.Ordered(k)
		if len(seq) != 4 {
			t.Fatalf("Ordered(%q) has %d entries, want 4", k, len(seq))
		}
		if seq[0] != r.Owner(k) {
			t.Fatalf("Ordered(%q) starts at %q, owner is %q", k, seq[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, rep := range seq {
			if seen[rep] {
				t.Fatalf("Ordered(%q) repeats %q", k, rep)
			}
			seen[rep] = true
		}
	}
}

func TestRingRejectsBadSets(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty replica set accepted")
	}
	if _, err := NewRing([]string{"http://a", "http://a"}, 0); err == nil {
		t.Error("duplicate replica accepted")
	}
	if _, err := NewRing([]string{""}, 0); err == nil {
		t.Error("empty replica address accepted")
	}
}

func TestParseReplicas(t *testing.T) {
	got, err := ParseReplicas(" http://a:1/ ,https://b:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "http://a:1" || got[1] != "https://b:2" {
		t.Fatalf("ParseReplicas = %v", got)
	}
	for name, spec := range map[string]string{
		"empty list":       "",
		"blank entry":      "http://a:1,,http://b:2",
		"duplicate":        "http://a:1,http://a:1/",
		"missing scheme":   "a:1,http://b:2",
		"whitespace only":  "   ",
		"tcp-like address": "tcp://a:1",
	} {
		if _, err := ParseReplicas(spec); err == nil {
			t.Errorf("%s (%q): accepted", name, spec)
		} else if !strings.Contains(err.Error(), "fabric:") {
			t.Errorf("%s: error %q lacks package prefix", name, err)
		}
	}
}
