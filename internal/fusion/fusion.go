// Package fusion is the declarative transform DSL the paper's §5.5 calls
// out as future work ("our TDG transforms are simply written as short
// functions in C/C++; a DSL to specify these transforms could make the
// TDG framework even more productive"). A Rule describes a producer→
// consumer instruction pair that specialized hardware executes as one
// fused operation; the engine derives the analysis pass and the µDG
// transform from the rule, generalizing the hand-written fma example of
// Figure 4 (see internal/tdg/fma.go for the long-hand version).
package fusion

import (
	"fmt"

	"exocore/internal/cores"
	"exocore/internal/dg"
	"exocore/internal/energy"
	"exocore/internal/ir"
	"exocore/internal/isa"
	"exocore/internal/tdg"
)

// Style selects which side of the pair survives as the fused operation.
type Style uint8

// Fusion styles.
const (
	// ProducerAbsorbs executes the fused op at the producer's position
	// with the consumer's destination (fma style); the consumer is elided.
	ProducerAbsorbs Style = iota
	// ConsumerAbsorbs executes the fused op at the consumer's position
	// with the producer's sources substituted (compare-and-branch style);
	// the producer is elided.
	ConsumerAbsorbs
)

// Rule declares one fusable pattern.
type Rule struct {
	// Name identifies the rule in plans and reports.
	Name string
	// Producer/Consumer opcodes of the pattern. The producer's result
	// must be consumed (single-use, same basic block) by the consumer.
	Producer isa.Op
	Consumer isa.Op
	// RequireAccumulator additionally demands the consumer's destination
	// equal its non-produced source (the fma accumulate form).
	RequireAccumulator bool
	// Style picks the surviving side.
	Style Style
	// FusedOp is the opcode modeled for the surviving operation; its
	// latency and FU class come from the ISA table. Use the consumer's
	// own opcode (with its latency) by setting FusedOp to isa.Nop.
	FusedOp isa.Op
}

// StandardRules are fusions commercial cores implement; they exercise the
// DSL and double as a cheap "BSA zero" in ablation studies.
var StandardRules = []Rule{
	// Fused multiply-add (the paper's running example).
	{Name: "fma", Producer: isa.FMul, Consumer: isa.FAdd,
		RequireAccumulator: true, Style: ProducerAbsorbs, FusedOp: isa.FMA},
	// Integer multiply-accumulate.
	{Name: "mac", Producer: isa.Mul, Consumer: isa.Add,
		RequireAccumulator: true, Style: ProducerAbsorbs, FusedOp: isa.Mul},
	// Compare-and-branch fusion (macro-op fusion).
	{Name: "cmp-beq", Producer: isa.Slt, Consumer: isa.Beq,
		Style: ConsumerAbsorbs, FusedOp: isa.Nop},
	{Name: "cmp-bne", Producer: isa.Slt, Consumer: isa.Bne,
		Style: ConsumerAbsorbs, FusedOp: isa.Nop},
	{Name: "cmpi-beq", Producer: isa.SltI, Consumer: isa.Beq,
		Style: ConsumerAbsorbs, FusedOp: isa.Nop},
	{Name: "cmpi-bne", Producer: isa.SltI, Consumer: isa.Bne,
		Style: ConsumerAbsorbs, FusedOp: isa.Nop},
	// Shift-and-add address generation (LEA-style).
	{Name: "lea", Producer: isa.ShlI, Consumer: isa.Add,
		Style: ConsumerAbsorbs, FusedOp: isa.Add},
}

// Pair is one fused static-instruction pair in a plan.
type Pair struct {
	Rule       *Rule
	ProducerSI int
	ConsumerSI int
}

// Plan maps each surviving static index to its pair, and marks elided
// static indexes.
type Plan struct {
	// Survivor maps the surviving side's SI to the pair.
	Survivor map[int]*Pair
	// Elided marks the removed side's SIs.
	Elided map[int]bool
	// PerRule counts fused pairs per rule name.
	PerRule map[string]int
}

// Analyze derives the fusion plan: for each rule, single-use producer→
// consumer pairs within one basic block. A static instruction joins at
// most one pair (first matching rule wins, in rule order).
func Analyze(t *tdg.TDG, rules []Rule) *Plan {
	plan := &Plan{
		Survivor: make(map[int]*Pair),
		Elided:   make(map[int]bool),
		PerRule:  make(map[string]int),
	}
	p := t.CFG.Prog
	taken := make(map[int]bool)
	liveness := ir.ComputeLiveness(t.CFG)

	for bi := range t.CFG.Blocks {
		b := &t.CFG.Blocks[bi]
		for ci := b.Start; ci < b.End; ci++ {
			if taken[ci] {
				continue
			}
			consumer := &p.Insts[ci]
			for ri := range rules {
				rule := &rules[ri]
				if consumer.Op != rule.Consumer {
					continue
				}
				prodSI, prodReg := findProducer(p.Insts, b.Start, ci, rule.Producer)
				if prodSI < 0 || taken[prodSI] {
					continue
				}
				if rule.RequireAccumulator && !isAccumulator(consumer, prodReg) {
					continue
				}
				if !singleUse(p.Insts, b, prodSI, ci, prodReg, liveness) {
					continue
				}
				pair := &Pair{Rule: rule, ProducerSI: prodSI, ConsumerSI: ci}
				switch rule.Style {
				case ProducerAbsorbs:
					plan.Survivor[prodSI] = pair
					plan.Elided[ci] = true
				case ConsumerAbsorbs:
					plan.Survivor[ci] = pair
					plan.Elided[prodSI] = true
				}
				taken[prodSI], taken[ci] = true, true
				plan.PerRule[rule.Name]++
				break
			}
		}
	}
	return plan
}

// findProducer locates the nearest earlier in-block definition of one of
// the consumer's sources with the required opcode; returns (si, reg) or
// (-1, NoReg).
func findProducer(insts []isa.Inst, bStart, ci int, op isa.Op) (int, isa.Reg) {
	consumer := &insts[ci]
	var srcs []isa.Reg
	for _, r := range consumer.Srcs(srcs) {
		for si := ci - 1; si >= bStart; si-- {
			in := &insts[si]
			if !in.HasDst() || in.Dst != r {
				continue
			}
			if in.Op == op {
				return si, r
			}
			break // defined by a non-matching op: stop for this source
		}
	}
	return -1, isa.NoReg
}

func isAccumulator(consumer *isa.Inst, prodReg isa.Reg) bool {
	switch prodReg {
	case consumer.Src1:
		return consumer.Src2 == consumer.Dst
	case consumer.Src2:
		return consumer.Src1 == consumer.Dst
	}
	return false
}

// singleUse checks that the produced register has no in-block reader
// other than the consumer, and is dead at block exit (liveness), so the
// producer's architectural result can be elided.
func singleUse(insts []isa.Inst, b *ir.Block, prodSI, consSI int, r isa.Reg, lv *ir.Liveness) bool {
	var srcs []isa.Reg
	for i := prodSI + 1; i < b.End; i++ {
		if i == consSI {
			continue
		}
		in := &insts[i]
		srcs = srcs[:0]
		for _, s := range in.Srcs(srcs) {
			if s == r {
				return false
			}
		}
		if in.HasDst() && in.Dst == r && i > consSI {
			return true // redefined after the consumer: dead beyond
		}
	}
	return !lv.LiveOut[b.ID].Has(r)
}

// Evaluate runs the whole trace through a core with the fusion plan
// applied, returning cycles and energy counts (TDG_GPP,rules).
func Evaluate(t *tdg.TDG, core cores.Config, plan *Plan) (int64, energy.Counts) {
	g := dg.NewGraphN(5*t.Trace.Len() + 64)
	var counts energy.Counts
	m := cores.NewGPP(core, g, &counts)
	p := t.Trace.Prog
	for i := range t.Trace.Insts {
		d := &t.Trace.Insts[i]
		si := int(d.SI)
		if plan.Elided[si] {
			continue
		}
		in := &p.Insts[si]
		pair, fused := plan.Survivor[si]
		if !fused {
			m.Exec(cores.FromDyn(in, d), int32(i))
			continue
		}
		u := fusedUOp(p.Insts, pair, d)
		m.Exec(u, int32(i))
	}
	return m.EndTime(), counts
}

// fusedUOp builds the surviving micro-op of a pair for one dynamic
// instance.
func fusedUOp(insts []isa.Inst, pair *Pair, d dynLike) cores.UOp {
	prod := &insts[pair.ProducerSI]
	cons := &insts[pair.ConsumerSI]
	switch pair.Rule.Style {
	case ProducerAbsorbs:
		// Fused op runs at the producer site, writing the consumer's dst
		// and reading the producer's sources (+ accumulator via dst).
		return cores.UOp{
			Op: pair.Rule.FusedOp, Dst: cons.Dst,
			Src1: prod.Src1, Src2: prod.Src2,
		}
	default: // ConsumerAbsorbs
		op := pair.Rule.FusedOp
		if op == isa.Nop {
			op = cons.Op
		}
		u := cores.UOp{
			Op: op, Dst: cons.Dst,
			Src1: prod.Src1, Src2: prod.Src2,
			Mispred: d.Mispredicted(), Taken: d.Taken(),
		}
		return u
	}
}

// dynLike is the minimal dynamic-instruction view fusedUOp needs.
type dynLike interface {
	Mispredicted() bool
	Taken() bool
}

// Summary renders the plan for reports.
func (p *Plan) Summary() string {
	if len(p.Survivor) == 0 {
		return "no fusable pairs"
	}
	s := fmt.Sprintf("%d fused pairs:", len(p.Survivor))
	for name, n := range p.PerRule {
		s += fmt.Sprintf(" %s=%d", name, n)
	}
	return s
}
