package fusion

import (
	"testing"

	"exocore/internal/cores"
	"exocore/internal/isa"
	"exocore/internal/tdg"
	"exocore/internal/testutil"
)

func TestAnalyzeFindsFMA(t *testing.T) {
	td := testutil.TDGFor(t, "conv", 20000) // unrolled taps: 6 fmul→fadd chains
	plan := Analyze(td, StandardRules)
	if plan.PerRule["fma"] == 0 {
		t.Errorf("no fma pairs found in conv: %s", plan.Summary())
	}
	for si, pair := range plan.Survivor {
		if pair.Rule.Style == ProducerAbsorbs && si != pair.ProducerSI {
			t.Error("producer-absorbing pair keyed on wrong side")
		}
		if pair.Rule.Style == ConsumerAbsorbs && si != pair.ConsumerSI {
			t.Error("consumer-absorbing pair keyed on wrong side")
		}
	}
}

func TestAnalyzeFindsCompareBranch(t *testing.T) {
	// vpr: slt+beq pairs in the min/max updates.
	td := testutil.TDGFor(t, "vpr", 20000)
	plan := Analyze(td, StandardRules)
	if plan.PerRule["cmp-beq"] == 0 && plan.PerRule["cmpi-beq"] == 0 &&
		plan.PerRule["cmp-bne"] == 0 {
		t.Errorf("no compare-branch fusion in vpr: %s", plan.Summary())
	}
}

func TestNoDoubleClaim(t *testing.T) {
	for _, bench := range []string{"conv", "vpr", "mm", "cjpeg"} {
		td := testutil.TDGFor(t, bench, 20000)
		plan := Analyze(td, StandardRules)
		for si := range plan.Survivor {
			if plan.Elided[si] {
				t.Errorf("%s: SI %d both survives and is elided", bench, si)
			}
		}
	}
}

func TestEvaluateSpeedsUp(t *testing.T) {
	for _, bench := range []string{"conv", "vpr"} {
		td := testutil.TDGFor(t, bench, 20000)
		plan := Analyze(td, StandardRules)
		if len(plan.Survivor) == 0 {
			t.Fatalf("%s: nothing fused", bench)
		}
		base, baseCounts := cores.Evaluate(cores.OOO2, td.Trace)
		fused, fusedCounts := Evaluate(td, cores.OOO2, plan)
		t.Logf("%s: %s -> %.3fx", bench, plan.Summary(), float64(base)/float64(fused))
		if fused > base {
			t.Errorf("%s: fusion slowed execution: %d vs %d", bench, fused, base)
		}
		if fusedCounts.Total() >= baseCounts.Total() {
			t.Errorf("%s: fusion did not reduce event counts", bench)
		}
	}
}

func TestEvaluateMatchesFMAExample(t *testing.T) {
	// The DSL restricted to the fma rule must agree in structure with the
	// hand-written Figure 4 transform: same number of fused pairs.
	td := testutil.TDGFor(t, "nnw", 20000)
	dslPlan := Analyze(td, []Rule{StandardRules[0]})
	handPlan := tdg.AnalyzeFMA(td)
	if len(dslPlan.Survivor) != len(handPlan.MulToAdd) {
		t.Errorf("DSL found %d fma pairs, hand-written transform found %d",
			len(dslPlan.Survivor), len(handPlan.MulToAdd))
	}
}

func TestCustomRule(t *testing.T) {
	// A user-defined rule: fold shli into a following load's address —
	// verify the DSL accepts rules beyond the standard set.
	td := testutil.TDGFor(t, "spmv", 20000)
	rules := []Rule{{
		Name: "shift-ld", Producer: isa.ShlI, Consumer: isa.Add,
		Style: ConsumerAbsorbs, FusedOp: isa.Add,
	}}
	plan := Analyze(td, rules)
	if plan.PerRule["shift-ld"] == 0 {
		t.Skipf("pattern absent: %s", plan.Summary())
	}
	base, _ := cores.Evaluate(cores.OOO2, td.Trace)
	fused, _ := Evaluate(td, cores.OOO2, plan)
	if fused > base {
		t.Errorf("custom rule slowed execution: %d vs %d", fused, base)
	}
}
