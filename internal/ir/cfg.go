// Package ir reconstructs a program IR from the static instruction stream
// and the dynamic trace, exactly as the TDG constructor does (paper §2.3):
// basic blocks and the CFG from binary analysis, dominators and natural
// loop nests, def-use chains, induction/reduction detection, path profiles
// and inter-iteration memory-dependence analysis from the trace. Every µDG
// node maps one-to-one onto a static instruction in this IR.
package ir

import (
	"fmt"
	"sort"

	"exocore/internal/prog"
)

// Block is a basic block: the half-open static-instruction range
// [Start, End) plus CFG edges (block IDs).
type Block struct {
	ID    int
	Start int
	End   int
	Succs []int
	Preds []int
}

// Len returns the number of static instructions in the block.
func (b *Block) Len() int { return b.End - b.Start }

// CFG is the control-flow graph recovered from a program.
type CFG struct {
	Prog    *prog.Program
	Blocks  []Block
	BlockOf []int // static instruction index -> block ID

	// IDom[b] is the immediate dominator of block b (-1 for entry).
	IDom []int
}

// BuildCFG recovers basic blocks and edges from the instruction stream.
func BuildCFG(p *prog.Program) (*CFG, error) {
	n := len(p.Insts)
	if n == 0 {
		return nil, fmt.Errorf("ir: program %q is empty", p.Name)
	}
	// Leaders: entry, every control target, every instruction after control.
	leader := make([]bool, n)
	leader[0] = true
	for i := range p.Insts {
		in := &p.Insts[i]
		if !in.Op.IsCtrl() {
			continue
		}
		t := int(in.Imm)
		if t >= 0 && t < n {
			leader[t] = true
		} else if in.Op.IsBranch() || t != n {
			// A jump to exactly n is a clean exit; anything else is a bug
			// in the kernel under test.
			if t < 0 || t > n {
				return nil, fmt.Errorf("ir: program %q: control target %d out of range at inst %d", p.Name, t, i)
			}
		}
		if i+1 < n {
			leader[i+1] = true
		}
	}

	cfg := &CFG{Prog: p, BlockOf: make([]int, n)}
	start := 0
	for i := 1; i <= n; i++ {
		if i == n || leader[i] {
			id := len(cfg.Blocks)
			cfg.Blocks = append(cfg.Blocks, Block{ID: id, Start: start, End: i})
			for j := start; j < i; j++ {
				cfg.BlockOf[j] = id
			}
			start = i
		}
	}

	// Edges.
	for bi := range cfg.Blocks {
		b := &cfg.Blocks[bi]
		last := &p.Insts[b.End-1]
		addEdge := func(toInst int) {
			if toInst < 0 || toInst >= n {
				return // program exit
			}
			to := cfg.BlockOf[toInst]
			b.Succs = append(b.Succs, to)
		}
		switch {
		case last.Op.IsBranch():
			addEdge(int(last.Imm)) // taken
			addEdge(b.End)         // fall-through
		case last.Op.IsCtrl(): // jump
			addEdge(int(last.Imm))
		default:
			addEdge(b.End)
		}
	}
	for bi := range cfg.Blocks {
		for _, s := range cfg.Blocks[bi].Succs {
			cfg.Blocks[s].Preds = append(cfg.Blocks[s].Preds, bi)
		}
	}

	cfg.computeDominators()
	return cfg, nil
}

// computeDominators runs the classic iterative dataflow algorithm
// (Cooper/Harvey/Kennedy style on RPO) to fill IDom.
func (c *CFG) computeDominators() {
	nb := len(c.Blocks)
	rpo := c.ReversePostOrder()
	rpoIndex := make([]int, nb)
	for i, b := range rpo {
		rpoIndex[b] = i
	}
	idom := make([]int, nb)
	for i := range idom {
		idom[i] = -1
	}
	idom[0] = 0

	intersect := func(a, b int) int {
		for a != b {
			for rpoIndex[a] > rpoIndex[b] {
				a = idom[a]
			}
			for rpoIndex[b] > rpoIndex[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range c.Blocks[b].Preds {
				if idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	idom[0] = -1
	c.IDom = idom
}

// Dominates reports whether block a dominates block b.
func (c *CFG) Dominates(a, b int) bool {
	for b != -1 {
		if a == b {
			return true
		}
		b = c.IDom[b]
	}
	return false
}

// ReversePostOrder returns block IDs in reverse post-order from the entry.
// Unreachable blocks are appended at the end in ID order so every block
// appears exactly once.
func (c *CFG) ReversePostOrder() []int {
	nb := len(c.Blocks)
	seen := make([]bool, nb)
	var post []int
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range c.Blocks[b].Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(0)
	rpo := make([]int, 0, nb)
	for i := len(post) - 1; i >= 0; i-- {
		rpo = append(rpo, post[i])
	}
	var unreachable []int
	for b := 0; b < nb; b++ {
		if !seen[b] {
			unreachable = append(unreachable, b)
		}
	}
	sort.Ints(unreachable)
	return append(rpo, unreachable...)
}

// String renders the CFG for debugging.
func (c *CFG) String() string {
	s := fmt.Sprintf("cfg of %q: %d blocks\n", c.Prog.Name, len(c.Blocks))
	for i := range c.Blocks {
		b := &c.Blocks[i]
		s += fmt.Sprintf("  B%d [%d,%d) -> %v\n", b.ID, b.Start, b.End, b.Succs)
	}
	return s
}
