package ir

import (
	"sort"

	"exocore/internal/isa"
)

// InductionVar describes a basic induction variable r = r ± imm.
type InductionVar struct {
	SI   int // static index of the update instruction
	Reg  isa.Reg
	Step int64 // signed step per iteration
}

// LoopDataflow is the per-loop dataflow summary the BSA analyzers consume:
// inductions and reductions (for vectorization legality), live-in/live-out
// registers (for accelerator communication cost), and the access/compute
// slicing used by the DP-CGRA model (paper §3.2).
type LoopDataflow struct {
	LoopID int

	// DefCount counts static definitions of each register inside the loop.
	DefCount map[isa.Reg]int
	// Inductions maps the update instruction's static index to its info.
	Inductions map[int]InductionVar
	// Reductions marks static indexes of reduction updates (x = x op y).
	Reductions map[int]bool
	// LiveIns are registers read inside the loop whose value can originate
	// outside the loop (approximate, from static order).
	LiveIns []isa.Reg
	// LiveOuts are registers defined in the loop and read after it.
	LiveOuts []isa.Reg
	// AccessSlice marks static instructions belonging to the memory-access
	// slice (memory ops plus their address backward slice plus control
	// and its backward slice).
	AccessSlice map[int]bool
	// AddrSlice is the narrower slice of memory ops plus only their
	// address computation. Control conditions are NOT included: a CGRA
	// can compute predicates in-fabric (paper §3.2: "control instructions
	// without forward memory dependences are offloaded to the CGRA").
	AddrSlice map[int]bool
	// CarriedRegDep marks registers carrying a cross-iteration dependence
	// that is neither an induction nor a reduction — these block
	// vectorization.
	CarriedRegDep []isa.Reg
}

// AnalyzeLoopDataflow computes the dataflow summary for one loop.
func AnalyzeLoopDataflow(cfg *CFG, nest *LoopNest, loopID int) *LoopDataflow {
	loop := &nest.Loops[loopID]
	p := cfg.Prog
	ld := &LoopDataflow{
		LoopID:      loopID,
		DefCount:    make(map[isa.Reg]int),
		Inductions:  make(map[int]InductionVar),
		Reductions:  make(map[int]bool),
		AccessSlice: make(map[int]bool),
		AddrSlice:   make(map[int]bool),
	}

	// Membership and instruction ranges.
	inLoop := func(si int) bool { return loop.Contains(cfg.BlockOf[si]) }
	var loopInsts []int
	for _, b := range loop.Blocks {
		for si := cfg.Blocks[b].Start; si < cfg.Blocks[b].End; si++ {
			loopInsts = append(loopInsts, si)
		}
	}
	sort.Ints(loopInsts)

	// Def counts.
	for _, si := range loopInsts {
		in := &p.Insts[si]
		if in.HasDst() {
			ld.DefCount[in.Dst]++
		}
	}

	// Inductions: single-def r = r ± imm whose update executes on every
	// iteration (its block dominates every latch) — a conditionally
	// advanced cursor is a true recurrence, not an induction.
	unconditional := func(si int) bool {
		b := cfg.BlockOf[si]
		for _, latch := range loop.Latches {
			if !cfg.Dominates(b, latch) {
				return false
			}
		}
		return true
	}
	for _, si := range loopInsts {
		in := &p.Insts[si]
		if !in.HasDst() || ld.DefCount[in.Dst] != 1 || in.Src1 != in.Dst {
			continue
		}
		if !unconditional(si) {
			continue
		}
		switch in.Op {
		case isa.AddI:
			ld.Inductions[si] = InductionVar{SI: si, Reg: in.Dst, Step: in.Imm}
		case isa.SubI:
			ld.Inductions[si] = InductionVar{SI: si, Reg: in.Dst, Step: -in.Imm}
		}
	}

	// Reductions: single-def x = x op y for associative-ish ops.
	for _, si := range loopInsts {
		in := &p.Insts[si]
		if !in.HasDst() || ld.DefCount[in.Dst] != 1 {
			continue
		}
		if _, isInd := ld.Inductions[si]; isInd {
			continue
		}
		switch in.Op {
		case isa.FAdd, isa.FMul, isa.Add, isa.Mul, isa.And, isa.Or, isa.Xor:
			if in.Src1 == in.Dst || in.Src2 == in.Dst {
				ld.Reductions[si] = true
			}
		}
	}

	// Cross-iteration register dependences that are neither inductions nor
	// reductions: a register that is both defined in the loop and read in
	// the loop at-or-before its (only) definition point, or multi-def regs
	// read in-loop. This is conservative in the right direction for
	// vectorization legality.
	firstDef := make(map[isa.Reg]int)
	for _, si := range loopInsts {
		in := &p.Insts[si]
		if in.HasDst() {
			if _, ok := firstDef[in.Dst]; !ok {
				firstDef[in.Dst] = si
			}
		}
	}
	carried := make(map[isa.Reg]bool)
	var srcs []isa.Reg
	for _, si := range loopInsts {
		in := &p.Insts[si]
		srcs = srcs[:0]
		for _, r := range in.Srcs(srcs) {
			def, defined := firstDef[r]
			if !defined {
				continue
			}
			// A read at or before the register's first in-loop definition
			// consumes the previous iteration's value (it flows around the
			// back edge). Reads after a def are iteration-local — this is
			// optimistic for values defined only on some paths (§2.7).
			if si <= def {
				if _, isInd := ld.Inductions[def]; isInd && ld.DefCount[r] == 1 {
					continue
				}
				if ld.Reductions[def] && ld.DefCount[r] == 1 {
					continue
				}
				carried[r] = true
			}
		}
	}
	for r := range carried {
		ld.CarriedRegDep = append(ld.CarriedRegDep, r)
	}
	SortRegs(ld.CarriedRegDep)

	// Live-ins: registers read in the loop that are not defined earlier in
	// the same straight-line region before every read (approximation:
	// reads whose register is never defined in-loop, or is defined in-loop
	// but also carried across the back edge).
	liveIn := make(map[isa.Reg]bool)
	for _, si := range loopInsts {
		in := &p.Insts[si]
		srcs = srcs[:0]
		for _, r := range in.Srcs(srcs) {
			if ld.DefCount[r] == 0 || carried[r] {
				liveIn[r] = true
			}
			if def, ok := firstDef[r]; ok && si <= def {
				liveIn[r] = true
			}
			if d, isInd := firstDef[r]; isInd {
				if _, ok := ld.Inductions[d]; ok {
					liveIn[r] = true // seed value comes from outside
				}
			}
		}
	}
	for r := range liveIn {
		ld.LiveIns = append(ld.LiveIns, r)
	}
	SortRegs(ld.LiveIns)

	// Live-outs: defined in loop, read anywhere outside the loop.
	usedOutside := make(map[isa.Reg]bool)
	for si := range p.Insts {
		if inLoop(si) {
			continue
		}
		in := &p.Insts[si]
		srcs = srcs[:0]
		for _, r := range in.Srcs(srcs) {
			usedOutside[r] = true
		}
	}
	for r := range ld.DefCount {
		if usedOutside[r] {
			ld.LiveOuts = append(ld.LiveOuts, r)
		}
	}
	SortRegs(ld.LiveOuts)

	ld.computeAccessSlice(p.Insts, loopInsts)
	return ld
}

// computeAccessSlice marks memory instructions, their address backward
// slices (within the loop, one iteration), and control instructions (with
// their backward slices) as the "access" slice, and separately the
// narrower address-only slice.
func (ld *LoopDataflow) computeAccessSlice(insts []isa.Inst, loopInsts []int) {
	inst := func(si int) *isa.Inst { return &insts[si] }
	// Def map in static order for the backward slice.
	defOf := make(map[isa.Reg][]int)
	for _, si := range loopInsts {
		in := inst(si)
		if in.HasDst() {
			defOf[in.Dst] = append(defOf[in.Dst], si)
		}
	}

	backward := func(inSlice map[int]bool, seeds []int) {
		work := append([]int(nil), seeds...)
		var srcs []isa.Reg
		for len(work) > 0 {
			si := work[len(work)-1]
			work = work[:len(work)-1]
			in := inst(si)
			srcs = srcs[:0]
			for _, r := range in.Srcs(srcs) {
				for _, d := range defOf[r] {
					if !inSlice[d] {
						inSlice[d] = true
						work = append(work, d)
					}
				}
			}
		}
	}

	var addrSeeds, ctrlSeeds []int
	for _, si := range loopInsts {
		in := inst(si)
		switch {
		case in.Op.IsMem():
			ld.AddrSlice[si] = true
			ld.AccessSlice[si] = true
			// Only the address operand's slice, not the stored value's.
			for _, d := range defOf[in.Src1] {
				if !ld.AddrSlice[d] {
					ld.AddrSlice[d] = true
					addrSeeds = append(addrSeeds, d)
				}
			}
		case in.Op.IsCtrl():
			ld.AccessSlice[si] = true
			ctrlSeeds = append(ctrlSeeds, si)
		}
	}
	backward(ld.AddrSlice, addrSeeds)
	for si := range ld.AddrSlice {
		ld.AccessSlice[si] = true
	}
	backward(ld.AccessSlice, ctrlSeeds)
}

// SortRegs sorts a register slice in place (deterministic plan output).
func SortRegs(rs []isa.Reg) {
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
}
