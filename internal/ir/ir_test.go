package ir

import (
	"testing"

	"exocore/internal/isa"
	"exocore/internal/prog"
	"exocore/internal/sim"
	"exocore/internal/trace"
)

// simpleLoop builds: r1=N; loop: r2=ld[r3]; r3+=8; r1-=1; bne r1,r0,loop
func simpleLoop(n int64) *prog.Program {
	b := prog.NewBuilder("simple")
	b.MovI(isa.R(1), n)
	b.MovI(isa.R(3), 0x1000)
	b.Label("loop")
	b.Ld(isa.R(2), isa.R(3), 0)
	b.AddI(isa.R(3), isa.R(3), 8)
	b.SubI(isa.R(1), isa.R(1), 1)
	b.Bne(isa.R(1), isa.RZ, "loop")
	return b.MustBuild()
}

// nestedLoop builds a 2-deep nest.
func nestedLoop(outer, inner int64) *prog.Program {
	b := prog.NewBuilder("nested")
	b.MovI(isa.R(1), outer)
	b.Label("outer")
	b.MovI(isa.R(2), inner)
	b.Label("inner")
	b.AddI(isa.R(4), isa.R(4), 1)
	b.SubI(isa.R(2), isa.R(2), 1)
	b.Bne(isa.R(2), isa.RZ, "inner")
	b.SubI(isa.R(1), isa.R(1), 1)
	b.Bne(isa.R(1), isa.RZ, "outer")
	return b.MustBuild()
}

// diamondLoop has an if/else inside the loop body.
func diamondLoop(n int64) *prog.Program {
	b := prog.NewBuilder("diamond")
	b.MovI(isa.R(1), n)
	b.Label("loop")
	b.And(isa.R(2), isa.R(1), isa.R(5)) // r5 = 1 set by caller
	b.Beq(isa.R(2), isa.RZ, "else")
	b.AddI(isa.R(3), isa.R(3), 1)
	b.Jmp("join")
	b.Label("else")
	b.AddI(isa.R(4), isa.R(4), 1)
	b.Label("join")
	b.SubI(isa.R(1), isa.R(1), 1)
	b.Bne(isa.R(1), isa.RZ, "loop")
	return b.MustBuild()
}

func mustCFG(t *testing.T, p *prog.Program) *CFG {
	t.Helper()
	cfg, err := BuildCFG(p)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func traceOf(t *testing.T, p *prog.Program, prep func(*sim.State)) *trace.Trace {
	t.Helper()
	st := sim.NewState()
	if prep != nil {
		prep(st)
	}
	tr, err := sim.Run(p, st, sim.Config{MaxDyn: 100000})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestCFGSimpleLoop(t *testing.T) {
	cfg := mustCFG(t, simpleLoop(3))
	// Blocks: [movi,movi], [ld,addi,subi,bne]
	if len(cfg.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2:\n%s", len(cfg.Blocks), cfg)
	}
	b1 := cfg.Blocks[1]
	if len(b1.Succs) != 1 || b1.Succs[0] != 1 {
		t.Errorf("loop block succs = %v, want self-loop only (falls off end)", b1.Succs)
	}
	if !cfg.Dominates(0, 1) {
		t.Error("entry must dominate loop block")
	}
}

func TestCFGDiamond(t *testing.T) {
	cfg := mustCFG(t, diamondLoop(4))
	// entry, header(and+beq), then, else, join.
	if len(cfg.Blocks) != 5 {
		t.Fatalf("blocks = %d, want 5:\n%s", len(cfg.Blocks), cfg)
	}
	header := cfg.BlockOf[1]
	join := cfg.BlockOf[7]
	if !cfg.Dominates(header, join) {
		t.Error("header must dominate join")
	}
	thenB := cfg.BlockOf[3]
	if cfg.Dominates(thenB, join) {
		t.Error("then-branch must not dominate join")
	}
}

func TestLoopNestSimple(t *testing.T) {
	cfg := mustCFG(t, simpleLoop(3))
	nest := BuildLoopNest(cfg)
	if len(nest.Loops) != 1 {
		t.Fatalf("loops = %d, want 1\n%s", len(nest.Loops), nest)
	}
	l := &nest.Loops[0]
	if !l.Inner() || l.Depth != 1 {
		t.Errorf("loop depth/inner wrong: %+v", l)
	}
	if nest.InnermostOfInst(2) != 0 {
		t.Error("ld should be in loop 0")
	}
	if nest.InnermostOfInst(0) != -1 {
		t.Error("prologue should be outside loops")
	}
}

func TestLoopNestNested(t *testing.T) {
	cfg := mustCFG(t, nestedLoop(3, 4))
	nest := BuildLoopNest(cfg)
	if len(nest.Loops) != 2 {
		t.Fatalf("loops = %d, want 2\n%s", len(nest.Loops), nest)
	}
	var innerID, outerID = -1, -1
	for i := range nest.Loops {
		if nest.Loops[i].Inner() {
			innerID = i
		} else {
			outerID = i
		}
	}
	if innerID == -1 || outerID == -1 {
		t.Fatalf("expected one inner and one outer loop:\n%s", nest)
	}
	if nest.Loops[innerID].Parent != outerID {
		t.Error("inner loop's parent should be outer loop")
	}
	if nest.Loops[innerID].Depth != 2 || nest.Loops[outerID].Depth != 1 {
		t.Error("depths wrong")
	}
	if !nest.IsAncestor(outerID, innerID) || nest.IsAncestor(innerID, outerID) {
		t.Error("ancestry wrong")
	}
	if nest.OutermostAncestor(innerID) != outerID {
		t.Error("outermost ancestor wrong")
	}
}

func TestLoopDataflowInductionsAndLiveness(t *testing.T) {
	p := simpleLoop(3)
	cfg := mustCFG(t, p)
	nest := BuildLoopNest(cfg)
	ld := AnalyzeLoopDataflow(cfg, nest, 0)

	// r3 += 8 (inst 3) and r1 -= 1 (inst 4) are inductions.
	if len(ld.Inductions) != 2 {
		t.Fatalf("inductions = %v, want 2", ld.Inductions)
	}
	if iv, ok := ld.Inductions[3]; !ok || iv.Step != 8 {
		t.Errorf("inst 3 induction = %+v", iv)
	}
	if iv, ok := ld.Inductions[4]; !ok || iv.Step != -1 {
		t.Errorf("inst 4 induction = %+v", iv)
	}
	if len(ld.CarriedRegDep) != 0 {
		t.Errorf("carried deps = %v, want none", ld.CarriedRegDep)
	}
	// r1 and r3 seeds are live-in.
	hasReg := func(rs []isa.Reg, r isa.Reg) bool {
		for _, x := range rs {
			if x == r {
				return true
			}
		}
		return false
	}
	if !hasReg(ld.LiveIns, isa.R(1)) || !hasReg(ld.LiveIns, isa.R(3)) {
		t.Errorf("live-ins = %v, want r1 and r3", ld.LiveIns)
	}
}

func TestLoopDataflowReduction(t *testing.T) {
	b := prog.NewBuilder("red")
	b.MovI(isa.R(1), 8)
	b.MovI(isa.R(2), 0x1000)
	b.Label("loop")
	b.LdF(isa.F(1), isa.R(2), 0)
	b.FAdd(isa.F(0), isa.F(0), isa.F(1)) // reduction
	b.AddI(isa.R(2), isa.R(2), 8)
	b.SubI(isa.R(1), isa.R(1), 1)
	b.Bne(isa.R(1), isa.RZ, "loop")
	p := b.MustBuild()
	cfg := mustCFG(t, p)
	nest := BuildLoopNest(cfg)
	ld := AnalyzeLoopDataflow(cfg, nest, 0)
	if !ld.Reductions[3] {
		t.Errorf("fadd at 3 should be a reduction: %v", ld.Reductions)
	}
	if len(ld.CarriedRegDep) != 0 {
		t.Errorf("reduction must not count as carried dep: %v", ld.CarriedRegDep)
	}
}

func TestLoopDataflowCarriedDep(t *testing.T) {
	b := prog.NewBuilder("carried")
	b.MovI(isa.R(1), 8)
	b.Label("loop")
	b.Mul(isa.R(3), isa.R(3), isa.R(4)) // r3 = r3*r4: carried, not a reduction? mul with dst==src1 IS reduction-eligible
	b.Shl(isa.R(5), isa.R(5), isa.R(3)) // r5 = r5 << r3: carried non-reduction
	b.SubI(isa.R(1), isa.R(1), 1)
	b.Bne(isa.R(1), isa.RZ, "loop")
	p := b.MustBuild()
	cfg := mustCFG(t, p)
	nest := BuildLoopNest(cfg)
	ld := AnalyzeLoopDataflow(cfg, nest, 0)
	found := false
	for _, r := range ld.CarriedRegDep {
		if r == isa.R(5) {
			found = true
		}
	}
	if !found {
		t.Errorf("r5 shift-accumulate should be a carried dep: %v", ld.CarriedRegDep)
	}
}

func TestAccessSliceSeparation(t *testing.T) {
	p := simpleLoop(3)
	cfg := mustCFG(t, p)
	nest := BuildLoopNest(cfg)
	ld := AnalyzeLoopDataflow(cfg, nest, 0)
	// ld (2), addi r3 (3, address), subi r1 (4, feeds branch), bne (5) are access slice.
	for _, si := range []int{2, 3, 5} {
		if !ld.AccessSlice[si] {
			t.Errorf("inst %d should be in access slice", si)
		}
	}
}

func TestProfileSimpleLoop(t *testing.T) {
	p := simpleLoop(10)
	cfg := mustCFG(t, p)
	nest := BuildLoopNest(cfg)
	tr := traceOf(t, p, nil)
	prof := BuildProfile(cfg, nest, tr)

	lp := &prof.Loops[0]
	if lp.Entries != 1 {
		t.Errorf("entries = %d, want 1", lp.Entries)
	}
	if lp.Iterations != 10 {
		t.Errorf("iterations = %d, want 10", lp.Iterations)
	}
	if lp.AvgTrip != 10 {
		t.Errorf("avg trip = %v, want 10", lp.AvgTrip)
	}
	if lp.BackProb < 0.85 || lp.BackProb > 0.95 {
		t.Errorf("back prob = %v, want ~0.9", lp.BackProb)
	}
	if prof.LoopShare(0) < 0.9 {
		t.Errorf("loop share = %v, want > 0.9", prof.LoopShare(0))
	}
}

func TestProfileStrides(t *testing.T) {
	p := simpleLoop(50)
	cfg := mustCFG(t, p)
	nest := BuildLoopNest(cfg)
	tr := traceOf(t, p, nil)
	prof := BuildProfile(cfg, nest, tr)
	info := prof.Strides[2] // the load
	if !info.Contiguous() {
		t.Errorf("load stride = %+v, want contiguous", info)
	}
}

func TestProfileNestedIterations(t *testing.T) {
	p := nestedLoop(5, 7)
	cfg := mustCFG(t, p)
	nest := BuildLoopNest(cfg)
	tr := traceOf(t, p, nil)
	prof := BuildProfile(cfg, nest, tr)

	var innerID, outerID int
	for i := range nest.Loops {
		if nest.Loops[i].Inner() {
			innerID = i
		} else {
			outerID = i
		}
	}
	if prof.Loops[outerID].Iterations != 5 {
		t.Errorf("outer iters = %d, want 5", prof.Loops[outerID].Iterations)
	}
	if prof.Loops[innerID].Iterations != 35 {
		t.Errorf("inner iters = %d, want 35", prof.Loops[innerID].Iterations)
	}
	if prof.Loops[innerID].Entries != 5 {
		t.Errorf("inner entries = %d, want 5", prof.Loops[innerID].Entries)
	}
}

func TestProfileHotPath(t *testing.T) {
	p := diamondLoop(64)
	cfg := mustCFG(t, p)
	nest := BuildLoopNest(cfg)
	// r5=1 so the branch alternates by parity of r1.
	tr := traceOf(t, p, func(st *sim.State) { st.SetInt(isa.R(5), 1) })
	prof := BuildProfile(cfg, nest, tr)
	lp := &prof.Loops[0]
	if len(lp.PathCounts) < 2 {
		t.Fatalf("path counts = %v, want >= 2 distinct paths", lp.PathCounts)
	}
	if lp.HotPathFrac < 0.4 || lp.HotPathFrac > 0.6 {
		t.Errorf("hot path frac = %v, want ~0.5 for alternating diamond", lp.HotPathFrac)
	}
}

func TestProfileCarriedMemDep(t *testing.T) {
	// for i: a[i+1] = a[i] + 1 -> loop-carried RAW through memory.
	b := prog.NewBuilder("carrymem")
	b.MovI(isa.R(1), 20)
	b.MovI(isa.R(2), 0x1000)
	b.Label("loop")
	b.Ld(isa.R(3), isa.R(2), 0)
	b.AddI(isa.R(3), isa.R(3), 1)
	b.St(isa.R(3), isa.R(2), 8)
	b.AddI(isa.R(2), isa.R(2), 8)
	b.SubI(isa.R(1), isa.R(1), 1)
	b.Bne(isa.R(1), isa.RZ, "loop")
	p := b.MustBuild()
	cfg := mustCFG(t, p)
	nest := BuildLoopNest(cfg)
	tr := traceOf(t, p, nil)
	prof := BuildProfile(cfg, nest, tr)
	if !prof.Loops[0].CarriedMemDep {
		t.Error("expected loop-carried memory dependence")
	}

	// Independent iterations: no carried dep.
	p2 := simpleLoop(20)
	cfg2 := mustCFG(t, p2)
	nest2 := BuildLoopNest(cfg2)
	tr2 := traceOf(t, p2, nil)
	prof2 := BuildProfile(cfg2, nest2, tr2)
	if prof2.Loops[0].CarriedMemDep {
		t.Error("independent loads must not report carried dep")
	}
}

func TestMarkSpills(t *testing.T) {
	b := prog.NewBuilder("spill")
	b.MovI(isa.R(31), 0x8000)
	b.St(isa.R(1), isa.R(31), 0) // spill store
	b.Ld(isa.R(1), isa.R(31), 0) // spill load
	b.MovI(isa.R(2), 0x1000)
	b.Ld(isa.R(3), isa.R(2), 0) // normal load
	p := b.MustBuild()
	tr := traceOf(t, p, nil)
	n := MarkSpills(tr)
	if n != 2 {
		t.Errorf("spills = %d, want 2", n)
	}
	if !tr.Insts[1].IsSpill() || !tr.Insts[2].IsSpill() || tr.Insts[4].IsSpill() {
		t.Error("spill flags wrong")
	}
}

func TestEncodeDecodePath(t *testing.T) {
	paths := [][]int{{0}, {1, 2, 3}, {5, 300, 7}, {}}
	for _, p := range paths {
		got := decodePath(string(appendPath(nil, p)))
		if len(got) != len(p) {
			t.Errorf("roundtrip %v -> %v", p, got)
			continue
		}
		for i := range p {
			if got[i] != p[i] {
				t.Errorf("roundtrip %v -> %v", p, got)
			}
		}
	}
}

func TestSortedLoopsByShare(t *testing.T) {
	p := nestedLoop(3, 50)
	cfg := mustCFG(t, p)
	nest := BuildLoopNest(cfg)
	tr := traceOf(t, p, nil)
	prof := BuildProfile(cfg, nest, tr)
	ids := prof.SortedLoopsByShare()
	if len(ids) != 2 {
		t.Fatalf("ids = %v", ids)
	}
	if prof.Loops[ids[0]].DynInsts < prof.Loops[ids[1]].DynInsts {
		t.Error("not sorted by share")
	}
}
