package ir

import "exocore/internal/isa"

// RegSet is a bitset over the architectural registers (64 = 32 int + 32
// fp, fitting one word).
type RegSet uint64

// Has reports membership.
func (s RegSet) Has(r isa.Reg) bool { return s&(1<<uint(r)) != 0 }

func (s RegSet) add(r isa.Reg) RegSet { return s | 1<<uint(r) }

// Liveness holds per-block live-in/live-out register sets from a classic
// backward dataflow fixpoint. Transforms use it to decide whether a
// register's value escapes a block (eg. fusion legality).
type Liveness struct {
	LiveIn  []RegSet
	LiveOut []RegSet
}

// ComputeLiveness runs backward liveness over the CFG.
func ComputeLiveness(cfg *CFG) *Liveness {
	nb := len(cfg.Blocks)
	ue := make([]RegSet, nb)  // upward-exposed uses
	def := make([]RegSet, nb) // defined before any use
	var srcs []isa.Reg
	for bi := range cfg.Blocks {
		b := &cfg.Blocks[bi]
		for si := b.Start; si < b.End; si++ {
			in := &cfg.Prog.Insts[si]
			srcs = srcs[:0]
			for _, r := range in.Srcs(srcs) {
				if !def[bi].Has(r) {
					ue[bi] = ue[bi].add(r)
				}
			}
			// FMA reads its destination as the accumulator.
			if in.Op == isa.FMA && in.Dst.Valid() && !def[bi].Has(in.Dst) {
				ue[bi] = ue[bi].add(in.Dst)
			}
			if in.HasDst() {
				def[bi] = def[bi].add(in.Dst)
			}
		}
	}

	lv := &Liveness{LiveIn: make([]RegSet, nb), LiveOut: make([]RegSet, nb)}
	for changed := true; changed; {
		changed = false
		for bi := nb - 1; bi >= 0; bi-- {
			var out RegSet
			for _, s := range cfg.Blocks[bi].Succs {
				out |= lv.LiveIn[s]
			}
			in := ue[bi] | (out &^ def[bi])
			if out != lv.LiveOut[bi] || in != lv.LiveIn[bi] {
				lv.LiveOut[bi] = out
				lv.LiveIn[bi] = in
				changed = true
			}
		}
	}
	return lv
}
