package ir

import (
	"testing"

	"exocore/internal/isa"
	"exocore/internal/prog"
)

func TestLivenessStraightLine(t *testing.T) {
	b := prog.NewBuilder("sl")
	b.MovI(isa.R(1), 1)
	b.Add(isa.R(2), isa.R(1), isa.R(1))
	b.Add(isa.R(3), isa.R(2), isa.R(2))
	cfg := mustCFG(t, b.MustBuild())
	lv := ComputeLiveness(cfg)
	// Single block, nothing live out.
	if lv.LiveOut[0] != 0 {
		t.Errorf("live-out = %064b, want empty", lv.LiveOut[0])
	}
	if lv.LiveIn[0].Has(isa.R(1)) {
		t.Error("r1 defined before use: not live-in")
	}
}

func TestLivenessAcrossLoop(t *testing.T) {
	p := simpleLoop(3) // uses r1 (count), r3 (pointer) across iterations
	cfg := mustCFG(t, p)
	lv := ComputeLiveness(cfg)
	loopBlock := cfg.BlockOf[2]
	// The loop block reads r1/r3 at its top (carried around the back
	// edge), so they are live at its exit.
	if !lv.LiveOut[loopBlock].Has(isa.R(1)) || !lv.LiveOut[loopBlock].Has(isa.R(3)) {
		t.Errorf("loop-carried registers not live-out: %064b", lv.LiveOut[loopBlock])
	}
	// r2 (load target) is never read: dead everywhere.
	if lv.LiveOut[loopBlock].Has(isa.R(2)) {
		t.Error("dead r2 reported live")
	}
}

func TestLivenessDiamond(t *testing.T) {
	p := diamondLoop(4)
	cfg := mustCFG(t, p)
	lv := ComputeLiveness(cfg)
	// r5 (the mask register, set by the caller) is read in the header
	// every iteration: live into the entry block's successor chain.
	header := cfg.BlockOf[1]
	if !lv.LiveIn[header].Has(isa.R(5)) {
		t.Error("r5 must be live into the loop header")
	}
}

func TestLivenessFMAAccumulator(t *testing.T) {
	p := &prog.Program{Name: "fma", Insts: []isa.Inst{
		{Op: isa.FMA, Dst: isa.F(0), Src1: isa.F(1), Src2: isa.F(2)},
	}}
	cfg := mustCFG(t, p)
	lv := ComputeLiveness(cfg)
	if !lv.LiveIn[0].Has(isa.F(0)) {
		t.Error("FMA accumulator must count as a use")
	}
}

func TestRegSet(t *testing.T) {
	var s RegSet
	s = s.add(isa.R(3)).add(isa.F(2))
	if !s.Has(isa.R(3)) || !s.Has(isa.F(2)) || s.Has(isa.R(4)) {
		t.Error("RegSet membership wrong")
	}
}
