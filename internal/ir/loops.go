package ir

import (
	"fmt"
	"sort"
)

// Loop is a natural loop discovered from CFG back edges. Loops sharing a
// header are merged, matching standard loop reconstruction from binaries.
type Loop struct {
	ID     int
	Header int   // header block ID
	Blocks []int // member block IDs, sorted
	// Latches are in-loop predecessors of the header (back-edge sources).
	Latches []int
	// Exits are in-loop blocks with a successor outside the loop.
	Exits []int
	// Parent is the immediately enclosing loop's ID, or -1.
	Parent   int
	Children []int
	Depth    int // 1 = outermost

	blockSet map[int]bool
}

// Contains reports whether block b belongs to the loop.
func (l *Loop) Contains(b int) bool { return l.blockSet[b] }

// Inner reports whether the loop has no nested loops.
func (l *Loop) Inner() bool { return len(l.Children) == 0 }

// LoopNest is the loop forest of a CFG.
type LoopNest struct {
	CFG   *CFG
	Loops []Loop
	// InnermostOf maps block ID -> innermost containing loop ID, or -1.
	InnermostOf []int
	// Roots are the outermost loops.
	Roots []int
}

// BuildLoopNest finds all natural loops of the CFG and their nesting.
func BuildLoopNest(cfg *CFG) *LoopNest {
	nb := len(cfg.Blocks)
	// Collect back edges tail->head where head dominates tail.
	headerBlocks := make(map[int]map[int]bool) // header -> member set
	headerLatches := make(map[int][]int)
	for b := 0; b < nb; b++ {
		for _, s := range cfg.Blocks[b].Succs {
			if cfg.Dominates(s, b) {
				// back edge b -> s; flood backwards from b to s.
				set := headerBlocks[s]
				if set == nil {
					set = map[int]bool{s: true}
					headerBlocks[s] = set
				}
				headerLatches[s] = append(headerLatches[s], b)
				var stack []int
				if !set[b] {
					set[b] = true
					stack = append(stack, b)
				}
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, p := range cfg.Blocks[x].Preds {
						if !set[p] {
							set[p] = true
							stack = append(stack, p)
						}
					}
				}
			}
		}
	}

	nest := &LoopNest{CFG: cfg, InnermostOf: make([]int, nb)}
	for i := range nest.InnermostOf {
		nest.InnermostOf[i] = -1
	}
	headers := make([]int, 0, len(headerBlocks))
	for h := range headerBlocks {
		headers = append(headers, h)
	}
	sort.Ints(headers)
	for _, h := range headers {
		set := headerBlocks[h]
		blocks := make([]int, 0, len(set))
		for b := range set {
			blocks = append(blocks, b)
		}
		sort.Ints(blocks)
		l := Loop{
			ID:       len(nest.Loops),
			Header:   h,
			Blocks:   blocks,
			Latches:  headerLatches[h],
			Parent:   -1,
			blockSet: set,
		}
		sort.Ints(l.Latches)
		for _, b := range blocks {
			for _, s := range cfg.Blocks[b].Succs {
				if !set[s] && !containsInt(l.Exits, b) {
					l.Exits = append(l.Exits, b)
				}
			}
		}
		nest.Loops = append(nest.Loops, l)
	}

	// Nesting: loop A is the parent of B if A contains B's header, A != B,
	// and A is the smallest such loop.
	for i := range nest.Loops {
		li := &nest.Loops[i]
		best, bestSize := -1, 1<<31
		for j := range nest.Loops {
			if i == j {
				continue
			}
			lj := &nest.Loops[j]
			if lj.Contains(li.Header) && len(lj.Blocks) > len(li.Blocks) && len(lj.Blocks) < bestSize {
				// Require full containment for well-nested loops.
				all := true
				for _, b := range li.Blocks {
					if !lj.Contains(b) {
						all = false
						break
					}
				}
				if all {
					best, bestSize = j, len(lj.Blocks)
				}
			}
		}
		li.Parent = best
	}
	for i := range nest.Loops {
		if p := nest.Loops[i].Parent; p >= 0 {
			nest.Loops[p].Children = append(nest.Loops[p].Children, i)
		} else {
			nest.Roots = append(nest.Roots, i)
		}
	}
	// Depths via BFS from roots.
	var setDepth func(id, d int)
	setDepth = func(id, d int) {
		nest.Loops[id].Depth = d
		for _, c := range nest.Loops[id].Children {
			setDepth(c, d+1)
		}
	}
	for _, r := range nest.Roots {
		setDepth(r, 1)
	}
	// Innermost loop per block: the containing loop with max depth.
	for b := 0; b < nb; b++ {
		best, bestDepth := -1, 0
		for i := range nest.Loops {
			if nest.Loops[i].Contains(b) && nest.Loops[i].Depth > bestDepth {
				best, bestDepth = i, nest.Loops[i].Depth
			}
		}
		nest.InnermostOf[b] = best
	}
	return nest
}

// InnermostOfInst returns the innermost loop containing a static
// instruction, or -1.
func (n *LoopNest) InnermostOfInst(si int) int {
	return n.InnermostOf[n.CFG.BlockOf[si]]
}

// LoopOfInstAtDepth walks from the innermost loop of si up to the loop at
// the given depth; returns -1 if si is not in a loop that deep.
func (n *LoopNest) LoopOfInstAtDepth(si, depth int) int {
	l := n.InnermostOfInst(si)
	for l >= 0 && n.Loops[l].Depth > depth {
		l = n.Loops[l].Parent
	}
	if l >= 0 && n.Loops[l].Depth == depth {
		return l
	}
	return -1
}

// InstsOf returns the static-instruction count of a loop (all blocks).
func (n *LoopNest) InstsOf(loopID int) int {
	total := 0
	for _, b := range n.Loops[loopID].Blocks {
		total += n.CFG.Blocks[b].Len()
	}
	return total
}

// IsAncestor reports whether loop a encloses (or equals) loop b.
func (n *LoopNest) IsAncestor(a, b int) bool {
	for b != -1 {
		if a == b {
			return true
		}
		b = n.Loops[b].Parent
	}
	return false
}

// OutermostAncestor returns the root loop enclosing l.
func (n *LoopNest) OutermostAncestor(l int) int {
	for n.Loops[l].Parent != -1 {
		l = n.Loops[l].Parent
	}
	return l
}

// String renders the loop forest.
func (n *LoopNest) String() string {
	s := fmt.Sprintf("%d loops\n", len(n.Loops))
	for i := range n.Loops {
		l := &n.Loops[i]
		s += fmt.Sprintf("  L%d header=B%d depth=%d parent=%d blocks=%v exits=%v\n",
			l.ID, l.Header, l.Depth, l.Parent, l.Blocks, l.Exits)
	}
	return s
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
