package ir

import (
	"encoding/binary"
	"sort"

	"exocore/internal/isa"
	"exocore/internal/trace"
)

// StrideInfo summarizes the observed address stride of one static memory
// instruction across consecutive executions inside its innermost loop.
type StrideInfo struct {
	Samples    int64
	Dominant   int64   // most frequent delta
	Consistent float64 // fraction of samples equal to Dominant
}

// Contiguous reports whether the access advances by exactly one word per
// iteration, the pattern SIMD can load/store without packing.
func (s StrideInfo) Contiguous() bool {
	return s.Samples > 0 && s.Dominant == 8 && s.Consistent >= 0.95
}

// Scalar reports whether the address is loop-invariant (stride 0).
func (s StrideInfo) Scalar() bool {
	return s.Samples > 0 && s.Dominant == 0 && s.Consistent >= 0.95
}

// Strided reports a constant non-unit stride (vectorizable with packing).
func (s StrideInfo) Strided() bool {
	return s.Samples > 0 && s.Consistent >= 0.95 && !s.Contiguous() && !s.Scalar()
}

// LoopProfile aggregates dynamic behavior of one loop.
type LoopProfile struct {
	LoopID     int
	Entries    int64 // occurrences (entries from outside the loop)
	Iterations int64
	DynInsts   int64 // dynamic instructions inside (incl. nested loops)
	// BackProb is iterations/(iterations+entries): probability control
	// stays in the loop at the latch, the Trace-P eligibility metric.
	BackProb float64
	AvgTrip  float64
	// PathCounts maps an encoded block path (one iteration of an inner
	// loop) to its frequency: the Ball-Larus-style path profile.
	PathCounts map[string]int64
	// HotPath is the most frequent iteration path (block IDs), and
	// HotPathFrac its fraction of all iterations.
	HotPath     []int
	HotPathFrac float64
	// CarriedMemDep records an observed cross-iteration memory dependence
	// (a store in one iteration, load/store to the same address in a later
	// iteration of the same occurrence).
	CarriedMemDep bool
}

// Profile is the trace-derived profile of a program: block counts, loop
// statistics, path profiles and per-instruction stride classification.
// This is the "profiling information" half of the TDG analyzer inputs.
type Profile struct {
	CFG  *CFG
	Nest *LoopNest

	BlockCount []int64
	Loops      []LoopProfile
	Strides    map[int]StrideInfo
	TotalDyn   int64
}

type strideAcc struct {
	lastAddr uint64
	seen     bool
	deltas   map[int64]int64
	samples  int64
}

type loopState struct {
	id         int
	iterBlocks []int
	// addrIter maps word address -> (iteration number << 1) | isStore,
	// bounded; used for carried-dependence detection.
	addrIter map[uint64]depRec
	iter     int64
}

type depRec struct {
	iter    int64
	isStore bool
}

const maxDepTrack = 1 << 15 // bound the per-occurrence address map

// BuildProfile derives the dynamic profile of t given its CFG and loops.
func BuildProfile(cfg *CFG, nest *LoopNest, t *trace.Trace) *Profile {
	p := &Profile{
		CFG:        cfg,
		Nest:       nest,
		BlockCount: make([]int64, len(cfg.Blocks)),
		Strides:    make(map[int]StrideInfo),
		TotalDyn:   int64(len(t.Insts)),
	}
	p.Loops = make([]LoopProfile, len(nest.Loops))
	for i := range p.Loops {
		p.Loops[i] = LoopProfile{LoopID: i, PathCounts: make(map[string]int64)}
	}

	strides := make(map[int]*strideAcc)
	var stack []*loopState

	// Path counts accumulate behind *int64 so the hot repeat case is a
	// pure (non-allocating) byte-slice-keyed lookup; the string key is
	// materialized only once per distinct path. Flattened into the
	// exported PathCounts maps at finalize.
	pathCounts := make([]map[string]*int64, len(nest.Loops))
	var pathBuf []byte

	recordPath := func(ls *loopState) {
		if len(ls.iterBlocks) == 0 {
			return
		}
		if nest.Loops[ls.id].Inner() {
			pathBuf = appendPath(pathBuf[:0], ls.iterBlocks)
			pc := pathCounts[ls.id]
			if pc == nil {
				pc = make(map[string]*int64)
				pathCounts[ls.id] = pc
			}
			if n, ok := pc[string(pathBuf)]; ok {
				*n++
			} else {
				n := new(int64)
				*n = 1
				pc[string(pathBuf)] = n
			}
		}
		ls.iterBlocks = ls.iterBlocks[:0]
	}

	// Loop states recycle through a free list: occurrences are frequent
	// (every entry from outside the loop) and a fresh dependence map per
	// occurrence was a top allocation site of a full DSE sweep. Maps are
	// cleared on reuse, or dropped when an earlier occurrence grew them
	// past any plausible steady-state size.
	var freeLS []*loopState
	newLS := func(l int) *loopState {
		if n := len(freeLS); n > 0 {
			ls := freeLS[n-1]
			freeLS = freeLS[:n-1]
			if len(ls.addrIter) > 4096 {
				ls.addrIter = make(map[uint64]depRec)
			} else {
				clear(ls.addrIter)
			}
			ls.id, ls.iter = l, 0
			ls.iterBlocks = ls.iterBlocks[:0]
			return ls
		}
		return &loopState{id: l, addrIter: make(map[uint64]depRec)}
	}

	popTo := func(depth int) {
		for len(stack) > depth {
			ls := stack[len(stack)-1]
			recordPath(ls)
			freeLS = append(freeLS, ls)
			stack = stack[:len(stack)-1]
		}
	}

	prevBlock := -1
	var chain []int // reused across instructions: loop chains are shallow
	for i := range t.Insts {
		d := &t.Insts[i]
		si := int(d.SI)
		b := cfg.BlockOf[si]
		enteredBlock := si == cfg.Blocks[b].Start && (i == 0 || b != prevBlock || isBlockReentry(cfg, t, i))
		if enteredBlock {
			p.BlockCount[b]++
		}

		// Reconcile the loop stack with the innermost loop of this block.
		inner := nest.InnermostOf[b]
		if inner == -1 {
			popTo(0)
		} else {
			// Desired stack: ancestors of inner from outermost to inner.
			chain = chain[:0]
			for l := inner; l != -1; l = nest.Loops[l].Parent {
				chain = append(chain, l)
			}
			// chain is inner..outer; reverse.
			for l, r := 0, len(chain)-1; l < r; l, r = l+1, r-1 {
				chain[l], chain[r] = chain[r], chain[l]
			}
			// Find common prefix with current stack.
			common := 0
			for common < len(stack) && common < len(chain) && stack[common].id == chain[common] {
				common++
			}
			popTo(common)
			for _, l := range chain[common:] {
				ls := newLS(l)
				stack = append(stack, ls)
				p.Loops[l].Entries++
			}
		}

		// Attribute the instruction to every active loop.
		for _, ls := range stack {
			p.Loops[ls.id].DynInsts++
		}

		// Header re-entry = new iteration of the innermost matching loop.
		if enteredBlock {
			for _, ls := range stack {
				if nest.Loops[ls.id].Header == b {
					if ls.iter > 0 {
						recordPath(ls)
					}
					ls.iter++
					p.Loops[ls.id].Iterations++
				}
			}
			if len(stack) > 0 {
				top := stack[len(stack)-1]
				if nest.Loops[top.id].Inner() {
					top.iterBlocks = append(top.iterBlocks, b)
				}
			}
		}

		// Stride + memory-dependence tracking.
		op := t.Prog.Insts[si].Op
		if op.IsMem() {
			sa := strides[si]
			if sa == nil {
				sa = &strideAcc{deltas: make(map[int64]int64)}
				strides[si] = sa
			}
			if sa.seen {
				sa.deltas[int64(d.Addr)-int64(sa.lastAddr)]++
				sa.samples++
			}
			sa.lastAddr = d.Addr
			sa.seen = true

			if len(stack) > 0 {
				top := stack[len(stack)-1]
				if rec, ok := top.addrIter[d.Addr]; ok && rec.iter < top.iter &&
					(rec.isStore || op.IsStore()) {
					p.Loops[top.id].CarriedMemDep = true
				}
				if len(top.addrIter) < maxDepTrack {
					prev, ok := top.addrIter[d.Addr]
					top.addrIter[d.Addr] = depRec{iter: top.iter, isStore: op.IsStore() || (ok && prev.isStore && prev.iter == top.iter)}
				}
			}
		}

		prevBlock = b
	}
	popTo(0)

	// Finalize loop stats.
	for i := range p.Loops {
		lp := &p.Loops[i]
		if lp.Entries > 0 {
			lp.AvgTrip = float64(lp.Iterations) / float64(lp.Entries)
		}
		if lp.Iterations > 0 {
			lp.BackProb = float64(lp.Iterations-lp.Entries) / float64(lp.Iterations)
			if lp.BackProb < 0 {
				lp.BackProb = 0
			}
		}
		var best string
		var bestN, total int64
		for k, n := range pathCounts[i] {
			lp.PathCounts[k] = *n
			total += *n
			if *n > bestN {
				best, bestN = k, *n
			}
		}
		if total > 0 {
			lp.HotPath = decodePath(best)
			lp.HotPathFrac = float64(bestN) / float64(total)
		}
	}

	// Finalize strides.
	for si, sa := range strides {
		info := StrideInfo{Samples: sa.samples}
		var bestN int64
		for delta, n := range sa.deltas {
			if n > bestN {
				info.Dominant, bestN = delta, n
			}
		}
		if sa.samples > 0 {
			info.Consistent = float64(bestN) / float64(sa.samples)
		}
		p.Strides[si] = info
	}
	return p
}

// isBlockReentry reports whether dynamic instruction i begins a fresh
// execution of its block even though the previous instruction was in the
// same block (single-block loops branching back to themselves).
func isBlockReentry(cfg *CFG, t *trace.Trace, i int) bool {
	if i == 0 {
		return true
	}
	prevSI := int(t.Insts[i-1].SI)
	curSI := int(t.Insts[i].SI)
	return prevSI >= curSI // backwards (or same) means re-entry
}

// LoopShare returns the fraction of all dynamic instructions spent in the
// given loop (including nested loops).
func (p *Profile) LoopShare(loopID int) float64 {
	if p.TotalDyn == 0 {
		return 0
	}
	return float64(p.Loops[loopID].DynInsts) / float64(p.TotalDyn)
}

func appendPath(buf []byte, blocks []int) []byte {
	var tmp [binary.MaxVarintLen64]byte
	for _, b := range blocks {
		n := binary.PutUvarint(tmp[:], uint64(b))
		buf = append(buf, tmp[:n]...)
	}
	return buf
}

func decodePath(s string) []int {
	var out []int
	b := []byte(s)
	for len(b) > 0 {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			break
		}
		out = append(out, int(v))
		b = b[n:]
	}
	return out
}

// MarkSpills flags loads/stores whose base register is the conventional
// stack pointer (R31) as register spills (paper §2.7's best-effort spill
// identification). Kernels that use a stack designate R31 by convention.
func MarkSpills(t *trace.Trace) int {
	sp := isa.R(31)
	count := 0
	for i := range t.Insts {
		d := &t.Insts[i]
		in := &t.Prog.Insts[d.SI]
		if in.Op.IsMem() && in.Src1 == sp {
			d.Flags |= trace.FlagSpill
			count++
		}
	}
	return count
}

// SortedLoopsByShare returns loop IDs ordered by descending dynamic share.
func (p *Profile) SortedLoopsByShare() []int {
	ids := make([]int, len(p.Loops))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		return p.Loops[ids[a]].DynInsts > p.Loops[ids[b]].DynInsts
	})
	return ids
}
