package ir

import (
	"encoding/binary"
	"sort"

	"exocore/internal/isa"
	"exocore/internal/trace"
)

// StrideInfo summarizes the observed address stride of one static memory
// instruction across consecutive executions inside its innermost loop.
type StrideInfo struct {
	Samples    int64
	Dominant   int64   // most frequent delta
	Consistent float64 // fraction of samples equal to Dominant
}

// Contiguous reports whether the access advances by exactly one word per
// iteration, the pattern SIMD can load/store without packing.
func (s StrideInfo) Contiguous() bool {
	return s.Samples > 0 && s.Dominant == 8 && s.Consistent >= 0.95
}

// Scalar reports whether the address is loop-invariant (stride 0).
func (s StrideInfo) Scalar() bool {
	return s.Samples > 0 && s.Dominant == 0 && s.Consistent >= 0.95
}

// Strided reports a constant non-unit stride (vectorizable with packing).
func (s StrideInfo) Strided() bool {
	return s.Samples > 0 && s.Consistent >= 0.95 && !s.Contiguous() && !s.Scalar()
}

// LoopProfile aggregates dynamic behavior of one loop.
type LoopProfile struct {
	LoopID     int
	Entries    int64 // occurrences (entries from outside the loop)
	Iterations int64
	DynInsts   int64 // dynamic instructions inside (incl. nested loops)
	// BackProb is iterations/(iterations+entries): probability control
	// stays in the loop at the latch, the Trace-P eligibility metric.
	BackProb float64
	AvgTrip  float64
	// PathCounts maps an encoded block path (one iteration of an inner
	// loop) to its frequency: the Ball-Larus-style path profile.
	PathCounts map[string]int64
	// HotPath is the most frequent iteration path (block IDs), and
	// HotPathFrac its fraction of all iterations.
	HotPath     []int
	HotPathFrac float64
	// CarriedMemDep records an observed cross-iteration memory dependence
	// (a store in one iteration, load/store to the same address in a later
	// iteration of the same occurrence).
	CarriedMemDep bool
}

// Profile is the trace-derived profile of a program: block counts, loop
// statistics, path profiles and per-instruction stride classification.
// This is the "profiling information" half of the TDG analyzer inputs.
type Profile struct {
	CFG  *CFG
	Nest *LoopNest

	BlockCount []int64
	Loops      []LoopProfile
	Strides    map[int]StrideInfo
	TotalDyn   int64
}

type strideAcc struct {
	lastAddr uint64
	seen     bool
	deltas   map[int64]int64
	samples  int64
}

type loopState struct {
	id         int
	iterBlocks []int
	// addrIter maps word address -> (iteration number << 1) | isStore,
	// bounded; used for carried-dependence detection.
	addrIter map[uint64]depRec
	iter     int64
}

type depRec struct {
	iter    int64
	isStore bool
}

const maxDepTrack = 1 << 15 // bound the per-occurrence address map

// BuildProfile derives the dynamic profile of t given its CFG and loops.
func BuildProfile(cfg *CFG, nest *LoopNest, t *trace.Trace) *Profile {
	b := NewProfileBuilder(cfg, nest)
	b.Feed(t.Insts)
	return b.Finish()
}

// ProfileBuilder accumulates a Profile incrementally from consecutive
// chunks of one dynamic trace: the streaming TDG hands it each chunk as
// it is synthesized, and the whole-trace BuildProfile is one Feed over
// the full instruction array. All carried state (the live loop stack,
// stride accumulators, path counts, the previous block/static index for
// block re-entry detection) persists across Feed calls, so partitioning
// the trace at any boundary produces the same Profile as one scan.
// Resident memory is O(static program + distinct paths + loop depth),
// never O(trace).
type ProfileBuilder struct {
	cfg  *CFG
	nest *LoopNest
	p    *Profile

	strides    map[int]*strideAcc
	stack      []*loopState
	pathCounts []map[string]*int64
	pathBuf    []byte
	freeLS     []*loopState
	chain      []int // reused across instructions: loop chains are shallow
	prevBlock  int
	prevSI     int
	first      bool // next instruction is dynamic index 0
}

// NewProfileBuilder returns a builder for one dynamic execution of the
// program cfg was built from.
func NewProfileBuilder(cfg *CFG, nest *LoopNest) *ProfileBuilder {
	p := &Profile{
		CFG:        cfg,
		Nest:       nest,
		BlockCount: make([]int64, len(cfg.Blocks)),
		Strides:    make(map[int]StrideInfo),
	}
	p.Loops = make([]LoopProfile, len(nest.Loops))
	for i := range p.Loops {
		p.Loops[i] = LoopProfile{LoopID: i, PathCounts: make(map[string]int64)}
	}
	return &ProfileBuilder{
		cfg:     cfg,
		nest:    nest,
		p:       p,
		strides: make(map[int]*strideAcc),
		// Path counts accumulate behind *int64 so the hot repeat case is
		// a pure (non-allocating) byte-slice-keyed lookup; the string key
		// is materialized only once per distinct path. Flattened into the
		// exported PathCounts maps at Finish.
		pathCounts: make([]map[string]*int64, len(nest.Loops)),
		prevBlock:  -1,
		first:      true,
	}
}

func (pb *ProfileBuilder) recordPath(ls *loopState) {
	if len(ls.iterBlocks) == 0 {
		return
	}
	if pb.nest.Loops[ls.id].Inner() {
		pb.pathBuf = appendPath(pb.pathBuf[:0], ls.iterBlocks)
		pc := pb.pathCounts[ls.id]
		if pc == nil {
			pc = make(map[string]*int64)
			pb.pathCounts[ls.id] = pc
		}
		if n, ok := pc[string(pb.pathBuf)]; ok {
			*n++
		} else {
			n := new(int64)
			*n = 1
			pc[string(pb.pathBuf)] = n
		}
	}
	ls.iterBlocks = ls.iterBlocks[:0]
}

// newLS recycles loop states through a free list: occurrences are
// frequent (every entry from outside the loop) and a fresh dependence
// map per occurrence was a top allocation site of a full DSE sweep.
// Maps are cleared on reuse, or dropped when an earlier occurrence grew
// them past any plausible steady-state size.
func (pb *ProfileBuilder) newLS(l int) *loopState {
	if n := len(pb.freeLS); n > 0 {
		ls := pb.freeLS[n-1]
		pb.freeLS = pb.freeLS[:n-1]
		if len(ls.addrIter) > 4096 {
			ls.addrIter = make(map[uint64]depRec)
		} else {
			clear(ls.addrIter)
		}
		ls.id, ls.iter = l, 0
		ls.iterBlocks = ls.iterBlocks[:0]
		return ls
	}
	return &loopState{id: l, addrIter: make(map[uint64]depRec)}
}

func (pb *ProfileBuilder) popTo(depth int) {
	for len(pb.stack) > depth {
		ls := pb.stack[len(pb.stack)-1]
		pb.recordPath(ls)
		pb.freeLS = append(pb.freeLS, ls)
		pb.stack = pb.stack[:len(pb.stack)-1]
	}
}

// Feed accumulates one chunk of consecutive dynamic instructions. Chunks
// must arrive in trace order.
func (pb *ProfileBuilder) Feed(insts []trace.DynInst) {
	cfg, nest, p := pb.cfg, pb.nest, pb.p
	p.TotalDyn += int64(len(insts))
	for i := range insts {
		d := &insts[i]
		si := int(d.SI)
		b := cfg.BlockOf[si]
		// A block is (re-)entered at its first instruction when control
		// arrived from elsewhere, or from the block's own end or later
		// (single-block loops branching back to themselves): a backwards
		// or same static step means re-entry.
		enteredBlock := si == cfg.Blocks[b].Start &&
			(pb.first || b != pb.prevBlock || pb.prevSI >= si)
		pb.first = false
		if enteredBlock {
			p.BlockCount[b]++
		}

		// Reconcile the loop stack with the innermost loop of this block.
		inner := nest.InnermostOf[b]
		if inner == -1 {
			pb.popTo(0)
		} else {
			// Desired stack: ancestors of inner from outermost to inner.
			chain := pb.chain[:0]
			for l := inner; l != -1; l = nest.Loops[l].Parent {
				chain = append(chain, l)
			}
			// chain is inner..outer; reverse.
			for l, r := 0, len(chain)-1; l < r; l, r = l+1, r-1 {
				chain[l], chain[r] = chain[r], chain[l]
			}
			pb.chain = chain
			// Find common prefix with current stack.
			common := 0
			for common < len(pb.stack) && common < len(chain) && pb.stack[common].id == chain[common] {
				common++
			}
			pb.popTo(common)
			for _, l := range chain[common:] {
				ls := pb.newLS(l)
				pb.stack = append(pb.stack, ls)
				p.Loops[l].Entries++
			}
		}

		// Attribute the instruction to every active loop.
		for _, ls := range pb.stack {
			p.Loops[ls.id].DynInsts++
		}

		// Header re-entry = new iteration of the innermost matching loop.
		if enteredBlock {
			for _, ls := range pb.stack {
				if nest.Loops[ls.id].Header == b {
					if ls.iter > 0 {
						pb.recordPath(ls)
					}
					ls.iter++
					p.Loops[ls.id].Iterations++
				}
			}
			if len(pb.stack) > 0 {
				top := pb.stack[len(pb.stack)-1]
				if nest.Loops[top.id].Inner() {
					top.iterBlocks = append(top.iterBlocks, b)
				}
			}
		}

		// Stride + memory-dependence tracking.
		op := cfg.Prog.Insts[si].Op
		if op.IsMem() {
			sa := pb.strides[si]
			if sa == nil {
				sa = &strideAcc{deltas: make(map[int64]int64)}
				pb.strides[si] = sa
			}
			if sa.seen {
				sa.deltas[int64(d.Addr)-int64(sa.lastAddr)]++
				sa.samples++
			}
			sa.lastAddr = d.Addr
			sa.seen = true

			if len(pb.stack) > 0 {
				top := pb.stack[len(pb.stack)-1]
				if rec, ok := top.addrIter[d.Addr]; ok && rec.iter < top.iter &&
					(rec.isStore || op.IsStore()) {
					p.Loops[top.id].CarriedMemDep = true
				}
				if len(top.addrIter) < maxDepTrack {
					prev, ok := top.addrIter[d.Addr]
					top.addrIter[d.Addr] = depRec{iter: top.iter, isStore: op.IsStore() || (ok && prev.isStore && prev.iter == top.iter)}
				}
			}
		}

		pb.prevBlock = b
		pb.prevSI = si
	}
}

// Finish closes open loops and finalizes the profile. The builder must
// not be fed afterwards.
func (pb *ProfileBuilder) Finish() *Profile {
	p := pb.p
	pb.popTo(0)

	// Finalize loop stats.
	for i := range p.Loops {
		lp := &p.Loops[i]
		if lp.Entries > 0 {
			lp.AvgTrip = float64(lp.Iterations) / float64(lp.Entries)
		}
		if lp.Iterations > 0 {
			lp.BackProb = float64(lp.Iterations-lp.Entries) / float64(lp.Iterations)
			if lp.BackProb < 0 {
				lp.BackProb = 0
			}
		}
		var best string
		var bestN, total int64
		for k, n := range pb.pathCounts[i] {
			lp.PathCounts[k] = *n
			total += *n
			if *n > bestN {
				best, bestN = k, *n
			}
		}
		if total > 0 {
			lp.HotPath = decodePath(best)
			lp.HotPathFrac = float64(bestN) / float64(total)
		}
	}

	// Finalize strides. Ties on frequency break toward the smaller
	// magnitude (then negative) delta: map iteration order must not leak
	// into the profile, which is compared byte-for-byte across the
	// materialized and streamed build paths.
	for si, sa := range pb.strides {
		info := StrideInfo{Samples: sa.samples}
		var bestN int64
		for delta, n := range sa.deltas {
			if n > bestN || (n == bestN && bestN > 0 && lessDelta(delta, info.Dominant)) {
				info.Dominant, bestN = delta, n
			}
		}
		if sa.samples > 0 {
			info.Consistent = float64(bestN) / float64(sa.samples)
		}
		p.Strides[si] = info
	}
	return p
}

// lessDelta orders stride deltas for dominant-stride tie-breaking:
// smaller absolute value first, negative before positive on equal
// magnitude.
func lessDelta(a, b int64) bool {
	aa, ab := a, b
	if aa < 0 {
		aa = -aa
	}
	if ab < 0 {
		ab = -ab
	}
	if aa != ab {
		return aa < ab
	}
	return a < b
}

// LoopShare returns the fraction of all dynamic instructions spent in the
// given loop (including nested loops).
func (p *Profile) LoopShare(loopID int) float64 {
	if p.TotalDyn == 0 {
		return 0
	}
	return float64(p.Loops[loopID].DynInsts) / float64(p.TotalDyn)
}

func appendPath(buf []byte, blocks []int) []byte {
	var tmp [binary.MaxVarintLen64]byte
	for _, b := range blocks {
		n := binary.PutUvarint(tmp[:], uint64(b))
		buf = append(buf, tmp[:n]...)
	}
	return buf
}

func decodePath(s string) []int {
	var out []int
	b := []byte(s)
	for len(b) > 0 {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			break
		}
		out = append(out, int(v))
		b = b[n:]
	}
	return out
}

// MarkSpills flags loads/stores whose base register is the conventional
// stack pointer (R31) as register spills (paper §2.7's best-effort spill
// identification). Kernels that use a stack designate R31 by convention.
func MarkSpills(t *trace.Trace) int {
	sp := isa.R(31)
	count := 0
	for i := range t.Insts {
		d := &t.Insts[i]
		in := &t.Prog.Insts[d.SI]
		if in.Op.IsMem() && in.Src1 == sp {
			d.Flags |= trace.FlagSpill
			count++
		}
	}
	return count
}

// SortedLoopsByShare returns loop IDs ordered by descending dynamic share.
func (p *Profile) SortedLoopsByShare() []int {
	ids := make([]int, len(p.Loops))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		return p.Loops[ids[a]].DynInsts > p.Loops[ids[b]].DynInsts
	})
	return ids
}
