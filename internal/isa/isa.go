// Package isa defines the small load/store RISC instruction set used by the
// trace-generation substrate. The TDG methodology (Nowatzki &
// Sankaralingam, ASPLOS 2016) is ISA-agnostic: it only needs a dynamic
// instruction stream with data, memory and control dependences. This ISA is
// deliberately minimal — just enough operation classes to exercise every
// program behavior the paper's accelerators specialize for (data-parallel
// loops, separable access/execute, non-critical control, hot traces, and
// irregular pointer-chasing code).
package isa

import "fmt"

// Reg names an architectural register. Registers 0..NumIntRegs-1 are the
// integer file (R0 is hardwired to zero); FP registers follow.
type Reg uint8

// Register-file layout.
const (
	NumIntRegs = 32
	NumFpRegs  = 32
	NumRegs    = NumIntRegs + NumFpRegs

	// RZ is the hardwired zero register.
	RZ Reg = 0
	// NoReg marks an unused operand slot.
	NoReg Reg = 255
)

// R returns the i'th integer register.
func R(i int) Reg {
	if i < 0 || i >= NumIntRegs {
		panic(fmt.Sprintf("isa: integer register %d out of range", i))
	}
	return Reg(i)
}

// F returns the i'th floating-point register.
func F(i int) Reg {
	if i < 0 || i >= NumFpRegs {
		panic(fmt.Sprintf("isa: fp register %d out of range", i))
	}
	return Reg(NumIntRegs + i)
}

// IsFp reports whether r is a floating-point register.
func (r Reg) IsFp() bool { return r >= NumIntRegs && r != NoReg }

// Valid reports whether r names a real register.
func (r Reg) Valid() bool { return r < NumRegs }

// String implements fmt.Stringer.
func (r Reg) String() string {
	switch {
	case r == NoReg:
		return "-"
	case r.IsFp():
		return fmt.Sprintf("f%d", int(r)-NumIntRegs)
	default:
		return fmt.Sprintf("r%d", r)
	}
}

// Op is an opcode.
type Op uint8

// Opcodes. Immediate variants take Imm as the second source.
const (
	Nop Op = iota

	// Integer ALU.
	Add
	AddI
	Sub
	SubI
	And
	Or
	Xor
	Shl
	ShlI
	Shr
	ShrI
	SltI // set-less-than immediate
	Slt  // set-less-than
	MovI // dst = Imm
	Mov  // dst = src1

	// Integer multiply / divide.
	Mul
	MulI
	Div
	Rem

	// Floating point.
	FAdd
	FSub
	FMul
	FDiv
	FMA   // dst = src1*src2 + dst (fused; produced by transforms)
	FCvt  // int -> fp
	FSlt  // fp compare, integer dst
	FMov  // fp move
	FMovI // fp load immediate (Imm reinterpreted as float bits via ImmF)

	// Memory. Address = int(src1) + Imm. Ld writes dst; St reads src2.
	Ld  // dst = mem[src1+Imm] (64-bit word)
	St  // mem[src1+Imm] = src2
	LdF // fp load
	StF // fp store

	// Control. Branch target/jump target is Imm (static instruction index
	// after label resolution). Conditional branches compare src1 vs src2.
	Beq
	Bne
	Blt
	Bge
	Jmp

	// Vector ops (emitted only by the SIMD transform, never by the
	// functional front-end): semantically "VecLanes-wide" versions.
	VAdd
	VMul
	VFAdd
	VFMul
	VFDiv
	VLd
	VSt
	VPack   // lane pack/unpack shuffle
	VMask   // mask/blend for if-converted control
	VPred   // predicate-setting compare
	VReduce // horizontal reduction

	numOps
)

// Class groups opcodes by the functional unit and dependence semantics the
// microarchitectural models care about.
type Class uint8

// Operation classes.
const (
	ClassNop Class = iota
	ClassIntAlu
	ClassIntMul
	ClassIntDiv
	ClassFpAdd
	ClassFpMul
	ClassFpDiv
	ClassLoad
	ClassStore
	ClassBranch
	ClassJump
	ClassVecAlu
	ClassVecMul
	ClassVecMem
)

type opInfo struct {
	name    string
	class   Class
	latency int // execute latency in cycles (memory ops overridden by cache)
}

var opTable = [numOps]opInfo{
	Nop:  {"nop", ClassNop, 1},
	Add:  {"add", ClassIntAlu, 1},
	AddI: {"addi", ClassIntAlu, 1},
	Sub:  {"sub", ClassIntAlu, 1},
	SubI: {"subi", ClassIntAlu, 1},
	And:  {"and", ClassIntAlu, 1},
	Or:   {"or", ClassIntAlu, 1},
	Xor:  {"xor", ClassIntAlu, 1},
	Shl:  {"shl", ClassIntAlu, 1},
	ShlI: {"shli", ClassIntAlu, 1},
	Shr:  {"shr", ClassIntAlu, 1},
	ShrI: {"shri", ClassIntAlu, 1},
	SltI: {"slti", ClassIntAlu, 1},
	Slt:  {"slt", ClassIntAlu, 1},
	MovI: {"movi", ClassIntAlu, 1},
	Mov:  {"mov", ClassIntAlu, 1},

	Mul:  {"mul", ClassIntMul, 3},
	MulI: {"muli", ClassIntMul, 3},
	Div:  {"div", ClassIntDiv, 12},
	Rem:  {"rem", ClassIntDiv, 12},

	FAdd:  {"fadd", ClassFpAdd, 3},
	FSub:  {"fsub", ClassFpAdd, 3},
	FMul:  {"fmul", ClassFpMul, 4},
	FDiv:  {"fdiv", ClassFpDiv, 12},
	FMA:   {"fma", ClassFpMul, 4},
	FCvt:  {"fcvt", ClassFpAdd, 2},
	FSlt:  {"fslt", ClassFpAdd, 2},
	FMov:  {"fmov", ClassFpAdd, 1},
	FMovI: {"fmovi", ClassFpAdd, 1},

	Ld:  {"ld", ClassLoad, 0},
	St:  {"st", ClassStore, 0},
	LdF: {"ldf", ClassLoad, 0},
	StF: {"stf", ClassStore, 0},

	Beq: {"beq", ClassBranch, 1},
	Bne: {"bne", ClassBranch, 1},
	Blt: {"blt", ClassBranch, 1},
	Bge: {"bge", ClassBranch, 1},
	Jmp: {"jmp", ClassJump, 1},

	VAdd:    {"vadd", ClassVecAlu, 1},
	VMul:    {"vmul", ClassVecMul, 4},
	VFAdd:   {"vfadd", ClassVecAlu, 3},
	VFMul:   {"vfmul", ClassVecMul, 4},
	VFDiv:   {"vfdiv", ClassVecMul, 12},
	VLd:     {"vld", ClassVecMem, 0},
	VSt:     {"vst", ClassVecMem, 0},
	VPack:   {"vpack", ClassVecAlu, 1},
	VMask:   {"vmask", ClassVecAlu, 1},
	VPred:   {"vpred", ClassVecAlu, 1},
	VReduce: {"vreduce", ClassVecAlu, 2},
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if int(o) < len(opTable) && opTable[o].name != "" {
		return opTable[o].name
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// ClassOf returns the operation class of o.
func (o Op) ClassOf() Class { return opTable[o].class }

// Latency returns the nominal execute latency of o in cycles. Memory
// operations return 0 here; their latency comes from the cache model.
func (o Op) Latency() int { return opTable[o].latency }

// IsMem reports whether o accesses memory.
func (o Op) IsMem() bool {
	c := o.ClassOf()
	return c == ClassLoad || c == ClassStore || c == ClassVecMem
}

// IsLoad reports whether o is a load.
func (o Op) IsLoad() bool { return o == Ld || o == LdF || o == VLd }

// IsStore reports whether o is a store.
func (o Op) IsStore() bool { return o == St || o == StF || o == VSt }

// IsBranch reports whether o is a conditional branch.
func (o Op) IsBranch() bool { return o.ClassOf() == ClassBranch }

// IsCtrl reports whether o transfers control (branch or jump).
func (o Op) IsCtrl() bool {
	c := o.ClassOf()
	return c == ClassBranch || c == ClassJump
}

// IsFp reports whether o executes on a floating-point unit.
func (o Op) IsFp() bool {
	switch o.ClassOf() {
	case ClassFpAdd, ClassFpMul, ClassFpDiv:
		return true
	}
	return false
}

// IsVec reports whether o is a vector operation.
func (o Op) IsVec() bool {
	switch o.ClassOf() {
	case ClassVecAlu, ClassVecMul, ClassVecMem:
		return true
	}
	return false
}

// String name list of all classes, for reports.
func (c Class) String() string {
	switch c {
	case ClassNop:
		return "nop"
	case ClassIntAlu:
		return "int-alu"
	case ClassIntMul:
		return "int-mul"
	case ClassIntDiv:
		return "int-div"
	case ClassFpAdd:
		return "fp-add"
	case ClassFpMul:
		return "fp-mul"
	case ClassFpDiv:
		return "fp-div"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	case ClassJump:
		return "jump"
	case ClassVecAlu:
		return "vec-alu"
	case ClassVecMul:
		return "vec-mul"
	case ClassVecMem:
		return "vec-mem"
	}
	return "unknown"
}

// Inst is one static instruction. Imm doubles as the immediate operand, the
// branch/jump target (a static instruction index) and, for FMovI, the raw
// IEEE-754 bits of a float64 immediate.
type Inst struct {
	Op   Op
	Dst  Reg
	Src1 Reg
	Src2 Reg
	Imm  int64
}

// HasDst reports whether the instruction writes a register.
func (in *Inst) HasDst() bool { return in.Dst != NoReg && in.Dst != RZ }

// Srcs appends the valid source registers of in to dst and returns it.
func (in *Inst) Srcs(dst []Reg) []Reg {
	if in.Src1 != NoReg && in.Src1 != RZ {
		dst = append(dst, in.Src1)
	}
	if in.Src2 != NoReg && in.Src2 != RZ {
		dst = append(dst, in.Src2)
	}
	return dst
}

// VecLanes is the SIMD width modeled throughout: 256-bit vectors of 64-bit
// elements, matching the paper's "256-bit SIMD" configuration.
const VecLanes = 4

// String renders the instruction in a readable assembler-ish form.
func (in *Inst) String() string {
	switch {
	case in.Op == Jmp:
		return fmt.Sprintf("%s @%d", in.Op, in.Imm)
	case in.Op.IsBranch():
		return fmt.Sprintf("%s %s,%s @%d", in.Op, in.Src1, in.Src2, in.Imm)
	case in.Op.IsStore():
		return fmt.Sprintf("%s %s,[%s%+d]", in.Op, in.Src2, in.Src1, in.Imm)
	case in.Op.IsLoad():
		return fmt.Sprintf("%s %s,[%s%+d]", in.Op, in.Dst, in.Src1, in.Imm)
	case in.Op == MovI || in.Op == FMovI:
		return fmt.Sprintf("%s %s,%d", in.Op, in.Dst, in.Imm)
	default:
		return fmt.Sprintf("%s %s,%s,%s,%d", in.Op, in.Dst, in.Src1, in.Src2, in.Imm)
	}
}
