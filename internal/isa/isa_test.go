package isa

import (
	"testing"
	"testing/quick"
)

func TestRegisterConstructors(t *testing.T) {
	if R(0) != RZ {
		t.Fatalf("R(0) = %v, want RZ", R(0))
	}
	if got := R(5).String(); got != "r5" {
		t.Errorf("R(5).String() = %q, want r5", got)
	}
	if got := F(3).String(); got != "f3" {
		t.Errorf("F(3).String() = %q, want f3", got)
	}
	if !F(0).IsFp() {
		t.Error("F(0).IsFp() = false, want true")
	}
	if R(31).IsFp() {
		t.Error("R(31).IsFp() = true, want false")
	}
	if NoReg.Valid() {
		t.Error("NoReg.Valid() = true, want false")
	}
	if NoReg.IsFp() {
		t.Error("NoReg.IsFp() = true, want false")
	}
}

func TestRegisterOutOfRangePanics(t *testing.T) {
	for _, f := range []func(){
		func() { R(32) },
		func() { R(-1) },
		func() { F(32) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range register")
				}
			}()
			f()
		}()
	}
}

func TestOpClasses(t *testing.T) {
	cases := []struct {
		op   Op
		want Class
	}{
		{Add, ClassIntAlu},
		{Mul, ClassIntMul},
		{Div, ClassIntDiv},
		{FAdd, ClassFpAdd},
		{FMul, ClassFpMul},
		{FDiv, ClassFpDiv},
		{Ld, ClassLoad},
		{StF, ClassStore},
		{Beq, ClassBranch},
		{Jmp, ClassJump},
		{VFMul, ClassVecMul},
		{VLd, ClassVecMem},
	}
	for _, c := range cases {
		if got := c.op.ClassOf(); got != c.want {
			t.Errorf("%v.ClassOf() = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestOpPredicates(t *testing.T) {
	if !Ld.IsMem() || !Ld.IsLoad() || Ld.IsStore() {
		t.Error("Ld predicates wrong")
	}
	if !St.IsMem() || !St.IsStore() || St.IsLoad() {
		t.Error("St predicates wrong")
	}
	if !Beq.IsBranch() || !Beq.IsCtrl() {
		t.Error("Beq predicates wrong")
	}
	if Jmp.IsBranch() || !Jmp.IsCtrl() {
		t.Error("Jmp predicates wrong")
	}
	if !FMul.IsFp() || Add.IsFp() {
		t.Error("IsFp predicates wrong")
	}
	if !VAdd.IsVec() || Add.IsVec() {
		t.Error("IsVec predicates wrong")
	}
}

func TestLatenciesPositiveForNonMem(t *testing.T) {
	for op := Op(1); op < numOps; op++ {
		if op.IsMem() {
			if op.Latency() != 0 {
				t.Errorf("%v: memory op latency should come from cache model", op)
			}
			continue
		}
		if op.Latency() <= 0 {
			t.Errorf("%v has non-positive latency %d", op, op.Latency())
		}
	}
}

func TestAllOpsHaveNames(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if op.String() == "" || op.String()[0] == 'o' && op.String()[1] == 'p' && op.String()[2] == '(' {
			t.Errorf("op %d has no name", op)
		}
	}
}

func TestInstSrcs(t *testing.T) {
	in := Inst{Op: Add, Dst: R(1), Src1: R(2), Src2: R(3)}
	srcs := in.Srcs(nil)
	if len(srcs) != 2 || srcs[0] != R(2) || srcs[1] != R(3) {
		t.Errorf("Srcs = %v, want [r2 r3]", srcs)
	}
	in2 := Inst{Op: AddI, Dst: R(1), Src1: RZ, Src2: NoReg}
	if got := in2.Srcs(nil); len(got) != 0 {
		t.Errorf("Srcs with RZ/NoReg = %v, want empty", got)
	}
	in3 := Inst{Op: MovI, Dst: RZ}
	if in3.HasDst() {
		t.Error("writes to RZ should not count as a destination")
	}
}

func TestInstStringForms(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: Ld, Dst: R(2), Src1: R(1), Imm: 8}, "ld r2,[r1+8]"},
		{Inst{Op: St, Src1: R(1), Src2: R(3), Imm: -8, Dst: NoReg}, "st r3,[r1-8]"},
		{Inst{Op: Jmp, Imm: 7, Dst: NoReg, Src1: NoReg, Src2: NoReg}, "jmp @7"},
		{Inst{Op: Bne, Src1: R(1), Src2: RZ, Imm: 3, Dst: NoReg}, "bne r1,r0 @3"},
		{Inst{Op: MovI, Dst: R(4), Imm: 42, Src1: NoReg, Src2: NoReg}, "movi r4,42"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestRegRoundTripProperty(t *testing.T) {
	f := func(n uint8) bool {
		i := int(n % NumIntRegs)
		j := int(n % NumFpRegs)
		return !R(i).IsFp() && F(j).IsFp() && R(i).Valid() && F(j).Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
