package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sync"
)

// Logger is a small leveled logger for driver narration, backed by
// log/slog with a line-oriented handler: every record renders as one
// "tool: msg key=value ..." line emitted in a single Write, so progress
// narration from concurrent workers can never interleave mid-line.
//
// Verbosity maps -v style flags to slog levels: 0 logs warnings and
// errors only, 1 (-v) adds info, 2 (-vv) adds debug. A nil *Logger
// drops everything.
type Logger struct {
	s         *slog.Logger
	verbosity int
}

// NewLogger creates a logger writing tool-prefixed lines to w.
func NewLogger(w io.Writer, tool string, verbosity int) *Logger {
	level := slog.LevelWarn
	switch {
	case verbosity >= 2:
		level = slog.LevelDebug
	case verbosity == 1:
		level = slog.LevelInfo
	}
	h := &lineHandler{w: w, tool: tool, level: level, mu: &sync.Mutex{}}
	return &Logger{s: slog.New(h), verbosity: verbosity}
}

// Verbosity returns the verbosity the logger was built with.
func (l *Logger) Verbosity() int {
	if l == nil {
		return 0
	}
	return l.verbosity
}

// Slog exposes the underlying slog.Logger (nil for a nil Logger).
func (l *Logger) Slog() *slog.Logger {
	if l == nil {
		return nil
	}
	return l.s
}

// Debug logs at -vv level. kvs are alternating key/value pairs as in
// slog.
func (l *Logger) Debug(msg string, kvs ...any) {
	if l == nil {
		return
	}
	l.s.Debug(msg, kvs...)
}

// DebugCtx is Debug with the request/trace ID (if ctx carries one)
// appended as a trailing req= attribute, so log lines and flight-
// recorder trace fragments correlate by ID.
func (l *Logger) DebugCtx(ctx context.Context, msg string, kvs ...any) {
	if l == nil {
		return
	}
	l.s.Debug(msg, withReq(ctx, kvs)...)
}

// InfoCtx is Info with the request/trace ID appended (see DebugCtx).
func (l *Logger) InfoCtx(ctx context.Context, msg string, kvs ...any) {
	if l == nil {
		return
	}
	l.s.Info(msg, withReq(ctx, kvs)...)
}

// withReq appends ("req", id) when ctx carries a request ID.
func withReq(ctx context.Context, kvs []any) []any {
	if id := RequestID(ctx); id != "" {
		return append(kvs, "req", id)
	}
	return kvs
}

// Info logs at -v level.
func (l *Logger) Info(msg string, kvs ...any) {
	if l == nil {
		return
	}
	l.s.Info(msg, kvs...)
}

// Warn logs unconditionally (shown without -v).
func (l *Logger) Warn(msg string, kvs ...any) {
	if l == nil {
		return
	}
	l.s.Warn(msg, kvs...)
}

// Error logs unconditionally.
func (l *Logger) Error(msg string, kvs ...any) {
	if l == nil {
		return
	}
	l.s.Error(msg, kvs...)
}

// lineHandler renders records as single atomic lines. It deliberately
// omits timestamps: driver narration diffs cleanly across runs and the
// span tracer is the timing source of record.
type lineHandler struct {
	mu    *sync.Mutex
	w     io.Writer
	tool  string
	level slog.Level
	attrs []slog.Attr
}

func (h *lineHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= h.level
}

func (h *lineHandler) Handle(_ context.Context, r slog.Record) error {
	buf := make([]byte, 0, 128)
	buf = append(buf, h.tool...)
	buf = append(buf, ": "...)
	if r.Level >= slog.LevelWarn {
		buf = append(buf, r.Level.String()...)
		buf = append(buf, ": "...)
	}
	buf = append(buf, r.Message...)
	for _, a := range h.attrs {
		buf = appendAttr(buf, a)
	}
	r.Attrs(func(a slog.Attr) bool {
		buf = appendAttr(buf, a)
		return true
	})
	buf = append(buf, '\n')
	h.mu.Lock()
	_, err := h.w.Write(buf)
	h.mu.Unlock()
	return err
}

func appendAttr(buf []byte, a slog.Attr) []byte {
	if a.Equal(slog.Attr{}) {
		return buf
	}
	buf = append(buf, ' ')
	buf = append(buf, a.Key...)
	buf = append(buf, '=')
	return fmt.Appendf(buf, "%v", a.Value.Resolve().Any())
}

func (h *lineHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := *h
	nh.attrs = append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return &nh
}

func (h *lineHandler) WithGroup(string) slog.Handler { return h }
