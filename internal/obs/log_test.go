package obs

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"
)

func TestLoggerLevels(t *testing.T) {
	cases := []struct {
		verbosity         int
		wantInfo, wantDbg bool
	}{
		{0, false, false},
		{1, true, false},
		{2, true, true},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		l := NewLogger(&buf, "tool", c.verbosity)
		l.Debug("dbg")
		l.Info("inf")
		l.Warn("wrn")
		out := buf.String()
		if got := strings.Contains(out, "inf"); got != c.wantInfo {
			t.Errorf("verbosity %d: info logged = %v, want %v", c.verbosity, got, c.wantInfo)
		}
		if got := strings.Contains(out, "dbg"); got != c.wantDbg {
			t.Errorf("verbosity %d: debug logged = %v, want %v", c.verbosity, got, c.wantDbg)
		}
		if !strings.Contains(out, "tool: WARN: wrn") {
			t.Errorf("verbosity %d: warn missing or unprefixed: %q", c.verbosity, out)
		}
	}
}

func TestLoggerAttrsOneLine(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "dse", 1)
	l.Info("stage done", "stage", "trace", "ms", 12)
	got := buf.String()
	if got != "dse: stage done stage=trace ms=12\n" {
		t.Errorf("line = %q", got)
	}
}

func TestNilLoggerIsInert(t *testing.T) {
	var l *Logger
	l.Debug("a")
	l.Info("b")
	l.Warn("c")
	l.Error("d")
	if l.Verbosity() != 0 || l.Slog() != nil {
		t.Error("nil logger leaked state")
	}
}

// chunkRecorder records each Write call separately, so the test can
// detect torn (multi-write) lines.
type chunkRecorder struct {
	mu     sync.Mutex
	writes []string
}

func (c *chunkRecorder) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.writes = append(c.writes, string(p))
	c.mu.Unlock()
	return len(p), nil
}

var _ io.Writer = (*chunkRecorder)(nil)

func TestLoggerConcurrentWritesAreWholeLines(t *testing.T) {
	rec := &chunkRecorder{}
	l := NewLogger(rec, "t", 1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Info("progress", "worker", i, "step", j)
			}
		}(i)
	}
	wg.Wait()
	if len(rec.writes) != 800 {
		t.Fatalf("writes = %d, want 800 (one per record)", len(rec.writes))
	}
	for _, w := range rec.writes {
		if !strings.HasPrefix(w, "t: progress worker=") || !strings.HasSuffix(w, "\n") {
			t.Fatalf("torn or malformed line %q", w)
		}
		if strings.Count(w, "\n") != 1 {
			t.Fatalf("multiple lines in one write: %q", w)
		}
	}
}
