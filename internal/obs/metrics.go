package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The nil *Counter is
// inert, so instruments resolved from a nil Registry cost one branch.
type Counter struct {
	v atomic.Int64
}

// NewCounter creates a standalone counter (not attached to a registry) —
// for subsystems that keep their own counter fields but want the shared
// instrument type.
func NewCounter() *Counter { return &Counter{} }

// Add increments the counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// SetMax raises the gauge to v if v is larger — a monotone high-water
// mark safe under concurrent writers (eg. the peak resident µDG bytes
// across parallel evaluations).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution: observation v lands in the
// first bucket whose bound satisfies v <= bound, or the overflow bucket.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1; last is overflow
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.observeN(v, 1)
}

// observeN records n identical observations of v in one shot — the bulk
// path behind the runtime sampler, which folds runtime/metrics bucket
// deltas in without n individual Observe calls.
func (h *Histogram) observeN(v, n int64) {
	if h == nil || n <= 0 {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(n)
	h.count.Add(n)
	h.sum.Add(v * n)
}

// Quantile returns the bucket-interpolated q-quantile (0 < q < 1) of the
// observed distribution: the bucket holding the target rank is found
// from the cumulative counts, then the value is linearly interpolated
// inside the bucket's [lower, upper) bound window. Values in the
// overflow bucket clamp to the highest finite bound (an underestimate,
// as with any fixed-bucket histogram). Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts := make([]int64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return QuantileFromBuckets(h.bounds, counts, q)
}

// QuantileFromBuckets is Histogram.Quantile over an exported snapshot
// (MetricPoint.Bounds/Counts): counts has one trailing overflow entry
// beyond bounds.
func QuantileFromBuckets(bounds, counts []int64, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(counts) == 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if float64(cum+c) >= rank && c > 0 {
			if i >= len(bounds) { // overflow bucket: clamp
				return float64(bounds[len(bounds)-1])
			}
			var lo float64
			if i > 0 {
				lo = float64(bounds[i-1])
			}
			hi := float64(bounds[i])
			frac := (rank - float64(cum)) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return float64(bounds[len(bounds)-1])
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Default bucket bounds. Wall-clock bounds are nanoseconds from 10µs to
// 10s; size bounds are power-of-four element counts.
var (
	DefaultWallBounds = []int64{1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10}
	DefaultSizeBounds = []int64{16, 64, 256, 1024, 4096, 16384, 65536}
)

// Registry holds named instruments. Lookups create on first use and
// return the same instrument for the same name afterwards, so concurrent
// subsystems sharing a registry aggregate into one metric. A nil
// *Registry hands out nil (inert) instruments.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds (ascending) on first use. A later call for the same name
// with different bounds is a programming error — the observations would
// silently land in the first caller's buckets — and panics rather than
// mis-aggregating.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{
			bounds:  append([]int64(nil), bounds...),
			buckets: make([]atomic.Int64, len(bounds)+1),
		}
		r.hists[name] = h
		return h
	}
	if len(bounds) == 0 {
		return h // nil bounds on an existing name is a lookup
	}
	if len(h.bounds) != len(bounds) {
		panic(fmt.Sprintf("obs: histogram %q redeclared with %d bounds (registered with %d)",
			name, len(bounds), len(h.bounds)))
	}
	for i, b := range bounds {
		if h.bounds[i] != b {
			panic(fmt.Sprintf("obs: histogram %q redeclared with bound[%d]=%d (registered with %d)",
				name, i, b, h.bounds[i]))
		}
	}
	return h
}

// MetricPoint is one instrument's snapshot, JSON-stable for the
// versioned result schema. Kind is "counter", "gauge" or "histogram";
// counters and gauges carry Value, histograms carry Count/Sum plus
// parallel Bounds/Counts (Counts has one extra overflow entry).
type MetricPoint struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Value  int64   `json:"value,omitempty"`
	Count  int64   `json:"count,omitempty"`
	Sum    int64   `json:"sum,omitempty"`
	Bounds []int64 `json:"bounds,omitempty"`
	Counts []int64 `json:"counts,omitempty"`
}

// Quantile returns the bucket-interpolated q-quantile of a histogram
// point's snapshot (0 for other kinds or an empty histogram).
func (p MetricPoint) Quantile(q float64) float64 {
	if p.Kind != "histogram" {
		return 0
	}
	return QuantileFromBuckets(p.Bounds, p.Counts, q)
}

// Snapshot returns every instrument's current value, sorted by name (and
// kind for the pathological case of one name used as two kinds), so
// emitted JSON is byte-stable.
func (r *Registry) Snapshot() []MetricPoint {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MetricPoint, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, MetricPoint{Name: name, Kind: "counter", Value: c.Value()})
	}
	for name, g := range r.gauges {
		out = append(out, MetricPoint{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, h := range r.hists {
		counts := make([]int64, len(h.buckets))
		for i := range h.buckets {
			counts[i] = h.buckets[i].Load()
		}
		out = append(out, MetricPoint{
			Name: name, Kind: "histogram",
			Count: h.Count(), Sum: h.Sum(),
			Bounds: append([]int64(nil), h.bounds...), Counts: counts,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}
