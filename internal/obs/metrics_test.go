package obs

import (
	"sync"
	"testing"
)

func TestNilRegistryHandsOutInertInstruments(t *testing.T) {
	var r *Registry
	r.Counter("c").Add(5)
	r.Gauge("g").Set(7)
	r.Histogram("h", DefaultWallBounds).Observe(123)
	if got := r.Counter("c").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
	if snap := r.Snapshot(); snap != nil {
		t.Errorf("nil registry snapshot = %v", snap)
	}
}

func TestRegistrySameNameSameInstrument(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("same counter name returned distinct instruments")
	}
	r.Counter("x").Add(2)
	r.Counter("x").Add(3)
	if got := r.Counter("x").Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{10, 100})
	for _, v := range []int64{1, 10, 11, 100, 1000} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	p := snap[0]
	if p.Kind != "histogram" || p.Count != 5 || p.Sum != 1122 {
		t.Errorf("point = %+v", p)
	}
	want := []int64{2, 2, 1} // ≤10, ≤100, overflow
	for i, c := range want {
		if p.Counts[i] != c {
			t.Errorf("bucket %d = %d, want %d (%+v)", i, p.Counts[i], c, p)
		}
	}
}

func TestSnapshotSortedAndStable(t *testing.T) {
	r := NewRegistry()
	r.Gauge("b").Set(1)
	r.Counter("a").Add(1)
	r.Histogram("c", DefaultSizeBounds).Observe(3)
	snap := r.Snapshot()
	names := []string{"a", "b", "c"}
	for i, p := range snap {
		if p.Name != names[i] {
			t.Fatalf("snapshot order = %v", snap)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("n").Add(1)
				r.Histogram("h", DefaultWallBounds).Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}
