// Package obs is the zero-dependency observability layer threaded
// through the evaluation stack: lightweight span tracing exported as
// Chrome trace-event JSON (loadable in Perfetto or chrome://tracing), a
// registry of named counters/gauges/histograms snapshotted into the
// versioned result schema, and a small leveled line logger backed by
// log/slog.
//
// Everything is built so the *off* path is nil-check cheap: a nil
// *Tracer hands out inert Spans, a nil *Registry hands out inert
// instruments, and a nil *Logger drops records — instrumented code never
// branches on configuration, it just calls through.
package obs
