package obs

import (
	"fmt"
	"io"
	"strings"
)

// PromContentType is the Prometheus text exposition format version this
// package renders — the Content-Type a scrape endpoint must declare.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromName sanitizes an instrument name into a legal Prometheus metric
// name deterministically: every character outside [a-zA-Z0-9_:] becomes
// '_' (so "stage.trace.calls" → "stage_trace_calls"), and a leading
// digit gains a '_' prefix. Two registry names that sanitize to the same
// series name render as two samples of that series — keep registry names
// distinct under this mapping.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteProm renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4). Counters gain the conventional
// _total suffix; histograms render as cumulative _bucket series (with a
// closing le="+Inf"), _sum and _count. Points arrive sorted from
// Registry.Snapshot, so output is byte-deterministic for a given
// snapshot.
func WriteProm(w io.Writer, points []MetricPoint) error {
	for _, p := range points {
		name := PromName(p.Name)
		var err error
		switch p.Kind {
		case "counter":
			_, err = fmt.Fprintf(w, "# TYPE %s_total counter\n%s_total %d\n", name, name, p.Value)
		case "gauge":
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, p.Value)
		case "histogram":
			err = writePromHistogram(w, name, p)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, p MetricPoint) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum int64
	for i, b := range p.Bounds {
		if i < len(p.Counts) {
			cum += p.Counts[i]
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b, cum); err != nil {
			return err
		}
	}
	// The overflow bucket closes the cumulative series at +Inf.
	if len(p.Counts) > len(p.Bounds) {
		cum += p.Counts[len(p.Bounds)]
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
		name, cum, name, p.Sum, name, p.Count)
	return err
}
