package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"stage.trace.calls": "stage_trace_calls",
		"go.heap_inuse":     "go_heap_inuse",
		"serve:latency":     "serve:latency",
		"a-b c/d":           "a_b_c_d",
		"9lives":            "_9lives",
		"ok_name":           "ok_name",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("stage.eval.calls").Add(7)
	r.Gauge("evalcache.entries").Set(3)
	h := r.Histogram("serve.latency_ns", []int64{10, 100})
	for _, v := range []int64{1, 10, 11, 100, 1000} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := WriteProm(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE evalcache_entries gauge\nevalcache_entries 3\n",
		"# TYPE serve_latency_ns histogram\n",
		"serve_latency_ns_bucket{le=\"10\"} 2\n",
		"serve_latency_ns_bucket{le=\"100\"} 4\n",  // cumulative
		"serve_latency_ns_bucket{le=\"+Inf\"} 5\n", // closes at total
		"serve_latency_ns_sum 1122\n",
		"serve_latency_ns_count 5\n",
		"# TYPE stage_eval_calls_total counter\nstage_eval_calls_total 7\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Counters carry the _total suffix; the raw name must not appear as a
	// sample on its own line.
	if strings.Contains(out, "\nstage_eval_calls ") {
		t.Errorf("counter rendered without _total suffix:\n%s", out)
	}

	// Deterministic: same snapshot renders byte-identically.
	var buf2 bytes.Buffer
	if err := WriteProm(&buf2, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("exposition not deterministic across identical snapshots")
	}
}

func TestQuantileFromBuckets(t *testing.T) {
	// Uniform 1..1000 into bounds 100..1000: each bucket holds 100
	// observations, so interpolation recovers the exact quantile.
	bounds := []int64{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
	r := NewRegistry()
	h := r.Histogram("u", bounds)
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{
		{0.5, 500}, {0.95, 950}, {0.99, 990}, {0.1, 100}, {1.0, 1000},
	} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}

	// All mass in the overflow bucket clamps to the highest finite bound.
	h2 := r.Histogram("o", []int64{10, 20})
	h2.Observe(1000)
	if got := h2.Quantile(0.5); got != 20 {
		t.Errorf("overflow Quantile = %v, want 20", got)
	}

	// Empty histogram: 0.
	h3 := r.Histogram("e", []int64{10})
	if got := h3.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	var hn *Histogram
	if got := hn.Quantile(0.5); got != 0 {
		t.Errorf("nil Quantile = %v, want 0", got)
	}

	// The MetricPoint path agrees with the live histogram.
	for _, p := range r.Snapshot() {
		if p.Name != "u" {
			continue
		}
		if got := p.Quantile(0.95); got != 950 {
			t.Errorf("MetricPoint.Quantile = %v, want 950", got)
		}
	}
}

func TestHistogramBoundsMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", []int64{10, 100})

	// Same bounds: fine. Nil bounds: a lookup, also fine.
	r.Histogram("h", []int64{10, 100})
	if got := r.Histogram("h", nil); got == nil {
		t.Fatal("nil-bounds lookup returned nil")
	}

	mustPanic := func(name string, bounds []int64) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("Histogram(%q, %v) did not panic", name, bounds)
			}
		}()
		r.Histogram(name, bounds)
	}
	mustPanic("h", []int64{10, 100, 1000}) // different length
	mustPanic("h", []int64{10, 200})       // different bound value
}
