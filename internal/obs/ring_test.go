package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestRingTracerDropOldest(t *testing.T) {
	tr := NewRingTracer("test", 4)
	for i := 0; i < 10; i++ {
		sp := tr.Begin("stage", fmt.Sprintf("work%d", i))
		sp.End()
	}
	if got := tr.Dropped(); got != 6 {
		t.Errorf("Dropped() = %d, want 6", got)
	}
	if got := tr.Len(); got != 4 {
		t.Errorf("Len() = %d, want 4", got)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("ValidateTrace: %v\n%s", err, buf.String())
	}
	if n != 4 {
		t.Fatalf("retained spans = %d, want 4", n)
	}
	// The retained window is the newest four.
	for i := 6; i < 10; i++ {
		want := fmt.Sprintf("work%d", i)
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("retained window missing %q", want)
		}
	}
}

func TestRingTracerZeroCapIsUnbounded(t *testing.T) {
	tr := NewRingTracer("test", 0)
	for i := 0; i < 100; i++ {
		tr.Begin("stage", "work").End()
	}
	if tr.Dropped() != 0 || tr.Len() != 100 {
		t.Fatalf("cap 0: dropped=%d len=%d, want 0/100", tr.Dropped(), tr.Len())
	}
}

func TestRingTracerWraparoundStaysValid(t *testing.T) {
	// Nested families pushed through a small ring: eviction can remove a
	// parent while its children survive, and the surviving subset must
	// still be a properly nested trace.
	tr := NewRingTracer("test", 5)
	for i := 0; i < 8; i++ {
		top := tr.Begin("stage", "outer")
		seg := top.Child("segment", "mid")
		seg.Child("transform", "leaf").End()
		seg.End()
		top.End()
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("ValidateTrace after wraparound: %v\n%s", err, buf.String())
	}
	if n != 5 {
		t.Fatalf("retained spans = %d, want 5", n)
	}
	if got := tr.Dropped(); got != 24-5 {
		t.Errorf("Dropped() = %d, want %d", got, 24-5)
	}
}

func TestRingTracerEvictedSpanIsSafe(t *testing.T) {
	tr := NewRingTracer("test", 1)
	a := tr.Begin("stage", "a")
	// The child evicts a's event from the one-slot ring.
	b := a.Child("segment", "b")
	a.Arg("k", "v") // no-op on an evicted event; must not corrupt b
	b.End()
	a.End() // evicted, but must still release lane 0
	c := tr.Begin("stage", "c")
	if c.lane != 0 {
		t.Fatalf("lane after evicted End = %d, want 0 (lane not released)", c.lane)
	}
	c.End()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("ValidateTrace: %v", err)
	}
}

func TestRingTracerConcurrent(t *testing.T) {
	tr := NewRingTracer("test", 16)
	const workers, spans = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := WithRequestID(context.Background(), fmt.Sprintf("r%d", w))
			for i := 0; i < spans; i++ {
				sp := tr.BeginCtx(ctx, "stage", "work")
				sp.Child("segment", "inner").ArgInt("i", int64(i)).End()
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	total := int64(workers * spans * 2)
	if got := tr.Dropped() + int64(tr.Len()); got != total {
		t.Errorf("dropped+retained = %d, want %d", got, total)
	}
	if tr.Len() > 16 {
		t.Errorf("Len() = %d exceeds cap 16", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("ValidateTrace: %v\n%s", err, buf.String())
	}
}

func TestWriteRequestExtractsFragment(t *testing.T) {
	tr := NewRingTracer("test", 64)
	ctxA := WithRequestID(context.Background(), "req-a")
	ctxB := WithRequestID(context.Background(), "req-b")

	spA := tr.BeginCtx(ctxA, "http", "GET /v1/evaluate")
	spB := tr.BeginCtx(ctxB, "http", "GET /healthz")
	chA := spA.Child("stage", "eval") // inherits req-a
	chA.End()
	spB.End()
	spA.End()
	tr.Begin("stage", "untagged").End()

	var buf bytes.Buffer
	n, err := tr.WriteRequest(&buf, "req-a")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("fragment spans = %d, want 2", n)
	}
	if _, err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("ValidateTrace: %v\n%s", err, buf.String())
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev["ph"] != "X" {
			continue
		}
		args, _ := ev["args"].(map[string]any)
		if args == nil || args["req"] != "req-a" {
			t.Errorf("span %v: req arg = %v, want req-a", ev["name"], args)
		}
		if ev["name"] == "GET /healthz" || ev["name"] == "untagged" {
			t.Errorf("foreign span %v leaked into fragment", ev["name"])
		}
	}

	// Unknown ID: empty but valid fragment.
	buf.Reset()
	if n, err := tr.WriteRequest(&buf, "req-zzz"); err != nil || n != 0 {
		t.Fatalf("unknown id: n=%d err=%v", n, err)
	}
	if _, err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("ValidateTrace empty fragment: %v", err)
	}

	// Nil tracer and empty ID both degrade to an empty array.
	var nilTr *Tracer
	buf.Reset()
	if n, err := nilTr.WriteRequest(&buf, "x"); err != nil || n != 0 {
		t.Fatalf("nil tracer: n=%d err=%v", n, err)
	}
	if buf.String() != "[]\n" {
		t.Fatalf("nil tracer wrote %q, want []", buf.String())
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if got := RequestID(ctx); got != "" {
		t.Errorf("RequestID(bare ctx) = %q, want empty", got)
	}
	if got := WithRequestID(ctx, ""); got != ctx {
		t.Error("WithRequestID with empty id should return ctx unchanged")
	}
	tagged := WithRequestID(ctx, "r42")
	if got := RequestID(tagged); got != "r42" {
		t.Errorf("RequestID = %q, want r42", got)
	}
	// Begin (no ctx) leaves spans untagged even on a ctx-capable tracer.
	tr := NewRingTracer("test", 8)
	tr.Begin("stage", "plain").End()
	var buf bytes.Buffer
	if n, err := tr.WriteRequest(&buf, "r42"); err != nil || n != 0 {
		t.Fatalf("untagged span matched: n=%d err=%v", n, err)
	}
}
