package obs

import (
	"math"
	"runtime/metrics"
	"time"
)

// Runtime-metric instrument names. All land in the shared registry, so
// they ride the same Snapshot / Prometheus exposition as every other
// instrument (go.goroutines → go_goroutines, and so on).
const (
	GoGoroutines     = "go.goroutines"
	GoHeapInuseBytes = "go.heap_inuse_bytes"
	GoMemTotalBytes  = "go.mem_total_bytes"
	GoGCCycles       = "go.gc_cycles"
	GoGCPauseNS      = "go.gc_pause_ns"
	GoSchedLatencyNS = "go.sched_latency_ns"
)

// GoPauseBounds buckets GC pauses and scheduling latencies: nanosecond
// bounds from 1µs to 1s (these distributions live well below the 10µs
// floor of DefaultWallBounds).
var GoPauseBounds = []int64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}

// runtime/metrics sample names the sampler reads, in the fixed order the
// sample slice is laid out.
const (
	smpGoroutines = iota
	smpHeapObjects
	smpHeapUnused
	smpMemTotal
	smpGCCycles
	smpGCPauses
	smpSchedLat
	smpCount
)

var runtimeSampleNames = [smpCount]string{
	smpGoroutines:  "/sched/goroutines:goroutines",
	smpHeapObjects: "/memory/classes/heap/objects:bytes",
	smpHeapUnused:  "/memory/classes/heap/unused:bytes",
	smpMemTotal:    "/memory/classes/total:bytes",
	smpGCCycles:    "/gc/cycles/total:gc-cycles",
	smpGCPauses:    "/gc/pauses:seconds",
	smpSchedLat:    "/sched/latencies:seconds",
}

// RuntimeSampler polls runtime/metrics into go.* instruments on a shared
// registry: heap in-use and total memory gauges, goroutine and GC-cycle
// counts, and GC-pause / scheduler-latency histograms (folded in as
// bucket deltas between polls, so restarts and long gaps never
// double-count). Start with StartRuntimeSampler; Stop to halt.
type RuntimeSampler struct {
	gGoroutines *Gauge
	gHeapInuse  *Gauge
	gMemTotal   *Gauge
	gGCCycles   *Gauge
	hGCPause    *Histogram
	hSchedLat   *Histogram

	samples []metrics.Sample
	// Previous cumulative runtime histogram counts, for delta folding.
	prevPause, prevSched []uint64

	stop chan struct{}
	done chan struct{}
}

// StartRuntimeSampler begins polling runtime/metrics into reg every
// interval (minimum 10ms; 0 defaults to 5s). One sample is taken
// synchronously before it returns, so the go.* series exist immediately.
// Call Stop to halt the sampler goroutine.
func StartRuntimeSampler(reg *Registry, interval time.Duration) *RuntimeSampler {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	s := &RuntimeSampler{
		gGoroutines: reg.Gauge(GoGoroutines),
		gHeapInuse:  reg.Gauge(GoHeapInuseBytes),
		gMemTotal:   reg.Gauge(GoMemTotalBytes),
		gGCCycles:   reg.Gauge(GoGCCycles),
		hGCPause:    reg.Histogram(GoGCPauseNS, GoPauseBounds),
		hSchedLat:   reg.Histogram(GoSchedLatencyNS, GoPauseBounds),
		samples:     make([]metrics.Sample, smpCount),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	for i := range s.samples {
		s.samples[i].Name = runtimeSampleNames[i]
	}
	s.sample()
	go s.loop(interval)
	return s
}

// Stop halts the sampler goroutine and waits for it to exit. Idempotent
// is not required; call once (nil-safe).
func (s *RuntimeSampler) Stop() {
	if s == nil {
		return
	}
	close(s.stop)
	<-s.done
}

func (s *RuntimeSampler) loop(interval time.Duration) {
	defer close(s.done)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.sample()
		}
	}
}

// sample reads every runtime metric once and updates the instruments.
func (s *RuntimeSampler) sample() {
	metrics.Read(s.samples)
	if v := &s.samples[smpGoroutines].Value; v.Kind() == metrics.KindUint64 {
		s.gGoroutines.Set(int64(v.Uint64()))
	}
	var heapInuse int64
	if v := &s.samples[smpHeapObjects].Value; v.Kind() == metrics.KindUint64 {
		heapInuse += int64(v.Uint64())
	}
	if v := &s.samples[smpHeapUnused].Value; v.Kind() == metrics.KindUint64 {
		heapInuse += int64(v.Uint64())
	}
	if heapInuse > 0 {
		s.gHeapInuse.Set(heapInuse)
	}
	if v := &s.samples[smpMemTotal].Value; v.Kind() == metrics.KindUint64 {
		s.gMemTotal.Set(int64(v.Uint64()))
	}
	if v := &s.samples[smpGCCycles].Value; v.Kind() == metrics.KindUint64 {
		s.gGCCycles.Set(int64(v.Uint64()))
	}
	if v := &s.samples[smpGCPauses].Value; v.Kind() == metrics.KindFloat64Histogram {
		s.prevPause = foldHistogramDelta(s.hGCPause, v.Float64Histogram(), s.prevPause)
	}
	if v := &s.samples[smpSchedLat].Value; v.Kind() == metrics.KindFloat64Histogram {
		s.prevSched = foldHistogramDelta(s.hSchedLat, v.Float64Histogram(), s.prevSched)
	}
}

// foldHistogramDelta adds the growth of a cumulative runtime/metrics
// histogram since the previous poll into an obs histogram, valuing each
// runtime bucket at its upper boundary in nanoseconds (clamped for the
// +Inf tail). Returns the new cumulative counts to carry forward.
func foldHistogramDelta(h *Histogram, rh *metrics.Float64Histogram, prev []uint64) []uint64 {
	counts := rh.Counts
	if len(prev) != len(counts) {
		// First poll (or a runtime resize): baseline without observing, so
		// pauses from before the sampler started are not attributed to it.
		return append([]uint64(nil), counts...)
	}
	for i, c := range counts {
		d := int64(c - prev[i])
		if d <= 0 {
			continue
		}
		// Buckets[i+1] is the bucket's upper boundary in seconds.
		ub := rh.Buckets[i+1]
		if math.IsInf(ub, +1) {
			ub = rh.Buckets[i]
		}
		h.observeN(int64(ub*1e9), d)
		prev[i] = c
	}
	copy(prev, counts)
	return prev
}
