package obs

import (
	"runtime"
	"testing"
	"time"
)

func TestRuntimeSampler(t *testing.T) {
	r := NewRegistry()
	s := StartRuntimeSampler(r, 10*time.Millisecond)
	defer s.Stop()

	// The constructor samples synchronously, so the series exist now.
	if got := r.Gauge(GoGoroutines).Value(); got < 1 {
		t.Errorf("%s = %d, want >= 1", GoGoroutines, got)
	}
	if got := r.Gauge(GoHeapInuseBytes).Value(); got <= 0 {
		t.Errorf("%s = %d, want > 0", GoHeapInuseBytes, got)
	}
	if got := r.Gauge(GoMemTotalBytes).Value(); got <= 0 {
		t.Errorf("%s = %d, want > 0", GoMemTotalBytes, got)
	}

	// Force GC cycles and let at least one poll fold the pause histogram.
	runtime.GC()
	runtime.GC()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if r.Histogram(GoGCPauseNS, nil).Count() > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := r.Histogram(GoGCPauseNS, nil).Count(); got == 0 {
		t.Errorf("%s never observed a pause after runtime.GC", GoGCPauseNS)
	}
	if got := r.Gauge(GoGCCycles).Value(); got < 2 {
		t.Errorf("%s = %d, want >= 2", GoGCCycles, got)
	}
}

func TestRuntimeSamplerStopNilSafe(t *testing.T) {
	var s *RuntimeSampler
	s.Stop() // must not panic
}
