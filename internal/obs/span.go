package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Tracer collects start/end spans against one monotonic clock and writes
// them out as a Chrome trace-event JSON array. Safe for concurrent use
// from any number of goroutines.
//
// A Tracer runs in one of two retention modes. NewTracer retains every
// span until Write — the right shape for a CLI tool that records one
// bounded run and dumps it at exit. NewRingTracer retains at most the
// last cap spans, dropping the oldest (and counting the drops) as new
// ones arrive — the flight-recorder shape that a long-lived daemon can
// leave on forever at O(cap) memory.
//
// A nil *Tracer is the disabled tracer: Begin returns an inert Span and
// every downstream call is a nil-check. Instrumentation sites therefore
// never test whether tracing is on.
type Tracer struct {
	proc  string
	start time.Time

	mu    sync.Mutex
	cap   int         // ring capacity; 0 = retain everything
	ring  []spanEvent // circular when cap > 0, append-only otherwise
	head  int         // ring slot of the oldest retained event
	n     int         // retained events (ring mode)
	base  int64       // seq of the oldest retained event
	drops int64       // events evicted by the ring

	lanes []bool // lane occupancy; index = trace tid
}

// spanEvent is one complete ("X") trace event being built.
type spanEvent struct {
	name    string
	cat     string
	req     string // request/trace ID; children inherit it
	lane    int32
	startNS int64
	durNS   int64 // -1 while the span is open
	args    []Arg
}

// Arg is one key/value annotation on a span.
type Arg struct {
	Key string
	Val string
}

// NewTracer creates an unbounded tracer; proc names the process in the
// trace viewer (usually the tool name).
func NewTracer(proc string) *Tracer {
	return &Tracer{proc: proc, start: time.Now()}
}

// NewRingTracer creates a flight-recorder tracer that retains at most
// cap spans, evicting the oldest as new spans begin. Evictions are
// counted (Dropped); an evicted span's later End/Arg calls are no-ops
// except that a top-level span still releases its lane. cap <= 0 falls
// back to unbounded retention.
func NewRingTracer(proc string, cap int) *Tracer {
	if cap <= 0 {
		return NewTracer(proc)
	}
	return &Tracer{proc: proc, start: time.Now(), cap: cap}
}

// ctxKey carries the per-request trace ID through a context.
type ctxKey struct{}

// WithRequestID returns a context carrying the given request/trace ID.
// Spans begun via BeginCtx under it (and their children) are tagged with
// the ID, which is what lets WriteRequest extract one request's span
// tree from a shared flight-recorder tracer.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, id)
}

// RequestID returns the request/trace ID carried by ctx, or "".
func RequestID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}

// Begin opens a new top-level span. Top-level spans are assigned the
// lowest free lane (trace tid), so concurrent spans render side by side
// while sequential ones share a track; nested work belongs in
// Span.Child. End the span to release its lane.
func (t *Tracer) Begin(cat, name string) Span {
	return t.beginReq(cat, name, "")
}

// BeginCtx is Begin with the request/trace ID (if any) taken from ctx:
// the span and all its children are tagged with the ID for WriteRequest.
func (t *Tracer) BeginCtx(ctx context.Context, cat, name string) Span {
	if t == nil {
		return Span{}
	}
	return t.beginReq(cat, name, RequestID(ctx))
}

func (t *Tracer) beginReq(cat, name, req string) Span {
	if t == nil {
		return Span{}
	}
	now := int64(time.Since(t.start))
	t.mu.Lock()
	lane := int32(0)
	for ; int(lane) < len(t.lanes) && t.lanes[lane]; lane++ {
	}
	if int(lane) == len(t.lanes) {
		t.lanes = append(t.lanes, true)
	} else {
		t.lanes[lane] = true
	}
	seq := t.push(cat, name, req, lane, now)
	t.mu.Unlock()
	return Span{t: t, seq: seq, lane: lane, owns: true}
}

// push appends an open event and returns its sequence number; the caller
// holds t.mu. In ring mode a full buffer evicts its oldest event.
func (t *Tracer) push(cat, name, req string, lane int32, startNS int64) int64 {
	ev := spanEvent{
		name: name, cat: cat, req: req, lane: lane, startNS: startNS, durNS: -1,
	}
	if t.cap == 0 {
		t.ring = append(t.ring, ev)
		return int64(len(t.ring)) - 1
	}
	if t.ring == nil {
		t.ring = make([]spanEvent, t.cap)
	}
	if t.n < t.cap {
		t.ring[(t.head+t.n)%t.cap] = ev
		t.n++
	} else {
		t.ring[t.head] = ev
		t.head = (t.head + 1) % t.cap
		t.base++
		t.drops++
	}
	return t.base + int64(t.n) - 1
}

// lookup resolves a sequence number to its retained event, or nil if the
// ring has evicted it; the caller holds t.mu.
func (t *Tracer) lookup(seq int64) *spanEvent {
	if t.cap == 0 {
		return &t.ring[seq]
	}
	if seq < t.base {
		return nil
	}
	return &t.ring[(t.head+int(seq-t.base))%t.cap]
}

// Dropped returns the number of spans evicted by the ring so far.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drops
}

// Len returns the number of spans currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cap == 0 {
		return len(t.ring)
	}
	return t.n
}

// Span is one open (or finished) trace span. The zero Span is inert:
// Child returns another inert Span, Arg and End do nothing, so spans can
// be threaded unconditionally through code that may run untraced.
type Span struct {
	t    *Tracer
	seq  int64
	lane int32
	owns bool // this span acquired its lane and must release it
}

// Active reports whether the span records anything (ie. tracing is on).
func (s Span) Active() bool { return s.t != nil }

// Child opens a span nested under s, on the same lane and tagged with
// the same request ID. Children must end before their parent for the
// trace to nest correctly.
func (s Span) Child(cat, name string) Span {
	if s.t == nil {
		return Span{}
	}
	now := int64(time.Since(s.t.start))
	s.t.mu.Lock()
	req := ""
	if ev := s.t.lookup(s.seq); ev != nil {
		req = ev.req
	}
	seq := s.t.push(cat, name, req, s.lane, now)
	s.t.mu.Unlock()
	return Span{t: s.t, seq: seq, lane: s.lane}
}

// Arg annotates the span with a key/value pair and returns it for
// chaining.
func (s Span) Arg(key, val string) Span {
	if s.t == nil {
		return s
	}
	s.t.mu.Lock()
	if ev := s.t.lookup(s.seq); ev != nil {
		ev.args = append(ev.args, Arg{Key: key, Val: val})
	}
	s.t.mu.Unlock()
	return s
}

// ArgInt annotates the span with an integer value.
func (s Span) ArgInt(key string, v int64) Span {
	if s.t == nil {
		return s
	}
	return s.Arg(key, fmt.Sprint(v))
}

// End closes the span, fixing its duration; a top-level span also
// releases its lane (even if the ring has already evicted the event).
// End on an already-ended or inert span is a no-op.
func (s Span) End() {
	if s.t == nil {
		return
	}
	now := int64(time.Since(s.t.start))
	s.t.mu.Lock()
	if ev := s.t.lookup(s.seq); ev != nil {
		if ev.durNS < 0 {
			ev.durNS = now - ev.startNS
			if s.owns {
				s.t.lanes[s.lane] = false
			}
		}
	} else if s.owns {
		s.t.lanes[s.lane] = false
	}
	s.t.mu.Unlock()
}

// traceEvent is the Chrome trace-event wire format (the JSON Array
// Format of the trace-event spec; ts/dur are microseconds).
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	TID  int32             `json:"tid"`
	TS   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// render converts one retained event to the wire format; open spans get
// their duration measured up to now and an "unfinished" arg.
func (ev *spanEvent) render(nowNS int64) traceEvent {
	dur := ev.durNS
	var args map[string]string
	if dur < 0 {
		dur = nowNS - ev.startNS
		args = map[string]string{"unfinished": "true"}
	}
	if ev.req != "" {
		if args == nil {
			args = make(map[string]string, len(ev.args)+1)
		}
		args["req"] = ev.req
	}
	if len(ev.args) > 0 {
		if args == nil {
			args = make(map[string]string, len(ev.args))
		}
		for _, a := range ev.args {
			args[a.Key] = a.Val
		}
	}
	d := float64(dur) / 1e3
	return traceEvent{
		Name: ev.name, Cat: ev.cat, Ph: "X", PID: 1, TID: ev.lane,
		TS: float64(ev.startNS) / 1e3, Dur: &d, Args: args,
	}
}

// snapshot renders the retained events (oldest first) matching filter
// (nil = all); the caller holds t.mu.
func (t *Tracer) snapshot(nowNS int64, filter func(*spanEvent) bool) []traceEvent {
	count := len(t.ring)
	if t.cap != 0 {
		count = t.n
	}
	out := make([]traceEvent, 0, count+1)
	out = append(out, traceEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]string{"name": t.proc},
	})
	for i := 0; i < count; i++ {
		ev := &t.ring[i]
		if t.cap != 0 {
			ev = &t.ring[(t.head+i)%t.cap]
		}
		if filter == nil || filter(ev) {
			out = append(out, ev.render(nowNS))
		}
	}
	return out
}

// Write emits every retained span as a Chrome trace-event JSON array.
// Spans still open are emitted with their duration measured up to now
// and an "unfinished" arg. Write may be called more than once; each call
// snapshots the current state. In ring mode only the retained window is
// emitted — evicted spans are gone (see Dropped).
func (t *Tracer) Write(w io.Writer) error {
	if t == nil {
		return nil
	}
	now := int64(time.Since(t.start))
	t.mu.Lock()
	out := t.snapshot(now, nil)
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteRequest emits the trace fragment of one request: every retained
// span tagged with the given request ID (via BeginCtx under
// WithRequestID, plus inherited children). The fragment is a complete,
// ValidateTrace-clean Chrome trace-event array on its own. Returns the
// number of spans written.
func (t *Tracer) WriteRequest(w io.Writer, id string) (int, error) {
	if t == nil || id == "" {
		_, err := w.Write([]byte("[]\n"))
		return 0, err
	}
	now := int64(time.Since(t.start))
	t.mu.Lock()
	out := t.snapshot(now, func(ev *spanEvent) bool { return ev.req == id })
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	return len(out) - 1, enc.Encode(out)
}

// ValidateTrace parses data as a Chrome trace-event JSON array and
// checks the structural invariants this package guarantees: every entry
// is an "X" complete event (or "M" metadata), has non-negative ts/dur,
// and within each (pid, tid) track the complete events are properly
// nested — no partial overlap. It returns the number of complete spans.
// Shared by tests and the trace-smoke gate in scripts/.
func ValidateTrace(data []byte) (int, error) {
	var events []traceEvent
	if err := json.Unmarshal(data, &events); err != nil {
		return 0, fmt.Errorf("trace is not a JSON event array: %w", err)
	}
	type key struct {
		pid int
		tid int32
	}
	byTrack := make(map[key][]traceEvent)
	spans := 0
	for i, ev := range events {
		switch ev.Ph {
		case "M":
			continue
		case "X":
		default:
			return 0, fmt.Errorf("event %d: unexpected phase %q", i, ev.Ph)
		}
		if ev.Name == "" {
			return 0, fmt.Errorf("event %d: missing name", i)
		}
		if ev.TS < 0 || ev.Dur == nil || *ev.Dur < 0 {
			return 0, fmt.Errorf("event %d (%s): bad ts/dur", i, ev.Name)
		}
		spans++
		byTrack[key{ev.PID, ev.TID}] = append(byTrack[key{ev.PID, ev.TID}], ev)
	}
	for k, evs := range byTrack {
		// Sort by start; ties put the longer (outer) span first.
		sortEvents(evs)
		type open struct {
			name string
			end  float64
		}
		var stack []open
		for _, ev := range evs {
			end := ev.TS + *ev.Dur
			for len(stack) > 0 && ev.TS >= stack[len(stack)-1].end {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 {
				if top := stack[len(stack)-1]; end > top.end {
					return 0, fmt.Errorf(
						"track %d/%d: span %q [%f,%f) partially overlaps %q (ends %f)",
						k.pid, k.tid, ev.Name, ev.TS, end, top.name, top.end)
				}
			}
			stack = append(stack, open{ev.Name, end})
		}
	}
	return spans, nil
}

func sortEvents(evs []traceEvent) {
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].TS != evs[j].TS {
			return evs[i].TS < evs[j].TS
		}
		return *evs[i].Dur > *evs[j].Dur // outer (longer) span first
	})
}
