package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Tracer collects start/end spans against one monotonic clock and writes
// them out as a Chrome trace-event JSON array. Safe for concurrent use
// from any number of goroutines.
//
// A nil *Tracer is the disabled tracer: Begin returns an inert Span and
// every downstream call is a nil-check. Instrumentation sites therefore
// never test whether tracing is on.
type Tracer struct {
	proc  string
	start time.Time

	mu     sync.Mutex
	events []spanEvent
	lanes  []bool // lane occupancy; index = trace tid
}

// spanEvent is one complete ("X") trace event being built.
type spanEvent struct {
	name    string
	cat     string
	lane    int32
	startNS int64
	durNS   int64 // -1 while the span is open
	args    []Arg
}

// Arg is one key/value annotation on a span.
type Arg struct {
	Key string
	Val string
}

// NewTracer creates a tracer; proc names the process in the trace viewer
// (usually the tool name).
func NewTracer(proc string) *Tracer {
	return &Tracer{proc: proc, start: time.Now()}
}

// Begin opens a new top-level span. Top-level spans are assigned the
// lowest free lane (trace tid), so concurrent spans render side by side
// while sequential ones share a track; nested work belongs in
// Span.Child. End the span to release its lane.
func (t *Tracer) Begin(cat, name string) Span {
	if t == nil {
		return Span{}
	}
	now := int64(time.Since(t.start))
	t.mu.Lock()
	lane := int32(0)
	for ; int(lane) < len(t.lanes) && t.lanes[lane]; lane++ {
	}
	if int(lane) == len(t.lanes) {
		t.lanes = append(t.lanes, true)
	} else {
		t.lanes[lane] = true
	}
	idx := t.push(cat, name, lane, now)
	t.mu.Unlock()
	return Span{t: t, idx: idx, lane: lane, owns: true}
}

// push appends an open event; the caller holds t.mu.
func (t *Tracer) push(cat, name string, lane int32, startNS int64) int32 {
	t.events = append(t.events, spanEvent{
		name: name, cat: cat, lane: lane, startNS: startNS, durNS: -1,
	})
	return int32(len(t.events) - 1)
}

// Span is one open (or finished) trace span. The zero Span is inert:
// Child returns another inert Span, Arg and End do nothing, so spans can
// be threaded unconditionally through code that may run untraced.
type Span struct {
	t    *Tracer
	idx  int32
	lane int32
	owns bool // this span acquired its lane and must release it
}

// Active reports whether the span records anything (ie. tracing is on).
func (s Span) Active() bool { return s.t != nil }

// Child opens a span nested under s, on the same lane. Children must end
// before their parent for the trace to nest correctly.
func (s Span) Child(cat, name string) Span {
	if s.t == nil {
		return Span{}
	}
	now := int64(time.Since(s.t.start))
	s.t.mu.Lock()
	idx := s.t.push(cat, name, s.lane, now)
	s.t.mu.Unlock()
	return Span{t: s.t, idx: idx, lane: s.lane}
}

// Arg annotates the span with a key/value pair and returns it for
// chaining.
func (s Span) Arg(key, val string) Span {
	if s.t == nil {
		return s
	}
	s.t.mu.Lock()
	ev := &s.t.events[s.idx]
	ev.args = append(ev.args, Arg{Key: key, Val: val})
	s.t.mu.Unlock()
	return s
}

// ArgInt annotates the span with an integer value.
func (s Span) ArgInt(key string, v int64) Span {
	if s.t == nil {
		return s
	}
	return s.Arg(key, fmt.Sprint(v))
}

// End closes the span, fixing its duration; a top-level span also
// releases its lane. End on an already-ended or inert span is a no-op.
func (s Span) End() {
	if s.t == nil {
		return
	}
	now := int64(time.Since(s.t.start))
	s.t.mu.Lock()
	ev := &s.t.events[s.idx]
	if ev.durNS < 0 {
		ev.durNS = now - ev.startNS
		if s.owns {
			s.t.lanes[s.lane] = false
		}
	}
	s.t.mu.Unlock()
}

// traceEvent is the Chrome trace-event wire format (the JSON Array
// Format of the trace-event spec; ts/dur are microseconds).
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	TID  int32             `json:"tid"`
	TS   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// Write emits every span as a Chrome trace-event JSON array. Spans still
// open are emitted with their duration measured up to now and an
// "unfinished" arg. Write may be called more than once; each call
// snapshots the current state.
func (t *Tracer) Write(w io.Writer) error {
	if t == nil {
		return nil
	}
	now := int64(time.Since(t.start))
	t.mu.Lock()
	out := make([]traceEvent, 0, len(t.events)+1)
	out = append(out, traceEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]string{"name": t.proc},
	})
	for _, ev := range t.events {
		dur := ev.durNS
		var args map[string]string
		if dur < 0 {
			dur = now - ev.startNS
			args = map[string]string{"unfinished": "true"}
		}
		if len(ev.args) > 0 {
			if args == nil {
				args = make(map[string]string, len(ev.args))
			}
			for _, a := range ev.args {
				args[a.Key] = a.Val
			}
		}
		d := float64(dur) / 1e3
		out = append(out, traceEvent{
			Name: ev.name, Cat: ev.cat, Ph: "X", PID: 1, TID: ev.lane,
			TS: float64(ev.startNS) / 1e3, Dur: &d, Args: args,
		})
	}
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ValidateTrace parses data as a Chrome trace-event JSON array and
// checks the structural invariants this package guarantees: every entry
// is an "X" complete event (or "M" metadata), has non-negative ts/dur,
// and within each (pid, tid) track the complete events are properly
// nested — no partial overlap. It returns the number of complete spans.
// Shared by tests and the trace-smoke gate in scripts/.
func ValidateTrace(data []byte) (int, error) {
	var events []traceEvent
	if err := json.Unmarshal(data, &events); err != nil {
		return 0, fmt.Errorf("trace is not a JSON event array: %w", err)
	}
	type key struct {
		pid int
		tid int32
	}
	byTrack := make(map[key][]traceEvent)
	spans := 0
	for i, ev := range events {
		switch ev.Ph {
		case "M":
			continue
		case "X":
		default:
			return 0, fmt.Errorf("event %d: unexpected phase %q", i, ev.Ph)
		}
		if ev.Name == "" {
			return 0, fmt.Errorf("event %d: missing name", i)
		}
		if ev.TS < 0 || ev.Dur == nil || *ev.Dur < 0 {
			return 0, fmt.Errorf("event %d (%s): bad ts/dur", i, ev.Name)
		}
		spans++
		byTrack[key{ev.PID, ev.TID}] = append(byTrack[key{ev.PID, ev.TID}], ev)
	}
	for k, evs := range byTrack {
		// Sort by start; ties put the longer (outer) span first.
		sortEvents(evs)
		type open struct {
			name string
			end  float64
		}
		var stack []open
		for _, ev := range evs {
			end := ev.TS + *ev.Dur
			for len(stack) > 0 && ev.TS >= stack[len(stack)-1].end {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 {
				if top := stack[len(stack)-1]; end > top.end {
					return 0, fmt.Errorf(
						"track %d/%d: span %q [%f,%f) partially overlaps %q (ends %f)",
						k.pid, k.tid, ev.Name, ev.TS, end, top.name, top.end)
				}
			}
			stack = append(stack, open{ev.Name, end})
		}
	}
	return spans, nil
}

func sortEvents(evs []traceEvent) {
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].TS != evs[j].TS {
			return evs[i].TS < evs[j].TS
		}
		return *evs[i].Dur > *evs[j].Dur // outer (longer) span first
	})
}
