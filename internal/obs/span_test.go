package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin("cat", "top")
	if sp.Active() {
		t.Fatal("nil tracer produced an active span")
	}
	ch := sp.Child("cat", "child").Arg("k", "v").ArgInt("n", 3)
	ch.End()
	sp.End()
	if err := tr.Write(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestSpanNestingAndLanes(t *testing.T) {
	tr := NewTracer("test")
	top := tr.Begin("stage", "eval")
	seg := top.Child("segment", "unit").Arg("hit", "false")
	tf := seg.Child("transform", "SIMD@L1").ArgInt("loop", 1)
	tf.End()
	seg.End()
	top.End()
	// A second top-level span after the first ended reuses lane 0.
	second := tr.Begin("stage", "trace")
	second.End()

	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("ValidateTrace: %v\n%s", err, buf.String())
	}
	if n != 4 {
		t.Fatalf("spans = %d, want 4", n)
	}

	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	// All four spans share lane 0 (sequential tops + nested children).
	for _, ev := range events {
		if ev["ph"] == "X" && ev["tid"].(float64) != 0 {
			t.Errorf("span %v on lane %v, want 0", ev["name"], ev["tid"])
		}
	}
	if !strings.Contains(buf.String(), `"hit":"false"`) {
		t.Error("span args missing from output")
	}
	if !strings.Contains(buf.String(), `"process_name"`) {
		t.Error("process_name metadata missing")
	}
}

func TestConcurrentTopSpansGetDistinctLanes(t *testing.T) {
	tr := NewTracer("test")
	const n = 8
	var wg, began sync.WaitGroup
	began.Add(n)
	lanes := make([]int32, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := tr.Begin("stage", "work")
			lanes[i] = sp.lane
			began.Done()
			began.Wait() // hold every span open until all have begun
			sp.Child("segment", "inner").End()
			sp.End()
		}(i)
	}
	wg.Wait()

	seen := make(map[int32]bool)
	for _, l := range lanes {
		if seen[l] {
			t.Fatalf("lane %d assigned to two concurrent spans", l)
		}
		seen[l] = true
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("ValidateTrace: %v", err)
	}
}

func TestWriteReportsUnfinishedSpans(t *testing.T) {
	tr := NewTracer("test")
	tr.Begin("stage", "open") // never ended
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"unfinished":"true"`) {
		t.Errorf("open span not marked unfinished: %s", buf.String())
	}
	if _, err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("ValidateTrace: %v", err)
	}
}

func TestValidateTraceRejectsOverlap(t *testing.T) {
	raw := `[
	 {"name":"a","ph":"X","pid":1,"tid":0,"ts":0,"dur":10},
	 {"name":"b","ph":"X","pid":1,"tid":0,"ts":5,"dur":10}
	]`
	if _, err := ValidateTrace([]byte(raw)); err == nil {
		t.Fatal("partial overlap not rejected")
	}
	// Same spans on different tracks are fine.
	raw = `[
	 {"name":"a","ph":"X","pid":1,"tid":0,"ts":0,"dur":10},
	 {"name":"b","ph":"X","pid":1,"tid":1,"ts":5,"dur":10}
	]`
	if n, err := ValidateTrace([]byte(raw)); err != nil || n != 2 {
		t.Fatalf("distinct tracks: n=%d err=%v", n, err)
	}
	if _, err := ValidateTrace([]byte(`{"not":"an array"}`)); err == nil {
		t.Fatal("non-array accepted")
	}
}
