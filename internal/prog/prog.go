// Package prog provides the static-program representation and an
// assembler-style builder DSL used to author the workload kernels. A
// Program is what the paper's toolchain would obtain from a compiled
// binary: a flat instruction sequence from which the TDG constructor
// recovers basic blocks, the CFG and loop structure.
package prog

import (
	"fmt"
	"math"

	"exocore/internal/isa"
)

// Program is a static instruction sequence with resolved branch targets.
type Program struct {
	Name  string
	Insts []isa.Inst
	// Labels maps label name to static instruction index (entry points of
	// basic blocks the author named). Useful for debugging and tests.
	Labels map[string]int
}

// Len returns the number of static instructions.
func (p *Program) Len() int { return len(p.Insts) }

// At returns the static instruction at index i.
func (p *Program) At(i int) *isa.Inst { return &p.Insts[i] }

// String renders the program as an assembly listing.
func (p *Program) String() string {
	rev := make(map[int]string, len(p.Labels))
	for name, idx := range p.Labels {
		rev[idx] = name
	}
	s := fmt.Sprintf("program %q (%d insts)\n", p.Name, len(p.Insts))
	for i := range p.Insts {
		if name, ok := rev[i]; ok {
			s += name + ":\n"
		}
		s += fmt.Sprintf("  %3d: %s\n", i, p.Insts[i].String())
	}
	return s
}

type fixup struct {
	instIdx int
	label   string
}

// Builder assembles a Program. Branch targets are written as label names
// and resolved by Build. The zero Builder is not usable; call NewBuilder.
type Builder struct {
	name   string
	insts  []isa.Inst
	labels map[string]int
	fixups []fixup
	err    error
}

// NewBuilder returns a Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int)}
}

// Label defines a label at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.fail("duplicate label %q", name)
		return b
	}
	b.labels[name] = len(b.insts)
	return b
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("prog %q: %s", b.name, fmt.Sprintf(format, args...))
	}
}

func (b *Builder) emit(in isa.Inst) *Builder {
	b.insts = append(b.insts, in)
	return b
}

func (b *Builder) emitBranch(op isa.Op, s1, s2 isa.Reg, label string) *Builder {
	b.fixups = append(b.fixups, fixup{len(b.insts), label})
	return b.emit(isa.Inst{Op: op, Dst: isa.NoReg, Src1: s1, Src2: s2})
}

// Build resolves labels and returns the finished Program.
func (b *Builder) Build() (*Program, error) {
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			b.fail("undefined label %q", f.label)
			break
		}
		b.insts[f.instIdx].Imm = int64(target)
	}
	if b.err != nil {
		return nil, b.err
	}
	return &Program{Name: b.name, Insts: b.insts, Labels: b.labels}, nil
}

// MustBuild is Build that panics on error; used by the workload kernels,
// which are static and covered by tests.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// --- Integer ALU ---

// Add emits dst = s1 + s2.
func (b *Builder) Add(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.Add, Dst: dst, Src1: s1, Src2: s2})
}

// AddI emits dst = s1 + imm.
func (b *Builder) AddI(dst, s1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Inst{Op: isa.AddI, Dst: dst, Src1: s1, Src2: isa.NoReg, Imm: imm})
}

// Sub emits dst = s1 - s2.
func (b *Builder) Sub(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.Sub, Dst: dst, Src1: s1, Src2: s2})
}

// SubI emits dst = s1 - imm.
func (b *Builder) SubI(dst, s1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Inst{Op: isa.SubI, Dst: dst, Src1: s1, Src2: isa.NoReg, Imm: imm})
}

// And emits dst = s1 & s2.
func (b *Builder) And(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.And, Dst: dst, Src1: s1, Src2: s2})
}

// Or emits dst = s1 | s2.
func (b *Builder) Or(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.Or, Dst: dst, Src1: s1, Src2: s2})
}

// Xor emits dst = s1 ^ s2.
func (b *Builder) Xor(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.Xor, Dst: dst, Src1: s1, Src2: s2})
}

// Shl emits dst = s1 << s2.
func (b *Builder) Shl(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.Shl, Dst: dst, Src1: s1, Src2: s2})
}

// ShlI emits dst = s1 << imm.
func (b *Builder) ShlI(dst, s1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Inst{Op: isa.ShlI, Dst: dst, Src1: s1, Src2: isa.NoReg, Imm: imm})
}

// ShrI emits dst = s1 >> imm.
func (b *Builder) ShrI(dst, s1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Inst{Op: isa.ShrI, Dst: dst, Src1: s1, Src2: isa.NoReg, Imm: imm})
}

// Slt emits dst = (s1 < s2) ? 1 : 0.
func (b *Builder) Slt(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.Slt, Dst: dst, Src1: s1, Src2: s2})
}

// SltI emits dst = (s1 < imm) ? 1 : 0.
func (b *Builder) SltI(dst, s1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Inst{Op: isa.SltI, Dst: dst, Src1: s1, Src2: isa.NoReg, Imm: imm})
}

// MovI emits dst = imm.
func (b *Builder) MovI(dst isa.Reg, imm int64) *Builder {
	return b.emit(isa.Inst{Op: isa.MovI, Dst: dst, Src1: isa.NoReg, Src2: isa.NoReg, Imm: imm})
}

// Mov emits dst = s1.
func (b *Builder) Mov(dst, s1 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.Mov, Dst: dst, Src1: s1, Src2: isa.NoReg})
}

// Mul emits dst = s1 * s2.
func (b *Builder) Mul(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.Mul, Dst: dst, Src1: s1, Src2: s2})
}

// MulI emits dst = s1 * imm.
func (b *Builder) MulI(dst, s1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Inst{Op: isa.MulI, Dst: dst, Src1: s1, Src2: isa.NoReg, Imm: imm})
}

// Div emits dst = s1 / s2 (integer; divide-by-zero yields 0).
func (b *Builder) Div(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.Div, Dst: dst, Src1: s1, Src2: s2})
}

// Rem emits dst = s1 % s2 (remainder; mod-by-zero yields 0).
func (b *Builder) Rem(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.Rem, Dst: dst, Src1: s1, Src2: s2})
}

// --- Floating point ---

// FAdd emits dst = s1 + s2.
func (b *Builder) FAdd(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.FAdd, Dst: dst, Src1: s1, Src2: s2})
}

// FSub emits dst = s1 - s2.
func (b *Builder) FSub(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.FSub, Dst: dst, Src1: s1, Src2: s2})
}

// FMul emits dst = s1 * s2.
func (b *Builder) FMul(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.FMul, Dst: dst, Src1: s1, Src2: s2})
}

// FDiv emits dst = s1 / s2 (divide-by-zero yields 0).
func (b *Builder) FDiv(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.FDiv, Dst: dst, Src1: s1, Src2: s2})
}

// FCvt emits dst = float(s1) for an integer source register.
func (b *Builder) FCvt(dst, s1 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.FCvt, Dst: dst, Src1: s1, Src2: isa.NoReg})
}

// FSlt emits dst = (s1 < s2) ? 1 : 0 for fp sources and an integer dst.
func (b *Builder) FSlt(dst, s1, s2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.FSlt, Dst: dst, Src1: s1, Src2: s2})
}

// FMov emits dst = s1 for fp registers.
func (b *Builder) FMov(dst, s1 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.FMov, Dst: dst, Src1: s1, Src2: isa.NoReg})
}

// FMovI emits dst = v (fp immediate).
func (b *Builder) FMovI(dst isa.Reg, v float64) *Builder {
	return b.emit(isa.Inst{Op: isa.FMovI, Dst: dst, Src1: isa.NoReg, Src2: isa.NoReg,
		Imm: int64(math.Float64bits(v))})
}

// --- Memory ---

// Ld emits dst = mem[base+off] (integer word).
func (b *Builder) Ld(dst, base isa.Reg, off int64) *Builder {
	return b.emit(isa.Inst{Op: isa.Ld, Dst: dst, Src1: base, Src2: isa.NoReg, Imm: off})
}

// St emits mem[base+off] = val (integer word).
func (b *Builder) St(val, base isa.Reg, off int64) *Builder {
	return b.emit(isa.Inst{Op: isa.St, Dst: isa.NoReg, Src1: base, Src2: val, Imm: off})
}

// LdF emits dst = mem[base+off] (fp word).
func (b *Builder) LdF(dst, base isa.Reg, off int64) *Builder {
	return b.emit(isa.Inst{Op: isa.LdF, Dst: dst, Src1: base, Src2: isa.NoReg, Imm: off})
}

// StF emits mem[base+off] = val (fp word).
func (b *Builder) StF(val, base isa.Reg, off int64) *Builder {
	return b.emit(isa.Inst{Op: isa.StF, Dst: isa.NoReg, Src1: base, Src2: val, Imm: off})
}

// --- Control ---

// Beq emits branch-to-label if s1 == s2.
func (b *Builder) Beq(s1, s2 isa.Reg, label string) *Builder {
	return b.emitBranch(isa.Beq, s1, s2, label)
}

// Bne emits branch-to-label if s1 != s2.
func (b *Builder) Bne(s1, s2 isa.Reg, label string) *Builder {
	return b.emitBranch(isa.Bne, s1, s2, label)
}

// Blt emits branch-to-label if s1 < s2.
func (b *Builder) Blt(s1, s2 isa.Reg, label string) *Builder {
	return b.emitBranch(isa.Blt, s1, s2, label)
}

// Bge emits branch-to-label if s1 >= s2.
func (b *Builder) Bge(s1, s2 isa.Reg, label string) *Builder {
	return b.emitBranch(isa.Bge, s1, s2, label)
}

// Jmp emits an unconditional jump to label.
func (b *Builder) Jmp(label string) *Builder {
	b.fixups = append(b.fixups, fixup{len(b.insts), label})
	return b.emit(isa.Inst{Op: isa.Jmp, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg})
}

// Nop emits a no-op.
func (b *Builder) Nop() *Builder {
	return b.emit(isa.Inst{Op: isa.Nop, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg})
}
