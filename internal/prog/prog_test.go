package prog

import (
	"strings"
	"testing"

	"exocore/internal/isa"
)

func TestBuildResolvesLabels(t *testing.T) {
	b := NewBuilder("t")
	b.MovI(isa.R(1), 10)
	b.Label("loop")
	b.SubI(isa.R(1), isa.R(1), 1)
	b.Bne(isa.R(1), isa.RZ, "loop")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Fatalf("Len = %d, want 3", p.Len())
	}
	br := p.At(2)
	if br.Op != isa.Bne || br.Imm != 1 {
		t.Errorf("branch = %v, want bne to index 1", br)
	}
	if p.Labels["loop"] != 1 {
		t.Errorf("label loop = %d, want 1", p.Labels["loop"])
	}
}

func TestBuildUndefinedLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Jmp("nowhere")
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for undefined label")
	} else if !strings.Contains(err.Error(), "nowhere") {
		t.Errorf("error %v does not name the label", err)
	}
}

func TestBuildDuplicateLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Label("x").Nop().Label("x")
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for duplicate label")
	}
}

func TestMustBuildPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder("t").Jmp("missing").MustBuild()
}

func TestBranchTargetEncoding(t *testing.T) {
	b := NewBuilder("t")
	b.Label("top")
	b.Nop()
	b.Beq(isa.R(1), isa.R(2), "top")
	b.Blt(isa.R(1), isa.R(2), "end")
	b.Bge(isa.R(1), isa.R(2), "top")
	b.Label("end")
	p := b.MustBuild()
	if p.At(1).Imm != 0 || p.At(3).Imm != 0 {
		t.Errorf("backward targets wrong: %d %d", p.At(1).Imm, p.At(3).Imm)
	}
	if p.At(2).Imm != 4 {
		t.Errorf("forward target = %d, want 4", p.At(2).Imm)
	}
}

func TestEmittersEncodeOperands(t *testing.T) {
	b := NewBuilder("t")
	b.Ld(isa.R(2), isa.R(1), 16)
	b.St(isa.R(3), isa.R(1), 24)
	b.LdF(isa.F(0), isa.R(1), 0)
	b.StF(isa.F(1), isa.R(2), 8)
	b.FMovI(isa.F(2), 1.5)
	p := b.MustBuild()

	ld := p.At(0)
	if ld.Dst != isa.R(2) || ld.Src1 != isa.R(1) || ld.Imm != 16 {
		t.Errorf("Ld encoded wrong: %v", ld)
	}
	st := p.At(1)
	if st.Src2 != isa.R(3) || st.Src1 != isa.R(1) || st.Imm != 24 || st.Dst != isa.NoReg {
		t.Errorf("St encoded wrong: %v", st)
	}
	if p.At(2).Dst != isa.F(0) {
		t.Errorf("LdF dst = %v", p.At(2).Dst)
	}
	if p.At(3).Src2 != isa.F(1) {
		t.Errorf("StF val = %v", p.At(3).Src2)
	}
}

func TestProgramString(t *testing.T) {
	b := NewBuilder("demo")
	b.Label("entry").MovI(isa.R(1), 1)
	s := b.MustBuild().String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "entry:") {
		t.Errorf("String() missing name or label:\n%s", s)
	}
}
