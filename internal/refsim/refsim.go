// Package refsim is an *independent* cycle-stepped out-of-order/in-order
// pipeline simulator used to cross-validate the µDG core model, playing
// the role of the paper's detailed gem5 reference (§2.5, the
// "OOO8→OOO1 / OOO1→OOO8" cross-validation). It shares only the trace
// format and core Config with the graph model; the timing algorithm is a
// classic time-stepped state machine (fetch/dispatch/ready-select/
// execute/commit over an explicit ROB with producer links), not a
// dependence-graph longest-path solver, so agreement between the two is
// meaningful evidence rather than tautology.
package refsim

import (
	"exocore/internal/cores"
	"exocore/internal/isa"
	"exocore/internal/trace"
)

type entry struct {
	producers [4]int32 // trace indexes of producing instructions (-1 none)
	earliest  int64    // dispatch + frontend depth
	issueAt   int64    // -1 until issued
	doneAt    int64
}

// frontDepth is the fetch→issue-readiness pipeline depth.
const frontDepth = 3

// Simulate runs the annotated trace through the cycle-level model and
// returns total cycles.
func Simulate(cfg cores.Config, tr *trace.Trace) int64 {
	n := len(tr.Insts)
	if n == 0 {
		return 0
	}

	robCap := cfg.ROB
	if cfg.InOrder {
		robCap = cfg.InFlight
		if robCap == 0 {
			robCap = 16
		}
	}
	window := cfg.Window
	if window <= 0 || window > robCap {
		window = robCap
	}

	entries := make([]entry, n)
	var regProducer [isa.NumRegs]int32
	for i := range regProducer {
		regProducer[i] = -1
	}
	storeProducer := make(map[uint64]int32)

	head, next := 0, 0 // oldest in-flight, next to dispatch
	var cycle, fetchReadyAt int64
	// blockedOn is the index of a dispatched-but-unresolved mispredicted
	// branch; correct-path fetch cannot proceed past it.
	blockedOn := -1

	ready := func(i int, now int64) bool {
		e := &entries[i]
		if e.earliest > now {
			return false
		}
		for _, p := range e.producers {
			if p < 0 {
				continue
			}
			pe := &entries[p]
			if pe.issueAt < 0 || pe.doneAt > now {
				return false
			}
		}
		return true
	}

	for head < n {
		// --- Commit: up to width oldest finished entries. ---
		commits := cfg.Width
		for head < n && head < next && commits > 0 {
			e := &entries[head]
			if e.issueAt < 0 || e.doneAt > cycle {
				break
			}
			head++
			commits--
		}
		if head >= n {
			break
		}

		// --- Issue: oldest-first over the issue queue (the window holds
		// only not-yet-issued instructions; issued ones free their slot).
		alu, mul, fp, ports := cfg.IntAlu, cfg.IntMulDiv, cfg.FpUnits, cfg.DCachePorts
		issued, waiting := 0, 0
		for i := head; i < next && issued < cfg.Width && waiting < window; i++ {
			e := &entries[i]
			if e.issueAt >= 0 {
				continue
			}
			waiting++
			if !ready(i, cycle) {
				if cfg.InOrder {
					break
				}
				continue
			}
			in := tr.Static(i)
			var pool *int
			switch in.Op.ClassOf() {
			case isa.ClassIntMul, isa.ClassIntDiv:
				pool = &mul
			case isa.ClassFpAdd, isa.ClassFpMul, isa.ClassFpDiv,
				isa.ClassVecAlu, isa.ClassVecMul:
				pool = &fp
			case isa.ClassLoad, isa.ClassStore, isa.ClassVecMem:
				pool = &ports
			default:
				pool = &alu
			}
			if *pool <= 0 {
				if cfg.InOrder {
					break
				}
				continue
			}
			*pool--
			issued++
			e.issueAt = cycle
			d := &tr.Insts[i]
			lat := int64(in.Op.Latency())
			if in.Op.IsMem() {
				lat = int64(d.MemLat)
				if in.Op.IsStore() {
					lat = 1
				}
			}
			if lat < 1 {
				lat = 1
			}
			e.doneAt = cycle + lat
			if in.Op.IsBranch() && d.Mispredicted() {
				if refill := e.doneAt + int64(cfg.FrontendDepth); refill > fetchReadyAt {
					fetchReadyAt = refill
				}
				if blockedOn == i {
					blockedOn = -1 // resolved; refill timer now governs
				}
			}
		}

		// --- Dispatch: fill the ROB from the trace. ---
		if blockedOn < 0 && cycle >= fetchReadyAt {
			dispatches := cfg.Width
			for dispatches > 0 && next < n && next-head < robCap {
				d := &tr.Insts[next]
				in := tr.Static(next)
				e := &entries[next]
				e.issueAt = -1
				e.earliest = cycle + frontDepth
				e.producers = [4]int32{-1, -1, -1, -1}
				if in.Src1.Valid() && in.Src1 != isa.RZ {
					e.producers[0] = regProducer[in.Src1]
				}
				if in.Src2.Valid() && in.Src2 != isa.RZ {
					e.producers[1] = regProducer[in.Src2]
				}
				if in.Op == isa.FMA && in.Dst.Valid() {
					e.producers[2] = regProducer[in.Dst]
				}
				if in.Op.IsLoad() {
					if p, ok := storeProducer[d.Addr&^7]; ok {
						e.producers[3] = p
					}
				}
				if in.Dst != isa.NoReg && in.Dst != isa.RZ {
					regProducer[in.Dst] = int32(next)
				}
				if in.Op.IsStore() {
					storeProducer[d.Addr&^7] = int32(next)
					if len(storeProducer) > 8192 {
						storeProducer = map[uint64]int32{d.Addr &^ 7: int32(next)}
					}
				}
				// A mispredicted branch ends the fetch stream: everything
				// after it is wrong-path until it resolves. A (predicted)
				// taken branch ends the fetch group: the target arrives
				// next cycle.
				misBr := in.Op.IsBranch() && d.Mispredicted()
				taken := in.Op.IsCtrl() && d.Taken()
				next++
				dispatches--
				if misBr {
					blockedOn = next - 1
					break
				}
				if taken {
					break
				}
			}
		}

		cycle++
		if cycle > int64(n)*300+100000 {
			break // fail-safe against model deadlock; tests flag this
		}
	}
	return cycle
}

// IPC returns instructions per cycle under the reference model.
func IPC(cfg cores.Config, tr *trace.Trace) float64 {
	c := Simulate(cfg, tr)
	if c == 0 {
		return 0
	}
	return float64(tr.Len()) / float64(c)
}
