package refsim

import (
	"testing"

	"exocore/internal/cores"
	"exocore/internal/workloads"
)

func TestIPCWithinWidth(t *testing.T) {
	for _, name := range []string{"mm", "mcf", "stencil", "gzip"} {
		w, _ := workloads.ByName(name)
		tr, err := w.Trace(20000)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range cores.Configs {
			ipc := IPC(cfg, tr)
			if ipc <= 0 || ipc > float64(cfg.Width) {
				t.Errorf("%s on %s: IPC %.2f out of range", name, cfg.Name, ipc)
			}
		}
	}
}

func TestWiderIsFaster(t *testing.T) {
	w, _ := workloads.ByName("nbody")
	tr, err := w.Trace(20000)
	if err != nil {
		t.Fatal(err)
	}
	c2 := Simulate(cores.OOO2, tr)
	c6 := Simulate(cores.OOO6, tr)
	if c6 >= c2 {
		t.Errorf("OOO6 (%d) not faster than OOO2 (%d)", c6, c2)
	}
}

func TestAgreesWithGraphModel(t *testing.T) {
	// The cross-validation experiment in miniature: the independent
	// cycle-level simulator and the µDG model must agree within the
	// paper's error band on relative terms.
	benches := []string{"mm", "stencil", "mcf", "gzip", "conv", "treesearch"}
	for _, cfg := range []cores.Config{cores.OOO2, cores.OOO6} {
		for _, name := range benches {
			w, _ := workloads.ByName(name)
			tr, err := w.Trace(20000)
			if err != nil {
				t.Fatal(err)
			}
			ref := Simulate(cfg, tr)
			dgc, _ := cores.Evaluate(cfg, tr)
			ratio := float64(dgc) / float64(ref)
			t.Logf("%s on %s: refsim=%d µDG=%d (ratio %.2f)", name, cfg.Name, ref, dgc, ratio)
			if ratio < 0.6 || ratio > 1.6 {
				t.Errorf("%s on %s: models disagree wildly: %.2f", name, cfg.Name, ratio)
			}
		}
	}
}

func TestNoDeadlock(t *testing.T) {
	for _, name := range []string{"needle", "bzip2", "tpch2"} {
		w, _ := workloads.ByName(name)
		tr, err := w.Trace(15000)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range cores.Configs {
			c := Simulate(cfg, tr)
			if c >= int64(tr.Len())*300 {
				t.Errorf("%s on %s hit the deadlock fail-safe", name, cfg.Name)
			}
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	w, _ := workloads.ByName("mm")
	tr, err := w.Trace(1000)
	if err != nil {
		t.Fatal(err)
	}
	tr.Insts = tr.Insts[:0]
	if Simulate(cores.OOO2, tr) != 0 {
		t.Error("empty trace should take 0 cycles")
	}
}
