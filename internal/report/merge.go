package report

import (
	"bytes"
	"fmt"
)

// Merge combines partial documents — each the rendered bytes of one
// Document — into one final document, byte-identical to rendering all
// the parts' results through a single Document.Write (the stable
// (bench, design, category, params) sort makes this a pure ordered
// merge; no numeric content is recomputed). It is the merge step under
// the sweep fabric's coordinator, so it is strict: every part must
// declare this build's exact schema version, all parts must agree on
// the tool name, no part may carry a metrics attachment (per-replica
// metrics cannot be merged into one engine snapshot), and two parts
// claiming the same (bench, design, category, params) row — overlapping
// shards — are rejected rather than silently double-counted.
func Merge(parts ...[]byte) ([]byte, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("report: merge of zero parts")
	}
	out := New("")
	seen := make(map[string]int, 64)
	for i, part := range parts {
		d, err := Decode(bytes.NewReader(part))
		if err != nil {
			return nil, fmt.Errorf("report: merge part %d: %w", i, err)
		}
		if i == 0 {
			out.Tool = d.Tool
		} else if d.Tool != out.Tool {
			return nil, fmt.Errorf("report: merge part %d: tool %q conflicts with part 0's %q", i, d.Tool, out.Tool)
		}
		if d.Metrics != nil {
			return nil, fmt.Errorf("report: merge part %d: carries an engine metrics attachment", i)
		}
		for _, r := range d.Results {
			key := r.Bench + "\x00" + r.Design + "\x00" + r.Category + "\x00" + paramsKey(r.Params)
			if prev, dup := seen[key]; dup {
				return nil, fmt.Errorf("report: merge part %d: row (bench=%q design=%q category=%q) overlaps part %d",
					i, r.Bench, r.Design, r.Category, prev)
			}
			seen[key] = i
		}
		out.Add(d.Results...)
	}
	var buf bytes.Buffer
	if err := out.Write(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
