package report

import (
	"bytes"
	"strings"
	"testing"

	"exocore/internal/runner"
)

func render(t *testing.T, d *Document) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestMergeEqualsSingleDocument(t *testing.T) {
	whole := New("dse")
	whole.Add(
		Result{Design: "IO2", RelPerf: 1, RelEnergyEff: 1, RelArea: 1},
		Result{Design: "IO2", Bench: "mm", Cycles: 100, EnergyNJ: 1.5},
		Result{Design: "IO2", Bench: "gzip", Cycles: 200, EnergyNJ: 2.5},
		Result{Design: "OOO2-S", RelPerf: 2.2, RelEnergyEff: 1.1, RelArea: 3},
		Result{Design: "OOO2-S", Bench: "mm", Cycles: 50, EnergyNJ: 1.25},
		Result{Design: "OOO2-S", Bench: "gzip", Cycles: 90, EnergyNJ: 2.25,
			Params: map[string]string{"sched": "oracle"}},
	)
	want := render(t, whole)

	// Shard the same rows three ways (aggregates, mm, gzip) in shuffled
	// order; the merge must reproduce the single document exactly.
	agg := New("dse")
	agg.Add(whole.Results[3], whole.Results[0])
	mm := New("dse")
	mm.Add(whole.Results[4], whole.Results[1])
	gz := New("dse")
	gz.Add(whole.Results[5], whole.Results[2])

	got, err := Merge(render(t, gz), render(t, agg), render(t, mm))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("merge diverges from the single document\nwant:\n%s\ngot:\n%s", want, got)
	}

	// A single part round-trips.
	got, err = Merge(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("single-part merge is not the identity")
	}
}

func TestMergeRejections(t *testing.T) {
	good := New("dse")
	good.Add(Result{Design: "IO2", Bench: "mm", Cycles: 1})
	goodB := render(t, good)

	check := func(name, wantSub string, parts ...[]byte) {
		t.Helper()
		if _, err := Merge(parts...); err == nil {
			t.Errorf("%s: merge accepted", name)
		} else if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%s: error %q does not mention %q", name, err, wantSub)
		}
	}

	check("zero parts", "zero parts")
	check("garbage", "decode", goodB, []byte("{"))

	bad := New("dse")
	bad.Schema = "exocore-result/v999"
	bad.Add(Result{Design: "IO2", Bench: "gzip"})
	check("schema mismatch", "schema", goodB, render(t, bad))

	other := New("accelsweep")
	other.Add(Result{Design: "IO2", Bench: "gzip"})
	check("tool mismatch", "tool", goodB, render(t, other))

	dup := New("dse")
	dup.Add(Result{Design: "IO2", Bench: "mm", Cycles: 2})
	check("overlapping rows", "overlaps", goodB, render(t, dup))

	// Same (design, bench) under different params is NOT an overlap.
	variant := New("dse")
	variant.Add(Result{Design: "IO2", Bench: "mm", Cycles: 2,
		Params: map[string]string{"sched": "amdahl"}})
	if _, err := Merge(goodB, render(t, variant)); err != nil {
		t.Errorf("distinct params rejected: %v", err)
	}

	withMetrics := New("dse")
	withMetrics.Add(Result{Design: "OOO2", Bench: "mm"})
	withMetrics.Metrics = &runner.Metrics{}
	check("metrics attachment", "metrics", goodB, render(t, withMetrics))
}
