package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"exocore/internal/cores"
	"exocore/internal/dg"
	"exocore/internal/energy"
	"exocore/internal/exocore"
	"exocore/internal/obs"
	"exocore/internal/runner"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestMetricsSnapshotGolden locks down the serialized form of the
// registry snapshot inside an exocore-result/v1 document: instrument
// order, field names and histogram encoding are part of the schema.
func TestMetricsSnapshotGolden(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("stage.eval.calls").Add(7)
	reg.Counter("stage.eval.hits").Add(4)
	reg.Gauge("evalcache.bytes_reused").Set(4096)
	h := reg.Histogram("eval.segment_len", obs.DefaultSizeBounds)
	for _, v := range []int64{10, 100, 1000, 100000} {
		h.Observe(v)
	}

	doc := New("goldentool")
	doc.Add(Result{Design: "OOO2-SDNT", Bench: "mm", Cycles: 1234})
	doc.Metrics = &runner.Metrics{
		Stages: []runner.StageMetrics{
			{Stage: "eval", Calls: 7, Hits: 4, Misses: 3, WallNS: 0, Insts: 30000},
		},
		Points: reg.Snapshot(),
	}
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "metrics_snapshot.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("snapshot drifted from golden (run with -update if intended):\n%s", buf.String())
	}
}

func testRegions() []exocore.RegionStat {
	gpp := exocore.RegionStat{LoopID: -1, Dyn: 5000, Cycles: 9000}
	gpp.Classes[dg.EdgeExec] = 6000
	gpp.Classes[dg.EdgeWidth] = 3000
	acc := exocore.RegionStat{LoopID: 3, BSA: "SIMD", Dyn: 20000, Cycles: 4000}
	acc.Classes[dg.EdgeFU] = 3900
	acc.Classes[dg.EdgeCachePort] = 60 // 1.5%: kept
	acc.Classes[dg.EdgePipe] = 20      // 0.5%: dropped from the table
	acc.Counts.Add(energy.EvIntAluOp, 20000)
	return []exocore.RegionStat{gpp, acc}
}

func TestWriteRegionTable(t *testing.T) {
	var buf bytes.Buffer
	WriteRegionTable(&buf, testRegions(), cores.OOO2)
	out := buf.String()
	for _, want := range []string{
		"REGION", "CRITICAL-PATH CLASSES",
		"outside", "GPP", "L3", "SIMD",
		"exec 67%", "width 33%", "fu 98%", "cacheport 2%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "pipe") {
		t.Errorf("sub-1%% class should be dropped:\n%s", out)
	}
}

func TestRegionResults(t *testing.T) {
	rows := RegionResults("OOO2-S", "OOO2", "mm", testRegions(), cores.OOO2)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if p := rows[0].Params; p["region"] != "outside" || p["bsa"] != "GPP" {
		t.Errorf("general-core row params = %v", p)
	}
	if p := rows[1].Params; p["region"] != "L3" || p["bsa"] != "SIMD" {
		t.Errorf("accelerated row params = %v", p)
	}
	if rows[1].Cycles != 4000 || rows[1].Extra["dyn_insts"] != 20000 {
		t.Errorf("accelerated row = %+v", rows[1])
	}
	if rows[1].Extra["cp_fu"] != 3900 {
		t.Errorf("cp_fu = %v, want 3900", rows[1].Extra["cp_fu"])
	}
	if rows[1].EnergyNJ <= 0 {
		t.Errorf("energy = %v, want > 0 from the int-op events", rows[1].EnergyNJ)
	}
	if _, ok := rows[1].Extra["cp_program"]; ok {
		t.Error("zero-latency class serialized")
	}
}
