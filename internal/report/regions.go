package report

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"exocore/internal/cores"
	"exocore/internal/dg"
	"exocore/internal/exocore"
)

// RegionLabel renders a region's loop id for tables: "L<id>", or
// "outside" for execution not inside any planned loop.
func RegionLabel(loopID int) string {
	if loopID < 0 {
		return "outside"
	}
	return fmt.Sprintf("L%d", loopID)
}

// bsaLabel maps the engine's "" (general core) model name to "GPP".
func bsaLabel(name string) string {
	if name == "" {
		return "GPP"
	}
	return name
}

// topClasses renders the dominant critical-path edge classes of one
// region as "class p%" terms, largest first, up to n terms; classes
// below 1% of the region's attributed latency are dropped.
func topClasses(classes *[dg.NumEdgeClasses]int64, n int) string {
	var total int64
	for _, v := range classes {
		total += v
	}
	if total == 0 {
		return "-"
	}
	type cv struct {
		c dg.EdgeClass
		v int64
	}
	var top []cv
	for c, v := range classes {
		if v > 0 {
			top = append(top, cv{dg.EdgeClass(c), v})
		}
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].v != top[j].v {
			return top[i].v > top[j].v
		}
		return top[i].c < top[j].c
	})
	out := ""
	for i, t := range top {
		pct := 100 * float64(t.v) / float64(total)
		if i >= n || pct < 1 {
			break
		}
		if out != "" {
			out += ", "
		}
		out += fmt.Sprintf("%s %.0f%%", t.c, pct)
	}
	return out
}

// WriteRegionTable prints the per-region attribution table of one
// evaluated run (RunOpts.RecordRegions) — region, winning BSA, dynamic
// instructions, cycles, dynamic energy and the dominant critical-path
// event classes from the µDG. Rows come pre-sorted from the engine.
func WriteRegionTable(w io.Writer, regions []exocore.RegionStat, core cores.Config) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  REGION\tBSA\tDYN\tCYCLES\tENERGY(nJ)\tCRITICAL-PATH CLASSES")
	for i := range regions {
		rs := &regions[i]
		fmt.Fprintf(tw, "  %s\t%s\t%d\t%d\t%.1f\t%s\n",
			RegionLabel(rs.LoopID), bsaLabel(rs.BSA), rs.Dyn, rs.Cycles,
			rs.DynamicEnergyNJ(core), topClasses(&rs.Classes, 3))
	}
	tw.Flush()
}

// RegionResults converts a run's per-region attribution into schema
// rows: one Result per region with the region/bsa dimensions in Params
// and the critical-path class latencies under "cp_<class>" Extra keys.
func RegionResults(design, coreName, bench string, regions []exocore.RegionStat, core cores.Config) []Result {
	out := make([]Result, 0, len(regions))
	for i := range regions {
		rs := &regions[i]
		extra := map[string]float64{"dyn_insts": float64(rs.Dyn)}
		for c, v := range rs.Classes {
			if v > 0 {
				extra["cp_"+dg.EdgeClass(c).String()] = float64(v)
			}
		}
		out = append(out, Result{
			Design: design, Core: coreName, Bench: bench,
			Cycles: rs.Cycles, EnergyNJ: rs.DynamicEnergyNJ(core),
			Params: map[string]string{
				"region": RegionLabel(rs.LoopID),
				"bsa":    bsaLabel(rs.BSA),
			},
			Extra: extra,
		})
	}
	return out
}
