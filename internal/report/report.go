// Package report defines the one versioned JSON result schema shared by
// every cmd/ tool's -json mode, so downstream scripts parse a single
// format instead of seven bespoke text layouts.
//
// A document is a flat list of results — one per (design point,
// benchmark) observation, with aggregate rows carrying an empty Bench —
// plus the engine's per-stage metrics. Results are always emitted sorted
// by (benchmark, design) so output is byte-stable across runs and across
// worker counts.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"exocore/internal/runner"
)

// Schema identifies the document format. Bump the suffix on any
// backwards-incompatible change.
const Schema = "exocore-result/v1"

// Result is one observation: a design point evaluated on a benchmark (or
// an aggregate over benchmarks when Bench is empty). Numeric fields that
// do not apply to a tool are simply omitted.
type Result struct {
	// Design is the design-point code, eg. "OOO2-SDN" or "IO2".
	Design string `json:"design"`
	// Core is the general-core name component, eg. "OOO2".
	Core string `json:"core,omitempty"`
	// BSAs lists the accelerators present in the design.
	BSAs []string `json:"bsas,omitempty"`
	// Bench is the benchmark name; empty for aggregate rows.
	Bench string `json:"bench,omitempty"`
	// Category is the workload category, when the row is per-category.
	Category string `json:"category,omitempty"`

	Cycles       int64   `json:"cycles,omitempty"`
	EnergyNJ     float64 `json:"energy_nj,omitempty"`
	AreaMM2      float64 `json:"area_mm2,omitempty"`
	RelPerf      float64 `json:"rel_perf,omitempty"`
	RelEnergyEff float64 `json:"rel_energy_eff,omitempty"`
	RelArea      float64 `json:"rel_area,omitempty"`

	// Coverage is the per-BSA share of execution cycles ("" in the
	// engine becomes "GPP" here; values sum to ~1 for full rows).
	Coverage map[string]float64 `json:"per_bsa_coverage,omitempty"`

	// Params carries tool-specific string dimensions (eg. sweep/variant
	// labels, scheduler names) without widening the schema per tool.
	Params map[string]string `json:"params,omitempty"`
	// Extra carries tool-specific scalars (eg. local_speedup,
	// unaccelerated_frac) under stable snake_case keys.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Document is the top-level JSON object every tool emits under -json.
type Document struct {
	Schema  string   `json:"schema"`
	Tool    string   `json:"tool"`
	Results []Result `json:"results"`
	// Metrics is the evaluation engine's per-stage snapshot (cache
	// hit/miss counters, wall clock, instruction counts).
	Metrics *runner.Metrics `json:"metrics,omitempty"`
}

// New creates an empty document for a tool.
func New(tool string) *Document {
	return &Document{Schema: Schema, Tool: tool}
}

// Add appends results.
func (d *Document) Add(rs ...Result) {
	d.Results = append(d.Results, rs...)
}

// Sort orders results by (bench, design, category, params) — the stable
// key the spec requires before printing. Aggregate rows (empty Bench)
// sort before per-bench rows of the same design.
func (d *Document) Sort() {
	sort.SliceStable(d.Results, func(i, j int) bool {
		a, b := d.Results[i], d.Results[j]
		if a.Bench != b.Bench {
			return a.Bench < b.Bench
		}
		if a.Design != b.Design {
			return a.Design < b.Design
		}
		if a.Category != b.Category {
			return a.Category < b.Category
		}
		return paramsKey(a.Params) < paramsKey(b.Params)
	})
}

func paramsKey(p map[string]string) string {
	if len(p) == 0 {
		return ""
	}
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb []byte
	for _, k := range keys {
		sb = append(sb, k...)
		sb = append(sb, '=')
		sb = append(sb, p[k]...)
		sb = append(sb, ';')
	}
	return string(sb)
}

// Write sorts the results and writes the document as indented JSON.
func (d *Document) Write(w io.Writer) error {
	d.Sort()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Decode is the strict reader for documents this package wrote: it
// parses one JSON document and rejects anything that does not declare
// the exact schema version this build speaks. Consumers that echo
// client-supplied documents (the evaluation daemon, the smoke gates)
// use it so a version mismatch is a loud error instead of a silently
// half-decoded document.
func Decode(r io.Reader) (*Document, error) {
	dec := json.NewDecoder(r)
	var d Document
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("report: decode: %w", err)
	}
	if d.Schema != Schema {
		return nil, fmt.Errorf("report: unsupported schema %q (this build speaks %q)", d.Schema, Schema)
	}
	return &d, nil
}
