package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestSchemaHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := New("mytool").Write(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Schema string `json:"schema"`
		Tool   string `json:"tool"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || got.Tool != "mytool" {
		t.Errorf("header = %+v", got)
	}
	if !strings.HasPrefix(Schema, "exocore-result/v") {
		t.Errorf("schema %q must be versioned", Schema)
	}
}

func TestWriteSortsByBenchThenDesign(t *testing.T) {
	d := New("t")
	d.Add(
		Result{Design: "OOO2-S", Bench: "mm"},
		Result{Design: "IO2", Bench: "mm"},
		Result{Design: "OOO2-S", Bench: "cjpeg"},
		Result{Design: "OOO2-S"}, // aggregate first
	)
	d.Sort()
	var got []string
	for _, r := range d.Results {
		got = append(got, r.Bench+"/"+r.Design)
	}
	want := []string{"/OOO2-S", "cjpeg/OOO2-S", "mm/IO2", "mm/OOO2-S"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSortStableWithinKey(t *testing.T) {
	// Segment-style rows share (bench, design, params); their original
	// (timeline) order must survive sorting.
	d := New("t")
	p := map[string]string{"model": "NS-DF"}
	d.Add(
		Result{Design: "D", Bench: "b", Params: p, Extra: map[string]float64{"start_cycle": 0}},
		Result{Design: "D", Bench: "b", Params: p, Extra: map[string]float64{"start_cycle": 10}},
		Result{Design: "D", Bench: "b", Params: p, Extra: map[string]float64{"start_cycle": 20}},
	)
	d.Sort()
	for i, want := range []float64{0, 10, 20} {
		if got := d.Results[i].Extra["start_cycle"]; got != want {
			t.Fatalf("row %d start_cycle = %g, want %g (order not stable)", i, got, want)
		}
	}
}

func TestParamsSortDeterministic(t *testing.T) {
	d := New("t")
	d.Add(
		Result{Design: "D", Params: map[string]string{"sweep": "b", "variant": "x"}},
		Result{Design: "D", Params: map[string]string{"sweep": "a", "variant": "y"}},
	)
	d.Sort()
	if d.Results[0].Params["sweep"] != "a" {
		t.Errorf("params order not sorted: %v first", d.Results[0].Params)
	}
}

func TestWriteByteStable(t *testing.T) {
	mk := func() *Document {
		d := New("t")
		d.Add(
			Result{Design: "B", Bench: "w2", Cycles: 2, Coverage: map[string]float64{"GPP": 0.5, "SIMD": 0.5}},
			Result{Design: "A", Bench: "w1", Cycles: 1, Extra: map[string]float64{"x": 1, "y": 2}},
		)
		return d
	}
	var a, b bytes.Buffer
	if err := mk().Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := mk().Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two writes of the same document differ")
	}
}

func TestOmitEmptyFields(t *testing.T) {
	var buf bytes.Buffer
	d := New("t")
	d.Add(Result{Design: "IO2"})
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, field := range []string{"cycles", "energy_nj", "per_bsa_coverage", "params", "extra", "metrics"} {
		if strings.Contains(s, field) {
			t.Errorf("empty field %q serialized: %s", field, s)
		}
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	d := New("t")
	d.Add(Result{Design: "OOO2-S", Core: "OOO2", Bench: "mm", Cycles: 123,
		Params: map[string]string{"sched": "oracle"},
		Extra:  map[string]float64{"speedup": 1.5}})
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || got.Tool != "t" || len(got.Results) != 1 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	r := got.Results[0]
	if r.Design != "OOO2-S" || r.Cycles != 123 || r.Params["sched"] != "oracle" || r.Extra["speedup"] != 1.5 {
		t.Fatalf("round trip mangled result: %+v", r)
	}

	// A re-encode of the decoded document is byte-identical to the
	// original encoding — the property the serving byte-identity gates
	// rely on when they normalize and re-compare documents.
	var again bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if err := got.Write(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("decode→encode is not byte-stable")
	}
}

func TestDecodeRejectsUnknownSchema(t *testing.T) {
	for _, bad := range []string{
		`{"schema":"exocore-result/v2","tool":"t","results":null}`,
		`{"schema":"","tool":"t"}`,
		`{"tool":"t"}`,
	} {
		if _, err := Decode(strings.NewReader(bad)); err == nil {
			t.Errorf("Decode(%s) succeeded, want schema version error", bad)
		} else if !strings.Contains(err.Error(), Schema) {
			t.Errorf("Decode(%s) error %q does not name the supported schema", bad, err)
		}
	}
	if _, err := Decode(strings.NewReader("not json")); err == nil {
		t.Error("Decode of malformed JSON succeeded")
	}
}
