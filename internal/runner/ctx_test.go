package runner

import (
	"context"
	"errors"
	"testing"
	"time"

	"exocore/internal/cores"
)

// A canceled ctx must abort every stage at its boundary with the ctx
// error, and the cancellation must NOT be cached: the same key computed
// again under a live ctx succeeds. This is the invariant that keeps a
// disconnected client from poisoning a long-lived serving engine.
func TestStageCancellationIsNotCached(t *testing.T) {
	e := New(Options{MaxDyn: testMaxDyn})
	w := testWorkload(t, "mm")
	core := cores.OOO2

	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := e.TraceCtx(canceled, w); !errors.Is(err, context.Canceled) {
		t.Fatalf("TraceCtx under canceled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := e.TDGCtx(canceled, w); !errors.Is(err, context.Canceled) {
		t.Fatalf("TDGCtx under canceled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := e.ContextCtx(canceled, w, core); !errors.Is(err, context.Canceled) {
		t.Fatalf("ContextCtx under canceled ctx: err = %v, want context.Canceled", err)
	}
	if _, _, err := e.EvaluateCtx(canceled, w, core, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("EvaluateCtx under canceled ctx: err = %v, want context.Canceled", err)
	}

	// The canceled attempts must not have poisoned any memo: the same
	// engine now serves the full pipeline under a live ctx (a cached
	// cancellation would surface context.Canceled here instead).
	if _, _, err := e.EvaluateCtx(context.Background(), w, core, nil); err != nil {
		t.Fatalf("EvaluateCtx after canceled attempts: %v", err)
	}
	hitsBefore := e.Metrics().Stage(StageEval).Hits
	if _, _, err := e.EvaluateCtx(context.Background(), w, core, nil); err != nil {
		t.Fatalf("repeat EvaluateCtx: %v", err)
	}
	if hits := e.Metrics().Stage(StageEval).Hits; hits != hitsBefore+1 {
		t.Fatalf("eval hits %d -> %d, want the successful result cached", hitsBefore, hits)
	}
}

// Waiters blocked on another caller's in-flight computation must unblock
// when their own ctx is done, without waiting for the computation.
func TestMemoWaiterUnblocksOnCancel(t *testing.T) {
	var m memo[int]
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		m.getCtx(context.Background(), "k", func(context.Context) (int, error) {
			close(started)
			<-release
			return 42, nil
		})
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	_, _, _, err := m.getCtx(ctx, "k", func(context.Context) (int, error) {
		t.Error("waiter must not recompute an in-flight key")
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
	close(release)

	// The winner's value is cached and served normally.
	v, hit, _, err := m.getCtx(context.Background(), "k", func(context.Context) (int, error) {
		return 0, errors.New("must not recompute")
	})
	if err != nil || !hit || v != 42 {
		t.Fatalf("post-flight lookup = (%d, hit=%v, %v), want (42, true, nil)", v, hit, err)
	}
}

// A deadline error from the computation itself is evicted, not cached.
func TestMemoDoesNotCacheDeadlineErrors(t *testing.T) {
	var m memo[int]
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, _, _, err := m.getCtx(ctx, "k", func(ctx context.Context) (int, error) {
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if m.len() != 0 {
		t.Fatalf("memo kept %d entries after deadline failure, want 0", m.len())
	}

	// Genuine (non-cancellation) errors stay cached: a failed stage fails
	// identically instead of being retried.
	boom := errors.New("boom")
	m.getCtx(context.Background(), "k", func(context.Context) (int, error) { return 0, boom })
	_, hit, _, err := m.getCtx(context.Background(), "k", func(context.Context) (int, error) {
		return 0, errors.New("must not recompute")
	})
	if !hit || !errors.Is(err, boom) {
		t.Fatalf("cached error lookup = (hit=%v, %v), want (true, boom)", hit, err)
	}
}

// Cancelling mid-sweep stops workers from claiming new indices.
func TestForEachCtxCancelStopsNewWork(t *testing.T) {
	e := New(Options{MaxDyn: testMaxDyn, Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	const n = 1000
	ran := make([]bool, n)
	err := e.ForEachCtx(ctx, n, func(i int) error {
		ran[i] = true
		if i == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	total := 0
	for _, r := range ran {
		if r {
			total++
		}
	}
	if total == n {
		t.Fatal("all indices ran despite cancellation")
	}
	// MapCtx delegates to the same loop; spot-check the plumbing.
	if _, err := MapCtx(ctx, e, 4, func(i int) (int, error) { return i, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("MapCtx err = %v, want context.Canceled", err)
	}
}
