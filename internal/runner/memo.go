package runner

import (
	"runtime"
	"sync"
	"time"
)

func defaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// memo is a concurrency-safe compute-once cache ("singleflight" + store):
// the first caller of a key computes the value while later callers — even
// concurrent ones — block on the same entry and share the result. Errors
// are cached too: a failed stage fails identically on every lookup
// instead of being retried.
type memo[V any] struct {
	mu sync.Mutex
	m  map[string]*memoEntry[V]
}

type memoEntry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// get returns (value, cacheHit, computeWall, err). cacheHit is true when
// this caller did not run compute — including when it blocked on another
// goroutine's in-flight computation, since the work was still shared.
func (t *memo[V]) get(key string, compute func() (V, error)) (V, bool, time.Duration, error) {
	t.mu.Lock()
	if t.m == nil {
		t.m = make(map[string]*memoEntry[V])
	}
	if ent, ok := t.m[key]; ok {
		t.mu.Unlock()
		<-ent.done
		return ent.val, true, 0, ent.err
	}
	ent := &memoEntry[V]{done: make(chan struct{})}
	t.m[key] = ent
	t.mu.Unlock()

	start := time.Now()
	defer close(ent.done)
	ent.val, ent.err = compute()
	return ent.val, false, time.Since(start), ent.err
}

// len reports the number of cached entries (for tests).
func (t *memo[V]) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}
