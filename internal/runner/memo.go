package runner

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"
)

func defaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// memo is a concurrency-safe compute-once cache ("singleflight" + store):
// the first caller of a key computes the value while later callers — even
// concurrent ones — block on the same entry and share the result. Errors
// are cached too: a failed stage fails identically on every lookup
// instead of being retried.
type memo[V any] struct {
	mu sync.Mutex
	m  map[string]*memoEntry[V]
}

type memoEntry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// get returns (value, cacheHit, computeWall, err). cacheHit is true when
// this caller did not run compute — including when it blocked on another
// goroutine's in-flight computation, since the work was still shared.
func (t *memo[V]) get(key string, compute func() (V, error)) (V, bool, time.Duration, error) {
	return t.getCtx(context.Background(), key, func(context.Context) (V, error) {
		return compute()
	})
}

// getCtx is get with cancellation: waiters blocked on another caller's
// in-flight computation unblock when their own ctx is done, and a
// computation that fails with the winner's cancellation (or deadline) is
// evicted instead of cached, so the error cannot poison the memo for
// future callers — essential for a long-lived serving engine where one
// disconnected client must not wedge a (bench, core) key forever.
func (t *memo[V]) getCtx(ctx context.Context, key string, compute func(context.Context) (V, error)) (V, bool, time.Duration, error) {
	t.mu.Lock()
	if t.m == nil {
		t.m = make(map[string]*memoEntry[V])
	}
	if ent, ok := t.m[key]; ok {
		t.mu.Unlock()
		select {
		case <-ent.done:
			return ent.val, true, 0, ent.err
		case <-ctx.Done():
			var zero V
			return zero, true, 0, ctx.Err()
		}
	}
	ent := &memoEntry[V]{done: make(chan struct{})}
	t.m[key] = ent
	t.mu.Unlock()

	start := time.Now()
	ent.val, ent.err = compute(ctx)
	if ent.err != nil && (errors.Is(ent.err, context.Canceled) || errors.Is(ent.err, context.DeadlineExceeded)) {
		t.mu.Lock()
		if t.m[key] == ent {
			delete(t.m, key)
		}
		t.mu.Unlock()
	}
	close(ent.done)
	return ent.val, false, time.Since(start), ent.err
}

// len reports the number of cached entries (for tests).
func (t *memo[V]) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}
