package runner

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"exocore/internal/cores"
	"exocore/internal/obs"
	"exocore/internal/workloads"
)

// fullPipeline drives every stage for one benchmark: trace, tdg, sched
// (via Context) and eval (via Evaluate with the Oracle assignment).
func fullPipeline(e *Engine, name string) error {
	w, err := workloads.ByName(name)
	if err != nil {
		return err
	}
	sc, err := e.Context(w, cores.OOO2)
	if err != nil {
		return err
	}
	_, _, err = e.Evaluate(w, cores.OOO2, sc.Oracle(e.BSAs().Names()))
	return err
}

func TestEventForEveryStageLookup(t *testing.T) {
	var events []Event
	e := New(Options{MaxDyn: testMaxDyn, Progress: func(ev Event) { events = append(events, ev) }})
	if err := fullPipeline(e, "mm"); err != nil {
		t.Fatal(err)
	}

	perStage := map[string]int64{}
	for _, ev := range events {
		perStage[ev.Stage]++
	}
	m := e.Metrics()
	var calls int64
	for _, s := range m.Stages {
		calls += s.Calls
		if perStage[s.Stage] != s.Calls {
			t.Errorf("stage %s: %d events, metrics report %d calls",
				s.Stage, perStage[s.Stage], s.Calls)
		}
	}
	if int64(len(events)) != calls {
		t.Errorf("%d events delivered for %d stage lookups", len(events), calls)
	}
	for _, st := range stageOrder {
		if perStage[st] == 0 {
			t.Errorf("no event for stage %q", st)
		}
	}
}

// eventLog runs the full pipeline over benches with the given worker
// count and returns, per benchmark, the ordered stage-lookup log.
// Progress callbacks are serialized by the engine, so no extra locking.
func eventLog(t *testing.T, workers int, benches []string) map[string][]string {
	t.Helper()
	perBench := make(map[string][]string)
	e := New(Options{MaxDyn: testMaxDyn, Workers: workers, Progress: func(ev Event) {
		bench, _, _ := strings.Cut(ev.Key, "/")
		perBench[bench] = append(perBench[bench],
			fmt.Sprintf("%s %s hit=%t", ev.Stage, ev.Key, ev.CacheHit))
	}})
	err := e.ForEach(len(benches), func(i int) error {
		return fullPipeline(e, benches[i])
	})
	if err != nil {
		t.Fatal(err)
	}
	return perBench
}

func TestEventOrderDeterministicAcrossWorkers(t *testing.T) {
	benches := []string{"mm", "cjpeg", "spmv", "nbody"}
	serial := eventLog(t, 1, benches)
	parallel := eventLog(t, 4, benches)
	for _, b := range benches {
		if len(serial[b]) == 0 {
			t.Fatalf("%s: no events in serial run", b)
		}
		if !reflect.DeepEqual(serial[b], parallel[b]) {
			t.Errorf("%s: event log differs between serial and -workers=4:\nserial:   %v\nparallel: %v",
				b, serial[b], parallel[b])
		}
	}
}

// tev is the subset of the Chrome trace-event wire format the nesting
// test inspects.
type tev struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TID  int32             `json:"tid"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Args map[string]string `json:"args"`
}

// TestTraceSpanNesting runs the pipeline with a Tracer attached and
// checks the exported Chrome trace: it validates as well-formed, every
// stage span is present, and the stage → segment → transform hierarchy
// holds by time containment within a lane.
func TestTraceSpanNesting(t *testing.T) {
	tr := obs.NewTracer("runner-test")
	e := New(Options{MaxDyn: testMaxDyn, Tracer: tr})
	if err := fullPipeline(e, "mm"); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if n, err := obs.ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("trace invalid: %v", err)
	} else if n == 0 {
		t.Fatal("trace has no spans")
	}

	var events []tev
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	byCat := map[string][]tev{}
	for _, ev := range events {
		if ev.Ph == "X" {
			byCat[ev.Cat] = append(byCat[ev.Cat], ev)
		}
	}
	for _, cat := range []string{"stage", "run", "segment", "transform"} {
		if len(byCat[cat]) == 0 {
			t.Fatalf("no %q spans in trace", cat)
		}
	}
	for _, stage := range stageOrder {
		found := false
		for _, ev := range byCat["stage"] {
			if strings.HasPrefix(ev.Name, stage+" ") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no span for stage %q", stage)
		}
	}

	contains := func(outer, inner tev) bool {
		return outer.TID == inner.TID &&
			outer.TS <= inner.TS && inner.TS+inner.Dur <= outer.TS+outer.Dur
	}
	enclosed := func(inner tev, outers []tev) bool {
		for _, o := range outers {
			if contains(o, inner) {
				return true
			}
		}
		return false
	}
	for _, ev := range byCat["run"] {
		if !enclosed(ev, byCat["stage"]) {
			t.Errorf("run span %q not inside any stage span", ev.Name)
		}
	}
	for _, ev := range byCat["segment"] {
		if !enclosed(ev, byCat["run"]) && !enclosed(ev, byCat["stage"]) {
			t.Errorf("segment span %q not inside any run or stage span", ev.Name)
		}
	}
	for _, ev := range byCat["transform"] {
		if !enclosed(ev, byCat["segment"]) {
			t.Errorf("transform span %q not inside any segment span", ev.Name)
		}
		if ev.Args["start"] == "" || ev.Args["end"] == "" {
			t.Errorf("transform span %q missing start/end args: %v", ev.Name, ev.Args)
		}
	}
}
