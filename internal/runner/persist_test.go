package runner

import (
	"testing"

	"exocore/internal/cores"
	"exocore/internal/obs"
	"exocore/internal/store"
)

// TestEngineWarmRestartThroughStore is the end-to-end gate for -store:
// two engines sharing one store directory (simulating a daemon
// restart) must agree exactly on every evaluation, and the second must
// come up warm — its first evaluations served partly from disk.
func TestEngineWarmRestartThroughStore(t *testing.T) {
	dir := t.TempDir()
	w := testWorkload(t, "cjpeg")
	assigns := []map[int]string{nil}

	open := func(reg *obs.Registry) *store.Store {
		t.Helper()
		s, err := store.Open(dir, store.Options{Reg: reg})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	reg1 := obs.NewRegistry()
	e1 := New(Options{MaxDyn: testMaxDyn, Persist: open(reg1), Reg: reg1})
	sc, err := e1.Context(w, cores.OOO2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range sc.Candidates {
		assigns = append(assigns, map[int]string{c.LoopID: c.BSA})
	}
	type meas struct {
		cycles int64
		energy float64
	}
	var want []meas
	for _, a := range assigns {
		cyc, nj, err := e1.Evaluate(w, cores.OOO2, a)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, meas{cyc, nj})
	}
	if reg1.Counter("store.writes").Value() == 0 {
		t.Fatal("first engine wrote nothing to the store")
	}

	reg2 := obs.NewRegistry()
	e2 := New(Options{MaxDyn: testMaxDyn, Persist: open(reg2), Reg: reg2})
	for i, a := range assigns {
		cyc, nj, err := e2.Evaluate(w, cores.OOO2, a)
		if err != nil {
			t.Fatal(err)
		}
		if cyc != want[i].cycles || nj != want[i].energy {
			t.Errorf("assign %v: warm engine = (%d, %g), cold = (%d, %g)",
				a, cyc, nj, want[i].cycles, want[i].energy)
		}
	}
	if hits := reg2.Counter("store.hits").Value(); hits == 0 {
		t.Error("restarted engine never hit the store")
	} else {
		t.Logf("restarted engine: %d store hits", hits)
	}

	// A different budget must namespace apart: no cross-hits.
	reg3 := obs.NewRegistry()
	e3 := New(Options{MaxDyn: testMaxDyn / 2, Persist: open(reg3), Reg: reg3})
	if _, _, err := e3.Evaluate(w, cores.OOO2, nil); err != nil {
		t.Fatal(err)
	}
	if hits := reg3.Counter("store.hits").Value(); hits != 0 {
		t.Errorf("budget %d engine hit %d entries persisted under budget %d",
			testMaxDyn/2, hits, testMaxDyn)
	}
}
