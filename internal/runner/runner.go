// Package runner is the shared evaluation engine behind every driver and
// the design-space exploration. It memoizes the expensive per-(benchmark,
// core) pipeline stages — dynamic trace, reconstructed TDG, scheduling
// context, assignment evaluation — in a concurrency-safe artifact cache,
// fans work out over a bounded worker pool with deterministic result
// ordering, and exposes per-stage wall-clock / instruction-count metrics
// plus cache hit/miss counters and an optional progress callback.
//
// One Engine per tool invocation is the normal lifetime; sharing an
// Engine across calls (eg. several dse.Explore runs) shares the caches.
package runner

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"exocore/internal/bsa"
	"exocore/internal/cores"
	"exocore/internal/exocore"
	"exocore/internal/obs"
	"exocore/internal/sched"
	"exocore/internal/tdg"
	"exocore/internal/trace"
	"exocore/internal/workloads"
)

// DefaultMaxDyn is the default per-benchmark dynamic-instruction budget.
const DefaultMaxDyn = 100_000

// Pipeline stage names, in execution order.
const (
	StageTrace = "trace"
	StageTDG   = "tdg"
	StageSched = "sched"
	StageEval  = "eval"
)

var stageOrder = []string{StageTrace, StageTDG, StageSched, StageEval}

// Event describes one cache lookup, delivered to the progress callback.
type Event struct {
	Stage    string        // StageTrace, StageTDG, StageSched or StageEval
	Key      string        // "bench" or "bench/core[/assignment]"
	CacheHit bool          // true when the artifact was already cached
	Wall     time.Duration // compute time (zero on hits)
}

// ProgressFunc receives an Event after every stage lookup. Calls are
// serialized; the callback may write to a terminal without locking.
type ProgressFunc func(Event)

// Options configures an Engine.
type Options struct {
	// MaxDyn is the per-benchmark dynamic-instruction budget (0 =
	// DefaultMaxDyn). It is part of every cache key's identity, so one
	// Engine serves exactly one budget.
	MaxDyn int
	// ChunkInsts selects how traces are synthesized. 0 (the default)
	// streams workload generators in chunks of trace.DefaultChunkInsts;
	// a positive value sets an explicit chunk size; a negative value
	// selects the legacy materialized whole-trace path (workload
	// generators fill one array in a single pass). Chunked and
	// materialized synthesis are byte-identical, so ChunkInsts is NOT
	// part of cache-key identity.
	ChunkInsts int
	// Workers bounds concurrent jobs in ForEach/Map (0 = GOMAXPROCS).
	Workers int
	// BSAs is the registry of accelerator models the engine builds
	// scheduling contexts (plans + candidate measurements) for. Nil means
	// bsa.Default(). Like MaxDyn it is part of the engine's identity: one
	// Engine serves exactly one registry, so restricted-registry runs
	// (eg. the pre-graph four-BSA baseline) use their own Engine.
	BSAs *bsa.Registry
	// Progress, if non-nil, observes every stage lookup.
	Progress ProgressFunc
	// NoSegmentCache disables the per-context evaluation-unit cache
	// (exocore.Cache): every assignment evaluation rebuilds every unit
	// from scratch. Used by the equivalence gate and for A/B measurement.
	NoSegmentCache bool
	// NoDelta disables incremental delta evaluation (atom-based
	// segmentation and prefix-outcome publication) while keeping the unit
	// cache. A/B escape hatch behind the -nodelta flag.
	NoDelta bool
	// Tracer, if non-nil, receives one span per stage cache miss, with
	// per-unit segment spans and per-transform spans nested under the
	// sched and eval stages. Nil keeps the hot path nil-check cheap.
	Tracer *obs.Tracer
	// Reg is the metrics registry backing the engine's counters. Nil
	// makes the engine create a private one; pass a shared registry to
	// fold engine metrics into a tool-wide snapshot.
	Reg *obs.Registry
	// Log, if non-nil, receives debug-level stage-lookup records.
	Log *obs.Logger
	// Persist, if non-nil, is a durable evaluation-unit store (eg.
	// *store.Store behind -store DIR) attached under every scheduling
	// context's unit cache: misses consult it before evaluating and
	// fresh outcomes write through, so a restarted process comes up
	// warm. The engine namespaces keys by (workload, core, MaxDyn).
	// Ignored with NoSegmentCache.
	Persist exocore.Persist
}

// StageMetrics aggregates one pipeline stage's counters.
type StageMetrics struct {
	Stage  string `json:"stage"`
	Calls  int64  `json:"calls"`
	Hits   int64  `json:"cache_hits"`
	Misses int64  `json:"cache_misses"`
	WallNS int64  `json:"wall_ns"`
	// Insts counts dynamic instructions processed by cache misses (the
	// work actually done, as opposed to work served from cache).
	Insts int64 `json:"instructions"`
}

// Metrics is a point-in-time snapshot of the engine's counters.
type Metrics struct {
	Stages []StageMetrics `json:"stages"`
	// EvalCache aggregates the evaluation-unit cache counters over every
	// scheduling context this engine created. Nil when the cache is
	// disabled (Options.NoSegmentCache).
	EvalCache *exocore.CacheStats `json:"eval_cache,omitempty"`
	// Points is the full registry snapshot (every named instrument,
	// sorted), the exportable form behind the stage/cache fields above.
	Points []obs.MetricPoint `json:"points,omitempty"`
}

// Stage returns the named stage's snapshot (zero value if unknown).
func (m Metrics) Stage(name string) StageMetrics {
	for _, s := range m.Stages {
		if s.Stage == name {
			return s
		}
	}
	return StageMetrics{}
}

// Hits sums cache hits over all stages.
func (m Metrics) Hits() int64 {
	var n int64
	for _, s := range m.Stages {
		n += s.Hits
	}
	return n
}

// Misses sums cache misses over all stages.
func (m Metrics) Misses() int64 {
	var n int64
	for _, s := range m.Stages {
		n += s.Misses
	}
	return n
}

// stageInstruments bundles one stage's registry instruments, resolved
// once at Engine construction so the lookup path stays map-free.
type stageInstruments struct {
	calls, hits, misses, insts *obs.Counter
	wall                       *obs.Histogram
}

// evalResult is the memoized outcome of one assignment evaluation.
type evalResult struct {
	cycles   int64
	energyNJ float64
}

// Engine is the shared evaluation engine. Safe for concurrent use.
type Engine struct {
	maxDyn     int
	chunkInsts int // <0 = materialized path, 0 = default chunk size
	workers    int
	bsaReg     *bsa.Registry
	noSegCache bool
	noDelta    bool
	persist    exocore.Persist

	progressMu sync.Mutex
	progress   ProgressFunc

	tracer *obs.Tracer
	reg    *obs.Registry
	log    *obs.Logger

	traces  memo[*trace.Trace]
	tdgs    memo[*tdg.TDG]
	scheds  memo[*sched.Context]
	evals   memo[evalResult]
	streams memo[*StreamBaselineResult]

	stages map[string]*stageInstruments

	cachesMu sync.Mutex
	caches   []*exocore.Cache // unit caches of every context created
}

// New creates an Engine.
func New(opts Options) *Engine {
	maxDyn := opts.MaxDyn
	if maxDyn <= 0 {
		maxDyn = DefaultMaxDyn
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	reg := opts.Reg
	if reg == nil {
		reg = obs.NewRegistry()
	}
	bsaReg := opts.BSAs
	if bsaReg == nil {
		bsaReg = bsa.Default()
	}
	e := &Engine{
		maxDyn:     maxDyn,
		chunkInsts: opts.ChunkInsts,
		workers:    workers,
		bsaReg:     bsaReg,
		noSegCache: opts.NoSegmentCache,
		noDelta:    opts.NoDelta,
		persist:    opts.Persist,
		progress:   opts.Progress,
		tracer:     opts.Tracer,
		reg:        reg,
		log:        opts.Log,
		stages:     make(map[string]*stageInstruments, len(stageOrder)),
	}
	for _, s := range stageOrder {
		e.stages[s] = &stageInstruments{
			calls:  reg.Counter("stage." + s + ".calls"),
			hits:   reg.Counter("stage." + s + ".hits"),
			misses: reg.Counter("stage." + s + ".misses"),
			insts:  reg.Counter("stage." + s + ".insts"),
			wall:   reg.Histogram("stage."+s+".wall_ns", obs.DefaultWallBounds),
		}
	}
	return e
}

// Registry returns the engine's metrics registry (never nil).
func (e *Engine) Registry() *obs.Registry { return e.reg }

// MaxDyn returns the engine's dynamic-instruction budget.
func (e *Engine) MaxDyn() int { return e.maxDyn }

// BSAs returns the engine's accelerator-model registry (never nil).
func (e *Engine) BSAs() *bsa.Registry { return e.bsaReg }

// Workers returns the worker-pool bound.
func (e *Engine) Workers() int { return e.workers }

// Metrics snapshots the per-stage counters in pipeline order.
func (e *Engine) Metrics() Metrics {
	var m Metrics
	for _, name := range stageOrder {
		c := e.stages[name]
		m.Stages = append(m.Stages, StageMetrics{
			Stage:  name,
			Calls:  c.calls.Value(),
			Hits:   c.hits.Value(),
			Misses: c.misses.Value(),
			WallNS: c.wall.Sum(),
			Insts:  c.insts.Value(),
		})
	}
	if !e.noSegCache {
		var agg exocore.CacheStats
		e.cachesMu.Lock()
		for _, c := range e.caches {
			s := c.Stats()
			agg.Hits += s.Hits
			agg.Misses += s.Misses
			agg.BytesReused += s.BytesReused
			agg.Entries += s.Entries
			agg.PrefixEntries += s.PrefixEntries
			agg.InternedSigs += s.InternedSigs
			agg.SharedHits += s.SharedHits
		}
		e.cachesMu.Unlock()
		// Mirror the aggregate into registry gauges so the exportable
		// snapshot carries the cache state too.
		e.reg.Gauge("evalcache.segment_hits").Set(agg.Hits)
		e.reg.Gauge("evalcache.segment_misses").Set(agg.Misses)
		e.reg.Gauge("evalcache.bytes_reused").Set(agg.BytesReused)
		e.reg.Gauge("evalcache.entries").Set(agg.Entries)
		e.reg.Gauge("evalcache.prefix_entries").Set(agg.PrefixEntries)
		e.reg.Gauge("evalcache.interned_sigs").Set(agg.InternedSigs)
		e.reg.Gauge("evalcache.shared_hits").Set(agg.SharedHits)
		m.EvalCache = &agg
	}
	m.Points = e.reg.Snapshot()
	return m
}

func (e *Engine) emit(ev Event) {
	if e.progress == nil {
		return
	}
	e.progressMu.Lock()
	e.progress(ev)
	e.progressMu.Unlock()
}

// account records one lookup's counters and fires the progress callback.
// The debug record carries ctx's request ID (if any), so daemon stage
// lookups correlate with their request's trace fragment and access log.
func (e *Engine) account(ctx context.Context, stage, key string, hit bool, wall time.Duration, insts int64) {
	c := e.stages[stage]
	c.calls.Add(1)
	if hit {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
		c.wall.Observe(int64(wall))
		c.insts.Add(insts)
	}
	e.log.DebugCtx(ctx, "stage lookup", "stage", stage, "key", key, "hit", hit, "wall", wall)
	e.emit(Event{Stage: stage, Key: key, CacheHit: hit, Wall: wall})
}

// Trace returns the workload's annotated dynamic trace, computing it at
// most once per Engine.
func (e *Engine) Trace(w *workloads.Workload) (*trace.Trace, error) {
	return e.TraceCtx(context.Background(), w)
}

// TraceCtx is Trace with cancellation: a done ctx aborts before the
// stage computes (in-flight stage work itself runs to completion; the
// boundary check is what keeps a canceled client from starting new
// work). Cancellation errors are never cached — see memo.getCtx.
func (e *Engine) TraceCtx(ctx context.Context, w *workloads.Workload) (*trace.Trace, error) {
	key := w.Name
	tr, hit, wall, err := e.traces.getCtx(ctx, key, func(ctx context.Context) (*trace.Trace, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sp := e.tracer.BeginCtx(ctx, "stage", StageTrace+" "+key)
		defer sp.End()
		if e.chunkInsts < 0 {
			return w.Trace(e.maxDyn) // legacy whole-trace path
		}
		// Default: drain the workload's generator-driven chunk source.
		// Byte-identical to the whole-trace path (all model state
		// carries across chunk boundaries), and the same code large
		// streamed runs exercise, so the tier-1 suite gates it.
		src := w.Source(workloads.SourceConfig{MaxDyn: e.maxDyn, ChunkInsts: e.chunkInsts})
		return trace.Materialize(src, min(e.maxDyn, 1<<16))
	})
	var insts int64
	if tr != nil {
		insts = int64(tr.Len())
	}
	e.account(ctx, StageTrace, key, hit, wall, insts)
	return tr, err
}

// TDG returns the workload's reconstructed TDG (trace + IR + profile),
// computing it at most once per Engine.
func (e *Engine) TDG(w *workloads.Workload) (*tdg.TDG, error) {
	return e.TDGCtx(context.Background(), w)
}

// TDGCtx is TDG with cancellation (see TraceCtx for the semantics).
func (e *Engine) TDGCtx(ctx context.Context, w *workloads.Workload) (*tdg.TDG, error) {
	key := w.Name
	td, hit, wall, err := e.tdgs.getCtx(ctx, key, func(ctx context.Context) (*tdg.TDG, error) {
		tr, err := e.TraceCtx(ctx, w)
		if err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sp := e.tracer.BeginCtx(ctx, "stage", StageTDG+" "+key)
		defer sp.End()
		return tdg.Build(tr)
	})
	var insts int64
	if td != nil {
		insts = int64(td.Trace.Len())
	}
	e.account(ctx, StageTDG, key, hit, wall, insts)
	return td, err
}

// TDGFor builds (and caches) the TDG of an ad-hoc trace under an explicit
// key — the escape hatch for programs authored outside the workload
// registry (eg. the quickstart example). Keys live in their own namespace
// and cannot collide with workload names.
func (e *Engine) TDGFor(key string, tr *trace.Trace) (*tdg.TDG, error) {
	k := "adhoc:" + key
	td, hit, wall, err := e.tdgs.get(k, func() (*tdg.TDG, error) {
		sp := e.tracer.Begin("stage", StageTDG+" "+k)
		defer sp.End()
		return tdg.Build(tr)
	})
	e.account(context.Background(), StageTDG, k, hit, wall, int64(tr.Len()))
	return td, err
}

// Context returns the (benchmark, core) scheduling context — plans for
// all four BSAs, the baseline measurement and every solo candidate
// measurement — computing it at most once per Engine.
func (e *Engine) Context(w *workloads.Workload, core cores.Config) (*sched.Context, error) {
	return e.ContextCtx(context.Background(), w, core)
}

// ContextCtx is Context with cancellation (see TraceCtx for the
// semantics).
func (e *Engine) ContextCtx(ctx context.Context, w *workloads.Workload, core cores.Config) (*sched.Context, error) {
	key := w.Name + "/" + core.Name
	sc, hit, wall, err := e.scheds.getCtx(ctx, key, func(ctx context.Context) (*sched.Context, error) {
		td, err := e.TDGCtx(ctx, w)
		if err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sp := e.tracer.BeginCtx(ctx, "stage", StageSched+" "+key)
		defer sp.End()
		sc, err := sched.NewContextWith(td, core, e.bsaReg.New(),
			sched.ContextOpts{NoSegmentCache: e.noSegCache, NoDelta: e.noDelta,
				Workers: e.workers, Reg: e.reg, Span: sp,
				Persist: e.persist, PersistNS: e.persistNS(key)})
		if err != nil {
			return nil, err
		}
		if sc.Cache != nil {
			e.cachesMu.Lock()
			e.caches = append(e.caches, sc.Cache)
			e.cachesMu.Unlock()
		}
		return sc, nil
	})
	var insts int64
	if sc != nil {
		insts = int64(sc.TDG.Trace.Len())
	}
	e.account(ctx, StageSched, key, hit, wall, insts)
	return sc, err
}

// persistNS derives the durable-store namespace for one scheduling
// context: the format tag, the context key (workload/core) and the
// engine's instruction budget. ChunkInsts is deliberately absent —
// chunked and materialized synthesis are byte-identical — and the BSA
// registry needs no component because unit signatures carry the model
// names themselves.
func (e *Engine) persistNS(contextKey string) string {
	return "u1|" + contextKey + "/" + fmt.Sprint(e.maxDyn) + "|"
}

// AssignmentKey renders an assignment as a canonical signature usable as
// a cache key: loop ids sorted ascending, "loop=bsa;" pairs.
func AssignmentKey(a exocore.Assignment) string {
	loops := make([]int, 0, len(a))
	for l := range a {
		loops = append(loops, l)
	}
	for i := 1; i < len(loops); i++ { // insertion sort; assignments are tiny
		for j := i; j > 0 && loops[j] < loops[j-1]; j-- {
			loops[j], loops[j-1] = loops[j-1], loops[j]
		}
	}
	var sb []byte
	for _, l := range loops {
		sb = fmt.Appendf(sb, "%d=%s;", l, a[l])
	}
	return string(sb)
}

// Evaluate runs the benchmark on the core under an assignment and returns
// (cycles, total energy in nJ). Identical assignments — which recur
// constantly across the 16 BSA subsets of a sweep — are evaluated once
// and served from cache afterwards.
func (e *Engine) Evaluate(w *workloads.Workload, core cores.Config, assign exocore.Assignment) (int64, float64, error) {
	return e.EvaluateCtx(context.Background(), w, core, assign)
}

// EvaluateCtx is Evaluate with cancellation (see TraceCtx for the
// semantics).
func (e *Engine) EvaluateCtx(ctx context.Context, w *workloads.Workload, core cores.Config, assign exocore.Assignment) (int64, float64, error) {
	key := w.Name + "/" + core.Name + "/" + AssignmentKey(assign)
	res, hit, wall, err := e.evals.getCtx(ctx, key, func(ctx context.Context) (evalResult, error) {
		sc, err := e.ContextCtx(ctx, w, core)
		if err != nil {
			return evalResult{}, err
		}
		if err := ctx.Err(); err != nil {
			return evalResult{}, err
		}
		sp := e.tracer.BeginCtx(ctx, "stage", StageEval+" "+key)
		defer sp.End()
		cycles, energy, err := sc.EvaluateSpan(assign, sp)
		if err != nil {
			return evalResult{}, err
		}
		return evalResult{cycles: cycles, energyNJ: energy}, nil
	})
	e.account(ctx, StageEval, key, hit, wall, 0)
	if err != nil {
		return 0, 0, err
	}
	return res.cycles, res.energyNJ, nil
}

// StreamBaselineResult is the memoized outcome of one streamed baseline
// run: the general-core evaluation plus the streaming TDG summary
// (profile + statistics) of the trace that was never materialized.
type StreamBaselineResult struct {
	Res    *exocore.RunResult
	Stream *tdg.Stream
}

// Dyn returns the number of dynamic instructions the streamed run
// evaluated.
func (r *StreamBaselineResult) Dyn() int { return r.Stream.Dyn }

// StreamBaseline evaluates the workload's general-core baseline on a
// chunked generator-driven source: functional simulation and annotation
// run on a producer goroutine, pipelined behind a bounded channel with
// the µDG evaluation, while the streaming TDG builder observes every
// chunk in passing — peak memory is O(chunk + window) end to end, so
// paper-scale budgets (-maxdyn 200000000) fit in a fixed process
// footprint. loop selects the steady-state repeated-kernel mode (see
// workloads.SourceConfig.Loop) for budgets beyond the kernel's natural
// execution.
//
// The engine memoizes the result, not a trace: the source is replayable
// (same workload, same seed, same bytes), so re-deriving anything else
// later costs one more streaming pass rather than 16 bytes per
// instruction of residency. Results are byte-identical to the
// materialized exocore.Run baseline at overlapping trace sizes.
func (e *Engine) StreamBaseline(w *workloads.Workload, core cores.Config, loop bool) (*StreamBaselineResult, error) {
	return e.StreamBaselineCtx(context.Background(), w, core, loop)
}

// StreamBaselineCtx is StreamBaseline with cancellation (see TraceCtx
// for the semantics).
func (e *Engine) StreamBaselineCtx(ctx context.Context, w *workloads.Workload, core cores.Config, loop bool) (*StreamBaselineResult, error) {
	key := w.Name + "/" + core.Name
	if loop {
		key += "/loop"
	}
	res, hit, wall, err := e.streams.getCtx(ctx, key, func(ctx context.Context) (*StreamBaselineResult, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sp := e.tracer.BeginCtx(ctx, "stage", "stream "+key)
		defer sp.End()

		gen := w.Source(workloads.SourceConfig{
			MaxDyn: e.maxDyn, ChunkInsts: e.chunkInsts, Loop: loop,
		})
		sb, err := tdg.NewStreamBuilder(gen.Prog())
		if err != nil {
			return nil, err
		}
		// The tee runs on the producer side of the pipeline, so profile
		// construction overlaps evaluation along with chunk synthesis.
		src := trace.NewPipelined(trace.Tee(gen, sb.Feed), 0)
		rr, err := exocore.RunStream(src, core, exocore.RunOpts{Reg: e.reg})
		if err != nil {
			src.Stop()
			return nil, err
		}
		return &StreamBaselineResult{Res: rr, Stream: sb.Finish()}, nil
	})
	var insts int64
	if res != nil {
		insts = int64(res.Stream.Dyn)
	}
	// Streamed runs account under their own lazily-created instruments:
	// stageOrder instruments are part of every tool's metrics snapshot,
	// which must not change shape for runs that never stream.
	c := e.reg.Counter("stream.baseline.calls")
	c.Add(1)
	if !hit {
		e.reg.Counter("stream.baseline.misses").Add(1)
		e.reg.Histogram("stream.baseline.wall_ns", obs.DefaultWallBounds).Observe(int64(wall))
		e.reg.Counter("stream.baseline.insts").Add(insts)
	}
	e.log.DebugCtx(ctx, "stage lookup", "stage", "stream", "key", key, "hit", hit, "wall", wall)
	e.emit(Event{Stage: "stream", Key: key, CacheHit: hit, Wall: wall})
	return res, err
}

// ForEach runs fn(0..n-1) over the bounded worker pool and waits for all
// of them. The returned error is deterministic regardless of completion
// order: the one produced by the lowest index that failed.
func (e *Engine) ForEach(n int, fn func(i int) error) error {
	return e.ForEachCtx(context.Background(), n, fn)
}

// ForEachCtx is ForEach with cancellation: once ctx is done, workers stop
// claiming new indices (in-flight fn calls run to completion) and the
// unstarted indices fail with ctx.Err(). The returned error stays
// deterministic under a given cancellation point: the lowest failed
// index wins.
func (e *Engine) ForEachCtx(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := e.workers
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn(0..n-1) over the engine's worker pool and returns the
// results in index order — deterministic regardless of which worker
// finished first. On error, the partial results are still returned.
func Map[R any](e *Engine, n int, fn func(i int) (R, error)) ([]R, error) {
	return MapCtx(context.Background(), e, n, fn)
}

// MapCtx is Map with cancellation (see ForEachCtx for the semantics).
func MapCtx[R any](ctx context.Context, e *Engine, n int, fn func(i int) (R, error)) ([]R, error) {
	out := make([]R, n)
	err := e.ForEachCtx(ctx, n, func(i int) error {
		r, err := fn(i)
		out[i] = r
		return err
	})
	return out, err
}
