package runner

import (
	"errors"
	"sync"
	"testing"

	"exocore/internal/cores"
	"exocore/internal/exocore"
	"exocore/internal/sched"
	"exocore/internal/workloads"
)

const testMaxDyn = 10_000

func testWorkload(t *testing.T, name string) *workloads.Workload {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestStageCacheHitMissAccounting(t *testing.T) {
	e := New(Options{MaxDyn: testMaxDyn})
	w := testWorkload(t, "mm")

	if _, err := e.Trace(w); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Trace(w); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	tr := m.Stage(StageTrace)
	if tr.Calls != 2 || tr.Misses != 1 || tr.Hits != 1 {
		t.Errorf("trace stage = %+v, want calls=2 misses=1 hits=1", tr)
	}
	if tr.Insts != testMaxDyn {
		t.Errorf("trace insts = %d, want %d (only misses count work)", tr.Insts, testMaxDyn)
	}

	// TDG miss reuses the cached trace (a third trace call, a hit).
	if _, err := e.TDG(w); err != nil {
		t.Fatal(err)
	}
	m = e.Metrics()
	if got := m.Stage(StageTrace).Hits; got != 2 {
		t.Errorf("trace hits after TDG = %d, want 2", got)
	}
	if td := m.Stage(StageTDG); td.Misses != 1 || td.WallNS <= 0 {
		t.Errorf("tdg stage = %+v, want misses=1 and wall > 0", td)
	}

	// Context miss chains TDG (hit) internally.
	if _, err := e.Context(w, cores.OOO2); err != nil {
		t.Fatal(err)
	}
	m = e.Metrics()
	if got := m.Stage(StageTDG).Hits; got != 1 {
		t.Errorf("tdg hits after Context = %d, want 1", got)
	}
	if sc := m.Stage(StageSched); sc.Misses != 1 {
		t.Errorf("sched stage = %+v, want misses=1", sc)
	}
}

func TestConcurrentSingleflight(t *testing.T) {
	e := New(Options{MaxDyn: testMaxDyn, Workers: 8})
	w := testWorkload(t, "mm")

	const callers = 16
	ctxs := make([]*sched.Context, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sc, err := e.Context(w, cores.OOO2)
			if err != nil {
				t.Error(err)
				return
			}
			ctxs[i] = sc
		}(i)
	}
	wg.Wait()

	for i := 1; i < callers; i++ {
		if ctxs[i] != ctxs[0] {
			t.Fatalf("caller %d got a different context instance", i)
		}
	}
	m := e.Metrics().Stage(StageSched)
	if m.Misses != 1 {
		t.Errorf("sched misses = %d, want 1 (computed exactly once)", m.Misses)
	}
	if m.Hits != callers-1 {
		t.Errorf("sched hits = %d, want %d", m.Hits, callers-1)
	}
}

func TestEvaluateCachedMatchesUncached(t *testing.T) {
	e := New(Options{MaxDyn: testMaxDyn})
	w := testWorkload(t, "cjpeg")
	core := cores.OOO2

	sc, err := e.Context(w, core)
	if err != nil {
		t.Fatal(err)
	}
	assign := sc.Oracle(e.BSAs().Names())

	// Fresh, uncached evaluation straight on the scheduling context.
	wantCycles, wantEnergy, err := sc.Evaluate(assign)
	if err != nil {
		t.Fatal(err)
	}

	// First engine call computes, second is served from cache; both must
	// be identical to the uncached result.
	for i, wantHit := range []bool{false, true} {
		cycles, energy, err := e.Evaluate(w, core, assign)
		if err != nil {
			t.Fatal(err)
		}
		if cycles != wantCycles || energy != wantEnergy {
			t.Errorf("call %d: got (%d, %g), uncached (%d, %g)",
				i, cycles, energy, wantCycles, wantEnergy)
		}
		m := e.Metrics().Stage(StageEval)
		if wantHit && m.Hits == 0 {
			t.Error("second evaluation not served from cache")
		}
	}
}

func TestEvaluateDistinctAssignmentsDistinctEntries(t *testing.T) {
	e := New(Options{MaxDyn: testMaxDyn})
	w := testWorkload(t, "cjpeg")
	sc, err := e.Context(w, cores.OOO2)
	if err != nil {
		t.Fatal(err)
	}
	oracle := sc.Oracle(e.BSAs().Names())
	none := exocore.Assignment{}
	c1, _, err := e.Evaluate(w, cores.OOO2, oracle)
	if err != nil {
		t.Fatal(err)
	}
	c2, _, err := e.Evaluate(w, cores.OOO2, none)
	if err != nil {
		t.Fatal(err)
	}
	if len(oracle) > 0 && c1 == c2 {
		t.Errorf("oracle (%d) and empty (%d) assignment collided in cache", c1, c2)
	}
	if got := e.evals.len(); got != 2 {
		t.Errorf("eval cache entries = %d, want 2", got)
	}
}

func TestAssignmentKeyCanonical(t *testing.T) {
	a := exocore.Assignment{3: "SIMD", 1: "NS-DF", 2: "Trace-P"}
	b := exocore.Assignment{2: "Trace-P", 1: "NS-DF", 3: "SIMD"}
	if AssignmentKey(a) != AssignmentKey(b) {
		t.Errorf("same assignment, different keys: %q vs %q", AssignmentKey(a), AssignmentKey(b))
	}
	if AssignmentKey(a) != "1=NS-DF;2=Trace-P;3=SIMD;" {
		t.Errorf("key = %q", AssignmentKey(a))
	}
	if AssignmentKey(nil) != "" {
		t.Errorf("nil assignment key = %q, want empty", AssignmentKey(nil))
	}
}

func TestErrorsAreCached(t *testing.T) {
	var computes int
	var m memo[int]
	want := errors.New("boom")
	for i := 0; i < 3; i++ {
		_, _, _, err := m.get("k", func() (int, error) {
			computes++
			return 0, want
		})
		if err != want {
			t.Fatalf("call %d: err = %v", i, err)
		}
	}
	if computes != 1 {
		t.Errorf("computes = %d, want 1 (errors cached, not retried)", computes)
	}
}

func TestForEachFirstErrorDeterministic(t *testing.T) {
	e := New(Options{MaxDyn: testMaxDyn, Workers: 8})
	err := e.ForEach(100, func(i int) error {
		if i%10 == 7 { // 7, 17, 27, ... all fail
			return errors.New(string(rune('a' + i/10)))
		}
		return nil
	})
	if err == nil || err.Error() != "a" {
		t.Errorf("err = %v, want the lowest failing index's error %q", err, "a")
	}
}

func TestMapPreservesOrder(t *testing.T) {
	e := New(Options{MaxDyn: testMaxDyn, Workers: 8})
	out, err := Map(e, 64, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestProgressEvents(t *testing.T) {
	var events []Event
	e := New(Options{MaxDyn: testMaxDyn, Progress: func(ev Event) { events = append(events, ev) }})
	w := testWorkload(t, "mm")
	if _, err := e.Trace(w); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Trace(w); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if events[0].CacheHit || !events[1].CacheHit {
		t.Errorf("expected miss then hit, got %+v", events)
	}
	if events[0].Stage != StageTrace || events[0].Key != "mm" {
		t.Errorf("event = %+v", events[0])
	}
}
