package runner

import (
	"reflect"
	"testing"

	"exocore/internal/cores"
	"exocore/internal/exocore"
)

// TestStreamBaselineMatchesMaterialized pins the engine-level identity:
// the streamed baseline (generator source, pipelined, never a whole
// trace) must agree exactly with exocore.Run on the materialized TDG,
// and the streamed TDG summary must match the materialized build.
func TestStreamBaselineMatchesMaterialized(t *testing.T) {
	for _, chunk := range []int{0, 1 << 12} { // 0 = DefaultChunkInsts
		e := New(Options{MaxDyn: testMaxDyn, ChunkInsts: chunk})
		for _, bench := range []string{"cjpeg", "bfs"} {
			w := testWorkload(t, bench)
			td, err := e.TDG(w)
			if err != nil {
				t.Fatal(err)
			}
			whole, err := exocore.Run(td, cores.OOO2, nil, nil, nil, exocore.RunOpts{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.StreamBaseline(w, cores.OOO2, false)
			if err != nil {
				t.Fatal(err)
			}
			if got.Res.Cycles != whole.Cycles || got.Res.Counts != whole.Counts {
				t.Errorf("%s chunk %d: streamed baseline (%d cycles) != materialized (%d)",
					bench, chunk, got.Res.Cycles, whole.Cycles)
			}
			if got.Stream.Dyn != td.Trace.Len() {
				t.Errorf("%s chunk %d: streamed dyn %d != trace len %d",
					bench, chunk, got.Stream.Dyn, td.Trace.Len())
			}
			if got.Stream.Stats != td.Trace.ComputeStats() {
				t.Errorf("%s chunk %d: streamed stats diverge", bench, chunk)
			}
			if !reflect.DeepEqual(got.Stream.Prof.BlockCount, td.Prof.BlockCount) {
				t.Errorf("%s chunk %d: streamed profile diverges", bench, chunk)
			}
		}
	}
}

// TestStreamBaselineMemoized: the second call must be a cache hit
// returning the same instance, and the chunk high-water gauge must show
// a bounded (few-buffer) footprint rather than a whole-trace residency.
func TestStreamBaselineMemoized(t *testing.T) {
	e := New(Options{MaxDyn: testMaxDyn, ChunkInsts: 1 << 12})
	w := testWorkload(t, "mm")

	first, err := e.StreamBaseline(w, cores.IO2, false)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.StreamBaseline(w, cores.IO2, false)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("second StreamBaseline call did not hit the memo")
	}
	reg := e.Registry()
	if got := reg.Counter("stream.baseline.calls").Value(); got != 2 {
		t.Errorf("stream.baseline.calls = %d, want 2", got)
	}
	if got := reg.Counter("stream.baseline.misses").Value(); got != 1 {
		t.Errorf("stream.baseline.misses = %d, want 1", got)
	}
	hw := reg.Gauge("trace.chunk_high_water_bytes").Value()
	const instBytes = 16
	if hw <= 0 || hw > 8*(1<<12)*instBytes {
		t.Errorf("chunk high water = %d bytes, want bounded few-buffer footprint", hw)
	}
}

// TestStreamBaselineLoopFillsBudget: loop mode must extend a short
// kernel to the full dynamic budget (the paper-scale steady-state mode),
// memoized separately from the single-execution baseline.
func TestStreamBaselineLoopFillsBudget(t *testing.T) {
	const budget = 50_000 // fft's natural execution is ~18k insts
	e := New(Options{MaxDyn: budget, ChunkInsts: 1 << 12})
	w := testWorkload(t, "fft")

	single, err := e.StreamBaseline(w, cores.OOO2, false)
	if err != nil {
		t.Fatal(err)
	}
	if single.Dyn() >= budget {
		t.Fatalf("fft natural execution %d insts, need < %d for this test", single.Dyn(), budget)
	}
	looped, err := e.StreamBaseline(w, cores.OOO2, true)
	if err != nil {
		t.Fatal(err)
	}
	if looped.Dyn() != budget {
		t.Errorf("looped dyn = %d, want full budget %d", looped.Dyn(), budget)
	}
	if looped == single {
		t.Error("loop and single baselines share a memo entry")
	}
}
