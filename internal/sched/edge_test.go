package sched

import (
	"testing"

	"exocore/internal/cores"
	"exocore/internal/ir"
	"exocore/internal/tdg"
)

// syntheticContext fabricates a Context around a hand-built loop nest
// and profile, skipping trace construction entirely: the scheduler's
// decision logic reads only the fields set here (the paper's "past
// execution characteristics"), so edge cases can be pinned exactly.
func syntheticContext(loops []ir.Loop, roots []int, profs []ir.LoopProfile, totalDyn int64) *Context {
	nest := &ir.LoopNest{Loops: loops, Roots: roots}
	return &Context{
		TDG:          &tdg.TDG{Nest: nest, Prof: &ir.Profile{Nest: nest, Loops: profs, TotalDyn: totalDyn}},
		Core:         cores.OOO2,
		Plans:        map[string]*tdg.Plan{},
		BaseCycles:   1000,
		BaseEnergyNJ: 1000,
	}
}

// singleRegion is the smallest workload shape: one root loop, no
// children, covering the whole execution.
func singleRegion() *Context {
	return syntheticContext(
		[]ir.Loop{{ID: 0, Parent: -1, Depth: 1}},
		[]int{0},
		[]ir.LoopProfile{{LoopID: 0, DynInsts: 1000}},
		1000,
	)
}

func TestOracleEmptyAvail(t *testing.T) {
	c := singleRegion()
	// A candidate that would win easily if its BSA were available.
	c.Candidates = []Candidate{{LoopID: 0, BSA: "SIMD", Cycles: 500, EnergyNJ: 100}}
	if got := c.Oracle(nil); len(got) != 0 {
		t.Errorf("Oracle(nil) = %v, want empty", got)
	}
	if got := c.Oracle([]string{}); len(got) != 0 {
		t.Errorf("Oracle([]) = %v, want empty", got)
	}
	// Available set that doesn't intersect the candidates either.
	if got := c.Oracle([]string{"NS-DF"}); len(got) != 0 {
		t.Errorf("Oracle(disjoint) = %v, want empty", got)
	}
}

func TestOracleSingleRegion(t *testing.T) {
	c := singleRegion()
	c.Candidates = []Candidate{
		{LoopID: 0, BSA: "SIMD", Cycles: 500, EnergyNJ: 400},    // EDP 200k, gain 800k
		{LoopID: 0, BSA: "DP-CGRA", Cycles: 400, EnergyNJ: 900}, // EDP 360k, gain 640k
	}
	got := c.Oracle([]string{"SIMD", "DP-CGRA"})
	if len(got) != 1 || got[0] != "SIMD" {
		t.Fatalf("Oracle picked %v, want {0: SIMD} (best EDP gain)", got)
	}
	// Restricting to the weaker BSA must still use it: any gain beats
	// none on a single region.
	got = c.Oracle([]string{"DP-CGRA"})
	if len(got) != 1 || got[0] != "DP-CGRA" {
		t.Fatalf("Oracle picked %v, want {0: DP-CGRA}", got)
	}
	// A candidate with negative gain (EDP worse than baseline) stays on
	// the general core.
	c.Candidates = []Candidate{{LoopID: 0, BSA: "SIMD", Cycles: 1000, EnergyNJ: 1000}}
	if got := c.Oracle([]string{"SIMD"}); len(got) != 0 {
		t.Fatalf("Oracle accepted a zero-gain candidate: %v", got)
	}
}

// TestOraclePerfLossGuardBoundary pins the §4 guard at its exact edge:
// the loop covers 100% of a 1000-cycle baseline, so the guard allows a
// solo slowdown of exactly 100 cycles. 1100 is accepted (the paper says
// "no MORE than 10%"), 1101 is rejected — even though both candidates
// improve EDP substantially.
func TestOraclePerfLossGuardBoundary(t *testing.T) {
	c := singleRegion()
	c.Candidates = []Candidate{{LoopID: 0, BSA: "SIMD", Cycles: 1100, EnergyNJ: 100}}
	if got := c.Oracle([]string{"SIMD"}); len(got) != 1 {
		t.Fatalf("exactly-10%% slowdown rejected: %v", got)
	}

	c.Candidates = []Candidate{{LoopID: 0, BSA: "SIMD", Cycles: 1101, EnergyNJ: 100}}
	if got := c.Oracle([]string{"SIMD"}); len(got) != 0 {
		t.Fatalf("over-10%% slowdown accepted: %v", got)
	}

	// The guard scales with the region's share: same 1100-cycle solo
	// against a loop covering only half the execution (regionBase 500,
	// budget 50) must be rejected.
	half := syntheticContext(
		[]ir.Loop{{ID: 0, Parent: -1, Depth: 1}},
		[]int{0},
		[]ir.LoopProfile{{LoopID: 0, DynInsts: 500}},
		1000,
	)
	half.Candidates = []Candidate{{LoopID: 0, BSA: "SIMD", Cycles: 1100, EnergyNJ: 100}}
	if got := half.Oracle([]string{"SIMD"}); len(got) != 0 {
		t.Fatalf("guard did not scale with region share: %v", got)
	}
}

func TestAmdahlTreeEmptyAvail(t *testing.T) {
	c := singleRegion()
	c.Plans["SIMD"] = &tdg.Plan{BSA: "SIMD", Regions: map[int]*tdg.Region{
		0: {LoopID: 0, EstSpeedup: 4.0},
	}}
	if got := c.AmdahlTree(nil); len(got) != 0 {
		t.Errorf("AmdahlTree(nil) = %v, want empty", got)
	}
	if got := c.AmdahlTree([]string{"NS-DF"}); len(got) != 0 {
		t.Errorf("AmdahlTree(disjoint) = %v, want empty", got)
	}
}

func TestAmdahlTreeSingleRegion(t *testing.T) {
	c := singleRegion()
	c.Plans["SIMD"] = &tdg.Plan{BSA: "SIMD", Regions: map[int]*tdg.Region{
		0: {LoopID: 0, EstSpeedup: 2.0},
	}}
	got := c.AmdahlTree([]string{"SIMD"})
	if len(got) != 1 || got[0] != "SIMD" {
		t.Fatalf("AmdahlTree = %v, want {0: SIMD}", got)
	}

	// The scheduler is over-calibrated towards offload (§5.4): an
	// estimated *slowdown* inside the 1.10 bias is still claimed...
	c.Plans["SIMD"].Regions[0].EstSpeedup = 0.95
	if got := c.AmdahlTree([]string{"SIMD"}); len(got) != 1 {
		t.Fatalf("bias window not applied: %v", got)
	}
	// ...but one outside it is not (1/0.90 > 1.10).
	c.Plans["SIMD"].Regions[0].EstSpeedup = 0.90
	if got := c.AmdahlTree([]string{"SIMD"}); len(got) != 0 {
		t.Fatalf("claimed a region beyond the bias window: %v", got)
	}
}

// TestAmdahlTreeClaimReleasesChildren: a parent claim must clear
// descendant assignments — the assignment is hierarchical, one model
// per dynamic instruction.
func TestAmdahlTreeClaimReleasesChildren(t *testing.T) {
	c := syntheticContext(
		[]ir.Loop{
			{ID: 0, Parent: -1, Depth: 1, Children: []int{1}},
			{ID: 1, Parent: 0, Depth: 2},
		},
		[]int{0},
		[]ir.LoopProfile{
			{LoopID: 0, DynInsts: 1000},
			{LoopID: 1, DynInsts: 600},
		},
		1000,
	)
	// The child is modestly accelerable, the parent massively so: the
	// whole subtree must go to the parent's BSA.
	c.Plans["SIMD"] = &tdg.Plan{BSA: "SIMD", Regions: map[int]*tdg.Region{
		1: {LoopID: 1, EstSpeedup: 1.5},
	}}
	c.Plans["Trace-P"] = &tdg.Plan{BSA: "Trace-P", Regions: map[int]*tdg.Region{
		0: {LoopID: 0, EstSpeedup: 8.0},
	}}
	got := c.AmdahlTree([]string{"SIMD", "Trace-P"})
	if len(got) != 1 || got[0] != "Trace-P" {
		t.Fatalf("AmdahlTree = %v, want {0: Trace-P} with the child released", got)
	}
}
