package sched

import (
	"testing"

	"exocore/internal/bsa"
	"exocore/internal/cores"
	"exocore/internal/tdg"
	"exocore/internal/workloads"
)

// fullContextFor is contextFor over the full default registry, GS-DAE
// included.
func fullContextFor(t *testing.T, bench string, core cores.Config) *Context {
	t.Helper()
	w, err := workloads.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := w.Trace(30000)
	if err != nil {
		t.Fatal(err)
	}
	td, err := tdg.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(td, core, bsa.Default().New())
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

// TestGraphRegionsPreferGSDAE is the behavior-specialization check for
// the decoupled gather-scatter engine: with every model available, the
// measurement-driven Oracle must hand at least one region of each
// index-chasing graph kernel to GS-DAE, and must never pick it for a
// dense, strided, SPEC-like kernel — where the engine either abstains
// (no gathers to decouple) or loses to the paper's four.
func TestGraphRegionsPreferGSDAE(t *testing.T) {
	names := bsa.Default().Names()
	for _, bench := range []string{"bfs", "tricount"} {
		ctx := fullContextFor(t, bench, cores.OOO2)
		assign := ctx.Oracle(names)
		won := false
		for _, b := range assign {
			if b == "GS-DAE" {
				won = true
			}
		}
		t.Logf("%s: oracle=%v", bench, assign)
		if !won {
			t.Errorf("%s: oracle never chose GS-DAE: %v", bench, assign)
		}
	}
	for _, bench := range []string{"mm", "stencil", "nbody"} {
		ctx := fullContextFor(t, bench, cores.OOO2)
		assign := ctx.Oracle(names)
		for l, b := range assign {
			if b == "GS-DAE" {
				t.Errorf("%s: GS-DAE won regular region L%d — it must lose on dense kernels", bench, l)
			}
		}
	}
}

// TestAmdahlSelectsGSDAEOnGraph pins the same preference for the
// heuristic scheduler: the estimate-driven Amdahl tree must also route
// at least one graph region to GS-DAE, or the §5.4 comparison would
// never exercise the new engine.
func TestAmdahlSelectsGSDAEOnGraph(t *testing.T) {
	names := bsa.Default().Names()
	won := false
	for _, bench := range []string{"bfs", "pagerank", "tricount"} {
		ctx := fullContextFor(t, bench, cores.OOO2)
		assign := ctx.AmdahlTree(names)
		t.Logf("%s: amdahl=%v", bench, assign)
		for _, b := range assign {
			if b == "GS-DAE" {
				won = true
			}
		}
	}
	if !won {
		t.Error("amdahl-tree never chose GS-DAE on any graph kernel")
	}
}
