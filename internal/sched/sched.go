// Package sched implements BSA selection for ExoCores: the Oracle
// scheduler that picks the best accelerator per static region from
// measured execution characteristics with an energy-delay metric and a
// 10% performance-loss guard (paper §4), and the Amdahl-Tree scheduler
// that composes approximate per-region speedup estimates bottom-up over
// the loop nest (paper §3.3, Figure 9).
package sched

import (
	"fmt"
	"sort"
	"strconv"

	"exocore/internal/cores"
	"exocore/internal/exocore"
	"exocore/internal/obs"
	"exocore/internal/tdg"
)

// Candidate is one measured (loop, BSA) acceleration option.
type Candidate struct {
	LoopID int
	BSA    string
	// Cycles and EnergyNJ are whole-benchmark totals with only this
	// region assigned ("past execution characteristics").
	Cycles   int64
	EnergyNJ float64
	// EstSpeedup is the analyzer's static estimate (Amdahl tree input).
	EstSpeedup float64
}

// Context holds everything needed to schedule one benchmark on one core:
// plans, baseline measurements and per-candidate solo measurements.
type Context struct {
	TDG   *tdg.TDG
	Core  cores.Config
	BSAs  map[string]tdg.BSA
	Plans map[string]*tdg.Plan

	// Cache memoizes evaluation-unit outcomes across every Run this
	// context issues (baseline, per-candidate solos, and Evaluate calls
	// for full designs). Nil when the cache is disabled.
	Cache *exocore.Cache

	BaseCycles   int64
	BaseEnergyNJ float64
	Candidates   []Candidate

	reg     *obs.Registry
	noDelta bool
}

// ContextOpts tunes context construction.
type ContextOpts struct {
	// NoSegmentCache disables unit-outcome memoization: every Run
	// re-evaluates every unit from scratch. Used by the equivalence gate
	// and for A/B measurement.
	NoSegmentCache bool
	// Reg, when non-nil, receives evaluation metrics (segment-length
	// histogram, per-BSA offload counters) from every Run this context
	// issues, including later Evaluate calls.
	Reg *obs.Registry
	// Span, when active, parents one child span per measurement run the
	// constructor issues (baseline plus each candidate solo). Inert spans
	// cost a nil check.
	Span obs.Span
	// NoDelta disables the delta composer and prefix publication inside
	// every Run this context issues (candidate solos and later Evaluate
	// calls). The unit cache itself stays on unless NoSegmentCache is also
	// set. A/B escape hatch behind the -nodelta flag.
	NoDelta bool
	// Workers bounds the number of candidate solo measurements run
	// concurrently during construction. Values <= 1 keep the serial loop;
	// an active Span also forces serial measurement because child spans
	// share the parent's trace lane and must not overlap.
	Workers int
	// Persist, when non-nil, attaches a durable unit-outcome store under
	// the context's cache, namespaced by PersistNS (which must uniquely
	// identify the (trace, core, BSA set) tuple across restarts — see
	// exocore.Cache.AttachPersist). Ignored with NoSegmentCache.
	Persist   exocore.Persist
	PersistNS string
}

// NewContext analyzes the TDG with every BSA and measures the baseline
// plus each (loop, BSA) candidate in isolation.
func NewContext(t *tdg.TDG, core cores.Config, bsas map[string]tdg.BSA) (*Context, error) {
	return NewContextWith(t, core, bsas, ContextOpts{})
}

// NewContextWith is NewContext with explicit options.
func NewContextWith(t *tdg.TDG, core cores.Config, bsas map[string]tdg.BSA, opts ContextOpts) (*Context, error) {
	ctx := &Context{TDG: t, Core: core, BSAs: bsas, Plans: make(map[string]*tdg.Plan), reg: opts.Reg, noDelta: opts.NoDelta}
	if !opts.NoSegmentCache {
		ctx.Cache = exocore.NewCache(core, t.Trace.Len())
		if opts.Persist != nil {
			ctx.Cache.AttachPersist(opts.Persist, opts.PersistNS)
		}
	}
	for name, b := range bsas {
		ctx.Plans[name] = b.Analyze(t)
	}
	bsp := obs.Span{}
	if opts.Span.Active() {
		bsp = opts.Span.Child("run", "baseline")
	}
	base, err := exocore.Run(t, core, bsas, ctx.Plans, nil,
		exocore.RunOpts{Cache: ctx.Cache, Span: bsp, Reg: opts.Reg, NoDelta: opts.NoDelta})
	bsp.End()
	if err != nil {
		return nil, fmt.Errorf("sched: baseline: %w", err)
	}
	ctx.BaseCycles = base.Cycles
	ctx.BaseEnergyNJ = exocore.EnergyOf(base, core, bsas).TotalNJ()

	// Candidate solo measurements, in deterministic (BSA name, loop)
	// order. The job list is built serially; measurement fans out on a
	// bounded worker pool when requested, with results landing at their
	// job index so Candidates keeps the exact serial order.
	type job struct {
		name string
		loop int
	}
	var names []string
	for name := range bsas {
		names = append(names, name)
	}
	sort.Strings(names)
	var jobs []job
	for _, name := range names {
		var loops []int
		for l := range ctx.Plans[name].Regions {
			loops = append(loops, l)
		}
		sort.Ints(loops)
		for _, l := range loops {
			jobs = append(jobs, job{name: name, loop: l})
		}
	}

	measure := func(j job, sp obs.Span) (Candidate, error) {
		res, err := exocore.Run(t, core, bsas, ctx.Plans,
			exocore.Assignment{j.loop: j.name},
			exocore.RunOpts{Cache: ctx.Cache, Span: sp, Reg: opts.Reg, NoDelta: opts.NoDelta})
		if err != nil {
			return Candidate{}, fmt.Errorf("sched: candidate %s@L%d: %w", j.name, j.loop, err)
		}
		return Candidate{
			LoopID: j.loop, BSA: j.name,
			Cycles:     res.Cycles,
			EnergyNJ:   exocore.EnergyOf(res, core, bsas).TotalNJ(),
			EstSpeedup: ctx.Plans[j.name].Regions[j.loop].EstSpeedup,
		}, nil
	}

	workers := opts.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	// Child spans share the parent's trace lane, so concurrent candidate
	// spans would interleave and break the nesting invariant; tracing
	// forces the serial path.
	if workers > 1 && !opts.Span.Active() {
		results := make([]Candidate, len(jobs))
		errs := make([]error, len(jobs))
		next := make(chan int)
		done := make(chan struct{})
		for w := 0; w < workers; w++ {
			go func() {
				defer func() { done <- struct{}{} }()
				for i := range next {
					results[i], errs[i] = measure(jobs[i], obs.Span{})
				}
			}()
		}
		for i := range jobs {
			next <- i
		}
		close(next)
		for w := 0; w < workers; w++ {
			<-done
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		ctx.Candidates = append(ctx.Candidates, results...)
		return ctx, nil
	}

	for _, j := range jobs {
		csp := obs.Span{}
		if opts.Span.Active() {
			csp = opts.Span.Child("run", "candidate "+j.name+"@L"+strconv.Itoa(j.loop))
		}
		cand, err := measure(j, csp)
		csp.End()
		if err != nil {
			return nil, err
		}
		ctx.Candidates = append(ctx.Candidates, cand)
	}
	return ctx, nil
}

// PerfLossGuard is the maximum region-level slowdown the Oracle accepts
// (paper §4: "no individual region should reduce the performance by more
// than 10%").
const PerfLossGuard = 0.10

// Oracle returns the energy-delay-optimal assignment drawing only from
// the available BSA subset, resolved hierarchically over the loop forest
// (a region choice covers its nested loops).
func (c *Context) Oracle(avail []string) exocore.Assignment {
	availSet := make(map[string]bool, len(avail))
	for _, a := range avail {
		availSet[a] = true
	}
	baseEDP := float64(c.BaseCycles) * c.BaseEnergyNJ

	// Best candidate gain per loop.
	type choice struct {
		bsa  string
		gain float64
	}
	bestAt := make(map[int]choice)
	for _, cand := range c.Candidates {
		if !availSet[cand.BSA] {
			continue
		}
		// Perf guard: the solo slowdown must not exceed 10% of the
		// region's share of baseline time.
		regionBase := float64(c.BaseCycles) * c.TDG.Prof.LoopShare(cand.LoopID)
		if float64(cand.Cycles-c.BaseCycles) > PerfLossGuard*regionBase {
			continue
		}
		gain := baseEDP - float64(cand.Cycles)*cand.EnergyNJ
		if gain <= 0 {
			continue
		}
		if cur, ok := bestAt[cand.LoopID]; !ok || gain > cur.gain {
			bestAt[cand.LoopID] = choice{bsa: cand.BSA, gain: gain}
		}
	}

	// Tree DP: for each loop take max(own best assignment, sum of
	// children's best solutions).
	assign := exocore.Assignment{}
	var solve func(loop int) float64
	solve = func(loop int) float64 {
		childSum := 0.0
		for _, ch := range c.TDG.Nest.Loops[loop].Children {
			childSum += solve(ch)
		}
		own, ok := bestAt[loop]
		if ok && own.gain > childSum {
			// Claim this loop; release any descendant assignments.
			c.clearSubtree(assign, loop)
			assign[loop] = own.bsa
			return own.gain
		}
		return childSum
	}
	for _, root := range c.TDG.Nest.Roots {
		solve(root)
	}
	return assign
}

func (c *Context) clearSubtree(assign exocore.Assignment, loop int) {
	for _, ch := range c.TDG.Nest.Loops[loop].Children {
		delete(assign, ch)
		c.clearSubtree(assign, ch)
	}
}

// AmdahlTree returns the assignment a profile-guided compiler would pick
// without oracle measurements: each loop node carries estimated
// per-BSA speedups, and a bottom-up traversal applies Amdahl's law at
// each node to decide whether to claim the whole subtree for one BSA or
// keep the children's choices (paper Figure 9).
func (c *Context) AmdahlTree(avail []string) exocore.Assignment {
	availSet := make(map[string]bool, len(avail))
	for _, a := range avail {
		availSet[a] = true
	}
	// Best estimated speedup per loop.
	type est struct {
		bsa     string
		speedup float64
	}
	bestAt := make(map[int]est)
	// Visit plans in sorted-name order so exact EstSpeedup ties break the
	// same way every run (map iteration order would pick an arbitrary
	// winner).
	var planNames []string
	for name := range c.Plans {
		if availSet[name] {
			planNames = append(planNames, name)
		}
	}
	sort.Strings(planNames)
	for _, name := range planNames {
		for l, r := range c.Plans[name].Regions {
			if cur, ok := bestAt[l]; !ok || r.EstSpeedup > cur.speedup {
				bestAt[l] = est{bsa: name, speedup: r.EstSpeedup}
			}
		}
	}

	assign := exocore.Assignment{}
	// solve returns the estimated time of the loop's subtree (in units
	// of baseline execution share).
	var solve func(loop int) float64
	solve = func(loop int) float64 {
		total := c.TDG.Prof.LoopShare(loop)
		childTime := 0.0
		childShare := 0.0
		for _, ch := range c.TDG.Nest.Loops[loop].Children {
			childTime += solve(ch)
			childShare += c.TDG.Prof.LoopShare(ch)
		}
		local := total - childShare
		if local < 0 {
			local = 0
		}
		timeChildren := local + childTime
		own, ok := bestAt[loop]
		// The scheduler is deliberately over-calibrated towards using
		// BSAs rather than the general core (§5.4): offload is accepted
		// even when the estimate is slightly unfavorable, because the
		// energy savings usually pay for it.
		const bsaBias = 1.10
		if ok && own.speedup > 0 {
			timeOwn := total / own.speedup
			if timeOwn < timeChildren*bsaBias {
				c.clearSubtree(assign, loop)
				assign[loop] = own.bsa
				return timeOwn
			}
		}
		return timeChildren
	}
	for _, root := range c.TDG.Nest.Roots {
		solve(root)
	}
	return assign
}

// Evaluate runs the benchmark under an assignment and returns cycles and
// total energy.
func (c *Context) Evaluate(assign exocore.Assignment) (int64, float64, error) {
	return c.EvaluateSpan(assign, obs.Span{})
}

// EvaluateSpan is Evaluate attached to a caller's trace span: when sp is
// active the run's per-unit spans nest under it; metrics go to the
// registry the context was created with either way.
func (c *Context) EvaluateSpan(assign exocore.Assignment, sp obs.Span) (int64, float64, error) {
	res, err := exocore.Run(c.TDG, c.Core, c.BSAs, c.Plans, assign,
		exocore.RunOpts{Cache: c.Cache, Span: sp, Reg: c.reg, NoDelta: c.noDelta})
	if err != nil {
		return 0, 0, err
	}
	return res.Cycles, exocore.EnergyOf(res, c.Core, c.BSAs).TotalNJ(), nil
}
