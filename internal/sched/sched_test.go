package sched

import (
	"testing"

	"exocore/internal/bsa"
	"exocore/internal/cores"
	"exocore/internal/tdg"
	"exocore/internal/workloads"
)

func contextFor(t *testing.T, bench string, core cores.Config) *Context {
	t.Helper()
	w, err := workloads.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := w.Trace(30000)
	if err != nil {
		t.Fatal(err)
	}
	td, err := tdg.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(td, core, bsa.Standard().New())
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

var allNames = bsa.Standard().Names()

func TestOracleImprovesEDP(t *testing.T) {
	for _, bench := range []string{"mm", "cjpeg", "nbody"} {
		ctx := contextFor(t, bench, cores.OOO2)
		assign := ctx.Oracle(allNames)
		if len(assign) == 0 {
			t.Errorf("%s: oracle assigned nothing", bench)
			continue
		}
		cycles, energy, err := ctx.Evaluate(assign)
		if err != nil {
			t.Fatal(err)
		}
		baseEDP := float64(ctx.BaseCycles) * ctx.BaseEnergyNJ
		newEDP := float64(cycles) * energy
		t.Logf("%s: assign=%v cycles %d→%d energy %.0f→%.0f",
			bench, assign, ctx.BaseCycles, cycles, ctx.BaseEnergyNJ, energy)
		if newEDP >= baseEDP {
			t.Errorf("%s: oracle worsened EDP: %.3g vs %.3g", bench, newEDP, baseEDP)
		}
	}
}

func TestOracleRespectsSubset(t *testing.T) {
	ctx := contextFor(t, "mm", cores.OOO2)
	assign := ctx.Oracle([]string{"NS-DF"})
	for _, b := range assign {
		if b != "NS-DF" {
			t.Errorf("oracle used %s outside the available subset", b)
		}
	}
	if len(ctx.Oracle(nil)) != 0 {
		t.Error("empty subset must yield empty assignment")
	}
}

func TestOracleAssignmentsDontNest(t *testing.T) {
	for _, bench := range []string{"mm", "nbody", "gsmencode"} {
		ctx := contextFor(t, bench, cores.OOO2)
		assign := ctx.Oracle(allNames)
		for a := range assign {
			for b := range assign {
				if a != b && ctx.TDG.Nest.IsAncestor(a, b) {
					t.Errorf("%s: nested assignments L%d and L%d", bench, a, b)
				}
			}
		}
	}
}

func TestOraclePerfGuard(t *testing.T) {
	// Whatever the oracle picks must not be drastically slower than base.
	for _, bench := range []string{"mcf", "parser", "gzip"} {
		ctx := contextFor(t, bench, cores.OOO4)
		assign := ctx.Oracle(allNames)
		cycles, _, err := ctx.Evaluate(assign)
		if err != nil {
			t.Fatal(err)
		}
		if float64(cycles) > 1.15*float64(ctx.BaseCycles) {
			t.Errorf("%s: oracle assignment %v slows execution %d→%d",
				bench, assign, ctx.BaseCycles, cycles)
		}
	}
}

func TestAmdahlTreeProducesValidAssignment(t *testing.T) {
	for _, bench := range []string{"cjpeg", "mm", "h264ref"} {
		ctx := contextFor(t, bench, cores.OOO2)
		assign := ctx.AmdahlTree(allNames)
		// Every assigned loop must be in the named BSA's plan.
		for l, name := range assign {
			if ctx.Plans[name].Region(l) == nil {
				t.Errorf("%s: amdahl assigned L%d to %s without a plan", bench, l, name)
			}
		}
		// Must evaluate without error.
		if _, _, err := ctx.Evaluate(assign); err != nil {
			t.Errorf("%s: %v", bench, err)
		}
	}
}

func TestAmdahlVsOracleOnMediabench(t *testing.T) {
	// §5.4: the Amdahl scheduler should land within a reasonable band of
	// the oracle (paper: 0.89× performance, biased toward energy).
	var ratios []float64
	for _, bench := range []string{"cjpeg", "djpeg", "gsmdecode", "gsmencode"} {
		ctx := contextFor(t, bench, cores.OOO2)
		oc, _, err := ctx.Evaluate(ctx.Oracle(allNames))
		if err != nil {
			t.Fatal(err)
		}
		ac, _, err := ctx.Evaluate(ctx.AmdahlTree(allNames))
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(oc) / float64(ac) // amdahl perf relative to oracle
		ratios = append(ratios, ratio)
		t.Logf("%s: oracle=%d amdahl=%d (%.2fx)", bench, oc, ac, ratio)
	}
	for _, r := range ratios {
		if r < 0.6 {
			t.Errorf("amdahl scheduler catastrophically behind oracle: %.2f", r)
		}
	}
}
