package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"exocore/internal/bsa"
	"exocore/internal/runner"
)

type capabilitiesBody struct {
	BSAs []struct {
		Name    string  `json:"name"`
		Letter  string  `json:"letter"`
		AreaMM2 float64 `json:"area_mm2"`
	} `json:"bsas"`
	Workloads []struct {
		Name     string `json:"name"`
		Suite    string `json:"suite"`
		Category string `json:"category"`
	} `json:"workloads"`
	Cores      []string `json:"cores"`
	Schedulers []string `json:"schedulers"`
	MaxDyn     int      `json:"maxdyn"`
}

func getCapabilities(t *testing.T, url string) capabilitiesBody {
	t.Helper()
	resp, err := http.Get(url + "/v1/capabilities")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("capabilities status = %d", resp.StatusCode)
	}
	var caps capabilitiesBody
	if err := json.NewDecoder(resp.Body).Decode(&caps); err != nil {
		t.Fatal(err)
	}
	return caps
}

// TestCapabilities checks the discovery endpoint reflects the daemon's
// actual registries: every default BSA (GS-DAE included), the graph
// workloads, all cores and both schedulers, and the warmed budget.
func TestCapabilities(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	caps := getCapabilities(t, hs.URL)

	if got, want := len(caps.BSAs), bsa.Default().Len(); got != want {
		t.Fatalf("capabilities list %d BSAs, want %d", got, want)
	}
	byName := map[string]string{}
	for _, b := range caps.BSAs {
		byName[b.Name] = b.Letter
		if b.AreaMM2 <= 0 {
			t.Errorf("%s: non-positive area", b.Name)
		}
	}
	if byName["GS-DAE"] != "G" {
		t.Errorf("GS-DAE letter = %q, want G", byName["GS-DAE"])
	}
	wls := map[string]string{}
	for _, w := range caps.Workloads {
		wls[w.Name] = w.Category
	}
	if wls["bfs"] != "graph" || wls["mm"] == "" {
		t.Errorf("workload listing incomplete: bfs=%q mm=%q", wls["bfs"], wls["mm"])
	}
	if len(caps.Cores) != 4 {
		t.Errorf("cores = %v, want the four general cores", caps.Cores)
	}
	if len(caps.Schedulers) != 2 {
		t.Errorf("schedulers = %v", caps.Schedulers)
	}
	if caps.MaxDyn != testMaxDyn {
		t.Errorf("maxdyn = %d, want %d", caps.MaxDyn, testMaxDyn)
	}
}

// TestRestrictedRegistryRejectsUnservedBSAs starts the daemon on the
// paper's four-model registry and checks requests for the fifth model
// 400 with the allowed list, on both endpoints, while capabilities
// advertises only what the engine can evaluate.
func TestRestrictedRegistryRejectsUnservedBSAs(t *testing.T) {
	eng := runner.New(runner.Options{MaxDyn: testMaxDyn, BSAs: bsa.Standard()})
	_, hs := newTestServer(t, Config{Engine: eng})

	caps := getCapabilities(t, hs.URL)
	if len(caps.BSAs) != 4 {
		t.Fatalf("restricted daemon advertises %d BSAs, want 4", len(caps.BSAs))
	}
	for _, b := range caps.BSAs {
		if b.Name == "GS-DAE" {
			t.Fatal("restricted daemon advertises GS-DAE")
		}
	}

	resp, body := post(t, hs.URL+"/v1/evaluate", `{"bench":"mm","bsas":"GS-DAE"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("evaluate status = %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "have SIMD, DP-CGRA, NS-DF, Trace-P") {
		t.Errorf("evaluate error does not list the served registry: %s", body)
	}

	resp, body = post(t, hs.URL+"/v1/sweep", `{"bench":"mm","designs":["OOO2-G"]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("sweep status = %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "unknown BSA letter") {
		t.Errorf("sweep error = %s", body)
	}

	// The full default daemon serves both fine.
	_, hs2 := newTestServer(t, Config{})
	if resp, body := post(t, hs2.URL+"/v1/evaluate", `{"bench":"bfs","bsas":"GS-DAE"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("default daemon refused GS-DAE: %d %s", resp.StatusCode, body)
	}
}
