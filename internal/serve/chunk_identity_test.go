package serve

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"exocore/internal/cli"
	"exocore/internal/cores"
	"exocore/internal/runner"
)

// TestChunkedMatchesMaterializedDocuments is the user-visible identity
// property behind the streaming pipeline: the exocore-result/v1 document
// a tool emits must be byte-identical whether the engine synthesized its
// traces through the legacy materialized path or streamed them in chunks
// — across benchmarks, cores, and chunk sizes chosen to split traces at
// awkward offsets (mid-block, mid-region, far from the compaction
// stride). Runs under the -race gate: the chunked engines pipeline chunk
// synthesis on a producer goroutine.
func TestChunkedMatchesMaterializedDocuments(t *testing.T) {
	const maxDyn = 8_000
	coreNames := []string{"IO2", "OOO2"}

	wls, err := cli.ResolveBenchSpec("cjpeg,fft,bfs")
	if err != nil {
		t.Fatal(err)
	}
	bsas, err := cli.ResolveBSASpec("all")
	if err != nil {
		t.Fatal(err)
	}

	docBytes := func(chunkInsts int, core cores.Config) []byte {
		t.Helper()
		eng := runner.New(runner.Options{MaxDyn: maxDyn, ChunkInsts: chunkInsts})
		doc, err := EvaluateDocument(context.Background(), eng, "identity-test",
			wls, core, bsas, "oracle", nil)
		if err != nil {
			t.Fatal(err)
		}
		doc.Sort()
		var buf bytes.Buffer
		if err := doc.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	for _, coreName := range coreNames {
		core, ok := cores.ConfigByName(coreName)
		if !ok {
			t.Fatalf("unknown core %s", coreName)
		}
		want := docBytes(-1, core) // legacy materialized path
		for _, chunk := range []int{257, 4096, 0 /* default 1Mi */} {
			got := docBytes(chunk, core)
			if !bytes.Equal(got, want) {
				t.Errorf("core %s chunk %d: document diverges from materialized path\n--- materialized ---\n%s\n--- chunked ---\n%s",
					core.Name, chunk, firstDiff(want, got), firstDiff(got, want))
			}
		}
	}
}

// firstDiff returns a short window around the first differing byte, so a
// failure points at the diverging field instead of dumping whole docs.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	lo := i - 60
	if lo < 0 {
		lo = 0
	}
	hi := i + 60
	if hi > len(a) {
		hi = len(a)
	}
	return fmt.Sprintf("byte %d: ...%s...", i, a[lo:hi])
}
