// Tests for the telemetry plane: the /debug/requests flight recorder,
// per-request trace fragments, Prometheus exposition, access-log
// correlation fields, and the pprof gate.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"exocore/internal/obs"
	"exocore/internal/runner"
)

// TestDebugRequestsAndTraceFragment drives one evaluation through a
// ring-traced server, then checks the request shows up in the flight
// recorder and its trace fragment validates.
func TestDebugRequestsAndTraceFragment(t *testing.T) {
	tr := obs.NewRingTracer("test", 1024)
	eng := runner.New(runner.Options{MaxDyn: testMaxDyn, Tracer: tr})
	_, hs := newTestServer(t, Config{Engine: eng, Tracer: tr})

	resp, body := post(t, hs.URL+"/v1/evaluate", `{"bench":"mm","core":"IO2"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate = %d %s", resp.StatusCode, body)
	}
	reqID := resp.Header.Get("X-Request-Id")
	if reqID == "" {
		t.Fatal("evaluate response missing X-Request-Id")
	}

	resp, body = get(t, hs.URL+"/debug/requests")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/requests = %d", resp.StatusCode)
	}
	var dbg struct {
		Recent        []RequestRecord `json:"recent"`
		Slowest       []RequestRecord `json:"slowest"`
		DroppedSpans  int64           `json:"dropped_spans"`
		RetainedSpans int             `json:"retained_spans"`
	}
	if err := json.Unmarshal(body, &dbg); err != nil {
		t.Fatalf("debug/requests body: %v\n%s", err, body)
	}
	var rec *RequestRecord
	for i := range dbg.Recent {
		if dbg.Recent[i].ID == reqID {
			rec = &dbg.Recent[i]
		}
	}
	if rec == nil {
		t.Fatalf("request %s not in recent ring: %s", reqID, body)
	}
	if rec.Path != "/v1/evaluate" || rec.Status != http.StatusOK {
		t.Errorf("record = %+v", rec)
	}
	if !strings.HasPrefix(rec.Key, "eval|mm|IO2|") {
		t.Errorf("record key = %q, want eval|mm|IO2|... prefix", rec.Key)
	}
	if rec.LatencyNS <= 0 {
		t.Errorf("record latency = %d, want > 0", rec.LatencyNS)
	}
	if dbg.RetainedSpans <= 0 {
		t.Errorf("retained_spans = %d, want > 0", dbg.RetainedSpans)
	}
	// An evaluation outlasts the ring-tracer retention counters shown in
	// /debug/requests; the same request appears on the slowest board too
	// (it is the only request).
	if len(dbg.Slowest) == 0 || dbg.Slowest[0].ID != reqID {
		t.Errorf("slowest board = %+v, want to lead with %s", dbg.Slowest, reqID)
	}

	// The per-request fragment is a valid Chrome trace with spans.
	resp, body = get(t, hs.URL+"/debug/requests/"+reqID+"/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace fragment = %d %s", resp.StatusCode, body)
	}
	n, err := obs.ValidateTrace(body)
	if err != nil {
		t.Fatalf("ValidateTrace: %v\n%s", err, body)
	}
	if n < 1 {
		t.Fatalf("trace fragment has %d spans, want >= 1", n)
	}
	// Every span in the fragment is tagged with this request's ID.
	var events []map[string]any
	if err := json.Unmarshal(body, &events); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev["ph"] != "X" {
			continue
		}
		args, _ := ev["args"].(map[string]any)
		if args == nil || args["req"] != reqID {
			t.Errorf("span %v not tagged with %s: %v", ev["name"], reqID, args)
		}
	}

	// Unknown IDs are 404, not empty traces.
	resp, _ = get(t, hs.URL+"/debug/requests/r999999/trace")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id trace = %d, want 404", resp.StatusCode)
	}
}

// TestMetricszPromFormat checks the Prometheus exposition branch: right
// content type, engine and server series present, counters suffixed.
func TestMetricszPromFormat(t *testing.T) {
	tr := obs.NewRingTracer("test", 256)
	eng := runner.New(runner.Options{MaxDyn: testMaxDyn, Tracer: tr})
	_, hs := newTestServer(t, Config{Engine: eng, Tracer: tr})

	if resp, b := post(t, hs.URL+"/v1/evaluate", `{"bench":"mm"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate = %d %s", resp.StatusCode, b)
	}
	resp, body := get(t, hs.URL+"/metricsz?format=prom")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metricsz prom = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	out := string(body)
	for _, want := range []string{
		"serve_requests_total ",
		"serve_latency_ns_bucket{le=\"+Inf\"} ",
		"serve_latency_ns_count ",
		"stage_eval_calls_total ",
		"obs_retained_spans ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom exposition missing %q", want)
		}
	}
	// Default (no format param) stays the JSON snapshot.
	resp, _ = get(t, hs.URL+"/metricsz")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default metricsz Content-Type = %q", ct)
	}
}

// TestHealthzLatencyQuantiles: after traffic, /healthz carries a
// latency_ns summary with non-decreasing quantiles.
func TestHealthzLatencyQuantiles(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		if resp, b := post(t, hs.URL+"/v1/evaluate", `{"bench":"mm"}`); resp.StatusCode != http.StatusOK {
			t.Fatalf("evaluate = %d %s", resp.StatusCode, b)
		}
	}
	_, body := get(t, hs.URL+"/healthz")
	var h struct {
		LatencyNS map[string]float64 `json:"latency_ns"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	p50, p95, p99 := h.LatencyNS["p50"], h.LatencyNS["p95"], h.LatencyNS["p99"]
	if p50 <= 0 {
		t.Fatalf("healthz p50 = %v, want > 0 after traffic (%s)", p50, body)
	}
	if p95 < p50 || p99 < p95 {
		t.Fatalf("quantiles not monotone: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
}

// TestPprofGate: the profiler endpoints exist only under EnablePprof.
func TestPprofGate(t *testing.T) {
	_, off := newTestServer(t, Config{})
	resp, _ := get(t, off.URL+"/debug/pprof/")
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof served without EnablePprof")
	}

	_, on := newTestServer(t, Config{EnablePprof: true})
	resp, body := get(t, on.URL+"/debug/pprof/goroutine?debug=1")
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("pprof goroutine = %d (%d bytes)", resp.StatusCode, len(body))
	}
}

// TestAccessLogLine: each request emits one structured log line carrying
// the request ID, route, status and latency, correlated by req=.
func TestAccessLogLine(t *testing.T) {
	var buf syncBuffer
	log := obs.NewLogger(&buf, "exocored", 1) // -v: access log is Info level
	_, hs := newTestServer(t, Config{Log: log})

	resp, _ := post(t, hs.URL+"/v1/evaluate", `{"bench":"mm","core":"IO2"}`)
	reqID := resp.Header.Get("X-Request-Id")
	waitFor(t, func() bool { return strings.Contains(buf.String(), "request method=") })

	var line string
	for _, l := range strings.Split(buf.String(), "\n") {
		if strings.Contains(l, "request method=") {
			line = l
			break
		}
	}
	if line == "" {
		t.Fatalf("no access log line in:\n%s", buf.String())
	}
	for _, want := range []string{
		"method=POST",
		"path=/v1/evaluate",
		"key=eval|mm|IO2|",
		"status=200",
		"queue_wait=",
		"wall=",
		"coalesced=false",
		"req=" + reqID,
	} {
		if !strings.Contains(line, want) {
			t.Errorf("access log line missing %q:\n%s", want, line)
		}
	}
}

// TestRecorderRingAndLeaderboard unit-tests the bounded views.
func TestRecorderRingAndLeaderboard(t *testing.T) {
	r := newRecorder(4, 2)
	for i := 1; i <= 10; i++ {
		r.record(RequestRecord{
			ID:        fmt.Sprintf("r%d", i),
			LatencyNS: int64(i * 1000),
			Start:     time.Unix(int64(i), 0),
		})
	}
	recent := r.recent()
	if len(recent) != 4 {
		t.Fatalf("recent len = %d, want 4", len(recent))
	}
	for i, want := range []string{"r10", "r9", "r8", "r7"} { // newest first
		if recent[i].ID != want {
			t.Errorf("recent[%d] = %s, want %s", i, recent[i].ID, want)
		}
	}
	slow := r.slow()
	if len(slow) != 2 || slow[0].ID != "r10" || slow[1].ID != "r9" {
		t.Fatalf("slowest = %+v, want r10,r9", slow)
	}
	// r9 fell out of the ring? No — r7..r10 retained; r5 did. But r5 is
	// not on the leaderboard either, so lookup misses.
	if _, ok := r.lookup("r5"); ok {
		t.Error("evicted, unranked record still found")
	}
	if rec, ok := r.lookup("r8"); !ok || rec.LatencyNS != 8000 {
		t.Errorf("lookup(r8) = %+v, %v", rec, ok)
	}
}

// syncBuffer is a goroutine-safe bytes buffer for log capture.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
