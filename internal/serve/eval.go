// Evaluation request shapes and the document builders behind them.
//
// EvaluateDocument is the single implementation of "evaluate a
// bench/core/BSA-set/scheduler query into the versioned result schema":
// cmd/tdgsim's -json mode and the daemon's /v1/evaluate endpoint both
// call it, which is what makes their documents byte-identical for the
// same inputs (modulo the tool header and run-local metrics). Sweeps go
// through dse.ExploreCtx + Exploration.AppendTo the same way.
package serve

import (
	"context"
	"fmt"
	"strings"

	"exocore/internal/bsa"
	"exocore/internal/cli"
	"exocore/internal/cores"
	"exocore/internal/dse"
	"exocore/internal/exocore"
	"exocore/internal/obs"
	"exocore/internal/report"
	"exocore/internal/runner"
	"exocore/internal/workloads"
)

// EvalRequest is the body of POST /v1/evaluate. Bench/BSAs accept the
// same specs as the unified CLI flags (-bench / -bsas).
type EvalRequest struct {
	Bench string `json:"bench"`           // "all" | "quick" | comma-separated names
	Core  string `json:"core,omitempty"`  // general core; default OOO2
	BSAs  string `json:"bsas,omitempty"`  // "all" | "none" | comma list; default all
	Sched string `json:"sched,omitempty"` // "oracle" (default) | "amdahl"
	// MaxDyn, when non-zero, must match the daemon's per-benchmark
	// budget: the warm engine serves exactly one budget (it is part of
	// every cache key), so a mismatch is a 400, not a silent re-run.
	MaxDyn int `json:"maxdyn,omitempty"`
	// DeadlineMS, when non-zero, lowers this request's deadline below
	// the server default.
	DeadlineMS int `json:"deadline_ms,omitempty"`
}

// SweepRequest is the body of POST /v1/sweep.
type SweepRequest struct {
	Bench string `json:"bench,omitempty"` // benchmark spec; default "all"
	Sched string `json:"sched,omitempty"` // "oracle" (default) | "amdahl"
	// Designs restricts the sweep to a design-code list (eg.
	// ["IO2","OOO2-SDN"]); empty sweeps the full 64-design grid.
	Designs []string `json:"designs,omitempty"`
	// Async makes the POST return 202 with a result id immediately; the
	// document is fetched from /resultz/{id} when the sweep finishes.
	Async bool `json:"async,omitempty"`
	// Partial returns only the per-(design, benchmark) observation rows,
	// omitting the per-design aggregate rows (Rel* are normalized against
	// the whole grid, which one shard of a fabric sweep cannot see). The
	// fabric coordinator sets this on every shard it dispatches and
	// recomputes the aggregates itself.
	Partial    bool `json:"partial,omitempty"`
	MaxDyn     int  `json:"maxdyn,omitempty"`
	DeadlineMS int  `json:"deadline_ms,omitempty"`
}

// evalQuery is a validated EvalRequest: specs resolved against the
// workload/core/BSA registries.
type evalQuery struct {
	wls   []*workloads.Workload
	core  cores.Config
	bsas  []string
	sched string
}

// resolveSched validates a scheduler name ("" defaults to oracle).
func resolveSched(s string) (string, error) {
	switch s {
	case "":
		return "oracle", nil
	case "oracle", "amdahl":
		return s, nil
	}
	return "", fmt.Errorf("unknown scheduler %q (have oracle, amdahl)", s)
}

// checkMaxDyn rejects a request budget that differs from the engine's.
func checkMaxDyn(req int, eng *runner.Engine) error {
	if req != 0 && req != eng.MaxDyn() {
		return fmt.Errorf("maxdyn %d not served: this daemon's engine is warmed for maxdyn=%d (restart with -maxdyn to change)", req, eng.MaxDyn())
	}
	return nil
}

// resolveEval validates an EvalRequest against the registries.
func resolveEval(req EvalRequest, eng *runner.Engine) (evalQuery, error) {
	var q evalQuery
	if req.Bench == "" {
		return q, fmt.Errorf("missing required field %q", "bench")
	}
	wls, err := cli.ResolveBenchSpec(req.Bench)
	if err != nil {
		return q, err
	}
	coreName := req.Core
	if coreName == "" {
		coreName = "OOO2"
	}
	core, ok := cores.ConfigByName(coreName)
	if !ok {
		return q, fmt.Errorf("unknown core %q (have IO2, OOO2, OOO4, OOO6)", coreName)
	}
	bsaSpec := req.BSAs
	if bsaSpec == "" {
		bsaSpec = "all"
	}
	// Resolve against the engine's registry, not the compiled-in default:
	// a daemon started with a restricted -bsas set must reject names it
	// cannot evaluate, with the allowed list in the error.
	bsas, err := cli.ResolveBSASpecWith(eng.BSAs(), bsaSpec)
	if err != nil {
		return q, err
	}
	sched, err := resolveSched(req.Sched)
	if err != nil {
		return q, err
	}
	if err := checkMaxDyn(req.MaxDyn, eng); err != nil {
		return q, err
	}
	q = evalQuery{wls: wls, core: core, bsas: bsas, sched: sched}
	return q, nil
}

// key renders the canonical coalescing key of the query: resolved
// benchmark list, core, BSA subset and scheduler — the dimensions that
// determine the (bench, core, assignment) evaluations behind it.
func (q evalQuery) key() string {
	names := make([]string, len(q.wls))
	for i, w := range q.wls {
		names[i] = w.Name
	}
	return "eval|" + strings.Join(names, ",") + "|" + q.core.Name + "|" +
		strings.Join(q.bsas, ",") + "|" + q.sched
}

// sweepQuery is a validated SweepRequest.
type sweepQuery struct {
	wls     []*workloads.Workload
	designs []string
	sched   string
	partial bool
}

func resolveSweep(req SweepRequest, eng *runner.Engine) (sweepQuery, error) {
	var q sweepQuery
	spec := req.Bench
	if spec == "" {
		spec = "all"
	}
	wls, err := cli.ResolveBenchSpec(spec)
	if err != nil {
		return q, err
	}
	for _, code := range req.Designs {
		if _, _, err := dse.ParseDesignCodeIn(eng.BSAs(), code); err != nil {
			return q, err
		}
	}
	sched, err := resolveSched(req.Sched)
	if err != nil {
		return q, err
	}
	if err := checkMaxDyn(req.MaxDyn, eng); err != nil {
		return q, err
	}
	q = sweepQuery{wls: wls, designs: req.Designs, sched: sched, partial: req.Partial}
	return q, nil
}

func (q sweepQuery) key() string {
	names := make([]string, len(q.wls))
	for i, w := range q.wls {
		names[i] = w.Name
	}
	k := "sweep|" + strings.Join(names, ",") + "|" +
		strings.Join(q.designs, ",") + "|" + q.sched
	if q.partial {
		k += "|partial"
	}
	return k
}

// EvaluateDocument evaluates each workload on one design point and
// returns the result document cmd/tdgsim emits under -json (without the
// engine-metrics attachment): one row per benchmark with cycles, energy,
// per-BSA coverage and baseline-relative extras, plus per-region
// attribution rows. All pipeline stages run through the shared engine;
// ctx cancels cleanly at stage boundaries.
func EvaluateDocument(ctx context.Context, eng *runner.Engine, tool string,
	wls []*workloads.Workload, core cores.Config, bsas []string, sched string,
	tracer *obs.Tracer) (*report.Document, error) {

	doc := report.New(tool)
	for _, wl := range wls {
		td, err := eng.TDGCtx(ctx, wl)
		if err != nil {
			return nil, err
		}
		sc, err := eng.ContextCtx(ctx, wl, core)
		if err != nil {
			return nil, err
		}
		var assign exocore.Assignment
		if sched == "amdahl" {
			assign = sc.AmdahlTree(bsas)
		} else {
			assign = sc.Oracle(bsas)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		// Reuse the context's models and unit cache: the reporting run is
		// then served almost entirely from the outcomes the scheduler
		// already computed.
		sp := tracer.BeginCtx(ctx, "stage", "report "+wl.Name)
		res, err := exocore.Run(td, core, sc.BSAs, sc.Plans, assign, exocore.RunOpts{
			Cache: sc.Cache, RecordRegions: true, Span: sp, Reg: eng.Registry(),
		})
		sp.End()
		if err != nil {
			return nil, err
		}
		e := exocore.EnergyOf(res, core, sc.BSAs)

		coverage := make(map[string]float64, len(res.Models))
		for i := range res.Models {
			m := &res.Models[i]
			label := m.Name
			if label == "" {
				label = "GPP"
			}
			coverage[label] = float64(m.Cycles) / float64(res.Cycles)
		}
		design := eng.BSAs().DesignCode(core.Name, bsas)
		doc.Add(report.Result{
			Design: design, Core: core.Name,
			BSAs: bsas, Bench: wl.Name, Category: string(wl.Category),
			Cycles: res.Cycles, EnergyNJ: e.TotalNJ(),
			Coverage: coverage,
			Params:   map[string]string{"sched": sched},
			Extra: map[string]float64{
				"baseline_cycles":      float64(sc.BaseCycles),
				"baseline_energy_nj":   sc.BaseEnergyNJ,
				"speedup":              float64(sc.BaseCycles) / float64(res.Cycles),
				"energy_eff":           sc.BaseEnergyNJ / e.TotalNJ(),
				"avg_power_w":          e.AvgPowerW(),
				"unaccelerated_frac":   res.UnacceleratedFraction(),
				"dynamic_instructions": float64(td.Trace.Len()),
			},
		})
		doc.Add(report.RegionResults(design, core.Name, wl.Name, res.Regions, core)...)
	}
	return doc, nil
}

// SweepDocument runs a (possibly design-restricted) DSE sweep on the
// shared engine and returns the document cmd/dse emits under -json
// (without the engine-metrics attachment). With partial set, only the
// per-(design, benchmark) observation rows are emitted — the shard
// payload of a fabric sweep, whose aggregates the coordinator
// recomputes over the full grid.
func SweepDocument(ctx context.Context, eng *runner.Engine, tool string,
	wls []*workloads.Workload, designs []string, sched string, partial bool) (*report.Document, error) {

	exp, err := dse.ExploreCtx(ctx, dse.Options{
		Workloads: wls,
		UseAmdahl: sched == "amdahl",
		Engine:    eng,
		Designs:   designs,
	})
	if err != nil {
		return nil, err
	}
	doc := report.New(tool)
	if partial {
		exp.AppendPerBench(doc)
	} else {
		exp.AppendTo(doc)
	}
	return doc, nil
}

// DesignCode renders (core, explicit BSA list) as the canonical design
// code, eg. "OOO2-SDN" — dse.DesignCode for a name list instead of a
// bitmask, resolved against the default registry.
func DesignCode(core string, bsas []string) string {
	return bsa.Default().DesignCode(core, bsas)
}
