package serve

import (
	"context"
	"sync"
	"time"
)

// flight is one in-progress computation shared by every request that
// asked for the same canonical key while it ran.
type flight struct {
	done   chan struct{}
	body   []byte
	err    error
	refs   int // callers still interested; guarded by group.mu
	cancel context.CancelFunc
}

// group coalesces concurrent requests for the same key ("singleflight"):
// the first request starts the computation, later identical requests
// join it and share the rendered result bytes. The computation runs on
// its own context, detached from any single request, and is canceled
// only when every joined request has gone away — so one disconnecting
// client never aborts work other clients are still waiting on, while
// work nobody wants anymore stops promptly.
//
// Flights are removed from the table as soon as they complete: the
// group deduplicates *concurrent* work only. Result reuse across time is
// the engine memo's job, one layer down.
type group struct {
	mu sync.Mutex
	m  map[string]*flight
}

// leave drops one caller's interest in f; the last leaver cancels the
// flight's context.
func (g *group) leave(f *flight) {
	g.mu.Lock()
	f.refs--
	last := f.refs == 0
	g.mu.Unlock()
	if last {
		f.cancel()
	}
}

// do returns fn's result for key, running fn at most once concurrently.
// shared reports whether this caller joined another caller's flight. fn
// receives a context bounded by timeout and canceled when all interested
// callers are gone; ctx (the caller's own) only bounds the wait.
func (g *group) do(ctx context.Context, key string, timeout time.Duration, fn func(context.Context) ([]byte, error)) (body []byte, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if f, ok := g.m[key]; ok {
		f.refs++
		g.mu.Unlock()
		defer g.leave(f)
		select {
		case <-f.done:
			return f.body, true, f.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}

	fctx, cancel := context.WithTimeout(context.Background(), timeout)
	f := &flight{done: make(chan struct{}), refs: 1, cancel: cancel}
	g.m[key] = f
	g.mu.Unlock()

	go func() {
		body, err := fn(fctx)
		g.mu.Lock()
		f.body, f.err = body, err
		if g.m[key] == f {
			delete(g.m, key)
		}
		g.mu.Unlock()
		close(f.done)
	}()

	defer g.leave(f)
	select {
	case <-f.done:
		return f.body, false, f.err
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}
