// The request flight recorder: a bounded ring of recently completed
// request summaries plus a bounded leaderboard of the slowest ones,
// surfaced at GET /debug/requests. Each record carries the request ID
// that also tags the request's spans in the ring tracer and its access-
// log line, so the three planes (summaries, traces, logs) correlate.
package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// RequestRecord is one completed request's flight-recorder summary.
type RequestRecord struct {
	ID     string `json:"id"`
	Method string `json:"method"`
	Path   string `json:"path"`
	// Key is the canonical coalescing key for evaluation requests
	// (empty for other routes).
	Key    string `json:"key,omitempty"`
	Status int    `json:"status"`
	// Coalesced marks a request that joined another request's in-flight
	// computation instead of starting its own.
	Coalesced   bool  `json:"coalesced,omitempty"`
	QueueWaitNS int64 `json:"queue_wait_ns"`
	LatencyNS   int64 `json:"latency_ns"`
	// CacheHits is the engine-stage cache-hit growth observed across the
	// request (approximate under concurrent requests, exact when serial).
	CacheHits int64     `json:"cache_hits"`
	Start     time.Time `json:"start"`
}

// recorder keeps the two bounded views. Safe for concurrent use.
type recorder struct {
	mu      sync.Mutex
	ring    []RequestRecord // circular, insertion order
	next    int
	n       int
	slowest []RequestRecord // sorted by LatencyNS descending
	slowCap int
}

func newRecorder(recent, slow int) *recorder {
	if recent <= 0 {
		recent = 64
	}
	if slow <= 0 {
		slow = 16
	}
	return &recorder{ring: make([]RequestRecord, recent), slowCap: slow}
}

// record adds one completed request to the ring and, if it ranks, to the
// slowest leaderboard.
func (r *recorder) record(rec RequestRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ring[r.next] = rec
	r.next = (r.next + 1) % len(r.ring)
	if r.n < len(r.ring) {
		r.n++
	}
	// Insert into the slowest list (descending), bounded at slowCap.
	i := len(r.slowest)
	for i > 0 && r.slowest[i-1].LatencyNS < rec.LatencyNS {
		i--
	}
	if i >= r.slowCap {
		return
	}
	r.slowest = append(r.slowest, RequestRecord{})
	copy(r.slowest[i+1:], r.slowest[i:])
	r.slowest[i] = rec
	if len(r.slowest) > r.slowCap {
		r.slowest = r.slowest[:r.slowCap]
	}
}

// recent returns the retained records, newest first.
func (r *recorder) recent() []RequestRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RequestRecord, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.ring[((r.next-1-i)%len(r.ring)+len(r.ring))%len(r.ring)])
	}
	return out
}

// slow returns the slowest-request leaderboard, slowest first.
func (r *recorder) slow() []RequestRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]RequestRecord(nil), r.slowest...)
}

// lookup finds a retained record by request ID (recent ring first, then
// the slowest leaderboard, whose entries may outlive the ring).
func (r *recorder) lookup(id string) (RequestRecord, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 0; i < r.n; i++ {
		if rec := r.ring[((r.next-1-i)%len(r.ring)+len(r.ring))%len(r.ring)]; rec.ID == id {
			return rec, true
		}
	}
	for _, rec := range r.slowest {
		if rec.ID == id {
			return rec, true
		}
	}
	return RequestRecord{}, false
}

// reqStats is the per-request scratch the handler chain fills in as the
// request progresses: the resolved coalescing key, whether the request
// joined another flight, and how long it waited for an admission slot.
// It travels in the request context; the queue wait is written from the
// flight goroutine while the handler goroutine may time out and read
// early, hence the atomic.
type reqStats struct {
	key         string
	coalesced   bool
	queueWaitNS atomic.Int64
}

func (st *reqStats) setKey(key string) {
	if st != nil {
		st.key = key
	}
}

func (st *reqStats) setQueueWait(d time.Duration) {
	if st != nil {
		st.queueWaitNS.Store(int64(d))
	}
}

func (st *reqStats) setCoalesced() {
	if st != nil {
		st.coalesced = true
	}
}

// statsKey carries the *reqStats through the request context.
type statsKey struct{}

// statsFrom returns the request's stats scratch, or nil (every method is
// nil-safe) for contexts outside the handler chain.
func statsFrom(ctx context.Context) *reqStats {
	st, _ := ctx.Value(statsKey{}).(*reqStats)
	return st
}
