// Package serve is the evaluation-as-a-service layer: a long-running
// HTTP service wrapping one shared, warm runner.Engine so the expensive
// per-(benchmark, core) pipeline artifacts — traces, TDGs, scheduling
// contexts, assignment evaluations — are paid once and amortized over
// every request, instead of being rebuilt and thrown away per CLI
// invocation.
//
// The JSON API:
//
//	POST /v1/evaluate      one bench/core/BSA-set/scheduler query
//	POST /v1/sweep         a DSE sweep over a design-code list (or the
//	                       full grid); {"async": true} returns 202 + a
//	                       /resultz id
//	GET  /v1/capabilities  what this daemon can evaluate: BSA registry
//	                       (names + design-code letters), workloads,
//	                       cores, schedulers, warmed maxdyn
//	GET  /resultz/{id}     fetch an async sweep's document
//	GET  /healthz          liveness + queue/inflight snapshot + latency
//	                       p50/p95/p99
//	GET  /metricsz         the engine's internal/obs registry snapshot;
//	                       ?format=prom renders the Prometheus text
//	                       exposition format instead of JSON
//	GET  /debug/requests   flight recorder: bounded ring of recent and
//	                       slowest request summaries (id, key, status,
//	                       queue wait, latency, cache hits)
//	GET  /debug/requests/{id}/trace
//	                       one request's Chrome-trace fragment from the
//	                       shared ring tracer
//	GET  /debug/pprof/...  net/http/pprof profiles (Config.EnablePprof)
//
// Evaluation responses are the versioned exocore-result/v1 schema,
// byte-identical to the equivalent cmd/tdgsim / cmd/dse -json output
// for the same inputs (modulo the tool header and run-local metrics;
// scripts/servesmoke gates this).
//
// Production behaviors, not the evaluation math, are this package's
// point: identical concurrent requests coalesce into one computation
// (singleflight, layered over the engine's stage memoization); a
// bounded admission queue sheds load with 429 + Retry-After instead of
// queueing without limit; every request carries a deadline and client
// disconnects cancel work at pipeline-stage boundaries; shutdown drains
// in-flight and async work before the process exits.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"exocore/internal/cores"
	"exocore/internal/obs"
	"exocore/internal/report"
	"exocore/internal/runner"
	"exocore/internal/store"
	"exocore/internal/workloads"
)

// Config configures a Server.
type Config struct {
	// Engine is the shared warm evaluation engine (required). Its
	// registry also receives the server's request metrics, so /metricsz
	// is one unified snapshot.
	Engine *runner.Engine
	// Concurrency bounds evaluations running at once (0 = the engine's
	// worker bound). Each admitted evaluation may itself fan out over
	// the engine's worker pool; this bounds admitted requests, not
	// goroutines.
	Concurrency int
	// QueueDepth bounds evaluations waiting for a slot before new ones
	// are rejected with 429 (0 = 4 × Concurrency).
	QueueDepth int
	// RequestTimeout is the per-request evaluation deadline (0 = 60s).
	// Requests may lower it per call via deadline_ms, never raise it.
	RequestTimeout time.Duration
	// RetryAfter is the hint sent with 429 responses (0 = 1s).
	RetryAfter time.Duration
	// Tracer, if non-nil, records one span per request plus the engine's
	// stage/segment spans underneath, each tagged with the request ID.
	// Pass an obs.NewRingTracer for always-on flight-recorder tracing.
	Tracer *obs.Tracer
	// Log, if non-nil, receives the per-request access-log line (info
	// level) and request-level debug records.
	Log *obs.Logger
	// DebugRequests bounds the flight recorder's recent-request ring
	// (0 = 64).
	DebugRequests int
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Role is this daemon's place in a sweep fabric ("single" when it
	// stands alone, "replica" behind a coordinator); surfaced through
	// /healthz and /v1/capabilities so operators and coordinators can
	// tell the topology apart. Empty defaults to "single".
	Role string
	// Store, if non-nil, is the persistent evaluation-unit store backing
	// the engine; /healthz reports its occupancy.
	Store *store.Store
}

// Server is the evaluation service. Create with New, mount via Handler,
// stop with Shutdown. Safe for concurrent use.
type Server struct {
	eng    *runner.Engine
	reg    *obs.Registry
	tracer *obs.Tracer
	log    *obs.Logger
	mux    *http.ServeMux
	role   string
	store  *store.Store

	flights    group
	slots      chan struct{}
	queueDepth int
	reqTimeout time.Duration
	retryAfter time.Duration
	waiting    atomic.Int64
	draining   atomic.Bool

	jobsMu  sync.Mutex
	jobs    map[string]*sweepJob
	jobSeq  atomic.Int64
	asyncWG sync.WaitGroup

	start  time.Time
	reqSeq atomic.Int64
	rec    *recorder

	mRequests, mEvaluations, mCoalesced, mRejected *obs.Counter
	mStatus2xx, mStatus4xx, mStatus5xx             *obs.Counter
	gInflight, gQueued                             *obs.Gauge
	gDroppedSpans, gRetainedSpans                  *obs.Gauge
	hLatency, hQueueWait                           *obs.Histogram
	stageHits                                      []*obs.Counter
}

// sweepJob is one async sweep: body/err are written once before done is
// closed, so readers synchronize on the channel.
type sweepJob struct {
	done chan struct{}
	body []byte
	err  error
}

// New creates a Server around a shared engine.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("serve: Config.Engine is required")
	}
	conc := cfg.Concurrency
	if conc <= 0 {
		conc = cfg.Engine.Workers()
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 4 * conc
	}
	timeout := cfg.RequestTimeout
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	retry := cfg.RetryAfter
	if retry <= 0 {
		retry = time.Second
	}
	role := cfg.Role
	if role == "" {
		role = "single"
	}
	reg := cfg.Engine.Registry()
	s := &Server{
		eng:        cfg.Engine,
		reg:        reg,
		tracer:     cfg.Tracer,
		log:        cfg.Log,
		mux:        http.NewServeMux(),
		role:       role,
		store:      cfg.Store,
		slots:      make(chan struct{}, conc),
		queueDepth: depth,
		reqTimeout: timeout,
		retryAfter: retry,
		jobs:       make(map[string]*sweepJob),
		start:      time.Now(),
		rec:        newRecorder(cfg.DebugRequests, 16),

		mRequests:      reg.Counter("serve.requests"),
		mEvaluations:   reg.Counter("serve.evaluations"),
		mCoalesced:     reg.Counter("serve.coalesced"),
		mRejected:      reg.Counter("serve.rejected"),
		mStatus2xx:     reg.Counter("serve.status.2xx"),
		mStatus4xx:     reg.Counter("serve.status.4xx"),
		mStatus5xx:     reg.Counter("serve.status.5xx"),
		gInflight:      reg.Gauge("serve.inflight"),
		gQueued:        reg.Gauge("serve.queued"),
		gDroppedSpans:  reg.Gauge("obs.dropped_spans"),
		gRetainedSpans: reg.Gauge("obs.retained_spans"),
		hLatency:       reg.Histogram("serve.latency_ns", obs.DefaultWallBounds),
		hQueueWait:     reg.Histogram("serve.queue_wait_ns", obs.DefaultWallBounds),
	}
	// The engine-stage hit counters, resolved once: the flight recorder
	// attributes their growth across a request as its cache-hit count.
	for _, st := range []string{runner.StageTrace, runner.StageTDG, runner.StageSched, runner.StageEval} {
		s.stageHits = append(s.stageHits, reg.Counter("stage."+st+".hits"))
	}
	s.mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("GET /v1/capabilities", s.handleCapabilities)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	s.mux.HandleFunc("GET /resultz/{id}", s.handleResultz)
	s.mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	s.mux.HandleFunc("GET /debug/requests/{id}/trace", s.handleDebugTrace)
	if cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("POST /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// engineHits sums the engine's stage cache-hit counters.
func (s *Server) engineHits() int64 {
	var n int64
	for _, c := range s.stageHits {
		n += c.Value()
	}
	return n
}

// statusWriter captures the response code for metrics and logging.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Handler returns the server's HTTP handler: the route mux wrapped with
// per-request accounting — a generated request ID threaded through the
// context into every span and log record below, the latency/status
// instruments, the flight-recorder summary and one access-log line.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mRequests.Add(1)
		id := "r" + strconv.FormatInt(s.reqSeq.Add(1), 10)
		st := &reqStats{}
		ctx := context.WithValue(obs.WithRequestID(r.Context(), id), statsKey{}, st)
		r = r.WithContext(ctx)
		w.Header().Set("X-Request-Id", id)
		hitsBefore := s.engineHits()
		sp := s.tracer.BeginCtx(ctx, "http", r.Method+" "+r.URL.Path)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		startWall := time.Now()
		start := startWall
		s.mux.ServeHTTP(sw, r)
		wall := time.Since(start)
		s.hLatency.Observe(int64(wall))
		switch {
		case sw.code >= 500:
			s.mStatus5xx.Add(1)
		case sw.code >= 400:
			s.mStatus4xx.Add(1)
		default:
			s.mStatus2xx.Add(1)
		}
		sp.ArgInt("status", int64(sw.code)).End()
		queueWait := time.Duration(st.queueWaitNS.Load())
		s.rec.record(RequestRecord{
			ID: id, Method: r.Method, Path: r.URL.Path, Key: st.key,
			Status: sw.code, Coalesced: st.coalesced,
			QueueWaitNS: int64(queueWait), LatencyNS: int64(wall),
			CacheHits: s.engineHits() - hitsBefore, Start: startWall,
		})
		// The access-log line: one per request, correlated with the trace
		// fragment and flight-recorder summary by req=.
		s.log.InfoCtx(ctx, "request", "method", r.Method, "path", r.URL.Path,
			"key", st.key, "status", sw.code, "queue_wait", queueWait,
			"wall", wall, "coalesced", st.coalesced)
	})
}

// Shutdown drains the server: new evaluations are refused with 503 and
// running async sweeps are waited for. In-flight synchronous requests
// are drained by the caller's http.Server.Shutdown; call that first,
// then Shutdown with the same drain deadline. Returns ctx.Err() if the
// deadline passes with work still running.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.asyncWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

// errBusy rejects work when the admission queue is full.
var errBusy = errors.New("serve: admission queue full")

// admit acquires one of the bounded evaluation slots, waiting in the
// admission queue if all are busy. It fails fast with errBusy when the
// queue itself is full — the backpressure signal behind 429 — and with
// ctx.Err() when the caller gives up while queued. wait reports how long
// the caller sat in the queue (zero on immediate admission).
func (s *Server) admit(ctx context.Context) (release func(), wait time.Duration, err error) {
	acquired := false
	select {
	case s.slots <- struct{}{}:
		acquired = true
	default:
	}
	if !acquired {
		if s.waiting.Add(1) > int64(s.queueDepth) {
			s.waiting.Add(-1)
			s.mRejected.Add(1)
			return nil, 0, errBusy
		}
		s.gQueued.Set(s.waiting.Load())
		start := time.Now()
		defer func() {
			wait = time.Since(start)
			s.waiting.Add(-1)
			s.gQueued.Set(s.waiting.Load())
			s.hQueueWait.Observe(int64(wait))
		}()
		select {
		case s.slots <- struct{}{}:
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		}
	}
	s.gInflight.Set(int64(len(s.slots)))
	return func() {
		<-s.slots
		s.gInflight.Set(int64(len(s.slots)))
	}, wait, nil
}

// timeoutFor resolves a request's deadline: the server default, lowered
// (never raised) by an explicit deadline_ms.
func (s *Server) timeoutFor(deadlineMS int) time.Duration {
	timeout := s.reqTimeout
	if d := time.Duration(deadlineMS) * time.Millisecond; deadlineMS > 0 && d < timeout {
		timeout = d
	}
	return timeout
}

// buildBytes is the shared execution path of every evaluation request:
// coalesce on the canonical key, pass admission control inside the
// flight (so joined requests don't consume extra slots), run the
// builder under the flight's detached context. The initiating request's
// ID is re-attached to the detached flight context so the engine's spans
// and log records stay correlated; joined requests keep their own ID on
// their (idle) handler context and are marked coalesced.
func (s *Server) buildBytes(ctx context.Context, key string, timeout time.Duration, build func(context.Context) ([]byte, error)) ([]byte, error) {
	st := statsFrom(ctx)
	reqID := obs.RequestID(ctx)
	body, shared, err := s.flights.do(ctx, key, timeout, func(fctx context.Context) ([]byte, error) {
		fctx = obs.WithRequestID(fctx, reqID)
		release, wait, err := s.admit(fctx)
		if err != nil {
			return nil, err
		}
		defer release()
		st.setQueueWait(wait)
		s.mEvaluations.Add(1)
		return build(fctx)
	})
	if shared {
		s.mCoalesced.Add(1)
		st.setCoalesced()
	}
	return body, err
}

// serveFlight runs buildBytes against an HTTP request and writes the
// outcome.
func (s *Server) serveFlight(w http.ResponseWriter, r *http.Request, key string, deadlineMS int, build func(context.Context) ([]byte, error)) {
	timeout := s.timeoutFor(deadlineMS)
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	body, err := s.buildBytes(ctx, key, timeout, build)
	s.writeOutcome(w, body, err)
}

// writeOutcome maps an evaluation outcome to an HTTP response.
func (s *Server) writeOutcome(w http.ResponseWriter, body []byte, err error) {
	switch {
	case err == nil:
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	case errors.Is(err, errBusy):
		w.Header().Set("Retry-After", strconv.Itoa(int((s.retryAfter+time.Second-1)/time.Second)))
		jsonError(w, http.StatusTooManyRequests, "admission queue full; retry later")
	case errors.Is(err, context.DeadlineExceeded):
		jsonError(w, http.StatusGatewayTimeout, "evaluation deadline exceeded")
	case errors.Is(err, context.Canceled):
		// The client is gone; the status is for the access log only.
		jsonError(w, http.StatusServiceUnavailable, "request canceled")
	default:
		s.log.Warn("evaluation failed", "err", err)
		jsonError(w, http.StatusInternalServerError, err.Error())
	}
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		jsonError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	var req EvalRequest
	if err := decodeJSON(r, &req); err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	q, err := resolveEval(req, s.eng)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	statsFrom(r.Context()).setKey(q.key())
	s.serveFlight(w, r, q.key(), req.DeadlineMS, func(fctx context.Context) ([]byte, error) {
		doc, err := EvaluateDocument(fctx, s.eng, "exocored", q.wls, q.core, q.bsas, q.sched, s.tracer)
		if err != nil {
			return nil, err
		}
		return renderDoc(doc)
	})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		jsonError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	var req SweepRequest
	if err := decodeJSON(r, &req); err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	q, err := resolveSweep(req, s.eng)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	statsFrom(r.Context()).setKey(q.key())
	build := func(fctx context.Context) ([]byte, error) {
		doc, err := SweepDocument(fctx, s.eng, "exocored", q.wls, q.designs, q.sched, q.partial)
		if err != nil {
			return nil, err
		}
		return renderDoc(doc)
	}
	if req.Async {
		id := "sweep-" + strconv.FormatInt(s.jobSeq.Add(1), 10)
		job := &sweepJob{done: make(chan struct{})}
		s.jobsMu.Lock()
		s.jobs[id] = job
		s.jobsMu.Unlock()
		timeout := s.timeoutFor(req.DeadlineMS)
		s.asyncWG.Add(1)
		go func() {
			defer s.asyncWG.Done()
			defer close(job.done)
			// The job ID doubles as the trace/request ID, so the sweep's
			// spans are retrievable from /debug/requests/{id}/trace and a
			// completion record lands in the flight recorder.
			st := &reqStats{key: q.key()}
			ctx := context.WithValue(obs.WithRequestID(context.Background(), id), statsKey{}, st)
			ctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			start := time.Now()
			job.body, job.err = s.buildBytes(ctx, q.key(), timeout, build)
			status := http.StatusOK
			if job.err != nil {
				status = http.StatusInternalServerError
			}
			s.rec.record(RequestRecord{
				ID: id, Method: "ASYNC", Path: "/v1/sweep", Key: q.key(),
				Status: status, Coalesced: st.coalesced,
				QueueWaitNS: st.queueWaitNS.Load(),
				LatencyNS:   int64(time.Since(start)), Start: start,
			})
		}()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{
			"id": id, "status": "accepted", "result": "/resultz/" + id,
		})
		return
	}
	s.serveFlight(w, r, q.key(), req.DeadlineMS, build)
}

func (s *Server) handleResultz(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.jobsMu.Lock()
	job := s.jobs[id]
	s.jobsMu.Unlock()
	if job == nil {
		jsonError(w, http.StatusNotFound, "unknown result id "+strconv.Quote(id))
		return
	}
	select {
	case <-job.done:
		s.writeOutcome(w, job.body, job.err)
	default:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": id, "status": "running"})
	}
}

// handleCapabilities reports what this daemon instance can evaluate, so
// clients discover the evaluable space instead of guessing against 400s:
// the engine's BSA registry (which -bsas may have restricted below the
// compiled-in default), the workload/core registries, the scheduler
// names, and the maxdyn budget the engine is warmed for.
func (s *Server) handleCapabilities(w http.ResponseWriter, r *http.Request) {
	reg := s.eng.BSAs()
	type bsaCap struct {
		Name    string  `json:"name"`
		Letter  string  `json:"letter"`
		AreaMM2 float64 `json:"area_mm2"`
	}
	models := reg.New()
	bsas := make([]bsaCap, 0, reg.Len())
	for _, e := range reg.Entries() {
		bsas = append(bsas, bsaCap{
			Name:    e.Name,
			Letter:  string(e.Letter),
			AreaMM2: models[e.Name].AreaMM2(),
		})
	}
	type wlCap struct {
		Name     string `json:"name"`
		Suite    string `json:"suite"`
		Category string `json:"category"`
	}
	wls := make([]wlCap, 0, len(workloads.All()))
	for _, wl := range workloads.All() {
		wls = append(wls, wlCap{Name: wl.Name, Suite: wl.Suite, Category: string(wl.Category)})
	}
	coreNames := make([]string, 0, len(cores.Configs))
	for _, c := range cores.Configs {
		coreNames = append(coreNames, c.Name)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{
		"bsas":       bsas,
		"workloads":  wls,
		"cores":      coreNames,
		"schedulers": []string{"oracle", "amdahl"},
		"maxdyn":     s.eng.MaxDyn(),
		"fabric":     map[string]any{"role": s.role},
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	w.Header().Set("Content-Type", "application/json")
	h := map[string]any{
		"status":    status,
		"role":      s.role,
		"uptime_ms": time.Since(s.start).Milliseconds(),
		"inflight":  len(s.slots),
		"queued":    s.waiting.Load(),
		"maxdyn":    s.eng.MaxDyn(),
		"latency_ns": map[string]float64{
			"p50": s.hLatency.Quantile(0.50),
			"p95": s.hLatency.Quantile(0.95),
			"p99": s.hLatency.Quantile(0.99),
		},
	}
	if s.store != nil {
		h["store"] = s.store.Occupancy()
	}
	json.NewEncoder(w).Encode(h)
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	s.gDroppedSpans.Set(s.tracer.Dropped())
	s.gRetainedSpans.Set(int64(s.tracer.Len()))
	m := s.eng.Metrics()
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", obs.PromContentType)
		obs.WriteProm(w, m.Points)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(m)
}

// handleDebugRequests serves the flight recorder: the bounded ring of
// recent requests (newest first), the slowest-request leaderboard, and
// the ring tracer's retention counters.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	s.gDroppedSpans.Set(s.tracer.Dropped())
	s.gRetainedSpans.Set(int64(s.tracer.Len()))
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{
		"recent":         s.rec.recent(),
		"slowest":        s.rec.slow(),
		"dropped_spans":  s.tracer.Dropped(),
		"retained_spans": s.tracer.Len(),
	})
}

// handleDebugTrace serves one request's Chrome-trace fragment from the
// shared ring tracer. 404 for IDs the flight recorder no longer (or
// never) knew; a known request whose spans have been evicted from the
// ring yields a valid, possibly empty, fragment.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.rec.lookup(id); !ok {
		jsonError(w, http.StatusNotFound, "unknown request id "+strconv.Quote(id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.tracer.WriteRequest(w, id)
}

// renderDoc serializes a document exactly as the CLI tools do (sorted,
// indented) so responses byte-match their output.
func renderDoc(doc *report.Document) ([]byte, error) {
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeJSON strictly decodes a request body: unknown fields and
// trailing data are errors, so client typos fail loudly instead of
// silently evaluating defaults.
func decodeJSON(r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	if dec.More() {
		return errors.New("bad request body: trailing data")
	}
	return nil
}

func jsonError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
