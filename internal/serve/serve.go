// Package serve is the evaluation-as-a-service layer: a long-running
// HTTP service wrapping one shared, warm runner.Engine so the expensive
// per-(benchmark, core) pipeline artifacts — traces, TDGs, scheduling
// contexts, assignment evaluations — are paid once and amortized over
// every request, instead of being rebuilt and thrown away per CLI
// invocation.
//
// The JSON API:
//
//	POST /v1/evaluate      one bench/core/BSA-set/scheduler query
//	POST /v1/sweep         a DSE sweep over a design-code list (or the
//	                       full grid); {"async": true} returns 202 + a
//	                       /resultz id
//	GET  /v1/capabilities  what this daemon can evaluate: BSA registry
//	                       (names + design-code letters), workloads,
//	                       cores, schedulers, warmed maxdyn
//	GET  /resultz/{id}     fetch an async sweep's document
//	GET  /healthz          liveness + queue/inflight snapshot
//	GET  /metricsz         the engine's internal/obs registry snapshot
//
// Evaluation responses are the versioned exocore-result/v1 schema,
// byte-identical to the equivalent cmd/tdgsim / cmd/dse -json output
// for the same inputs (modulo the tool header and run-local metrics;
// scripts/servesmoke gates this).
//
// Production behaviors, not the evaluation math, are this package's
// point: identical concurrent requests coalesce into one computation
// (singleflight, layered over the engine's stage memoization); a
// bounded admission queue sheds load with 429 + Retry-After instead of
// queueing without limit; every request carries a deadline and client
// disconnects cancel work at pipeline-stage boundaries; shutdown drains
// in-flight and async work before the process exits.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"exocore/internal/cores"
	"exocore/internal/obs"
	"exocore/internal/report"
	"exocore/internal/runner"
	"exocore/internal/workloads"
)

// Config configures a Server.
type Config struct {
	// Engine is the shared warm evaluation engine (required). Its
	// registry also receives the server's request metrics, so /metricsz
	// is one unified snapshot.
	Engine *runner.Engine
	// Concurrency bounds evaluations running at once (0 = the engine's
	// worker bound). Each admitted evaluation may itself fan out over
	// the engine's worker pool; this bounds admitted requests, not
	// goroutines.
	Concurrency int
	// QueueDepth bounds evaluations waiting for a slot before new ones
	// are rejected with 429 (0 = 4 × Concurrency).
	QueueDepth int
	// RequestTimeout is the per-request evaluation deadline (0 = 60s).
	// Requests may lower it per call via deadline_ms, never raise it.
	RequestTimeout time.Duration
	// RetryAfter is the hint sent with 429 responses (0 = 1s).
	RetryAfter time.Duration
	// Tracer, if non-nil, records one span per request plus the engine's
	// stage/segment spans underneath.
	Tracer *obs.Tracer
	// Log, if non-nil, receives request-level records.
	Log *obs.Logger
}

// Server is the evaluation service. Create with New, mount via Handler,
// stop with Shutdown. Safe for concurrent use.
type Server struct {
	eng    *runner.Engine
	reg    *obs.Registry
	tracer *obs.Tracer
	log    *obs.Logger
	mux    *http.ServeMux

	flights    group
	slots      chan struct{}
	queueDepth int
	reqTimeout time.Duration
	retryAfter time.Duration
	waiting    atomic.Int64
	draining   atomic.Bool

	jobsMu  sync.Mutex
	jobs    map[string]*sweepJob
	jobSeq  atomic.Int64
	asyncWG sync.WaitGroup

	start time.Time

	mRequests, mEvaluations, mCoalesced, mRejected *obs.Counter
	mStatus2xx, mStatus4xx, mStatus5xx             *obs.Counter
	gInflight, gQueued                             *obs.Gauge
	hLatency, hQueueWait                           *obs.Histogram
}

// sweepJob is one async sweep: body/err are written once before done is
// closed, so readers synchronize on the channel.
type sweepJob struct {
	done chan struct{}
	body []byte
	err  error
}

// New creates a Server around a shared engine.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("serve: Config.Engine is required")
	}
	conc := cfg.Concurrency
	if conc <= 0 {
		conc = cfg.Engine.Workers()
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 4 * conc
	}
	timeout := cfg.RequestTimeout
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	retry := cfg.RetryAfter
	if retry <= 0 {
		retry = time.Second
	}
	reg := cfg.Engine.Registry()
	s := &Server{
		eng:        cfg.Engine,
		reg:        reg,
		tracer:     cfg.Tracer,
		log:        cfg.Log,
		mux:        http.NewServeMux(),
		slots:      make(chan struct{}, conc),
		queueDepth: depth,
		reqTimeout: timeout,
		retryAfter: retry,
		jobs:       make(map[string]*sweepJob),
		start:      time.Now(),

		mRequests:    reg.Counter("serve.requests"),
		mEvaluations: reg.Counter("serve.evaluations"),
		mCoalesced:   reg.Counter("serve.coalesced"),
		mRejected:    reg.Counter("serve.rejected"),
		mStatus2xx:   reg.Counter("serve.status.2xx"),
		mStatus4xx:   reg.Counter("serve.status.4xx"),
		mStatus5xx:   reg.Counter("serve.status.5xx"),
		gInflight:    reg.Gauge("serve.inflight"),
		gQueued:      reg.Gauge("serve.queued"),
		hLatency:     reg.Histogram("serve.latency_ns", obs.DefaultWallBounds),
		hQueueWait:   reg.Histogram("serve.queue_wait_ns", obs.DefaultWallBounds),
	}
	s.mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("GET /v1/capabilities", s.handleCapabilities)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	s.mux.HandleFunc("GET /resultz/{id}", s.handleResultz)
	return s, nil
}

// statusWriter captures the response code for metrics and logging.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Handler returns the server's HTTP handler: the route mux wrapped with
// per-request accounting (request counter, latency histogram, status
// class counters, span, debug log record).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mRequests.Add(1)
		sp := s.tracer.Begin("http", r.Method+" "+r.URL.Path)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		s.mux.ServeHTTP(sw, r)
		wall := time.Since(start)
		s.hLatency.Observe(int64(wall))
		switch {
		case sw.code >= 500:
			s.mStatus5xx.Add(1)
		case sw.code >= 400:
			s.mStatus4xx.Add(1)
		default:
			s.mStatus2xx.Add(1)
		}
		sp.ArgInt("status", int64(sw.code)).End()
		s.log.Debug("request", "method", r.Method, "path", r.URL.Path,
			"status", sw.code, "wall", wall)
	})
}

// Shutdown drains the server: new evaluations are refused with 503 and
// running async sweeps are waited for. In-flight synchronous requests
// are drained by the caller's http.Server.Shutdown; call that first,
// then Shutdown with the same drain deadline. Returns ctx.Err() if the
// deadline passes with work still running.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.asyncWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

// errBusy rejects work when the admission queue is full.
var errBusy = errors.New("serve: admission queue full")

// admit acquires one of the bounded evaluation slots, waiting in the
// admission queue if all are busy. It fails fast with errBusy when the
// queue itself is full — the backpressure signal behind 429 — and with
// ctx.Err() when the caller gives up while queued.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	acquired := false
	select {
	case s.slots <- struct{}{}:
		acquired = true
	default:
	}
	if !acquired {
		if s.waiting.Add(1) > int64(s.queueDepth) {
			s.waiting.Add(-1)
			s.mRejected.Add(1)
			return nil, errBusy
		}
		s.gQueued.Set(s.waiting.Load())
		start := time.Now()
		defer func() {
			s.waiting.Add(-1)
			s.gQueued.Set(s.waiting.Load())
			s.hQueueWait.Observe(int64(time.Since(start)))
		}()
		select {
		case s.slots <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s.gInflight.Set(int64(len(s.slots)))
	return func() {
		<-s.slots
		s.gInflight.Set(int64(len(s.slots)))
	}, nil
}

// timeoutFor resolves a request's deadline: the server default, lowered
// (never raised) by an explicit deadline_ms.
func (s *Server) timeoutFor(deadlineMS int) time.Duration {
	timeout := s.reqTimeout
	if d := time.Duration(deadlineMS) * time.Millisecond; deadlineMS > 0 && d < timeout {
		timeout = d
	}
	return timeout
}

// buildBytes is the shared execution path of every evaluation request:
// coalesce on the canonical key, pass admission control inside the
// flight (so joined requests don't consume extra slots), run the
// builder under the flight's detached context.
func (s *Server) buildBytes(ctx context.Context, key string, timeout time.Duration, build func(context.Context) ([]byte, error)) ([]byte, error) {
	body, shared, err := s.flights.do(ctx, key, timeout, func(fctx context.Context) ([]byte, error) {
		release, err := s.admit(fctx)
		if err != nil {
			return nil, err
		}
		defer release()
		s.mEvaluations.Add(1)
		return build(fctx)
	})
	if shared {
		s.mCoalesced.Add(1)
	}
	return body, err
}

// serveFlight runs buildBytes against an HTTP request and writes the
// outcome.
func (s *Server) serveFlight(w http.ResponseWriter, r *http.Request, key string, deadlineMS int, build func(context.Context) ([]byte, error)) {
	timeout := s.timeoutFor(deadlineMS)
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	body, err := s.buildBytes(ctx, key, timeout, build)
	s.writeOutcome(w, body, err)
}

// writeOutcome maps an evaluation outcome to an HTTP response.
func (s *Server) writeOutcome(w http.ResponseWriter, body []byte, err error) {
	switch {
	case err == nil:
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	case errors.Is(err, errBusy):
		w.Header().Set("Retry-After", strconv.Itoa(int((s.retryAfter+time.Second-1)/time.Second)))
		jsonError(w, http.StatusTooManyRequests, "admission queue full; retry later")
	case errors.Is(err, context.DeadlineExceeded):
		jsonError(w, http.StatusGatewayTimeout, "evaluation deadline exceeded")
	case errors.Is(err, context.Canceled):
		// The client is gone; the status is for the access log only.
		jsonError(w, http.StatusServiceUnavailable, "request canceled")
	default:
		s.log.Warn("evaluation failed", "err", err)
		jsonError(w, http.StatusInternalServerError, err.Error())
	}
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		jsonError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	var req EvalRequest
	if err := decodeJSON(r, &req); err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	q, err := resolveEval(req, s.eng)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.serveFlight(w, r, q.key(), req.DeadlineMS, func(fctx context.Context) ([]byte, error) {
		doc, err := EvaluateDocument(fctx, s.eng, "exocored", q.wls, q.core, q.bsas, q.sched, s.tracer)
		if err != nil {
			return nil, err
		}
		return renderDoc(doc)
	})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		jsonError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	var req SweepRequest
	if err := decodeJSON(r, &req); err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	q, err := resolveSweep(req, s.eng)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	build := func(fctx context.Context) ([]byte, error) {
		doc, err := SweepDocument(fctx, s.eng, "exocored", q.wls, q.designs, q.sched)
		if err != nil {
			return nil, err
		}
		return renderDoc(doc)
	}
	if req.Async {
		id := "sweep-" + strconv.FormatInt(s.jobSeq.Add(1), 10)
		job := &sweepJob{done: make(chan struct{})}
		s.jobsMu.Lock()
		s.jobs[id] = job
		s.jobsMu.Unlock()
		timeout := s.timeoutFor(req.DeadlineMS)
		s.asyncWG.Add(1)
		go func() {
			defer s.asyncWG.Done()
			defer close(job.done)
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			job.body, job.err = s.buildBytes(ctx, q.key(), timeout, build)
		}()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{
			"id": id, "status": "accepted", "result": "/resultz/" + id,
		})
		return
	}
	s.serveFlight(w, r, q.key(), req.DeadlineMS, build)
}

func (s *Server) handleResultz(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.jobsMu.Lock()
	job := s.jobs[id]
	s.jobsMu.Unlock()
	if job == nil {
		jsonError(w, http.StatusNotFound, "unknown result id "+strconv.Quote(id))
		return
	}
	select {
	case <-job.done:
		s.writeOutcome(w, job.body, job.err)
	default:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": id, "status": "running"})
	}
}

// handleCapabilities reports what this daemon instance can evaluate, so
// clients discover the evaluable space instead of guessing against 400s:
// the engine's BSA registry (which -bsas may have restricted below the
// compiled-in default), the workload/core registries, the scheduler
// names, and the maxdyn budget the engine is warmed for.
func (s *Server) handleCapabilities(w http.ResponseWriter, r *http.Request) {
	reg := s.eng.BSAs()
	type bsaCap struct {
		Name    string  `json:"name"`
		Letter  string  `json:"letter"`
		AreaMM2 float64 `json:"area_mm2"`
	}
	models := reg.New()
	bsas := make([]bsaCap, 0, reg.Len())
	for _, e := range reg.Entries() {
		bsas = append(bsas, bsaCap{
			Name:    e.Name,
			Letter:  string(e.Letter),
			AreaMM2: models[e.Name].AreaMM2(),
		})
	}
	type wlCap struct {
		Name     string `json:"name"`
		Suite    string `json:"suite"`
		Category string `json:"category"`
	}
	wls := make([]wlCap, 0, len(workloads.All()))
	for _, wl := range workloads.All() {
		wls = append(wls, wlCap{Name: wl.Name, Suite: wl.Suite, Category: string(wl.Category)})
	}
	coreNames := make([]string, 0, len(cores.Configs))
	for _, c := range cores.Configs {
		coreNames = append(coreNames, c.Name)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{
		"bsas":       bsas,
		"workloads":  wls,
		"cores":      coreNames,
		"schedulers": []string{"oracle", "amdahl"},
		"maxdyn":     s.eng.MaxDyn(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":    status,
		"uptime_ms": time.Since(s.start).Milliseconds(),
		"inflight":  len(s.slots),
		"queued":    s.waiting.Load(),
		"maxdyn":    s.eng.MaxDyn(),
	})
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	m := s.eng.Metrics()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(m)
}

// renderDoc serializes a document exactly as the CLI tools do (sorted,
// indented) so responses byte-match their output.
func renderDoc(doc *report.Document) ([]byte, error) {
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeJSON strictly decodes a request body: unknown fields and
// trailing data are errors, so client typos fail loudly instead of
// silently evaluating defaults.
func decodeJSON(r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	if dec.More() {
		return errors.New("bad request body: trailing data")
	}
	return nil
}

func jsonError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
