package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"exocore/internal/cli"
	"exocore/internal/cores"
	"exocore/internal/report"
	"exocore/internal/runner"
	"exocore/internal/store"
)

// testMaxDyn keeps evaluations fast; all caches still exercise for real.
const testMaxDyn = 10_000

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Engine == nil {
		cfg.Engine = runner.New(runner.Options{MaxDyn: testMaxDyn})
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestEvaluateMatchesDirectDocument gates the byte-identity contract:
// the endpoint's body is exactly the rendered EvaluateDocument, and
// modulo the tool header it is the same document cmd/tdgsim -json emits
// (both call the one builder).
func TestEvaluateMatchesDirectDocument(t *testing.T) {
	eng := runner.New(runner.Options{MaxDyn: testMaxDyn})
	_, hs := newTestServer(t, Config{Engine: eng})

	resp, body := post(t, hs.URL+"/v1/evaluate",
		`{"bench":"mm","core":"OOO2","bsas":"SIMD,NS-DF","sched":"oracle"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}

	wls, err := cli.ResolveBenchSpec("mm")
	if err != nil {
		t.Fatal(err)
	}
	core, _ := cores.ConfigByName("OOO2")
	doc, err := EvaluateDocument(context.Background(), eng, "exocored",
		wls, core, []string{"SIMD", "NS-DF"}, "oracle", nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := renderDoc(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("response is not the rendered document\ngot:  %s\nwant: %s", body, want)
	}

	// The body must decode under the strict versioned-schema decoder.
	d, err := report.Decode(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if d.Tool != "exocored" || len(d.Results) == 0 {
		t.Fatalf("decoded tool %q, %d results", d.Tool, len(d.Results))
	}
}

// TestSweepMatchesDirectDocument does the same for /v1/sweep with a
// design restriction.
func TestSweepMatchesDirectDocument(t *testing.T) {
	eng := runner.New(runner.Options{MaxDyn: testMaxDyn})
	_, hs := newTestServer(t, Config{Engine: eng})

	resp, body := post(t, hs.URL+"/v1/sweep",
		`{"bench":"mm,fft","designs":["IO2","OOO2-SDN"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}

	wls, err := cli.ResolveBenchSpec("mm,fft")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := SweepDocument(context.Background(), eng, "exocored",
		wls, []string{"IO2", "OOO2-SDN"}, "oracle", false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := renderDoc(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("sweep response is not the rendered document")
	}
}

// TestConcurrentClientsShareOneAnswer hammers one query from many
// goroutines under -race: every response must be 200 and byte-identical.
func TestConcurrentClientsShareOneAnswer(t *testing.T) {
	_, hs := newTestServer(t, Config{})

	const clients = 16
	bodies := make([][]byte, clients)
	codes := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(hs.URL+"/v1/evaluate", "application/json",
				strings.NewReader(`{"bench":"mm","core":"IO2"}`))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()

	for i := 0; i < clients; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("client %d: status = %d, body %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d got a different body", i)
		}
	}
}

// TestQueueOverflowRejectsWith429 fills the single slot and the
// one-deep queue by hand, then shows the next request is shed with 429
// and a Retry-After hint rather than queued without bound.
func TestQueueOverflowRejectsWith429(t *testing.T) {
	s, hs := newTestServer(t, Config{Concurrency: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})

	release, _, err := s.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	queued := make(chan error, 1)
	qctx, qcancel := context.WithCancel(context.Background())
	defer qcancel()
	go func() {
		rel, _, err := s.admit(qctx)
		if err == nil {
			rel()
		}
		queued <- err
	}()
	waitFor(t, func() bool { return s.waiting.Load() == 1 })

	resp, body := post(t, hs.URL+"/v1/evaluate", `{"bench":"mm"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}
	var msg map[string]string
	if err := json.Unmarshal(body, &msg); err != nil || msg["error"] == "" {
		t.Fatalf("429 body %s not an error document (%v)", body, err)
	}

	qcancel()
	if err := <-queued; err == nil {
		t.Fatal("queued admit returned nil after cancel")
	}
}

// TestQueuedRequestDeadline504: a request stuck in the admission queue
// past its deadline comes back 504, and the slot holder is unaffected.
func TestQueuedRequestDeadline504(t *testing.T) {
	s, hs := newTestServer(t, Config{Concurrency: 1, QueueDepth: 4})

	release, _, err := s.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	resp, body := post(t, hs.URL+"/v1/evaluate", `{"bench":"mm","deadline_ms":50}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}

	// Free the slot: the same query must now succeed — the timed-out
	// attempt left neither the queue nor the engine poisoned. Wait out
	// the dying flight first so the retry doesn't join it.
	release()
	waitFor(t, func() bool {
		s.flights.mu.Lock()
		defer s.flights.mu.Unlock()
		return len(s.flights.m) == 0
	})
	resp, body = post(t, hs.URL+"/v1/evaluate", `{"bench":"mm"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: status = %d, body %s", resp.StatusCode, body)
	}
}

// TestBadRequests exercises the 400 paths: malformed JSON, unknown
// fields, unknown specs, budget mismatch.
func TestBadRequests(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	cases := []struct {
		name, path, body, wantFrag string
	}{
		{"malformed", "/v1/evaluate", `{"bench":`, "bad request body"},
		{"unknown field", "/v1/evaluate", `{"bench":"mm","turbo":true}`, "bad request body"},
		{"missing bench", "/v1/evaluate", `{}`, "missing required field"},
		{"unknown bench", "/v1/evaluate", `{"bench":"nope"}`, "unknown workload"},
		{"unknown core", "/v1/evaluate", `{"bench":"mm","core":"Z80"}`, "unknown core"},
		{"unknown sched", "/v1/evaluate", `{"bench":"mm","sched":"lru"}`, "unknown scheduler"},
		{"maxdyn mismatch", "/v1/evaluate", `{"bench":"mm","maxdyn":123}`, "not served"},
		{"bad design", "/v1/sweep", `{"designs":["OOO3-S"]}`, "in design"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, hs.URL+tc.path, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, body %s", resp.StatusCode, body)
			}
			if !strings.Contains(string(body), tc.wantFrag) {
				t.Fatalf("body %s missing %q", body, tc.wantFrag)
			}
		})
	}
}

// TestAsyncSweepLifecycle: 202 + id, poll /resultz until done, the
// fetched document matches the synchronous answer.
func TestAsyncSweepLifecycle(t *testing.T) {
	_, hs := newTestServer(t, Config{})

	resp, body := post(t, hs.URL+"/v1/sweep", `{"bench":"mm","designs":["IO2"],"async":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var acc map[string]string
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	if acc["id"] == "" || acc["result"] == "" {
		t.Fatalf("accept body %s", body)
	}

	var doc []byte
	waitFor(t, func() bool {
		resp, b := get(t, hs.URL+acc["result"])
		switch resp.StatusCode {
		case http.StatusOK:
			doc = b
			return true
		case http.StatusAccepted:
			return false
		default:
			t.Fatalf("resultz status = %d, body %s", resp.StatusCode, b)
			return false
		}
	})

	resp, want := post(t, hs.URL+"/v1/sweep", `{"bench":"mm","designs":["IO2"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync sweep status = %d", resp.StatusCode)
	}
	if !bytes.Equal(doc, want) {
		t.Fatal("async document differs from synchronous document")
	}

	resp, _ = get(t, hs.URL+"/resultz/sweep-999")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id status = %d", resp.StatusCode)
	}
}

// TestShutdownDrainsAsyncWork: Shutdown waits for a running async sweep
// and new work is refused with 503 while draining.
func TestShutdownDrainsAsyncWork(t *testing.T) {
	s, hs := newTestServer(t, Config{})

	_, body := post(t, hs.URL+"/v1/sweep", `{"bench":"mm","designs":["IO2","OOO2-S"],"async":true}`)
	var acc map[string]string
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Draining: the job it waited for is ready, new work is refused.
	resp, _ := get(t, hs.URL+acc["result"])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drained job status = %d", resp.StatusCode)
	}
	resp, _ = post(t, hs.URL+"/v1/evaluate", `{"bench":"mm"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining evaluate status = %d", resp.StatusCode)
	}
	resp, body = get(t, hs.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "draining") {
		t.Fatalf("healthz while draining: %d %s", resp.StatusCode, body)
	}
}

// TestHealthzAndMetricsz: liveness fields and a registry snapshot that
// includes both engine-stage and server metrics.
func TestHealthzAndMetricsz(t *testing.T) {
	_, hs := newTestServer(t, Config{})

	resp, body := get(t, hs.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var h map[string]any
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" {
		t.Fatalf("healthz status %v", h["status"])
	}
	if _, ok := h["maxdyn"]; !ok {
		t.Fatal("healthz missing maxdyn")
	}
	if h["role"] != "single" {
		t.Fatalf("healthz role = %v, want single by default", h["role"])
	}
	if _, ok := h["store"]; ok {
		t.Fatal("healthz reports a store without one configured")
	}

	// One evaluation so stage counters move.
	if resp, b := post(t, hs.URL+"/v1/evaluate", `{"bench":"mm"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate = %d %s", resp.StatusCode, b)
	}
	resp, body = get(t, hs.URL+"/metricsz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metricsz = %d", resp.StatusCode)
	}
	var m struct {
		Stages []struct {
			Stage  string `json:"stage"`
			Misses int64  `json:"cache_misses"`
		} `json:"stages"`
	}
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("metricsz body: %v", err)
	}
	if len(m.Stages) == 0 {
		t.Fatal("metricsz has no stage counters")
	}
}

// TestFabricFieldsSurface: a replica-role daemon with a store reports
// both through /healthz, and /v1/capabilities names its fabric role.
func TestFabricFieldsSurface(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, Config{Role: "replica", Store: st})

	_, body := get(t, hs.URL+"/healthz")
	var h struct {
		Role  string `json:"role"`
		Store *struct {
			Dir string `json:"dir"`
		} `json:"store"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Role != "replica" {
		t.Fatalf("healthz role = %q", h.Role)
	}
	if h.Store == nil || h.Store.Dir == "" {
		t.Fatalf("healthz store occupancy missing: %s", body)
	}

	_, body = get(t, hs.URL+"/v1/capabilities")
	var caps struct {
		Fabric struct {
			Role string `json:"role"`
		} `json:"fabric"`
	}
	if err := json.Unmarshal(body, &caps); err != nil {
		t.Fatal(err)
	}
	if caps.Fabric.Role != "replica" {
		t.Fatalf("capabilities fabric role = %q", caps.Fabric.Role)
	}
}

// TestFlightCoalesces pins the singleflight itself: ten concurrent
// callers, one execution.
func TestFlightCoalesces(t *testing.T) {
	var g group
	var calls int32
	started := make(chan struct{})
	release := make(chan struct{})
	fn := func(ctx context.Context) ([]byte, error) {
		close(started)
		<-release
		calls++
		return []byte("x"), nil
	}

	var wg sync.WaitGroup
	results := make([][]byte, 10)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], _, _ = g.do(context.Background(), "k", time.Minute, fn)
	}()
	<-started
	for i := 1; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, _ = g.do(context.Background(), "k", time.Minute, fn)
		}(i)
	}
	// Every joiner must be parked on the flight before it finishes, or a
	// late arrival would start (and count) a second flight.
	waitFor(t, func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		f := g.m["k"]
		return f != nil && f.refs == 10
	})
	close(release)
	wg.Wait()

	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	for i, r := range results {
		if string(r) != "x" {
			t.Fatalf("caller %d got %q", i, r)
		}
	}
}

// TestFlightLastLeaverCancels: when every waiter gives up, the flight's
// detached context is canceled so abandoned work stops.
func TestFlightLastLeaverCancels(t *testing.T) {
	var g group
	flightCtx := make(chan context.Context, 1)
	fn := func(ctx context.Context) ([]byte, error) {
		flightCtx <- ctx
		<-ctx.Done()
		return nil, ctx.Err()
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := g.do(ctx, "k", time.Minute, fn)
		errc <- err
	}()
	fctx := <-flightCtx

	cancel() // the only caller leaves
	if err := <-errc; err == nil {
		t.Fatal("caller returned nil after cancel")
	}
	select {
	case <-fctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("flight context not canceled after last caller left")
	}
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in 30s")
}
