// Package sim is the functional front-end of the framework: it executes a
// static program on an architectural register file and a paged memory,
// emitting the dynamic trace the TDG is built from. It plays the role of
// gem5 in the paper's toolchain (Figure 2), minus timing — timing comes
// from the dependence-graph models.
package sim

import "math"

const (
	pageShift = 12 // 4 KiB pages
	pageWords = 1 << (pageShift - 3)
	pageMask  = pageWords - 1
)

type page [pageWords]uint64

// Memory is a sparse, word-granular (8-byte) memory. Addresses are byte
// addresses; accesses are aligned to 8 bytes (the functional model masks
// low bits). The zero value is ready to use.
type Memory struct {
	pages map[uint64]*page
}

// NewMemory returns an empty memory.
func NewMemory() *Memory { return &Memory{pages: make(map[uint64]*page)} }

func (m *Memory) pageFor(addr uint64, create bool) *page {
	key := addr >> pageShift
	p := m.pages[key]
	if p == nil && create {
		p = new(page)
		m.pages[key] = p
	}
	return p
}

// LoadInt returns the 64-bit word at addr.
func (m *Memory) LoadInt(addr uint64) int64 {
	p := m.pageFor(addr, false)
	if p == nil {
		return 0
	}
	return int64(p[(addr>>3)&pageMask])
}

// StoreInt writes a 64-bit word at addr.
func (m *Memory) StoreInt(addr uint64, v int64) {
	p := m.pageFor(addr, true)
	p[(addr>>3)&pageMask] = uint64(v)
}

// LoadFloat returns the float64 at addr.
func (m *Memory) LoadFloat(addr uint64) float64 {
	return math.Float64frombits(uint64(m.LoadInt(addr)))
}

// StoreFloat writes a float64 at addr.
func (m *Memory) StoreFloat(addr uint64, v float64) {
	m.StoreInt(addr, int64(math.Float64bits(v)))
}

// Footprint returns the number of resident pages (for tests).
func (m *Memory) Footprint() int { return len(m.pages) }
