package sim

import (
	"fmt"
	"math"

	"exocore/internal/isa"
	"exocore/internal/prog"
	"exocore/internal/trace"
)

// Config bounds a functional run.
type Config struct {
	// MaxDyn caps the number of dynamic instructions recorded (0 = default).
	MaxDyn int
}

// DefaultMaxDyn is the default dynamic-instruction budget per run. The
// paper records 200M-instruction windows after fast-forward; our synthetic
// kernels are stationary so a much shorter trace captures the same region
// structure (see DESIGN.md).
const DefaultMaxDyn = 200_000

// State is the architectural state of a functional execution.
type State struct {
	IntRegs [isa.NumIntRegs]int64
	FpRegs  [isa.NumFpRegs]float64
	Mem     *Memory
	PC      int
}

// NewState returns a fresh architectural state with empty memory.
func NewState() *State { return &State{Mem: NewMemory()} }

// SetInt sets an integer register (ignoring writes to R0).
func (s *State) SetInt(r isa.Reg, v int64) {
	if r != isa.RZ && !r.IsFp() {
		s.IntRegs[r] = v
	}
}

// SetFp sets a floating-point register.
func (s *State) SetFp(r isa.Reg, v float64) {
	if r.IsFp() {
		s.FpRegs[int(r)-isa.NumIntRegs] = v
	}
}

func (s *State) readInt(r isa.Reg) int64 {
	if r == isa.NoReg || r.IsFp() {
		return 0
	}
	return s.IntRegs[r]
}

func (s *State) readFp(r isa.Reg) float64 {
	if !r.IsFp() {
		// Integer sources to fp ops are converted (FCvt path).
		return float64(s.readInt(r))
	}
	return s.FpRegs[int(r)-isa.NumIntRegs]
}

func (s *State) write(r isa.Reg, iv int64, fv float64) {
	if r == isa.NoReg {
		return
	}
	if r.IsFp() {
		s.SetFp(r, fv)
	} else {
		s.SetInt(r, iv)
	}
}

// Run executes p starting at instruction 0 until the program falls off the
// end, jumps to a negative target, or the dynamic budget is exhausted,
// returning the recorded trace. The initial state (registers, memory) must
// already be prepared by the caller; this mirrors fast-forwarding past
// initialization in the paper's methodology.
func Run(p *prog.Program, st *State, cfg Config) (*trace.Trace, error) {
	maxDyn := cfg.MaxDyn
	if maxDyn <= 0 {
		maxDyn = DefaultMaxDyn
	}
	out := &trace.Trace{Prog: p, Insts: make([]trace.DynInst, 0, min(maxDyn, 1<<16))}
	sp := NewStepper(p, st)
	for len(out.Insts) < maxDyn {
		n := len(out.Insts)
		if cap(out.Insts) == n {
			// Force the usual append growth, then retract: Fill writes
			// straight into the trace's backing array.
			out.Insts = append(out.Insts, trace.DynInst{})[:n]
		}
		room := cap(out.Insts) - n
		if rem := maxDyn - n; room > rem {
			room = rem
		}
		w, running := sp.Fill(out.Insts[n : n+room])
		out.Insts = out.Insts[:n+w]
		if err := sp.Err(); err != nil {
			return nil, err
		}
		if !running {
			break // program exit
		}
	}
	return out, nil
}

// Stepper is a resumable functional execution: the same interpreter as
// Run, broken at arbitrary instruction boundaries so trace sources can
// synthesize bounded chunks on demand. Architectural state lives in the
// caller-provided State and persists across Fill calls, so chunk size
// never changes the instruction stream.
type Stepper struct {
	p       *prog.Program
	st      *State
	stopped bool
	err     error
}

// NewStepper returns a stepper over p starting from st (typically PC 0
// with a prepared memory image, exactly as Run expects).
func NewStepper(p *prog.Program, st *State) *Stepper {
	return &Stepper{p: p, st: st}
}

// Err returns the execution error that stopped the stepper, if any.
func (s *Stepper) Err() error { return s.err }

// Running reports whether the program can still make progress.
func (s *Stepper) Running() bool { return !s.stopped }

// Fill executes instructions into buf until it is full, the program
// exits, or execution faults, returning the count written and whether
// the program is still running. After a fault, Err is non-nil and the
// partial fill up to the faulting instruction is returned.
func (s *Stepper) Fill(buf []trace.DynInst) (int, bool) {
	if s.stopped {
		return 0, false
	}
	p, st := s.p, s.st
	n := len(p.Insts)
	w := 0
	for w < len(buf) {
		if st.PC < 0 || st.PC >= n {
			s.stopped = true
			return w, false // program exit
		}
		in := &p.Insts[st.PC]
		buf[w] = trace.DynInst{SI: int32(st.PC)}
		d := &buf[w]
		next := st.PC + 1

		switch in.Op {
		case isa.Nop:
		case isa.Add:
			st.SetInt(in.Dst, st.readInt(in.Src1)+st.readInt(in.Src2))
		case isa.AddI:
			st.SetInt(in.Dst, st.readInt(in.Src1)+in.Imm)
		case isa.Sub:
			st.SetInt(in.Dst, st.readInt(in.Src1)-st.readInt(in.Src2))
		case isa.SubI:
			st.SetInt(in.Dst, st.readInt(in.Src1)-in.Imm)
		case isa.And:
			st.SetInt(in.Dst, st.readInt(in.Src1)&st.readInt(in.Src2))
		case isa.Or:
			st.SetInt(in.Dst, st.readInt(in.Src1)|st.readInt(in.Src2))
		case isa.Xor:
			st.SetInt(in.Dst, st.readInt(in.Src1)^st.readInt(in.Src2))
		case isa.Shl:
			st.SetInt(in.Dst, st.readInt(in.Src1)<<(uint64(st.readInt(in.Src2))&63))
		case isa.ShlI:
			st.SetInt(in.Dst, st.readInt(in.Src1)<<(uint64(in.Imm)&63))
		case isa.Shr:
			st.SetInt(in.Dst, int64(uint64(st.readInt(in.Src1))>>(uint64(st.readInt(in.Src2))&63)))
		case isa.ShrI:
			st.SetInt(in.Dst, int64(uint64(st.readInt(in.Src1))>>(uint64(in.Imm)&63)))
		case isa.Slt:
			st.SetInt(in.Dst, boolToInt(st.readInt(in.Src1) < st.readInt(in.Src2)))
		case isa.SltI:
			st.SetInt(in.Dst, boolToInt(st.readInt(in.Src1) < in.Imm))
		case isa.MovI:
			st.SetInt(in.Dst, in.Imm)
		case isa.Mov:
			st.SetInt(in.Dst, st.readInt(in.Src1))
		case isa.Mul:
			st.SetInt(in.Dst, st.readInt(in.Src1)*st.readInt(in.Src2))
		case isa.MulI:
			st.SetInt(in.Dst, st.readInt(in.Src1)*in.Imm)
		case isa.Div:
			d2 := st.readInt(in.Src2)
			if d2 == 0 {
				st.SetInt(in.Dst, 0)
			} else {
				st.SetInt(in.Dst, st.readInt(in.Src1)/d2)
			}
		case isa.Rem:
			d2 := st.readInt(in.Src2)
			if d2 == 0 {
				st.SetInt(in.Dst, 0)
			} else {
				st.SetInt(in.Dst, st.readInt(in.Src1)%d2)
			}

		case isa.FAdd:
			st.SetFp(in.Dst, st.readFp(in.Src1)+st.readFp(in.Src2))
		case isa.FSub:
			st.SetFp(in.Dst, st.readFp(in.Src1)-st.readFp(in.Src2))
		case isa.FMul:
			st.SetFp(in.Dst, st.readFp(in.Src1)*st.readFp(in.Src2))
		case isa.FDiv:
			d2 := st.readFp(in.Src2)
			if d2 == 0 {
				st.SetFp(in.Dst, 0)
			} else {
				st.SetFp(in.Dst, st.readFp(in.Src1)/d2)
			}
		case isa.FMA:
			st.SetFp(in.Dst, st.readFp(in.Src1)*st.readFp(in.Src2)+st.readFp(in.Dst))
		case isa.FCvt:
			st.SetFp(in.Dst, float64(st.readInt(in.Src1)))
		case isa.FSlt:
			st.SetInt(in.Dst, boolToInt(st.readFp(in.Src1) < st.readFp(in.Src2)))
		case isa.FMov:
			st.SetFp(in.Dst, st.readFp(in.Src1))
		case isa.FMovI:
			st.SetFp(in.Dst, math.Float64frombits(uint64(in.Imm)))

		case isa.Ld:
			addr := uint64(st.readInt(in.Src1)+in.Imm) &^ 7
			d.Addr = addr
			st.SetInt(in.Dst, st.Mem.LoadInt(addr))
		case isa.St:
			addr := uint64(st.readInt(in.Src1)+in.Imm) &^ 7
			d.Addr = addr
			st.Mem.StoreInt(addr, st.readInt(in.Src2))
		case isa.LdF:
			addr := uint64(st.readInt(in.Src1)+in.Imm) &^ 7
			d.Addr = addr
			st.SetFp(in.Dst, st.Mem.LoadFloat(addr))
		case isa.StF:
			addr := uint64(st.readInt(in.Src1)+in.Imm) &^ 7
			d.Addr = addr
			st.Mem.StoreFloat(addr, st.readFp(in.Src2))

		case isa.Beq, isa.Bne, isa.Blt, isa.Bge:
			taken := false
			a, b2 := st.readInt(in.Src1), st.readInt(in.Src2)
			switch in.Op {
			case isa.Beq:
				taken = a == b2
			case isa.Bne:
				taken = a != b2
			case isa.Blt:
				taken = a < b2
			case isa.Bge:
				taken = a >= b2
			}
			if taken {
				d.Flags |= trace.FlagTaken
				next = int(in.Imm)
			}
		case isa.Jmp:
			d.Flags |= trace.FlagTaken
			next = int(in.Imm)

		default:
			s.stopped = true
			s.err = fmt.Errorf("sim: program %q: unexecutable opcode %s at %d (vector ops are transform-only)",
				p.Name, in.Op, st.PC)
			return w, false
		}

		w++
		st.PC = next
	}
	return w, true
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
