package sim

import (
	"testing"
	"testing/quick"

	"exocore/internal/isa"
	"exocore/internal/prog"
	"exocore/internal/trace"
)

func run(t *testing.T, p *prog.Program, prep func(*State)) (*trace.Trace, *State) {
	t.Helper()
	st := NewState()
	if prep != nil {
		prep(st)
	}
	tr, err := Run(p, st, Config{MaxDyn: 100000})
	if err != nil {
		t.Fatal(err)
	}
	return tr, st
}

func TestCountdownLoop(t *testing.T) {
	b := prog.NewBuilder("countdown")
	b.MovI(isa.R(1), 5)
	b.Label("loop")
	b.SubI(isa.R(1), isa.R(1), 1)
	b.Bne(isa.R(1), isa.RZ, "loop")
	p := b.MustBuild()

	tr, st := run(t, p, nil)
	if st.IntRegs[1] != 0 {
		t.Errorf("r1 = %d, want 0", st.IntRegs[1])
	}
	// 1 movi + 5*(sub+bne) = 11 dynamic instructions.
	if tr.Len() != 11 {
		t.Errorf("trace len = %d, want 11", tr.Len())
	}
	// Last branch not taken, previous 4 taken.
	stats := tr.ComputeStats()
	if stats.Branches != 5 || stats.Taken != 4 {
		t.Errorf("branches=%d taken=%d, want 5/4", stats.Branches, stats.Taken)
	}
}

func TestArithmeticOps(t *testing.T) {
	b := prog.NewBuilder("arith")
	b.MovI(isa.R(1), 7)
	b.MovI(isa.R(2), 3)
	b.Add(isa.R(3), isa.R(1), isa.R(2))  // 10
	b.Sub(isa.R(4), isa.R(1), isa.R(2))  // 4
	b.Mul(isa.R(5), isa.R(1), isa.R(2))  // 21
	b.Div(isa.R(6), isa.R(1), isa.R(2))  // 2
	b.Rem(isa.R(7), isa.R(1), isa.R(2))  // 1
	b.And(isa.R(8), isa.R(1), isa.R(2))  // 3
	b.Or(isa.R(9), isa.R(1), isa.R(2))   // 7
	b.Xor(isa.R(10), isa.R(1), isa.R(2)) // 4
	b.ShlI(isa.R(11), isa.R(1), 2)       // 28
	b.ShrI(isa.R(12), isa.R(1), 1)       // 3
	b.Slt(isa.R(13), isa.R(2), isa.R(1)) // 1
	b.SltI(isa.R(14), isa.R(1), 5)       // 0
	p := b.MustBuild()

	_, st := run(t, p, nil)
	want := map[int]int64{3: 10, 4: 4, 5: 21, 6: 2, 7: 1, 8: 3, 9: 7, 10: 4, 11: 28, 12: 3, 13: 1, 14: 0}
	for r, v := range want {
		if st.IntRegs[r] != v {
			t.Errorf("r%d = %d, want %d", r, st.IntRegs[r], v)
		}
	}
}

func TestDivRemByZero(t *testing.T) {
	b := prog.NewBuilder("divz")
	b.MovI(isa.R(1), 7)
	b.Div(isa.R(2), isa.R(1), isa.RZ)
	b.Rem(isa.R(3), isa.R(1), isa.RZ)
	_, st := run(t, b.MustBuild(), nil)
	if st.IntRegs[2] != 0 || st.IntRegs[3] != 0 {
		t.Errorf("div/rem by zero = %d/%d, want 0/0", st.IntRegs[2], st.IntRegs[3])
	}
}

func TestFloatOps(t *testing.T) {
	b := prog.NewBuilder("fp")
	b.FMovI(isa.F(1), 2.5)
	b.FMovI(isa.F(2), 4.0)
	b.FAdd(isa.F(3), isa.F(1), isa.F(2))
	b.FSub(isa.F(4), isa.F(2), isa.F(1))
	b.FMul(isa.F(5), isa.F(1), isa.F(2))
	b.FDiv(isa.F(6), isa.F(2), isa.F(1))
	b.MovI(isa.R(1), 9)
	b.FCvt(isa.F(7), isa.R(1))
	b.FSlt(isa.R(2), isa.F(1), isa.F(2))
	_, st := run(t, b.MustBuild(), nil)
	fp := func(i int) float64 { return st.FpRegs[i] }
	if fp(3) != 6.5 || fp(4) != 1.5 || fp(5) != 10.0 || fp(6) != 1.6 || fp(7) != 9.0 {
		t.Errorf("fp results: %v %v %v %v %v", fp(3), fp(4), fp(5), fp(6), fp(7))
	}
	if st.IntRegs[2] != 1 {
		t.Errorf("fslt = %d, want 1", st.IntRegs[2])
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	b := prog.NewBuilder("mem")
	b.MovI(isa.R(1), 0x1000)
	b.MovI(isa.R(2), 1234)
	b.St(isa.R(2), isa.R(1), 0)
	b.Ld(isa.R(3), isa.R(1), 0)
	b.FMovI(isa.F(1), 3.25)
	b.StF(isa.F(1), isa.R(1), 8)
	b.LdF(isa.F(2), isa.R(1), 8)
	tr, st := run(t, b.MustBuild(), nil)
	if st.IntRegs[3] != 1234 {
		t.Errorf("loaded %d, want 1234", st.IntRegs[3])
	}
	if st.FpRegs[2] != 3.25 {
		t.Errorf("loaded %v, want 3.25", st.FpRegs[2])
	}
	stats := tr.ComputeStats()
	if stats.Loads != 2 || stats.Stores != 2 {
		t.Errorf("loads=%d stores=%d, want 2/2", stats.Loads, stats.Stores)
	}
	// Addresses recorded.
	for i := range tr.Insts {
		if tr.Static(i).Op.IsMem() && tr.Insts[i].Addr < 0x1000 {
			t.Errorf("mem inst %d has addr %#x", i, tr.Insts[i].Addr)
		}
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	b := prog.NewBuilder("rz")
	b.MovI(isa.RZ, 99)
	b.Add(isa.R(1), isa.RZ, isa.RZ)
	_, st := run(t, b.MustBuild(), nil)
	if st.IntRegs[0] != 0 || st.IntRegs[1] != 0 {
		t.Errorf("r0 = %d, r1 = %d; want 0, 0", st.IntRegs[0], st.IntRegs[1])
	}
}

func TestMaxDynBudget(t *testing.T) {
	b := prog.NewBuilder("inf")
	b.Label("top").Jmp("top")
	st := NewState()
	tr, err := Run(b.MustBuild(), st, Config{MaxDyn: 500})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 500 {
		t.Errorf("trace len = %d, want 500 (budget)", tr.Len())
	}
}

func TestVectorOpsRejected(t *testing.T) {
	p := &prog.Program{Name: "vec", Insts: []isa.Inst{{Op: isa.VAdd, Dst: isa.R(1), Src1: isa.R(2), Src2: isa.R(3)}}}
	_, err := Run(p, NewState(), Config{})
	if err == nil {
		t.Fatal("expected error executing a vector op functionally")
	}
}

func TestFMASemantics(t *testing.T) {
	p := &prog.Program{Name: "fma", Insts: []isa.Inst{
		{Op: isa.FMovI, Dst: isa.F(0), Src1: isa.NoReg, Src2: isa.NoReg, Imm: fbits(10)},
		{Op: isa.FMovI, Dst: isa.F(1), Src1: isa.NoReg, Src2: isa.NoReg, Imm: fbits(3)},
		{Op: isa.FMovI, Dst: isa.F(2), Src1: isa.NoReg, Src2: isa.NoReg, Imm: fbits(4)},
		{Op: isa.FMA, Dst: isa.F(0), Src1: isa.F(1), Src2: isa.F(2)},
	}}
	st := NewState()
	if _, err := Run(p, st, Config{}); err != nil {
		t.Fatal(err)
	}
	if st.FpRegs[0] != 22 { // 10 + 3*4
		t.Errorf("fma = %v, want 22", st.FpRegs[0])
	}
}

func TestMemorySparse(t *testing.T) {
	m := NewMemory()
	m.StoreInt(0, 1)
	m.StoreInt(1<<40, 2)
	if m.LoadInt(0) != 1 || m.LoadInt(1<<40) != 2 {
		t.Error("sparse memory lost values")
	}
	if m.LoadInt(12345<<20) != 0 {
		t.Error("untouched memory should read zero")
	}
	if m.Footprint() != 2 {
		t.Errorf("footprint = %d, want 2", m.Footprint())
	}
}

func TestMemoryProperty(t *testing.T) {
	m := NewMemory()
	f := func(addr uint64, v int64) bool {
		a := addr &^ 7
		m.StoreInt(a, v)
		return m.LoadInt(a) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(addr uint64, v float64) bool {
		a := addr &^ 7
		m.StoreFloat(a, v)
		got := m.LoadFloat(a)
		return got == v || (got != got && v != v) // NaN-safe
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func fbits(v float64) int64 {
	var st State
	st.SetFp(isa.F(0), v)
	b := prog.NewBuilder("x")
	b.FMovI(isa.F(0), v)
	return b.MustBuild().At(0).Imm
}
