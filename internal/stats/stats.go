// Package stats provides the aggregation helpers the evaluation uses:
// geometric means (the paper's aggregate metric) and small utilities.
package stats

import (
	"fmt"
	"math"
)

// Geomean returns the geometric mean of xs; it panics on non-positive
// inputs since ratios of cycles/energy are always positive.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geomean of non-positive value %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanAbsErr returns mean |a-b|/b over paired slices — the validation
// error metric of Table 1.
func MeanAbsErr(got, want []float64) float64 {
	if len(got) != len(want) || len(got) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for i := range got {
		sum += math.Abs(got[i]-want[i]) / want[i]
	}
	return sum / float64(len(got))
}

// MinMax returns the extremes of xs.
func MinMax(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
