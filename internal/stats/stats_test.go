package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); g != 4 {
		t.Errorf("Geomean(2,8) = %v, want 4", g)
	}
	if g := Geomean([]float64{5}); g != 5 {
		t.Errorf("Geomean(5) = %v", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Errorf("Geomean(nil) = %v, want 0", g)
	}
}

func TestGeomeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Geomean([]float64{1, 0})
}

func TestGeomeanScaleInvariance(t *testing.T) {
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		g1 := Geomean(xs)
		scaled := []float64{xs[0] * 3, xs[1] * 3, xs[2] * 3}
		g2 := Geomean(scaled)
		return math.Abs(g2-3*g1) < 1e-9*g2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v", m)
	}
}

func TestMeanAbsErr(t *testing.T) {
	got := []float64{1.1, 0.9}
	want := []float64{1.0, 1.0}
	if e := MeanAbsErr(got, want); math.Abs(e-0.1) > 1e-12 {
		t.Errorf("MeanAbsErr = %v, want 0.1", e)
	}
	if !math.IsNaN(MeanAbsErr([]float64{1}, []float64{1, 2})) {
		t.Error("mismatched lengths must yield NaN")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, 1, 2})
	if lo != 1 || hi != 3 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
	if lo, hi := MinMax(nil); lo != 0 || hi != 0 {
		t.Errorf("MinMax(nil) = %v, %v", lo, hi)
	}
}
