// Package store is a content-addressed, disk-spillable result store
// for evaluation-unit outcomes. Keys are opaque byte strings (the
// canonical unit signatures serialized by internal/exocore); the
// address of an entry is the SHA-256 of its key, so identical work
// always lands on the same object file regardless of which process —
// or which replica — produced it. A daemon restarted with the same
// -store directory comes up warm: the first sweep hits disk instead of
// re-deriving every unit.
//
// On-disk layout (format "exocore-store/v1"):
//
//	DIR/VERSION              format marker, written once at create
//	DIR/objects/ab/abcdef…   one entry per object, sharded by the
//	                         first address byte
//	DIR/quarantine/          corrupt entries moved aside at open/read
//
// Each object file is self-verifying: a magic header, the full key
// (so hash collisions and cross-namespace mixups are detected, not
// trusted), the value, and an FNV-64a checksum over everything before
// it. Writes go through a temp file + rename in the same directory, so
// a crash mid-write never leaves a torn entry under objects/.
//
// The store is size-capped: an in-memory LRU index (built by scanning
// objects/ at Open, refreshed on access) evicts the least recently
// used entries once the byte cap is exceeded. Corrupt entries found at
// open or read are quarantined — moved to DIR/quarantine/ — rather
// than deleted, so an operator can inspect them.
package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"exocore/internal/obs"
)

// Version is the on-disk format marker, written to DIR/VERSION when a
// store is created and required verbatim when one is reopened.
const Version = "exocore-store/v1"

// magic starts every object file; a file without it is quarantined.
var magic = [8]byte{'e', 'x', 'o', 's', 't', 'o', 'r', '1'}

// DefaultCapBytes is the eviction cap when Options.CapBytes is zero:
// 1 GiB of object payload (keys + values).
const DefaultCapBytes = 1 << 30

// Options configures Open.
type Options struct {
	// CapBytes is the eviction threshold over the sum of entry sizes
	// (key + value bytes per entry). Zero means DefaultCapBytes;
	// negative means uncapped.
	CapBytes int64
	// Reg receives the store.* instruments (hits, misses, writes,
	// evictions, quarantined, and the bytes/entries gauges). Nil is
	// fine — instruments become inert.
	Reg *obs.Registry
}

// Store is a content-addressed persistent key/value store. All methods
// are safe for concurrent use. A nil *Store is inert: Get always
// misses and Put is a no-op, so callers can thread an optional store
// without nil checks.
type Store struct {
	dir string
	cap int64

	mu      sync.Mutex
	entries map[string]*list.Element // address -> lru element
	lru     *list.List               // front = most recently used
	bytes   int64

	hits        *obs.Counter
	misses      *obs.Counter
	writes      *obs.Counter
	evictions   *obs.Counter
	quarantined *obs.Counter
	gBytes      *obs.Gauge
	gEntries    *obs.Gauge
}

// entry is the in-memory index record for one object file.
type entry struct {
	addr string
	size int64
}

// Open opens (or creates) the store rooted at dir. It validates the
// format marker, scans objects/ to rebuild the index, quarantines any
// entry that fails its self-check, and evicts down to the cap if the
// directory is over it. The scan order seeds LRU by file modification
// time, so a reopened store evicts oldest-written entries first.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	vpath := filepath.Join(dir, "VERSION")
	if raw, err := os.ReadFile(vpath); err == nil {
		if string(raw) != Version+"\n" {
			return nil, fmt.Errorf("store: %s holds format %q, want %q", dir, trimNL(raw), Version)
		}
	} else if errors.Is(err, fs.ErrNotExist) {
		if err := writeFileAtomic(vpath, []byte(Version+"\n")); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	} else {
		return nil, fmt.Errorf("store: %w", err)
	}
	// Probe writability up front: a store that can read but not write
	// would silently degrade to read-only, so fail at open with a clear
	// error instead (the -store flag surfaces this verbatim).
	probe, err := os.CreateTemp(filepath.Join(dir, "objects"), ".probe-*")
	if err != nil {
		return nil, fmt.Errorf("store: %s is not writable: %w", dir, err)
	}
	probe.Close()
	os.Remove(probe.Name())

	capBytes := opts.CapBytes
	if capBytes == 0 {
		capBytes = DefaultCapBytes
	}
	s := &Store{
		dir:     dir,
		cap:     capBytes,
		entries: make(map[string]*list.Element),
		lru:     list.New(),

		hits:        opts.Reg.Counter("store.hits"),
		misses:      opts.Reg.Counter("store.misses"),
		writes:      opts.Reg.Counter("store.writes"),
		evictions:   opts.Reg.Counter("store.evictions"),
		quarantined: opts.Reg.Counter("store.quarantined"),
		gBytes:      opts.Reg.Gauge("store.bytes"),
		gEntries:    opts.Reg.Gauge("store.entries"),
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.evictLocked()
	s.publishLocked()
	s.mu.Unlock()
	return s, nil
}

// Dir returns the store's root directory ("" for a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// scan rebuilds the index from objects/, verifying each file and
// quarantining the ones that fail. Entries enter the LRU ordered by
// modification time (oldest = least recently used).
func (s *Store) scan() error {
	type seen struct {
		addr  string
		size  int64
		mtime int64
	}
	var found []seen
	root := filepath.Join(s.dir, "objects")
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		addr := filepath.Base(path)
		info, ierr := d.Info()
		if ierr != nil {
			return ierr
		}
		if !validAddr(addr) || !s.verify(path) {
			s.quarantine(path)
			return nil
		}
		found = append(found, seen{addr: addr, size: info.Size() - overhead, mtime: info.ModTime().UnixNano()})
		return nil
	})
	if err != nil {
		return fmt.Errorf("store: scanning %s: %w", root, err)
	}
	sort.Slice(found, func(i, j int) bool {
		if found[i].mtime != found[j].mtime {
			return found[i].mtime < found[j].mtime
		}
		return found[i].addr < found[j].addr
	})
	s.mu.Lock()
	for _, f := range found {
		el := s.lru.PushFront(&entry{addr: f.addr, size: f.size})
		s.entries[f.addr] = el
		s.bytes += f.size
	}
	s.mu.Unlock()
	return nil
}

// overhead is the fixed per-object framing: magic + two uint32 length
// prefixes + the trailing FNV-64a checksum. Entry "size" for the cap
// is payload only (key + value), so the cap semantics don't depend on
// framing details.
const overhead = int64(len(magic)) + 4 + 4 + 8

// addrOf returns the hex SHA-256 address of a key.
func addrOf(key []byte) string {
	sum := sha256.Sum256(key)
	return hex.EncodeToString(sum[:])
}

func validAddr(addr string) bool {
	if len(addr) != sha256.Size*2 {
		return false
	}
	_, err := hex.DecodeString(addr)
	return err == nil
}

func (s *Store) objPath(addr string) string {
	return filepath.Join(s.dir, "objects", addr[:2], addr)
}

// Get returns the value stored for key, or ok=false on a miss. A
// corrupt entry counts as a miss and is quarantined.
func (s *Store) Get(key []byte) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	addr := addrOf(key)
	s.mu.Lock()
	el, ok := s.entries[addr]
	if ok {
		s.lru.MoveToFront(el)
	}
	s.mu.Unlock()
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	path := s.objPath(addr)
	gotKey, val, err := readObject(path)
	if err != nil || string(gotKey) != string(key) {
		// Torn, corrupt, or (vanishingly unlikely) a SHA-256 collision:
		// drop it from the index and move the file aside.
		s.mu.Lock()
		if el, ok := s.entries[addr]; ok {
			s.bytes -= el.Value.(*entry).size
			s.lru.Remove(el)
			delete(s.entries, addr)
			s.publishLocked()
		}
		s.mu.Unlock()
		s.quarantine(path)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return val, true
}

// Put stores val under key, replacing any previous value, and evicts
// least-recently-used entries if the cap is now exceeded. Errors are
// swallowed: the store is a cache, and a failed write only costs a
// future re-computation.
func (s *Store) Put(key, val []byte) {
	if s == nil {
		return
	}
	addr := addrOf(key)
	path := s.objPath(addr)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	if err := writeFileAtomic(path, encodeObject(key, val)); err != nil {
		return
	}
	size := int64(len(key) + len(val))
	s.mu.Lock()
	if el, ok := s.entries[addr]; ok {
		s.bytes += size - el.Value.(*entry).size
		el.Value.(*entry).size = size
		s.lru.MoveToFront(el)
	} else {
		s.entries[addr] = s.lru.PushFront(&entry{addr: addr, size: size})
		s.bytes += size
	}
	s.evictLocked()
	s.publishLocked()
	s.mu.Unlock()
	s.writes.Add(1)
}

// evictLocked removes least-recently-used entries until the byte total
// is within the cap. Caller holds s.mu.
func (s *Store) evictLocked() {
	if s.cap < 0 {
		return
	}
	for s.bytes > s.cap && s.lru.Len() > 0 {
		el := s.lru.Back()
		e := el.Value.(*entry)
		s.lru.Remove(el)
		delete(s.entries, e.addr)
		s.bytes -= e.size
		os.Remove(s.objPath(e.addr))
		s.evictions.Add(1)
	}
}

func (s *Store) publishLocked() {
	s.gBytes.Set(s.bytes)
	s.gEntries.Set(int64(s.lru.Len()))
}

// Occupancy reports the store's current size for /healthz and
// /v1/capabilities.
type Occupancy struct {
	Dir      string `json:"dir"`
	Entries  int    `json:"entries"`
	Bytes    int64  `json:"bytes"`
	CapBytes int64  `json:"cap_bytes"`
}

// Occupancy returns the current entry/byte occupancy (zero value for a
// nil store).
func (s *Store) Occupancy() Occupancy {
	if s == nil {
		return Occupancy{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return Occupancy{Dir: s.dir, Entries: s.lru.Len(), Bytes: s.bytes, CapBytes: s.cap}
}

// Len returns the number of indexed entries.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// quarantine moves a bad object file into DIR/quarantine/ so it can be
// inspected instead of silently deleted. Failures fall back to Remove:
// a corrupt entry must not stay under objects/ either way.
func (s *Store) quarantine(path string) {
	qdir := filepath.Join(s.dir, "quarantine")
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		if os.Rename(path, filepath.Join(qdir, filepath.Base(path))) == nil {
			s.quarantined.Add(1)
			return
		}
	}
	if os.Remove(path) == nil {
		s.quarantined.Add(1)
	}
}

// encodeObject frames one entry:
//
//	magic[8] | keyLen u32 | key | valLen u32 | val | fnv64a u64
//
// with the checksum taken over everything before it.
func encodeObject(key, val []byte) []byte {
	buf := make([]byte, 0, int(overhead)+len(key)+len(val))
	buf = append(buf, magic[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(val)))
	buf = append(buf, val...)
	h := fnv.New64a()
	h.Write(buf)
	return h.Sum(buf)
}

var errCorrupt = errors.New("store: corrupt object")

// decodeObject is the inverse of encodeObject; it returns errCorrupt
// on any framing or checksum mismatch.
func decodeObject(raw []byte) (key, val []byte, err error) {
	if int64(len(raw)) < overhead || string(raw[:len(magic)]) != string(magic[:]) {
		return nil, nil, errCorrupt
	}
	body, sum := raw[:len(raw)-8], binary.BigEndian.Uint64(raw[len(raw)-8:])
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != sum {
		return nil, nil, errCorrupt
	}
	p := body[len(magic):]
	if len(p) < 4 {
		return nil, nil, errCorrupt
	}
	klen := binary.BigEndian.Uint32(p)
	p = p[4:]
	if uint32(len(p)) < klen+4 {
		return nil, nil, errCorrupt
	}
	key, p = p[:klen], p[klen:]
	vlen := binary.BigEndian.Uint32(p)
	p = p[4:]
	if uint32(len(p)) != vlen {
		return nil, nil, errCorrupt
	}
	return key, p, nil
}

func readObject(path string) (key, val []byte, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return decodeObject(raw)
}

// verify checks one object file without returning its contents.
func (s *Store) verify(path string) bool {
	_, _, err := readObject(path)
	return err == nil
}

// writeFileAtomic writes data via a temp file + rename in the target's
// directory, so readers never observe a partial file.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

func trimNL(b []byte) string {
	for len(b) > 0 && (b[len(b)-1] == '\n' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return string(b)
}
