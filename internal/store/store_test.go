package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"exocore/internal/obs"
)

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	key := []byte("u1|bench/core/15000|sig")
	val := []byte{1, 2, 3, 4, 5}
	if _, ok := s.Get(key); ok {
		t.Fatal("hit on empty store")
	}
	s.Put(key, val)
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("Get = %v, %v; want %v, true", got, ok, val)
	}

	// Overwrite replaces.
	val2 := []byte("replacement")
	s.Put(key, val2)
	got, ok = s.Get(key)
	if !ok || !bytes.Equal(got, val2) {
		t.Fatalf("after overwrite Get = %q, %v; want %q", got, ok, val2)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestReopenWarm(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 10; i++ {
		s.Put([]byte(fmt.Sprintf("key-%d", i)), []byte(fmt.Sprintf("val-%d", i)))
	}

	reg := obs.NewRegistry()
	s2 := mustOpen(t, dir, Options{Reg: reg})
	if s2.Len() != 10 {
		t.Fatalf("reopened Len = %d, want 10", s2.Len())
	}
	for i := 0; i < 10; i++ {
		got, ok := s2.Get([]byte(fmt.Sprintf("key-%d", i)))
		if !ok || string(got) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("key-%d: got %q, %v", i, got, ok)
		}
	}
	if v := reg.Counter("store.hits").Value(); v != 10 {
		t.Fatalf("store.hits = %d, want 10", v)
	}
}

func TestVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	mustOpen(t, dir, Options{})
	if err := os.WriteFile(filepath.Join(dir, "VERSION"), []byte("exocore-store/v9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a mismatched format marker")
	}
}

// corruptOne flips a byte in one object file and returns its path.
func corruptOne(t *testing.T, dir string) string {
	t.Helper()
	var target string
	filepath.Walk(filepath.Join(dir, "objects"), func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && target == "" {
			target = path
		}
		return nil
	})
	if target == "" {
		t.Fatal("no object files to corrupt")
	}
	raw, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(target, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return target
}

func TestCorruptEntryQuarantinedAtOpen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	s.Put([]byte("good"), []byte("g"))
	s.Put([]byte("bad"), []byte("b"))
	corruptOne(t, dir)

	reg := obs.NewRegistry()
	s2 := mustOpen(t, dir, Options{Reg: reg})
	if s2.Len() != 1 {
		t.Fatalf("Len after corrupt open = %d, want 1", s2.Len())
	}
	if v := reg.Counter("store.quarantined").Value(); v != 1 {
		t.Fatalf("store.quarantined = %d, want 1", v)
	}
	qfiles, _ := os.ReadDir(filepath.Join(dir, "quarantine"))
	if len(qfiles) != 1 {
		t.Fatalf("quarantine holds %d files, want 1", len(qfiles))
	}
	// Exactly one of the two keys survived; both reads must be sane.
	okCount := 0
	for _, k := range []string{"good", "bad"} {
		if _, ok := s2.Get([]byte(k)); ok {
			okCount++
		}
	}
	if okCount != 1 {
		t.Fatalf("%d of 2 keys readable after corruption, want 1", okCount)
	}
}

func TestCorruptEntryQuarantinedAtGet(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s := mustOpen(t, dir, Options{Reg: reg})
	s.Put([]byte("k"), []byte("v"))
	corruptOne(t, dir)
	if _, ok := s.Get([]byte("k")); ok {
		t.Fatal("Get returned a corrupt value")
	}
	if v := reg.Counter("store.quarantined").Value(); v != 1 {
		t.Fatalf("store.quarantined = %d, want 1", v)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after quarantine, want 0", s.Len())
	}
	// The entry is gone from objects/ either way.
	if _, ok := s.Get([]byte("k")); ok {
		t.Fatal("quarantined entry resurrected")
	}
}

func TestEvictionCap(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	// Each entry is 5+95 = 100 payload bytes; cap at 350 keeps 3.
	s := mustOpen(t, dir, Options{CapBytes: 350, Reg: reg})
	val := bytes.Repeat([]byte{7}, 95)
	for i := 0; i < 8; i++ {
		s.Put([]byte(fmt.Sprintf("ek-%02d", i)), val)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d under cap 350, want 3", s.Len())
	}
	if v := reg.Counter("store.evictions").Value(); v != 5 {
		t.Fatalf("store.evictions = %d, want 5", v)
	}
	occ := s.Occupancy()
	if occ.Bytes != 300 || occ.Entries != 3 || occ.CapBytes != 350 {
		t.Fatalf("Occupancy = %+v", occ)
	}
	// Most recently written survive.
	for i := 5; i < 8; i++ {
		if _, ok := s.Get([]byte(fmt.Sprintf("ek-%02d", i))); !ok {
			t.Fatalf("ek-%02d evicted, want kept", i)
		}
	}
	for i := 0; i < 5; i++ {
		if _, ok := s.Get([]byte(fmt.Sprintf("ek-%02d", i))); ok {
			t.Fatalf("ek-%02d kept, want evicted", i)
		}
	}
}

func TestLRUOrderOnAccess(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{CapBytes: 300})
	val := bytes.Repeat([]byte{7}, 95)
	s.Put([]byte("aa-00"), val)
	s.Put([]byte("aa-01"), val)
	s.Put([]byte("aa-02"), val)
	// Touch the oldest so it becomes most recent, then overflow.
	if _, ok := s.Get([]byte("aa-00")); !ok {
		t.Fatal("aa-00 missing before overflow")
	}
	s.Put([]byte("aa-03"), val)
	if _, ok := s.Get([]byte("aa-01")); ok {
		t.Fatal("aa-01 should have been evicted (LRU)")
	}
	if _, ok := s.Get([]byte("aa-00")); !ok {
		t.Fatal("aa-00 was evicted despite recent access")
	}
}

func TestNilStoreInert(t *testing.T) {
	var s *Store
	s.Put([]byte("k"), []byte("v"))
	if _, ok := s.Get([]byte("k")); ok {
		t.Fatal("nil store hit")
	}
	if s.Len() != 0 || s.Dir() != "" {
		t.Fatal("nil store not inert")
	}
	if occ := s.Occupancy(); occ != (Occupancy{}) {
		t.Fatalf("nil Occupancy = %+v", occ)
	}
}

func TestConcurrentAccess(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{CapBytes: 1 << 20})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := []byte(fmt.Sprintf("k-%d-%d", g, i%10))
				s.Put(key, key)
				if v, ok := s.Get(key); ok && !bytes.Equal(v, key) {
					t.Errorf("goroutine %d: value mismatch", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
