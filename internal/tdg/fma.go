package tdg

import (
	"exocore/internal/cores"
	"exocore/internal/dg"
	"exocore/internal/energy"
	"exocore/internal/isa"
)

// This file implements the paper's running example (Figure 4): a TDG
// analyzer + transform that transparently fuses an fmul feeding a
// single-use fadd accumulator into one fma instruction. It is the
// smallest possible BSA model and doubles as framework documentation: an
// analysis pass over the IR produces a "plan", and the transform rewrites
// the µDG — here by retyping one node and eliding another.

// FMAPlan maps the static index of each fusable fmul to the static index
// of the fadd it fuses with.
type FMAPlan struct {
	// MulToAdd maps fmul SI -> fadd SI.
	MulToAdd map[int]int
	// AddSet marks the elided fadd SIs.
	AddSet map[int]bool
}

// AnalyzeFMA scans each basic block for the pattern of Figure 4(c): an
// fadd whose one source is a single-use fmul result and whose destination
// equals its other source (an accumulator), so the pair can execute as
// dst += a*b on a fused unit.
func AnalyzeFMA(t *TDG) *FMAPlan {
	plan := &FMAPlan{MulToAdd: make(map[int]int), AddSet: make(map[int]bool)}
	p := t.CFG.Prog

	// useCount counts static readers of each register defined at an SI,
	// within the defining block until redefinition.
	for bi := range t.CFG.Blocks {
		b := &t.CFG.Blocks[bi]
		for j := b.Start; j < b.End; j++ {
			add := &p.Insts[j]
			if add.Op != isa.FAdd {
				continue
			}
			// One source must equal the destination (accumulator form).
			var mulReg isa.Reg
			switch {
			case add.Src1 == add.Dst && add.Src2 != add.Dst:
				mulReg = add.Src2
			case add.Src2 == add.Dst && add.Src1 != add.Dst:
				mulReg = add.Src1
			default:
				continue
			}
			// Find the defining fmul earlier in the block.
			mulSI := -1
			for i := j - 1; i >= b.Start; i-- {
				in := &p.Insts[i]
				if in.HasDst() && in.Dst == mulReg {
					if in.Op == isa.FMul {
						mulSI = i
					}
					break
				}
			}
			if mulSI < 0 {
				continue
			}
			// Single use: no other reader of mulReg between fmul and the
			// end of the block (or its redefinition), and not live-out of
			// the block (conservative: require redefinition or block end
			// without further reads).
			if !singleUseWithin(p.Insts, b.Start, b.End, mulSI, j, mulReg) {
				continue
			}
			plan.MulToAdd[mulSI] = j
			plan.AddSet[j] = true
		}
	}
	return plan
}

func singleUseWithin(insts []isa.Inst, bStart, bEnd, mulSI, addSI int, r isa.Reg) bool {
	var srcs []isa.Reg
	for i := mulSI + 1; i < bEnd; i++ {
		if i == addSI {
			continue
		}
		in := &insts[i]
		srcs = srcs[:0]
		for _, s := range in.Srcs(srcs) {
			if s == r {
				return false
			}
		}
		if in.HasDst() && in.Dst == r && i > addSI {
			return true // redefined after the fadd: dead beyond
		}
	}
	// Not redefined: require that no successor block reads it — we
	// approximate with "no static reader outside [mulSI, addSI]".
	for i := 0; i < len(insts); i++ {
		if i >= bStart && i < bEnd {
			continue
		}
		in := &insts[i]
		srcs = srcs[:0]
		for _, s := range in.Srcs(srcs) {
			if s == r {
				return false
			}
		}
	}
	return true
}

// EvaluateFMA runs the whole trace through a general core with the FMA
// transform applied (TDG_GPP,fma of Figure 4e), returning cycles and
// energy counts. Fused fadds are elided; fused fmuls execute as fma with
// the accumulator dependence attached.
func EvaluateFMA(t *TDG, core cores.Config) (int64, energy.Counts) {
	plan := AnalyzeFMA(t)
	g := dg.NewGraphN(5*t.Trace.Len() + 64)
	var counts energy.Counts
	m := cores.NewGPP(core, g, &counts)
	p := t.Trace.Prog
	for i := range t.Trace.Insts {
		d := &t.Trace.Insts[i]
		si := int(d.SI)
		in := &p.Insts[si]
		switch {
		case plan.AddSet[si]:
			// Elided: its work happens inside the fused op.
			continue
		case hasKey(plan.MulToAdd, si):
			addSI := plan.MulToAdd[si]
			add := &p.Insts[addSI]
			u := cores.UOp{
				Op: isa.FMA, Dst: add.Dst, Src1: in.Src1, Src2: in.Src2,
			}
			m.Exec(u, int32(i))
		default:
			m.Exec(cores.FromDyn(in, d), int32(i))
		}
	}
	return m.EndTime(), counts
}

func hasKey(m map[int]int, k int) bool {
	_, ok := m[k]
	return ok
}
