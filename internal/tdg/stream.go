package tdg

import (
	"fmt"

	"exocore/internal/ir"
	"exocore/internal/prog"
	"exocore/internal/trace"
)

// Stream is the streaming counterpart of a TDG: the program IR plus the
// dynamic profile and trace statistics of a chunked trace that was never
// materialized. It carries everything Build derives except the trace
// itself — which is exactly what the baseline (general-core) evaluation
// path needs, since only BSA transforms require random access to Insts.
type Stream struct {
	Prog  *prog.Program
	CFG   *ir.CFG
	Nest  *ir.LoopNest
	Prof  *ir.Profile
	Stats trace.Stats
	Dyn   int
}

// StreamBuilder accumulates a Stream from trace chunks in order: the
// streaming arm of Build. IR reconstruction happens once at
// construction (it is trace-independent); each Feed advances the
// profile builder and the mergeable statistics accumulator, so peak
// memory is O(static program + distinct paths), never O(trace).
type StreamBuilder struct {
	prog  *prog.Program
	cfg   *ir.CFG
	nest  *ir.LoopNest
	pb    *ir.ProfileBuilder
	stats trace.Stats
	dyn   int
}

// NewStreamBuilder reconstructs the program IR and returns a builder
// ready to consume the dynamic stream.
func NewStreamBuilder(p *prog.Program) (*StreamBuilder, error) {
	cfg, err := ir.BuildCFG(p)
	if err != nil {
		return nil, fmt.Errorf("tdg: %w", err)
	}
	nest := ir.BuildLoopNest(cfg)
	return &StreamBuilder{
		prog: p, cfg: cfg, nest: nest,
		pb: ir.NewProfileBuilder(cfg, nest),
	}, nil
}

// Feed consumes one chunk. Chunks must arrive in trace order; the
// builder does not retain the chunk, so the caller may Release it
// immediately after.
func (b *StreamBuilder) Feed(c *trace.Chunk) {
	b.pb.Feed(c.Insts)
	b.stats.Accumulate(b.prog, c.Insts)
	b.dyn += len(c.Insts)
}

// Finish finalizes the profile and returns the stream summary. The
// builder must not be fed afterwards.
func (b *StreamBuilder) Finish() *Stream {
	return &Stream{
		Prog: b.prog, CFG: b.cfg, Nest: b.nest,
		Prof: b.pb.Finish(), Stats: b.stats, Dyn: b.dyn,
	}
}

// BuildStream drains src through a StreamBuilder — Build's streaming
// arm. On the same instruction stream it produces the same CFG, loop
// nest and profile as Build on the materialized trace (the profile
// builder carries all cross-chunk state), with peak memory O(chunk)
// instead of O(trace).
func BuildStream(src trace.Source) (*Stream, error) {
	b, err := NewStreamBuilder(src.Prog())
	if err != nil {
		return nil, err
	}
	for {
		c, ok := src.Next()
		if !ok {
			break
		}
		b.Feed(c)
		c.Release()
	}
	if err := src.Err(); err != nil {
		return nil, err
	}
	return b.Finish(), nil
}
