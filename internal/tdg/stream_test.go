package tdg

import (
	"reflect"
	"testing"

	"exocore/internal/trace"
	"exocore/internal/workloads"
)

// TestBuildStreamMatchesBuild is the identity gate for the streaming TDG
// arm: feeding the trace through BuildStream in chunks of any size must
// produce the same CFG, loop nest, profile and statistics as Build on
// the materialized trace. Chunk sizes include values that split the
// trace mid-loop and mid-block.
func TestBuildStreamMatchesBuild(t *testing.T) {
	for _, name := range []string{"mm", "cjpeg", "gzip", "bfs"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := w.Trace(25_000)
		if err != nil {
			t.Fatal(err)
		}
		whole, err := Build(tr)
		if err != nil {
			t.Fatal(err)
		}
		for _, chunk := range []int{1, 313, 4096, 1 << 20} {
			s, err := BuildStream(trace.NewSliceSource(tr, chunk))
			if err != nil {
				t.Fatal(err)
			}
			if s.Dyn != tr.Len() {
				t.Fatalf("%s chunk %d: stream dyn %d != %d", name, chunk, s.Dyn, tr.Len())
			}
			if s.Stats != tr.ComputeStats() {
				t.Fatalf("%s chunk %d: stream stats diverge", name, chunk)
			}
			if !reflect.DeepEqual(s.Prof.BlockCount, whole.Prof.BlockCount) {
				t.Fatalf("%s chunk %d: block counts diverge", name, chunk)
			}
			if !reflect.DeepEqual(s.Prof.Loops, whole.Prof.Loops) {
				t.Fatalf("%s chunk %d: loop profiles diverge", name, chunk)
			}
			if !reflect.DeepEqual(s.Prof.Strides, whole.Prof.Strides) {
				t.Fatalf("%s chunk %d: stride classification diverges", name, chunk)
			}
			if s.Prof.TotalDyn != whole.Prof.TotalDyn {
				t.Fatalf("%s chunk %d: total dyn diverges", name, chunk)
			}
		}
	}
}
