// Package tdg assembles the Transformable Dependence Graph: the dynamic
// trace, the reconstructed program IR (CFG + loop nest + dataflow), and
// the dynamic profile, with a one-to-one mapping between dynamic
// instructions and static IR instructions (paper §2.2-2.3). It defines
// the BSA interface every accelerator model implements: an *analyzer*
// that finds legal and profitable regions ("the plan"), and a graph
// *transformer* that models accelerated execution of region occurrences.
package tdg

import (
	"fmt"
	"sync"

	"exocore/internal/cores"
	"exocore/internal/dg"
	"exocore/internal/energy"
	"exocore/internal/ir"
	"exocore/internal/obs"
	"exocore/internal/trace"
)

// TDG is the transformable dependence graph of one program execution.
// A built TDG is shared read-only between concurrent evaluations (the
// runner engine caches one per benchmark), so all lazy state behind it
// must be lock-protected.
type TDG struct {
	Trace *trace.Trace
	CFG   *ir.CFG
	Nest  *ir.LoopNest
	Prof  *ir.Profile

	dfMu     sync.Mutex
	dataflow map[int]*ir.LoopDataflow

	atomsOnce sync.Once
	atoms     []LoopAtom

	headOnce sync.Once
	headOff  []int32 // len(Nest.Loops)+1 offsets into headIdx
	headIdx  []int32 // dynamic indices of header-block entries, grouped by loop

	uopsOnce sync.Once
	uops     []cores.UOp
}

// LoopAtom is a maximal run of consecutive dynamic instructions sharing
// one innermost loop — the finest granularity at which any assignment
// can segment the trace. The atom list partitions the whole trace.
type LoopAtom struct {
	Start, End int32 // dynamic index, [Start, End)
	Loop       int32 // innermost loop id, -1 outside any loop
}

// LoopAtoms returns (computing lazily, concurrency-safe) the trace's
// innermost-loop partition. Segmentation under any assignment reduces to
// one region resolution per distinct loop plus one merge pass over the
// atoms — O(atoms) instead of O(trace × nest depth) per call, which
// dominated uncached evaluation.
func (t *TDG) LoopAtoms() []LoopAtom {
	t.atomsOnce.Do(func() {
		// Innermost loop per static instruction, then one scan of the
		// dynamic trace merging consecutive same-loop instructions.
		inner := make([]int32, len(t.Trace.Prog.Insts))
		for si := range inner {
			inner[si] = int32(t.Nest.InnermostOfInst(si))
		}
		atoms := make([]LoopAtom, 0, 1024)
		cur := LoopAtom{Loop: -2}
		for i := range t.Trace.Insts {
			l := inner[t.Trace.Insts[i].SI]
			if l != cur.Loop {
				if cur.Loop != -2 {
					atoms = append(atoms, cur)
				}
				cur = LoopAtom{Start: int32(i), End: int32(i + 1), Loop: l}
			} else {
				cur.End = int32(i + 1)
			}
		}
		if cur.Loop != -2 {
			atoms = append(atoms, cur)
		}
		t.atoms = atoms
	})
	return t.atoms
}

// HeaderEntries returns the ascending dynamic indices at which the given
// loop's header block begins executing — the iteration boundaries every
// transform model splits on. Computed lazily for all loops in one trace
// scan (concurrency-safe), so per-occurrence iteration splitting becomes
// a binary search instead of a scan of the occurrence span.
func (t *TDG) HeaderEntries(loopID int) []int32 {
	t.headOnce.Do(func() {
		nl := len(t.Nest.Loops)
		// Header block start SI -> loop ID. Loops sharing a header are
		// merged during loop reconstruction, so the mapping is unique.
		hl := make([]int32, len(t.Trace.Prog.Insts))
		for si := range hl {
			hl[si] = -1
		}
		for l := 0; l < nl; l++ {
			hl[t.CFG.Blocks[t.Nest.Loops[l].Header].Start] = int32(l)
		}
		off := make([]int32, nl+1)
		for i := range t.Trace.Insts {
			if l := hl[t.Trace.Insts[i].SI]; l >= 0 {
				off[l+1]++
			}
		}
		for l := 0; l < nl; l++ {
			off[l+1] += off[l]
		}
		idx := make([]int32, off[nl])
		cur := append([]int32(nil), off[:nl]...)
		for i := range t.Trace.Insts {
			if l := hl[t.Trace.Insts[i].SI]; l >= 0 {
				idx[cur[l]] = int32(i)
				cur[l]++
			}
		}
		t.headOff, t.headIdx = off, idx
	})
	return t.headIdx[t.headOff[loopID]:t.headOff[loopID+1]]
}

// UOps returns the trace decoded into the core micro-op stream, computed
// lazily once (concurrency-safe). Every baseline segment of every
// evaluation replays the same decode, so a sweep re-derived each µop
// hundreds of times; the decoded stream is ~24 B/inst and shared by all
// evaluations of this TDG.
func (t *TDG) UOps() []cores.UOp {
	t.uopsOnce.Do(func() {
		tr := t.Trace
		us := make([]cores.UOp, len(tr.Insts))
		for i := range tr.Insts {
			d := &tr.Insts[i]
			us[i] = cores.FromDyn(&tr.Prog.Insts[d.SI], d)
		}
		t.uops = us
	})
	return t.uops
}

// Build constructs the TDG (IR reconstruction + profiling) from an
// annotated trace.
func Build(tr *trace.Trace) (*TDG, error) {
	cfg, err := ir.BuildCFG(tr.Prog)
	if err != nil {
		return nil, fmt.Errorf("tdg: %w", err)
	}
	nest := ir.BuildLoopNest(cfg)
	prof := ir.BuildProfile(cfg, nest, tr)
	return &TDG{
		Trace: tr, CFG: cfg, Nest: nest, Prof: prof,
		dataflow: make(map[int]*ir.LoopDataflow),
	}, nil
}

// Dataflow returns (computing lazily) the dataflow summary of a loop.
// Safe for concurrent use: BSA transforms call this from parallel
// evaluations sharing one TDG.
func (t *TDG) Dataflow(loopID int) *ir.LoopDataflow {
	t.dfMu.Lock()
	defer t.dfMu.Unlock()
	if ld, ok := t.dataflow[loopID]; ok {
		return ld
	}
	ld := ir.AnalyzeLoopDataflow(t.CFG, t.Nest, loopID)
	t.dataflow[loopID] = ld
	return ld
}

// LoopOfDyn returns the innermost loop containing dynamic instruction i,
// or -1.
func (t *TDG) LoopOfDyn(i int) int {
	return t.Nest.InnermostOfInst(int(t.Trace.Insts[i].SI))
}

// Region is one acceleratable program region in a plan: a loop (SIMD,
// DP-CGRA, Trace-P) or a loop nest root (NS-DF).
type Region struct {
	LoopID int
	// EstSpeedup is the analyzer's static/profile-based speedup estimate
	// over the general core, consumed by the Amdahl-tree scheduler.
	EstSpeedup float64
	// Config carries accelerator-specific plan data (eg. the offloaded
	// compute subgraph for DP-CGRA, the hot path for Trace-P).
	Config any
}

// Plan is the output of a BSA analyzer: the regions it can legally and
// profitably accelerate, keyed by loop ID.
type Plan struct {
	BSA     string
	Regions map[int]*Region
}

// Region returns the plan's region for a loop, or nil.
func (p *Plan) Region(loopID int) *Region {
	if p == nil {
		return nil
	}
	return p.Regions[loopID]
}

// Ctx is the transformation context handed to a BSA when it models one
// region occurrence: the TDG, the µDG being constructed, the general-core
// constructor (for interaction edges and for instructions that stay on
// the core), and the energy accumulator.
type Ctx struct {
	TDG    *TDG
	G      *dg.Graph
	GPP    *cores.GPP
	Counts *energy.Counts
	// ConfigResident reports whether the accelerator's configuration for
	// the region being transformed is already loaded. The engine simulates
	// the per-BSA configuration LRU in composition order (see
	// exocore.ConfigCacheWays); on false the model should charge its
	// configuration-load latency and energy.
	ConfigResident bool
	// State holds per-segment accelerator scratch state, keyed by BSA
	// name. It does NOT persist across segments: anything that must cross
	// a segment boundary (configuration residency) is tracked by the
	// engine itself, so segment outcomes stay cacheable. Transform results
	// must be a pure function of (core config, region plan, span,
	// ConfigResident).
	State map[string]any
	// Span is the observability span covering this transform (inert when
	// tracing is off). Models may annotate it with model-specific args —
	// annotations are side effects on the trace only and must not feed
	// back into the transform result.
	Span obs.Span
}

// RunState returns the BSA's per-run state, creating it with mk on first
// use.
func RunState[T any](ctx *Ctx, name string, mk func() T) T {
	if v, ok := ctx.State[name]; ok {
		return v.(T)
	}
	v := mk()
	ctx.State[name] = v
	return v
}

// BSA is a behavior-specialized accelerator model: the pair of analyzer
// and graph transform the paper describes in §2.3 and Appendix A.
type BSA interface {
	// Name returns the model's short name (eg. "SIMD", "NS-DF").
	Name() string
	// Analyze inspects the TDG and returns the plan of acceleratable
	// regions with their configurations and estimated speedups.
	Analyze(t *TDG) *Plan
	// TransformRegion models execution of one dynamic occurrence
	// [start, end) of the planned region on the accelerator, appending
	// nodes/edges and charging energy. It must leave the GPP's
	// architectural dependence state (register producers, store map)
	// consistent at exit, and return the node representing region
	// completion (or dg.None if it emitted everything through the GPP).
	TransformRegion(ctx *Ctx, r *Region, start, end int) dg.NodeID
	// AreaMM2 is the accelerator's area cost.
	AreaMM2() float64
	// OffloadsCore reports whether the accelerator runs independently of
	// the core pipeline (the core's frontend can be power-gated while the
	// region runs), as with NS-DF and Trace-P offload engines.
	OffloadsCore() bool
}
