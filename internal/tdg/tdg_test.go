package tdg

import (
	"testing"

	"exocore/internal/bpred"
	"exocore/internal/cache"
	"exocore/internal/cores"
	"exocore/internal/isa"
	"exocore/internal/prog"
	"exocore/internal/sim"
	"exocore/internal/trace"
)

func traceFor(t *testing.T, p *prog.Program, prep func(*sim.State)) *trace.Trace {
	t.Helper()
	st := sim.NewState()
	if prep != nil {
		prep(st)
	}
	tr, err := sim.Run(p, st, sim.Config{MaxDyn: 50000})
	if err != nil {
		t.Fatal(err)
	}
	cache.DefaultHierarchy().Annotate(tr)
	bpred.New(bpred.DefaultConfig()).Annotate(tr)
	return tr
}

// dotKernel: the Figure 4 pattern — fmul feeding an accumulating fadd.
func dotKernel(n int64) *prog.Program {
	b := prog.NewBuilder("dot")
	i, pA, pB := isa.R(1), isa.R(2), isa.R(3)
	b.MovI(pA, 0x1000)
	b.MovI(pB, 0x9000)
	b.MovI(i, n)
	b.Label("loop")
	b.LdF(isa.F(1), pA, 0)
	b.LdF(isa.F(2), pB, 0)
	b.FMul(isa.F(3), isa.F(1), isa.F(2))
	b.FAdd(isa.F(4), isa.F(4), isa.F(3))
	b.AddI(pA, pA, 8)
	b.AddI(pB, pB, 8)
	b.SubI(i, i, 1)
	b.Bne(i, isa.RZ, "loop")
	return b.MustBuild()
}

func TestBuildTDG(t *testing.T) {
	tr := traceFor(t, dotKernel(100), nil)
	td, err := Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(td.Nest.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(td.Nest.Loops))
	}
	if td.Prof.Loops[0].Iterations != 100 {
		t.Errorf("iterations = %d, want 100", td.Prof.Loops[0].Iterations)
	}
	// Dataflow must be cached.
	a := td.Dataflow(0)
	b := td.Dataflow(0)
	if a != b {
		t.Error("Dataflow not cached")
	}
	if td.LoopOfDyn(5) != 0 {
		t.Error("LoopOfDyn wrong")
	}
}

func TestBuildEmptyProgramFails(t *testing.T) {
	tr := &trace.Trace{Prog: &prog.Program{Name: "empty"}}
	if _, err := Build(tr); err == nil {
		t.Fatal("expected error for empty program")
	}
}

func TestAnalyzeFMAFindsAccumulatorPattern(t *testing.T) {
	tr := traceFor(t, dotKernel(10), nil)
	td, err := Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	plan := AnalyzeFMA(td)
	if len(plan.MulToAdd) != 1 {
		t.Fatalf("fused pairs = %d, want 1 (plan: %v)", len(plan.MulToAdd), plan.MulToAdd)
	}
	// fmul at SI 5 feeds fadd at SI 6.
	if add, ok := plan.MulToAdd[5]; !ok || add != 6 {
		t.Errorf("MulToAdd = %v, want 5->6", plan.MulToAdd)
	}
	if !plan.AddSet[6] {
		t.Error("fadd not marked for elision")
	}
}

func TestAnalyzeFMARejectsMultiUse(t *testing.T) {
	// fmul result used twice: not fusable.
	b := prog.NewBuilder("multiuse")
	b.FMovI(isa.F(1), 2)
	b.FMovI(isa.F(2), 3)
	b.FMul(isa.F(3), isa.F(1), isa.F(2))
	b.FAdd(isa.F(4), isa.F(4), isa.F(3))
	b.FSub(isa.F(5), isa.F(3), isa.F(1)) // second use of f3
	tr := traceFor(t, b.MustBuild(), nil)
	td, err := Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	if plan := AnalyzeFMA(td); len(plan.MulToAdd) != 0 {
		t.Errorf("multi-use fmul fused: %v", plan.MulToAdd)
	}
}

func TestAnalyzeFMARejectsNonAccumulator(t *testing.T) {
	// fadd whose dst differs from both sources: not the fma form.
	b := prog.NewBuilder("nonacc")
	b.FMovI(isa.F(1), 2)
	b.FMovI(isa.F(2), 3)
	b.FMul(isa.F(3), isa.F(1), isa.F(2))
	b.FAdd(isa.F(5), isa.F(1), isa.F(3))
	tr := traceFor(t, b.MustBuild(), nil)
	td, err := Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	if plan := AnalyzeFMA(td); len(plan.MulToAdd) != 0 {
		t.Errorf("non-accumulator fadd fused: %v", plan.MulToAdd)
	}
}

func TestEvaluateFMASpeedsUpAndShrinks(t *testing.T) {
	tr := traceFor(t, dotKernel(500), nil)
	td, err := Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	base, baseCounts := cores.Evaluate(cores.OOO2, tr)
	fused, fusedCounts := EvaluateFMA(td, cores.OOO2)
	if fused >= base {
		t.Errorf("fma transform did not help: %d vs %d cycles", fused, base)
	}
	// The elided fadds must reduce total event counts.
	if fusedCounts.Total() >= baseCounts.Total() {
		t.Error("fma transform did not reduce energy events")
	}
}

func TestRunState(t *testing.T) {
	ctx := &Ctx{State: map[string]any{}}
	calls := 0
	mk := func() *int { calls++; v := 42; return &v }
	a := RunState(ctx, "x", mk)
	b := RunState(ctx, "x", mk)
	if a != b || calls != 1 {
		t.Errorf("RunState not memoized: calls=%d", calls)
	}
	c := RunState(ctx, "y", mk)
	if c == a || calls != 2 {
		t.Error("RunState keys not independent")
	}
}

func TestPlanRegionNilSafety(t *testing.T) {
	var p *Plan
	if p.Region(0) != nil {
		t.Error("nil plan should return nil region")
	}
	p = &Plan{Regions: map[int]*Region{1: {LoopID: 1}}}
	if p.Region(1) == nil || p.Region(2) != nil {
		t.Error("Region lookup wrong")
	}
}
