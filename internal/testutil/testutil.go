// Package testutil holds shared helpers for the model test suites:
// building TDGs from workloads and running single-BSA solo evaluations.
package testutil

import (
	"testing"

	"exocore/internal/cores"
	"exocore/internal/exocore"
	"exocore/internal/tdg"
	"exocore/internal/workloads"
)

// TDGFor builds the TDG of a named workload at the given trace budget.
func TDGFor(t *testing.T, bench string, maxDyn int) *tdg.TDG {
	t.Helper()
	w, err := workloads.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := w.Trace(maxDyn)
	if err != nil {
		t.Fatal(err)
	}
	td, err := tdg.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	return td
}

// SoloRun evaluates the baseline and the benchmark with every region of
// one BSA's plan assigned, returning (baseCycles, accelCycles, baseNJ,
// accelNJ).
func SoloRun(t *testing.T, td *tdg.TDG, core cores.Config, model tdg.BSA) (int64, int64, float64, float64) {
	t.Helper()
	bsas := map[string]tdg.BSA{model.Name(): model}
	plans := map[string]*tdg.Plan{model.Name(): model.Analyze(td)}

	base, err := exocore.Run(td, core, bsas, plans, nil, exocore.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	assign := exocore.Assignment{}
	for l := range plans[model.Name()].Regions {
		assign[l] = model.Name()
	}
	acc, err := exocore.Run(td, core, bsas, plans, assign, exocore.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	return base.Cycles, acc.Cycles,
		exocore.EnergyOf(base, core, bsas).TotalNJ(),
		exocore.EnergyOf(acc, core, bsas).TotalNJ()
}

// Plan returns the BSA's plan for the TDG.
func Plan(model tdg.BSA, td *tdg.TDG) *tdg.Plan { return model.Analyze(td) }
